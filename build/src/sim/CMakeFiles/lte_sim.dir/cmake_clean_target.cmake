file(REMOVE_RECURSE
  "liblte_sim.a"
)

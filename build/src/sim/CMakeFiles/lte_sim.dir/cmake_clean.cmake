file(REMOVE_RECURSE
  "CMakeFiles/lte_sim.dir/calibrate.cpp.o"
  "CMakeFiles/lte_sim.dir/calibrate.cpp.o.d"
  "CMakeFiles/lte_sim.dir/machine.cpp.o"
  "CMakeFiles/lte_sim.dir/machine.cpp.o.d"
  "liblte_sim.a"
  "liblte_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lte_sim.
# This may be replaced when dependencies are built.

# Empty dependencies file for lte_fft.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblte_fft.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lte_fft.dir/dft_ref.cpp.o"
  "CMakeFiles/lte_fft.dir/dft_ref.cpp.o.d"
  "CMakeFiles/lte_fft.dir/fft.cpp.o"
  "CMakeFiles/lte_fft.dir/fft.cpp.o.d"
  "liblte_fft.a"
  "liblte_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lte_tx.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblte_tx.a"
)

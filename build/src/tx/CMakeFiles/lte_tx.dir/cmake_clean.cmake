file(REMOVE_RECURSE
  "CMakeFiles/lte_tx.dir/transmitter.cpp.o"
  "CMakeFiles/lte_tx.dir/transmitter.cpp.o.d"
  "liblte_tx.a"
  "liblte_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lte_runtime.
# This may be replaced when dependencies are built.

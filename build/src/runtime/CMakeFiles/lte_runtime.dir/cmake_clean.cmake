file(REMOVE_RECURSE
  "CMakeFiles/lte_runtime.dir/benchmark.cpp.o"
  "CMakeFiles/lte_runtime.dir/benchmark.cpp.o.d"
  "CMakeFiles/lte_runtime.dir/input_generator.cpp.o"
  "CMakeFiles/lte_runtime.dir/input_generator.cpp.o.d"
  "CMakeFiles/lte_runtime.dir/run_record.cpp.o"
  "CMakeFiles/lte_runtime.dir/run_record.cpp.o.d"
  "CMakeFiles/lte_runtime.dir/serial_engine.cpp.o"
  "CMakeFiles/lte_runtime.dir/serial_engine.cpp.o.d"
  "CMakeFiles/lte_runtime.dir/worker_pool.cpp.o"
  "CMakeFiles/lte_runtime.dir/worker_pool.cpp.o.d"
  "liblte_runtime.a"
  "liblte_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblte_runtime.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/benchmark.cpp" "src/runtime/CMakeFiles/lte_runtime.dir/benchmark.cpp.o" "gcc" "src/runtime/CMakeFiles/lte_runtime.dir/benchmark.cpp.o.d"
  "/root/repo/src/runtime/input_generator.cpp" "src/runtime/CMakeFiles/lte_runtime.dir/input_generator.cpp.o" "gcc" "src/runtime/CMakeFiles/lte_runtime.dir/input_generator.cpp.o.d"
  "/root/repo/src/runtime/run_record.cpp" "src/runtime/CMakeFiles/lte_runtime.dir/run_record.cpp.o" "gcc" "src/runtime/CMakeFiles/lte_runtime.dir/run_record.cpp.o.d"
  "/root/repo/src/runtime/serial_engine.cpp" "src/runtime/CMakeFiles/lte_runtime.dir/serial_engine.cpp.o" "gcc" "src/runtime/CMakeFiles/lte_runtime.dir/serial_engine.cpp.o.d"
  "/root/repo/src/runtime/worker_pool.cpp" "src/runtime/CMakeFiles/lte_runtime.dir/worker_pool.cpp.o" "gcc" "src/runtime/CMakeFiles/lte_runtime.dir/worker_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/lte_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lte_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mgmt/CMakeFiles/lte_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/lte_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/tx/CMakeFiles/lte_tx.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/lte_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/lte_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

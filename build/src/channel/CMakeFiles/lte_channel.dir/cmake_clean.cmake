file(REMOVE_RECURSE
  "CMakeFiles/lte_channel.dir/mimo_channel.cpp.o"
  "CMakeFiles/lte_channel.dir/mimo_channel.cpp.o.d"
  "CMakeFiles/lte_channel.dir/signal_source.cpp.o"
  "CMakeFiles/lte_channel.dir/signal_source.cpp.o.d"
  "liblte_channel.a"
  "liblte_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

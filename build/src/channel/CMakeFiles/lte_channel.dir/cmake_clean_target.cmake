file(REMOVE_RECURSE
  "liblte_channel.a"
)

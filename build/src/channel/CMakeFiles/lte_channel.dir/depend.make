# Empty dependencies file for lte_channel.
# This may be replaced when dependencies are built.

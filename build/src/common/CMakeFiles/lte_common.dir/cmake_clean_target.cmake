file(REMOVE_RECURSE
  "liblte_common.a"
)

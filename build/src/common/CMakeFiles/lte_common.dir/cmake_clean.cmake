file(REMOVE_RECURSE
  "CMakeFiles/lte_common.dir/rng.cpp.o"
  "CMakeFiles/lte_common.dir/rng.cpp.o.d"
  "CMakeFiles/lte_common.dir/stats.cpp.o"
  "CMakeFiles/lte_common.dir/stats.cpp.o.d"
  "liblte_common.a"
  "liblte_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblte_phy.a"
)

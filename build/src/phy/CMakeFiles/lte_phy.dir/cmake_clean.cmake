file(REMOVE_RECURSE
  "CMakeFiles/lte_phy.dir/channel_estimator.cpp.o"
  "CMakeFiles/lte_phy.dir/channel_estimator.cpp.o.d"
  "CMakeFiles/lte_phy.dir/combiner.cpp.o"
  "CMakeFiles/lte_phy.dir/combiner.cpp.o.d"
  "CMakeFiles/lte_phy.dir/crc.cpp.o"
  "CMakeFiles/lte_phy.dir/crc.cpp.o.d"
  "CMakeFiles/lte_phy.dir/interleaver.cpp.o"
  "CMakeFiles/lte_phy.dir/interleaver.cpp.o.d"
  "CMakeFiles/lte_phy.dir/modulation.cpp.o"
  "CMakeFiles/lte_phy.dir/modulation.cpp.o.d"
  "CMakeFiles/lte_phy.dir/op_model.cpp.o"
  "CMakeFiles/lte_phy.dir/op_model.cpp.o.d"
  "CMakeFiles/lte_phy.dir/params.cpp.o"
  "CMakeFiles/lte_phy.dir/params.cpp.o.d"
  "CMakeFiles/lte_phy.dir/rate_matching.cpp.o"
  "CMakeFiles/lte_phy.dir/rate_matching.cpp.o.d"
  "CMakeFiles/lte_phy.dir/scfdma.cpp.o"
  "CMakeFiles/lte_phy.dir/scfdma.cpp.o.d"
  "CMakeFiles/lte_phy.dir/scrambler.cpp.o"
  "CMakeFiles/lte_phy.dir/scrambler.cpp.o.d"
  "CMakeFiles/lte_phy.dir/turbo.cpp.o"
  "CMakeFiles/lte_phy.dir/turbo.cpp.o.d"
  "CMakeFiles/lte_phy.dir/user_processor.cpp.o"
  "CMakeFiles/lte_phy.dir/user_processor.cpp.o.d"
  "CMakeFiles/lte_phy.dir/zadoff_chu.cpp.o"
  "CMakeFiles/lte_phy.dir/zadoff_chu.cpp.o.d"
  "liblte_phy.a"
  "liblte_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lte_phy.
# This may be replaced when dependencies are built.

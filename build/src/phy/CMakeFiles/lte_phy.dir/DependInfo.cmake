
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel_estimator.cpp" "src/phy/CMakeFiles/lte_phy.dir/channel_estimator.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/channel_estimator.cpp.o.d"
  "/root/repo/src/phy/combiner.cpp" "src/phy/CMakeFiles/lte_phy.dir/combiner.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/combiner.cpp.o.d"
  "/root/repo/src/phy/crc.cpp" "src/phy/CMakeFiles/lte_phy.dir/crc.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/crc.cpp.o.d"
  "/root/repo/src/phy/interleaver.cpp" "src/phy/CMakeFiles/lte_phy.dir/interleaver.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/interleaver.cpp.o.d"
  "/root/repo/src/phy/modulation.cpp" "src/phy/CMakeFiles/lte_phy.dir/modulation.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/modulation.cpp.o.d"
  "/root/repo/src/phy/op_model.cpp" "src/phy/CMakeFiles/lte_phy.dir/op_model.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/op_model.cpp.o.d"
  "/root/repo/src/phy/params.cpp" "src/phy/CMakeFiles/lte_phy.dir/params.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/params.cpp.o.d"
  "/root/repo/src/phy/rate_matching.cpp" "src/phy/CMakeFiles/lte_phy.dir/rate_matching.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/rate_matching.cpp.o.d"
  "/root/repo/src/phy/scfdma.cpp" "src/phy/CMakeFiles/lte_phy.dir/scfdma.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/scfdma.cpp.o.d"
  "/root/repo/src/phy/scrambler.cpp" "src/phy/CMakeFiles/lte_phy.dir/scrambler.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/scrambler.cpp.o.d"
  "/root/repo/src/phy/turbo.cpp" "src/phy/CMakeFiles/lte_phy.dir/turbo.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/turbo.cpp.o.d"
  "/root/repo/src/phy/user_processor.cpp" "src/phy/CMakeFiles/lte_phy.dir/user_processor.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/user_processor.cpp.o.d"
  "/root/repo/src/phy/zadoff_chu.cpp" "src/phy/CMakeFiles/lte_phy.dir/zadoff_chu.cpp.o" "gcc" "src/phy/CMakeFiles/lte_phy.dir/zadoff_chu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/lte_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/lte_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

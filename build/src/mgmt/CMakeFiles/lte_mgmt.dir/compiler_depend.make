# Empty compiler generated dependencies file for lte_mgmt.
# This may be replaced when dependencies are built.

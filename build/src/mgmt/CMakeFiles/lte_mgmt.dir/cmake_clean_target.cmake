file(REMOVE_RECURSE
  "liblte_mgmt.a"
)

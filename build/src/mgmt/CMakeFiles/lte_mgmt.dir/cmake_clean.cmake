file(REMOVE_RECURSE
  "CMakeFiles/lte_mgmt.dir/core_allocator.cpp.o"
  "CMakeFiles/lte_mgmt.dir/core_allocator.cpp.o.d"
  "CMakeFiles/lte_mgmt.dir/estimator.cpp.o"
  "CMakeFiles/lte_mgmt.dir/estimator.cpp.o.d"
  "liblte_mgmt.a"
  "liblte_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

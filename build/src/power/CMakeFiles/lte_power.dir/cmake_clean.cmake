file(REMOVE_RECURSE
  "CMakeFiles/lte_power.dir/power_model.cpp.o"
  "CMakeFiles/lte_power.dir/power_model.cpp.o.d"
  "liblte_power.a"
  "liblte_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblte_power.a"
)

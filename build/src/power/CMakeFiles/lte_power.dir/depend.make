# Empty dependencies file for lte_power.
# This may be replaced when dependencies are built.

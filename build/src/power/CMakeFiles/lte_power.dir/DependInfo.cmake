
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/power_model.cpp" "src/power/CMakeFiles/lte_power.dir/power_model.cpp.o" "gcc" "src/power/CMakeFiles/lte_power.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lte_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lte_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mgmt/CMakeFiles/lte_mgmt.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lte_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/lte_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/lte_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/lte_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

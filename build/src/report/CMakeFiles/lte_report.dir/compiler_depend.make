# Empty compiler generated dependencies file for lte_report.
# This may be replaced when dependencies are built.

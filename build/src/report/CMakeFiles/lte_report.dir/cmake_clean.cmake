file(REMOVE_RECURSE
  "CMakeFiles/lte_report.dir/series.cpp.o"
  "CMakeFiles/lte_report.dir/series.cpp.o.d"
  "CMakeFiles/lte_report.dir/table.cpp.o"
  "CMakeFiles/lte_report.dir/table.cpp.o.d"
  "liblte_report.a"
  "liblte_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

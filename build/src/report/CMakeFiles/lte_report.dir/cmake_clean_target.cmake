file(REMOVE_RECURSE
  "liblte_report.a"
)

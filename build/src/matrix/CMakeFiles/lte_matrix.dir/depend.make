# Empty dependencies file for lte_matrix.
# This may be replaced when dependencies are built.

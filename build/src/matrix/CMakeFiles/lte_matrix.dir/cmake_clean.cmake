file(REMOVE_RECURSE
  "CMakeFiles/lte_matrix.dir/cmat.cpp.o"
  "CMakeFiles/lte_matrix.dir/cmat.cpp.o.d"
  "liblte_matrix.a"
  "liblte_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

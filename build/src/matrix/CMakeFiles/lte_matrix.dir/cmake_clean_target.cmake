file(REMOVE_RECURSE
  "liblte_matrix.a"
)

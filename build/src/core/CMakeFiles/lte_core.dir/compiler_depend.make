# Empty compiler generated dependencies file for lte_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lte_core.dir/uplink_study.cpp.o"
  "CMakeFiles/lte_core.dir/uplink_study.cpp.o.d"
  "liblte_core.a"
  "liblte_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lte_workload.
# This may be replaced when dependencies are built.

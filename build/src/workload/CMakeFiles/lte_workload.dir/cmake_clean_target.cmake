file(REMOVE_RECURSE
  "liblte_workload.a"
)

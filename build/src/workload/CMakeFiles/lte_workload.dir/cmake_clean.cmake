file(REMOVE_RECURSE
  "CMakeFiles/lte_workload.dir/diurnal_model.cpp.o"
  "CMakeFiles/lte_workload.dir/diurnal_model.cpp.o.d"
  "CMakeFiles/lte_workload.dir/paper_model.cpp.o"
  "CMakeFiles/lte_workload.dir/paper_model.cpp.o.d"
  "CMakeFiles/lte_workload.dir/steady_model.cpp.o"
  "CMakeFiles/lte_workload.dir/steady_model.cpp.o.d"
  "liblte_workload.a"
  "liblte_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

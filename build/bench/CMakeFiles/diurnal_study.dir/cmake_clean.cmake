file(REMOVE_RECURSE
  "CMakeFiles/diurnal_study.dir/diurnal_study.cpp.o"
  "CMakeFiles/diurnal_study.dir/diurnal_study.cpp.o.d"
  "diurnal_study"
  "diurnal_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diurnal_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for diurnal_study.
# This may be replaced when dependencies are built.

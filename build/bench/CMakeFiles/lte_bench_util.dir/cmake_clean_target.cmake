file(REMOVE_RECURSE
  "../lib/liblte_bench_util.a"
)

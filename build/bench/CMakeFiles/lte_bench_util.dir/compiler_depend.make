# Empty compiler generated dependencies file for lte_bench_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../lib/liblte_bench_util.a"
  "../lib/liblte_bench_util.pdb"
  "CMakeFiles/lte_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/lte_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

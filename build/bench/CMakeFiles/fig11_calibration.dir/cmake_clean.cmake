file(REMOVE_RECURSE
  "CMakeFiles/fig11_calibration.dir/fig11_calibration.cpp.o"
  "CMakeFiles/fig11_calibration.dir/fig11_calibration.cpp.o.d"
  "fig11_calibration"
  "fig11_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

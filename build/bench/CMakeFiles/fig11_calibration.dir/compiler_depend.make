# Empty compiler generated dependencies file for fig11_calibration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig14_nap_power.dir/fig14_nap_power.cpp.o"
  "CMakeFiles/fig14_nap_power.dir/fig14_nap_power.cpp.o.d"
  "fig14_nap_power"
  "fig14_nap_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_nap_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/opmodel_validation.dir/opmodel_validation.cpp.o"
  "CMakeFiles/opmodel_validation.dir/opmodel_validation.cpp.o.d"
  "opmodel_validation"
  "opmodel_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opmodel_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for opmodel_validation.
# This may be replaced when dependencies are built.

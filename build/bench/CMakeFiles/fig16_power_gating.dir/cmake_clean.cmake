file(REMOVE_RECURSE
  "CMakeFiles/fig16_power_gating.dir/fig16_power_gating.cpp.o"
  "CMakeFiles/fig16_power_gating.dir/fig16_power_gating.cpp.o.d"
  "fig16_power_gating"
  "fig16_power_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_power_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/scaling_workers.dir/scaling_workers.cpp.o"
  "CMakeFiles/scaling_workers.dir/scaling_workers.cpp.o.d"
  "scaling_workers"
  "scaling_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dvfs_study.dir/dvfs_study.cpp.o"
  "CMakeFiles/dvfs_study.dir/dvfs_study.cpp.o.d"
  "dvfs_study"
  "dvfs_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

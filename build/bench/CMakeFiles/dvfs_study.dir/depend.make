# Empty dependencies file for dvfs_study.
# This may be replaced when dependencies are built.

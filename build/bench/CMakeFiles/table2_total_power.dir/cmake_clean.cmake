file(REMOVE_RECURSE
  "CMakeFiles/table2_total_power.dir/table2_total_power.cpp.o"
  "CMakeFiles/table2_total_power.dir/table2_total_power.cpp.o.d"
  "table2_total_power"
  "table2_total_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_total_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

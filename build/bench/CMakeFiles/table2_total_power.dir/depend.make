# Empty dependencies file for table2_total_power.
# This may be replaced when dependencies are built.

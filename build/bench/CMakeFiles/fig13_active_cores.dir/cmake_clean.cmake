file(REMOVE_RECURSE
  "CMakeFiles/fig13_active_cores.dir/fig13_active_cores.cpp.o"
  "CMakeFiles/fig13_active_cores.dir/fig13_active_cores.cpp.o.d"
  "fig13_active_cores"
  "fig13_active_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_active_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig13_active_cores.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig15_techniques.
# This may be replaced when dependencies are built.

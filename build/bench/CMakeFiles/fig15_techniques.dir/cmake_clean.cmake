file(REMOVE_RECURSE
  "CMakeFiles/fig15_techniques.dir/fig15_techniques.cpp.o"
  "CMakeFiles/fig15_techniques.dir/fig15_techniques.cpp.o.d"
  "fig15_techniques"
  "fig15_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

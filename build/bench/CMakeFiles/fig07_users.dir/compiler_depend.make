# Empty compiler generated dependencies file for fig07_users.
# This may be replaced when dependencies are built.

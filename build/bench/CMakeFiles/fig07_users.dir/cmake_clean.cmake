file(REMOVE_RECURSE
  "CMakeFiles/fig07_users.dir/fig07_users.cpp.o"
  "CMakeFiles/fig07_users.dir/fig07_users.cpp.o.d"
  "fig07_users"
  "fig07_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

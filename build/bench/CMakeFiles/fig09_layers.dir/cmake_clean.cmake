file(REMOVE_RECURSE
  "CMakeFiles/fig09_layers.dir/fig09_layers.cpp.o"
  "CMakeFiles/fig09_layers.dir/fig09_layers.cpp.o.d"
  "fig09_layers"
  "fig09_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

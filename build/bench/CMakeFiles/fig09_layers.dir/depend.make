# Empty dependencies file for fig09_layers.
# This may be replaced when dependencies are built.

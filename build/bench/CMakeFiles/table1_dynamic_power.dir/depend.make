# Empty dependencies file for table1_dynamic_power.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_wake_period.dir/ablation_wake_period.cpp.o"
  "CMakeFiles/ablation_wake_period.dir/ablation_wake_period.cpp.o.d"
  "ablation_wake_period"
  "ablation_wake_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wake_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

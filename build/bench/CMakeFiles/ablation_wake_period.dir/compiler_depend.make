# Empty compiler generated dependencies file for ablation_wake_period.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig08_prbs.
# This may be replaced when dependencies are built.

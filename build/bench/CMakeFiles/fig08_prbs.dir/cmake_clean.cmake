file(REMOVE_RECURSE
  "CMakeFiles/fig08_prbs.dir/fig08_prbs.cpp.o"
  "CMakeFiles/fig08_prbs.dir/fig08_prbs.cpp.o.d"
  "fig08_prbs"
  "fig08_prbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_prbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_margin.
# This may be replaced when dependencies are built.

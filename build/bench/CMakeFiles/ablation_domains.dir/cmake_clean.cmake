file(REMOVE_RECURSE
  "CMakeFiles/ablation_domains.dir/ablation_domains.cpp.o"
  "CMakeFiles/ablation_domains.dir/ablation_domains.cpp.o.d"
  "ablation_domains"
  "ablation_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig12_estimation.dir/fig12_estimation.cpp.o"
  "CMakeFiles/fig12_estimation.dir/fig12_estimation.cpp.o.d"
  "fig12_estimation"
  "fig12_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

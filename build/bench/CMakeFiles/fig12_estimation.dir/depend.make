# Empty dependencies file for fig12_estimation.
# This may be replaced when dependencies are built.

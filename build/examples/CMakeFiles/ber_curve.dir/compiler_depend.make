# Empty compiler generated dependencies file for ber_curve.
# This may be replaced when dependencies are built.

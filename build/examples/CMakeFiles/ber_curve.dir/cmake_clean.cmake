file(REMOVE_RECURSE
  "CMakeFiles/ber_curve.dir/ber_curve.cpp.o"
  "CMakeFiles/ber_curve.dir/ber_curve.cpp.o.d"
  "ber_curve"
  "ber_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ber_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/uplink_benchmark.dir/uplink_benchmark.cpp.o"
  "CMakeFiles/uplink_benchmark.dir/uplink_benchmark.cpp.o.d"
  "uplink_benchmark"
  "uplink_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uplink_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

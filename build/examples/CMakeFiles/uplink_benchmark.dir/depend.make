# Empty dependencies file for uplink_benchmark.
# This may be replaced when dependencies are built.

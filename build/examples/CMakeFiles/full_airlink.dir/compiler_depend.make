# Empty compiler generated dependencies file for full_airlink.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/full_airlink.dir/full_airlink.cpp.o"
  "CMakeFiles/full_airlink.dir/full_airlink.cpp.o.d"
  "full_airlink"
  "full_airlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_airlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

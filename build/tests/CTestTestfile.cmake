# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_modulation[1]_include.cmake")
include("/root/repo/build/tests/test_phy_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_turbo[1]_include.cmake")
include("/root/repo/build/tests/test_receiver[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_mgmt[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_dvfs_latency[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_rate_matching[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_modes[1]_include.cmake")

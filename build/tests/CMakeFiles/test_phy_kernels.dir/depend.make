# Empty dependencies file for test_phy_kernels.
# This may be replaced when dependencies are built.

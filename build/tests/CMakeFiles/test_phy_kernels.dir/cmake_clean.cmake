file(REMOVE_RECURSE
  "CMakeFiles/test_phy_kernels.dir/test_phy_kernels.cpp.o"
  "CMakeFiles/test_phy_kernels.dir/test_phy_kernels.cpp.o.d"
  "test_phy_kernels"
  "test_phy_kernels.pdb"
  "test_phy_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_modulation.dir/test_modulation.cpp.o"
  "CMakeFiles/test_modulation.dir/test_modulation.cpp.o.d"
  "test_modulation"
  "test_modulation.pdb"
  "test_modulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

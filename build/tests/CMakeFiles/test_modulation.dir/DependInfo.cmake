
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_modulation.cpp" "tests/CMakeFiles/test_modulation.dir/test_modulation.cpp.o" "gcc" "tests/CMakeFiles/test_modulation.dir/test_modulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/lte_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/lte_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/lte_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lte_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_mgmt.dir/test_mgmt.cpp.o"
  "CMakeFiles/test_mgmt.dir/test_mgmt.cpp.o.d"
  "test_mgmt"
  "test_mgmt.pdb"
  "test_mgmt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_rate_matching.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_rate_matching.dir/test_rate_matching.cpp.o"
  "CMakeFiles/test_rate_matching.dir/test_rate_matching.cpp.o.d"
  "test_rate_matching"
  "test_rate_matching.pdb"
  "test_rate_matching[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_turbo.dir/test_turbo.cpp.o"
  "CMakeFiles/test_turbo.dir/test_turbo.cpp.o.d"
  "test_turbo"
  "test_turbo.pdb"
  "test_turbo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

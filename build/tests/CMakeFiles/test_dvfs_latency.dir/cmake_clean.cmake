file(REMOVE_RECURSE
  "CMakeFiles/test_dvfs_latency.dir/test_dvfs_latency.cpp.o"
  "CMakeFiles/test_dvfs_latency.dir/test_dvfs_latency.cpp.o.d"
  "test_dvfs_latency"
  "test_dvfs_latency.pdb"
  "test_dvfs_latency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dvfs_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_dvfs_latency.
# This may be replaced when dependencies are built.

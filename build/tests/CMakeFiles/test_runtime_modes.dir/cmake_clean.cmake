file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_modes.dir/test_runtime_modes.cpp.o"
  "CMakeFiles/test_runtime_modes.dir/test_runtime_modes.cpp.o.d"
  "test_runtime_modes"
  "test_runtime_modes.pdb"
  "test_runtime_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_runtime_modes.
# This may be replaced when dependencies are built.

/**
 * @file
 * Fig. 13 — estimated number of active cores per subframe (Eq. 5)
 * over the evaluation run.
 */
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Fig. 13: estimated active cores per subframe",
                        args);

    core::UplinkStudy study(args.study_config());
    study.prepare();
    const auto outcome = study.run_strategy(mgmt::Strategy::kNoNap);

    std::vector<double> x, cores;
    RunningStats stats;
    for (std::size_t i = 0; i < outcome.sim.active_cores.size(); ++i) {
        x.push_back(static_cast<double>(i));
        cores.push_back(
            static_cast<double>(outcome.sim.active_cores[i]));
        stats.add(outcome.sim.active_cores[i]);
    }

    report::SeriesSet set("subframe", x);
    set.add("active_cores", cores);
    set.print_summary(std::cout);
    args.maybe_write_csv(set, "fig13_active_cores", args.plot_stride());

    std::cout << "\npaper: the active-core count changes rapidly across "
                 "the whole run,\n       spanning the margin (2) up to "
                 "all 62 workers.\nmeasured: range ["
              << stats.min() << ", " << stats.max() << "], mean "
              << report::fmt(stats.mean(), 1) << "\n";
    return 0;
}

/**
 * @file
 * Extension study: estimation-driven DVFS (the paper's related-work
 * pointer — Choi et al.'s frame-based DVFS applied to subframes).
 * Per subframe, the clock is scaled to the slowest frequency that
 * still fits the estimated workload, with core power scaling as
 * f * V(f)^2.  Compared against the paper's clock-gating strategies,
 * combined with NAP+IDLE, and against the PR 10 per-domain state
 * machine (discrete rungs + inline gating), reporting both power and
 * the responsiveness cost (per-user completion latency).
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Extension: estimation-driven DVFS", args);

    core::StudyConfig base_cfg = args.study_config();
    core::UplinkStudy study(base_cfg);
    study.prepare();
    // One calibration pass for every variant: the estimator table and
    // the cycles/op scale depend only on the machine geometry and the
    // cost model, never on the power policy under study.
    const core::Calibration calibration = study.calibration();

    struct Variant
    {
        const char *name;
        mgmt::PowerPolicy policy;
    };
    auto dvfs_nonap = mgmt::PowerPolicy::nonap();
    dvfs_nonap.dvfs = true;
    auto dvfs_napidle = mgmt::PowerPolicy::nap_idle();
    dvfs_napidle.dvfs = true;
    const Variant variants[] = {
        {"NONAP", mgmt::PowerPolicy::nonap()},
        {"NAP+IDLE", mgmt::PowerPolicy::nap_idle()},
        {"DVFS", dvfs_nonap},
        {"DVFS+NAP+IDLE", dvfs_napidle},
        {"DOMAIN-DVFS", mgmt::PowerPolicy::domain_dvfs()},
    };

    report::TextTable table({"Variant", "Avg power (W)",
                             "mean latency (subframes)",
                             "max latency", "99% deadline (3 sf)"});
    for (const auto &v : variants) {
        core::UplinkStudy run_study(base_cfg);
        run_study.adopt_calibration(calibration);
        const auto outcome = run_study.run_policy(v.policy);
        table.add_row(
            {v.name, report::fmt(outcome.avg_power_w, 2),
             report::fmt(outcome.sim.mean_latency(), 2),
             report::fmt(outcome.sim.max_latency(), 1),
             report::fmt(100.0 * outcome.sim.deadline_hit_rate(3.0),
                         1) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nDVFS trades latency headroom for quadratic voltage "
                 "savings; combining\nit with NAP+IDLE stacks both "
                 "mechanisms, at the cost of running closer\nto the "
                 "responsiveness limit (the paper permits 2-3 "
                 "subframes in flight).\nDOMAIN-DVFS quantises the "
                 "clock onto discrete f-V rungs and power-gates\n"
                 "surplus 8-core domains inline, charging wake "
                 "latencies and transition\nenergy instead of assuming "
                 "free switching.\n";
    return 0;
}

/**
 * @file
 * Extension study: estimation-driven DVFS (the paper's related-work
 * pointer — Choi et al.'s frame-based DVFS applied to subframes).
 * Per subframe, the clock is scaled to the slowest frequency that
 * still fits the estimated workload, with core power scaling as
 * f * V(f)^2.  Compared against the paper's clock-gating strategies
 * and combined with NAP+IDLE, reporting both power and the
 * responsiveness cost (per-user completion latency).
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Extension: estimation-driven DVFS", args);

    core::StudyConfig base_cfg = args.study_config();
    core::UplinkStudy study(base_cfg);
    study.prepare();

    struct Variant
    {
        const char *name;
        mgmt::Strategy strategy;
        bool dvfs;
    };
    const Variant variants[] = {
        {"NONAP", mgmt::Strategy::kNoNap, false},
        {"NAP+IDLE", mgmt::Strategy::kNapIdle, false},
        {"DVFS", mgmt::Strategy::kNoNap, true},
        {"DVFS+NAP+IDLE", mgmt::Strategy::kNapIdle, true},
    };

    report::TextTable table({"Variant", "Avg power (W)",
                             "mean latency (subframes)",
                             "max latency", "99% deadline (3 sf)"});
    for (const auto &v : variants) {
        core::StudyConfig cfg = base_cfg;
        cfg.sim.dvfs = v.dvfs;
        cfg.sim.cycles_per_op = study.cycles_per_op();
        core::UplinkStudy run_study(cfg);
        // Reuse the prepared calibration by re-preparing quickly: the
        // estimator depends only on the cost model, which is shared.
        run_study.prepare();
        const auto outcome = run_study.run_strategy(v.strategy);
        table.add_row(
            {v.name, report::fmt(outcome.avg_power_w, 2),
             report::fmt(outcome.sim.mean_latency(), 2),
             report::fmt(outcome.sim.max_latency(), 1),
             report::fmt(100.0 * outcome.sim.deadline_hit_rate(3.0),
                         1) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nDVFS trades latency headroom for quadratic voltage "
                 "savings; combining\nit with NAP+IDLE stacks both "
                 "mechanisms, at the cost of running closer\nto the "
                 "responsiveness limit (the paper permits 2-3 "
                 "subframes in flight).\n";
    return 0;
}

/**
 * @file
 * Fig. 9 — maximum and minimum layer count across the users of each
 * subframe, following the triangular workload ramp.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "workload/paper_model.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Fig. 9: layers per subframe (max / min)", args);

    const auto cfg = args.study_config();
    workload::PaperModel model(cfg.model);

    std::vector<double> x, max_layers, min_layers;
    // Ramp checkpoints: start, peak, end.
    double start_mean = 0.0, peak_mean = 0.0;
    std::uint64_t start_n = 0, peak_n = 0;
    const std::uint64_t peak = cfg.model.ramp_subframes;

    for (std::uint64_t i = 0; i < args.subframes; ++i) {
        const auto sf = model.next_subframe();
        std::uint32_t hi = 0, lo = 5;
        for (const auto &u : sf.users) {
            hi = std::max(hi, u.layers);
            lo = std::min(lo, u.layers);
        }
        x.push_back(static_cast<double>(i));
        max_layers.push_back(static_cast<double>(hi));
        min_layers.push_back(static_cast<double>(lo));
        for (const auto &u : sf.users) {
            if (i < peak / 20) {
                start_mean += u.layers;
                ++start_n;
            } else if (i > peak - peak / 20 && i < peak + peak / 20) {
                peak_mean += u.layers;
                ++peak_n;
            }
        }
    }

    report::SeriesSet set("subframe", x);
    set.add("max", max_layers);
    set.add("min", min_layers);
    set.print_summary(std::cout);
    args.maybe_write_csv(set, "fig09_layers", args.plot_stride());

    std::cout << "\npaper: layer counts ramp from all-1 at the start to "
                 "all-4 at the\n       34 000-subframe peak and back."
                 "\nmeasured: mean layers near start = "
              << report::fmt(start_mean / static_cast<double>(start_n), 2)
              << ", near peak = "
              << report::fmt(peak_mean / static_cast<double>(peak_n), 2)
              << "\n";
    return 0;
}

/**
 * @file
 * Extension study (paper Sec. VIII): the conclusion argues that a
 * realistic base station averaging ~25% load with long low-activity
 * periods benefits even more from estimation-guided power management
 * than the stressful 50%-average evaluation model.  This harness runs
 * all five techniques over the DiurnalModel and compares the savings
 * against the paper-model run.
 */
#include <iostream>

#include "bench_util.hpp"
#include "workload/diurnal_model.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner(
        "Extension: diurnal 25%-average-load power study", args);

    core::UplinkStudy study(args.study_config());
    study.prepare();

    workload::DiurnalModelConfig diurnal_cfg;
    diurnal_cfg.period_subframes = args.subframes;

    report::TextTable table({"Technique", "50%-load model (W)",
                             "diurnal 25% model (W)",
                             "50% saving vs NONAP",
                             "diurnal saving vs NONAP"});
    double nonap_paper = 0.0, nonap_diurnal = 0.0;
    for (mgmt::Strategy s : mgmt::kAllStrategies) {
        const double paper_power = study.run_strategy(s).avg_power_w;
        workload::DiurnalModel diurnal(diurnal_cfg);
        const double diurnal_power =
            study.run_strategy_on(s, diurnal, args.subframes)
                .avg_power_w;
        if (s == mgmt::Strategy::kNoNap) {
            nonap_paper = paper_power;
            nonap_diurnal = diurnal_power;
        }
        table.add_row(
            {mgmt::strategy_name(s), report::fmt(paper_power, 2),
             report::fmt(diurnal_power, 2),
             report::fmt_percent((paper_power - nonap_paper) /
                                 -nonap_paper),
             report::fmt_percent((diurnal_power - nonap_diurnal) /
                                 -nonap_diurnal)});
    }
    table.print(std::cout);

    std::cout << "\npaper's conjecture: \"Our technique would show even "
                 "greater benefits\nfor a more realistic use case.\"  "
                 "The diurnal column quantifies it:\nrelative savings "
                 "grow at 25% average load because far more cores can\n"
                 "nap or be gated off for long stretches.\n";
    return 0;
}

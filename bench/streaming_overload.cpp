/**
 * @file
 * Streaming-engine overload study: drives the TTI-paced streaming
 * engine at ~2x its measured service capacity and compares the three
 * shed policies (drop-newest, drop-oldest, degrade) against the
 * lossless backpressure baseline.
 *
 * For each policy the table reports the admission accounting
 * (submitted / admitted / completed / shed, split into queue-full and
 * expired), the degraded-chain count, deadline misses among completed
 * subframes, and the p50/p99 admission-to-completion latency drawn
 * from the per-subframe observability series.  The point of the
 * exercise: with shedding enabled, tail latency stays bounded by the
 * deadline even though offered load is twice capacity, at the cost of
 * dropped (or degraded) subframes — the lossless baseline instead
 * lets latency grow with the backlog.
 */
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "runtime/engine.hpp"
#include "workload/steady_model.hpp"

namespace {

using namespace lte;

/** The saturating subframe used throughout: one maximal-rate user. */
phy::UserParams
heavy_user()
{
    phy::UserParams u;
    u.id = 0;
    u.prb = 100;
    u.layers = 4;
    u.mod = Modulation::k64Qam;
    return u;
}

/** Serial per-subframe service time, measured after warm-up. */
double
measure_service_ms(std::uint64_t seed)
{
    runtime::EngineConfig cfg;
    cfg.kind = runtime::EngineKind::kSerial;
    cfg.input.pool_size = 2;
    cfg.input.seed = seed;
    auto engine = runtime::make_engine(cfg);
    phy::SubframeParams sf;
    sf.subframe_index = 0;
    sf.users.push_back(heavy_user());
    engine->process_subframe(sf);
    const auto t0 = std::chrono::steady_clock::now();
    const int reps = 8;
    for (int i = 0; i < reps; ++i)
        engine->process_subframe(sf);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() /
           reps;
}

/**
 * Effective per-subframe drain time of the actual streaming pipeline
 * (lossless, free-running): unlike serial_service / n_workers this
 * reflects the host's real parallelism — on a single-core container
 * the pool cannot scale and the drain time stays near the serial
 * service time.
 */
double
measure_drain_ms(std::uint64_t seed, std::size_t n_workers,
                 std::size_t max_in_flight)
{
    runtime::EngineConfig cfg;
    cfg.kind = runtime::EngineKind::kStreaming;
    cfg.pool.n_workers = n_workers;
    cfg.input.pool_size = 2;
    cfg.input.seed = seed;
    cfg.max_in_flight = max_in_flight;
    cfg.admission_queue = 8;
    cfg.delta_ms = 0.0;   // free-running
    cfg.deadline_ms = 0.0; // lossless: backpressure, never shed
    auto engine = runtime::make_engine(cfg);
    phy::SubframeParams sf;
    sf.subframe_index = 0;
    sf.users.push_back(heavy_user());
    for (int i = 0; i < 4; ++i)
        engine->process_subframe(sf); // warm-up: arenas, FFT plans
    workload::SteadyModel model(heavy_user());
    const std::size_t n = 24;
    const auto record = engine->run(model, n);
    return record.wall_seconds * 1e3 / static_cast<double>(n);
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1));
    return values[idx];
}

struct Scenario
{
    const char *label;
    double deadline_ms; // 0 = lossless backpressure
    runtime::ShedPolicy policy;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Streaming engine: shed policies under 2x "
                        "overload",
                        args);

    const double service_ms = measure_service_ms(args.seed);
    const std::size_t n_workers = 4;
    const std::size_t max_in_flight = n_workers;
    const double drain_ms =
        measure_drain_ms(args.seed, n_workers, max_in_flight);
    // Arrivals at twice the pipeline's measured drain rate — a true 2x
    // overload regardless of how many cores the host really grants.
    const double delta_ms = drain_ms / 2.0;
    const double deadline_ms = 3.0 * drain_ms;
    const std::size_t n_subframes = args.full ? 1000 : 240;

    std::cout << "serial service time:   " << report::fmt(service_ms, 3)
              << " ms/subframe\n"
              << "pipeline drain time:   " << report::fmt(drain_ms, 3)
              << " ms/subframe (" << n_workers << " workers, "
              << max_in_flight << " in flight)\n"
              << "arrival period:        " << report::fmt(delta_ms, 3)
              << " ms  (2x overload)\n"
              << "admission deadline:    " << report::fmt(deadline_ms, 3)
              << " ms\n\n";

    const Scenario scenarios[] = {
        {"lossless", 0.0, runtime::ShedPolicy::kDropNewest},
        {"drop-newest", deadline_ms, runtime::ShedPolicy::kDropNewest},
        {"drop-oldest", deadline_ms, runtime::ShedPolicy::kDropOldest},
        {"degrade", deadline_ms, runtime::ShedPolicy::kDegrade},
    };

    report::TextTable table({"policy", "submitted", "completed", "shed",
                             "q-full", "expired", "degraded", "misses",
                             "p50 ms", "p99 ms", "wall s"});
    for (const Scenario &sc : scenarios) {
        runtime::EngineConfig cfg;
        cfg.kind = runtime::EngineKind::kStreaming;
        cfg.pool.n_workers = n_workers;
        cfg.input.pool_size = 2;
        cfg.input.seed = args.seed;
        cfg.max_in_flight = max_in_flight;
        cfg.admission_queue = 8;
        cfg.delta_ms = delta_ms;
        cfg.deadline_ms = sc.deadline_ms;
        cfg.shed_policy = sc.policy;
        cfg.obs.enabled = true;
        cfg.obs.deadline_ms = deadline_ms;
        cfg.obs.series_capacity = n_subframes;
        auto engine = runtime::make_engine(cfg);

        workload::SteadyModel model(heavy_user());
        const auto record = engine->run(model, n_subframes);

        const auto &stats =
            dynamic_cast<const runtime::StreamingEngine &>(*engine)
                .shed_stats();
        const auto &series = *engine->subframe_series();
        std::vector<double> latencies;
        latencies.reserve(series.size());
        for (std::size_t i = 0; i < series.size(); ++i)
            latencies.push_back(series.at(i).latency_ms());
        const double misses =
            engine->metrics()->counter("engine.deadline_misses").value();

        table.add_row({sc.label, std::to_string(stats.submitted),
                       std::to_string(stats.completed),
                       std::to_string(stats.shed),
                       std::to_string(stats.shed_queue_full),
                       std::to_string(stats.shed_expired),
                       std::to_string(stats.degraded),
                       report::fmt(misses, 0),
                       report::fmt(percentile(latencies, 0.50), 2),
                       report::fmt(percentile(latencies, 0.99), 2),
                       report::fmt(record.wall_seconds, 2)});
    }
    table.print(std::cout);
    std::cout << "\nwith a deadline and a shed policy, the queue wait "
                 "is capped by the\nadmission deadline, so p99 latency "
                 "settles near deadline +\nmax_in_flight x drain ("
              << report::fmt(deadline_ms +
                                 static_cast<double>(max_in_flight) *
                                     drain_ms,
                             1)
              << " ms here) no matter how long the run;\nthe lossless "
                 "baseline's latency instead grows with the backlog.\n"
                 "'degrade' converts would-be drops into cheap MRC + "
                 "turbo-bypass\nsubframes and completes the most "
                 "traffic.\n";
    return 0;
}

/**
 * @file
 * Streaming-engine overload study: drives the TTI-paced streaming
 * engine at ~2x its measured service capacity and compares the three
 * shed policies (drop-newest, drop-oldest, degrade) against the
 * lossless backpressure baseline.
 *
 * For each policy the table reports the admission accounting
 * (submitted / admitted / completed / shed, split into queue-full and
 * expired), the degraded-chain count, deadline misses among completed
 * subframes, and the p50/p99 admission-to-completion latency drawn
 * from the per-subframe observability series.  The point of the
 * exercise: with shedding enabled, tail latency stays bounded by the
 * deadline even though offered load is twice capacity, at the cost of
 * dropped (or degraded) subframes — the lossless baseline instead
 * lets latency grow with the backlog.
 */
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "runtime/admission.hpp"
#include "runtime/engine.hpp"
#include "runtime/multicell.hpp"
#include "sim/machine.hpp"
#include "workload/parameter_model.hpp"
#include "workload/steady_model.hpp"

namespace {

using namespace lte;

/** The saturating subframe used throughout: one maximal-rate user. */
phy::UserParams
heavy_user()
{
    phy::UserParams u;
    u.id = 0;
    u.prb = 100;
    u.layers = 4;
    u.mod = Modulation::k64Qam;
    return u;
}

/** Serial per-subframe service time, measured after warm-up. */
double
measure_service_ms(std::uint64_t seed)
{
    runtime::EngineConfig cfg;
    cfg.kind = runtime::EngineKind::kSerial;
    cfg.input.pool_size = 2;
    cfg.input.seed = seed;
    auto engine = runtime::make_engine(cfg);
    phy::SubframeParams sf;
    sf.subframe_index = 0;
    sf.users.push_back(heavy_user());
    engine->process_subframe(sf);
    const auto t0 = std::chrono::steady_clock::now();
    const int reps = 8;
    for (int i = 0; i < reps; ++i)
        engine->process_subframe(sf);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() /
           reps;
}

/**
 * Effective per-subframe drain time of the actual streaming pipeline
 * (lossless, free-running): unlike serial_service / n_workers this
 * reflects the host's real parallelism — on a single-core container
 * the pool cannot scale and the drain time stays near the serial
 * service time.
 */
double
measure_drain_ms(std::uint64_t seed, std::size_t n_workers,
                 std::size_t max_in_flight)
{
    runtime::EngineConfig cfg;
    cfg.kind = runtime::EngineKind::kStreaming;
    cfg.pool.n_workers = n_workers;
    cfg.input.pool_size = 2;
    cfg.input.seed = seed;
    cfg.max_in_flight = max_in_flight;
    cfg.admission_queue = 8;
    cfg.delta_ms = 0.0;   // free-running
    cfg.deadline_ms = 0.0; // lossless: backpressure, never shed
    auto engine = runtime::make_engine(cfg);
    phy::SubframeParams sf;
    sf.subframe_index = 0;
    sf.users.push_back(heavy_user());
    for (int i = 0; i < 4; ++i)
        engine->process_subframe(sf); // warm-up: arenas, FFT plans
    workload::SteadyModel model(heavy_user());
    const std::size_t n = 24;
    const auto record = engine->run(model, n);
    return record.wall_seconds * 1e3 / static_cast<double>(n);
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1));
    return values[idx];
}

/** Fixed multi-user subframe repeated every TTI. */
class FixedSubframeModel : public workload::ParameterModel
{
  public:
    explicit FixedSubframeModel(phy::SubframeParams sf)
        : sf_(std::move(sf))
    {
    }

    phy::SubframeParams next_subframe() override
    {
        sf_.subframe_index = next_index_++;
        return sf_;
    }

    void reset() override { next_index_ = 0; }

  private:
    phy::SubframeParams sf_;
    std::uint64_t next_index_ = 0;
};

/** Two maximal users: 200 PRB x 4 layers x 64QAM each.  Every canonical
 *  symbol block of such a user exceeds the 6144-bit codeblock limit, so
 *  each tail splits into 48 codeblock tasks — with fewer users than
 *  workers, per-user tail serialisation (not total work) is what
 *  bounds the pipeline's drain rate. */
phy::SubframeParams
heavy_tail_subframe()
{
    phy::SubframeParams sf;
    for (std::uint32_t u = 0; u < 2; ++u) {
        phy::UserParams user;
        user.id = u;
        user.prb = 200;
        user.layers = 4;
        user.mod = Modulation::k64Qam;
        sf.users.push_back(user);
    }
    return sf;
}

/**
 * Heavy-user scenario: admission-to-completion latency of the lossless
 * free-running pipeline on a subframe with fewer users than workers but
 * a maximal per-user tail fan-out.  Work conservation across stage
 * boundaries is the whole story here: a pipeline that parks workers at
 * stage joins (or funnels each user's tail through one worker) leaves
 * half the pool idle, which shows up directly in p50/p99.
 */
void
run_heavy_scenario(std::uint64_t seed, bool full)
{
    const phy::SubframeParams sf = heavy_tail_subframe();
    // LTE_BENCH_WORKERS widens the pool past the default four — e.g.
    // to measure oversubscription robustness on small hosts, where
    // stage-join sensitivity shows up as completion-latency jitter.
    std::size_t n_workers = 4;
    if (const char *env = std::getenv("LTE_BENCH_WORKERS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        n_workers = static_cast<std::size_t>(
            std::clamp(parsed, 1L, 16L));
    }
    const std::size_t warmup = 4;
    const std::size_t n_subframes = full ? 200 : 60;

    // Serial reference for context (and the parallel speedup column).
    runtime::EngineConfig serial_cfg;
    serial_cfg.kind = runtime::EngineKind::kSerial;
    serial_cfg.input.pool_size = 2;
    serial_cfg.input.seed = seed;
    auto serial = runtime::make_engine(serial_cfg);
    serial->process_subframe(sf);
    const auto t0 = std::chrono::steady_clock::now();
    const int reps = 6;
    for (int i = 0; i < reps; ++i)
        serial->process_subframe(sf);
    const auto t1 = std::chrono::steady_clock::now();
    const double serial_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;

    runtime::EngineConfig cfg;
    cfg.kind = runtime::EngineKind::kStreaming;
    cfg.pool.n_workers = n_workers;
    cfg.input.pool_size = 2;
    cfg.input.seed = seed;
    cfg.max_in_flight = n_workers;
    cfg.admission_queue = 8;
    cfg.delta_ms = 0.0;    // free-running: latency reflects the
    cfg.deadline_ms = 0.0; // pipeline's real drain rate, nothing else
    cfg.obs.enabled = true;
    cfg.obs.series_capacity = warmup + n_subframes;
    auto engine = runtime::make_engine(cfg);
    for (std::size_t i = 0; i < warmup; ++i)
        engine->process_subframe(sf); // arenas, FFT plans, job pool

    FixedSubframeModel model(sf);
    const auto record = engine->run(model, n_subframes);

    const auto &series = *engine->subframe_series();
    std::vector<double> latencies;
    latencies.reserve(series.size());
    for (std::size_t i = warmup; i < series.size(); ++i)
        latencies.push_back(series.at(i).latency_ms());
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);
    const double per_sf_ms =
        record.wall_seconds * 1e3 / static_cast<double>(n_subframes);

    std::cout << "\n== heavy-user tail fan-out ("
              << sf.users.size() << " users x 200 PRB x 4 layers x "
              << "64QAM, " << n_workers << " workers, lossless) ==\n"
              << "serial service:        " << report::fmt(serial_ms, 3)
              << " ms/subframe\n"
              << "pipeline drain:        " << report::fmt(per_sf_ms, 3)
              << " ms/subframe (speedup "
              << report::fmt(serial_ms / per_sf_ms, 2) << "x)\n"
              << "admission-to-completion latency:  p50 "
              << report::fmt(p50, 2) << " ms, p99 "
              << report::fmt(p99, 2) << " ms over " << n_subframes
              << " subframes\n"
              // Machine-readable line for results/BENCH_pr6.json.
              << "heavy: n=" << n_subframes << " workers=" << n_workers
              << " serial_ms=" << report::fmt(serial_ms, 4)
              << " drain_ms=" << report::fmt(per_sf_ms, 4)
              << " p50_ms=" << report::fmt(p50, 4)
              << " p99_ms=" << report::fmt(p99, 4)
              << " wall_s=" << report::fmt(record.wall_seconds, 3)
              << "\n";
}

/**
 * Deterministic before/after of the continuation-graph tail on the
 * discrete-event machine model: identical subframes, identical worker
 * count and per-task op costs, only the tail structure differs —
 * split_tail=false replays the pre-refactor monolithic per-user tail,
 * split_tail=true the per-codeblock fan-out plus reduce the runtime
 * executes today.  Virtual time sidesteps host core counts entirely,
 * so this isolates the scheduling effect the wall-clock section can
 * only show on a genuinely parallel machine.
 */
void
run_heavy_sim_comparison(bool full)
{
    const phy::SubframeParams sf = heavy_tail_subframe();
    const std::uint64_t n_subframes = full ? 1000 : 200;
    // The paper's TILEPro64 operating point: 62 worker cores.
    const std::uint32_t n_workers = 62;

    sim::SimConfig cfg;
    cfg.n_workers = n_workers;
    cfg.delta_s = 0.001; // standard TTI
    // Pin utilisation at ~60% of machine capacity so the comparison
    // measures schedule shape, not queueing collapse.
    const std::uint64_t ops =
        runtime::admission::subframe_ops(sf, /*n_antennas=*/4);
    cfg.cycles_per_op = 0.6 * static_cast<double>(cfg.n_workers) *
                        cfg.delta_s * cfg.clock_hz /
                        static_cast<double>(ops);

    double p50[2] = {0.0, 0.0}, p99[2] = {0.0, 0.0};
    for (int split = 0; split < 2; ++split) {
        cfg.split_tail = split == 1;
        sim::Machine machine(cfg, /*n_antennas=*/4);
        FixedSubframeModel model(sf);
        const sim::SimResult result =
            machine.run(model, n_subframes);
        std::vector<double> lat_ms;
        lat_ms.reserve(result.user_latency.size());
        for (const double periods : result.user_latency)
            lat_ms.push_back(periods * cfg.delta_s * 1e3);
        p50[split] = percentile(lat_ms, 0.50);
        p99[split] = percentile(lat_ms, 0.99);
    }

    std::cout << "simulated machine (" << n_workers
              << " workers, 1 ms TTI, 60% utilisation, "
              << n_subframes << " subframes):\n"
              << "  monolithic tail (pre-refactor):  p50 "
              << report::fmt(p50[0], 3) << " ms, p99 "
              << report::fmt(p99[0], 3) << " ms\n"
              << "  per-codeblock tail + reduce:     p50 "
              << report::fmt(p50[1], 3) << " ms, p99 "
              << report::fmt(p99[1], 3) << " ms  (p99 "
              << report::fmt(100.0 * (1.0 - p99[1] / p99[0]), 1)
              << "% lower)\n"
              // Machine-readable line for results/BENCH_pr6.json.
              << "heavy-sim: workers=" << n_workers
              << " n=" << n_subframes
              << " before_p50_ms=" << report::fmt(p50[0], 4)
              << " before_p99_ms=" << report::fmt(p99[0], 4)
              << " after_p50_ms=" << report::fmt(p50[1], 4)
              << " after_p99_ms=" << report::fmt(p99[1], 4)
              << "\n";
}

struct Scenario
{
    const char *label;
    double deadline_ms; // 0 = lossless backpressure
    runtime::ShedPolicy policy;
};

/**
 * Inline-vs-offloaded sample plane A/B (PR 8's tentpole measurement).
 *
 * Fresh-generation mode gives the input generator a real per-TTI
 * synthesis cost (every subframe's IQ samples are regenerated, as a
 * fronthaul would deliver genuinely new air data) — in the inline
 * configuration that cost lands on the dispatch thread, inside the
 * admission loop, where it competes with admitting, reaping and
 * shedding; offloaded, it moves to one producer thread per cell and
 * the dispatch loop only moves frame pointers.  Under calibrated 2x
 * overload the dispatch thread is the bottleneck resource, so the
 * offloaded configuration sustains a higher completion rate / lower
 * p99 — that delta is the benefit the sample plane buys.
 */
void
run_io_offload_comparison(std::uint64_t seed, bool full)
{
    // Calibrate against the *fresh-mode* inline drain: the overload
    // must be 2x the pipeline that pays synthesis inline, so both
    // sides of the A/B face identical offered load.
    runtime::EngineConfig probe;
    probe.kind = runtime::EngineKind::kStreaming;
    probe.pool.n_workers = 4;
    probe.input.pool_size = 2;
    probe.input.seed = seed;
    probe.input.fresh = true;
    probe.max_in_flight = 4;
    probe.admission_queue = 8;
    probe.delta_ms = 0.0;
    probe.deadline_ms = 0.0;
    double drain_ms;
    {
        auto engine = runtime::make_engine(probe);
        phy::SubframeParams sf;
        sf.subframe_index = 0;
        sf.users.push_back(heavy_user());
        for (int i = 0; i < 4; ++i)
            engine->process_subframe(sf);
        workload::SteadyModel model(heavy_user());
        const std::size_t n = 24;
        const auto record = engine->run(model, n);
        drain_ms = record.wall_seconds * 1e3 / static_cast<double>(n);
    }
    const double delta_ms = drain_ms / 2.0; // 2x overload
    const double deadline_ms = 3.0 * drain_ms;
    const std::size_t n_subframes = full ? 400 : 120;

    std::cout << "\n== sample plane: inline vs offloaded input under "
                 "2x overload ==\n"
              << "fresh-mode drain:      " << report::fmt(drain_ms, 3)
              << " ms/subframe; arrivals every "
              << report::fmt(delta_ms, 3) << " ms, deadline "
              << report::fmt(deadline_ms, 3) << " ms\n";

    report::TextTable table({"cells", "input", "completed", "shed",
                             "io-lost", "rate /s", "p50 ms", "p99 ms",
                             "wall s"});
    for (std::size_t n_cells : {1u, 2u, 4u}) {
        for (int offloaded = 0; offloaded < 2; ++offloaded) {
            runtime::MultiCellConfig cfg;
            cfg.n_cells = n_cells;
            cfg.engine = probe;
            cfg.engine.delta_ms = delta_ms;
            cfg.engine.deadline_ms = deadline_ms;
            cfg.engine.shed_policy = runtime::ShedPolicy::kDropNewest;
            cfg.engine.obs.enabled = true;
            cfg.engine.obs.deadline_ms = deadline_ms;
            cfg.engine.obs.series_capacity = n_subframes * n_cells;
            if (offloaded != 0) {
                cfg.engine.io.enabled = true;
                cfg.engine.io.source = io::SourceKind::kGenerator;
                cfg.engine.io.n_frames = 8;
            }
            runtime::MultiCellEngine engine(cfg);

            std::vector<workload::SteadyModel> models(
                n_cells, workload::SteadyModel(heavy_user()));
            std::vector<workload::ParameterModel *> ptrs;
            for (auto &m : models)
                ptrs.push_back(&m);
            const runtime::MultiCellRunRecord record =
                engine.run(ptrs, n_subframes);

            std::uint64_t completed = 0, shed = 0, io_lost = 0;
            for (const runtime::ShedStats &s : record.shed) {
                completed += s.completed;
                shed += s.shed;
                io_lost += s.io_lost;
            }
            const auto &series = *engine.subframe_series();
            std::vector<double> latencies;
            latencies.reserve(series.size());
            for (std::size_t i = 0; i < series.size(); ++i)
                latencies.push_back(series.at(i).latency_ms());
            const double rate = static_cast<double>(completed) /
                                record.wall_seconds;
            const double p50 = percentile(latencies, 0.50);
            const double p99 = percentile(latencies, 0.99);

            const char *label = offloaded ? "offloaded" : "inline";
            table.add_row({std::to_string(n_cells), label,
                           std::to_string(completed),
                           std::to_string(shed),
                           std::to_string(io_lost),
                           report::fmt(rate, 1), report::fmt(p50, 2),
                           report::fmt(p99, 2),
                           report::fmt(record.wall_seconds, 2)});
            // Machine-readable line for results/BENCH_pr9.json.
            std::cout << "io-ab: cells=" << n_cells << " input="
                      << label << " n=" << n_subframes
                      << " completed=" << completed << " shed=" << shed
                      << " io_lost=" << io_lost
                      << " rate_hz=" << report::fmt(rate, 2)
                      << " p50_ms=" << report::fmt(p50, 4)
                      << " p99_ms=" << report::fmt(p99, 4)
                      << " wall_s=" << report::fmt(record.wall_seconds, 3)
                      << "\n";
        }
    }
    table.print(std::cout);
    std::cout << "offloading the synthesis frees the dispatch loop to "
                 "admit/reap, so the\noffloaded rows complete more "
                 "subframes per second (or hold a lower p99)\nat "
                 "identical offered load.  Multi-cell runs share ONE "
                 "paced producer\nthread (MultiSampleFeed) that "
                 "round-robins frame synthesis across the\ncells, so "
                 "the offloaded fronthaul costs a single extra core "
                 "regardless\nof cell count instead of oversubscribing "
                 "the host with one free-running\nthread per cell "
                 "(host has " << std::thread::hardware_concurrency()
              << " cores).\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Streaming engine: shed policies under 2x "
                        "overload",
                        args);

    const double service_ms = measure_service_ms(args.seed);
    const std::size_t n_workers = 4;
    const std::size_t max_in_flight = n_workers;
    const double drain_ms =
        measure_drain_ms(args.seed, n_workers, max_in_flight);
    // Arrivals at twice the pipeline's measured drain rate — a true 2x
    // overload regardless of how many cores the host really grants.
    const double delta_ms = drain_ms / 2.0;
    const double deadline_ms = 3.0 * drain_ms;
    const std::size_t n_subframes = args.full ? 1000 : 240;

    std::cout << "serial service time:   " << report::fmt(service_ms, 3)
              << " ms/subframe\n"
              << "pipeline drain time:   " << report::fmt(drain_ms, 3)
              << " ms/subframe (" << n_workers << " workers, "
              << max_in_flight << " in flight)\n"
              << "arrival period:        " << report::fmt(delta_ms, 3)
              << " ms  (2x overload)\n"
              << "admission deadline:    " << report::fmt(deadline_ms, 3)
              << " ms\n\n";

    const Scenario scenarios[] = {
        {"lossless", 0.0, runtime::ShedPolicy::kDropNewest},
        {"drop-newest", deadline_ms, runtime::ShedPolicy::kDropNewest},
        {"drop-oldest", deadline_ms, runtime::ShedPolicy::kDropOldest},
        {"degrade", deadline_ms, runtime::ShedPolicy::kDegrade},
    };

    report::TextTable table({"policy", "submitted", "completed", "shed",
                             "q-full", "expired", "degraded", "misses",
                             "p50 ms", "p99 ms", "wall s"});
    for (const Scenario &sc : scenarios) {
        runtime::EngineConfig cfg;
        cfg.kind = runtime::EngineKind::kStreaming;
        cfg.pool.n_workers = n_workers;
        cfg.input.pool_size = 2;
        cfg.input.seed = args.seed;
        cfg.max_in_flight = max_in_flight;
        cfg.admission_queue = 8;
        cfg.delta_ms = delta_ms;
        cfg.deadline_ms = sc.deadline_ms;
        cfg.shed_policy = sc.policy;
        cfg.obs.enabled = true;
        cfg.obs.deadline_ms = deadline_ms;
        cfg.obs.series_capacity = n_subframes;
        auto engine = runtime::make_engine(cfg);

        workload::SteadyModel model(heavy_user());
        const auto record = engine->run(model, n_subframes);

        const auto &stats =
            dynamic_cast<const runtime::StreamingEngine &>(*engine)
                .shed_stats();
        const auto &series = *engine->subframe_series();
        std::vector<double> latencies;
        latencies.reserve(series.size());
        for (std::size_t i = 0; i < series.size(); ++i)
            latencies.push_back(series.at(i).latency_ms());
        const double misses =
            engine->metrics()->counter("engine.deadline_misses").value();

        table.add_row({sc.label, std::to_string(stats.submitted),
                       std::to_string(stats.completed),
                       std::to_string(stats.shed),
                       std::to_string(stats.shed_queue_full),
                       std::to_string(stats.shed_expired),
                       std::to_string(stats.degraded),
                       report::fmt(misses, 0),
                       report::fmt(percentile(latencies, 0.50), 2),
                       report::fmt(percentile(latencies, 0.99), 2),
                       report::fmt(record.wall_seconds, 2)});
    }
    table.print(std::cout);
    std::cout << "\nwith a deadline and a shed policy, the queue wait "
                 "is capped by the\nadmission deadline, so p99 latency "
                 "settles near deadline +\nmax_in_flight x drain ("
              << report::fmt(deadline_ms +
                                 static_cast<double>(max_in_flight) *
                                     drain_ms,
                             1)
              << " ms here) no matter how long the run;\nthe lossless "
                 "baseline's latency instead grows with the backlog.\n"
                 "'degrade' converts would-be drops into cheap MRC + "
                 "turbo-bypass\nsubframes and completes the most "
                 "traffic.\n";

    run_io_offload_comparison(args.seed, args.full);
    run_heavy_scenario(args.seed, args.full);
    run_heavy_sim_comparison(args.full);
    return 0;
}

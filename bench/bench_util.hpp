/**
 * @file
 * Shared plumbing for the figure/table regeneration harnesses.
 *
 * Every harness accepts:
 *   --full          run the paper's exact protocol (68 000 subframes,
 *                   fine calibration sweep); the default is a
 *                   compressed run (6 800 subframes) that preserves
 *                   the triangular workload shape
 *   --subframes N   explicit run length
 *   --csv DIR       also write the figure's series as CSV into DIR
 *   --seed S        input-model seed
 */
#ifndef LTE_BENCH_UTIL_HPP
#define LTE_BENCH_UTIL_HPP

#include <cstdint>
#include <string>

#include "core/uplink_study.hpp"
#include "report/series.hpp"
#include "report/table.hpp"

namespace lte::bench {

struct BenchArgs
{
    bool full = false;
    std::uint64_t subframes = 6800;
    std::string csv_dir;
    std::uint64_t seed = 2012;

    /** Parse argv; prints usage and exits on unknown flags. */
    static BenchArgs parse(int argc, char **argv);

    /**
     * Study configuration scaled to the requested run length; the
     * calibration sweep resolution follows the --full flag.
     */
    core::StudyConfig study_config() const;

    /** Stride for plotted series (the paper plots every 25th
     *  subframe of 68 000; scaled for compressed runs). */
    std::size_t plot_stride() const;

    /**
     * If --csv was given, write @p set to "<dir>/<name>.csv" and
     * report the path on stdout.
     */
    void maybe_write_csv(const report::SeriesSet &set,
                         const std::string &name,
                         std::size_t stride = 1) const;
};

/** Print the standard harness banner. */
void print_banner(const std::string &title, const BenchArgs &args);

} // namespace lte::bench

#endif // LTE_BENCH_UTIL_HPP

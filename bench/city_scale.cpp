/**
 * @file
 * City-scale energy study (PR 10 deliverable): a fleet of TILEPro64
 * chips serving 100+ cells with million-UE total population, each
 * cell's MAC traffic following a shared diurnal curve, and a per-chip
 * policy optimiser adopting the most aggressive power policy that
 * meets the deadline-miss SLO.
 *
 * Reports joules per subframe (per chip and fleet-wide), the adopted
 * policy mix, and the deadline-miss-vs-offered-load curve, and can
 * emit the whole result as JSON (--json PATH) for
 * results/BENCH_pr10.json.
 *
 * Flags:
 *   --smoke          tiny fleet for CI (8 cells, 200 UEs/cell)
 *   --cells N        number of cells     (default 104)
 *   --ues N          UEs per cell        (default 10000)
 *   --subframes N    horizon per cell    (default 2000)
 *   --slo F          miss-rate SLO       (default 0.005)
 *   --seed S         master seed         (default 2012)
 *   --threads N      chip worker threads (default: hardware)
 *   --json PATH      also write the result as JSON
 */
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/chip_fleet.hpp"
#include "report/table.hpp"

namespace {

using namespace lte;

struct Args
{
    bool smoke = false;
    std::size_t cells = 104;
    std::uint32_t ues = 10000;
    std::uint64_t subframes = 2000;
    double slo = 0.005;
    std::uint64_t seed = 2012;
    unsigned threads = 0;
    std::string json_path;
};

Args
parse(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << a << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--smoke") {
            args.smoke = true;
        } else if (a == "--cells") {
            args.cells = std::strtoull(value(), nullptr, 10);
        } else if (a == "--ues") {
            args.ues = static_cast<std::uint32_t>(
                std::strtoul(value(), nullptr, 10));
        } else if (a == "--subframes") {
            args.subframes = std::strtoull(value(), nullptr, 10);
        } else if (a == "--slo") {
            args.slo = std::strtod(value(), nullptr);
        } else if (a == "--seed") {
            args.seed = std::strtoull(value(), nullptr, 10);
        } else if (a == "--threads") {
            args.threads = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        } else if (a == "--json") {
            args.json_path = value();
        } else {
            std::cerr << "unknown flag: " << a << "\n";
            std::exit(2);
        }
    }
    if (args.smoke) {
        args.cells = 8;
        args.ues = 200;
        args.subframes = 400;
    }
    return args;
}

core::FleetConfig
fleet_config(const Args &args)
{
    core::FleetConfig cfg;
    cfg.n_cells = args.cells;
    cfg.ues_per_cell = args.ues;
    cfg.subframes = args.subframes;
    cfg.slo_miss_rate = args.slo;
    cfg.seed = args.seed;
    cfg.n_threads = args.threads;
    // One simulated "day" spans the horizon so the run sees the full
    // trough-to-peak swing; the paper's typical average load is 25%.
    cfg.diurnal.period_subframes = std::max<std::uint64_t>(
        2, args.subframes);
    cfg.diurnal.average_load = 0.25;
    cfg.diurnal.swing = 0.8;
    cfg.cell_load_spread = 0.5;
    // Pack 4x more radio capacity than the compute slices are
    // dimensioned for: the diurnal peak can now outrun the heaviest
    // cells' slices, so the SLO binds and the per-chip optimiser has
    // to trade energy for responsiveness.
    cfg.oversubscribe = 4.0;
    // Compress the calibration sweep (the full Fig. 11 protocol is a
    // per-slice one-off; the default here keeps 100-cell runs fast).
    cfg.chip.sweep.prb_step = 40;
    cfg.chip.sweep.duration_s = 0.15;
    return cfg;
}

void
write_json(const Args &args, const core::ChipFleet &fleet,
           const core::FleetOutcome &outcome)
{
    std::ofstream os(args.json_path);
    if (!os) {
        std::cerr << "cannot write " << args.json_path << "\n";
        std::exit(1);
    }
    os << "{\n"
       << "  \"pr\": 10,\n"
       << "  \"title\": \"Per-domain power-state machine and the "
          "multi-chip city-scale energy study\",\n"
       << "  \"benchmark\": \"bench/city_scale\",\n"
       << "  \"scenario\": {\n"
       << "    \"n_cells\": " << fleet.config().n_cells << ",\n"
       << "    \"ues_per_cell\": " << fleet.config().ues_per_cell
       << ",\n"
       << "    \"total_ues\": " << outcome.total_ues << ",\n"
       << "    \"n_chips\": " << outcome.chips.size() << ",\n"
       << "    \"subframes\": " << fleet.config().subframes << ",\n"
       << "    \"slo_miss_rate\": " << fleet.config().slo_miss_rate
       << ",\n"
       << "    \"diurnal_average_load\": "
       << fleet.config().diurnal.average_load << ",\n"
       << "    \"diurnal_swing\": " << fleet.config().diurnal.swing
       << ",\n"
       << "    \"seed\": " << fleet.config().seed << "\n"
       << "  },\n";
    os << "  \"fleet\": {\n"
       << "    \"total_power_w\": " << outcome.total_power_w << ",\n"
       << "    \"energy_j\": " << outcome.energy_j << ",\n"
       << "    \"joules_per_subframe\": "
       << outcome.joules_per_subframe << ",\n"
       << "    \"worst_miss_rate\": " << outcome.worst_miss_rate
       << ",\n"
       << "    \"chips_missing_slo\": " << outcome.chips_missing_slo
       << "\n  },\n";
    os << "  \"policy_mix\": {";
    bool first = true;
    for (const auto &[name, count] : outcome.policy_counts) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    \"" << name << "\": " << count;
    }
    os << "\n  },\n";
    os << "  \"miss_rate_vs_load\": [";
    first = true;
    for (const core::LoadBucket &b : outcome.buckets) {
        if (b.users == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\n    { \"load_lo\": " << b.load_lo
           << ", \"load_hi\": " << b.load_hi
           << ", \"users\": " << b.users
           << ", \"miss_rate\": " << b.miss_rate() << " }";
    }
    os << "\n  ],\n";
    os << "  \"chips\": [";
    for (std::size_t c = 0; c < outcome.chips.size(); ++c) {
        const core::ChipOutcome &chip = outcome.chips[c];
        os << (c == 0 ? "" : ",") << "\n    { \"chip\": " << c
           << ", \"cells\": " << chip.cells.size()
           << ", \"policy\": \"" << chip.policy.name << "\""
           << ", \"policies_tried\": " << chip.policies_tried
           << ", \"avg_power_w\": " << chip.avg_power_w
           << ", \"joules_per_subframe\": "
           << chip.joules_per_subframe
           << ", \"worst_miss_rate\": " << chip.worst_miss_rate
           << ", \"slo_met\": " << (chip.slo_met ? "true" : "false")
           << " }";
    }
    os << "\n  ]\n}\n";
    std::cout << "wrote " << args.json_path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);
    std::cout << "== city-scale fleet study ==\n"
              << "cells " << args.cells << "  ues/cell " << args.ues
              << "  subframes " << args.subframes << "  SLO "
              << 100.0 * args.slo << "%  seed " << args.seed
              << (args.smoke ? "  [smoke]" : "") << "\n\n";

    core::ChipFleet fleet(fleet_config(args));
    const core::FleetOutcome outcome = fleet.run();

    report::TextTable chips({"chip", "cells", "policy", "tried",
                             "avg power (W)", "J/subframe",
                             "worst miss %", "SLO"});
    for (std::size_t c = 0; c < outcome.chips.size(); ++c) {
        const core::ChipOutcome &chip = outcome.chips[c];
        chips.add_row({std::to_string(c),
                       std::to_string(chip.cells.size()),
                       chip.policy.name,
                       std::to_string(chip.policies_tried),
                       report::fmt(chip.avg_power_w, 2),
                       report::fmt(chip.joules_per_subframe, 4),
                       report::fmt(100.0 * chip.worst_miss_rate, 2),
                       chip.slo_met ? "met" : "MISSED"});
    }
    chips.print(std::cout);

    std::cout << "\npolicy mix:";
    for (const auto &[name, count] : outcome.policy_counts) {
        if (count > 0)
            std::cout << "  " << name << " x" << count;
    }
    std::cout << "\n\nmiss rate vs offered load:\n";
    report::TextTable curve({"load bin", "users", "miss %"});
    for (const core::LoadBucket &b : outcome.buckets) {
        if (b.users == 0)
            continue;
        curve.add_row({report::fmt(b.load_lo, 1) + "-" +
                           report::fmt(b.load_hi, 1),
                       std::to_string(b.users),
                       report::fmt(100.0 * b.miss_rate(), 2)});
    }
    curve.print(std::cout);

    std::cout << "\nfleet: " << outcome.chips.size() << " chips, "
              << outcome.total_ues << " UEs, "
              << report::fmt(outcome.total_power_w, 1) << " W, "
              << report::fmt(outcome.joules_per_subframe, 4)
              << " J/subframe, worst miss "
              << report::fmt(100.0 * outcome.worst_miss_rate, 2)
              << "%, " << outcome.chips_missing_slo
              << " chips missing SLO\n";

    if (!args.json_path.empty())
        write_json(args, fleet, outcome);
    return 0;
}

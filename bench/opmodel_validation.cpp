/**
 * @file
 * Cost-model validation: the discrete-event simulator charges tasks
 * according to the analytical op model; this harness times the *real*
 * kernels (the same UserProcessor the native runtime executes) across
 * the PRB/layer/modulation space and reports how well the model
 * predicts relative native cost.  A high correlation is what licenses
 * the TILEPro64-simulator substitution (DESIGN.md Sec. 1).
 */
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "channel/signal_source.hpp"
#include "common/rng.hpp"
#include "phy/op_model.hpp"
#include "phy/user_processor.hpp"

namespace {

using namespace lte;

double
native_seconds(const phy::UserParams &params, int repeats)
{
    Rng rng(1234 + params.prb);
    const auto signal = channel::random_user_signal(params, 4, rng);
    const phy::ReceiverConfig cfg;

    // Warm the FFT plan cache so planning cost is not measured.
    {
        phy::UserProcessor proc(params, cfg, &signal);
        proc.process_all();
    }
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
        phy::UserProcessor proc(params, cfg, &signal);
        proc.process_all();
    }
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
               .count() /
           repeats;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = lte::bench::BenchArgs::parse(argc, argv);
    lte::bench::print_banner(
        "Validation: op model vs native kernel time", args);

    struct Case
    {
        std::uint32_t prb;
        std::uint32_t layers;
        Modulation mod;
    };
    const Case cases[] = {
        {10, 1, Modulation::kQpsk},   {40, 1, Modulation::kQpsk},
        {100, 1, Modulation::kQpsk},  {40, 2, Modulation::k16Qam},
        {100, 2, Modulation::k16Qam}, {40, 4, Modulation::k64Qam},
        {100, 4, Modulation::k64Qam}, {200, 4, Modulation::k64Qam},
    };
    const int repeats = args.full ? 20 : 5;

    lte::report::TextTable table({"prb", "layers", "mod", "model Mops",
                                  "native ms", "ns/op"});
    double sx = 0.0, sy = 0.0, sxy = 0.0, sxx = 0.0, syy = 0.0;
    std::size_t n = 0;
    for (const auto &c : cases) {
        phy::UserParams params;
        params.prb = c.prb;
        params.layers = c.layers;
        params.mod = c.mod;
        const double ops = static_cast<double>(
            phy::user_task_costs(params, 4).total());
        const double secs = native_seconds(params, repeats);
        table.add_row({std::to_string(c.prb), std::to_string(c.layers),
                       modulation_name(c.mod),
                       lte::report::fmt(ops / 1e6, 2),
                       lte::report::fmt(secs * 1e3, 2),
                       lte::report::fmt(secs / ops * 1e9, 2)});
        // Correlate in log space (costs span ~2 orders of magnitude).
        const double x = std::log(ops), y = std::log(secs);
        sx += x;
        sy += y;
        sxy += x * y;
        sxx += x * x;
        syy += y * y;
        ++n;
    }
    table.print(std::cout);

    const double dn = static_cast<double>(n);
    const double corr =
        (dn * sxy - sx * sy) /
        std::sqrt((dn * sxx - sx * sx) * (dn * syy - sy * sy));
    std::cout << "\nlog-log correlation between model flops and native "
                 "wall time: "
              << lte::report::fmt(corr, 3)
              << "\n(values near 1.0 mean the simulator's relative "
                 "task costs track the real\nkernels; the absolute "
                 "scale is set separately by calibration)\n";
    return corr > 0.95 ? 0 : 1;
}

/**
 * @file
 * Ablation: the Eq. 5 over-provisioning margin.  The paper adds two
 * cores "to provide some margin of error in the estimation"; this
 * harness sweeps the margin and reports the power/responsiveness
 * trade-off that motivates the choice.
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Ablation: Eq. 5 core margin", args);

    core::StudyConfig base_cfg = args.study_config();
    core::UplinkStudy probe(base_cfg);
    probe.prepare();
    // The Eq. 5 margin plays no part in calibration (the sweeps run
    // the NONAP machine without an estimator), so every variant
    // shares the probe's calibration pass.
    const core::Calibration calibration = probe.calibration();

    report::TextTable table({"margin", "Avg power (W)",
                             "mean latency (sf)", "max latency",
                             "99% deadline (3 sf)"});
    for (std::uint32_t margin : {0u, 1u, 2u, 4u, 8u}) {
        core::StudyConfig cfg = base_cfg;
        cfg.sim.core_margin = margin;
        core::UplinkStudy study(cfg);
        study.adopt_calibration(calibration);
        const auto outcome =
            study.run_strategy(mgmt::Strategy::kNapIdle);
        table.add_row(
            {std::to_string(margin),
             report::fmt(outcome.avg_power_w, 2),
             report::fmt(outcome.sim.mean_latency(), 2),
             report::fmt(outcome.sim.max_latency(), 1),
             report::fmt(100.0 * outcome.sim.deadline_hit_rate(3.0),
                         1) + "%"});
    }
    table.print(std::cout);

    std::cout << "\nsmaller margins save power but eat into the "
                 "2-3-subframe responsiveness\nbudget when the "
                 "estimate falls short; the paper's margin of 2 buys "
                 "safety\nfor a fraction of a Watt.\n";
    return 0;
}

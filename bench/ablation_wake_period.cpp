/**
 * @file
 * Ablation: the reactive wake-poll period.  A napping IDLE worker
 * wakes every T to look for work; short periods burn power polling,
 * long periods delay task pickup.  This quantifies the overhead the
 * paper attributes to reactive gating ("this periodical check ...
 * causes overheads that result in a higher power").
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Ablation: IDLE wake-poll period", args);

    core::StudyConfig base_cfg = args.study_config();
    core::UplinkStudy probe(base_cfg);
    probe.prepare();
    // Calibration runs the NONAP machine, where nothing ever naps:
    // the wake period cannot influence it, so share one pass.
    const core::Calibration calibration = probe.calibration();

    report::TextTable table({"wake period (us)", "poll duty",
                             "Avg power (W)", "mean latency (sf)",
                             "max latency"});
    for (double period_us : {50.0, 100.0, 200.0, 500.0, 1000.0}) {
        core::StudyConfig cfg = base_cfg;
        cfg.sim.idle_wake_period_s = period_us * 1e-6;
        // The polling energy scales inversely with the period: the
        // default duty (0.22) corresponds to the default 200 us.
        cfg.power.idle_poll_duty =
            std::min(1.0, 0.22 * 200.0 / period_us);
        core::UplinkStudy study(cfg);
        study.adopt_calibration(calibration);
        const auto outcome = study.run_strategy(mgmt::Strategy::kIdle);
        table.add_row(
            {report::fmt(period_us, 0),
             report::fmt(cfg.power.idle_poll_duty, 3),
             report::fmt(outcome.avg_power_w, 2),
             report::fmt(outcome.sim.mean_latency(), 2),
             report::fmt(outcome.sim.max_latency(), 1)});
    }
    table.print(std::cout);

    std::cout << "\nfast polling approaches NONAP power; slow polling "
                 "approaches NAP power\nbut stretches completion "
                 "latency — the reactive system cannot win both,\n"
                 "which is exactly why the paper's proactive NAP "
                 "estimation helps.\n";
    return 0;
}

/**
 * @file
 * Closed-loop MAC study: the scheduler of src/mac/ driving a streaming
 * engine through the GrantModel/feedback seam, compared across the
 * three grant policies, plus the link-adaptation A/B the paper's
 * operator story depends on.
 *
 * Sections:
 *   1. policy table — round-robin / proportional-fair / deadline-EDF
 *      each run the same overloaded cell through a real streaming
 *      engine (grants in, receiver feedback back); the table reports
 *      goodput, deadline misses, HARQ residual rate and the two
 *      conservation gates (engine: shed + completed == submitted,
 *      MAC: offered == delivered + residual).
 *   2. adaptation A/B — a channel degrading at a fixed dB/TTI rate,
 *      CQI+OLLA+HARQ adaptation against a fixed-MCS baseline, with
 *      the residual-error trajectory bucketed over the run.
 *   3. 10k-UE population — scheduler cost per TTI at the paper's
 *      city-cell scale (the active-list design keeps mostly-idle
 *      UEs off the hot path).
 *
 * LTE_MAC=rr|pf|edf restricts section 1 to one policy (the CI sweep
 * uses this to exercise each policy on a separate leg).
 */
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mac/grant_model.hpp"
#include "mac/scheduler.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace lte;

/** The shared cell: modest population under ~2x traffic overload. */
mac::MacConfig
cell_config(mac::SchedulerPolicy policy, std::uint64_t seed)
{
    mac::MacConfig cfg;
    cfg.seed = seed;
    cfg.n_ues = 256;
    cfg.policy = policy;
    cfg.arrival_rate = 8.0;
    cfg.burst_mean = 3.0;
    cfg.packet_bits = 4096;
    cfg.deadline_ttis = 40;
    cfg.snr_mean_db = 12.0f;
    return cfg;
}

/** Immediate modelled feedback loop (no engine): MAC-only studies. */
void
run_modelled_loop(mac::MacScheduler &sched, std::size_t ttis,
                  std::size_t *grant_ttis = nullptr)
{
    phy::SubframeParams sf;
    for (std::size_t t = 0; t < ttis; ++t) {
        sched.next_tti_into(sf);
        if (sf.users.empty())
            continue;
        if (grant_ttis)
            ++*grant_ttis;
        runtime::SubframeOutcome outcome;
        outcome.subframe_index = sf.subframe_index;
        outcome.cell_id = sf.cell_id;
        for (const phy::UserParams &user : sf.users) {
            runtime::UserOutcome u;
            u.user_id = user.id;
            u.crc_ok = false;
            u.crc_modelled = true; // estimator draws the modelled BLER
            u.evm_rms = 0.0f;
            outcome.users.push_back(u);
        }
        sched.on_subframe_complete(outcome, phy::DegradeLevel::kNone);
    }
}

void
run_policy_table(const bench::BenchArgs &args, std::size_t n_ttis)
{
    std::vector<mac::SchedulerPolicy> policies = {
        mac::SchedulerPolicy::kRoundRobin,
        mac::SchedulerPolicy::kProportionalFair,
        mac::SchedulerPolicy::kDeadlineEdf,
    };
    if (const char *env = std::getenv("LTE_MAC")) {
        policies = {mac::parse_scheduler_policy(env)};
        std::cout << "LTE_MAC=" << env << ": restricting to "
                  << mac::scheduler_policy_name(policies[0]) << "\n";
    }

    std::cout << "== closed loop vs streaming engine ("
              << n_ttis << " TTIs, 256 UEs) ==\n";
    report::TextTable table({"policy", "grants", "retx",
                             "goodput Mb/TTIk", "miss %", "residual %",
                             "shed", "conserved"});
    for (const mac::SchedulerPolicy policy : policies) {
        mac::MacScheduler sched(cell_config(policy, args.seed));
        mac::GrantModel model(sched);

        runtime::EngineConfig cfg;
        cfg.kind = runtime::EngineKind::kStreaming;
        cfg.pool.n_workers = 4;
        cfg.input.pool_size = 2;
        cfg.input.seed = args.seed;
        cfg.max_in_flight = 4;
        cfg.admission_queue = 8;
        cfg.delta_ms = 0.05;
        cfg.deadline_ms = 4.0;
        cfg.shed_policy = runtime::ShedPolicy::kDropOldest;
        cfg.feedback = &sched;
        auto engine = runtime::make_engine(cfg);

        const runtime::RunRecord record = engine->run(model, n_ttis);
        sched.finalize();

        const auto &shed =
            dynamic_cast<runtime::StreamingEngine &>(*engine)
                .shed_stats();
        const mac::MacStats stats = sched.stats();
        const bool engine_ok =
            shed.submitted == n_ttis &&
            shed.completed + shed.shed == shed.submitted &&
            record.subframes.size() == shed.completed;
        const bool ok = engine_ok && stats.conserved();

        // One TTI is 1 ms of air time: Mbit per 1000 TTIs == Mb/s.
        const double goodput =
            stats.ttis
                ? static_cast<double>(stats.delivered_bits) /
                      static_cast<double>(stats.ttis) / 1e3
                : 0.0;
        const double miss =
            stats.packets_arrived
                ? 100.0 *
                      static_cast<double>(stats.deadline_drops +
                                          stats.overflow_drops) /
                      static_cast<double>(stats.packets_arrived)
                : 0.0;
        const double residual =
            stats.offered_tbs
                ? 100.0 * static_cast<double>(stats.residual_tbs) /
                      static_cast<double>(stats.offered_tbs)
                : 0.0;

        table.add_row({mac::scheduler_policy_name(policy),
                       std::to_string(stats.grants),
                       std::to_string(stats.retx_grants),
                       report::fmt(goodput, 2), report::fmt(miss, 2),
                       report::fmt(residual, 2),
                       std::to_string(shed.shed), ok ? "yes" : "NO"});

        std::cout << "mac: policy="
                  << mac::scheduler_policy_name(policy)
                  << " ttis=" << stats.ttis
                  << " grants=" << stats.grants
                  << " retx=" << stats.retx_grants
                  << " offered_tbs=" << stats.offered_tbs
                  << " delivered_tbs=" << stats.delivered_tbs
                  << " residual_tbs=" << stats.residual_tbs
                  << " goodput_mbps=" << report::fmt(goodput, 3)
                  << " miss_pct=" << report::fmt(miss, 3)
                  << " residual_pct=" << report::fmt(residual, 3)
                  << " submitted=" << shed.submitted
                  << " completed=" << shed.completed
                  << " shed=" << shed.shed
                  << " conserved=" << (ok ? 1 : 0) << "\n";
    }
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\n";
}

void
run_adaptation_ab(const bench::BenchArgs &args, std::size_t n_ttis)
{
    std::cout << "== link adaptation A/B on a degrading channel ("
              << n_ttis << " TTIs, 16 dB -> "
              << report::fmt(16.0 - 0.005 * static_cast<double>(n_ttis),
                             1)
              << " dB) ==\n";

    mac::MacConfig adaptive = cell_config(
        mac::SchedulerPolicy::kRoundRobin, args.seed);
    adaptive.n_ues = 64;
    adaptive.arrival_rate = 4.0;
    adaptive.snr_mean_db = 16.0f;
    adaptive.snr_spread_db = 1.0f;
    adaptive.snr_drift_db_per_tti = -0.005f;
    mac::MacConfig fixed = adaptive;
    fixed.adapt = false;
    fixed.fixed_mcs = 7; // 64QAM-754: fine at 16 dB, hopeless later

    mac::MacScheduler sched_a(adaptive);
    mac::MacScheduler sched_f(fixed);

    const std::size_t buckets = 8;
    const std::size_t bucket_ttis = n_ttis / buckets;
    report::TextTable table({"TTI window", "snr dB", "adapt res %",
                             "fixed res %", "adapt Mb/TTIk",
                             "fixed Mb/TTIk"});
    mac::MacStats prev_a;
    mac::MacStats prev_f;
    for (std::size_t b = 0; b < buckets; ++b) {
        run_modelled_loop(sched_a, bucket_ttis);
        run_modelled_loop(sched_f, bucket_ttis);
        const mac::MacStats a = sched_a.stats();
        const mac::MacStats f = sched_f.stats();
        const auto rate = [](std::uint64_t off_now, std::uint64_t off_prev,
                             std::uint64_t res_now,
                             std::uint64_t res_prev) {
            const std::uint64_t off = off_now - off_prev;
            return off ? 100.0 *
                             static_cast<double>(res_now - res_prev) /
                             static_cast<double>(off)
                       : 0.0;
        };
        const double res_a = rate(a.offered_tbs, prev_a.offered_tbs,
                                  a.residual_tbs, prev_a.residual_tbs);
        const double res_f = rate(f.offered_tbs, prev_f.offered_tbs,
                                  f.residual_tbs, prev_f.residual_tbs);
        const double thr_a =
            static_cast<double>(a.delivered_bits -
                                prev_a.delivered_bits) /
            static_cast<double>(bucket_ttis) / 1e3;
        const double thr_f =
            static_cast<double>(f.delivered_bits -
                                prev_f.delivered_bits) /
            static_cast<double>(bucket_ttis) / 1e3;
        const double snr =
            16.0 - 0.005 * static_cast<double>((b + 1) * bucket_ttis);
        table.add_row({std::to_string(b * bucket_ttis) + "-" +
                           std::to_string((b + 1) * bucket_ttis),
                       report::fmt(snr, 1), report::fmt(res_a, 2),
                       report::fmt(res_f, 2), report::fmt(thr_a, 2),
                       report::fmt(thr_f, 2)});
        std::cout << "adapt-ab: bucket=" << b
                  << " snr_db=" << report::fmt(snr, 2)
                  << " adaptive_residual_pct=" << report::fmt(res_a, 3)
                  << " fixed_residual_pct=" << report::fmt(res_f, 3)
                  << " adaptive_goodput=" << report::fmt(thr_a, 3)
                  << " fixed_goodput=" << report::fmt(thr_f, 3) << "\n";
        prev_a = a;
        prev_f = f;
    }
    sched_a.finalize();
    sched_f.finalize();
    const mac::MacStats a = sched_a.stats();
    const mac::MacStats f = sched_f.stats();
    std::cout << "\n";
    table.print(std::cout);
    const double total_a =
        a.offered_tbs ? 100.0 * static_cast<double>(a.residual_tbs) /
                            static_cast<double>(a.offered_tbs)
                      : 0.0;
    const double total_f =
        f.offered_tbs ? 100.0 * static_cast<double>(f.residual_tbs) /
                            static_cast<double>(f.offered_tbs)
                      : 0.0;
    std::cout << "\ntotal residual: adaptive "
              << report::fmt(total_a, 2) << "% vs fixed "
              << report::fmt(total_f, 2) << "%  (both conserved: "
              << (a.conserved() && f.conserved() ? "yes" : "NO")
              << ")\n"
              << "adapt-ab: total adaptive_residual_pct="
              << report::fmt(total_a, 3)
              << " fixed_residual_pct=" << report::fmt(total_f, 3)
              << " conserved="
              << (a.conserved() && f.conserved() ? 1 : 0) << "\n\n";
}

void
run_population_scale(const bench::BenchArgs &args, std::size_t n_ttis)
{
    std::cout << "== 10k-UE population (modelled loop, " << n_ttis
              << " TTIs) ==\n";
    mac::MacConfig cfg =
        cell_config(mac::SchedulerPolicy::kProportionalFair, args.seed);
    cfg.n_ues = 10000;
    cfg.arrival_rate = 12.0;
    mac::MacScheduler sched(cfg);

    // Warm the arrival/active-list state before timing.
    run_modelled_loop(sched, n_ttis / 4);
    const auto t0 = std::chrono::steady_clock::now();
    run_modelled_loop(sched, n_ttis);
    const auto t1 = std::chrono::steady_clock::now();
    sched.finalize();

    const double tti_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(n_ttis);
    const mac::MacStats stats = sched.stats();
    std::cout << "scheduler cost: " << report::fmt(tti_us, 2)
              << " us/TTI with " << sched.active_ues()
              << " UEs active of " << cfg.n_ues << " ("
              << stats.packets_arrived << " packets, conservation "
              << (stats.conserved() ? "holds" : "VIOLATED") << ")\n"
              << "scale: n_ues=" << cfg.n_ues << " ttis=" << stats.ttis
              << " tti_us=" << report::fmt(tti_us, 3)
              << " active_ues=" << sched.active_ues()
              << " packets=" << stats.packets_arrived
              << " offered_tbs=" << stats.offered_tbs
              << " conserved=" << (stats.conserved() ? 1 : 0) << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Closed-loop MAC scheduler above the PHY",
                        args);

    const std::size_t engine_ttis = args.full ? 2000 : 600;
    const std::size_t ab_ttis = args.full ? 8000 : 4000;
    const std::size_t scale_ttis = args.full ? 4000 : 1000;

    run_policy_table(args, engine_ttis);
    run_adaptation_ab(args, ab_ttis);
    run_population_scale(args, scale_ttis);
    return 0;
}

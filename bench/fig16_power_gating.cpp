/**
 * @file
 * Fig. 16 — estimated power when power gating 8-core domains from the
 * workload estimate (Eqs. 6-9), overlaid on NONAP / IDLE / NAP+IDLE.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Fig. 16: power gating vs clock gating", args);

    core::UplinkStudy study(args.study_config());
    study.prepare();

    const mgmt::Strategy strategies[] = {
        mgmt::Strategy::kNoNap, mgmt::Strategy::kIdle,
        mgmt::Strategy::kNapIdle, mgmt::Strategy::kPowerGating};

    std::vector<std::vector<double>> rms;
    std::vector<double> averages;
    std::vector<std::vector<double>> activities;
    std::size_t n = SIZE_MAX;
    for (mgmt::Strategy s : strategies) {
        const auto outcome = study.run_strategy(s);
        rms.push_back(
            power::PowerModel::rms_windows(outcome.series, 0.1));
        averages.push_back(outcome.avg_power_w);
        n = std::min(n, rms.back().size());
        // Activity per window for the IDLE run (low-load detection).
        if (s == mgmt::Strategy::kIdle) {
            double busy = 0.0, dur = 0.0;
            std::vector<double> act;
            for (const auto &iv : outcome.sim.intervals) {
                busy += iv.busy_cs;
                dur += iv.dur;
                if (dur >= 0.1 - 1e-9) {
                    act.push_back(busy /
                                  (static_cast<double>(
                                       outcome.sim.n_workers) *
                                   dur));
                    busy = dur = 0.0;
                }
            }
            activities.push_back(std::move(act));
        }
    }

    std::vector<double> t;
    for (std::size_t i = 0; i < n; ++i)
        t.push_back(0.1 * static_cast<double>(i + 1));
    report::SeriesSet set("time_s", t);
    for (std::size_t k = 0; k < 4; ++k) {
        rms[k].resize(n);
        set.add(mgmt::strategy_name(strategies[k]), rms[k]);
    }
    set.print_summary(std::cout);
    args.maybe_write_csv(set, "fig16_power_gating");

    // Low-load reduction of PowerGating vs IDLE (the >24% claim).
    const auto &activity = activities.front();
    double best_low_gap = 0.0, best_low_rel = 0.0;
    for (std::size_t i = 0; i < n && i < activity.size(); ++i) {
        if (activity[i] < 0.2) {
            const double gap = rms[1][i] - rms[3][i];
            if (gap > best_low_gap) {
                best_low_gap = gap;
                best_low_rel = gap / rms[1][i];
            }
        }
    }

    std::cout << "\naverages:\n";
    report::TextTable table({"Technique", "Avg power (W)", "Paper (W)"});
    const char *paper[] = {"25", "20.7", "19.9", "18.5"};
    for (std::size_t k = 0; k < 4; ++k) {
        table.add_row({mgmt::strategy_name(strategies[k]),
                       report::fmt(averages[k], 2), paper[k]});
    }
    table.print(std::cout);

    std::cout << "\npaper:    gating averages 18.5 W (1.4 W / 7% below "
                 "NAP+IDLE); at low\n          load it is >4 W (>24%) "
                 "below IDLE.\nmeasured: gating "
              << report::fmt(averages[3], 1) << " W ("
              << report::fmt(averages[2] - averages[3], 1)
              << " W below NAP+IDLE); low-load gap vs IDLE "
              << report::fmt(best_low_gap, 1) << " W ("
              << report::fmt(100.0 * best_low_rel, 0) << "%)\n";
    return 0;
}

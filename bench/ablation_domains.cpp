/**
 * @file
 * Ablation: power-gating domain size.  The paper gates cores in
 * groups of eight ("a reasonable number for a chip of this
 * complexity"); this harness sweeps the domain size, exposing the
 * trade between gating resolution (finer = more cores off) and
 * switching overhead (finer = more transitions).
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Ablation: power-gating domain size", args);

    core::StudyConfig base_cfg = args.study_config();
    core::UplinkStudy probe(base_cfg);
    probe.prepare();
    // The gating domain size only shapes the analytical overlay, not
    // the machine calibration: share the probe's pass.
    const core::Calibration calibration = probe.calibration();

    report::TextTable table({"domain size", "domains", "Avg power (W)",
                             "saving vs NAP+IDLE (W)"});
    double napidle_power = 0.0;
    {
        core::UplinkStudy study(base_cfg);
        study.adopt_calibration(calibration);
        napidle_power =
            study.run_strategy(mgmt::Strategy::kNapIdle).avg_power_w;
    }
    for (std::uint32_t domain : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        core::StudyConfig cfg = base_cfg;
        cfg.power.domain_size = domain;
        core::UplinkStudy study(cfg);
        study.adopt_calibration(calibration);
        const auto outcome =
            study.run_strategy(mgmt::Strategy::kPowerGating);
        table.add_row({std::to_string(domain),
                       std::to_string(64 / domain),
                       report::fmt(outcome.avg_power_w, 2),
                       report::fmt(napidle_power - outcome.avg_power_w,
                                   2)});
    }
    table.print(std::cout);

    std::cout << "\nper-core gating (domain 1) maximises static savings"
                 " but needs 64\npower grids; one whole-chip domain "
                 "saves almost nothing because the\nworkload rarely "
                 "drops to zero.  The paper's choice of 8 captures "
                 "most\nof the benefit with a practical grid count.\n";
    return 0;
}

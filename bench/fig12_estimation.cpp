/**
 * @file
 * Fig. 12 — measured vs estimated activity, averaged per second
 * (200 subframes at the 5 ms dispatch period), over the full
 * evaluation run.  The paper reports a maximum underestimation of
 * 5.4% and an average error of 1.2%.
 */
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Fig. 12: measured vs estimated activity", args);

    core::UplinkStudy study(args.study_config());
    study.prepare();
    const auto outcome = study.run_strategy(mgmt::Strategy::kNoNap);

    const double window_s = 1.0;
    std::vector<double> t, estimated, measured;
    double est_acc = 0.0, busy_acc = 0.0, dur_acc = 0.0;
    double max_err = 0.0, sum_err = 0.0, max_under = 0.0;
    const double workers =
        static_cast<double>(outcome.sim.n_workers);
    for (const auto &iv : outcome.sim.intervals) {
        est_acc += iv.est_activity * iv.dur;
        busy_acc += iv.busy_cs;
        dur_acc += iv.dur;
        if (dur_acc >= window_s - 1e-9) {
            const double est = est_acc / dur_acc;
            const double meas = busy_acc / (workers * dur_acc);
            t.push_back(iv.t0 + iv.dur);
            estimated.push_back(est);
            measured.push_back(meas);
            const double err = std::abs(est - meas);
            max_err = std::max(max_err, err);
            max_under = std::max(max_under, meas - est);
            sum_err += err;
            est_acc = busy_acc = dur_acc = 0.0;
        }
    }

    report::SeriesSet set("time_s", t);
    set.add("estimated", estimated);
    set.add("measured", measured);
    set.print_summary(std::cout);
    args.maybe_write_csv(set, "fig12_estimation");

    const double avg_err =
        t.empty() ? 0.0 : sum_err / static_cast<double>(t.size());
    std::cout << "\npaper:    max error 5.4% (underestimation), "
                 "average error 1.2%\nmeasured: max error "
              << report::fmt(100.0 * max_err, 1)
              << "%, max underestimation "
              << report::fmt(100.0 * max_under, 1)
              << "%, average error " << report::fmt(100.0 * avg_err, 1)
              << "%\n";
    return 0;
}

/**
 * @file
 * Fig. 7 — number of users per subframe produced by the evaluation
 * input parameter model (every 25th subframe plotted in the paper).
 */
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "workload/paper_model.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Fig. 7: users per subframe", args);

    const auto cfg = args.study_config();
    workload::PaperModel model(cfg.model);

    std::vector<double> x, users;
    Histogram histogram(0.0, 11.0, 11);
    RunningStats stats;
    for (std::uint64_t i = 0; i < args.subframes; ++i) {
        const auto sf = model.next_subframe();
        x.push_back(static_cast<double>(i));
        users.push_back(static_cast<double>(sf.users.size()));
        histogram.add(static_cast<double>(sf.users.size()));
        stats.add(static_cast<double>(sf.users.size()));
    }

    report::SeriesSet set("subframe", x);
    set.add("users", users);
    set.print_summary(std::cout);
    args.maybe_write_csv(set, "fig07_users", args.plot_stride());

    std::cout << "\nuser-count distribution:\n";
    report::TextTable table({"users", "subframes", "share"});
    for (std::size_t bin = 0; bin < histogram.bin_count(); ++bin) {
        table.add_row({std::to_string(bin),
                       std::to_string(histogram.count(bin)),
                       report::fmt(100.0 *
                                       static_cast<double>(
                                           histogram.count(bin)) /
                                       static_cast<double>(
                                           histogram.total()),
                                   1) + "%"});
    }
    table.print(std::cout);

    std::cout << "\npaper: users vary constantly and rapidly between 1 "
                 "and 10.\nmeasured: mean "
              << report::fmt(stats.mean(), 2) << ", stddev "
              << report::fmt(stats.stddev(), 2) << ", range ["
              << stats.min() << ", " << stats.max() << "]\n";
    return 0;
}

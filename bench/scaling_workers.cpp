/**
 * @file
 * Sec. III parallelism check on the native work-stealing runtime:
 * throughput (subframes/s) and work-stealing statistics as the worker
 * count grows, on a fixed predetermined subframe sequence.  (Absolute
 * scaling depends on the host's core count; the paper's Fig. 4/5
 * point is the task structure, which this harness also prints.)
 */
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "phy/op_model.hpp"
#include "runtime/engine.hpp"
#include "workload/paper_model.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Native runtime: worker scaling", args);

    // Task structure of the maximal user (paper Sec. III).
    phy::UserParams max_user;
    max_user.prb = 200;
    max_user.layers = 4;
    max_user.mod = Modulation::k64Qam;
    const auto costs = phy::user_task_costs(max_user, 4);
    std::cout << "task structure for a 4-antenna, 4-layer user:\n  "
              << costs.n_chanest_tasks
              << " channel-estimation tasks (antennas x layers)\n  "
              << costs.n_demod_tasks
              << " demodulation tasks (symbols x layers)\n\n";

    const std::size_t n_subframes = args.full ? 64 : 24;
    workload::PaperModelConfig model_cfg;
    model_cfg.ramp_subframes = n_subframes / 2;
    model_cfg.prob_update_interval = 2;
    model_cfg.seed = args.seed;

    std::cout << "host concurrency: "
              << std::thread::hardware_concurrency() << "\n\n";

    report::TextTable table({"engine", "workers", "subframes/s",
                             "activity", "steals", "digest"});
    struct Row
    {
        runtime::EngineKind kind;
        std::size_t workers;
    };
    const Row rows[] = {{runtime::EngineKind::kSerial, 1},
                        {runtime::EngineKind::kWorkStealing, 1},
                        {runtime::EngineKind::kWorkStealing, 2},
                        {runtime::EngineKind::kWorkStealing, 4},
                        {runtime::EngineKind::kWorkStealing, 8}};
    for (const Row &row : rows) {
        runtime::EngineConfig cfg;
        cfg.kind = row.kind;
        cfg.pool.n_workers = row.workers;
        cfg.input.pool_size = 4;
        cfg.input.seed = args.seed;
        auto engine = runtime::make_engine(cfg);
        workload::PaperModel model(model_cfg);
        const auto record = engine->run(model, n_subframes);
        char digest[24];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(record.digest()));
        table.add_row(
            {engine->name(), std::to_string(row.workers),
             report::fmt(static_cast<double>(record.subframes.size()) /
                             record.wall_seconds,
                         1),
             report::fmt(record.activity, 3),
             std::to_string(record.steals), digest});
    }
    table.print(std::cout);
    std::cout << "\nidentical digests across worker counts demonstrate "
                 "the Sec. IV-D\nserial/parallel equivalence on real "
                 "kernel execution.\n";
    return 0;
}

/**
 * @file
 * Multi-cell scaling study: one shared worker pool serving 1, 2 and 4
 * cells, each cell an independent TTI stream with the paper's 2-3
 * subframes in flight.
 *
 * Part 1 (engine): free-running lossless runs of the multi-cell
 * engine.  A single cell cannot fill a wide pool — its in-flight
 * window is the paper's per-sector pipeline depth — so aggregate
 * throughput grows with the cell count until the pool saturates
 * (on an 8-hardware-thread host, 4 cells reach >= 3x the 1-cell
 * rate; on a 1-core container the curve is flat by construction).
 * The table reports aggregate and per-cell throughput plus per-cell
 * p50/p99 admission-to-completion latency from the cell-tagged
 * observability series.
 *
 * Part 2 (study): run_strategy_multicell slices the simulated
 * TILEPro64 across the cells (workers, power domains, base power),
 * runs each cell's decorrelated paper input model under NAP, and
 * reports per-cell and total power plus the Eq. 6 domain partition
 * from the cells' peak demands.
 */
#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "runtime/multicell.hpp"
#include "workload/steady_model.hpp"

namespace {

using namespace lte;

phy::UserParams
heavy_user()
{
    phy::UserParams u;
    u.id = 0;
    u.prb = 100;
    u.layers = 4;
    u.mod = Modulation::k64Qam;
    return u;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1));
    return values[idx];
}

struct CellScalingRow
{
    std::size_t n_cells = 0;
    double aggregate_rate = 0.0; ///< completed subframes / wall second
    double per_cell_rate = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
};

CellScalingRow
run_cells(std::size_t n_cells, std::size_t n_workers,
          std::size_t n_subframes, std::uint64_t seed)
{
    runtime::MultiCellConfig cfg;
    cfg.n_cells = n_cells;
    cfg.engine.kind = runtime::EngineKind::kStreaming;
    cfg.engine.pool.n_workers = n_workers;
    cfg.engine.input.pool_size = 2;
    cfg.engine.input.seed = seed;
    cfg.engine.delta_ms = 0.0;    // free-running
    cfg.engine.deadline_ms = 0.0; // lossless
    cfg.engine.admission_queue = 4;
    // The paper keeps 2-3 subframes in flight per sector; the shared
    // window is that pipeline depth times the cell count.
    cfg.engine.max_in_flight = 2 * n_cells;
    cfg.engine.obs.enabled = true;
    cfg.engine.obs.series_capacity = n_cells * n_subframes;
    runtime::MultiCellEngine engine(cfg);

    // Warm-up: arenas, job pools, FFT plans, one subframe per cell.
    for (std::size_t c = 0; c < n_cells; ++c) {
        phy::SubframeParams sf;
        sf.subframe_index = 0;
        sf.cell_id = engine.cell_id(c);
        sf.users.push_back(heavy_user());
        engine.process_subframe(c, sf);
    }

    std::vector<workload::SteadyModel> models(
        n_cells, workload::SteadyModel(heavy_user()));
    std::vector<workload::ParameterModel *> model_ptrs;
    for (auto &m : models)
        model_ptrs.push_back(&m);
    const auto record = engine.run(model_ptrs, n_subframes);

    CellScalingRow row;
    row.n_cells = n_cells;
    row.aggregate_rate =
        static_cast<double>(record.completed_subframes()) /
        record.wall_seconds;
    row.per_cell_rate =
        row.aggregate_rate / static_cast<double>(n_cells);
    const auto &series = *engine.subframe_series();
    std::vector<double> latencies;
    latencies.reserve(series.size());
    for (std::size_t i = 0; i < series.size(); ++i)
        latencies.push_back(series.at(i).latency_ms());
    row.p50_ms = percentile(latencies, 0.50);
    row.p99_ms = percentile(latencies, 0.99);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Multi-cell scaling: shared pool, 1/2/4 cells",
                        args);

    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t n_workers =
        std::clamp<std::size_t>(hw == 0 ? 1 : hw, 2, 8);
    const std::size_t n_subframes = args.full ? 400 : 120;
    std::cout << "worker pool:  " << n_workers << " workers ("
              << (hw == 0 ? 1u : hw) << " hardware threads)\n"
              << "per cell:     " << n_subframes
              << " subframes, 2 in flight, lossless\n\n";

    report::TextTable engine_table({"cells", "aggregate sf/s",
                                    "per-cell sf/s", "scaling",
                                    "p50 ms", "p99 ms"});
    double base_rate = 0.0;
    for (std::size_t n_cells : {1u, 2u, 4u}) {
        const auto row =
            run_cells(n_cells, n_workers, n_subframes, args.seed);
        if (n_cells == 1)
            base_rate = row.aggregate_rate;
        engine_table.add_row(
            {std::to_string(row.n_cells),
             report::fmt(row.aggregate_rate, 1),
             report::fmt(row.per_cell_rate, 1),
             report::fmt(row.aggregate_rate / base_rate, 2) + "x",
             report::fmt(row.p50_ms, 2), report::fmt(row.p99_ms, 2)});
    }
    engine_table.print(std::cout);
    std::cout << "\na single cell runs the paper's 2-subframe pipeline "
                 "depth, so it cannot\nfill a wide pool; extra cells "
                 "add independent in-flight subframes until\nthe pool "
                 "saturates (>= 3x at 4 cells on an 8-thread host; a "
                 "1-core\ncontainer stays flat by construction).\n\n";

    // Part 2: the sliced-simulator power study.
    core::StudyConfig study_cfg = args.study_config();
    core::UplinkStudy study(study_cfg);
    report::TextTable power_table({"cells", "total W", "dynamic W",
                                   "worst miss", "domain partition"});
    for (std::size_t n_cells : {1u, 2u, 4u}) {
        const auto outcome = study.run_strategy_multicell(
            mgmt::Strategy::kNap, n_cells);
        std::string partition;
        for (std::size_t c = 0; c < outcome.domain_partition.size();
             ++c) {
            if (c > 0)
                partition += "+";
            partition += std::to_string(outcome.domain_partition[c]);
        }
        power_table.add_row(
            {std::to_string(n_cells),
             report::fmt(outcome.total_power_w, 2),
             report::fmt(outcome.total_dynamic_w, 2),
             report::fmt(outcome.worst_deadline_miss_rate, 4),
             partition + " cores"});
    }
    power_table.print(std::cout);
    std::cout << "\neach cell runs the full paper model on its own "
                 "decorrelated stream over\nan equal slice of the "
                 "chip; the partition column is the Eq. 6\n"
                 "largest-remainder apportionment of the 8-core power "
                 "domains from the\ncells' peak core demands.\n";
    return 0;
}

#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace lte::bench {

BenchArgs
BenchArgs::parse(int argc, char **argv)
{
    BenchArgs args;
    bool subframes_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--full") {
            args.full = true;
        } else if (arg == "--subframes") {
            args.subframes = std::strtoull(next(), nullptr, 10);
            subframes_set = true;
        } else if (arg == "--csv") {
            args.csv_dir = next();
        } else if (arg == "--seed") {
            args.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << argv[0]
                      << " [--full] [--subframes N] [--csv DIR]"
                         " [--seed S]\n";
            std::exit(0);
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            std::exit(2);
        }
    }
    if (args.full && !subframes_set)
        args.subframes = 68000;
    return args;
}

core::StudyConfig
BenchArgs::study_config() const
{
    core::StudyConfig cfg;
    cfg.model.seed = seed;
    cfg.scale_to(subframes);
    if (full) {
        cfg.sweep.prb_step = 4;
        cfg.sweep.duration_s = 1.0;
    } else {
        cfg.sweep.prb_step = 8;
        cfg.sweep.duration_s = 0.4;
    }
    return cfg;
}

std::size_t
BenchArgs::plot_stride() const
{
    // The paper plots every 25th of 68 000 subframes.
    return std::max<std::size_t>(1, subframes / 2720);
}

void
BenchArgs::maybe_write_csv(const report::SeriesSet &set,
                           const std::string &name,
                           std::size_t stride) const
{
    if (csv_dir.empty())
        return;
    const std::string path = csv_dir + "/" + name + ".csv";
    if (report::write_csv_file(set, path, stride))
        std::cout << "wrote " << path << "\n";
    else
        std::cout << "could not write " << path << "\n";
}

void
print_banner(const std::string &title, const BenchArgs &args)
{
    std::cout << "=== " << title << " ===\n"
              << "protocol: "
              << (args.full ? "full (paper)" : "compressed") << ", "
              << args.subframes << " subframes, seed " << args.seed
              << "\n\n";
}

} // namespace lte::bench

/**
 * @file
 * Fig. 11 — steady-state activity vs PRBs for the twelve
 * (layers, modulation) configurations, measured on the simulated
 * TILEPro64 with 62 workers exactly as the paper's protocol
 * (Sec. VI-A): one fixed user configuration per run, activity from
 * cycle accounting.  Prints the fitted k_{L,M} slopes (Eq. 3).
 */
#include <iostream>

#include "bench_util.hpp"
#include "mgmt/estimator.hpp"
#include "sim/calibrate.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner(
        "Fig. 11: activity vs PRBs per (layers, modulation)", args);

    sim::SimConfig sim_cfg;
    sim_cfg.cycles_per_op = sim::calibrate_cycles_per_op(sim_cfg);

    const std::uint32_t step = args.full ? 2 : 8;
    const double duration = args.full ? 2.0 : 0.4;

    std::vector<double> x;
    for (std::uint32_t prb = 2; prb <= 200; prb += step)
        x.push_back(static_cast<double>(prb));

    report::SeriesSet set("prb", x);
    mgmt::CalibrationTable table;

    for (std::uint32_t layers = 1; layers <= 4; ++layers) {
        for (Modulation mod : kAllModulations) {
            std::vector<double> activity;
            std::vector<mgmt::CalibrationSample> samples;
            for (std::uint32_t prb = 2; prb <= 200; prb += step) {
                phy::UserParams user;
                user.prb = prb;
                user.layers = layers;
                user.mod = mod;
                const double a = sim::steady_state_activity(
                    sim_cfg, user, 4, duration);
                activity.push_back(100.0 * a);
                samples.push_back({prb, a});
            }
            table.fit(layers, mod, samples);
            set.add(std::string(modulation_name(mod)) + "_" +
                        std::to_string(layers) + "L",
                    std::move(activity));
        }
    }

    std::cout << "activity (%) per series:\n";
    set.print_summary(std::cout);
    args.maybe_write_csv(set, "fig11_calibration");

    std::cout << "\nfitted slopes k_{L,M} (activity per PRB, Eq. 3):\n";
    report::TextTable slopes({"layers", "QPSK", "16QAM", "64QAM"});
    for (std::uint32_t layers = 1; layers <= 4; ++layers) {
        slopes.add_row(
            {std::to_string(layers),
             report::fmt(table.get(layers, Modulation::kQpsk), 6),
             report::fmt(table.get(layers, Modulation::k16Qam), 6),
             report::fmt(table.get(layers, Modulation::k64Qam), 6)});
    }
    slopes.print(std::cout);

    std::cout << "\npaper: clear linear correlation; the "
                 "4-layer/64-QAM curve reaches\n       ~100% activity "
                 "at 200 PRBs.\nmeasured: k(4,64QAM) x 200 = "
              << report::fmt(table.get(4, Modulation::k64Qam) * 200.0, 3)
              << "\n";
    return 0;
}

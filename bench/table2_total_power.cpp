/**
 * @file
 * Table II — average total power dissipation for all five techniques,
 * with improvements relative to NONAP and relative to IDLE.
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Table II: average total power", args);

    core::UplinkStudy study(args.study_config());
    study.prepare();

    struct Row
    {
        mgmt::Strategy strategy;
        const char *paper_power;
        const char *paper_rel_nonap;
        const char *paper_rel_idle;
    };
    const Row rows[] = {
        {mgmt::Strategy::kNoNap, "25", "0%", "+21%"},
        {mgmt::Strategy::kIdle, "20.7", "-17%", "0%"},
        {mgmt::Strategy::kNap, "20.5", "-18%", "-1%"},
        {mgmt::Strategy::kNapIdle, "19.9", "-22%", "-4%"},
        {mgmt::Strategy::kPowerGating, "18.5", "-26%", "-11%"},
    };

    double powers[5] = {};
    for (std::size_t k = 0; k < 5; ++k)
        powers[k] = study.run_strategy(rows[k].strategy).avg_power_w;
    const double nonap = powers[0];
    const double idle = powers[1];

    report::TextTable table({"Technique", "Power (W)", "Rel. NONAP",
                             "Rel. IDLE", "Paper (W)", "Paper NONAP",
                             "Paper IDLE"});
    for (std::size_t k = 0; k < 5; ++k) {
        table.add_row(
            {mgmt::strategy_name(rows[k].strategy),
             report::fmt(powers[k], 2),
             report::fmt_percent((powers[k] - nonap) / nonap),
             report::fmt_percent((powers[k] - idle) / idle),
             rows[k].paper_power, rows[k].paper_rel_nonap,
             rows[k].paper_rel_idle});
    }
    table.print(std::cout);

    std::cout << "\npaper: these numbers are for the ~50% average-load "
                 "input model; a\n       typical base-station load of "
                 "25% benefits even more (see\n       bench/diurnal_"
                 "study for that scenario).\n";
    return 0;
}

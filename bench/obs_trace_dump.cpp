/**
 * @file
 * Observability dump tool: runs the live work-stealing engine with
 * tracing enabled for 100 subframes and writes
 *
 *   obs_trace.json      per-worker span timeline (chrome://tracing)
 *   obs_subframes.csv   per-subframe latency/deadline series
 *   obs_metrics.csv     engine counters and gauges
 *
 * then runs one simulated study strategy and writes its per-subframe
 * activity/power series as CSV and counter-track JSON
 * (obs_study.csv, obs_study_trace.json).  Output lands in --csv DIR
 * (default: current directory).
 */
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "core/study_export.hpp"
#include "obs/export.hpp"
#include "runtime/engine.hpp"
#include "workload/paper_model.hpp"

namespace {

std::ofstream
open_out(const std::string &dir, const char *name)
{
    const std::string path = dir + "/" + name;
    std::ofstream ofs(path);
    if (!ofs)
        std::cerr << "cannot open " << path << "\n";
    else
        std::cout << "wrote " << path << "\n";
    return ofs;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lte;
    auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Observability dump (trace + metrics export)",
                        args);
    const std::string dir = args.csv_dir.empty() ? "." : args.csv_dir;

    // Calibrate once; the study estimator also drives the live engine.
    core::UplinkStudy study(args.study_config());
    study.prepare();

    // --- live engine: 100 subframes with tracing enabled ------------
    runtime::EngineConfig cfg;
    cfg.pool.n_workers = 4;
    cfg.pool.strategy = mgmt::Strategy::kNap;
    cfg.input.pool_size = 4;
    cfg.input.seed = args.seed;
    cfg.obs.enabled = true;
    auto engine = runtime::make_engine(cfg);
    engine->set_estimator(mgmt::WorkloadEstimator(study.table()));

    workload::PaperModelConfig model_cfg;
    model_cfg.ramp_subframes = 100;
    model_cfg.prob_update_interval = 10;
    model_cfg.seed = args.seed;
    workload::PaperModel model(model_cfg);

    const std::size_t n_live = 100;
    const runtime::RunRecord record = engine->run(model, n_live);
    std::cout << "live engine: " << record.subframes.size()
              << " subframes, " << record.user_count() << " users\n";

    if (auto ofs = open_out(dir, "obs_trace.json"))
        obs::write_chrome_trace(ofs, *engine->tracer());
    if (auto ofs = open_out(dir, "obs_subframes.csv"))
        obs::write_subframe_csv(ofs, *engine->subframe_series(),
                                cfg.obs.deadline_ms);
    if (auto ofs = open_out(dir, "obs_metrics.csv"))
        obs::write_metrics_csv(ofs, *engine->metrics());

    // --- simulated study: per-subframe activity/power series --------
    const auto outcome =
        study.run_strategy(mgmt::Strategy::kPowerGating);
    const auto n_workers = outcome.sim.n_workers;
    if (auto ofs = open_out(dir, "obs_study.csv"))
        core::write_study_csv(ofs, outcome, n_workers);
    if (auto ofs = open_out(dir, "obs_study_trace.json"))
        core::write_study_chrome_trace(ofs, outcome, n_workers);
    if (auto ofs = open_out(dir, "obs_study_metrics.csv"))
        obs::write_metrics_csv(ofs, study.metrics());

    std::cout << "\nopen obs_trace.json in chrome://tracing or "
                 "https://ui.perfetto.dev to inspect the timeline\n";
    return 0;
}

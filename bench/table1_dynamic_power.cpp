/**
 * @file
 * Table I — average power dissipation with the 14 W base power
 * subtracted, for NONAP / IDLE / NAP / NAP+IDLE, with the reduction
 * relative to NONAP.
 */
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner(
        "Table I: average dynamic power (base power excluded)", args);

    core::UplinkStudy study(args.study_config());
    study.prepare();

    const mgmt::Strategy strategies[] = {
        mgmt::Strategy::kNoNap, mgmt::Strategy::kIdle,
        mgmt::Strategy::kNap, mgmt::Strategy::kNapIdle};
    struct PaperRow { const char *power; const char *reduction; };
    const PaperRow paper[] = {
        {"11", "0%"}, {"6.7", "39%"}, {"6.5", "41%"}, {"5.9", "46%"}};

    double nonap_dyn = 0.0;
    report::TextTable table({"Technique", "Power (W)", "Reduction",
                             "Paper (W)", "Paper red."});
    for (std::size_t k = 0; k < 4; ++k) {
        const auto outcome = study.run_strategy(strategies[k]);
        const double dyn = outcome.avg_dynamic_w;
        if (k == 0)
            nonap_dyn = dyn;
        const double reduction =
            nonap_dyn > 0.0 ? (nonap_dyn - dyn) / nonap_dyn : 0.0;
        table.add_row({mgmt::strategy_name(strategies[k]),
                       report::fmt(dyn, 2),
                       report::fmt(100.0 * reduction, 0) + "%",
                       paper[k].power, paper[k].reduction});
    }
    table.print(std::cout);

    std::cout << "\npaper: clock gating in any form is key to reducing "
                 "dynamic power;\n       estimation adds a further ~7% "
                 "on average over reactive IDLE.\n";
    return 0;
}

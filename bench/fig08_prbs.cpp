/**
 * @file
 * Fig. 8 — total physical resource blocks allocated per subframe plus
 * the maximum and minimum allocation of a single user.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "workload/paper_model.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Fig. 8: PRBs per subframe (total / max / min)",
                        args);

    const auto cfg = args.study_config();
    workload::PaperModel model(cfg.model);

    std::vector<double> x, total, max_user, min_user;
    RunningStats max_stats, min_stats;
    for (std::uint64_t i = 0; i < args.subframes; ++i) {
        const auto sf = model.next_subframe();
        std::uint32_t hi = 0, lo = 201;
        for (const auto &u : sf.users) {
            hi = std::max(hi, u.prb);
            lo = std::min(lo, u.prb);
        }
        x.push_back(static_cast<double>(i));
        total.push_back(static_cast<double>(sf.total_prb()));
        max_user.push_back(static_cast<double>(hi));
        min_user.push_back(static_cast<double>(lo));
        max_stats.add(hi);
        min_stats.add(lo);
    }

    report::SeriesSet set("subframe", x);
    set.add("total", total);
    set.add("max", max_user);
    set.add("min", min_user);
    set.print_summary(std::cout);
    args.maybe_write_csv(set, "fig08_prbs", args.plot_stride());

    std::cout << "\npaper: max user allocation varies between 20 and "
                 "190 PRBs,\n       min between 2 and 100; the total "
                 "hugs the 200 ceiling.\nmeasured: max-user range ["
              << max_stats.min() << ", " << max_stats.max()
              << "], min-user range [" << min_stats.min() << ", "
              << min_stats.max() << "]\n";
    return 0;
}

/**
 * @file
 * Fig. 15 — measured power over time for NONAP, IDLE, NAP, and
 * NAP+IDLE (100 ms RMS windows).
 */
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner(
        "Fig. 15: power, NONAP / IDLE / NAP / NAP+IDLE", args);

    core::UplinkStudy study(args.study_config());
    study.prepare();

    const mgmt::Strategy strategies[] = {
        mgmt::Strategy::kNoNap, mgmt::Strategy::kIdle,
        mgmt::Strategy::kNap, mgmt::Strategy::kNapIdle};

    std::vector<std::vector<double>> rms;
    std::vector<double> averages;
    std::size_t n = SIZE_MAX;
    for (mgmt::Strategy s : strategies) {
        const auto outcome = study.run_strategy(s);
        rms.push_back(
            power::PowerModel::rms_windows(outcome.series, 0.1));
        averages.push_back(outcome.avg_power_w);
        n = std::min(n, rms.back().size());
    }

    std::vector<double> t;
    for (std::size_t i = 0; i < n; ++i)
        t.push_back(0.1 * static_cast<double>(i + 1));
    report::SeriesSet set("time_s", t);
    for (std::size_t k = 0; k < 4; ++k) {
        rms[k].resize(n);
        set.add(mgmt::strategy_name(strategies[k]), rms[k]);
    }
    set.print_summary(std::cout);
    args.maybe_write_csv(set, "fig15_techniques");

    std::cout << "\naverages:\n";
    report::TextTable table({"Technique", "Avg power (W)", "Paper (W)"});
    const char *paper[] = {"25", "20.7", "20.5", "19.9"};
    for (std::size_t k = 0; k < 4; ++k) {
        table.add_row({mgmt::strategy_name(strategies[k]),
                       report::fmt(averages[k], 2), paper[k]});
    }
    table.print(std::cout);

    std::cout << "\npaper: NAP+IDLE combines both techniques for the "
                 "lowest power\n       (3% below NAP alone, 20% below "
                 "NONAP); IDLE is ~1% above NAP\n       on average "
                 "because napping cores keep polling for work.\n";
    return 0;
}

/**
 * @file
 * Fig. 14 — measured power over time with (NAP) and without (NONAP)
 * estimation-guided core deactivation, plus the activity trace.
 * Power is reported as 100 ms RMS windows like the paper's DAQ
 * post-processing.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    using namespace lte;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_banner("Fig. 14: power, NONAP vs NAP", args);

    core::UplinkStudy study(args.study_config());
    study.prepare();

    const auto nonap = study.run_strategy(mgmt::Strategy::kNoNap);
    const auto nap = study.run_strategy(mgmt::Strategy::kNap);

    const auto rms_nonap =
        power::PowerModel::rms_windows(nonap.series, 0.1);
    const auto rms_nap = power::PowerModel::rms_windows(nap.series, 0.1);
    const std::size_t n = std::min(rms_nonap.size(), rms_nap.size());

    std::vector<double> t, p_nonap, p_nap, activity;
    // Activity per 100 ms window for the secondary axis.
    double busy = 0.0, dur = 0.0;
    std::vector<double> act_windows;
    for (const auto &iv : nonap.sim.intervals) {
        busy += iv.busy_cs;
        dur += iv.dur;
        if (dur >= 0.1 - 1e-9) {
            act_windows.push_back(
                busy / (static_cast<double>(nonap.sim.n_workers) * dur));
            busy = dur = 0.0;
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        t.push_back(0.1 * static_cast<double>(i + 1));
        p_nonap.push_back(rms_nonap[i]);
        p_nap.push_back(rms_nap[i]);
        activity.push_back(i < act_windows.size() ? act_windows[i]
                                                  : 0.0);
    }

    report::SeriesSet set("time_s", t);
    set.add("NONAP_W", p_nonap);
    set.add("NAP_W", p_nap);
    set.add("activity", activity);
    set.print_summary(std::cout);
    args.maybe_write_csv(set, "fig14_nap_power");

    // Low-load and peak-load gaps.
    double low_gap = 0.0, peak_nonap = 0.0, peak_nap = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (activity[i] < 0.2)
            low_gap = std::max(low_gap, p_nonap[i] - p_nap[i]);
        peak_nonap = std::max(peak_nonap, p_nonap[i]);
        peak_nap = std::max(peak_nap, p_nap[i]);
    }

    std::cout << "\npaper:    averages NONAP 25 W vs NAP 20.5 W; "
                 "low-load gap 6-7 W\n          (>25%); NAP peak ~1 W "
                 "below NONAP peak.\nmeasured: averages NONAP "
              << report::fmt(nonap.avg_power_w, 1) << " W vs NAP "
              << report::fmt(nap.avg_power_w, 1)
              << " W; low-load gap " << report::fmt(low_gap, 1)
              << " W; peaks " << report::fmt(peak_nonap, 1) << " vs "
              << report::fmt(peak_nap, 1) << " W\n";
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks of the DSP kernels the receive
 * chain is built from: FFT plans across size classes, channel
 * estimation, MMSE combiner weights, antenna combining, soft
 * demapping, interleaving, CRC, and the turbo codec extension.
 */
#include <benchmark/benchmark.h>

#include "simd/simd.hpp"

#include "channel/signal_source.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "phy/channel_estimator.hpp"
#include "phy/combiner.hpp"
#include "phy/crc.hpp"
#include "phy/scfdma.hpp"
#include "phy/scrambler.hpp"
#include "phy/interleaver.hpp"
#include "phy/modulation.hpp"
#include "phy/turbo.hpp"
#include "phy/user_processor.hpp"
#include "phy/zadoff_chu.hpp"

namespace {

using namespace lte;

CVec
random_signal(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    CVec v(n);
    for (auto &s : v) {
        s = cf32(static_cast<float>(rng.next_gaussian()),
                 static_cast<float>(rng.next_gaussian()));
    }
    return v;
}

void
BM_FftForward(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    fft::Fft plan(n);
    const CVec in = random_signal(n, n);
    CVec out(n);
    for (auto _ : state) {
        plan.forward(in.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
// 5-smooth sizes, a prime-factor size (direct DFT), a Bluestein size,
// and powers of two (the pure radix-4/radix-2 butterfly path),
// covering the library's code paths.
BENCHMARK(BM_FftForward)->Arg(12)->Arg(144)->Arg(300)->Arg(1200)
    ->Arg(492)->Arg(804)->Arg(256)->Arg(1024);

void
BM_ChannelEstimate(benchmark::State &state)
{
    const auto m = static_cast<std::size_t>(state.range(0));
    const CVec ref = phy::user_dmrs(1, 0, m, 0);
    CVec rx = random_signal(m, m);
    for (auto _ : state) {
        auto est = phy::estimate_channel(rx, ref);
        benchmark::DoNotOptimize(est.freq_response.data());
    }
}
BENCHMARK(BM_ChannelEstimate)->Arg(120)->Arg(600)->Arg(1200);

void
BM_CombinerWeights(benchmark::State &state)
{
    const auto layers = static_cast<std::size_t>(state.range(0));
    const std::size_t m = 300;
    Rng rng(9);
    std::vector<std::vector<CVec>> channel(
        4, std::vector<CVec>(layers));
    for (auto &ant : channel) {
        for (auto &layer : ant)
            layer = random_signal(m, rng.next_u64());
    }
    for (auto _ : state) {
        auto w = phy::compute_combiner_weights(channel, 0.05f);
        benchmark::DoNotOptimize(&w);
    }
}
BENCHMARK(BM_CombinerWeights)->Arg(1)->Arg(2)->Arg(4);

/** The allocation-free engine path: flat ChannelView in, re-shaped
 *  CombinerWeights out (SIMD Gram accumulation when enabled). */
void
BM_CombinerWeightsInto(benchmark::State &state)
{
    const auto layers = static_cast<std::size_t>(state.range(0));
    const std::size_t antennas = 4;
    const std::size_t m = 300;
    const CVec ch = random_signal(antennas * layers * m, 21);
    const phy::ChannelView view{ch.data(), antennas, layers, m};
    phy::CombinerWeights w;
    for (auto _ : state) {
        phy::compute_combiner_weights_into(view, 0.05f, w);
        benchmark::DoNotOptimize(&w);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m));
}
BENCHMARK(BM_CombinerWeightsInto)->Arg(1)->Arg(2)->Arg(4);

/** Antenna combining of one SC-FDMA symbol into one layer. */
void
BM_Combine(benchmark::State &state)
{
    const auto antennas = static_cast<std::size_t>(state.range(0));
    const std::size_t layers = 2;
    const std::size_t m = 1200;
    const CVec ch = random_signal(antennas * layers * m, 22);
    const phy::ChannelView view{ch.data(), antennas, layers, m};
    phy::CombinerWeights w;
    phy::compute_combiner_weights_into(view, 0.05f, w);

    std::vector<CVec> rx_store;
    for (std::size_t a = 0; a < antennas; ++a)
        rx_store.push_back(random_signal(m, 23 + a));
    std::vector<CfView> rx;
    for (const CVec &v : rx_store)
        rx.emplace_back(v.data(), v.size());

    CVec out(m);
    for (auto _ : state) {
        phy::combine_layer_into(std::span<const CfView>(rx), w, 0, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m));
}
BENCHMARK(BM_Combine)->Arg(2)->Arg(4);

/** The channel estimator's matched filter in isolation. */
void
BM_MatchedFilter(benchmark::State &state)
{
    const auto m = static_cast<std::size_t>(state.range(0));
    const CVec rx = random_signal(m, 24);
    const CVec ref = phy::user_dmrs(1, 0, m, 0);
    CVec out(m);
    for (auto _ : state) {
        phy::matched_filter_conj_into(rx, ref, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m));
}
BENCHMARK(BM_MatchedFilter)->Arg(300)->Arg(1200);

void
BM_SoftDemap(benchmark::State &state)
{
    const auto mod = static_cast<Modulation>(state.range(0));
    const CVec symbols = random_signal(1200, 7);
    for (auto _ : state) {
        auto llrs = phy::demodulate_soft(symbols, mod, 0.05f);
        benchmark::DoNotOptimize(llrs.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            1200);
}
BENCHMARK(BM_SoftDemap)->Arg(0)->Arg(1)->Arg(2);

/** The allocation-free demapper entry point (no output vector in the
 *  loop), per modulation. */
void
BM_SoftDemapInto(benchmark::State &state)
{
    const auto mod = static_cast<Modulation>(state.range(0));
    const std::size_t m = 1200;
    const CVec symbols = random_signal(m, 7);
    std::vector<Llr> llrs(m * bits_per_symbol(mod));
    for (auto _ : state) {
        phy::demodulate_soft_into(symbols, mod, 0.05f, llrs);
        benchmark::DoNotOptimize(llrs.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m));
}
BENCHMARK(BM_SoftDemapInto)->Arg(0)->Arg(1)->Arg(2);

void
BM_Interleave(benchmark::State &state)
{
    const CVec in = random_signal(1200, 3);
    for (auto _ : state) {
        auto out = phy::interleave(in);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_Interleave);

void
BM_Crc24(benchmark::State &state)
{
    Rng rng(5);
    std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(state.range(0)));
    for (auto &b : bits)
        b = static_cast<std::uint8_t>(rng.next_u64() & 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(phy::crc24(bits));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Crc24)->Arg(1024)->Arg(16384);

void
BM_TurboEncode(benchmark::State &state)
{
    Rng rng(6);
    std::vector<std::uint8_t> info(
        static_cast<std::size_t>(state.range(0)));
    for (auto &b : info)
        b = static_cast<std::uint8_t>(rng.next_u64() & 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(phy::turbo_encode(info));
}
BENCHMARK(BM_TurboEncode)->Arg(256)->Arg(1024);

void
BM_TurboDecode(benchmark::State &state)
{
    Rng rng(8);
    const std::size_t k = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> info(k);
    for (auto &b : info)
        b = static_cast<std::uint8_t>(rng.next_u64() & 1);
    const auto coded = phy::turbo_encode(info);
    std::vector<Llr> llrs(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
        llrs[i] = (coded[i] ? -2.0f : 2.0f) +
                  static_cast<float>(rng.next_gaussian());
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(phy::turbo_decode(llrs, k));
}
BENCHMARK(BM_TurboDecode)->Arg(256);

/**
 * The workspace decoder at a fixed 6-iteration budget (crc_poly = 0,
 * so no early termination skews the comparison).  `simd` toggles
 * force_scalar: the ratio of the two medians at k = 6144 is the
 * SIMD-trellis speedup the PR 7 acceptance tracks (>= 4x).
 */
void
turbo_decode_block_bench(benchmark::State &state, bool simd)
{
    Rng rng(8);
    const std::size_t k = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> info(k);
    for (auto &b : info)
        b = static_cast<std::uint8_t>(rng.next_u64() & 1);
    const auto coded = phy::turbo_encode(info);
    std::vector<Llr> llrs(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
        llrs[i] = (coded[i] ? -2.0f : 2.0f) +
                  static_cast<float>(rng.next_gaussian());
    }
    const phy::QppInterleaver &pi = phy::qpp_interleaver(k);
    phy::TurboDecoderConfig cfg;
    cfg.iterations = 6;
    cfg.force_scalar = !simd;
    phy::TurboWorkspace ws;
    ws.reserve(k);
    std::vector<std::uint8_t> bits(k);
    for (auto _ : state) {
        benchmark::DoNotOptimize(phy::turbo_decode_block_into(
            llrs, k, pi, cfg, 0, ws, BitSpan(bits.data(), k)));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(k));
}

void
BM_TurboDecodeSimd(benchmark::State &state)
{
    turbo_decode_block_bench(state, true);
}
BENCHMARK(BM_TurboDecodeSimd)->Arg(1024)->Arg(6144);

void
BM_TurboDecodeScalar(benchmark::State &state)
{
    turbo_decode_block_bench(state, false);
}
BENCHMARK(BM_TurboDecodeScalar)->Arg(1024)->Arg(6144);

void
BM_GoldSequence(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            phy::gold_sequence(0x12345, 14400));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 14400);
}
BENCHMARK(BM_GoldSequence);

void
BM_ScFdmaModulate(benchmark::State &state)
{
    phy::ScFdmaConfig cfg;
    const CVec carrier =
        phy::map_to_carrier(random_signal(1200, 4), 0, cfg);
    for (auto _ : state) {
        auto time = phy::scfdma_modulate(carrier, 1, cfg);
        benchmark::DoNotOptimize(time.data());
    }
}
BENCHMARK(BM_ScFdmaModulate);

void
BM_FullUserSubframe(benchmark::State &state)
{
    phy::UserParams params;
    params.prb = static_cast<std::uint32_t>(state.range(0));
    params.layers = 2;
    params.mod = Modulation::k16Qam;
    Rng rng(11);
    const auto signal = channel::random_user_signal(params, 4, rng);
    const phy::ReceiverConfig cfg;
    // Long-lived processor, re-bound per subframe: the steady-state
    // pattern of the engines (allocation-free past the first bind).
    phy::UserProcessor proc(cfg);
    for (auto _ : state) {
        proc.bind(params, &signal);
        benchmark::DoNotOptimize(proc.process_all());
    }
}
BENCHMARK(BM_FullUserSubframe)->Arg(10)->Arg(50)->Arg(200);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::AddCustomContext("simd_backend", lte::simd::backend_name());
    benchmark::AddCustomContext(
        "simd_enabled", lte::simd::enabled() ? "true" : "false");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

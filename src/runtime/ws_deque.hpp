/**
 * @file
 * Work-stealing deque: the owner pushes and pops at the bottom (LIFO,
 * cache-friendly), thieves steal from the top (FIFO, oldest task
 * first) — the classic Blumofe/Leiserson discipline the paper's
 * runtime relies on (Sec. IV-C, [14][15]).
 *
 * The implementation is a mutex-guarded ring buffer: simple, correct
 * under any interleaving, and more than fast enough for the task
 * granularity of this workload (tasks are whole DSP kernels over
 * hundreds of subcarriers, microseconds at minimum).  The ring is
 * preallocated (and only ever doubles past its high-water mark), so
 * steady-state push/pop/steal never touch the heap — a std::deque
 * here would allocate and free nodes on the subframe hot path.
 */
#ifndef LTE_RUNTIME_WS_DEQUE_HPP
#define LTE_RUNTIME_WS_DEQUE_HPP

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace lte::runtime {

template <typename T>
class WsDeque
{
  public:
    /** Far above the largest task burst one user creates (the tail
     *  fan-out: up to 2 slots x kMaxLayers x 6 data symbols = 48
     *  codeblock tasks pushed by one final demod decrement), with
     *  headroom for several users' bursts landing in one deque;
     *  power of two for masking. */
    static constexpr std::size_t kInitialCapacity = 1024;

    /**
     * @param capacity initial ring capacity; MUST be a power of two —
     *        index() and steal_top() mask with capacity - 1, and a
     *        non-power-of-two size would silently alias slots.
     */
    explicit WsDeque(std::size_t capacity = kInitialCapacity)
        : buffer_(capacity)
    {
        LTE_CHECK(capacity >= 1 && (capacity & (capacity - 1)) == 0,
                  "WsDeque capacity must be a power of two");
    }

    /** Owner side: push a task at the bottom. */
    void
    push_bottom(const T &task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (count_ == buffer_.size())
            grow();
        buffer_[index(count_)] = task;
        ++count_;
    }

    /** Owner side: pop the most recently pushed task. */
    std::optional<T>
    pop_bottom()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (count_ == 0)
            return std::nullopt;
        --count_;
        return buffer_[index(count_)];
    }

    /** Thief side: steal the oldest task. */
    std::optional<T>
    steal_top()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (count_ == 0)
            return std::nullopt;
        T task = buffer_[head_];
        head_ = (head_ + 1) & (buffer_.size() - 1);
        --count_;
        return task;
    }

    /** Approximate emptiness (racy by nature; fine for polling). */
    bool
    empty() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_ == 0;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_;
    }

  private:
    static_assert((kInitialCapacity & (kInitialCapacity - 1)) == 0,
                  "masking in index()/steal_top() requires a "
                  "power-of-two capacity");

    std::size_t
    index(std::size_t i) const
    {
        return (head_ + i) & (buffer_.size() - 1);
    }

    void
    grow()
    {
        // Doubling a power of two keeps the mask invariant; the copy
        // below linearises the (possibly wrapped) ring from head_.
        std::vector<T> bigger(buffer_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            bigger[i] = buffer_[index(i)];
        buffer_.swap(bigger);
        head_ = 0;
        LTE_ASSERT((buffer_.size() & (buffer_.size() - 1)) == 0,
                   "grow() broke the power-of-two capacity invariant");
    }

    mutable std::mutex mutex_;
    std::vector<T> buffer_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_WS_DEQUE_HPP

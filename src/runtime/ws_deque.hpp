/**
 * @file
 * Work-stealing deque: the owner pushes and pops at the bottom (LIFO,
 * cache-friendly), thieves steal from the top (FIFO, oldest task
 * first) — the classic Blumofe/Leiserson discipline the paper's
 * runtime relies on (Sec. IV-C, [14][15]).
 *
 * The implementation is mutex-based: simple, correct under any
 * interleaving, and more than fast enough for the task granularity of
 * this workload (tasks are whole DSP kernels over hundreds of
 * subcarriers, microseconds at minimum).
 */
#ifndef LTE_RUNTIME_WS_DEQUE_HPP
#define LTE_RUNTIME_WS_DEQUE_HPP

#include <deque>
#include <mutex>
#include <optional>

namespace lte::runtime {

template <typename T>
class WsDeque
{
  public:
    /** Owner side: push a task at the bottom. */
    void
    push_bottom(const T &task)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        items_.push_back(task);
    }

    /** Owner side: pop the most recently pushed task. */
    std::optional<T>
    pop_bottom()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        T task = items_.back();
        items_.pop_back();
        return task;
    }

    /** Thief side: steal the oldest task. */
    std::optional<T>
    steal_top()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        T task = items_.front();
        items_.pop_front();
        return task;
    }

    /** Approximate emptiness (racy by nature; fine for polling). */
    bool
    empty() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.empty();
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::deque<T> items_;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_WS_DEQUE_HPP

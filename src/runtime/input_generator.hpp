/**
 * @file
 * Receiver input data pooling (paper Sec. IV-B.1): input data sets are
 * created up front and reused across dispatched subframes, avoiding
 * per-subframe generation cost while keeping concurrently processed
 * subframes on distinct data.
 *
 * Random mode (the paper's): a pool of `pool_size` unique random-IQ
 * data sets per allocation size, cycled per request.  Realistic mode:
 * full transmit-chain + MIMO-channel signals, cached per user
 * configuration, with the expected payload retained for verification.
 *
 * Pool generation is derived deterministically from the master seed
 * and the allocation size only, so a serial and a parallel engine
 * observing the same subframe sequence receive identical inputs —
 * the precondition for the paper's Sec. IV-D validation.
 */
#ifndef LTE_RUNTIME_INPUT_GENERATOR_HPP
#define LTE_RUNTIME_INPUT_GENERATOR_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "phy/params.hpp"
#include "phy/user_processor.hpp"

namespace lte::runtime {

struct InputGeneratorConfig
{
    std::size_t n_antennas = 4;
    /** Unique data sets per allocation size (paper default: ten). */
    std::size_t pool_size = 10;
    /**
     * Fresh mode (random pools only): regenerate the cycled pool entry
     * in place on every request instead of reusing its fixed contents,
     * modelling a fronthaul that delivers new IQ every TTI.  Per-PRB
     * draws come from a dedicated deterministic stream, and requests
     * are always issued from one thread in arrival order, so fresh
     * runs stay bit-reproducible and engine-independent like pooled
     * ones.  Regeneration reuses the entry's capacity — steady state
     * remains allocation-free — but puts real synthesis cost on
     * whichever thread calls signals_for (the receiver loop inline,
     * the producer thread on the sample plane).
     */
    bool fresh = false;
    bool realistic = false;
    double snr_db = 30.0;
    bool real_turbo = false;
    std::uint64_t seed = 7;
    /**
     * Serving cell (1..511).  The effective pool seed is
     * cell_stream_seed(seed, cell_id), so each cell owns an
     * independent deterministic input stream; realistic signals are
     * additionally transmitted with this cell's scrambler/DMRS.
     * Cell 1 reproduces the single-cell pools bit-for-bit.
     */
    std::uint32_t cell_id = 1;

    void validate() const;
};

class InputGenerator
{
  public:
    explicit InputGenerator(const InputGeneratorConfig &config);

    /**
     * Signals for every user of a subframe.  Pointers remain valid for
     * the generator's lifetime (the pool is append-only).
     */
    std::vector<const phy::UserSignal *>
    signals_for(const phy::SubframeParams &subframe);

    /**
     * Same, writing into a reused vector: allocation-free once the
     * pools exist and @p out has enough capacity (the engines' steady
     * state).
     */
    void signals_for(const phy::SubframeParams &subframe,
                     std::vector<const phy::UserSignal *> &out);

    /**
     * Realistic mode only: the payload a correct receiver reproduces
     * for the given user configuration (empty in random mode).
     */
    const std::vector<std::uint8_t> &
    expected_bits(const phy::UserParams &user) const;

    const InputGeneratorConfig &config() const { return config_; }

  private:
    const phy::UserSignal *random_signal(const phy::UserParams &user);
    const phy::UserSignal *realistic_signal(const phy::UserParams &user);

    using RealisticKey =
        std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                   std::uint8_t>;

    struct RealisticEntry
    {
        std::unique_ptr<phy::UserSignal> signal;
        std::vector<std::uint8_t> expected_bits;
    };

    InputGeneratorConfig config_;
    /** Random-IQ pools keyed by PRB count. */
    std::map<std::uint32_t,
             std::vector<std::unique_ptr<phy::UserSignal>>> pools_;
    /** Round-robin cursor per PRB count. */
    std::map<std::uint32_t, std::size_t> cursors_;
    /** Fresh-mode regeneration streams, one per PRB count. */
    std::map<std::uint32_t, Rng> fresh_rngs_;
    std::map<RealisticKey, RealisticEntry> realistic_;
    std::vector<std::uint8_t> empty_bits_;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_INPUT_GENERATOR_HPP

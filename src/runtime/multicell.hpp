/**
 * @file
 * Multi-cell receiver: per-cell pipeline contexts sharded over one
 * shared worker pool.
 *
 * The paper benchmarks a single base-station sector, but a baseband
 * board serves several cells at once.  This engine refactors the
 * single-cell assumption out of the runtime: every cell owns its own
 * admission lane (a TTI-paced pending ring and an in-order executing
 * lane over pooled SubframeJobs), its own deterministic input stream
 * (InputGenerator seeded via cell_stream_seed), its own receiver
 * configuration (cell-specific scrambler and DMRS roots) and its own
 * backlog-aware workload estimate — while all cells' user tasks
 * execute on one shared work-stealing WorkerPool.
 *
 * Fairness: admission into the shared in-flight window is a deficit
 * weighted round-robin over the per-cell pending rings.  Each
 * replenish round grants cell c up to weights[c] admissions; within a
 * round cells are visited cyclically, so under overload the admitted
 * (and therefore completed) subframes of any two backlogged cells
 * converge to the ratio of their weights instead of whichever cell
 * the dispatch loop happened to visit first.
 *
 * Invariants (tests/test_multicell.cpp):
 *  - a 1-cell engine is bit-identical to the single-cell engines over
 *    the same model stream (digest parity), because every cell-id
 *    derivation is the identity at cell 1;
 *  - per cell, record order is arrival order and the per-cell record
 *    digests match a single-cell run of the same (seed, cell id)
 *    regardless of how many cells ran beside it;
 *  - steady-state processing performs zero heap allocations (the
 *    per-cell job pools, signal vectors and rings all reach a
 *    high-water mark during warm-up);
 *  - per cell, shed + completed == submitted.
 */
#ifndef LTE_RUNTIME_MULTICELL_HPP
#define LTE_RUNTIME_MULTICELL_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/engine.hpp"

namespace lte::io {
struct IqFrame;
struct FeedStats;
class SampleTransport;
}

namespace lte::runtime {

/** Configuration of the multi-cell engine. */
struct MultiCellConfig
{
    /**
     * Per-cell engine template: pool shape (shared), receiver, input
     * generator, streaming knobs (delta_ms, deadline_ms, shed_policy,
     * admission_queue per cell, max_in_flight for the *shared*
     * window) and observability.  The template's receiver/input
     * cell_id fields are overridden per cell from cell_ids.
     */
    EngineConfig engine;

    /** Number of cells sharing the pool. */
    std::size_t n_cells = 1;

    /**
     * Physical cell identities (1..511, distinct).  Empty = 1..n_cells,
     * so a default 1-cell engine serves cell 1 and reproduces the
     * single-cell pipeline bit-for-bit.
     */
    std::vector<std::uint32_t> cell_ids;

    /**
     * Weighted-round-robin admission weights (>= 1).  Empty = equal
     * weights.  Under overload, backlogged cells complete subframes
     * in proportion to their weights.
     */
    std::vector<std::uint32_t> weights;

    void validate() const;

    /** The cell id serving lane @p cell (applies the 1..n default). */
    std::uint32_t cell_id_of(std::size_t cell) const;

    /** The WRR weight of lane @p cell (applies the all-1 default). */
    std::uint32_t weight_of(std::size_t cell) const;
};

/** Everything a multi-cell run produces. */
struct MultiCellRunRecord
{
    /**
     * One record per cell, subframes in that cell's arrival order.
     * Each per-cell record carries its cell_id, per-cell total_ops
     * and the shared wall clock; pool-level aggregates (activity,
     * steals) live on the aggregate fields below.
     */
    std::vector<RunRecord> cells;

    /** Per-cell admission accounting (index-aligned with cells). */
    std::vector<ShedStats> shed;

    double wall_seconds = 0.0;
    double activity = 0.0;       ///< Eq. 2 over the shared pool
    std::uint64_t total_ops = 0; ///< analytical flops, all cells
    std::uint64_t steals = 0;

    /** Subframes completed across all cells. */
    std::size_t completed_subframes() const;

    /** Users processed across all cells. */
    std::size_t user_count() const;
};

/**
 * The multi-cell engine.  Not an Engine subclass: its run() consumes
 * one parameter model per cell and returns per-cell records, which
 * does not fit the single-model Engine contract; the per-cell
 * synchronous entry point mirrors Engine::process_subframe for tests
 * and warm-up.
 */
class MultiCellEngine
{
  public:
    explicit MultiCellEngine(const MultiCellConfig &config);

    const char *name() const { return "multi-cell"; }
    std::size_t n_cells() const { return cells_.size(); }
    const MultiCellConfig &config() const { return config_; }
    WorkerPool &pool() { return *pool_; }

    /** The given cell's input generator (pool warm-up, tests). */
    InputGenerator &input(std::size_t cell);

    /** The given cell's physical identity. */
    std::uint32_t cell_id(std::size_t cell) const;

    /** Admission tallies of the last run() for one cell. */
    const ShedStats &shed_stats(std::size_t cell) const;

    /**
     * Give every cell a backlog-aware Eq. 4 estimator (one copy per
     * cell) plus an engine-level copy that turns the *summed* per-cell
     * estimates into the shared pool's active-core count (Eq. 5).
     */
    void set_estimator(std::optional<mgmt::WorkloadEstimator> estimator);

    /** Span tracer, or nullptr when observability is disabled. */
    obs::Tracer *tracer() { return tracer_.get(); }
    /** Cell-tagged per-subframe series, or nullptr when disabled. */
    const obs::SubframeSeries *subframe_series() const
    {
        return series_.get();
    }
    /** Metrics registry (aggregate engine.* plus per-cell
     *  engine.cell<id>.* counters), or nullptr when disabled. */
    obs::MetricsRegistry *metrics() { return metrics_.get(); }

    /**
     * Process one subframe of one cell synchronously (the engine must
     * be otherwise idle).  params.cell_id must name the lane's cell.
     * Allocation-free in steady state; the returned reference stays
     * valid until the next call.
     */
    const SubframeOutcome &
    process_subframe(std::size_t cell, const phy::SubframeParams &params);

    /**
     * Run @p n_subframes TTI ticks.  Each tick draws one subframe
     * from every cell's model (models.size() == n_cells; each consumed
     * from its current state), enqueues it on that cell's admission
     * ring under the configured deadline/shed policy, and drains the
     * rings into the shared in-flight window by weighted round-robin.
     * With deadline_ms == 0 the engine is lossless (backpressure).
     */
    MultiCellRunRecord
    run(const std::vector<workload::ParameterModel *> &models,
        std::size_t n_subframes);

  private:
    /** One cell's shard of the pipeline. */
    struct CellContext
    {
        explicit CellContext(const InputGeneratorConfig &input_config)
            : input(input_config)
        {
        }

        std::uint32_t cell_id = 1;
        std::uint32_t weight = 1;
        phy::ReceiverConfig receiver;
        InputGenerator input;
        std::optional<mgmt::WorkloadEstimator> estimator;

        /** Pooled jobs; at most admission_queue + max_in_flight + 1
         *  per cell ever exist. */
        admission::JobPool job_pool;
        /** Prepared subframes waiting for a shared in-flight slot. */
        std::deque<SubframeJob *> pending;
        /** This cell's submitted jobs, oldest first. */
        std::deque<SubframeJob *> executing;
        std::vector<const phy::UserSignal *> signals;

        ShedStats shed;
        /** Deficit-WRR credits remaining in the current round. */
        std::uint32_t credits = 0;
        /** Most recent Eq. 4 estimate (-1 when no estimator). */
        double last_estimate = -1.0;

        /** This lane's sample-plane transport, live only inside
         *  run_offloaded() (null on the inline path). */
        io::SampleTransport *transport = nullptr;
        /** Producer-side loss/late deltas already folded into shed. */
        std::uint64_t io_lost_synced = 0;
        std::uint64_t io_late_synced = 0;

        /** Cached per-cell counters (null when metrics are off). */
        obs::Counter *submitted_counter = nullptr;
        obs::Counter *completed_counter = nullptr;
        obs::Counter *shed_counter = nullptr;
        obs::Counter *degraded_counter = nullptr;
        obs::Counter *deadline_miss_counter = nullptr;
    };

    std::size_t dispatch_slot() const
    {
        return config_.engine.pool.n_workers;
    }
    std::uint64_t obs_now_ns() const;
    double age_ms(const SubframeJob &job, std::uint64_t now_ns) const;

    /** Eq. 5 over the clamped sum of the cells' last estimates. */
    void update_active_workers();

    void observe_completion(CellContext &cell, const SubframeJob &job,
                            std::uint64_t t_complete_ns);
    void observe_shed(CellContext &cell, std::uint64_t subframe_index,
                      bool expired);

    /** Shed pending-ring heads that aged past the deadline. */
    void expire_pending(CellContext &cell);
    /** Move one job from the cell's pending ring into the shared
     *  window (degrade check, dispatch stamp, pool submit). */
    void admit_one(CellContext &cell);
    /** Deficit-WRR drain of all pending rings into the window. */
    void admit_wrr();
    /** Pop completed jobs off every cell's executing front. */
    void reap_all(MultiCellRunRecord &record);
    /** Block on the globally oldest admitted job, then reap. */
    void drain_one(MultiCellRunRecord &record);
    /** Release a job to its lane's pool, recycling its sample-plane
     *  frame (if any) to the lane's free ring first. */
    void release_job(CellContext &cell, SubframeJob *job);
    /** Fold one lane's producer-side frame losses into its shed
     *  accounting. */
    void sync_io_stats(CellContext &cell, const io::FeedStats &stats);
    /** Run one popped frame through the lane's admission policy. */
    void consume_frame(CellContext &cell, io::IqFrame *frame,
                       MultiCellRunRecord &record);
    /** The sample-plane run loop (engine.io.enabled): one producer
     *  thread per cell, admission consumes ready frames. */
    MultiCellRunRecord
    run_offloaded(const std::vector<workload::ParameterModel *> &models,
                  std::size_t n_subframes);

    MultiCellConfig config_;
    std::unique_ptr<WorkerPool> pool_;
    std::vector<std::unique_ptr<CellContext>> cells_;
    std::optional<mgmt::WorkloadEstimator> estimator_;

    std::size_t total_pending_ = 0;
    std::size_t total_executing_ = 0;
    /** Next admission-order stamp (monotonic across cells). */
    std::uint64_t admit_seq_ = 0;
    /** WRR scan start for the next admission. */
    std::size_t rr_next_ = 0;

    SubframeOutcome outcome_;

    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::SubframeSeries> series_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    obs::Counter *submitted_counter_ = nullptr;
    obs::Counter *admitted_counter_ = nullptr;
    obs::Counter *completed_counter_ = nullptr;
    obs::Counter *shed_counter_ = nullptr;
    obs::Counter *shed_queue_full_counter_ = nullptr;
    obs::Counter *shed_expired_counter_ = nullptr;
    obs::Counter *degraded_counter_ = nullptr;
    obs::Counter *subframes_counter_ = nullptr;
    obs::Counter *users_counter_ = nullptr;
    obs::Counter *deadline_miss_counter_ = nullptr;
    obs::Counter *io_lost_counter_ = nullptr;
    obs::Counter *io_late_counter_ = nullptr;
    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_MULTICELL_HPP

/**
 * @file
 * Backwards-compatible include for the serial reference engine, which
 * now lives in runtime/engine.hpp behind the unified Engine interface.
 * New code should include "runtime/engine.hpp" and use make_engine().
 */
#ifndef LTE_RUNTIME_SERIAL_ENGINE_HPP
#define LTE_RUNTIME_SERIAL_ENGINE_HPP

#include "runtime/engine.hpp"

#endif // LTE_RUNTIME_SERIAL_ENGINE_HPP

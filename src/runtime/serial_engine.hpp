/**
 * @file
 * The serial reference version of the benchmark (paper Sec. IV-A):
 * processes a predetermined sequence of subframes sequentially,
 * recording per-subframe results against which parallel runs are
 * validated (Sec. IV-D).
 */
#ifndef LTE_RUNTIME_SERIAL_ENGINE_HPP
#define LTE_RUNTIME_SERIAL_ENGINE_HPP

#include "phy/params.hpp"
#include "runtime/input_generator.hpp"
#include "runtime/run_record.hpp"
#include "workload/parameter_model.hpp"

namespace lte::runtime {

class SerialEngine
{
  public:
    SerialEngine(const phy::ReceiverConfig &receiver,
                 const InputGeneratorConfig &input);

    /** Process @p n_subframes from @p model, one user at a time. */
    RunRecord run(workload::ParameterModel &model,
                  std::size_t n_subframes);

    InputGenerator &input() { return input_; }

  private:
    phy::ReceiverConfig receiver_;
    InputGenerator input_;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_SERIAL_ENGINE_HPP

/**
 * @file
 * Runtime task plumbing: per-user work state, the two stealable task
 * kinds (channel estimation, demodulation), and the per-subframe job
 * that owns everything (paper Sec. IV-C).
 */
#ifndef LTE_RUNTIME_TASK_HPP
#define LTE_RUNTIME_TASK_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "phy/op_model.hpp"
#include "phy/params.hpp"
#include "phy/user_processor.hpp"

namespace lte::runtime {

struct SubframeJob;

/**
 * Work state for one user in one subframe.  The worker that dequeues
 * this from the global queue becomes the "user thread"; stage
 * counters track tasks stolen by other workers.
 */
struct UserWork
{
    UserWork(const phy::UserParams &params,
             const phy::ReceiverConfig &config,
             const phy::UserSignal *signal, SubframeJob *parent,
             std::size_t result_slot)
        : proc(params, config, signal),
          costs(phy::user_task_costs(params, config.n_antennas)),
          parent(parent), result_slot(result_slot),
          chanest_remaining(
              static_cast<std::int32_t>(proc.n_chanest_tasks())),
          demod_remaining(
              static_cast<std::int32_t>(proc.n_demod_tasks()))
    {
    }

    phy::UserProcessor proc;
    /** Analytical flop counts, for deterministic activity accounting. */
    phy::UserTaskCosts costs;
    SubframeJob *parent;
    std::size_t result_slot;
    std::atomic<std::int32_t> chanest_remaining;
    std::atomic<std::int32_t> demod_remaining;
};

/** A stealable unit of work. */
struct Task
{
    enum class Kind : std::uint8_t { kChanEst, kDemod };

    UserWork *work = nullptr;
    Kind kind = Kind::kChanEst;
    std::uint32_t index = 0;
};

/**
 * One dispatched subframe: owns the per-user work states and collects
 * their results.  Must outlive every task referencing it; the worker
 * pool signals completion through users_remaining.
 */
struct SubframeJob
{
    phy::SubframeParams params;
    std::vector<std::unique_ptr<UserWork>> users;
    std::vector<phy::UserResult> results;
    std::atomic<std::int32_t> users_remaining{0};
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_TASK_HPP

/**
 * @file
 * Runtime task plumbing: per-user work state, the stealable task
 * kinds of the continuation graph (channel estimation, the weight
 * join, demodulation, the per-codeblock tail, the per-codeblock
 * turbo decode and the reduce), and the per-subframe job that owns
 * everything (paper Sec. IV-C).
 *
 * Stage transitions are continuation-driven: each stage counter is
 * decremented by the worker that finishes a task, and the final
 * decrement enqueues the next stage instead of releasing a blocked
 * "user thread" — no worker ever waits inside a user.
 *
 * Memory model: UserWork and SubframeJob are long-lived pooled objects
 * that are re-bound every subframe via reset()/prepare().  The heavy
 * state (the UserProcessor's workspace arena) grows to its high-water
 * mark during warm-up and is reused from then on, so steady-state
 * dispatch performs zero heap allocations.
 */
#ifndef LTE_RUNTIME_TASK_HPP
#define LTE_RUNTIME_TASK_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "phy/op_model.hpp"
#include "phy/params.hpp"
#include "phy/user_processor.hpp"
#include "runtime/run_record.hpp"

namespace lte::io {
struct IqFrame;
}

namespace lte::runtime {

struct SubframeJob;

/**
 * Work state for one user in one subframe.  The worker that dequeues
 * this from the global queue seeds the chanest fan-out; from then on
 * the stage counters drive the continuation graph and any worker may
 * run any stage.
 */
struct UserWork
{
    /** Create an unbound, poolable work state; reset() before use. */
    explicit UserWork(const phy::ReceiverConfig &config)
        : proc(config), n_antennas(config.n_antennas)
    {
    }

    /** Legacy convenience: construct and bind in one step. */
    UserWork(const phy::UserParams &params,
             const phy::ReceiverConfig &config,
             const phy::UserSignal *signal, SubframeJob *parent,
             std::size_t result_slot)
        : UserWork(config)
    {
        reset(params, signal, parent, result_slot);
    }

    /**
     * (Re)bind to a user's subframe.  Allocation-free once the
     * processor's workspace has grown past its high-water mark.
     */
    void
    reset(const phy::UserParams &params, const phy::UserSignal *signal,
          SubframeJob *parent_job, std::size_t slot,
          phy::DegradeLevel level = phy::DegradeLevel::kNone)
    {
        proc.bind(params, signal);
        proc.set_degrade(level);
        refresh_costs(level);
        parent = parent_job;
        result_slot = slot;
        chanest_remaining.store(
            static_cast<std::int32_t>(proc.n_chanest_tasks()),
            std::memory_order_relaxed);
        demod_remaining.store(
            static_cast<std::int32_t>(proc.n_demod_tasks()),
            std::memory_order_relaxed);
        tail_remaining.store(
            static_cast<std::int32_t>(proc.n_tail_tasks()),
            std::memory_order_relaxed);
        decode_remaining.store(
            static_cast<std::int32_t>(proc.n_decode_tasks()),
            std::memory_order_relaxed);
    }

    /**
     * Recompute the analytical costs for the current binding (called
     * from reset() and on degrade flips, which change the weight-join
     * cost and the decode iteration budget — but never a task count,
     * so the stage counters loaded at reset() stay valid).
     */
    void
    refresh_costs(phy::DegradeLevel level)
    {
        costs = phy::user_task_costs(
            proc.params(), n_antennas,
            level != phy::DegradeLevel::kNone,
            phy::decode_model(proc.config(), level));
    }

    phy::UserProcessor proc;
    std::size_t n_antennas;
    /** Analytical flop counts, for deterministic activity accounting. */
    phy::UserTaskCosts costs{};
    SubframeJob *parent = nullptr;
    /** Serving cell of the parent job (copied at prepare() so worker
     *  threads can tag their spans without touching the job). */
    std::uint32_t cell_id = 1;
    std::size_t result_slot = 0;
    std::atomic<std::int32_t> chanest_remaining{0};
    std::atomic<std::int32_t> demod_remaining{0};
    std::atomic<std::int32_t> tail_remaining{0};
    std::atomic<std::int32_t> decode_remaining{0};
};

/**
 * A stealable unit of work: one node of the continuation graph.
 *
 *   kChanEst ×(antennas·layers) → kWeights → kDemod ×(6·layers)
 *     → kTailCb ×(codeblocks) [→ kDecodeCb ×(turbo blocks)]
 *     → kTailReduce
 *
 * The join nodes (kWeights, kTailReduce) are enqueued by whichever
 * worker performs the final decrement of the preceding stage counter.
 * The decode stage exists only in real-turbo mode; it fans the heavy
 * max-log-MAP work across the pool, one task per LTE code block.
 */
struct Task
{
    enum class Kind : std::uint8_t {
        kChanEst,
        kWeights,
        kDemod,
        kTailCb,
        kDecodeCb,
        kTailReduce
    };

    UserWork *work = nullptr;
    Kind kind = Kind::kChanEst;
    std::uint32_t index = 0;
};

/**
 * One dispatched subframe: owns the per-user work states and collects
 * their results.  Must outlive every task referencing it; the worker
 * pool signals completion through users_remaining.
 *
 * The user-work pool is grow-only: prepare() re-binds the first
 * n_users entries and leaves the rest warm.  Results are scalar
 * outcomes (no payload vectors), so collecting them never allocates.
 */
struct SubframeJob
{
    phy::SubframeParams params;
    /** Serving cell (mirrors params.cell_id; 1 for single-cell runs). */
    std::uint32_t cell_id = 1;
    /** Global admission order stamped by the multi-cell engine: the
     *  position in the shared in-flight window, used to find the
     *  globally oldest executing job across the per-cell lanes. */
    std::uint64_t admit_seq = 0;
    /** Pooled per-user work states; only the first n_users are live. */
    std::vector<std::unique_ptr<UserWork>> users;
    std::size_t n_users = 0;
    std::vector<UserOutcome> results;
    std::atomic<std::int32_t> users_remaining{0};

    /** Observability (set by the engine when obs is on): arrival and
     *  dispatch timestamps relative to the engine's clock epoch and
     *  the estimator's Eq. 4 output for this subframe (-1 if none).
     *  For lock-step engines arrival == dispatch; the streaming
     *  engine stamps arrival at the TTI tick and dispatch at pool
     *  admission, so the gap is admission-queue wait. */
    std::uint64_t t_arrival_ns = 0;
    std::uint64_t t_dispatch_ns = 0;
    double est_activity = -1.0;
    /** Shed ladder level the job runs at (see phy::DegradeLevel). */
    phy::DegradeLevel degrade_level = phy::DegradeLevel::kNone;
    /** Processed with a degraded receive chain (any ladder level). */
    bool degraded = false;
    /**
     * Sample-plane frame whose signals this job reads (null on the
     * inline-synthesis path).  The engine recycles it to the
     * transport's free ring wherever it releases the job — completion
     * reap, queue-full drop or expiry — always from the dispatch
     * thread, keeping the free ring single-producer.
     */
    io::IqFrame *io_frame = nullptr;

    /** Copied from the ReceiverConfig at prepare(): governs the
     *  real-decode sampling on the bypass shed path (set_degrade). */
    double decode_sample_rate = 0.0;
    bool real_turbo = false;

    /**
     * (Re)bind the job to a subframe: pools UserWork objects (growing
     * the pool only when this job sees more users than ever before)
     * and sizes the result array.  @p signals must outlive processing.
     */
    void
    prepare(const phy::SubframeParams &subframe,
            const std::vector<const phy::UserSignal *> &signals,
            const phy::ReceiverConfig &receiver)
    {
        params = subframe;
        cell_id = subframe.cell_id;
        n_users = subframe.users.size();
        degrade_level = phy::DegradeLevel::kNone;
        degraded = false;
        io_frame = nullptr;
        decode_sample_rate = receiver.decode_sample_rate;
        real_turbo = receiver.use_real_turbo;
        while (users.size() < n_users)
            users.push_back(std::make_unique<UserWork>(receiver));
        results.resize(n_users);
        for (std::size_t u = 0; u < n_users; ++u) {
            users[u]->reset(subframe.users[u], signals[u], this, u);
            users[u]->cell_id = subframe.cell_id;
        }
    }

    /**
     * Move every pooled user processor of this (prepared, not yet
     * submitted) job to a level of the shed ladder — the admission
     * controllers' "degrade" action.  Task counts never change, only
     * the weight algorithm and the decode iteration budget, so a flip
     * between prepare() and submit() is always safe.
     */
    void
    set_degrade(phy::DegradeLevel level)
    {
        degrade_level = level;
        degraded = level != phy::DegradeLevel::kNone;
        for (std::size_t u = 0; u < n_users; ++u) {
            phy::DegradeLevel user_level = level;
            // Bypass sampling: in real-turbo runs a deterministic
            // per-(subframe, user) hash keeps a small fraction of a
            // shed subframe's users at the reduced-iteration decode,
            // so their CRC verdicts stay real and the MAC's online
            // BLER calibration keeps getting ground truth while the
            // rest of the subframe rides the cheap bypass.
            if (level == phy::DegradeLevel::kBypass && real_turbo &&
                decode_sample_rate > 0.0 &&
                sample_hash(params.subframe_index,
                            params.users[u].id) < decode_sample_rate)
                user_level = phy::DegradeLevel::kReducedIterations;
            users[u]->proc.set_degrade(user_level);
            // Keep the accounted costs honest: the degraded chain
            // swaps the MMSE solve for per-layer MRC weights and
            // shrinks the decode budget.
            users[u]->refresh_costs(user_level);
        }
    }

    /** Uniform-in-[0,1) hash of one (subframe, user) pair (splitmix64
     *  finalizer) — the decode-sampling coin flip, reproducible across
     *  engines and runs. */
    static double
    sample_hash(std::uint64_t subframe_index, std::uint32_t user_id)
    {
        std::uint64_t z = subframe_index * 0x9e3779b97f4a7c15ull +
                          user_id + 1;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z = z ^ (z >> 31);
        return static_cast<double>(z >> 11) * 0x1.0p-53;
    }

    /** Legacy boolean shed action: straight to the full bypass. */
    void
    set_degraded(bool value)
    {
        set_degrade(value ? phy::DegradeLevel::kBypass
                          : phy::DegradeLevel::kNone);
    }
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_TASK_HPP

/**
 * @file
 * Run results and the serial-vs-parallel equivalence check of the
 * paper's Sec. IV-D: every processed subframe records per-user
 * checksums so runs on different engines (or machines) can be
 * compared bit-for-bit.
 */
#ifndef LTE_RUNTIME_RUN_RECORD_HPP
#define LTE_RUNTIME_RUN_RECORD_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace lte::runtime {

/** Outcome of one user's processing. */
struct UserOutcome
{
    std::uint32_t user_id = 0;
    std::uint64_t checksum = 0;
    bool crc_ok = false;
    /** True when crc_ok is *not* a real decode verdict: pass-through
     *  receivers CRC-check hardened bits that were never encoded, and
     *  the degrade bypass skips the decode entirely.  A CQI/HARQ
     *  consumer must model the error probability instead of trusting
     *  crc_ok.  Like decode_iterations, provenance metadata — not part
     *  of digest() or equivalent() (a degrade flip changes it without
     *  changing the payload framing). */
    bool crc_modelled = false;
    float evm_rms = 0.0f;
    /** Max-log-MAP iterations summed over the user's code blocks
     *  (real-turbo mode; 0 otherwise).  Not part of digest() or
     *  equivalent(): early termination depends on channel noise, not
     *  on scheduling, but the field is observability, not payload. */
    std::uint32_t decode_iterations = 0;
};

/** Outcome of one subframe. */
struct SubframeOutcome
{
    std::uint64_t subframe_index = 0;
    /** Serving cell (1 for single-cell runs).  Not part of digest()
     *  or equivalent(): a 1-cell record must compare bit-identical to
     *  a pre-multi-cell one, and per-cell records are compared against
     *  single-cell baselines run under a different cell id. */
    std::uint32_t cell_id = 1;
    std::vector<UserOutcome> users;
};

/** Full run record: outcomes plus aggregate execution statistics. */
struct RunRecord
{
    /** Serving cell when the record covers exactly one cell (the
     *  engines' run(); per-cell lanes of a multi-cell run); 0 marks a
     *  multi-cell aggregate. */
    std::uint32_t cell_id = 1;
    std::vector<SubframeOutcome> subframes;

    double wall_seconds = 0.0;
    double activity = 0.0;       ///< Eq. 2 over the whole run
    std::uint64_t total_ops = 0; ///< analytical flops executed
    std::uint64_t steals = 0;    ///< tasks stolen (parallel runs)

    /** Order-sensitive digest over all user checksums. */
    std::uint64_t digest() const;

    /** Total users processed. */
    std::size_t user_count() const;

    /** Fraction of processed users whose CRC passed. */
    double crc_pass_rate() const;

    /**
     * Sec. IV-D equivalence: same subframes, same users, identical
     * checksums.  On mismatch, @p why (if non-null) describes the
     * first difference.
     */
    static bool equivalent(const RunRecord &a, const RunRecord &b,
                           std::string *why = nullptr);
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_RUN_RECORD_HPP

/**
 * @file
 * The Pthreads-style work-stealing worker pool of the paper's default
 * benchmark version (Sec. IV-C), built on std::thread.
 *
 * Each worker owns a task deque.  The scheduling loop follows the
 * paper exactly: check the global user queue first (a new subframe
 * beats stealing), then the local deque, then steal from a random
 * victim.  A worker that dequeues a user seeds its channel-estimation
 * fan-out and moves on; every later stage is continuation-driven —
 * the worker that performs the final decrement of a stage counter
 * enqueues the next node (weight join, demod fan-out, per-codeblock
 * tail fan-out, CRC/EVM reduce), so no worker ever blocks inside a
 * user and a heavy user's tail spreads across the whole pool.
 *
 * Core-deactivation strategies are emulated functionally: NAP-style
 * deactivation parks workers above the active-core watermark (they
 * wake periodically to re-check, mirroring the TILEPro64 `nap`
 * semantics); IDLE-style reactive gating makes a workless worker
 * sleep for a poll period instead of spinning.
 */
#ifndef LTE_RUNTIME_WORKER_POOL_HPP
#define LTE_RUNTIME_WORKER_POOL_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mgmt/strategy.hpp"
#include "obs/trace.hpp"
#include "runtime/task.hpp"
#include "runtime/ws_deque.hpp"

namespace lte::runtime {

/** Pool configuration. */
struct WorkerPoolConfig
{
    std::size_t n_workers = 4;
    mgmt::Strategy strategy = mgmt::Strategy::kNoNap;
    /** Reactive (IDLE) sleep when no work is found. */
    std::chrono::microseconds idle_poll_period{200};
    /** Periodic wake-up of a NAP-deactivated worker. */
    std::chrono::microseconds nap_poll_period{500};
    std::uint64_t steal_seed = 1;
    /**
     * Optional span tracer (not owned; must outlive the pool).  Worker
     * w records into tracer slot w, so the tracer needs at least
     * n_workers slots.  Null disables tracing at the cost of one
     * branch per recording site.
     */
    obs::Tracer *tracer = nullptr;
};

/**
 * Aggregate activity accounting (the paper's Eq. 1/2 counters).
 *
 * Snapshots are cumulative-since-construction; an *interval* is the
 * difference of two snapshots (operator-).  Interval arithmetic is the
 * only correct way to measure a burst: resetting the underlying
 * counters while workers run would lose in-flight accumulation and
 * race on the epoch.
 */
struct ActivitySnapshot
{
    /** Sum over workers of time spent executing useful work. */
    std::chrono::nanoseconds busy{0};
    /** Wall-clock duration of the measurement interval. */
    std::chrono::nanoseconds wall{0};
    /** Analytical flops executed (deterministic activity measure). */
    std::uint64_t ops = 0;
    /** Tasks stolen from another worker's deque. */
    std::uint64_t steals = 0;

    /** busy / (wall * n_workers), the paper's "activity". */
    double activity(std::size_t n_workers) const;

    /** Interval between two cumulative snapshots (*this - earlier). */
    ActivitySnapshot operator-(const ActivitySnapshot &earlier) const;
};

class WorkerPool
{
  public:
    explicit WorkerPool(const WorkerPoolConfig &config);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Enqueue the first job->n_users user work states on the global
     * user queue.  The job must outlive its processing; completion is
     * observable via wait_idle() or job->users_remaining.  Steady-state
     * submission is allocation-free (the queue is a preallocated ring).
     */
    void submit(SubframeJob *job);

    /** Block until every submitted job has completed. */
    void wait_idle();

    /**
     * Block until @p job (previously submit()ted) has completed.
     * Unlike wait_idle() this is per-job: other subframes may still be
     * in flight — the streaming engine's replacement for the global
     * barrier.
     */
    void wait_job(const SubframeJob &job);

    /**
     * NAP control: workers with index >= n park themselves (after
     * finishing their current work item).  Clamped to [1, n_workers].
     */
    void set_active_workers(std::size_t n);

    std::size_t active_workers() const { return active_workers_.load(); }
    std::size_t n_workers() const { return workers_.size(); }

    /**
     * Cumulative activity since pool construction (wall measured from
     * the immutable construction epoch).  Subtract two of these for an
     * interval measurement.
     */
    ActivitySnapshot activity_total() const;

    /** Activity accounting since construction or the last reset
     *  (activity_total() minus the reset baseline). */
    ActivitySnapshot activity() const;

    /**
     * Start a new measurement interval.  Implemented as a baseline
     * snapshot, not a counter wipe: worker counters are monotone, so a
     * reset can neither lose in-flight accumulation nor race with
     * activity() readers on a mutable epoch.
     */
    void reset_activity();

    /** Tasks stolen from another worker's deque since construction or
     *  the last reset (diagnostics). */
    std::uint64_t steals() const;

  private:
    struct alignas(64) WorkerStats
    {
        std::atomic<std::uint64_t> busy_ns{0};
        std::atomic<std::uint64_t> ops{0};
        std::atomic<std::uint64_t> steals{0};
    };

    void worker_main(std::size_t wid);
    UserWork *try_pop_global();
    bool try_help(std::size_t wid);
    /** Seed a user's chanest fan-out into @p wid's deque (no join —
     *  the continuation graph takes over from there). */
    void start_user(std::size_t wid, UserWork *work);
    void execute_task(std::size_t wid, const Task &task);
    /** The kTailReduce node: fold the user, publish its outcome and
     *  signal job completion on the last user. */
    void finish_user(std::size_t wid, UserWork *work);
    void account(std::size_t wid,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end,
                 std::uint64_t ops);
    /** Record a span on worker @p wid if tracing is on (one branch). */
    void trace(std::size_t wid, obs::SpanKind kind,
               std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end,
               std::uint64_t arg);

    WorkerPoolConfig config_;

    std::vector<std::unique_ptr<WsDeque<Task>>> deques_;
    std::vector<std::unique_ptr<WorkerStats>> stats_;
    std::vector<std::thread> workers_;

    /** Global user queue (FIFO via steal_top); preallocated ring. */
    WsDeque<UserWork *> global_queue_;

    std::mutex done_mutex_;
    std::condition_variable done_cv_;
    std::atomic<std::int64_t> jobs_outstanding_{0};

    std::atomic<std::size_t> active_workers_;
    std::atomic<bool> stop_{false};
    /** Construction epoch; immutable so activity_total() is race-free. */
    const std::chrono::steady_clock::time_point epoch_;

    /** Baseline snapshot set by reset_activity(). */
    mutable std::mutex baseline_mutex_;
    ActivitySnapshot baseline_;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_WORKER_POOL_HPP

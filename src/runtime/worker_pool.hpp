/**
 * @file
 * The Pthreads-style work-stealing worker pool of the paper's default
 * benchmark version (Sec. IV-C), built on std::thread.
 *
 * Each worker owns a task deque.  The scheduling loop follows the
 * paper exactly: check the global user queue first (a new subframe
 * beats stealing), then the local deque, then steal from a random
 * victim.  A worker that dequeues a user becomes that user's "user
 * thread": it creates the channel-estimation tasks, helps drain them,
 * performs the combiner-weight join, creates the demodulation tasks,
 * and runs the sequential tail.
 *
 * Core-deactivation strategies are emulated functionally: NAP-style
 * deactivation parks workers above the active-core watermark (they
 * wake periodically to re-check, mirroring the TILEPro64 `nap`
 * semantics); IDLE-style reactive gating makes a workless worker
 * sleep for a poll period instead of spinning.
 */
#ifndef LTE_RUNTIME_WORKER_POOL_HPP
#define LTE_RUNTIME_WORKER_POOL_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mgmt/strategy.hpp"
#include "obs/trace.hpp"
#include "runtime/task.hpp"
#include "runtime/ws_deque.hpp"

namespace lte::runtime {

/** Pool configuration. */
struct WorkerPoolConfig
{
    std::size_t n_workers = 4;
    mgmt::Strategy strategy = mgmt::Strategy::kNoNap;
    /** Reactive (IDLE) sleep when no work is found. */
    std::chrono::microseconds idle_poll_period{200};
    /** Periodic wake-up of a NAP-deactivated worker. */
    std::chrono::microseconds nap_poll_period{500};
    std::uint64_t steal_seed = 1;
    /**
     * Optional span tracer (not owned; must outlive the pool).  Worker
     * w records into tracer slot w, so the tracer needs at least
     * n_workers slots.  Null disables tracing at the cost of one
     * branch per recording site.
     */
    obs::Tracer *tracer = nullptr;
};

/** Aggregate activity accounting (the paper's Eq. 1/2 counters). */
struct ActivitySnapshot
{
    /** Sum over workers of time spent executing useful work. */
    std::chrono::nanoseconds busy{0};
    /** Wall-clock duration of the measurement interval. */
    std::chrono::nanoseconds wall{0};
    /** Analytical flops executed (deterministic activity measure). */
    std::uint64_t ops = 0;

    /** busy / (wall * n_workers), the paper's "activity". */
    double activity(std::size_t n_workers) const;
};

class WorkerPool
{
  public:
    explicit WorkerPool(const WorkerPoolConfig &config);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Enqueue the first job->n_users user work states on the global
     * user queue.  The job must outlive its processing; completion is
     * observable via wait_idle() or job->users_remaining.  Steady-state
     * submission is allocation-free (the queue is a preallocated ring).
     */
    void submit(SubframeJob *job);

    /** Block until every submitted job has completed. */
    void wait_idle();

    /**
     * NAP control: workers with index >= n park themselves (after
     * finishing their current work item).  Clamped to [1, n_workers].
     */
    void set_active_workers(std::size_t n);

    std::size_t active_workers() const { return active_workers_.load(); }
    std::size_t n_workers() const { return workers_.size(); }

    /** Activity accounting since construction or the last reset. */
    ActivitySnapshot activity() const;
    void reset_activity();

    /** Total tasks stolen from another worker's deque (diagnostics). */
    std::uint64_t steals() const;

  private:
    struct alignas(64) WorkerStats
    {
        std::atomic<std::uint64_t> busy_ns{0};
        std::atomic<std::uint64_t> ops{0};
        std::atomic<std::uint64_t> steals{0};
    };

    void worker_main(std::size_t wid);
    UserWork *try_pop_global();
    bool try_help(std::size_t wid);
    void run_user(std::size_t wid, UserWork *work);
    void execute_task(std::size_t wid, const Task &task);
    void finish_user(std::size_t wid, UserWork *work);
    void account(std::size_t wid,
                 std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end,
                 std::uint64_t ops);
    /** Record a span on worker @p wid if tracing is on (one branch). */
    void trace(std::size_t wid, obs::SpanKind kind,
               std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end,
               std::uint64_t arg);

    WorkerPoolConfig config_;

    std::vector<std::unique_ptr<WsDeque<Task>>> deques_;
    std::vector<std::unique_ptr<WorkerStats>> stats_;
    std::vector<std::thread> workers_;

    /** Global user queue (FIFO via steal_top); preallocated ring. */
    WsDeque<UserWork *> global_queue_;

    std::mutex done_mutex_;
    std::condition_variable done_cv_;
    std::atomic<std::int64_t> jobs_outstanding_{0};

    std::atomic<std::size_t> active_workers_;
    std::atomic<bool> stop_{false};
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_WORKER_POOL_HPP

/**
 * @file
 * Shared admission-plane helpers for the subframe engines.
 *
 * Every engine that dispatches SubframeJobs — lock-step work-stealing,
 * single-cell streaming, and each cell lane of the multi-cell engine —
 * performs the same three admission-plane chores: checking whether a
 * job's continuation graph has fully drained (job_done), harvesting a
 * completed job's scalar outcomes (collect), and recycling jobs
 * through a grow-only pool so steady-state admission never allocates
 * (JobPool).  They also share the op-model activity measure of a
 * subframe (subframe_ops).  Before this header each engine carried a
 * private copy of all four; the copies had already drifted apart once
 * (the lock-step reap loop missed the observability hook the
 * streaming engine added), so the admission core now lives here and
 * the engines keep only their genuinely different policy code: what
 * to do when the ring is full, and in which order lanes drain.
 */
#ifndef LTE_RUNTIME_ADMISSION_HPP
#define LTE_RUNTIME_ADMISSION_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "phy/op_model.hpp"
#include "phy/params.hpp"
#include "runtime/run_record.hpp"
#include "runtime/task.hpp"

namespace lte::runtime::admission {

/**
 * Analytical flops of a subframe (op-model activity measure).
 * @p decode prices the real-turbo decode stage so decode-heavy
 * subframes are admitted at their true cost; the default keeps the
 * historical pass-through charge.
 */
std::uint64_t subframe_ops(const phy::SubframeParams &params,
                           std::size_t n_antennas,
                           const phy::DecodeModel &decode = {});

/**
 * True once the job's last user finished its tail reduce.  acquire
 * pairs with the release decrement in WorkerPool::finish_user, so a
 * true return also publishes every worker's writes to the results.
 */
inline bool
job_done(const SubframeJob &job)
{
    return job.users_remaining.load(std::memory_order_acquire) <= 0;
}

/** Collect the outcome of a completed job. */
SubframeOutcome collect(const SubframeJob &job);

/**
 * Grow-only pool of SubframeJobs.  acquire() returns a warm job (its
 * UserWork pool, result array and workspace arenas keep their
 * high-water-mark capacity from earlier subframes) and only allocates
 * while the pool is still below the engine's peak concurrency —
 * admission_queue + max_in_flight + 1 jobs at most — after which the
 * steady state recycles without touching the heap.
 */
class JobPool
{
  public:
    /** A free job, or a newly grown one while below the peak. */
    SubframeJob *
    acquire()
    {
        if (free_.empty()) {
            jobs_.push_back(std::make_unique<SubframeJob>());
            return jobs_.back().get();
        }
        SubframeJob *job = free_.back();
        free_.pop_back();
        return job;
    }

    /** Return a job (completed or shed) for reuse. */
    void
    release(SubframeJob *job)
    {
        free_.push_back(job);
    }

    /** Jobs ever created (the concurrency high-water mark). */
    std::size_t size() const { return jobs_.size(); }

  private:
    std::vector<std::unique_ptr<SubframeJob>> jobs_;
    std::vector<SubframeJob *> free_;
};

} // namespace lte::runtime::admission

#endif // LTE_RUNTIME_ADMISSION_HPP

#include "runtime/run_record.hpp"

#include <sstream>

namespace lte::runtime {

std::uint64_t
RunRecord::digest() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (i * 8)) & 0xFF;
            hash *= 0x100000001b3ULL;
        }
    };
    for (const auto &sf : subframes) {
        mix(sf.subframe_index);
        for (const auto &u : sf.users) {
            mix(u.user_id);
            mix(u.checksum);
        }
    }
    return hash;
}

std::size_t
RunRecord::user_count() const
{
    std::size_t n = 0;
    for (const auto &sf : subframes)
        n += sf.users.size();
    return n;
}

double
RunRecord::crc_pass_rate() const
{
    std::size_t total = 0, passed = 0;
    for (const auto &sf : subframes) {
        for (const auto &u : sf.users) {
            ++total;
            passed += u.crc_ok ? 1 : 0;
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(passed) /
                            static_cast<double>(total);
}

bool
RunRecord::equivalent(const RunRecord &a, const RunRecord &b,
                      std::string *why)
{
    auto fail = [why](const std::string &message) {
        if (why != nullptr)
            *why = message;
        return false;
    };

    if (a.subframes.size() != b.subframes.size())
        return fail("subframe counts differ");
    for (std::size_t i = 0; i < a.subframes.size(); ++i) {
        const auto &sa = a.subframes[i];
        const auto &sb = b.subframes[i];
        if (sa.subframe_index != sb.subframe_index)
            return fail("subframe index mismatch at position " +
                        std::to_string(i));
        if (sa.users.size() != sb.users.size())
            return fail("user count mismatch in subframe " +
                        std::to_string(sa.subframe_index));
        for (std::size_t u = 0; u < sa.users.size(); ++u) {
            if (sa.users[u].user_id != sb.users[u].user_id)
                return fail("user id mismatch in subframe " +
                            std::to_string(sa.subframe_index));
            if (sa.users[u].checksum != sb.users[u].checksum) {
                std::ostringstream os;
                os << "checksum mismatch: subframe "
                   << sa.subframe_index << " user "
                   << sa.users[u].user_id;
                return fail(os.str());
            }
        }
    }
    return true;
}

} // namespace lte::runtime

/**
 * @file
 * The parallel LTE Uplink Receiver PHY benchmark driver: the
 * "maintenance thread" role of the paper's Sec. IV-B.  It asks the
 * parameter model for each subframe's users, fetches input data from
 * the pool, dispatches the users onto the worker pool's global queue
 * (optionally paced every DELTA milliseconds), applies estimation-
 * guided core deactivation when configured, and collects results.
 */
#ifndef LTE_RUNTIME_BENCHMARK_HPP
#define LTE_RUNTIME_BENCHMARK_HPP

#include <memory>
#include <optional>

#include "mgmt/estimator.hpp"
#include "runtime/input_generator.hpp"
#include "runtime/run_record.hpp"
#include "runtime/worker_pool.hpp"
#include "workload/parameter_model.hpp"

namespace lte::runtime {

struct UplinkBenchmarkConfig
{
    WorkerPoolConfig pool;
    phy::ReceiverConfig receiver;
    InputGeneratorConfig input;
    /** Maximum subframes concurrently in flight (paper: two to
     *  three). */
    std::size_t max_in_flight = 3;
    /** Dispatch period in milliseconds; 0 = free-running. */
    double delta_ms = 0.0;
    /** Over-provisioning margin for Eq. 5. */
    std::uint32_t core_margin = 2;

    void validate() const;
};

class UplinkBenchmark
{
  public:
    explicit UplinkBenchmark(const UplinkBenchmarkConfig &config);

    /**
     * Provide the estimator used for proactive (NAP / NAP+IDLE) core
     * deactivation; without one, all workers stay active.
     */
    void set_estimator(std::optional<mgmt::WorkloadEstimator> estimator);

    /**
     * Run @p n_subframes drawn from @p model and return the record.
     * The model is consumed from its current state.
     */
    RunRecord run(workload::ParameterModel &model,
                  std::size_t n_subframes);

    const UplinkBenchmarkConfig &config() const { return config_; }
    WorkerPool &pool() { return *pool_; }
    InputGenerator &input() { return input_; }

  private:
    UplinkBenchmarkConfig config_;
    InputGenerator input_;
    std::unique_ptr<WorkerPool> pool_;
    std::optional<mgmt::WorkloadEstimator> estimator_;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_BENCHMARK_HPP

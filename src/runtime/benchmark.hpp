/**
 * @file
 * Backwards-compatible names for the parallel benchmark driver, which
 * now lives in runtime/engine.hpp as WorkStealingEngine.  New code
 * should include "runtime/engine.hpp" and use make_engine().
 */
#ifndef LTE_RUNTIME_BENCHMARK_HPP
#define LTE_RUNTIME_BENCHMARK_HPP

#include "runtime/engine.hpp"

namespace lte::runtime {

using UplinkBenchmarkConfig = EngineConfig;
using UplinkBenchmark = WorkStealingEngine;

} // namespace lte::runtime

#endif // LTE_RUNTIME_BENCHMARK_HPP

#include "runtime/benchmark.hpp"

#include <chrono>
#include <deque>
#include <thread>

#include "common/check.hpp"

namespace lte::runtime {

namespace {

/** Collect the outcome of a completed job. */
SubframeOutcome
collect(const SubframeJob &job)
{
    SubframeOutcome outcome;
    outcome.subframe_index = job.params.subframe_index;
    outcome.users.reserve(job.results.size());
    for (const auto &result : job.results) {
        UserOutcome u;
        u.user_id = result.user_id;
        u.checksum = result.checksum;
        u.crc_ok = result.crc_ok;
        u.evm_rms = result.evm_rms;
        outcome.users.push_back(u);
    }
    return outcome;
}

bool
job_done(const SubframeJob &job)
{
    return job.users_remaining.load(std::memory_order_acquire) <= 0;
}

} // namespace

void
UplinkBenchmarkConfig::validate() const
{
    LTE_CHECK(max_in_flight >= 1, "need at least one subframe in flight");
    LTE_CHECK(delta_ms >= 0.0, "delta must be non-negative");
    receiver.validate();
    input.validate();
}

UplinkBenchmark::UplinkBenchmark(const UplinkBenchmarkConfig &config)
    : config_(config), input_(config.input)
{
    config_.validate();
    pool_ = std::make_unique<WorkerPool>(config_.pool);
}

void
UplinkBenchmark::set_estimator(
    std::optional<mgmt::WorkloadEstimator> estimator)
{
    estimator_ = std::move(estimator);
}

RunRecord
UplinkBenchmark::run(workload::ParameterModel &model,
                     std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;

    RunRecord record;
    record.subframes.reserve(n_subframes);

    std::deque<std::unique_ptr<SubframeJob>> in_flight;
    pool_->reset_activity();
    const auto run_start = clock::now();
    auto next_dispatch = run_start;
    const auto delta =
        std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double, std::milli>(config_.delta_ms));

    const bool proactive =
        estimator_.has_value() &&
        (config_.pool.strategy == mgmt::Strategy::kNap ||
         config_.pool.strategy == mgmt::Strategy::kNapIdle ||
         config_.pool.strategy == mgmt::Strategy::kPowerGating);

    for (std::size_t i = 0; i < n_subframes; ++i) {
        // Flow control: keep at most max_in_flight subframes open.
        while (in_flight.size() >= config_.max_in_flight) {
            if (job_done(*in_flight.front())) {
                record.subframes.push_back(collect(*in_flight.front()));
                in_flight.pop_front();
            } else {
                std::this_thread::yield();
            }
        }

        phy::SubframeParams params = model.next_subframe();
        params.validate();

        // Proactive core management (Eq. 5) from the *next* subframe's
        // known input parameters.
        if (proactive) {
            const double estimate =
                estimator_->estimate_subframe(params);
            pool_->set_active_workers(estimator_->active_cores(
                estimate,
                static_cast<std::uint32_t>(pool_->n_workers()),
                config_.core_margin));
        }

        auto job = std::make_unique<SubframeJob>();
        job->params = params;
        const auto signals = input_.signals_for(params);
        job->results.resize(params.users.size());
        job->users.reserve(params.users.size());
        for (std::size_t u = 0; u < params.users.size(); ++u) {
            job->users.push_back(std::make_unique<UserWork>(
                params.users[u], config_.receiver, signals[u],
                job.get(), u));
        }

        // DELTA pacing (paper Sec. IV-B.3).
        if (config_.delta_ms > 0.0) {
            std::this_thread::sleep_until(next_dispatch);
            next_dispatch += delta;
        }

        if (job->users.empty()) {
            record.subframes.push_back(collect(*job));
        } else {
            pool_->submit(job.get());
            in_flight.push_back(std::move(job));
        }
    }

    // Drain the tail.
    pool_->wait_idle();
    while (!in_flight.empty()) {
        LTE_ASSERT(job_done(*in_flight.front()),
                   "pool idle but job incomplete");
        record.subframes.push_back(collect(*in_flight.front()));
        in_flight.pop_front();
    }

    const auto snap = pool_->activity();
    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - run_start).count();
    record.activity = snap.activity(pool_->n_workers());
    record.total_ops = snap.ops;
    record.steals = pool_->steals();
    return record;
}

} // namespace lte::runtime

/**
 * @file
 * Runtime-side SampleSource adapters: the glue between the io sample
 * plane (which knows nothing about parameter models or input pools)
 * and the engines' input machinery.
 *
 * GeneratorSampleSource runs the engine's own InputGenerator on the
 * producer thread, drawing subframes from the parameter model in
 * exactly the order the inline path would — so an offloaded
 * zero-jitter lossless run delivers the identical (params, signals)
 * sequence and reproduces the inline digests bit for bit.  The signal
 * pointers it publishes reference the generator's long-lived pools:
 * the handoff to SubframeJob::prepare is zero-copy.
 */
#ifndef LTE_RUNTIME_SAMPLE_SOURCE_HPP
#define LTE_RUNTIME_SAMPLE_SOURCE_HPP

#include <cstdint>

#include "io/sample_plane.hpp"
#include "runtime/input_generator.hpp"
#include "workload/parameter_model.hpp"

namespace lte::runtime {

class GeneratorSampleSource : public io::SampleSource
{
  public:
    /**
     * @param cell_id  when non-zero, stamped over the model's
     *        params.cell_id before validation — the multi-cell
     *        engine's per-lane override; 0 keeps the model's value
     *        (single-cell streaming behaviour).
     *
     * Both references must outlive the source; they are only ever
     * touched from the producer thread while a feed is running.
     */
    GeneratorSampleSource(InputGenerator &input,
                          workload::ParameterModel &model,
                          std::uint32_t cell_id = 0)
        : input_(input), model_(model), cell_id_(cell_id)
    {
    }

    bool
    produce(io::IqFrame &frame) override
    {
        frame.params = model_.next_subframe();
        if (cell_id_ != 0)
            frame.params.cell_id = cell_id_;
        frame.params.validate();
        input_.signals_for(frame.params, frame.signals);
        return true;
    }

    void
    skip() override
    {
        // A lost tick still consumes its model draw, so delivered
        // frames keep the same stream positions the inline path
        // would have given them.
        (void)model_.next_subframe();
    }

  private:
    InputGenerator &input_;
    workload::ParameterModel &model_;
    std::uint32_t cell_id_;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_SAMPLE_SOURCE_HPP

#include "runtime/admission.hpp"

#include "phy/op_model.hpp"

namespace lte::runtime::admission {

std::uint64_t
subframe_ops(const phy::SubframeParams &params, std::size_t n_antennas,
             const phy::DecodeModel &decode)
{
    std::uint64_t ops = 0;
    for (const auto &user : params.users)
        ops += phy::user_task_costs(user, n_antennas, false, decode)
                   .total();
    return ops;
}

SubframeOutcome
collect(const SubframeJob &job)
{
    SubframeOutcome outcome;
    outcome.subframe_index = job.params.subframe_index;
    outcome.cell_id = job.cell_id;
    outcome.users.assign(job.results.begin(),
                         job.results.begin() +
                             static_cast<std::ptrdiff_t>(job.n_users));
    return outcome;
}

} // namespace lte::runtime::admission

#include "runtime/serial_engine.hpp"

#include <chrono>

#include "phy/op_model.hpp"
#include "phy/user_processor.hpp"

namespace lte::runtime {

SerialEngine::SerialEngine(const phy::ReceiverConfig &receiver,
                           const InputGeneratorConfig &input)
    : receiver_(receiver), input_(input)
{
    receiver_.validate();
}

RunRecord
SerialEngine::run(workload::ParameterModel &model,
                  std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;
    RunRecord record;
    record.subframes.reserve(n_subframes);
    const auto start = clock::now();

    for (std::size_t i = 0; i < n_subframes; ++i) {
        phy::SubframeParams params = model.next_subframe();
        params.validate();
        const auto signals = input_.signals_for(params);

        SubframeOutcome outcome;
        outcome.subframe_index = params.subframe_index;
        for (std::size_t u = 0; u < params.users.size(); ++u) {
            phy::UserProcessor proc(params.users[u], receiver_,
                                    signals[u]);
            const auto result = proc.process_all();
            UserOutcome uo;
            uo.user_id = result.user_id;
            uo.checksum = result.checksum;
            uo.crc_ok = result.crc_ok;
            uo.evm_rms = result.evm_rms;
            outcome.users.push_back(uo);
            record.total_ops +=
                phy::user_task_costs(params.users[u],
                                     receiver_.n_antennas)
                    .total();
        }
        record.subframes.push_back(std::move(outcome));
    }

    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    record.activity = 1.0; // a serial run is busy by definition
    return record;
}

} // namespace lte::runtime

#include "runtime/engine.hpp"

#include <chrono>
#include <deque>
#include <thread>

#include "common/check.hpp"
#include "phy/kernel_scratch.hpp"
#include "phy/op_model.hpp"
#include "runtime/feedback.hpp"

namespace lte::runtime {

const char *
engine_kind_name(EngineKind kind)
{
    switch (kind) {
      case EngineKind::kSerial:
        return "serial";
      case EngineKind::kWorkStealing:
        return "work-stealing";
      case EngineKind::kStreaming:
        return "streaming";
    }
    return "unknown";
}

const char *
shed_policy_name(ShedPolicy policy)
{
    switch (policy) {
      case ShedPolicy::kDropNewest:
        return "drop-newest";
      case ShedPolicy::kDropOldest:
        return "drop-oldest";
      case ShedPolicy::kDegrade:
        return "degrade";
    }
    return "unknown";
}

void
EngineConfig::validate() const
{
    LTE_CHECK(max_in_flight >= 1, "need at least one subframe in flight");
    LTE_CHECK(delta_ms >= 0.0, "delta must be non-negative");
    LTE_CHECK(deadline_ms >= 0.0, "deadline must be non-negative");
    LTE_CHECK(admission_queue >= 1, "need at least one admission slot");
    LTE_CHECK(degrade_bypass_fraction >= 0.5 &&
                  degrade_bypass_fraction <= 1.0,
              "bypass fraction must be in [0.5, 1]");
    LTE_CHECK(receiver.cell_id == input.cell_id,
              "receiver and input generator must serve the same cell");
    receiver.validate();
    input.validate();
    obs.validate();
    io.validate();
}

using admission::collect;
using admission::job_done;
using admission::subframe_ops;

std::unique_ptr<Engine>
make_engine(const EngineConfig &config)
{
    switch (config.kind) {
      case EngineKind::kSerial:
        return std::make_unique<SerialEngine>(config);
      case EngineKind::kWorkStealing:
        return std::make_unique<WorkStealingEngine>(config);
      case EngineKind::kStreaming:
        return std::make_unique<StreamingEngine>(config);
    }
    LTE_CHECK(false, "unknown engine kind");
    return nullptr;
}

// ------------------------------------------------------------ serial

SerialEngine::SerialEngine(const EngineConfig &config)
    : config_(config), input_(config.input), proc_(config.receiver)
{
    config_.validate();
    config_.kind = EngineKind::kSerial;
    init_obs();
    // The serial engine runs kernels on the caller's thread.
    phy::warm_kernel_scratch();
}

void
SerialEngine::init_obs()
{
    if (config_.obs.enabled) {
        tracer_ = std::make_unique<obs::Tracer>(1, config_.obs);
        series_ = std::make_unique<obs::SubframeSeries>(
            config_.obs.series_capacity);
    }
    // Metrics are independent of tracing: engine.deadline_misses and
    // friends must count whenever metrics are on, not only when the
    // span rings happen to be allocated.
    if (config_.obs.enabled || config_.obs.metrics_enabled) {
        metrics_ = std::make_unique<obs::MetricsRegistry>();
        // Cache the hot-path counters so steady-state updates never
        // take the registry lock or allocate.
        subframes_counter_ = &metrics_->counter("engine.subframes");
        users_counter_ = &metrics_->counter("engine.users");
        deadline_miss_counter_ =
            &metrics_->counter("engine.deadline_misses");
    }
}

std::uint64_t
SerialEngine::obs_now_ns() const
{
    if (tracer_)
        return tracer_->now_ns();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

SerialEngine::SerialEngine(const phy::ReceiverConfig &receiver,
                           const InputGeneratorConfig &input)
    : SerialEngine([&] {
          EngineConfig cfg;
          cfg.kind = EngineKind::kSerial;
          cfg.receiver = receiver;
          cfg.input = input;
          return cfg;
      }())
{
}

const SubframeOutcome &
SerialEngine::process_subframe(const phy::SubframeParams &params)
{
    params.validate();
    input_.signals_for(params, signals_);

    const bool observing = tracer_ || metrics_;
    const std::uint64_t t_dispatch = observing ? obs_now_ns() : 0;

    outcome_.subframe_index = params.subframe_index;
    outcome_.cell_id = params.cell_id;
    outcome_.users.resize(params.users.size());
    for (std::size_t u = 0; u < params.users.size(); ++u) {
        const std::uint64_t t_user = tracer_ ? tracer_->now_ns() : 0;
        proc_.bind(params.users[u], signals_[u]);
        const phy::UserResult &result = proc_.process_all();
        UserOutcome &out = outcome_.users[u];
        out.user_id = result.user_id;
        out.checksum = result.checksum;
        out.crc_ok = result.crc_ok;
        out.crc_modelled = result.crc_modelled;
        out.evm_rms = result.evm_rms;
        out.decode_iterations = result.decode_iterations;
        if (tracer_) {
            tracer_->record(0, obs::SpanKind::kUser, t_user,
                            tracer_->now_ns(), result.user_id);
        }
    }

    if (observing) {
        const std::uint64_t t_complete = obs_now_ns();
        obs::SubframeSample sample;
        sample.subframe_index = params.subframe_index;
        sample.cell_id = params.cell_id;
        sample.t_dispatch_ns = t_dispatch;
        sample.t_complete_ns = t_complete;
        sample.n_users = static_cast<std::uint32_t>(params.users.size());
        sample.active_workers = 1;
        sample.ops =
            subframe_ops(params, config_.receiver.n_antennas,
                         phy::decode_model(config_.receiver));
        if (tracer_) {
            tracer_->record(0, obs::SpanKind::kSubframe, t_dispatch,
                            t_complete, params.subframe_index);
            series_->push(sample);
        }
        subframes_counter_->add();
        users_counter_->add(params.users.size());
        if (sample.latency_ms() > config_.obs.deadline_ms)
            deadline_miss_counter_->add();
    }
    if (config_.feedback) {
        config_.feedback->on_subframe_complete(outcome_,
                                               phy::DegradeLevel::kNone);
    }
    return outcome_;
}

RunRecord
SerialEngine::run(workload::ParameterModel &model,
                  std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;
    RunRecord record;
    record.cell_id = config_.receiver.cell_id;
    record.subframes.reserve(n_subframes);
    const auto start = clock::now();

    for (std::size_t i = 0; i < n_subframes; ++i) {
        const phy::SubframeParams params = model.next_subframe();
        record.subframes.push_back(process_subframe(params));
        for (const auto &user : params.users) {
            record.total_ops +=
                phy::user_task_costs(user, config_.receiver.n_antennas)
                    .total();
        }
    }

    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    record.activity = 1.0; // a serial run is busy by definition
    return record;
}

// ----------------------------------------------------- work stealing

WorkStealingEngine::WorkStealingEngine(const EngineConfig &config)
    : config_(config), input_(config.input)
{
    config_.validate();
    config_.kind = EngineKind::kWorkStealing;
    if (config_.obs.enabled) {
        // One ring per worker plus the dispatch thread, preallocated
        // before the pool starts so recording never allocates.
        tracer_ = std::make_unique<obs::Tracer>(
            config_.pool.n_workers + 1, config_.obs);
        series_ = std::make_unique<obs::SubframeSeries>(
            config_.obs.series_capacity);
        config_.pool.tracer = tracer_.get();
    }
    // Metrics are independent of tracing (see SerialEngine::init_obs).
    if (config_.obs.enabled || config_.obs.metrics_enabled) {
        metrics_ = std::make_unique<obs::MetricsRegistry>();
        subframes_counter_ = &metrics_->counter("engine.subframes");
        users_counter_ = &metrics_->counter("engine.users");
        deadline_miss_counter_ =
            &metrics_->counter("engine.deadline_misses");
    }
    pool_ = std::make_unique<WorkerPool>(config_.pool);
}

std::uint64_t
WorkStealingEngine::obs_now_ns() const
{
    if (tracer_)
        return tracer_->now_ns();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
WorkStealingEngine::set_estimator(
    std::optional<mgmt::WorkloadEstimator> estimator)
{
    estimator_ = std::move(estimator);
    if (estimator_) {
        estimator_->set_decode_pricing(
            mgmt::decode_pricing_for(config_.receiver));
    }
}

double
WorkStealingEngine::apply_estimator(const phy::SubframeParams &params)
{
    // Proactive core management (Eq. 5) from the *next* subframe's
    // known input parameters.
    const bool proactive =
        estimator_.has_value() &&
        (config_.pool.strategy == mgmt::Strategy::kNap ||
         config_.pool.strategy == mgmt::Strategy::kNapIdle ||
         config_.pool.strategy == mgmt::Strategy::kPowerGating);
    if (!proactive)
        return -1.0;
    const double estimate = estimator_->estimate_subframe(params);
    pool_->set_active_workers(estimator_->active_cores(
        estimate, static_cast<std::uint32_t>(pool_->n_workers()),
        config_.core_margin));
    return estimate;
}

void
WorkStealingEngine::observe_completion(const SubframeJob &job,
                                       std::uint64_t t_complete_ns)
{
    obs::SubframeSample sample;
    sample.subframe_index = job.params.subframe_index;
    sample.cell_id = job.cell_id;
    sample.t_dispatch_ns = job.t_dispatch_ns;
    sample.t_complete_ns = t_complete_ns;
    sample.n_users = static_cast<std::uint32_t>(job.n_users);
    sample.active_workers =
        static_cast<std::uint32_t>(pool_->active_workers());
    sample.est_activity = job.est_activity;
    sample.ops = subframe_ops(
        job.params, config_.receiver.n_antennas,
        phy::decode_model(config_.receiver, job.degrade_level));
    if (tracer_) {
        tracer_->record(dispatch_slot(), obs::SpanKind::kSubframe,
                        job.t_dispatch_ns, t_complete_ns,
                        job.params.subframe_index);
        series_->push(sample);
    }
    if (metrics_) {
        subframes_counter_->add();
        users_counter_->add(job.n_users);
        if (sample.latency_ms() > config_.obs.deadline_ms)
            deadline_miss_counter_->add();
    }
}

const SubframeOutcome &
WorkStealingEngine::process_subframe(const phy::SubframeParams &params)
{
    params.validate();
    input_.signals_for(params, signals_);
    const double estimate = apply_estimator(params);

    SubframeJob *job = job_pool_.acquire();
    job->prepare(params, signals_, config_.receiver);
    const bool observing = tracer_ || metrics_;
    if (observing) {
        job->t_dispatch_ns = obs_now_ns();
        job->t_arrival_ns = job->t_dispatch_ns;
        job->est_activity = estimate;
        if (tracer_) {
            tracer_->record_instant(dispatch_slot(),
                                    obs::SpanKind::kDispatch,
                                    job->t_dispatch_ns,
                                    params.subframe_index);
        }
    }
    if (job->n_users > 0) {
        pool_->submit(job);
        pool_->wait_idle();
    }
    if (observing)
        observe_completion(*job, obs_now_ns());

    outcome_.subframe_index = params.subframe_index;
    outcome_.cell_id = params.cell_id;
    outcome_.users = job->results; // capacity reuse, scalar payload
    const phy::DegradeLevel level = job->degrade_level;
    job_pool_.release(job);
    if (config_.feedback)
        config_.feedback->on_subframe_complete(outcome_, level);
    return outcome_;
}

RunRecord
WorkStealingEngine::run(workload::ParameterModel &model,
                        std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;

    RunRecord record;
    record.cell_id = config_.receiver.cell_id;
    record.subframes.reserve(n_subframes);

    std::deque<SubframeJob *> in_flight;
    pool_->reset_activity();
    const auto run_start = clock::now();
    auto next_dispatch = run_start;
    const auto delta =
        std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double, std::milli>(config_.delta_ms));

    const bool observing = tracer_ || metrics_;
    for (std::size_t i = 0; i < n_subframes; ++i) {
        // Flow control: keep at most max_in_flight subframes open.
        while (in_flight.size() >= config_.max_in_flight) {
            if (job_done(*in_flight.front())) {
                if (observing)
                    observe_completion(*in_flight.front(),
                                       obs_now_ns());
                record.subframes.push_back(collect(*in_flight.front()));
                if (config_.feedback) {
                    config_.feedback->on_subframe_complete(
                        record.subframes.back(),
                        in_flight.front()->degrade_level);
                }
                job_pool_.release(in_flight.front());
                in_flight.pop_front();
            } else {
                std::this_thread::yield();
            }
        }

        const phy::SubframeParams params = model.next_subframe();
        params.validate();
        const double estimate = apply_estimator(params);

        input_.signals_for(params, signals_);
        SubframeJob *job = job_pool_.acquire();
        job->prepare(params, signals_, config_.receiver);

        // DELTA pacing (paper Sec. IV-B.3).
        if (config_.delta_ms > 0.0) {
            std::this_thread::sleep_until(next_dispatch);
            next_dispatch += delta;
        }

        if (observing) {
            job->t_dispatch_ns = obs_now_ns();
            job->t_arrival_ns = job->t_dispatch_ns;
            job->est_activity = estimate;
            if (tracer_) {
                tracer_->record_instant(dispatch_slot(),
                                        obs::SpanKind::kDispatch,
                                        job->t_dispatch_ns,
                                        params.subframe_index);
            }
        }

        if (job->n_users == 0) {
            if (observing)
                observe_completion(*job, job->t_dispatch_ns);
            record.subframes.push_back(collect(*job));
            if (config_.feedback) {
                config_.feedback->on_subframe_complete(
                    record.subframes.back(), job->degrade_level);
            }
            job_pool_.release(job);
        } else {
            pool_->submit(job);
            in_flight.push_back(job);
        }
    }

    // Drain the tail.
    pool_->wait_idle();
    while (!in_flight.empty()) {
        LTE_ASSERT(job_done(*in_flight.front()),
                   "pool idle but job incomplete");
        if (observing)
            observe_completion(*in_flight.front(), obs_now_ns());
        record.subframes.push_back(collect(*in_flight.front()));
        if (config_.feedback) {
            config_.feedback->on_subframe_complete(
                record.subframes.back(),
                in_flight.front()->degrade_level);
        }
        job_pool_.release(in_flight.front());
        in_flight.pop_front();
    }

    const auto snap = pool_->activity();
    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - run_start).count();
    record.activity = snap.activity(pool_->n_workers());
    record.total_ops = snap.ops;
    record.steals = pool_->steals();
    if (metrics_) {
        // Run-level aggregates; cheap registry lookups off the hot path.
        metrics_->gauge("engine.activity").set(record.activity);
        metrics_->gauge("engine.wall_seconds").set(record.wall_seconds);
        metrics_->counter("engine.steals").add(record.steals);
        if (tracer_) {
            metrics_->gauge("engine.trace_dropped")
                .set(static_cast<double>(tracer_->total_dropped()));
        }
    }
    return record;
}

} // namespace lte::runtime

#include "runtime/engine.hpp"

#include <chrono>
#include <deque>
#include <thread>

#include "common/check.hpp"
#include "phy/kernel_scratch.hpp"
#include "phy/op_model.hpp"

namespace lte::runtime {

const char *
engine_kind_name(EngineKind kind)
{
    switch (kind) {
      case EngineKind::kSerial:
        return "serial";
      case EngineKind::kWorkStealing:
        return "work-stealing";
    }
    return "unknown";
}

void
EngineConfig::validate() const
{
    LTE_CHECK(max_in_flight >= 1, "need at least one subframe in flight");
    LTE_CHECK(delta_ms >= 0.0, "delta must be non-negative");
    receiver.validate();
    input.validate();
}

std::unique_ptr<Engine>
make_engine(const EngineConfig &config)
{
    switch (config.kind) {
      case EngineKind::kSerial:
        return std::make_unique<SerialEngine>(config);
      case EngineKind::kWorkStealing:
        return std::make_unique<WorkStealingEngine>(config);
    }
    LTE_CHECK(false, "unknown engine kind");
    return nullptr;
}

// ------------------------------------------------------------ serial

SerialEngine::SerialEngine(const EngineConfig &config)
    : config_(config), input_(config.input), proc_(config.receiver)
{
    config_.validate();
    config_.kind = EngineKind::kSerial;
    // The serial engine runs kernels on the caller's thread.
    phy::warm_kernel_scratch();
}

SerialEngine::SerialEngine(const phy::ReceiverConfig &receiver,
                           const InputGeneratorConfig &input)
    : SerialEngine([&] {
          EngineConfig cfg;
          cfg.kind = EngineKind::kSerial;
          cfg.receiver = receiver;
          cfg.input = input;
          return cfg;
      }())
{
}

const SubframeOutcome &
SerialEngine::process_subframe(const phy::SubframeParams &params)
{
    params.validate();
    input_.signals_for(params, signals_);

    outcome_.subframe_index = params.subframe_index;
    outcome_.users.resize(params.users.size());
    for (std::size_t u = 0; u < params.users.size(); ++u) {
        proc_.bind(params.users[u], signals_[u]);
        const phy::UserResult &result = proc_.process_all();
        UserOutcome &out = outcome_.users[u];
        out.user_id = result.user_id;
        out.checksum = result.checksum;
        out.crc_ok = result.crc_ok;
        out.evm_rms = result.evm_rms;
    }
    return outcome_;
}

RunRecord
SerialEngine::run(workload::ParameterModel &model,
                  std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;
    RunRecord record;
    record.subframes.reserve(n_subframes);
    const auto start = clock::now();

    for (std::size_t i = 0; i < n_subframes; ++i) {
        const phy::SubframeParams params = model.next_subframe();
        record.subframes.push_back(process_subframe(params));
        for (const auto &user : params.users) {
            record.total_ops +=
                phy::user_task_costs(user, config_.receiver.n_antennas)
                    .total();
        }
    }

    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - start).count();
    record.activity = 1.0; // a serial run is busy by definition
    return record;
}

// ----------------------------------------------------- work stealing

WorkStealingEngine::WorkStealingEngine(const EngineConfig &config)
    : config_(config), input_(config.input)
{
    config_.validate();
    config_.kind = EngineKind::kWorkStealing;
    pool_ = std::make_unique<WorkerPool>(config_.pool);
}

void
WorkStealingEngine::set_estimator(
    std::optional<mgmt::WorkloadEstimator> estimator)
{
    estimator_ = std::move(estimator);
}

SubframeJob *
WorkStealingEngine::acquire_job()
{
    if (free_jobs_.empty()) {
        jobs_.push_back(std::make_unique<SubframeJob>());
        return jobs_.back().get();
    }
    SubframeJob *job = free_jobs_.back();
    free_jobs_.pop_back();
    return job;
}

void
WorkStealingEngine::release_job(SubframeJob *job)
{
    free_jobs_.push_back(job);
}

void
WorkStealingEngine::apply_estimator(const phy::SubframeParams &params)
{
    // Proactive core management (Eq. 5) from the *next* subframe's
    // known input parameters.
    const bool proactive =
        estimator_.has_value() &&
        (config_.pool.strategy == mgmt::Strategy::kNap ||
         config_.pool.strategy == mgmt::Strategy::kNapIdle ||
         config_.pool.strategy == mgmt::Strategy::kPowerGating);
    if (!proactive)
        return;
    const double estimate = estimator_->estimate_subframe(params);
    pool_->set_active_workers(estimator_->active_cores(
        estimate, static_cast<std::uint32_t>(pool_->n_workers()),
        config_.core_margin));
}

const SubframeOutcome &
WorkStealingEngine::process_subframe(const phy::SubframeParams &params)
{
    params.validate();
    input_.signals_for(params, signals_);
    apply_estimator(params);

    SubframeJob *job = acquire_job();
    job->prepare(params, signals_, config_.receiver);
    if (job->n_users > 0) {
        pool_->submit(job);
        pool_->wait_idle();
    }

    outcome_.subframe_index = params.subframe_index;
    outcome_.users = job->results; // capacity reuse, scalar payload
    release_job(job);
    return outcome_;
}

namespace {

/** Collect the outcome of a completed job. */
SubframeOutcome
collect(const SubframeJob &job)
{
    SubframeOutcome outcome;
    outcome.subframe_index = job.params.subframe_index;
    outcome.users.assign(job.results.begin(),
                         job.results.begin() +
                             static_cast<std::ptrdiff_t>(job.n_users));
    return outcome;
}

bool
job_done(const SubframeJob &job)
{
    return job.users_remaining.load(std::memory_order_acquire) <= 0;
}

} // namespace

RunRecord
WorkStealingEngine::run(workload::ParameterModel &model,
                        std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;

    RunRecord record;
    record.subframes.reserve(n_subframes);

    std::deque<SubframeJob *> in_flight;
    pool_->reset_activity();
    const auto run_start = clock::now();
    auto next_dispatch = run_start;
    const auto delta =
        std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double, std::milli>(config_.delta_ms));

    for (std::size_t i = 0; i < n_subframes; ++i) {
        // Flow control: keep at most max_in_flight subframes open.
        while (in_flight.size() >= config_.max_in_flight) {
            if (job_done(*in_flight.front())) {
                record.subframes.push_back(collect(*in_flight.front()));
                release_job(in_flight.front());
                in_flight.pop_front();
            } else {
                std::this_thread::yield();
            }
        }

        const phy::SubframeParams params = model.next_subframe();
        params.validate();
        apply_estimator(params);

        input_.signals_for(params, signals_);
        SubframeJob *job = acquire_job();
        job->prepare(params, signals_, config_.receiver);

        // DELTA pacing (paper Sec. IV-B.3).
        if (config_.delta_ms > 0.0) {
            std::this_thread::sleep_until(next_dispatch);
            next_dispatch += delta;
        }

        if (job->n_users == 0) {
            record.subframes.push_back(collect(*job));
            release_job(job);
        } else {
            pool_->submit(job);
            in_flight.push_back(job);
        }
    }

    // Drain the tail.
    pool_->wait_idle();
    while (!in_flight.empty()) {
        LTE_ASSERT(job_done(*in_flight.front()),
                   "pool idle but job incomplete");
        record.subframes.push_back(collect(*in_flight.front()));
        release_job(in_flight.front());
        in_flight.pop_front();
    }

    const auto snap = pool_->activity();
    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - run_start).count();
    record.activity = snap.activity(pool_->n_workers());
    record.total_ops = snap.ops;
    record.steals = pool_->steals();
    return record;
}

} // namespace lte::runtime

#include "runtime/worker_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "phy/kernel_scratch.hpp"
#include "phy/turbo.hpp"

namespace lte::runtime {

double
ActivitySnapshot::activity(std::size_t n_workers) const
{
    if (wall.count() <= 0 || n_workers == 0)
        return 0.0;
    return static_cast<double>(busy.count()) /
           (static_cast<double>(wall.count()) *
            static_cast<double>(n_workers));
}

ActivitySnapshot
ActivitySnapshot::operator-(const ActivitySnapshot &earlier) const
{
    ActivitySnapshot delta;
    delta.busy = busy - earlier.busy;
    delta.wall = wall - earlier.wall;
    delta.ops = ops - earlier.ops;
    delta.steals = steals - earlier.steals;
    return delta;
}

WorkerPool::WorkerPool(const WorkerPoolConfig &config)
    : config_(config), active_workers_(config.n_workers),
      epoch_(std::chrono::steady_clock::now())
{
    LTE_CHECK(config_.n_workers >= 1, "need at least one worker");

    deques_.reserve(config_.n_workers);
    stats_.reserve(config_.n_workers);
    for (std::size_t w = 0; w < config_.n_workers; ++w) {
        deques_.push_back(std::make_unique<WsDeque<Task>>());
        stats_.push_back(std::make_unique<WorkerStats>());
    }
    workers_.reserve(config_.n_workers);
    for (std::size_t w = 0; w < config_.n_workers; ++w)
        workers_.emplace_back([this, w] { worker_main(w); });
}

WorkerPool::~WorkerPool()
{
    stop_.store(true, std::memory_order_release);
    for (auto &t : workers_)
        t.join();
}

void
WorkerPool::submit(SubframeJob *job)
{
    LTE_CHECK(job != nullptr, "job must not be null");
    if (job->n_users == 0)
        return;
    job->users_remaining.store(
        static_cast<std::int32_t>(job->n_users),
        std::memory_order_relaxed);
    jobs_outstanding_.fetch_add(1, std::memory_order_acq_rel);
    for (std::size_t u = 0; u < job->n_users; ++u)
        global_queue_.push_bottom(job->users[u].get());
}

void
WorkerPool::wait_idle()
{
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] {
        return jobs_outstanding_.load(std::memory_order_acquire) == 0;
    });
}

void
WorkerPool::wait_job(const SubframeJob &job)
{
    // finish_user() notifies done_cv_ on every job completion (the
    // users_remaining 1 -> 0 transition), so waiting on one job is the
    // same condition variable with a per-job predicate.
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [&job] {
        return job.users_remaining.load(std::memory_order_acquire) <= 0;
    });
}

void
WorkerPool::set_active_workers(std::size_t n)
{
    active_workers_.store(
        std::clamp<std::size_t>(n, 1, workers_.size()),
        std::memory_order_release);
}

ActivitySnapshot
WorkerPool::activity_total() const
{
    ActivitySnapshot snap;
    for (const auto &s : stats_) {
        snap.busy += std::chrono::nanoseconds(
            s->busy_ns.load(std::memory_order_relaxed));
        snap.ops += s->ops.load(std::memory_order_relaxed);
        snap.steals += s->steals.load(std::memory_order_relaxed);
    }
    snap.wall = std::chrono::steady_clock::now() - epoch_;
    return snap;
}

ActivitySnapshot
WorkerPool::activity() const
{
    const ActivitySnapshot total = activity_total();
    std::lock_guard<std::mutex> lock(baseline_mutex_);
    return total - baseline_;
}

void
WorkerPool::reset_activity()
{
    const ActivitySnapshot total = activity_total();
    std::lock_guard<std::mutex> lock(baseline_mutex_);
    baseline_ = total;
}

std::uint64_t
WorkerPool::steals() const
{
    return activity().steals;
}

UserWork *
WorkerPool::try_pop_global()
{
    // steal_top() gives FIFO order: subframes are started oldest-first.
    const auto work = global_queue_.steal_top();
    return work ? *work : nullptr;
}

void
WorkerPool::account(std::size_t wid,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end,
                    std::uint64_t ops)
{
    stats_[wid]->busy_ns.fetch_add(
        static_cast<std::uint64_t>((end - start).count()),
        std::memory_order_relaxed);
    stats_[wid]->ops.fetch_add(ops, std::memory_order_relaxed);
}

void
WorkerPool::trace(std::size_t wid, obs::SpanKind kind,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end,
                  std::uint64_t arg)
{
    if (obs::Tracer *tracer = config_.tracer) {
        tracer->record(wid, kind, tracer->to_ns(start),
                       tracer->to_ns(end), arg);
    }
}

void
WorkerPool::execute_task(std::size_t wid, const Task &task)
{
    // Continuation dispatch: the worker that performs the final
    // acq_rel decrement of a stage counter observes every sibling's
    // writes and enqueues the next graph node into its own deque
    // (LIFO keeps the user's data hot; thieves take it if this worker
    // is busy).  No stage ever waits.
    const auto start = std::chrono::steady_clock::now();
    UserWork *work = task.work;
    auto &deque = *deques_[wid];
    switch (task.kind) {
      case Task::Kind::kChanEst: {
        work->proc.run_chanest_task(task.index);
        const auto end = std::chrono::steady_clock::now();
        account(wid, start, end, work->costs.chanest_task);
        trace(wid, obs::SpanKind::kChanEst, start, end, task.index);
        if (work->chanest_remaining.fetch_sub(
                1, std::memory_order_acq_rel) == 1)
            deque.push_bottom(Task{work, Task::Kind::kWeights, 0});
        break;
      }
      case Task::Kind::kWeights: {
        work->proc.compute_weights();
        const auto end = std::chrono::steady_clock::now();
        account(wid, start, end, work->costs.weights);
        trace(wid, obs::SpanKind::kWeights, start, end,
              work->proc.params().id);
        const auto n_demod = work->proc.n_demod_tasks();
        for (std::size_t t = 0; t < n_demod; ++t) {
            deque.push_bottom(Task{work, Task::Kind::kDemod,
                                   static_cast<std::uint32_t>(t)});
        }
        break;
      }
      case Task::Kind::kDemod: {
        work->proc.run_demod_task(task.index);
        const auto end = std::chrono::steady_clock::now();
        account(wid, start, end, work->costs.demod_task);
        trace(wid, obs::SpanKind::kDemod, start, end, task.index);
        if (work->demod_remaining.fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
            const auto n_tail = work->proc.n_tail_tasks();
            for (std::size_t t = 0; t < n_tail; ++t) {
                deque.push_bottom(Task{work, Task::Kind::kTailCb,
                                       static_cast<std::uint32_t>(t)});
            }
        }
        break;
      }
      case Task::Kind::kTailCb: {
        work->proc.run_tail_task(task.index);
        const auto end = std::chrono::steady_clock::now();
        account(wid, start, end, work->costs.tail_task);
        trace(wid, obs::SpanKind::kTailCb, start, end, task.index);
        if (work->tail_remaining.fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
            // Real-turbo mode interposes the decode fan-out between
            // the tail and the reduce; otherwise close the user.
            const auto n_decode = work->proc.n_decode_tasks();
            if (n_decode == 0) {
                deque.push_bottom(
                    Task{work, Task::Kind::kTailReduce, 0});
            } else {
                for (std::size_t t = 0; t < n_decode; ++t) {
                    deque.push_bottom(
                        Task{work, Task::Kind::kDecodeCb,
                             static_cast<std::uint32_t>(t)});
                }
            }
        }
        break;
      }
      case Task::Kind::kDecodeCb: {
        work->proc.run_decode_task(task.index);
        const auto end = std::chrono::steady_clock::now();
        account(wid, start, end, work->costs.decode_task);
        trace(wid, obs::SpanKind::kDecodeCb, start, end, task.index);
        if (work->decode_remaining.fetch_sub(
                1, std::memory_order_acq_rel) == 1)
            deque.push_bottom(Task{work, Task::Kind::kTailReduce, 0});
        break;
      }
      case Task::Kind::kTailReduce:
        finish_user(wid, work);
        break;
    }
}

bool
WorkerPool::try_help(std::size_t wid)
{
    if (auto task = deques_[wid]->pop_bottom()) {
        execute_task(wid, *task);
        return true;
    }
    // Steal from a pseudo-random victim; one full scan per attempt.
    thread_local Rng rng(config_.steal_seed * 1000003 + wid);
    const std::size_t n = deques_.size();
    if (n <= 1)
        return false;
    const std::size_t start = static_cast<std::size_t>(rng.next_below(n));
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t victim = (start + i) % n;
        if (victim == wid)
            continue;
        if (auto task = deques_[victim]->steal_top()) {
            stats_[wid]->steals.fetch_add(1, std::memory_order_relaxed);
            if (obs::Tracer *tracer = config_.tracer) {
                tracer->record_instant(wid, obs::SpanKind::kSteal,
                                       tracer->now_ns(), victim);
            }
            execute_task(wid, *task);
            return true;
        }
    }
    return false;
}

void
WorkerPool::start_user(std::size_t wid, UserWork *work)
{
    // Seed stage 1 (one task per (antenna, layer)) and return to the
    // scheduling loop; the continuation graph drives everything else.
    auto &deque = *deques_[wid];
    const auto n_chanest = work->proc.n_chanest_tasks();
    for (std::size_t t = 0; t < n_chanest; ++t) {
        deque.push_bottom(
            Task{work, Task::Kind::kChanEst,
                 static_cast<std::uint32_t>(t)});
    }
}

void
WorkerPool::finish_user(std::size_t wid, UserWork *work)
{
    const auto start = std::chrono::steady_clock::now();
    // Only the scalar outcome leaves the worker; the decoded bits stay
    // in the processor's reused storage (no payload copy, no alloc).
    const phy::UserResult &result = work->proc.finish_reduce();
    UserOutcome &out = work->parent->results[work->result_slot];
    out.user_id = result.user_id;
    out.checksum = result.checksum;
    out.crc_ok = result.crc_ok;
    out.crc_modelled = result.crc_modelled;
    out.evm_rms = result.evm_rms;
    out.decode_iterations = result.decode_iterations;
    const auto end = std::chrono::steady_clock::now();
    account(wid, start, end, work->costs.tail_reduce);
    trace(wid, obs::SpanKind::kTailReduce, start, end, result.user_id);

    if (work->parent->users_remaining.fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
        // Last user of the subframe: the job is complete.
        jobs_outstanding_.fetch_sub(1, std::memory_order_acq_rel);
        std::lock_guard<std::mutex> lock(done_mutex_);
        done_cv_.notify_all();
    }
}

void
WorkerPool::worker_main(std::size_t wid)
{
    // Create this thread's fixed kernel scratch and the turbo decode
    // workspace up front so no task ever allocates either lazily on
    // the subframe hot path.
    phy::warm_kernel_scratch();
    phy::warm_turbo_scratch();

    while (!stop_.load(std::memory_order_acquire)) {
        // NAP emulation: a deactivated worker parks and periodically
        // wakes to re-check its status (there is no way to remotely
        // reactivate a napping TILEPro64 core, Sec. V-B).
        if (wid >= active_workers_.load(std::memory_order_acquire)) {
            const auto start = std::chrono::steady_clock::now();
            std::this_thread::sleep_for(config_.nap_poll_period);
            trace(wid, obs::SpanKind::kNap, start,
                  std::chrono::steady_clock::now(), 0);
            continue;
        }

        // Paper order: the global user queue is checked before
        // stealing so a fresh subframe is picked up promptly.
        if (UserWork *work = try_pop_global()) {
            start_user(wid, work);
            continue;
        }
        if (try_help(wid))
            continue;

        // No work found: behaviour depends on the strategy.
        switch (config_.strategy) {
          case mgmt::Strategy::kNoNap:
          case mgmt::Strategy::kNap:
            std::this_thread::yield(); // spin (burns activity)
            break;
          case mgmt::Strategy::kIdle:
          case mgmt::Strategy::kNapIdle:
          case mgmt::Strategy::kPowerGating: {
            const auto start = std::chrono::steady_clock::now();
            std::this_thread::sleep_for(config_.idle_poll_period);
            trace(wid, obs::SpanKind::kIdle, start,
                  std::chrono::steady_clock::now(), 0);
            break;
          }
        }
    }
}

} // namespace lte::runtime

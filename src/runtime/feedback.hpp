/**
 * @file
 * The engine→MAC feedback seam.
 *
 * A closed-loop scheduler needs to see what the receiver actually did
 * with every grant it issued: which users' transport blocks passed
 * CRC (ACK/NACK for HARQ), the measured EVM (channel quality for
 * CQI→MCS adaptation), whether the decode ran degraded, and which
 * subframes never completed at all because the admission controller
 * shed them.  Engines already have exactly one completion site and
 * one shed site per flavour; this interface lets a sink observe both
 * without the runtime depending on the MAC layer (src/mac links
 * lte_runtime, not the other way around).
 *
 * Threading: every engine invokes the sink from its dispatch thread
 * (the thread running run()/process_subframe()).  In offloaded-io
 * runs the *grant producer* is a different thread (the sample feed
 * draws parameters on the producer thread), so a sink that also
 * produces grants must synchronise internally — MacScheduler holds a
 * mutex; see tests/test_mac.cpp's tsan soak.
 */
#ifndef LTE_RUNTIME_FEEDBACK_HPP
#define LTE_RUNTIME_FEEDBACK_HPP

#include <cstdint>

#include "phy/params.hpp"
#include "runtime/run_record.hpp"

namespace lte::runtime {

/** Observer of per-subframe receiver outcomes and shed decisions. */
class SubframeFeedbackSink
{
  public:
    virtual ~SubframeFeedbackSink() = default;

    /**
     * One subframe finished processing.  @p outcome is the same
     * storage the engine is about to hand to its caller / append to
     * the RunRecord (per-user crc_ok / crc_modelled / evm_rms are
     * final).  @p level is the degrade level the chain actually ran
     * at (kNone unless the shed controller flipped the job).
     */
    virtual void on_subframe_complete(const SubframeOutcome &outcome,
                                      phy::DegradeLevel level) = 0;

    /**
     * One subframe was shed before (or instead of) completing:
     * admission-ring overflow, deadline expiry, or a sample-plane
     * frame lost at the producer.  The scheduler learns nothing about
     * the channel from a shed subframe, but its outstanding grants
     * must be resolved (MacScheduler treats every user in the shed
     * TTI as NACKed without a CQI update).
     */
    virtual void on_subframe_shed(std::uint32_t cell_id,
                                  std::uint64_t subframe_index) = 0;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_FEEDBACK_HPP

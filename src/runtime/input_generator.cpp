#include "runtime/input_generator.hpp"

#include "channel/signal_source.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace lte::runtime {

void
InputGeneratorConfig::validate() const
{
    LTE_CHECK(n_antennas >= 1 && n_antennas <= kMaxRxAntennas,
              "antennas must be 1..4");
    LTE_CHECK(pool_size >= 1, "pool must hold at least one data set");
    LTE_CHECK(cell_id >= 1 && cell_id <= 511,
              "cell id must be 1..511 (9 scrambler bits)");
}

InputGenerator::InputGenerator(const InputGeneratorConfig &config)
    : config_(config)
{
    config_.validate();
}

const phy::UserSignal *
InputGenerator::random_signal(const phy::UserParams &user)
{
    auto &pool = pools_[user.prb];
    if (pool.empty()) {
        // Derive the pool deterministically from (seed, cell, prb) so
        // the contents depend neither on request order nor on which
        // other cells run beside this one.
        Rng rng(cell_stream_seed(config_.seed, config_.cell_id) *
                    0x9e3779b97f4a7c15ULL +
                user.prb);
        // Signal shape depends only on the PRB split, so generate
        // from canonical single-layer parameters rather than copying
        // the first requester's layers/mod/id — the pool is shared by
        // every user with this PRB count and its contents must not
        // depend on who asked first.
        phy::UserParams shape;
        shape.prb = user.prb;
        pool.reserve(config_.pool_size);
        for (std::size_t i = 0; i < config_.pool_size; ++i) {
            pool.push_back(std::make_unique<phy::UserSignal>(
                channel::random_user_signal(shape, config_.n_antennas,
                                            rng)));
        }
        if (config_.fresh) {
            // Fresh mode draws from its own stream so the pooled
            // warm-up contents above stay identical to pooled mode.
            fresh_rngs_.emplace(
                user.prb,
                Rng(cell_stream_seed(config_.seed, config_.cell_id) *
                        0xbf58476d1ce4e5b9ULL +
                    user.prb));
        }
    }
    auto &cursor = cursors_[user.prb];
    phy::UserSignal *signal = pool[cursor % pool.size()].get();
    cursor = (cursor + 1) % pool.size();
    if (config_.fresh) {
        // New IQ every request, written into the entry the cursor just
        // granted.  Cycling through pool_size entries preserves the
        // pooled-mode guarantee that concurrently in-flight subframes
        // never share (and thus never race on) a buffer.
        phy::UserParams shape;
        shape.prb = user.prb;
        channel::random_user_signal_into(shape, config_.n_antennas,
                                         fresh_rngs_.at(user.prb),
                                         *signal);
    }
    return signal;
}

const phy::UserSignal *
InputGenerator::realistic_signal(const phy::UserParams &user)
{
    const RealisticKey key{user.id, user.prb, user.layers,
                           static_cast<std::uint8_t>(user.mod)};
    auto it = realistic_.find(key);
    if (it == realistic_.end()) {
        Rng rng(cell_stream_seed(config_.seed, config_.cell_id) *
                    0x2545f4914f6cdd1dULL +
                user.id * 131 + user.prb * 7 + user.layers);
        auto generated = channel::realistic_user_signal(
            user, config_.n_antennas, config_.snr_db, rng,
            config_.real_turbo, config_.cell_id);
        RealisticEntry entry;
        entry.signal = std::make_unique<phy::UserSignal>(
            std::move(generated.signal));
        entry.expected_bits = std::move(generated.expected_bits);
        it = realistic_.emplace(key, std::move(entry)).first;
    }
    return it->second.signal.get();
}

std::vector<const phy::UserSignal *>
InputGenerator::signals_for(const phy::SubframeParams &subframe)
{
    std::vector<const phy::UserSignal *> signals;
    signals_for(subframe, signals);
    return signals;
}

void
InputGenerator::signals_for(const phy::SubframeParams &subframe,
                            std::vector<const phy::UserSignal *> &out)
{
    out.clear();
    out.reserve(subframe.users.size());
    for (const auto &user : subframe.users) {
        out.push_back(config_.realistic ? realistic_signal(user)
                                        : random_signal(user));
    }
}

const std::vector<std::uint8_t> &
InputGenerator::expected_bits(const phy::UserParams &user) const
{
    const RealisticKey key{user.id, user.prb, user.layers,
                           static_cast<std::uint8_t>(user.mod)};
    auto it = realistic_.find(key);
    return it == realistic_.end() ? empty_bits_ : it->second.expected_bits;
}

} // namespace lte::runtime

/**
 * @file
 * The unified subframe-processing engine interface.
 *
 * The paper builds two versions of the benchmark — a serial reference
 * (Sec. IV-A) and the parallel work-stealing runtime (Sec. IV-C) —
 * and validates one against the other (Sec. IV-D).  Both are engines:
 * something that accepts a subframe's parameters, fetches pooled input
 * data, runs the Fig. 3 receive chain for every scheduled user, and
 * reports per-user outcomes.  This header makes that contract
 * explicit so tests, benches and tools select the engine by
 * configuration instead of hard-coding a class.
 *
 * Two entry points:
 *
 *   process_subframe() — synchronous, one subframe in, outcome out.
 *     This is the steady-state hot path: all per-subframe state lives
 *     in pooled, re-bindable objects (workspace arenas, user-work
 *     pools, preallocated queues), so after warm-up it performs zero
 *     heap allocations on either engine (tests/test_alloc_free.cpp
 *     enforces this).
 *
 *   run() — the paper's benchmark driver: n subframes drawn from a
 *     parameter model, with DELTA pacing, in-flight pipelining and
 *     estimation-guided core deactivation on the work-stealing
 *     engine, producing a RunRecord for validation and statistics.
 */
#ifndef LTE_RUNTIME_ENGINE_HPP
#define LTE_RUNTIME_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mgmt/estimator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phy/params.hpp"
#include "phy/user_processor.hpp"
#include "runtime/input_generator.hpp"
#include "runtime/run_record.hpp"
#include "runtime/task.hpp"
#include "runtime/worker_pool.hpp"
#include "workload/parameter_model.hpp"

namespace lte::runtime {

/** Which engine implementation a config selects. */
enum class EngineKind : std::uint8_t
{
    kSerial,       ///< one thread, users processed in order
    kWorkStealing, ///< worker pool with task stealing (the default)
};

/** Human-readable engine name ("serial" / "work-stealing"). */
const char *engine_kind_name(EngineKind kind);

/** Unified engine configuration (superset of both engines' needs). */
struct EngineConfig
{
    EngineKind kind = EngineKind::kWorkStealing;
    /** Worker-pool shape; ignored by the serial engine. */
    WorkerPoolConfig pool;
    phy::ReceiverConfig receiver;
    InputGeneratorConfig input;
    /** Maximum subframes concurrently in flight (paper: two to
     *  three); ignored by the serial engine. */
    std::size_t max_in_flight = 3;
    /** Dispatch period in milliseconds; 0 = free-running. */
    double delta_ms = 0.0;
    /** Over-provisioning margin for Eq. 5. */
    std::uint32_t core_margin = 2;
    /**
     * Observability: when obs.enabled the engine owns a span tracer
     * (one ring per worker plus the dispatch thread), a per-subframe
     * activity/deadline series and a metrics registry, all
     * preallocated so steady-state recording stays allocation-free.
     * Disabled, every recording site costs a single branch.
     */
    obs::ObsConfig obs;

    void validate() const;
};

/** Abstract subframe-processing engine. */
class Engine
{
  public:
    virtual ~Engine() = default;

    virtual const char *name() const = 0;

    /**
     * Process one subframe synchronously and return its outcome.  The
     * returned reference (into reused storage) stays valid until the
     * next process_subframe() call.  Allocation-free in steady state.
     */
    virtual const SubframeOutcome &
    process_subframe(const phy::SubframeParams &params) = 0;

    /**
     * Run @p n_subframes drawn from @p model and return the record.
     * The model is consumed from its current state.
     */
    virtual RunRecord run(workload::ParameterModel &model,
                          std::size_t n_subframes) = 0;

    /**
     * Provide the estimator used for proactive (NAP / NAP+IDLE) core
     * deactivation; a no-op on engines without cores to manage.
     */
    virtual void
    set_estimator(std::optional<mgmt::WorkloadEstimator> estimator) = 0;

    /** The worker pool, or nullptr for engines that have none. */
    virtual WorkerPool *worker_pool() = 0;

    virtual InputGenerator &input() = 0;
    virtual const EngineConfig &config() const = 0;

    /** Span tracer, or nullptr when observability is disabled. */
    virtual obs::Tracer *tracer() = 0;
    /** Per-subframe series, or nullptr when disabled. */
    virtual const obs::SubframeSeries *subframe_series() const = 0;
    /** Metrics registry, or nullptr when disabled. */
    virtual obs::MetricsRegistry *metrics() = 0;
};

/** Build the engine selected by config.kind. */
std::unique_ptr<Engine> make_engine(const EngineConfig &config);

/**
 * The serial reference engine (paper Sec. IV-A): one thread, one
 * reused UserProcessor, users handled in schedule order.
 */
class SerialEngine : public Engine
{
  public:
    explicit SerialEngine(const EngineConfig &config);

    /** Legacy convenience: receiver + input config only. */
    SerialEngine(const phy::ReceiverConfig &receiver,
                 const InputGeneratorConfig &input);

    const char *name() const override { return "serial"; }
    const SubframeOutcome &
    process_subframe(const phy::SubframeParams &params) override;
    RunRecord run(workload::ParameterModel &model,
                  std::size_t n_subframes) override;
    void set_estimator(std::optional<mgmt::WorkloadEstimator>) override
    {
        // No cores to deactivate.
    }
    WorkerPool *worker_pool() override { return nullptr; }
    InputGenerator &input() override { return input_; }
    const EngineConfig &config() const override { return config_; }
    obs::Tracer *tracer() override { return tracer_.get(); }
    const obs::SubframeSeries *subframe_series() const override
    {
        return series_.get();
    }
    obs::MetricsRegistry *metrics() override { return metrics_.get(); }

  private:
    void init_obs();

    EngineConfig config_;
    InputGenerator input_;
    /** One processor, re-bound per user; arena reused across users. */
    phy::UserProcessor proc_;
    std::vector<const phy::UserSignal *> signals_;
    SubframeOutcome outcome_;

    /** Observability state (null unless config.obs.enabled). */
    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::SubframeSeries> series_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    obs::Counter *subframes_counter_ = nullptr;
    obs::Counter *users_counter_ = nullptr;
    obs::Counter *deadline_miss_counter_ = nullptr;
};

/**
 * The parallel engine: the "maintenance thread" role of the paper's
 * Sec. IV-B dispatching users onto the work-stealing pool, with
 * optional DELTA pacing and estimation-guided core deactivation.
 */
class WorkStealingEngine : public Engine
{
  public:
    explicit WorkStealingEngine(const EngineConfig &config);

    const char *name() const override { return "work-stealing"; }
    const SubframeOutcome &
    process_subframe(const phy::SubframeParams &params) override;
    RunRecord run(workload::ParameterModel &model,
                  std::size_t n_subframes) override;
    void set_estimator(
        std::optional<mgmt::WorkloadEstimator> estimator) override;
    WorkerPool *worker_pool() override { return pool_.get(); }
    InputGenerator &input() override { return input_; }
    const EngineConfig &config() const override { return config_; }
    obs::Tracer *tracer() override { return tracer_.get(); }
    const obs::SubframeSeries *subframe_series() const override
    {
        return series_.get();
    }
    obs::MetricsRegistry *metrics() override { return metrics_.get(); }

    /** Legacy convenience (UplinkBenchmark API). */
    WorkerPool &pool() { return *pool_; }

  private:
    /** Fetch a warm job from the pool (grow-only free list). */
    SubframeJob *acquire_job();
    void release_job(SubframeJob *job);
    /** Eq. 5 core deactivation; returns the Eq. 4 estimate (-1 when
     *  no estimator applies). */
    double apply_estimator(const phy::SubframeParams &params);
    /** The tracer slot used by the dispatch/maintenance thread. */
    std::size_t dispatch_slot() const { return config_.pool.n_workers; }
    /** Record one completed job into the series/metrics/trace. */
    void observe_completion(const SubframeJob &job,
                            std::uint64_t t_complete_ns);

    EngineConfig config_;
    InputGenerator input_;
    std::unique_ptr<WorkerPool> pool_;
    std::optional<mgmt::WorkloadEstimator> estimator_;

    /** Pooled jobs; at most max_in_flight + 1 ever exist. */
    std::vector<std::unique_ptr<SubframeJob>> jobs_;
    std::vector<SubframeJob *> free_jobs_;
    std::vector<const phy::UserSignal *> signals_;
    SubframeOutcome outcome_;

    /** Observability state (null unless config.obs.enabled). */
    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::SubframeSeries> series_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    obs::Counter *subframes_counter_ = nullptr;
    obs::Counter *users_counter_ = nullptr;
    obs::Counter *deadline_miss_counter_ = nullptr;
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_ENGINE_HPP

/**
 * @file
 * The unified subframe-processing engine interface.
 *
 * The paper builds two versions of the benchmark — a serial reference
 * (Sec. IV-A) and the parallel work-stealing runtime (Sec. IV-C) —
 * and validates one against the other (Sec. IV-D).  Both are engines:
 * something that accepts a subframe's parameters, fetches pooled input
 * data, runs the Fig. 3 receive chain for every scheduled user, and
 * reports per-user outcomes.  This header makes that contract
 * explicit so tests, benches and tools select the engine by
 * configuration instead of hard-coding a class.
 *
 * Two entry points:
 *
 *   process_subframe() — synchronous, one subframe in, outcome out.
 *     This is the steady-state hot path: all per-subframe state lives
 *     in pooled, re-bindable objects (workspace arenas, user-work
 *     pools, preallocated queues), so after warm-up it performs zero
 *     heap allocations on either engine (tests/test_alloc_free.cpp
 *     enforces this).
 *
 *   run() — the paper's benchmark driver: n subframes drawn from a
 *     parameter model, with DELTA pacing, in-flight pipelining and
 *     estimation-guided core deactivation on the work-stealing
 *     engine, producing a RunRecord for validation and statistics.
 */
#ifndef LTE_RUNTIME_ENGINE_HPP
#define LTE_RUNTIME_ENGINE_HPP

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "io/io_config.hpp"
#include "mgmt/estimator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phy/params.hpp"
#include "phy/user_processor.hpp"
#include "runtime/admission.hpp"
#include "runtime/input_generator.hpp"
#include "runtime/run_record.hpp"
#include "runtime/task.hpp"
#include "runtime/worker_pool.hpp"
#include "workload/parameter_model.hpp"

namespace lte::io {
struct IqFrame;
class SampleFeed;
class SampleTransport;
struct FeedStats;
}

namespace lte::runtime {

class SubframeFeedbackSink;

/** Which engine implementation a config selects. */
enum class EngineKind : std::uint8_t
{
    kSerial,       ///< one thread, users processed in order
    kWorkStealing, ///< worker pool with task stealing (the default)
    kStreaming,    ///< TTI-paced admission + bounded in-flight pipeline
};

/** Human-readable engine name ("serial" / "work-stealing" /
 *  "streaming"). */
const char *engine_kind_name(EngineKind kind);

/**
 * What the streaming admission controller does when it must shed load
 * (admission ring full, or a queued subframe has aged past the
 * deadline).  Expired subframes are always dropped — by the time the
 * deadline has passed there is nothing useful left to compute — so the
 * policy chooses the reaction to a *full ring*.
 */
enum class ShedPolicy : std::uint8_t
{
    /** Drop the arriving subframe; queued ones keep their place. */
    kDropNewest,
    /** Drop the oldest queued subframe to admit the arrival (the
     *  queued one is the likeliest to miss its deadline anyway). */
    kDropOldest,
    /** Like kDropOldest, but additionally process subframes that have
     *  consumed over half their deadline budget with a degraded
     *  receive chain to shorten the queue instead of dropping further
     *  subframes.  Real-turbo receivers climb a ladder: MRC combining
     *  plus a reduced decode iteration budget first, and the full
     *  decode bypass only past degrade_bypass_fraction of the
     *  deadline; pass-through receivers go straight to the bypass
     *  (the two levels coincide in output there). */
    kDegrade,
};

/** Human-readable policy name ("drop-newest" / "drop-oldest" /
 *  "degrade"). */
const char *shed_policy_name(ShedPolicy policy);

/**
 * Admission tallies of one streaming run (also exported as engine.*
 * counters when metrics are enabled).  Shared by the single-cell
 * streaming engine and each cell lane of the multi-cell engine; the
 * per-run invariant is shed + completed == submitted.
 */
struct ShedStats
{
    std::uint64_t submitted = 0; ///< arrivals offered by the model
    std::uint64_t admitted = 0;  ///< entered the worker pool
    std::uint64_t completed = 0; ///< finished processing
    std::uint64_t shed = 0;      ///< dropped (queue-full + expired)
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_expired = 0;
    std::uint64_t degraded = 0;  ///< admitted on the degraded chain
    /** Sample plane only: ticks whose frame was dropped at the source
     *  because the buffer pool was exhausted.  Counted inside shed
     *  (and shed_queue_full — the pool is the upstream queue), so the
     *  shed + completed == submitted invariant is unchanged. */
    std::uint64_t io_lost = 0;
    /** Sample plane only: frames delivered more than one TTI after
     *  their scheduled tick (still processed; informational). */
    std::uint64_t io_late = 0;
};

/** Unified engine configuration (superset of both engines' needs). */
struct EngineConfig
{
    EngineKind kind = EngineKind::kWorkStealing;
    /** Worker-pool shape; ignored by the serial engine. */
    WorkerPoolConfig pool;
    phy::ReceiverConfig receiver;
    InputGeneratorConfig input;
    /** Maximum subframes concurrently in flight (paper: two to
     *  three); ignored by the serial engine. */
    std::size_t max_in_flight = 3;
    /** Dispatch period in milliseconds; 0 = free-running. */
    double delta_ms = 0.0;
    /** Over-provisioning margin for Eq. 5. */
    std::uint32_t core_margin = 2;
    /**
     * Streaming engine only: admission-to-completion deadline in
     * milliseconds.  0 means infinite — the engine never sheds and
     * applies backpressure (blocks the arrival source) when the
     * pipeline is full, which is the lossless mode used for
     * streaming-vs-lock-step validation.
     */
    double deadline_ms = 0.0;
    /** Streaming engine only: capacity of the pending admission ring
     *  (prepared subframes waiting for an in-flight slot). */
    std::size_t admission_queue = 8;
    /** Streaming engine only: reaction to overload. */
    ShedPolicy shed_policy = ShedPolicy::kDropNewest;
    /**
     * ShedPolicy::kDegrade with a real-turbo receiver: fraction of the
     * deadline past which a queued subframe is degraded all the way to
     * the decode bypass instead of the reduced iteration budget (must
     * be in [0.5, 1]; the ladder's first step fires at half).
     */
    double degrade_bypass_fraction = 0.75;
    /**
     * Observability: when obs.enabled the engine owns a span tracer
     * (one ring per worker plus the dispatch thread), a per-subframe
     * activity/deadline series and a metrics registry, all
     * preallocated so steady-state recording stays allocation-free.
     * obs.metrics_enabled grants the registry alone (counters work
     * with tracing off).  Disabled, every recording site costs a
     * single branch.
     */
    obs::ObsConfig obs;

    /**
     * Sample plane (streaming and multi-cell engines only): when
     * io.enabled, run() consumes ready IQ frames from a dedicated
     * producer thread (per cell) instead of synthesizing input inline
     * on the admission path.  deadline_ms == 0 pairs with the feed's
     * lossless mode, so offloaded zero-jitter generator runs remain
     * bit-identical to the inline engines.
     */
    io::IoConfig io;

    /**
     * Closed-loop feedback (MAC layer): when non-null, every engine
     * reports each completed subframe's outcome and every shed
     * decision to this sink from its dispatch thread (see
     * runtime/feedback.hpp).  The sink is borrowed, not owned, and
     * must outlive the engine's run()/process_subframe() calls.
     */
    SubframeFeedbackSink *feedback = nullptr;

    void validate() const;
};

/** Abstract subframe-processing engine. */
class Engine
{
  public:
    virtual ~Engine() = default;

    virtual const char *name() const = 0;

    /**
     * Process one subframe synchronously and return its outcome.  The
     * returned reference (into reused storage) stays valid until the
     * next process_subframe() call.  Allocation-free in steady state.
     */
    virtual const SubframeOutcome &
    process_subframe(const phy::SubframeParams &params) = 0;

    /**
     * Run @p n_subframes drawn from @p model and return the record.
     * The model is consumed from its current state.
     */
    virtual RunRecord run(workload::ParameterModel &model,
                          std::size_t n_subframes) = 0;

    /**
     * Provide the estimator used for proactive (NAP / NAP+IDLE) core
     * deactivation; a no-op on engines without cores to manage.
     */
    virtual void
    set_estimator(std::optional<mgmt::WorkloadEstimator> estimator) = 0;

    /** The worker pool, or nullptr for engines that have none. */
    virtual WorkerPool *worker_pool() = 0;

    virtual InputGenerator &input() = 0;
    virtual const EngineConfig &config() const = 0;

    /** Span tracer, or nullptr when observability is disabled. */
    virtual obs::Tracer *tracer() = 0;
    /** Per-subframe series, or nullptr when disabled. */
    virtual const obs::SubframeSeries *subframe_series() const = 0;
    /** Metrics registry, or nullptr when disabled. */
    virtual obs::MetricsRegistry *metrics() = 0;
};

/** Build the engine selected by config.kind. */
std::unique_ptr<Engine> make_engine(const EngineConfig &config);

/**
 * The serial reference engine (paper Sec. IV-A): one thread, one
 * reused UserProcessor, users handled in schedule order.
 */
class SerialEngine : public Engine
{
  public:
    explicit SerialEngine(const EngineConfig &config);

    /** Legacy convenience: receiver + input config only. */
    SerialEngine(const phy::ReceiverConfig &receiver,
                 const InputGeneratorConfig &input);

    const char *name() const override { return "serial"; }
    const SubframeOutcome &
    process_subframe(const phy::SubframeParams &params) override;
    RunRecord run(workload::ParameterModel &model,
                  std::size_t n_subframes) override;
    void set_estimator(std::optional<mgmt::WorkloadEstimator>) override
    {
        // No cores to deactivate.
    }
    WorkerPool *worker_pool() override { return nullptr; }
    InputGenerator &input() override { return input_; }
    const EngineConfig &config() const override { return config_; }
    obs::Tracer *tracer() override { return tracer_.get(); }
    const obs::SubframeSeries *subframe_series() const override
    {
        return series_.get();
    }
    obs::MetricsRegistry *metrics() override { return metrics_.get(); }

  private:
    void init_obs();
    /** Monotonic ns: tracer epoch when tracing, engine epoch when only
     *  metrics are on (accounting must not depend on the tracer). */
    std::uint64_t obs_now_ns() const;

    EngineConfig config_;
    InputGenerator input_;
    /** One processor, re-bound per user; arena reused across users. */
    phy::UserProcessor proc_;
    std::vector<const phy::UserSignal *> signals_;
    SubframeOutcome outcome_;

    /** Tracing state (null unless config.obs.enabled); metrics_ is
     *  live whenever obs.enabled or obs.metrics_enabled. */
    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::SubframeSeries> series_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    obs::Counter *subframes_counter_ = nullptr;
    obs::Counter *users_counter_ = nullptr;
    obs::Counter *deadline_miss_counter_ = nullptr;
    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

/**
 * The parallel engine: the "maintenance thread" role of the paper's
 * Sec. IV-B dispatching users onto the work-stealing pool, with
 * optional DELTA pacing and estimation-guided core deactivation.
 */
class WorkStealingEngine : public Engine
{
  public:
    explicit WorkStealingEngine(const EngineConfig &config);

    const char *name() const override { return "work-stealing"; }
    const SubframeOutcome &
    process_subframe(const phy::SubframeParams &params) override;
    RunRecord run(workload::ParameterModel &model,
                  std::size_t n_subframes) override;
    void set_estimator(
        std::optional<mgmt::WorkloadEstimator> estimator) override;
    WorkerPool *worker_pool() override { return pool_.get(); }
    InputGenerator &input() override { return input_; }
    const EngineConfig &config() const override { return config_; }
    obs::Tracer *tracer() override { return tracer_.get(); }
    const obs::SubframeSeries *subframe_series() const override
    {
        return series_.get();
    }
    obs::MetricsRegistry *metrics() override { return metrics_.get(); }

    /** Legacy convenience (UplinkBenchmark API). */
    WorkerPool &pool() { return *pool_; }

  private:
    /** Eq. 5 core deactivation; returns the Eq. 4 estimate (-1 when
     *  no estimator applies). */
    double apply_estimator(const phy::SubframeParams &params);
    /** The tracer slot used by the dispatch/maintenance thread. */
    std::size_t dispatch_slot() const { return config_.pool.n_workers; }
    /** Record one completed job into the series/metrics/trace. */
    void observe_completion(const SubframeJob &job,
                            std::uint64_t t_complete_ns);
    /** Monotonic ns: tracer epoch when tracing, engine epoch when only
     *  metrics are on (accounting must not depend on the tracer). */
    std::uint64_t obs_now_ns() const;

    EngineConfig config_;
    InputGenerator input_;
    std::unique_ptr<WorkerPool> pool_;
    std::optional<mgmt::WorkloadEstimator> estimator_;

    /** Pooled jobs; at most max_in_flight + 1 ever exist. */
    admission::JobPool job_pool_;
    std::vector<const phy::UserSignal *> signals_;
    SubframeOutcome outcome_;

    /** Tracing state (null unless config.obs.enabled); metrics_ is
     *  live whenever obs.enabled or obs.metrics_enabled. */
    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::SubframeSeries> series_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    obs::Counter *subframes_counter_ = nullptr;
    obs::Counter *users_counter_ = nullptr;
    obs::Counter *deadline_miss_counter_ = nullptr;
    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

/**
 * The streaming engine (the tentpole of the subframe-based power
 * management study's overload behaviour): a TTI-paced arrival source
 * feeds a bounded admission ring of pooled jobs; up to max_in_flight
 * subframes execute concurrently on the work-stealing pool, each
 * waited on individually (WorkerPool::wait_job) instead of through the
 * global wait_idle() barrier.  An admission controller enforces
 * deadline_ms: when the ring is full or a queued subframe has aged
 * past the deadline, it sheds by the configured ShedPolicy and records
 * the decision (SpanKind::kShed, engine.shed* counters).  With
 * deadline_ms == 0 the engine is lossless and applies backpressure
 * instead, which makes its output bit-identical to the lock-step
 * engines for the same model stream.
 */
class StreamingEngine : public Engine
{
  public:
    explicit StreamingEngine(const EngineConfig &config);

    const char *name() const override { return "streaming"; }
    const SubframeOutcome &
    process_subframe(const phy::SubframeParams &params) override;
    RunRecord run(workload::ParameterModel &model,
                  std::size_t n_subframes) override;
    void set_estimator(
        std::optional<mgmt::WorkloadEstimator> estimator) override;
    WorkerPool *worker_pool() override { return pool_.get(); }
    InputGenerator &input() override { return input_; }
    const EngineConfig &config() const override { return config_; }
    obs::Tracer *tracer() override { return tracer_.get(); }
    const obs::SubframeSeries *subframe_series() const override
    {
        return series_.get();
    }
    obs::MetricsRegistry *metrics() override { return metrics_.get(); }

    /** Admission tallies of the last run(). */
    const ShedStats &shed_stats() const { return shed_stats_; }

  private:
    /** Eq. 4/5 with backlog awareness (queued + executing jobs) and,
     *  on degrade flips, the shed level's cheaper cost model. */
    double
    apply_estimator(const phy::SubframeParams &params,
                    std::size_t backlog,
                    phy::DegradeLevel level = phy::DegradeLevel::kNone);
    std::size_t dispatch_slot() const { return config_.pool.n_workers; }
    std::uint64_t obs_now_ns() const;
    /** Age of a prepared-but-unfinished job in milliseconds. */
    double age_ms(const SubframeJob &job, std::uint64_t now_ns) const;
    void observe_completion(const SubframeJob &job,
                            std::uint64_t t_complete_ns);
    /** Account one shed subframe (kShed span + counters). */
    void observe_shed(std::uint64_t subframe_index, bool expired);
    /** Submit the pending front while in-flight slots are free; sheds
     *  expired entries and flips long-waiting ones to the degraded
     *  chain under ShedPolicy::kDegrade. */
    void admit_pending();
    /** Pop completed jobs off the executing front, in order. */
    void reap_completed(RunRecord &record);
    /** Block until the oldest executing job finishes, then reap. */
    void drain_one(RunRecord &record);
    /** Release a job back to the pool, recycling its sample-plane
     *  frame (if any) to the transport's free ring first. */
    void release_job(SubframeJob *job);
    /** Fold producer-side frame losses into the shed accounting. */
    void sync_io_stats(const io::FeedStats &stats);
    /** The sample-plane run loop (config.io.enabled). */
    RunRecord run_offloaded(workload::ParameterModel &model,
                            std::size_t n_subframes);

    EngineConfig config_;
    InputGenerator input_;
    std::unique_ptr<WorkerPool> pool_;
    std::optional<mgmt::WorkloadEstimator> estimator_;

    /** Pooled jobs; at most admission_queue + max_in_flight + 1 ever
     *  exist. */
    admission::JobPool job_pool_;
    std::vector<const phy::UserSignal *> signals_;
    SubframeOutcome outcome_;

    /** Prepared subframes waiting for an in-flight slot (the
     *  admission ring; bounded by config.admission_queue). */
    std::deque<SubframeJob *> pending_;
    /** Submitted subframes, oldest first (bounded by max_in_flight). */
    std::deque<SubframeJob *> executing_;

    /** Live only inside run_offloaded(): the frame recycling target
     *  for release_job().  Null on the inline path. */
    io::SampleTransport *transport_ = nullptr;
    /** Producer-side loss/late counts already folded into
     *  shed_stats_ (consumed deltas of the feed's atomics). */
    std::uint64_t io_lost_synced_ = 0;
    std::uint64_t io_late_synced_ = 0;

    ShedStats shed_stats_;

    /** Tracing state (null unless config.obs.enabled); metrics_ is
     *  live whenever obs.enabled or obs.metrics_enabled. */
    std::unique_ptr<obs::Tracer> tracer_;
    std::unique_ptr<obs::SubframeSeries> series_;
    std::unique_ptr<obs::MetricsRegistry> metrics_;
    obs::Counter *subframes_counter_ = nullptr;
    obs::Counter *users_counter_ = nullptr;
    obs::Counter *deadline_miss_counter_ = nullptr;
    obs::Counter *submitted_counter_ = nullptr;
    obs::Counter *admitted_counter_ = nullptr;
    obs::Counter *completed_counter_ = nullptr;
    obs::Counter *shed_counter_ = nullptr;
    obs::Counter *shed_queue_full_counter_ = nullptr;
    obs::Counter *shed_expired_counter_ = nullptr;
    obs::Counter *degraded_counter_ = nullptr;
    obs::Counter *io_lost_counter_ = nullptr;
    obs::Counter *io_late_counter_ = nullptr;
    const std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

} // namespace lte::runtime

#endif // LTE_RUNTIME_ENGINE_HPP

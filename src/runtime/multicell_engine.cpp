/**
 * @file
 * Multi-cell engine implementation: per-cell admission lanes with a
 * deficit weighted-round-robin drain into one shared in-flight window
 * over the shared worker pool.
 *
 * Each lane reproduces the single-cell streaming engine's admission
 * semantics exactly (expiry at the ring head, the half-deadline
 * degrade mark, drop-newest/drop-oldest on a full ring, lossless
 * backpressure at deadline 0), so a 1-cell run is step-for-step the
 * single-cell engine and stays bit-identical to it.  What the
 * multi-cell engine adds is the arbitration between lanes: admission
 * order into the shared window follows WRR credits, and completion
 * waits always target the globally oldest admitted job (smallest
 * admit_seq across the lanes' executing fronts) so no cell can stall
 * another's reaping.
 */
#include "runtime/multicell.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "io/capture.hpp"
#include "io/sample_plane.hpp"
#include "phy/op_model.hpp"
#include "runtime/feedback.hpp"
#include "runtime/sample_source.hpp"

namespace lte::runtime {

using admission::collect;
using admission::job_done;
using admission::subframe_ops;

void
MultiCellConfig::validate() const
{
    LTE_CHECK(n_cells >= 1, "need at least one cell");
    LTE_CHECK(cell_ids.empty() || cell_ids.size() == n_cells,
              "cell_ids must be empty or name every cell");
    LTE_CHECK(weights.empty() || weights.size() == n_cells,
              "weights must be empty or cover every cell");
    for (std::size_t c = 0; c < n_cells; ++c) {
        const std::uint32_t id = cell_id_of(c);
        LTE_CHECK(id >= 1 && id <= 511,
                  "cell id must be 1..511 (9 scrambler bits)");
        LTE_CHECK(weight_of(c) >= 1, "WRR weights must be positive");
        for (std::size_t d = 0; d < c; ++d)
            LTE_CHECK(cell_id_of(d) != id, "cell ids must be distinct");
    }
    engine.validate();
}

std::uint32_t
MultiCellConfig::cell_id_of(std::size_t cell) const
{
    return cell_ids.empty() ? static_cast<std::uint32_t>(cell + 1)
                            : cell_ids[cell];
}

std::uint32_t
MultiCellConfig::weight_of(std::size_t cell) const
{
    return weights.empty() ? 1u : weights[cell];
}

std::size_t
MultiCellRunRecord::completed_subframes() const
{
    std::size_t n = 0;
    for (const auto &cell : cells)
        n += cell.subframes.size();
    return n;
}

std::size_t
MultiCellRunRecord::user_count() const
{
    std::size_t n = 0;
    for (const auto &cell : cells)
        n += cell.user_count();
    return n;
}

MultiCellEngine::MultiCellEngine(const MultiCellConfig &config)
    : config_(config)
{
    config_.validate();
    config_.engine.kind = EngineKind::kStreaming;

    if (config_.engine.obs.enabled) {
        tracer_ = std::make_unique<obs::Tracer>(
            config_.engine.pool.n_workers + 1, config_.engine.obs);
        series_ = std::make_unique<obs::SubframeSeries>(
            config_.engine.obs.series_capacity);
        config_.engine.pool.tracer = tracer_.get();
    }
    if (config_.engine.obs.enabled ||
        config_.engine.obs.metrics_enabled) {
        metrics_ = std::make_unique<obs::MetricsRegistry>();
        subframes_counter_ = &metrics_->counter("engine.subframes");
        users_counter_ = &metrics_->counter("engine.users");
        deadline_miss_counter_ =
            &metrics_->counter("engine.deadline_misses");
        submitted_counter_ = &metrics_->counter("engine.submitted");
        admitted_counter_ = &metrics_->counter("engine.admitted");
        completed_counter_ = &metrics_->counter("engine.completed");
        shed_counter_ = &metrics_->counter("engine.shed");
        shed_queue_full_counter_ =
            &metrics_->counter("engine.shed_queue_full");
        shed_expired_counter_ =
            &metrics_->counter("engine.shed_expired");
        degraded_counter_ = &metrics_->counter("engine.degraded");
        if (config_.engine.io.enabled) {
            io_lost_counter_ = &metrics_->counter("io.lost");
            io_late_counter_ = &metrics_->counter("io.late");
        }
    }
    pool_ = std::make_unique<WorkerPool>(config_.engine.pool);

    cells_.reserve(config_.n_cells);
    for (std::size_t c = 0; c < config_.n_cells; ++c) {
        const std::uint32_t id = config_.cell_id_of(c);
        InputGeneratorConfig input_cfg = config_.engine.input;
        input_cfg.cell_id = id;
        auto cell = std::make_unique<CellContext>(input_cfg);
        cell->cell_id = id;
        cell->weight = config_.weight_of(c);
        cell->credits = cell->weight;
        cell->receiver = config_.engine.receiver;
        cell->receiver.cell_id = id;
        if (metrics_) {
            const std::string prefix =
                "engine.cell" + std::to_string(id);
            cell->submitted_counter =
                &metrics_->counter(prefix + ".submitted");
            cell->completed_counter =
                &metrics_->counter(prefix + ".completed");
            cell->shed_counter = &metrics_->counter(prefix + ".shed");
            cell->degraded_counter =
                &metrics_->counter(prefix + ".degraded");
            cell->deadline_miss_counter =
                &metrics_->counter(prefix + ".deadline_misses");
        }
        cells_.push_back(std::move(cell));
    }
}

InputGenerator &
MultiCellEngine::input(std::size_t cell)
{
    LTE_CHECK(cell < cells_.size(), "cell index out of range");
    return cells_[cell]->input;
}

std::uint32_t
MultiCellEngine::cell_id(std::size_t cell) const
{
    LTE_CHECK(cell < cells_.size(), "cell index out of range");
    return cells_[cell]->cell_id;
}

const ShedStats &
MultiCellEngine::shed_stats(std::size_t cell) const
{
    LTE_CHECK(cell < cells_.size(), "cell index out of range");
    return cells_[cell]->shed;
}

void
MultiCellEngine::set_estimator(
    std::optional<mgmt::WorkloadEstimator> estimator)
{
    if (estimator.has_value()) {
        estimator->set_decode_pricing(
            mgmt::decode_pricing_for(config_.engine.receiver));
    }
    for (auto &cell : cells_)
        cell->estimator = estimator;
    estimator_ = std::move(estimator);
}

std::uint64_t
MultiCellEngine::obs_now_ns() const
{
    if (tracer_)
        return tracer_->now_ns();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

double
MultiCellEngine::age_ms(const SubframeJob &job,
                        std::uint64_t now_ns) const
{
    return static_cast<double>(now_ns - job.t_arrival_ns) / 1e6;
}

void
MultiCellEngine::update_active_workers()
{
    const bool proactive =
        estimator_.has_value() &&
        (config_.engine.pool.strategy == mgmt::Strategy::kNap ||
         config_.engine.pool.strategy == mgmt::Strategy::kNapIdle ||
         config_.engine.pool.strategy == mgmt::Strategy::kPowerGating);
    if (!proactive)
        return;
    // The shared pool serves the sum of the cells' demands (the
    // multi-cell Eq. 4): each lane's backlog-aware estimate, summed
    // and clamped to the chip.
    double total = 0.0;
    for (const auto &cell : cells_)
        total += std::max(0.0, cell->last_estimate);
    total = std::min(1.0, total);
    pool_->set_active_workers(estimator_->active_cores(
        total, static_cast<std::uint32_t>(pool_->n_workers()),
        config_.engine.core_margin));
}

void
MultiCellEngine::observe_completion(CellContext &cell,
                                    const SubframeJob &job,
                                    std::uint64_t t_complete_ns)
{
    ++cell.shed.completed;
    obs::SubframeSample sample;
    sample.subframe_index = job.params.subframe_index;
    sample.cell_id = cell.cell_id;
    // Latency is admission-to-completion: the deadline clock starts
    // at the TTI tick, not at pool admission, so queue wait counts.
    sample.t_dispatch_ns = job.t_arrival_ns;
    sample.t_complete_ns = t_complete_ns;
    sample.n_users = static_cast<std::uint32_t>(job.n_users);
    sample.active_workers =
        static_cast<std::uint32_t>(pool_->active_workers());
    sample.est_activity = job.est_activity;
    sample.ops = subframe_ops(
        job.params, config_.engine.receiver.n_antennas,
        phy::decode_model(config_.engine.receiver, job.degrade_level));
    if (tracer_) {
        tracer_->record(dispatch_slot(), obs::SpanKind::kSubframe,
                        job.t_dispatch_ns, t_complete_ns,
                        obs::make_cell_arg(cell.cell_id,
                                           job.params.subframe_index));
        series_->push(sample);
    }
    if (metrics_) {
        subframes_counter_->add();
        completed_counter_->add();
        users_counter_->add(job.n_users);
        cell.completed_counter->add();
        if (sample.latency_ms() > config_.engine.obs.deadline_ms) {
            deadline_miss_counter_->add();
            cell.deadline_miss_counter->add();
        }
    }
}

void
MultiCellEngine::observe_shed(CellContext &cell,
                              std::uint64_t subframe_index, bool expired)
{
    ++cell.shed.shed;
    if (expired)
        ++cell.shed.shed_expired;
    else
        ++cell.shed.shed_queue_full;
    if (tracer_) {
        tracer_->record_instant(
            dispatch_slot(), obs::SpanKind::kShed, obs_now_ns(),
            obs::make_cell_arg(cell.cell_id, subframe_index));
    }
    if (metrics_) {
        shed_counter_->add();
        cell.shed_counter->add();
        (expired ? shed_expired_counter_ : shed_queue_full_counter_)
            ->add();
    }
    if (config_.engine.feedback) {
        config_.engine.feedback->on_subframe_shed(cell.cell_id,
                                                  subframe_index);
    }
}

void
MultiCellEngine::expire_pending(CellContext &cell)
{
    if (config_.engine.deadline_ms <= 0.0)
        return;
    while (!cell.pending.empty()) {
        SubframeJob *job = cell.pending.front();
        if (age_ms(*job, obs_now_ns()) <= config_.engine.deadline_ms)
            break;
        // Expired in the queue: nothing useful left to compute.
        cell.pending.pop_front();
        --total_pending_;
        observe_shed(cell, job->params.subframe_index,
                     /*expired=*/true);
        release_job(cell, job);
    }
}

void
MultiCellEngine::admit_one(CellContext &cell)
{
    SubframeJob *job = cell.pending.front();
    const std::uint64_t now = obs_now_ns();
    const double age = age_ms(*job, now);
    if (config_.engine.shed_policy == ShedPolicy::kDegrade &&
        config_.engine.deadline_ms > 0.0 &&
        age > 0.5 * config_.engine.deadline_ms) {
        // Over half the budget gone waiting: trade EVM for latency
        // rather than risk a drop.  Same shed ladder as the
        // single-cell streaming engine: real-turbo lanes reduce the
        // decode budget first and bypass only past the fraction;
        // pass-through lanes go straight to the bypass.
        const bool bypass =
            !config_.engine.receiver.use_real_turbo ||
            age > config_.engine.degrade_bypass_fraction *
                      config_.engine.deadline_ms;
        const phy::DegradeLevel level =
            bypass ? phy::DegradeLevel::kBypass
                   : phy::DegradeLevel::kReducedIterations;
        job->set_degrade(level);
        ++cell.shed.degraded;
        if (metrics_) {
            degraded_counter_->add();
            cell.degraded_counter->add();
        }
        if (cell.estimator.has_value()) {
            // The planned work just got cheaper; refresh this lane's
            // Eq. 4 estimate under the shed level's cost model so the
            // shared pool's core count tracks real demand.
            const double estimate = cell.estimator->estimate_subframe(
                job->params,
                cell.pending.size() + cell.executing.size(), level);
            cell.last_estimate = estimate;
            job->est_activity = estimate;
            update_active_workers();
        }
    }
    cell.pending.pop_front();
    --total_pending_;
    job->t_dispatch_ns = now;
    job->admit_seq = admit_seq_++;
    if (tracer_) {
        tracer_->record_instant(
            dispatch_slot(), obs::SpanKind::kDispatch, now,
            obs::make_cell_arg(cell.cell_id,
                               job->params.subframe_index));
    }
    ++cell.shed.admitted;
    if (metrics_)
        admitted_counter_->add();
    if (job->n_users > 0)
        pool_->submit(job);
    // A zero-user job is born complete (users_remaining == 0); it
    // still flows through executing so reaping preserves order.
    cell.executing.push_back(job);
    ++total_executing_;
}

void
MultiCellEngine::admit_wrr()
{
    while (true) {
        for (auto &cell : cells_)
            expire_pending(*cell);
        if (total_executing_ >= config_.engine.max_in_flight ||
            total_pending_ == 0)
            break;
        bool admitted = false;
        for (std::size_t k = 0; k < cells_.size(); ++k) {
            const std::size_t c = (rr_next_ + k) % cells_.size();
            CellContext &cell = *cells_[c];
            if (cell.pending.empty() || cell.credits == 0)
                continue;
            admit_one(cell);
            --cell.credits;
            rr_next_ = (c + 1) % cells_.size();
            admitted = true;
            break;
        }
        if (!admitted) {
            // Every backlogged cell spent its round's credits: start
            // a new WRR round.
            for (auto &cell : cells_)
                cell->credits = cell->weight;
        }
    }
}

void
MultiCellEngine::reap_all(MultiCellRunRecord &record)
{
    for (std::size_t c = 0; c < cells_.size(); ++c) {
        CellContext &cell = *cells_[c];
        while (!cell.executing.empty() &&
               job_done(*cell.executing.front())) {
            SubframeJob *job = cell.executing.front();
            cell.executing.pop_front();
            --total_executing_;
            observe_completion(cell, *job, obs_now_ns());
            record.cells[c].subframes.push_back(collect(*job));
            if (config_.engine.feedback) {
                config_.engine.feedback->on_subframe_complete(
                    record.cells[c].subframes.back(),
                    job->degrade_level);
            }
            record.cells[c].total_ops += subframe_ops(
                job->params, config_.engine.receiver.n_antennas,
                phy::decode_model(config_.engine.receiver,
                                  job->degrade_level));
            release_job(cell, job);
        }
    }
}

void
MultiCellEngine::drain_one(MultiCellRunRecord &record)
{
    LTE_ASSERT(total_executing_ > 0,
               "drain_one() needs an in-flight subframe");
    // The globally oldest admitted job: smallest admit_seq over the
    // lanes' executing fronts.  Waiting on it (instead of any one
    // lane's front) keeps one cell's long subframe from blocking the
    // reaping of every other cell.
    CellContext *oldest = nullptr;
    for (auto &cell : cells_) {
        if (cell->executing.empty())
            continue;
        if (oldest == nullptr ||
            cell->executing.front()->admit_seq <
                oldest->executing.front()->admit_seq)
            oldest = cell.get();
    }
    pool_->wait_job(*oldest->executing.front());
    reap_all(record);
}

void
MultiCellEngine::release_job(CellContext &cell, SubframeJob *job)
{
    if (job->io_frame != nullptr) {
        // Always on the dispatch thread (reap, drop, expiry), so each
        // lane's free ring keeps its single producer.
        LTE_ASSERT(cell.transport != nullptr,
                   "sample-plane job released outside run_offloaded()");
        cell.transport->release(job->io_frame);
        job->io_frame = nullptr;
    }
    cell.job_pool.release(job);
}

void
MultiCellEngine::sync_io_stats(CellContext &cell,
                               const io::FeedStats &stats)
{
    // Producer-side losses are subframes this lane never saw: folded
    // into its shed accounting exactly once (shed_queue_full — the
    // frame pool is the upstream queue), preserving the per-cell
    // shed + completed == submitted invariant.
    const std::uint64_t lost =
        stats.lost.load(std::memory_order_acquire);
    while (cell.io_lost_synced < lost) {
        ++cell.io_lost_synced;
        ++cell.shed.submitted;
        ++cell.shed.shed;
        ++cell.shed.shed_queue_full;
        ++cell.shed.io_lost;
        if (tracer_) {
            tracer_->record_instant(
                dispatch_slot(), obs::SpanKind::kIoLost, obs_now_ns(),
                obs::make_cell_arg(cell.cell_id, cell.io_lost_synced));
        }
        if (metrics_) {
            submitted_counter_->add();
            shed_counter_->add();
            shed_queue_full_counter_->add();
            io_lost_counter_->add();
            cell.submitted_counter->add();
            cell.shed_counter->add();
        }
    }
    const std::uint64_t late =
        stats.late.load(std::memory_order_acquire);
    while (cell.io_late_synced < late) {
        ++cell.io_late_synced;
        ++cell.shed.io_late;
        if (metrics_)
            io_late_counter_->add();
    }
}

const SubframeOutcome &
MultiCellEngine::process_subframe(std::size_t cell_index,
                                  const phy::SubframeParams &params)
{
    LTE_CHECK(cell_index < cells_.size(), "cell index out of range");
    CellContext &cell = *cells_[cell_index];
    params.validate();
    LTE_CHECK(params.cell_id == cell.cell_id,
              "params.cell_id must name the lane's cell");
    LTE_ASSERT(total_pending_ == 0 && total_executing_ == 0,
               "process_subframe() may not interleave with run()");

    double estimate = -1.0;
    if (cell.estimator.has_value()) {
        estimate = cell.estimator->estimate_subframe(params, 0);
        cell.last_estimate = estimate;
        update_active_workers();
    }
    cell.input.signals_for(params, cell.signals);

    SubframeJob *job = cell.job_pool.acquire();
    job->prepare(params, cell.signals, cell.receiver);
    job->t_arrival_ns = obs_now_ns();
    job->t_dispatch_ns = job->t_arrival_ns;
    job->est_activity = estimate;
    if (tracer_) {
        tracer_->record_instant(
            dispatch_slot(), obs::SpanKind::kDispatch,
            job->t_dispatch_ns,
            obs::make_cell_arg(cell.cell_id, params.subframe_index));
    }
    ++cell.shed.submitted;
    ++cell.shed.admitted;
    if (metrics_) {
        submitted_counter_->add();
        admitted_counter_->add();
        cell.submitted_counter->add();
    }
    if (job->n_users > 0) {
        pool_->submit(job);
        pool_->wait_job(*job);
    }
    observe_completion(cell, *job, obs_now_ns());

    outcome_.subframe_index = params.subframe_index;
    outcome_.cell_id = params.cell_id;
    outcome_.users = job->results; // capacity reuse, scalar payload
    const phy::DegradeLevel level = job->degrade_level;
    cell.job_pool.release(job);
    if (config_.engine.feedback) {
        config_.engine.feedback->on_subframe_complete(outcome_, level);
    }
    return outcome_;
}

MultiCellRunRecord
MultiCellEngine::run(const std::vector<workload::ParameterModel *> &models,
                     std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;
    LTE_CHECK(models.size() == cells_.size(),
              "need one parameter model per cell");
    for (const auto *model : models)
        LTE_CHECK(model != nullptr, "null parameter model");

    if (config_.engine.io.enabled)
        return run_offloaded(models, n_subframes);

    MultiCellRunRecord record;
    record.cells.resize(cells_.size());
    record.shed.resize(cells_.size());
    for (std::size_t c = 0; c < cells_.size(); ++c) {
        CellContext &cell = *cells_[c];
        record.cells[c].cell_id = cell.cell_id;
        record.cells[c].subframes.reserve(n_subframes);
        cell.shed = ShedStats{};
        cell.credits = cell.weight;
        cell.last_estimate = -1.0;
    }
    admit_seq_ = 0;
    rr_next_ = 0;
    pool_->reset_activity();
    const auto run_start = clock::now();
    auto next_arrival = run_start;
    const auto delta = std::chrono::duration_cast<clock::duration>(
        std::chrono::duration<double, std::milli>(
            config_.engine.delta_ms));

    for (std::size_t i = 0; i < n_subframes; ++i) {
        // The shared TTI clock: every cell receives one subframe per
        // tick whether or not the pipeline kept up (free-running when
        // delta_ms == 0).
        if (config_.engine.delta_ms > 0.0) {
            std::this_thread::sleep_until(next_arrival);
            next_arrival += delta;
        }
        reap_all(record);

        for (auto &cell_ptr : cells_) {
            CellContext &cell = *cell_ptr;
            phy::SubframeParams params =
                models[&cell_ptr - cells_.data()]->next_subframe();
            params.cell_id = cell.cell_id;
            params.validate();
            ++cell.shed.submitted;
            if (metrics_) {
                submitted_counter_->add();
                cell.submitted_counter->add();
            }

            // Make room in this cell's admission ring.
            bool admit_arrival = true;
            if (cell.pending.size() >= config_.engine.admission_queue) {
                if (config_.engine.deadline_ms == 0.0) {
                    // Lossless mode: block the arrival source until
                    // the pipeline frees a slot (backpressure).
                    while (cell.pending.size() >=
                           config_.engine.admission_queue) {
                        admit_wrr();
                        if (cell.pending.size() <
                            config_.engine.admission_queue)
                            break;
                        drain_one(record);
                    }
                } else if (config_.engine.shed_policy ==
                           ShedPolicy::kDropOldest) {
                    // The oldest queued subframe is the closest to
                    // its deadline — sacrifice it for the arrival.
                    SubframeJob *oldest = cell.pending.front();
                    cell.pending.pop_front();
                    --total_pending_;
                    observe_shed(cell, oldest->params.subframe_index,
                                 /*expired=*/false);
                    release_job(cell, oldest);
                } else {
                    // kDropNewest / kDegrade: keep the queued work.
                    observe_shed(cell, params.subframe_index,
                                 /*expired=*/false);
                    admit_arrival = false;
                }
            }

            if (admit_arrival) {
                double estimate = -1.0;
                if (cell.estimator.has_value()) {
                    estimate = cell.estimator->estimate_subframe(
                        params,
                        cell.pending.size() + cell.executing.size());
                }
                cell.last_estimate = estimate;
                cell.input.signals_for(params, cell.signals);
                SubframeJob *job = cell.job_pool.acquire();
                job->prepare(params, cell.signals, cell.receiver);
                job->t_arrival_ns = obs_now_ns();
                job->est_activity = estimate;
                cell.pending.push_back(job);
                ++total_pending_;
            }
        }
        update_active_workers();
        admit_wrr();
    }

    // Drain the tail; queued subframes can still expire while the
    // pipeline catches up.
    while (total_pending_ > 0 || total_executing_ > 0) {
        if (total_executing_ > 0)
            drain_one(record);
        admit_wrr();
    }

    for (std::size_t c = 0; c < cells_.size(); ++c) {
        const ShedStats &s = cells_[c]->shed;
        LTE_ASSERT(s.shed + s.completed == s.submitted,
                   "admission accounting lost a subframe");
        record.shed[c] = s;
    }

    const auto snap = pool_->activity();
    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - run_start).count();
    record.activity = snap.activity(pool_->n_workers());
    record.total_ops = snap.ops;
    record.steals = pool_->steals();
    for (auto &cell_record : record.cells)
        cell_record.wall_seconds = record.wall_seconds;
    if (metrics_) {
        metrics_->gauge("engine.activity").set(record.activity);
        metrics_->gauge("engine.wall_seconds").set(record.wall_seconds);
        metrics_->counter("engine.steals").add(record.steals);
        if (tracer_) {
            metrics_->gauge("engine.trace_dropped")
                .set(static_cast<double>(tracer_->total_dropped()));
        }
    }
    return record;
}

void
MultiCellEngine::consume_frame(CellContext &cell, io::IqFrame *frame,
                               MultiCellRunRecord &record)
{
    // Replayed captures carry the recorded cell id; this lane serves
    // its own (the generator source already stamps it at produce).
    if (config_.engine.io.source == io::SourceKind::kReplay)
        frame->params.cell_id = cell.cell_id;

    ++cell.shed.submitted;
    if (metrics_) {
        submitted_counter_->add();
        cell.submitted_counter->add();
    }
    if (tracer_) {
        tracer_->record(dispatch_slot(), obs::SpanKind::kIoFrame,
                        frame->t_arrival_ns, obs_now_ns(),
                        obs::make_cell_arg(cell.cell_id,
                                           frame->params.subframe_index));
    }

    // Same per-lane admission-ring policy as the inline path.
    bool admit_arrival = true;
    if (cell.pending.size() >= config_.engine.admission_queue) {
        if (config_.engine.deadline_ms == 0.0) {
            // Lossless mode: hold the frame and block until this lane
            // frees a slot; the WRR drain keeps other lanes moving.
            while (cell.pending.size() >=
                   config_.engine.admission_queue) {
                admit_wrr();
                if (cell.pending.size() <
                    config_.engine.admission_queue)
                    break;
                drain_one(record);
            }
        } else if (config_.engine.shed_policy == ShedPolicy::kDropOldest) {
            SubframeJob *oldest = cell.pending.front();
            cell.pending.pop_front();
            --total_pending_;
            observe_shed(cell, oldest->params.subframe_index,
                         /*expired=*/false);
            release_job(cell, oldest);
        } else {
            observe_shed(cell, frame->params.subframe_index,
                         /*expired=*/false);
            admit_arrival = false;
        }
    }

    if (admit_arrival) {
        double estimate = -1.0;
        if (cell.estimator.has_value()) {
            estimate = cell.estimator->estimate_subframe(
                frame->params,
                cell.pending.size() + cell.executing.size());
        }
        cell.last_estimate = estimate;
        SubframeJob *job = cell.job_pool.acquire();
        // Zero-copy handoff: the job reads the frame's signals in
        // place; the frame recycles at release_job().
        job->prepare(frame->params, frame->signals, cell.receiver);
        job->t_arrival_ns = frame->t_arrival_ns;
        job->est_activity = estimate;
        job->io_frame = frame;
        cell.pending.push_back(job);
        ++total_pending_;
    } else {
        cell.transport->release(frame);
    }
}

MultiCellRunRecord
MultiCellEngine::run_offloaded(
    const std::vector<workload::ParameterModel *> &models,
    std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;
    const io::IoConfig &io_cfg = config_.engine.io;

    MultiCellRunRecord record;
    record.cells.resize(cells_.size());
    record.shed.resize(cells_.size());
    for (std::size_t c = 0; c < cells_.size(); ++c) {
        CellContext &cell = *cells_[c];
        record.cells[c].cell_id = cell.cell_id;
        record.cells[c].subframes.reserve(n_subframes);
        cell.shed = ShedStats{};
        cell.credits = cell.weight;
        cell.last_estimate = -1.0;
        cell.io_lost_synced = 0;
        cell.io_late_synced = 0;
    }
    admit_seq_ = 0;
    rr_next_ = 0;
    pool_->reset_activity();

    // One sample plane per lane (transport + source + recorder), but
    // ONE shared producer thread pacing every lane on the common TTI
    // grid: per-cell free-running SampleFeed threads yield-spin toward
    // the same tick and oversubscribe a core as soon as n_cells > 1,
    // which distorted the multi-cell offloaded overload tables with
    // producer scheduling noise.  Generator lanes draw their own model
    // on the producer thread; replay lanes all replay the configured
    // capture (cell id re-stamped at consumption).  Recorder taps get
    // per-cell file names beyond one cell so lanes never share a
    // stream, and each lane keeps its own jitter stream.
    std::vector<std::unique_ptr<io::SampleTransport>> transports;
    std::vector<std::unique_ptr<io::SampleSource>> sources;
    std::vector<std::unique_ptr<io::CaptureWriter>> recorders;
    std::vector<io::FeedLane> lanes;
    transports.reserve(cells_.size());
    sources.reserve(cells_.size());
    recorders.reserve(cells_.size());
    lanes.reserve(cells_.size());
    for (std::size_t c = 0; c < cells_.size(); ++c) {
        CellContext &cell = *cells_[c];
        transports.push_back(
            std::make_unique<io::SampleTransport>(io_cfg.n_frames));
        cell.transport = transports.back().get();
        if (io_cfg.source == io::SourceKind::kReplay) {
            sources.push_back(std::make_unique<io::ReplaySource>(
                io_cfg.replay_path, /*loop=*/true));
        } else {
            sources.push_back(std::make_unique<GeneratorSampleSource>(
                cell.input, *models[c], cell.cell_id));
        }
        if (!io_cfg.record_path.empty()) {
            std::string path = io_cfg.record_path;
            if (cells_.size() > 1)
                path += ".cell" + std::to_string(cell.cell_id);
            recorders.push_back(std::make_unique<io::CaptureWriter>(
                path, config_.engine.receiver.n_antennas));
        } else {
            recorders.push_back(nullptr);
        }
        io::FeedLane lane;
        lane.transport = transports.back().get();
        lane.source = sources.back().get();
        lane.recorder = recorders.back().get();
        lane.jitter_seed =
            cell_stream_seed(io_cfg.jitter_seed, cell.cell_id);
        lanes.push_back(lane);
    }
    io::FeedConfig feed_config;
    feed_config.delta_ms = config_.engine.delta_ms;
    feed_config.jitter_ms = io_cfg.jitter_ms;
    feed_config.lossless = config_.engine.deadline_ms == 0.0;
    feed_config.now_ns = [this] { return obs_now_ns(); };
    io::MultiSampleFeed feed(std::move(lanes), feed_config);

    const auto run_start = clock::now();
    feed.start(n_subframes);

    // Every (cell, tick) resolves as consumed or lost exactly once,
    // so all lanes summing to n_cells * n ticks drains everything.
    const auto resolved = [this] {
        std::uint64_t n = 0;
        for (const auto &cell : cells_)
            n += cell->shed.completed + cell->shed.shed;
        return n;
    };
    const std::uint64_t target =
        static_cast<std::uint64_t>(n_subframes) * cells_.size();

    while (resolved() < target) {
        reap_all(record);
        bool any = false;
        for (std::size_t c = 0; c < cells_.size(); ++c) {
            CellContext &cell = *cells_[c];
            sync_io_stats(cell, feed.stats(c));
            io::IqFrame *frame = cell.transport->try_pop_ready();
            if (frame == nullptr)
                continue;
            any = true;
            consume_frame(cell, frame, record);
        }
        update_active_workers();
        admit_wrr();
        if (!any)
            std::this_thread::yield();
    }

    feed.stop();
    for (std::size_t c = 0; c < cells_.size(); ++c)
        sync_io_stats(*cells_[c], feed.stats(c));
    LTE_ASSERT(total_pending_ == 0 && total_executing_ == 0,
               "ticks resolved but jobs remain in flight");

    for (std::size_t c = 0; c < cells_.size(); ++c) {
        CellContext &cell = *cells_[c];
        cell.transport = nullptr;
        const ShedStats &s = cell.shed;
        LTE_ASSERT(s.shed + s.completed == s.submitted,
                   "admission accounting lost a subframe");
        LTE_ASSERT(s.submitted == n_subframes,
                   "sample plane lost track of a tick");
        record.shed[c] = s;
    }

    const auto snap = pool_->activity();
    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - run_start).count();
    record.activity = snap.activity(pool_->n_workers());
    record.total_ops = snap.ops;
    record.steals = pool_->steals();
    for (auto &cell_record : record.cells)
        cell_record.wall_seconds = record.wall_seconds;
    if (metrics_) {
        metrics_->gauge("engine.activity").set(record.activity);
        metrics_->gauge("engine.wall_seconds").set(record.wall_seconds);
        metrics_->counter("engine.steals").add(record.steals);
        if (tracer_) {
            metrics_->gauge("engine.trace_dropped")
                .set(static_cast<double>(tracer_->total_dropped()));
        }
    }
    return record;
}

} // namespace lte::runtime

/**
 * @file
 * The streaming subframe engine: TTI-paced admission, a bounded
 * in-flight pipeline and deadline-aware load shedding.
 *
 * The lock-step engines answer the paper's validation question ("does
 * the parallel receiver compute the same bits?"); this engine answers
 * the deployment question ("what happens at 1 ms arrival cadence when
 * the machine cannot keep up?").  Subframes arrive on a fixed TTI
 * clock, wait in a bounded admission ring, execute concurrently on the
 * work-stealing pool (each reaped individually via
 * WorkerPool::wait_job — no global barrier), and are shed or degraded
 * by the admission controller once the deadline budget is spent.
 *
 * Invariant maintained per run and asserted at its end:
 *
 *     shed + completed == submitted
 *
 * With deadline_ms == 0 the controller never sheds: a full pipeline
 * blocks the arrival source instead (backpressure), which makes the
 * engine lossless and its output bit-identical to the lock-step
 * engines over the same parameter stream.
 */
#include "runtime/engine.hpp"

#include <chrono>
#include <thread>

#include "common/check.hpp"
#include "io/capture.hpp"
#include "io/sample_plane.hpp"
#include "phy/kernel_scratch.hpp"
#include "phy/op_model.hpp"
#include "runtime/feedback.hpp"
#include "runtime/sample_source.hpp"

namespace lte::runtime {

using admission::collect;
using admission::job_done;
using admission::subframe_ops;

StreamingEngine::StreamingEngine(const EngineConfig &config)
    : config_(config), input_(config.input)
{
    config_.validate();
    config_.kind = EngineKind::kStreaming;
    if (config_.obs.enabled) {
        tracer_ = std::make_unique<obs::Tracer>(
            config_.pool.n_workers + 1, config_.obs);
        series_ = std::make_unique<obs::SubframeSeries>(
            config_.obs.series_capacity);
        config_.pool.tracer = tracer_.get();
    }
    // Metrics are independent of tracing (see SerialEngine::init_obs).
    if (config_.obs.enabled || config_.obs.metrics_enabled) {
        metrics_ = std::make_unique<obs::MetricsRegistry>();
        subframes_counter_ = &metrics_->counter("engine.subframes");
        users_counter_ = &metrics_->counter("engine.users");
        deadline_miss_counter_ =
            &metrics_->counter("engine.deadline_misses");
        submitted_counter_ = &metrics_->counter("engine.submitted");
        admitted_counter_ = &metrics_->counter("engine.admitted");
        completed_counter_ = &metrics_->counter("engine.completed");
        shed_counter_ = &metrics_->counter("engine.shed");
        shed_queue_full_counter_ =
            &metrics_->counter("engine.shed_queue_full");
        shed_expired_counter_ =
            &metrics_->counter("engine.shed_expired");
        degraded_counter_ = &metrics_->counter("engine.degraded");
        if (config_.io.enabled) {
            io_lost_counter_ = &metrics_->counter("io.lost");
            io_late_counter_ = &metrics_->counter("io.late");
        }
    }
    pool_ = std::make_unique<WorkerPool>(config_.pool);
}

void
StreamingEngine::set_estimator(
    std::optional<mgmt::WorkloadEstimator> estimator)
{
    estimator_ = std::move(estimator);
    if (estimator_) {
        estimator_->set_decode_pricing(
            mgmt::decode_pricing_for(config_.receiver));
    }
}

std::uint64_t
StreamingEngine::obs_now_ns() const
{
    if (tracer_)
        return tracer_->now_ns();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

double
StreamingEngine::age_ms(const SubframeJob &job,
                        std::uint64_t now_ns) const
{
    return static_cast<double>(now_ns - job.t_arrival_ns) / 1e6;
}

double
StreamingEngine::apply_estimator(const phy::SubframeParams &params,
                                 std::size_t backlog,
                                 phy::DegradeLevel level)
{
    const bool proactive =
        estimator_.has_value() &&
        (config_.pool.strategy == mgmt::Strategy::kNap ||
         config_.pool.strategy == mgmt::Strategy::kNapIdle ||
         config_.pool.strategy == mgmt::Strategy::kPowerGating);
    if (!proactive)
        return -1.0;
    // Backlog-aware Eq. 4: resident subframes still demand cores, so
    // the streaming engine must not power down under a queue.  On a
    // degrade flip the same equation is re-evaluated under the shed
    // level's op-model cost ratio, so the controller does not keep
    // cores awake for MMSE or decode work the flip just cancelled.
    const double estimate =
        estimator_->estimate_subframe(params, backlog, level);
    pool_->set_active_workers(estimator_->active_cores(
        estimate, static_cast<std::uint32_t>(pool_->n_workers()),
        config_.core_margin));
    return estimate;
}

void
StreamingEngine::observe_completion(const SubframeJob &job,
                                    std::uint64_t t_complete_ns)
{
    ++shed_stats_.completed;
    obs::SubframeSample sample;
    sample.subframe_index = job.params.subframe_index;
    sample.cell_id = job.cell_id;
    // Latency is admission-to-completion: the deadline clock starts at
    // the TTI tick, not at pool admission, so queue wait counts.
    sample.t_dispatch_ns = job.t_arrival_ns;
    sample.t_complete_ns = t_complete_ns;
    sample.n_users = static_cast<std::uint32_t>(job.n_users);
    sample.active_workers =
        static_cast<std::uint32_t>(pool_->active_workers());
    sample.est_activity = job.est_activity;
    sample.ops = subframe_ops(
        job.params, config_.receiver.n_antennas,
        phy::decode_model(config_.receiver, job.degrade_level));
    if (tracer_) {
        tracer_->record(dispatch_slot(), obs::SpanKind::kSubframe,
                        job.t_dispatch_ns, t_complete_ns,
                        job.params.subframe_index);
        series_->push(sample);
    }
    if (metrics_) {
        subframes_counter_->add();
        completed_counter_->add();
        users_counter_->add(job.n_users);
        if (sample.latency_ms() > config_.obs.deadline_ms)
            deadline_miss_counter_->add();
    }
}

void
StreamingEngine::observe_shed(std::uint64_t subframe_index, bool expired)
{
    ++shed_stats_.shed;
    if (expired)
        ++shed_stats_.shed_expired;
    else
        ++shed_stats_.shed_queue_full;
    if (tracer_) {
        tracer_->record_instant(dispatch_slot(), obs::SpanKind::kShed,
                                obs_now_ns(), subframe_index);
    }
    if (metrics_) {
        shed_counter_->add();
        (expired ? shed_expired_counter_ : shed_queue_full_counter_)
            ->add();
    }
    if (config_.feedback) {
        config_.feedback->on_subframe_shed(config_.receiver.cell_id,
                                           subframe_index);
    }
}

void
StreamingEngine::release_job(SubframeJob *job)
{
    if (job->io_frame != nullptr) {
        // This runs on the dispatch thread for every release site
        // (reap, drop, expiry), so the free ring keeps its single
        // producer.
        LTE_ASSERT(transport_ != nullptr,
                   "sample-plane job released outside run_offloaded()");
        transport_->release(job->io_frame);
        job->io_frame = nullptr;
    }
    job_pool_.release(job);
}

void
StreamingEngine::sync_io_stats(const io::FeedStats &stats)
{
    // A lost tick is a subframe the receiver never saw: the producer
    // dropped it at the source because the frame pool (the upstream
    // queue) was exhausted.  Fold each one into the shed accounting
    // exactly once so shed + completed == submitted still holds.
    const std::uint64_t lost =
        stats.lost.load(std::memory_order_acquire);
    while (io_lost_synced_ < lost) {
        ++io_lost_synced_;
        ++shed_stats_.submitted;
        ++shed_stats_.shed;
        ++shed_stats_.shed_queue_full;
        ++shed_stats_.io_lost;
        if (tracer_) {
            tracer_->record_instant(dispatch_slot(),
                                    obs::SpanKind::kIoLost,
                                    obs_now_ns(), io_lost_synced_);
        }
        if (metrics_) {
            submitted_counter_->add();
            shed_counter_->add();
            shed_queue_full_counter_->add();
            io_lost_counter_->add();
        }
    }
    const std::uint64_t late =
        stats.late.load(std::memory_order_acquire);
    while (io_late_synced_ < late) {
        ++io_late_synced_;
        ++shed_stats_.io_late;
        if (metrics_)
            io_late_counter_->add();
    }
}

void
StreamingEngine::admit_pending()
{
    while (!pending_.empty()) {
        SubframeJob *job = pending_.front();
        const std::uint64_t now = obs_now_ns();
        const double age = age_ms(*job, now);
        if (config_.deadline_ms > 0.0 && age > config_.deadline_ms) {
            // Expired in the queue: nothing useful left to compute.
            pending_.pop_front();
            observe_shed(job->params.subframe_index, /*expired=*/true);
            release_job(job);
            continue;
        }
        if (executing_.size() >= config_.max_in_flight)
            break;
        if (config_.shed_policy == ShedPolicy::kDegrade &&
            config_.deadline_ms > 0.0 &&
            age > 0.5 * config_.deadline_ms) {
            // Over half the budget gone waiting: trade EVM for
            // latency rather than risk a drop.  Real-turbo receivers
            // climb the shed ladder — reduced decode iterations
            // first, the full bypass only past the bypass fraction;
            // pass-through receivers jump straight to the bypass
            // (both levels produce the same output there).
            const bool bypass =
                !config_.receiver.use_real_turbo ||
                age > config_.degrade_bypass_fraction *
                          config_.deadline_ms;
            const phy::DegradeLevel level =
                bypass ? phy::DegradeLevel::kBypass
                       : phy::DegradeLevel::kReducedIterations;
            job->set_degrade(level);
            ++shed_stats_.degraded;
            if (metrics_)
                degraded_counter_->add();
            // The planned work just got cheaper; let Eq. 4/5 see the
            // shed level's cost before this job hits the pool.
            const double estimate = apply_estimator(
                job->params, pending_.size() + executing_.size(),
                level);
            if (estimate >= 0.0)
                job->est_activity = estimate;
        }
        pending_.pop_front();
        job->t_dispatch_ns = now;
        if (tracer_) {
            tracer_->record_instant(dispatch_slot(),
                                    obs::SpanKind::kDispatch, now,
                                    job->params.subframe_index);
        }
        ++shed_stats_.admitted;
        if (metrics_)
            admitted_counter_->add();
        if (job->n_users > 0)
            pool_->submit(job);
        // A zero-user job is born complete (users_remaining == 0); it
        // still flows through executing_ so reaping preserves order.
        executing_.push_back(job);
    }
}

void
StreamingEngine::reap_completed(RunRecord &record)
{
    while (!executing_.empty() && job_done(*executing_.front())) {
        SubframeJob *job = executing_.front();
        executing_.pop_front();
        observe_completion(*job, obs_now_ns());
        record.subframes.push_back(collect(*job));
        if (config_.feedback) {
            config_.feedback->on_subframe_complete(
                record.subframes.back(), job->degrade_level);
        }
        release_job(job);
    }
}

void
StreamingEngine::drain_one(RunRecord &record)
{
    LTE_ASSERT(!executing_.empty(),
               "drain_one() needs an in-flight subframe");
    pool_->wait_job(*executing_.front());
    reap_completed(record);
}

const SubframeOutcome &
StreamingEngine::process_subframe(const phy::SubframeParams &params)
{
    params.validate();
    LTE_ASSERT(pending_.empty() && executing_.empty(),
               "process_subframe() may not interleave with run()");
    input_.signals_for(params, signals_);
    const double estimate = apply_estimator(params, 0);

    SubframeJob *job = job_pool_.acquire();
    job->prepare(params, signals_, config_.receiver);
    job->t_arrival_ns = obs_now_ns();
    job->t_dispatch_ns = job->t_arrival_ns;
    job->est_activity = estimate;
    if (tracer_) {
        tracer_->record_instant(dispatch_slot(), obs::SpanKind::kDispatch,
                                job->t_dispatch_ns,
                                params.subframe_index);
    }
    ++shed_stats_.submitted;
    ++shed_stats_.admitted;
    if (metrics_) {
        submitted_counter_->add();
        admitted_counter_->add();
    }
    if (job->n_users > 0) {
        pool_->submit(job);
        pool_->wait_job(*job);
    }
    observe_completion(*job, obs_now_ns());

    outcome_.subframe_index = params.subframe_index;
    outcome_.cell_id = params.cell_id;
    outcome_.users = job->results; // capacity reuse, scalar payload
    const phy::DegradeLevel level = job->degrade_level;
    job_pool_.release(job);
    if (config_.feedback)
        config_.feedback->on_subframe_complete(outcome_, level);
    return outcome_;
}

RunRecord
StreamingEngine::run(workload::ParameterModel &model,
                     std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;

    if (config_.io.enabled)
        return run_offloaded(model, n_subframes);

    RunRecord record;
    record.cell_id = config_.receiver.cell_id;
    record.subframes.reserve(n_subframes);
    shed_stats_ = ShedStats{};
    pool_->reset_activity();
    const auto run_start = clock::now();
    auto next_arrival = run_start;
    const auto delta =
        std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double, std::milli>(config_.delta_ms));

    for (std::size_t i = 0; i < n_subframes; ++i) {
        // The TTI clock: arrivals come every delta_ms whether or not
        // the pipeline kept up (free-running when delta_ms == 0).
        if (config_.delta_ms > 0.0) {
            std::this_thread::sleep_until(next_arrival);
            next_arrival += delta;
        }
        reap_completed(record);

        const phy::SubframeParams params = model.next_subframe();
        params.validate();
        ++shed_stats_.submitted;
        if (metrics_)
            submitted_counter_->add();

        // Make room in the admission ring.
        bool admit_arrival = true;
        if (pending_.size() >= config_.admission_queue) {
            if (config_.deadline_ms == 0.0) {
                // Lossless mode: block the arrival source until the
                // pipeline frees a slot (backpressure, never shed).
                while (pending_.size() >= config_.admission_queue) {
                    admit_pending();
                    if (pending_.size() < config_.admission_queue)
                        break;
                    drain_one(record);
                }
            } else if (config_.shed_policy == ShedPolicy::kDropOldest) {
                // The oldest queued subframe is the closest to its
                // deadline — sacrifice it for the fresh arrival.
                SubframeJob *oldest = pending_.front();
                pending_.pop_front();
                observe_shed(oldest->params.subframe_index,
                             /*expired=*/false);
                release_job(oldest);
            } else {
                // kDropNewest / kDegrade: keep the queued work.  For
                // kDegrade this is what lets jobs age toward the
                // half-deadline mark and take the cheap chain instead
                // of being refreshed out of the ring by new arrivals.
                observe_shed(params.subframe_index, /*expired=*/false);
                admit_arrival = false;
            }
        }

        if (admit_arrival) {
            const double estimate = apply_estimator(
                params, pending_.size() + executing_.size());
            input_.signals_for(params, signals_);
            SubframeJob *job = job_pool_.acquire();
            job->prepare(params, signals_, config_.receiver);
            job->t_arrival_ns = obs_now_ns();
            job->est_activity = estimate;
            pending_.push_back(job);
        }
        admit_pending();
    }

    // Drain the tail; queued subframes can still expire while the
    // pipeline catches up.
    while (!pending_.empty() || !executing_.empty()) {
        if (!executing_.empty())
            drain_one(record);
        admit_pending();
    }

    LTE_ASSERT(shed_stats_.shed + shed_stats_.completed ==
                   shed_stats_.submitted,
               "admission accounting lost a subframe");

    const auto snap = pool_->activity();
    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - run_start).count();
    record.activity = snap.activity(pool_->n_workers());
    record.total_ops = snap.ops;
    record.steals = pool_->steals();
    if (metrics_) {
        metrics_->gauge("engine.activity").set(record.activity);
        metrics_->gauge("engine.wall_seconds").set(record.wall_seconds);
        metrics_->counter("engine.steals").add(record.steals);
        if (tracer_) {
            metrics_->gauge("engine.trace_dropped")
                .set(static_cast<double>(tracer_->total_dropped()));
        }
    }
    return record;
}

RunRecord
StreamingEngine::run_offloaded(workload::ParameterModel &model,
                               std::size_t n_subframes)
{
    using clock = std::chrono::steady_clock;

    RunRecord record;
    record.cell_id = config_.receiver.cell_id;
    record.subframes.reserve(n_subframes);
    shed_stats_ = ShedStats{};
    io_lost_synced_ = 0;
    io_late_synced_ = 0;
    pool_->reset_activity();

    // Assemble the sample plane: source -> feed -> transport.  The
    // generator source runs this engine's own InputGenerator on the
    // producer thread, drawing the model in inline order; replay
    // loops a capture so overload runs outlast the recording.
    GeneratorSampleSource generator_source(input_, model);
    std::unique_ptr<io::ReplaySource> replay_source;
    io::SampleSource *source = &generator_source;
    if (config_.io.source == io::SourceKind::kReplay) {
        replay_source = std::make_unique<io::ReplaySource>(
            config_.io.replay_path, /*loop=*/true);
        source = replay_source.get();
    }
    std::unique_ptr<io::CaptureWriter> recorder;
    if (!config_.io.record_path.empty()) {
        recorder = std::make_unique<io::CaptureWriter>(
            config_.io.record_path, config_.receiver.n_antennas);
    }

    io::SampleTransport transport(config_.io.n_frames);
    transport_ = &transport;
    io::FeedConfig feed_config;
    feed_config.delta_ms = config_.delta_ms;
    feed_config.jitter_ms = config_.io.jitter_ms;
    feed_config.jitter_seed = config_.io.jitter_seed;
    feed_config.lossless = config_.deadline_ms == 0.0;
    feed_config.now_ns = [this] { return obs_now_ns(); };
    feed_config.recorder = recorder.get();
    io::SampleFeed feed(transport, *source, feed_config);

    const auto run_start = clock::now();
    feed.start(n_subframes);

    // The consumer loop: every tick resolves as exactly one of
    // consumed (-> completed or shed downstream) or lost at the
    // source, so this sum reaching n_subframes drains everything.
    while (shed_stats_.completed + shed_stats_.shed < n_subframes) {
        reap_completed(record);
        sync_io_stats(feed.stats());

        io::IqFrame *frame = transport.try_pop_ready();
        if (frame == nullptr) {
            // Nothing arrived: keep queue ages honest (expiry,
            // degrade marks) and give the pool a breath.
            admit_pending();
            std::this_thread::yield();
            continue;
        }

        ++shed_stats_.submitted;
        if (metrics_)
            submitted_counter_->add();
        if (tracer_) {
            // Ready-ring residence: produced at t_arrival, consumed
            // now.  The deadline clock has been running since the
            // producer stamp, so this span is budget already spent.
            tracer_->record(dispatch_slot(), obs::SpanKind::kIoFrame,
                            frame->t_arrival_ns, obs_now_ns(),
                            frame->params.subframe_index);
        }

        // Same admission-ring policy as the inline path; the arrival
        // is the frame instead of a freshly synthesized subframe.
        bool admit_arrival = true;
        if (pending_.size() >= config_.admission_queue) {
            if (config_.deadline_ms == 0.0) {
                // Lossless mode: hold the frame and block until the
                // pipeline frees a slot (backpressure reaches the
                // producer through free-ring exhaustion too).
                while (pending_.size() >= config_.admission_queue) {
                    admit_pending();
                    if (pending_.size() < config_.admission_queue)
                        break;
                    drain_one(record);
                }
            } else if (config_.shed_policy == ShedPolicy::kDropOldest) {
                SubframeJob *oldest = pending_.front();
                pending_.pop_front();
                observe_shed(oldest->params.subframe_index,
                             /*expired=*/false);
                release_job(oldest);
            } else {
                observe_shed(frame->params.subframe_index,
                             /*expired=*/false);
                admit_arrival = false;
            }
        }

        if (admit_arrival) {
            const double estimate = apply_estimator(
                frame->params, pending_.size() + executing_.size());
            SubframeJob *job = job_pool_.acquire();
            // Zero-copy handoff: the job reads the frame's signal
            // pointers in place; the frame recycles at release_job().
            job->prepare(frame->params, frame->signals,
                         config_.receiver);
            job->t_arrival_ns = frame->t_arrival_ns;
            job->est_activity = estimate;
            job->io_frame = frame;
            pending_.push_back(job);
        } else {
            transport.release(frame);
        }
        admit_pending();
    }

    LTE_ASSERT(pending_.empty() && executing_.empty(),
               "ticks resolved but jobs remain in flight");
    feed.stop();
    sync_io_stats(feed.stats());
    transport_ = nullptr;

    LTE_ASSERT(shed_stats_.shed + shed_stats_.completed ==
                   shed_stats_.submitted,
               "admission accounting lost a subframe");
    LTE_ASSERT(shed_stats_.submitted == n_subframes,
               "sample plane lost track of a tick");

    const auto snap = pool_->activity();
    record.wall_seconds =
        std::chrono::duration<double>(clock::now() - run_start).count();
    record.activity = snap.activity(pool_->n_workers());
    record.total_ops = snap.ops;
    record.steals = pool_->steals();
    if (metrics_) {
        metrics_->gauge("engine.activity").set(record.activity);
        metrics_->gauge("engine.wall_seconds").set(record.wall_seconds);
        metrics_->counter("engine.steals").add(record.steals);
        if (tracer_) {
            metrics_->gauge("engine.trace_dropped")
                .set(static_cast<double>(tracer_->total_dropped()));
        }
    }
    return record;
}

} // namespace lte::runtime

/**
 * @file
 * Cyclic redundancy checks used by LTE transport-channel processing
 * (3GPP TS 36.212 Sec. 5.1.1): CRC-24A for transport blocks and
 * CRC-24B for code blocks.  Bit-oriented implementation matching the
 * spec's polynomial division over GF(2).
 */
#ifndef LTE_PHY_CRC_HPP
#define LTE_PHY_CRC_HPP

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/types.hpp"

namespace lte::phy {

/** gCRC24A(D) = D^24 + D^23 + D^18 + D^17 + D^14 + D^11 + D^10 + D^7
 *  + D^6 + D^5 + D^4 + D^3 + D + 1. */
inline constexpr std::uint32_t kCrc24APoly = 0x864CFB;

/** gCRC24B(D) = D^24 + D^23 + D^6 + D^5 + D + 1. */
inline constexpr std::uint32_t kCrc24BPoly = 0x800063;

/**
 * Compute a 24-bit CRC over a bit sequence (one bit per byte, values
 * 0/1), MSB-first, zero initial state, as specified by TS 36.212.
 * Takes a view, so vectors and workspace spans both work heap-free.
 */
std::uint32_t crc24(BitView bits, std::uint32_t poly = kCrc24APoly);

/** Append the 24 CRC bits (MSB first) to a copy of @p bits. */
std::vector<std::uint8_t> crc24_attach(std::vector<std::uint8_t> bits,
                                       std::uint32_t poly = kCrc24APoly);

/**
 * @return true if @p bits (payload + 24 CRC bits) passes the check,
 * i.e. the CRC of the whole sequence is zero.
 */
bool crc24_check(BitView bits, std::uint32_t poly = kCrc24APoly);

/** Braced-list conveniences (initializer lists don't bind to spans). */
inline std::uint32_t
crc24(std::initializer_list<std::uint8_t> bits,
      std::uint32_t poly = kCrc24APoly)
{
    return crc24(BitView(bits.begin(), bits.size()), poly);
}

inline bool
crc24_check(std::initializer_list<std::uint8_t> bits,
            std::uint32_t poly = kCrc24APoly)
{
    return crc24_check(BitView(bits.begin(), bits.size()), poly);
}

} // namespace lte::phy

#endif // LTE_PHY_CRC_HPP

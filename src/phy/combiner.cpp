#include "phy/combiner.hpp"

#include "common/check.hpp"
#include "matrix/fixed_cmat.hpp"

namespace lte::phy {

CombinerWeights::CombinerWeights(std::size_t n_sc, std::size_t layers,
                                 std::size_t antennas)
{
    resize(n_sc, layers, antennas);
}

void
CombinerWeights::resize(std::size_t n_sc, std::size_t layers,
                        std::size_t antennas)
{
    n_sc_ = n_sc;
    layers_ = layers;
    antennas_ = antennas;
    w_.assign(n_sc * layers * antennas, cf32(0.0f, 0.0f));
}

cf32 &
CombinerWeights::at(std::size_t sc, std::size_t layer, std::size_t antenna)
{
    LTE_CHECK(sc < n_sc_ && layer < layers_ && antenna < antennas_,
              "weight index out of range");
    return w_[(sc * layers_ + layer) * antennas_ + antenna];
}

const cf32 &
CombinerWeights::at(std::size_t sc, std::size_t layer,
                    std::size_t antenna) const
{
    return const_cast<CombinerWeights *>(this)->at(sc, layer, antenna);
}

namespace {

/**
 * The per-subcarrier MMSE solve, shared by both entry points.  @p chan
 * is any callable (antenna, layer, sc) -> cf32.  Runs entirely on
 * fixed-capacity stack matrices: no heap traffic per subcarrier.
 */
template <typename ChanAt>
void
weights_impl(std::size_t antennas, std::size_t layers, std::size_t n_sc,
             ChanAt chan, float noise_var, CombinerWeights &out)
{
    matrix::FixedCMat h(antennas, layers);
    for (std::size_t sc = 0; sc < n_sc; ++sc) {
        for (std::size_t a = 0; a < antennas; ++a) {
            for (std::size_t l = 0; l < layers; ++l)
                h.at(a, l) = chan(a, l, sc);
        }
        const matrix::FixedCMat hh = h.hermitian();
        const matrix::FixedCMat w =
            hh.mul(h).add_scaled_identity(noise_var).inverse().mul(hh);
        for (std::size_t l = 0; l < layers; ++l) {
            for (std::size_t a = 0; a < antennas; ++a)
                out(sc, l, a) = w.at(l, a);
        }
    }
}

} // namespace

CombinerWeights
compute_combiner_weights(const std::vector<std::vector<CVec>> &channel,
                         float noise_var)
{
    LTE_CHECK(!channel.empty(), "need at least one antenna");
    const std::size_t antennas = channel.size();
    LTE_CHECK(!channel[0].empty(), "need at least one layer");
    const std::size_t layers = channel[0].size();
    const std::size_t n_sc = channel[0][0].size();
    LTE_CHECK(noise_var > 0.0f, "noise variance must be positive");
    for (const auto &ant : channel) {
        LTE_CHECK(ant.size() == layers, "ragged layer dimension");
        for (const auto &resp : ant)
            LTE_CHECK(resp.size() == n_sc, "ragged subcarrier dimension");
    }

    CombinerWeights out(n_sc, layers, antennas);
    weights_impl(
        antennas, layers, n_sc,
        [&](std::size_t a, std::size_t l, std::size_t sc) {
            return channel[a][l][sc];
        },
        noise_var, out);
    return out;
}

void
compute_combiner_weights_into(const ChannelView &channel, float noise_var,
                              CombinerWeights &out)
{
    LTE_CHECK(channel.data != nullptr && channel.antennas >= 1 &&
                  channel.layers >= 1,
              "need at least one antenna and layer");
    LTE_CHECK(noise_var > 0.0f, "noise variance must be positive");
    out.resize(channel.n_sc, channel.layers, channel.antennas);
    weights_impl(
        channel.antennas, channel.layers, channel.n_sc,
        [&](std::size_t a, std::size_t l, std::size_t sc) {
            return channel.at(a, l, sc);
        },
        noise_var, out);
}

CVec
combine_layer(const std::vector<CVec> &rx_symbol,
              const CombinerWeights &weights, std::size_t layer)
{
    LTE_CHECK(rx_symbol.size() == weights.antennas(),
              "antenna count mismatch");
    LTE_CHECK(layer < weights.layers(), "layer out of range");
    const std::size_t n_sc = weights.n_subcarriers();
    for (const auto &ant : rx_symbol)
        LTE_CHECK(ant.size() == n_sc, "subcarrier count mismatch");

    CVec out(n_sc, cf32(0.0f, 0.0f));
    for (std::size_t a = 0; a < rx_symbol.size(); ++a) {
        const CVec &y = rx_symbol[a];
        for (std::size_t sc = 0; sc < n_sc; ++sc)
            out[sc] += weights(sc, layer, a) * y[sc];
    }
    return out;
}

void
combine_layer_into(std::span<const CfView> rx_symbol,
                   const CombinerWeights &weights, std::size_t layer,
                   CfSpan out)
{
    LTE_CHECK(rx_symbol.size() == weights.antennas(),
              "antenna count mismatch");
    LTE_CHECK(layer < weights.layers(), "layer out of range");
    const std::size_t n_sc = weights.n_subcarriers();
    LTE_CHECK(out.size() == n_sc, "output length mismatch");
    for (const auto &ant : rx_symbol)
        LTE_CHECK(ant.size() == n_sc, "subcarrier count mismatch");

    for (std::size_t sc = 0; sc < n_sc; ++sc)
        out[sc] = cf32(0.0f, 0.0f);
    for (std::size_t a = 0; a < rx_symbol.size(); ++a) {
        const cf32 *y = rx_symbol[a].data();
        for (std::size_t sc = 0; sc < n_sc; ++sc)
            out[sc] += weights(sc, layer, a) * y[sc];
    }
}

} // namespace lte::phy

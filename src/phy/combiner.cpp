#include "phy/combiner.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/workspace.hpp"
#include "matrix/fixed_cmat.hpp"
#include "phy/kernel_scratch.hpp"
#include "simd/complex.hpp"

namespace lte::phy {

CombinerWeights::CombinerWeights(std::size_t n_sc, std::size_t layers,
                                 std::size_t antennas)
{
    resize(n_sc, layers, antennas);
}

void
CombinerWeights::resize(std::size_t n_sc, std::size_t layers,
                        std::size_t antennas)
{
    n_sc_ = n_sc;
    layers_ = layers;
    antennas_ = antennas;
    w_.assign(n_sc * layers * antennas, cf32(0.0f, 0.0f));
}

cf32 &
CombinerWeights::at(std::size_t sc, std::size_t layer, std::size_t antenna)
{
    LTE_CHECK(sc < n_sc_ && layer < layers_ && antenna < antennas_,
              "weight index out of range");
    return (*this)(sc, layer, antenna);
}

const cf32 &
CombinerWeights::at(std::size_t sc, std::size_t layer,
                    std::size_t antenna) const
{
    return const_cast<CombinerWeights *>(this)->at(sc, layer, antenna);
}

namespace {

/**
 * The per-subcarrier MMSE solve, shared by both entry points.  @p chan
 * is any callable (antenna, layer, sc) -> cf32.  Runs entirely on
 * fixed-capacity stack matrices: no heap traffic per subcarrier.
 */
template <typename ChanAt>
void
weights_impl(std::size_t antennas, std::size_t layers, std::size_t n_sc,
             ChanAt chan, float noise_var, CombinerWeights &out)
{
    matrix::FixedCMat h(antennas, layers);
    for (std::size_t sc = 0; sc < n_sc; ++sc) {
        for (std::size_t a = 0; a < antennas; ++a) {
            for (std::size_t l = 0; l < layers; ++l)
                h.at(a, l) = chan(a, l, sc);
        }
        const matrix::FixedCMat hh = h.hermitian();
        const matrix::FixedCMat w =
            hh.mul(h).add_scaled_identity(noise_var).inverse().mul(hh);
        for (std::size_t l = 0; l < layers; ++l) {
            for (std::size_t a = 0; a < antennas; ++a)
                out(sc, l, a) = w.at(l, a);
        }
    }
}

#if defined(LTE_SIMD_ENABLED)

/** Subcarriers per Gram tile: multiple of every backend's kLanes, and
 *  small enough that the split-complex tile (kMaxGramPairs planes)
 *  fits comfortably inside the per-thread kernel scratch. */
constexpr std::size_t kWeightsTile = 256;

/** Upper-triangle entry count of a kMaxLayers x kMaxLayers Gram. */
constexpr std::size_t kMaxGramPairs = kMaxLayers * (kMaxLayers + 1) / 2;

/**
 * Single-layer MMSE weights, fully vectorized: the Gram is the scalar
 * sum_a |h_a|^2, so weights reduce to conj(h) / (gram + noise_var)
 * with no matrix algebra at all.
 */
void
weights_simd_single_layer(const ChannelView &ch, float noise_var,
                          CombinerWeights &out)
{
    const std::size_t n = ch.n_sc;
    const std::size_t antennas = ch.antennas;
    const simd::vf nv = simd::vf::set1(noise_var);
    const simd::vf one = simd::vf::set1(1.0f);

    std::size_t sc = 0;
    for (; sc + simd::kLanes <= n; sc += simd::kLanes) {
        simd::vf gram = simd::vf::zero();
        for (std::size_t a = 0; a < antennas; ++a) {
            const simd::cvf h = simd::cload(&ch.at(a, 0, sc));
            gram = gram + simd::cnorm(h);
        }
        const simd::vf inv = one / (gram + nv);
        for (std::size_t a = 0; a < antennas; ++a) {
            const simd::cvf h = simd::cload(&ch.at(a, 0, sc));
            simd::cstore(out.plane(0, a) + sc,
                         {h.re * inv, simd::vneg(h.im) * inv});
        }
    }
    for (; sc < n; ++sc) {
        float gram = 0.0f;
        for (std::size_t a = 0; a < antennas; ++a)
            gram += std::norm(ch.at(a, 0, sc));
        const float inv = 1.0f / (gram + noise_var);
        for (std::size_t a = 0; a < antennas; ++a)
            out.plane(0, a)[sc] = std::conj(ch.at(a, 0, sc)) * inv;
    }
}

/**
 * Multi-layer MMSE weights: the Gram accumulation G = H^H H runs
 * vectorized across subcarriers into a split-complex tile carved from
 * the per-thread kernel scratch (upper triangle only; G is Hermitian),
 * then each subcarrier's add-noise / invert / W = G^-1 H^H solve runs
 * on the stack matrices exactly like the scalar twin.
 */
void
weights_simd_tiled(const ChannelView &ch, float noise_var,
                   CombinerWeights &out)
{
    const std::size_t layers = ch.layers;
    const std::size_t antennas = ch.antennas;
    const std::size_t n_pairs = layers * (layers + 1) / 2;
    const SplitSpan gram =
        as_split(kernel_scratch().first(n_pairs * kWeightsTile));

    for (std::size_t base = 0; base < ch.n_sc; base += kWeightsTile) {
        const std::size_t cnt =
            std::min(kWeightsTile, ch.n_sc - base);

        // Vectorized Gram: one (r, c) upper-triangle plane at a time,
        // each a conj-multiply-accumulate streamed across subcarriers.
        std::size_t idx = 0;
        for (std::size_t r = 0; r < layers; ++r) {
            for (std::size_t c = r; c < layers; ++c, ++idx) {
                float *gr = gram.re.data() + idx * kWeightsTile;
                float *gi = gram.im.data() + idx * kWeightsTile;
                std::size_t j = 0;
                for (; j + simd::kLanes <= cnt; j += simd::kLanes) {
                    simd::cvf acc = simd::cvf::zero();
                    for (std::size_t a = 0; a < antennas; ++a) {
                        const simd::cvf hr =
                            simd::cload(&ch.at(a, r, base + j));
                        const simd::cvf hc =
                            simd::cload(&ch.at(a, c, base + j));
                        // conj(h_r) * h_c
                        acc = acc + simd::cmul_conj(hc, hr);
                    }
                    acc.re.store(gr + j);
                    acc.im.store(gi + j);
                }
                for (; j < cnt; ++j) {
                    cf32 acc(0.0f, 0.0f);
                    for (std::size_t a = 0; a < antennas; ++a) {
                        acc += std::conj(ch.at(a, r, base + j)) *
                               ch.at(a, c, base + j);
                    }
                    gr[j] = acc.real();
                    gi[j] = acc.imag();
                }
            }
        }

        // Per-subcarrier solve on the tiled Gram values.
        for (std::size_t j = 0; j < cnt; ++j) {
            const std::size_t sc = base + j;
            matrix::FixedCMat g(layers, layers);
            idx = 0;
            for (std::size_t r = 0; r < layers; ++r) {
                for (std::size_t c = r; c < layers; ++c, ++idx) {
                    const cf32 v(gram.re[idx * kWeightsTile + j],
                                 gram.im[idx * kWeightsTile + j]);
                    g.at(r, c) = v;
                    if (c != r)
                        g.at(c, r) = std::conj(v);
                }
            }
            const matrix::FixedCMat inv =
                g.add_scaled_identity(noise_var).inverse();
            for (std::size_t l = 0; l < layers; ++l) {
                for (std::size_t a = 0; a < antennas; ++a) {
                    cf32 acc(0.0f, 0.0f);
                    for (std::size_t l2 = 0; l2 < layers; ++l2) {
                        acc += inv.at(l, l2) *
                               std::conj(ch.at(a, l2, sc));
                    }
                    out(sc, l, a) = acc;
                }
            }
        }
    }
}

#endif // LTE_SIMD_ENABLED

void
check_channel_view(const ChannelView &channel, float noise_var)
{
    LTE_CHECK(channel.data != nullptr && channel.antennas >= 1 &&
                  channel.layers >= 1,
              "need at least one antenna and layer");
    LTE_CHECK(noise_var > 0.0f, "noise variance must be positive");
}

} // namespace

CombinerWeights
compute_combiner_weights(const std::vector<std::vector<CVec>> &channel,
                         float noise_var)
{
    LTE_CHECK(!channel.empty(), "need at least one antenna");
    const std::size_t antennas = channel.size();
    LTE_CHECK(!channel[0].empty(), "need at least one layer");
    const std::size_t layers = channel[0].size();
    const std::size_t n_sc = channel[0][0].size();
    LTE_CHECK(noise_var > 0.0f, "noise variance must be positive");
    for (const auto &ant : channel) {
        LTE_CHECK(ant.size() == layers, "ragged layer dimension");
        for (const auto &resp : ant)
            LTE_CHECK(resp.size() == n_sc, "ragged subcarrier dimension");
    }

    // Cold path: flatten into the contiguous layout the hot entry
    // point wants, then share its implementation (and SIMD path).
    CVec flat(antennas * layers * n_sc);
    for (std::size_t a = 0; a < antennas; ++a) {
        for (std::size_t l = 0; l < layers; ++l) {
            std::copy(channel[a][l].begin(), channel[a][l].end(),
                      flat.begin() +
                          static_cast<std::ptrdiff_t>(
                              (a * layers + l) * n_sc));
        }
    }
    const ChannelView view{flat.data(), antennas, layers, n_sc};
    CombinerWeights out;
    compute_combiner_weights_into(view, noise_var, out);
    return out;
}

void
compute_combiner_weights_scalar_into(const ChannelView &channel,
                                     float noise_var,
                                     CombinerWeights &out)
{
    check_channel_view(channel, noise_var);
    out.resize(channel.n_sc, channel.layers, channel.antennas);
    weights_impl(
        channel.antennas, channel.layers, channel.n_sc,
        [&](std::size_t a, std::size_t l, std::size_t sc) {
            return channel.at(a, l, sc);
        },
        noise_var, out);
}

void
compute_mrc_weights_into(const ChannelView &channel, float noise_var,
                         CombinerWeights &out)
{
    check_channel_view(channel, noise_var);
    out.resize(channel.n_sc, channel.layers, channel.antennas);
    // Per-layer matched filter: W(sc,l,a) = H*(a,l,sc) / (||H_l||^2 +
    // sigma^2).  No layers x layers inverse, so inter-layer
    // interference is ignored — the deliberate accuracy trade of the
    // streaming engine's degrade shed policy.  Plain scalar loops: the
    // point of this path is to be cheap, not vectorised.
    for (std::size_t l = 0; l < channel.layers; ++l) {
        for (std::size_t sc = 0; sc < channel.n_sc; ++sc) {
            float gain = 0.0f;
            for (std::size_t a = 0; a < channel.antennas; ++a) {
                const cf32 h = channel.at(a, l, sc);
                gain += h.real() * h.real() + h.imag() * h.imag();
            }
            const float denom = gain + noise_var;
            for (std::size_t a = 0; a < channel.antennas; ++a)
                out(sc, l, a) = std::conj(channel.at(a, l, sc)) / denom;
        }
    }
}

void
compute_combiner_weights_into(const ChannelView &channel, float noise_var,
                              CombinerWeights &out)
{
#if defined(LTE_SIMD_ENABLED)
    check_channel_view(channel, noise_var);
    LTE_CHECK(channel.antennas <= matrix::FixedCMat::kMaxDim &&
                  channel.layers <= matrix::FixedCMat::kMaxDim,
              "channel dimensions exceed FixedCMat capacity");
    out.resize(channel.n_sc, channel.layers, channel.antennas);
    if (channel.layers == 1)
        weights_simd_single_layer(channel, noise_var, out);
    else
        weights_simd_tiled(channel, noise_var, out);
#else
    compute_combiner_weights_scalar_into(channel, noise_var, out);
#endif
}

namespace {

void
check_combine_args(std::span<const CfView> rx_symbol,
                   const CombinerWeights &weights, std::size_t layer,
                   CfSpan out)
{
    LTE_CHECK(rx_symbol.size() == weights.antennas(),
              "antenna count mismatch");
    LTE_CHECK(layer < weights.layers(), "layer out of range");
    const std::size_t n_sc = weights.n_subcarriers();
    LTE_CHECK(out.size() == n_sc, "output length mismatch");
    for (const auto &ant : rx_symbol)
        LTE_CHECK(ant.size() == n_sc, "subcarrier count mismatch");
}

} // namespace

CVec
combine_layer(const std::vector<CVec> &rx_symbol,
              const CombinerWeights &weights, std::size_t layer)
{
    LTE_CHECK(rx_symbol.size() == weights.antennas(),
              "antenna count mismatch");
    LTE_CHECK(layer < weights.layers(), "layer out of range");
    const std::size_t n_sc = weights.n_subcarriers();
    for (const auto &ant : rx_symbol)
        LTE_CHECK(ant.size() == n_sc, "subcarrier count mismatch");

    CVec out(n_sc, cf32(0.0f, 0.0f));
    for (std::size_t a = 0; a < rx_symbol.size(); ++a) {
        const CVec &y = rx_symbol[a];
        for (std::size_t sc = 0; sc < n_sc; ++sc)
            out[sc] += weights(sc, layer, a) * y[sc];
    }
    return out;
}

void
combine_layer_scalar_into(std::span<const CfView> rx_symbol,
                          const CombinerWeights &weights,
                          std::size_t layer, CfSpan out)
{
    check_combine_args(rx_symbol, weights, layer, out);
    const std::size_t n_sc = weights.n_subcarriers();

    for (std::size_t sc = 0; sc < n_sc; ++sc)
        out[sc] = cf32(0.0f, 0.0f);
    for (std::size_t a = 0; a < rx_symbol.size(); ++a) {
        const cf32 *y = rx_symbol[a].data();
        for (std::size_t sc = 0; sc < n_sc; ++sc)
            out[sc] += weights(sc, layer, a) * y[sc];
    }
}

void
combine_layer_into(std::span<const CfView> rx_symbol,
                   const CombinerWeights &weights, std::size_t layer,
                   CfSpan out)
{
#if defined(LTE_SIMD_ENABLED)
    check_combine_args(rx_symbol, weights, layer, out);
    const std::size_t n_sc = weights.n_subcarriers();
    const std::size_t antennas = rx_symbol.size();

    std::size_t sc = 0;
    for (; sc + simd::kLanes <= n_sc; sc += simd::kLanes) {
        simd::cvf acc = simd::cvf::zero();
        for (std::size_t a = 0; a < antennas; ++a) {
            const simd::cvf w =
                simd::cload(weights.plane(layer, a) + sc);
            const simd::cvf y = simd::cload(rx_symbol[a].data() + sc);
            acc = acc + simd::cmul(w, y);
        }
        simd::cstore(out.data() + sc, acc);
    }
    for (; sc < n_sc; ++sc) {
        cf32 acc(0.0f, 0.0f);
        for (std::size_t a = 0; a < antennas; ++a)
            acc += weights(sc, layer, a) * rx_symbol[a][sc];
        out[sc] = acc;
    }
#else
    combine_layer_scalar_into(rx_symbol, weights, layer, out);
#endif
}

void
apply_mmse_bias_scalar_into(const ChannelView &channel,
                            const CombinerWeights &weights,
                            std::size_t layer, CfSpan combined)
{
    LTE_CHECK(combined.size() == weights.n_subcarriers(),
              "combined length mismatch");
    for (std::size_t sc = 0; sc < combined.size(); ++sc) {
        cf32 bias(0.0f, 0.0f);
        for (std::size_t a = 0; a < channel.antennas; ++a)
            bias += weights(sc, layer, a) * channel.at(a, layer, sc);
        if (std::norm(bias) > 1e-12f)
            combined[sc] /= bias;
    }
}

void
apply_mmse_bias_into(const ChannelView &channel,
                     const CombinerWeights &weights, std::size_t layer,
                     CfSpan combined)
{
#if defined(LTE_SIMD_ENABLED)
    LTE_CHECK(combined.size() == weights.n_subcarriers(),
              "combined length mismatch");
    const std::size_t n_sc = combined.size();
    const std::size_t antennas = channel.antennas;
    const simd::vf threshold = simd::vf::set1(1e-12f);
    const simd::vf tiny = simd::vf::set1(1e-30f);
    const simd::vf one = simd::vf::set1(1.0f);

    std::size_t sc = 0;
    for (; sc + simd::kLanes <= n_sc; sc += simd::kLanes) {
        simd::cvf bias = simd::cvf::zero();
        for (std::size_t a = 0; a < antennas; ++a) {
            const simd::cvf w =
                simd::cload(weights.plane(layer, a) + sc);
            const simd::cvf h =
                simd::cload(&channel.at(a, layer, sc));
            bias = bias + simd::cmul(w, h);
        }
        const simd::cvf c = simd::cload(combined.data() + sc);
        const simd::vf n2 = simd::cnorm(bias);
        const simd::vf mask = simd::vgt(n2, threshold);
        // c / bias = c * conj(bias) / |bias|^2; the vmax keeps the
        // masked-off lanes away from a 0/0 NaN.
        const simd::vf inv = one / simd::vmax(n2, tiny);
        const simd::cvf corrected =
            simd::cscale(simd::cmul_conj(c, bias), inv);
        simd::cstore(combined.data() + sc,
                     {simd::vselect(mask, corrected.re, c.re),
                      simd::vselect(mask, corrected.im, c.im)});
    }
    for (; sc < n_sc; ++sc) {
        cf32 bias(0.0f, 0.0f);
        for (std::size_t a = 0; a < antennas; ++a)
            bias += weights(sc, layer, a) * channel.at(a, layer, sc);
        if (std::norm(bias) > 1e-12f)
            combined[sc] /= bias;
    }
#else
    apply_mmse_bias_scalar_into(channel, weights, layer, combined);
#endif
}

} // namespace lte::phy

#include "phy/interleaver.hpp"

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace lte::phy {

void
interleave_permutation_into(std::size_t n, std::size_t columns,
                            std::span<std::size_t> out)
{
    LTE_CHECK(columns >= 1, "need at least one column");
    LTE_CHECK(out.size() == n, "permutation buffer length mismatch");
    const std::size_t rows = ceil_div(n, columns);
    // Read column-wise from a row-wise-written rows x columns matrix,
    // skipping the padding cells of a ragged final row.
    std::size_t i = 0;
    for (std::size_t c = 0; c < columns; ++c) {
        for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t src = r * columns + c;
            if (src < n)
                out[i++] = src;
        }
    }
}

std::vector<std::size_t>
interleave_permutation(std::size_t n, std::size_t columns)
{
    std::vector<std::size_t> perm(n);
    interleave_permutation_into(n, columns, perm);
    return perm;
}

void
deinterleave_into(CfView in, std::span<const std::size_t> perm, CfSpan out)
{
    LTE_CHECK(in.size() == perm.size() && out.size() == perm.size(),
              "deinterleave length mismatch");
    for (std::size_t i = 0; i < in.size(); ++i)
        out[perm[i]] = in[i];
}

CVec
interleave(const CVec &in, std::size_t columns)
{
    const auto perm = interleave_permutation(in.size(), columns);
    CVec out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = in[perm[i]];
    return out;
}

CVec
deinterleave(const CVec &in, std::size_t columns)
{
    const auto perm = interleave_permutation(in.size(), columns);
    CVec out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[perm[i]] = in[i];
    return out;
}

} // namespace lte::phy

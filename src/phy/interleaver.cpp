#include "phy/interleaver.hpp"

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace lte::phy {

std::vector<std::size_t>
interleave_permutation(std::size_t n, std::size_t columns)
{
    LTE_CHECK(columns >= 1, "need at least one column");
    const std::size_t rows = ceil_div(n, columns);
    std::vector<std::size_t> perm;
    perm.reserve(n);
    // Read column-wise from a row-wise-written rows x columns matrix,
    // skipping the padding cells of a ragged final row.
    for (std::size_t c = 0; c < columns; ++c) {
        for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t src = r * columns + c;
            if (src < n)
                perm.push_back(src);
        }
    }
    return perm;
}

CVec
interleave(const CVec &in, std::size_t columns)
{
    const auto perm = interleave_permutation(in.size(), columns);
    CVec out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = in[perm[i]];
    return out;
}

CVec
deinterleave(const CVec &in, std::size_t columns)
{
    const auto perm = interleave_permutation(in.size(), columns);
    CVec out(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[perm[i]] = in[i];
    return out;
}

} // namespace lte::phy

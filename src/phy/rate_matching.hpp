/**
 * @file
 * Turbo-code rate matching (3GPP TS 36.212 Sec. 5.1.4.1): the three
 * coded streams are sub-block interleaved (32 columns, the spec's
 * column permutation), interlaced into a circular buffer, and the
 * transmitter reads any number of bits starting at a redundancy-
 * version offset.  The soft inverse accumulates received LLRs back
 * into encoder-layout positions, which gives HARQ chase/IR combining
 * for free: repeated transmissions of the same bit simply add.
 *
 * Deviation (documented in DESIGN.md): the spec distributes the
 * twelve trellis-termination bits across the three streams in an
 * interleaved order; we use a fixed assignment consistent between
 * select() and accumulate(), which is sufficient for a self-contained
 * codec (no over-the-air interop is claimed).
 */
#ifndef LTE_PHY_RATE_MATCHING_HPP
#define LTE_PHY_RATE_MATCHING_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "phy/turbo.hpp"

namespace lte::phy {

class RateMatcher
{
  public:
    /** Build the circular-buffer permutation for @p k_info info bits
     *  (a valid turbo block size). */
    explicit RateMatcher(std::size_t k_info);

    std::size_t k_info() const { return k_; }

    /** Circular-buffer length including NULL padding. */
    std::size_t buffer_size() const { return cb_.size(); }

    /** Coded bits available (3 * k + 12, the turbo_encode output). */
    std::size_t coded_size() const { return turbo_encoded_length(k_); }

    /**
     * Select @p e_bits transmission bits for redundancy version
     * @p rv (0..3) from a turbo_encode() output.  Wraps around the
     * circular buffer, so e_bits may exceed coded_size() (repetition)
     * or be smaller (puncturing).
     */
    std::vector<std::uint8_t>
    select(BitView turbo_coded, std::size_t e_bits, unsigned rv) const;

    /** A zeroed soft buffer in turbo_decode() layout. */
    std::vector<Llr> empty_soft_buffer() const;

    /**
     * Soft inverse of select(): add the received LLRs into
     * @p soft_buffer (turbo_decode layout).  Calling repeatedly with
     * different redundancy versions implements HARQ combining.
     * View parameters, so vectors and workspace spans both work.
     */
    void accumulate(LlrSpan soft_buffer, LlrView e_llrs,
                    unsigned rv) const;

    /** Start offset of a redundancy version in the circular buffer. */
    std::size_t rv_offset(unsigned rv) const;

  private:
    std::size_t k_;
    std::size_t rows_;
    /** Circular-buffer position -> index into the turbo_encode()
     *  layout, or -1 for a NULL padding position. */
    std::vector<std::int32_t> cb_;
};

} // namespace lte::phy

#endif // LTE_PHY_RATE_MATCHING_HPP

#include "phy/params.hpp"

#include <numeric>

#include "common/check.hpp"

namespace lte::phy {

void
UserParams::validate() const
{
    LTE_CHECK(prb >= 2 && prb <= kMaxPrbPerSubframe,
              "a user needs 2..200 PRBs");
    LTE_CHECK(layers >= 1 && layers <= kMaxLayers, "layers must be 1..4");
    LTE_CHECK(mod == Modulation::kQpsk || mod == Modulation::k16Qam ||
              mod == Modulation::k64Qam, "unknown modulation");
}

std::uint32_t
SubframeParams::total_prb() const
{
    return std::accumulate(users.begin(), users.end(), std::uint32_t{0},
                           [](std::uint32_t acc, const UserParams &u) {
                               return acc + u.prb;
                           });
}

void
SubframeParams::validate() const
{
    LTE_CHECK(cell_id >= 1 && cell_id <= 511,
              "cell id must be 1..511 (9 scrambler bits)");
    LTE_CHECK(users.size() <= kMaxUsersPerSubframe,
              "at most 10 users per subframe");
    for (const auto &u : users)
        u.validate();
}

std::size_t
capacity_bits(const UserParams &params)
{
    std::size_t bits = 0;
    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        bits += kDataSymbolsPerSlot * params.sc_in_slot(slot) *
                params.layers * bits_per_symbol(params.mod);
    }
    return bits;
}

std::size_t
turbo_info_bits(std::size_t capacity)
{
    LTE_CHECK(capacity >= 3 * 8 + 12,
              "allocation too small for a turbo block");
    std::size_t k = (capacity - 12) / 3;
    k &= ~std::size_t{7}; // round down to the spec's multiple-of-8 grid
    return k;
}

void
ReceiverConfig::validate() const
{
    LTE_CHECK(n_antennas >= 1 && n_antennas <= kMaxRxAntennas,
              "antennas must be 1..4");
    LTE_CHECK(cell_id >= 1 && cell_id <= 511,
              "cell id must be 1..511 (9 scrambler bits)");
    LTE_CHECK(window_fraction > 0.0 && window_fraction <= 1.0,
              "window fraction must be in (0, 1]");
    LTE_CHECK(default_noise_var > 0.0f, "noise variance must be positive");
    LTE_CHECK(turbo_iterations >= 1, "need at least one turbo iteration");
    LTE_CHECK(turbo_reduced_iterations >= 1 &&
                  turbo_reduced_iterations <= turbo_iterations,
              "reduced iteration budget must be 1..turbo_iterations");
    LTE_CHECK(decode_sample_rate >= 0.0 && decode_sample_rate <= 1.0,
              "decode sample rate must be in [0, 1]");
}

} // namespace lte::phy

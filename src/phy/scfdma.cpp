#include "phy/scfdma.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "fft/fft.hpp"

namespace lte::phy {

void
ScFdmaConfig::validate() const
{
    LTE_CHECK(n_fft >= 128 && (n_fft & (n_fft - 1)) == 0,
              "carrier FFT size must be a power of two >= 128");
    LTE_CHECK(n_used >= 1 && n_used < n_fft,
              "used band must fit inside the carrier");
}

std::size_t
ScFdmaConfig::cp_length(std::size_t symbol_in_slot) const
{
    LTE_CHECK(symbol_in_slot < kSymbolsPerSlot, "symbol out of range");
    const std::size_t base = symbol_in_slot == 0 ? 160 : 144;
    return base * n_fft / 2048;
}

std::size_t
ScFdmaConfig::samples_per_slot() const
{
    std::size_t total = 0;
    for (std::size_t s = 0; s < kSymbolsPerSlot; ++s)
        total += n_fft + cp_length(s);
    return total;
}

namespace {

/**
 * Carrier bin of used-band index u: the used band straddles DC with
 * the upper half on positive frequencies (bins 1..) and the lower
 * half wrapped to the top of the FFT order; DC itself is unused.
 */
std::size_t
used_to_bin(std::size_t u, const ScFdmaConfig &cfg)
{
    const std::size_t half = cfg.n_used / 2;
    if (u >= half)
        return u - half + 1; // positive frequencies, skipping DC
    return cfg.n_fft - half + u; // negative frequencies
}

} // namespace

CVec
map_to_carrier(const CVec &alloc, std::size_t start_sc,
               const ScFdmaConfig &cfg)
{
    cfg.validate();
    LTE_CHECK(start_sc + alloc.size() <= cfg.n_used,
              "allocation exceeds the used band");
    CVec carrier(cfg.n_fft, cf32(0.0f, 0.0f));
    for (std::size_t k = 0; k < alloc.size(); ++k)
        carrier[used_to_bin(start_sc + k, cfg)] = alloc[k];
    return carrier;
}

CVec
extract_from_carrier(const CVec &carrier, std::size_t start_sc,
                     std::size_t alloc_size, const ScFdmaConfig &cfg)
{
    cfg.validate();
    LTE_CHECK(carrier.size() == cfg.n_fft, "carrier size mismatch");
    LTE_CHECK(start_sc + alloc_size <= cfg.n_used,
              "allocation exceeds the used band");
    CVec alloc(alloc_size);
    for (std::size_t k = 0; k < alloc_size; ++k)
        alloc[k] = carrier[used_to_bin(start_sc + k, cfg)];
    return alloc;
}

CVec
scfdma_modulate(const CVec &carrier, std::size_t symbol_in_slot,
                const ScFdmaConfig &cfg)
{
    cfg.validate();
    LTE_CHECK(carrier.size() == cfg.n_fft, "carrier size mismatch");

    CVec time(cfg.n_fft);
    fft::FftCache::instance().get(cfg.n_fft)->inverse(carrier.data(),
                                                      time.data());
    // Unitary scaling so energy is preserved across the pair.
    const float scale = std::sqrt(static_cast<float>(cfg.n_fft));
    for (auto &v : time)
        v *= scale;

    const std::size_t cp = cfg.cp_length(symbol_in_slot);
    CVec out;
    out.reserve(cp + cfg.n_fft);
    out.insert(out.end(), time.end() - static_cast<std::ptrdiff_t>(cp),
               time.end());
    out.insert(out.end(), time.begin(), time.end());
    return out;
}

CVec
scfdma_demodulate(const CVec &time, std::size_t symbol_in_slot,
                  const ScFdmaConfig &cfg)
{
    cfg.validate();
    const std::size_t cp = cfg.cp_length(symbol_in_slot);
    LTE_CHECK(time.size() == cp + cfg.n_fft,
              "time-domain symbol length mismatch");

    CVec body(time.begin() + static_cast<std::ptrdiff_t>(cp),
              time.end());
    CVec carrier(cfg.n_fft);
    fft::FftCache::instance().get(cfg.n_fft)->forward(body.data(),
                                                      carrier.data());
    const float scale = 1.0f / std::sqrt(static_cast<float>(cfg.n_fft));
    for (auto &v : carrier)
        v *= scale;
    return carrier;
}

} // namespace lte::phy

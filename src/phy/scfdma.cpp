#include "phy/scfdma.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "fft/fft.hpp"

namespace lte::phy {

void
ScFdmaConfig::validate() const
{
    LTE_CHECK(n_fft >= 128 && (n_fft & (n_fft - 1)) == 0,
              "carrier FFT size must be a power of two >= 128");
    LTE_CHECK(n_used >= 1 && n_used < n_fft,
              "used band must fit inside the carrier");
}

std::size_t
ScFdmaConfig::cp_length(std::size_t symbol_in_slot) const
{
    LTE_CHECK(symbol_in_slot < kSymbolsPerSlot, "symbol out of range");
    const std::size_t base = symbol_in_slot == 0 ? 160 : 144;
    return base * n_fft / 2048;
}

std::size_t
ScFdmaConfig::samples_per_slot() const
{
    std::size_t total = 0;
    for (std::size_t s = 0; s < kSymbolsPerSlot; ++s)
        total += n_fft + cp_length(s);
    return total;
}

namespace {

/**
 * Carrier bin of used-band index u: the used band straddles DC with
 * the upper half on positive frequencies (bins 1..) and the lower
 * half wrapped to the top of the FFT order; DC itself is unused.
 */
std::size_t
used_to_bin(std::size_t u, const ScFdmaConfig &cfg)
{
    const std::size_t half = cfg.n_used / 2;
    if (u >= half)
        return u - half + 1; // positive frequencies, skipping DC
    return cfg.n_fft - half + u; // negative frequencies
}

} // namespace

void
map_to_carrier_into(CfView alloc, std::size_t start_sc,
                    const ScFdmaConfig &cfg, CfSpan carrier)
{
    cfg.validate();
    LTE_CHECK(carrier.size() == cfg.n_fft, "carrier size mismatch");
    LTE_CHECK(start_sc + alloc.size() <= cfg.n_used,
              "allocation exceeds the used band");
    for (auto &v : carrier)
        v = cf32(0.0f, 0.0f);
    for (std::size_t k = 0; k < alloc.size(); ++k)
        carrier[used_to_bin(start_sc + k, cfg)] = alloc[k];
}

CVec
map_to_carrier(const CVec &alloc, std::size_t start_sc,
               const ScFdmaConfig &cfg)
{
    cfg.validate();
    CVec carrier(cfg.n_fft);
    map_to_carrier_into(alloc, start_sc, cfg, carrier);
    return carrier;
}

void
extract_from_carrier_into(CfView carrier, std::size_t start_sc,
                          const ScFdmaConfig &cfg, CfSpan alloc)
{
    cfg.validate();
    LTE_CHECK(carrier.size() == cfg.n_fft, "carrier size mismatch");
    LTE_CHECK(start_sc + alloc.size() <= cfg.n_used,
              "allocation exceeds the used band");
    for (std::size_t k = 0; k < alloc.size(); ++k)
        alloc[k] = carrier[used_to_bin(start_sc + k, cfg)];
}

CVec
extract_from_carrier(const CVec &carrier, std::size_t start_sc,
                     std::size_t alloc_size, const ScFdmaConfig &cfg)
{
    cfg.validate();
    CVec alloc(alloc_size);
    extract_from_carrier_into(carrier, start_sc, cfg, alloc);
    return alloc;
}

void
scfdma_modulate_into(CfView carrier, std::size_t symbol_in_slot,
                     const ScFdmaConfig &cfg, CfSpan out)
{
    cfg.validate();
    LTE_CHECK(carrier.size() == cfg.n_fft, "carrier size mismatch");
    const std::size_t cp = cfg.cp_length(symbol_in_slot);
    LTE_CHECK(out.size() == cp + cfg.n_fft,
              "output length mismatch");

    // IFFT the body directly into place after the CP gap (the carrier
    // FFT size is a power of two, so no plan scratch is needed
    // out-of-place), then copy the tail forward as the cyclic prefix.
    const CfSpan time = out.subspan(cp, cfg.n_fft);
    fft::FftCache::instance().plan(cfg.n_fft).inverse(
        carrier.data(), time.data(), CfSpan{});
    // Unitary scaling so energy is preserved across the pair.
    const float scale = std::sqrt(static_cast<float>(cfg.n_fft));
    for (auto &v : time)
        v *= scale;
    for (std::size_t k = 0; k < cp; ++k)
        out[k] = time[cfg.n_fft - cp + k];
}

CVec
scfdma_modulate(const CVec &carrier, std::size_t symbol_in_slot,
                const ScFdmaConfig &cfg)
{
    cfg.validate();
    CVec out(cfg.cp_length(symbol_in_slot) + cfg.n_fft);
    scfdma_modulate_into(carrier, symbol_in_slot, cfg, out);
    return out;
}

void
scfdma_demodulate_into(CfView time, std::size_t symbol_in_slot,
                       const ScFdmaConfig &cfg, CfSpan carrier)
{
    cfg.validate();
    const std::size_t cp = cfg.cp_length(symbol_in_slot);
    LTE_CHECK(time.size() == cp + cfg.n_fft,
              "time-domain symbol length mismatch");
    LTE_CHECK(carrier.size() == cfg.n_fft, "carrier size mismatch");

    fft::FftCache::instance().plan(cfg.n_fft).forward(
        time.data() + cp, carrier.data(), CfSpan{});
    const float scale = 1.0f / std::sqrt(static_cast<float>(cfg.n_fft));
    for (auto &v : carrier)
        v *= scale;
}

CVec
scfdma_demodulate(const CVec &time, std::size_t symbol_in_slot,
                  const ScFdmaConfig &cfg)
{
    cfg.validate();
    CVec carrier(cfg.n_fft);
    scfdma_demodulate_into(time, symbol_in_slot, cfg, carrier);
    return carrier;
}

} // namespace lte::phy

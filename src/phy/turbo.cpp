#include "phy/turbo.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "phy/modulation.hpp"

namespace lte::phy {

namespace {

/** 8-state RSC trellis: g0 = 1 + D^2 + D^3 (feedback),
 *  g1 = 1 + D + D^3 (parity). State = (r1, r2, r3), r1 most recent. */
struct Trellis
{
    static constexpr int kStates = 8;

    /** Feedback-adjusted register input for info bit c in state s. */
    static int
    reg_input(int s, int c)
    {
        const int r2 = (s >> 1) & 1;
        const int r3 = (s >> 2) & 1;
        return c ^ r2 ^ r3;
    }

    static int
    parity(int s, int w)
    {
        const int r1 = s & 1;
        const int r3 = (s >> 2) & 1;
        return w ^ r1 ^ r3;
    }

};

int
rsc_step(int &state, int c, int &parity_out)
{
    const int w = Trellis::reg_input(state, c);
    parity_out = Trellis::parity(state, w);
    state = ((state << 1) | w) & 0x7;
    return w;
}

/** Tail input that forces the feedback-adjusted register input to 0. */
int
tail_bit(int state)
{
    const int r2 = (state >> 1) & 1;
    const int r3 = (state >> 2) & 1;
    return r2 ^ r3;
}

std::uint64_t
gcd_u64(std::uint64_t a, std::uint64_t b)
{
    while (b) {
        const std::uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/** Check that pi(i) = (f1*i + f2*i^2) mod k is a bijection. */
bool
qpp_is_bijection(std::size_t k, std::uint64_t f1, std::uint64_t f2,
                 std::vector<std::size_t> &perm)
{
    std::vector<bool> hit(k, false);
    perm.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
        const std::uint64_t idx =
            (f1 * i % k + f2 % k * (i * i % k)) % k;
        if (hit[idx])
            return false;
        hit[idx] = true;
        perm[i] = static_cast<std::size_t>(idx);
    }
    return true;
}

/**
 * Minimum circular distance between the images of adjacent inputs —
 * a key turbo-interleaver quality metric: low spread lets short error
 * bursts survive both constituent decoders.
 */
std::size_t
qpp_spread(std::size_t k, const std::vector<std::size_t> &perm)
{
    std::size_t spread = k;
    for (std::size_t i = 0; i + 1 < k; ++i) {
        const std::size_t a = perm[i], b = perm[i + 1];
        const std::size_t d = a > b ? a - b : b - a;
        spread = std::min(spread, std::min(d, k - d));
    }
    return spread;
}

constexpr float kNegInf = -1e30f;

/** max-log max* operation. */
inline float
maxstar(float a, float b)
{
    return std::max(a, b);
}

/**
 * One max-log-MAP (BCJR) pass over a terminated RSC code.
 *
 * @param sys  systematic channel+apriori LLRs (positive => bit 0)
 * @param par  parity channel LLRs
 * @param tail_sys 3 tail systematic LLRs
 * @param tail_par 3 tail parity LLRs
 * @return a-posteriori LLR per info bit
 */
std::vector<float>
map_decode(const std::vector<float> &sys, const std::vector<float> &par,
           const std::array<float, 3> &tail_sys,
           const std::array<float, 3> &tail_par)
{
    const std::size_t k = sys.size();
    const std::size_t total = k + 3; // info + termination steps
    constexpr int ns = Trellis::kStates;

    // Precompute per-step transition metrics. Bipolar convention:
    // bit 0 -> +1, so gamma = 0.5 * (u_pm * L_sys + p_pm * L_par).
    // Transitions: from state s with info bit c in {0,1}.
    auto step_llrs = [&](std::size_t t) {
        const float ls = t < k ? sys[t] : tail_sys[t - k];
        const float lp = t < k ? par[t] : tail_par[t - k];
        return std::pair<float, float>(ls, lp);
    };

    // Forward recursion.
    std::vector<std::array<float, ns>> alpha(total + 1);
    alpha[0].fill(kNegInf);
    alpha[0][0] = 0.0f;
    for (std::size_t t = 0; t < total; ++t) {
        alpha[t + 1].fill(kNegInf);
        const auto [ls, lp] = step_llrs(t);
        for (int s = 0; s < ns; ++s) {
            if (alpha[t][s] <= kNegInf)
                continue;
            for (int c = 0; c <= 1; ++c) {
                if (t >= k && c != tail_bit(s))
                    continue; // termination forces the tail input
                int st = s;
                int p;
                rsc_step(st, c, p);
                const float u_pm = c ? -1.0f : 1.0f;
                const float p_pm = p ? -1.0f : 1.0f;
                const float g = 0.5f * (u_pm * ls + p_pm * lp);
                alpha[t + 1][st] =
                    maxstar(alpha[t + 1][st], alpha[t][s] + g);
            }
        }
    }

    // Backward recursion. Termination drives the trellis to state 0.
    std::vector<std::array<float, ns>> beta(total + 1);
    beta[total].fill(kNegInf);
    beta[total][0] = 0.0f;
    for (std::size_t t = total; t-- > 0;) {
        beta[t].fill(kNegInf);
        const auto [ls, lp] = step_llrs(t);
        for (int s = 0; s < ns; ++s) {
            for (int c = 0; c <= 1; ++c) {
                if (t >= k && c != tail_bit(s))
                    continue;
                int st = s;
                int p;
                rsc_step(st, c, p);
                if (beta[t + 1][st] <= kNegInf)
                    continue;
                const float u_pm = c ? -1.0f : 1.0f;
                const float p_pm = p ? -1.0f : 1.0f;
                const float g = 0.5f * (u_pm * ls + p_pm * lp);
                beta[t][s] = maxstar(beta[t][s], beta[t + 1][st] + g);
            }
        }
    }

    // A-posteriori LLRs for the info bits.
    std::vector<float> out(k);
    for (std::size_t t = 0; t < k; ++t) {
        const auto [ls, lp] = step_llrs(t);
        float best0 = kNegInf, best1 = kNegInf;
        for (int s = 0; s < ns; ++s) {
            if (alpha[t][s] <= kNegInf)
                continue;
            for (int c = 0; c <= 1; ++c) {
                int st = s;
                int p;
                rsc_step(st, c, p);
                const float u_pm = c ? -1.0f : 1.0f;
                const float p_pm = p ? -1.0f : 1.0f;
                const float g = 0.5f * (u_pm * ls + p_pm * lp);
                const float metric = alpha[t][s] + g + beta[t + 1][st];
                if (c == 0)
                    best0 = maxstar(best0, metric);
                else
                    best1 = maxstar(best1, metric);
            }
        }
        out[t] = best0 - best1;
    }
    return out;
}

} // namespace

QppInterleaver::QppInterleaver(std::size_t k)
{
    LTE_CHECK(k >= 8 && k % 8 == 0,
              "QPP block size must be a positive multiple of 8");

    // Spec anchors (TS 36.212 Table 5.1.3-3).
    struct Anchor { std::size_t k; std::uint32_t f1, f2; };
    static constexpr Anchor anchors[] = {
        {40, 3, 10},
        {6144, 263, 480},
    };
    for (const auto &a : anchors) {
        if (a.k == k && qpp_is_bijection(k, a.f1, a.f2, perm_)) {
            f1_ = a.f1;
            f2_ = a.f2;
            return;
        }
    }

    // Deterministic search: smallest odd f1 coprime to k, then the
    // smallest non-trivial f2 making the polynomial a bijection with
    // useful adjacency spread (the spec's parameters all have good
    // spread; a naive smallest-f2 pick can map neighbours next to
    // each other, hurting the turbo code).
    const std::size_t min_spread =
        std::min<std::size_t>(k / 8, 32);
    for (std::uint64_t f1 = 3; f1 < k; f1 += 2) {
        if (gcd_u64(f1, k) != 1)
            continue;
        for (std::uint64_t f2 = 2; f2 < k; f2 += 2) {
            if (qpp_is_bijection(k, f1, f2, perm_) &&
                qpp_spread(k, perm_) >= min_spread) {
                f1_ = static_cast<std::uint32_t>(f1);
                f2_ = static_cast<std::uint32_t>(f2);
                return;
            }
        }
    }
    LTE_CHECK(false, "no QPP parameters found for this block size");
}

std::vector<std::uint8_t>
turbo_encode(const std::vector<std::uint8_t> &info)
{
    const std::size_t k = info.size();
    LTE_CHECK(k >= 8 && k % 8 == 0,
              "turbo block size must be a positive multiple of 8");
    for (std::uint8_t b : info)
        LTE_CHECK(b <= 1, "bits must be 0 or 1");

    const QppInterleaver pi(k);
    std::vector<std::uint8_t> out;
    out.reserve(turbo_encoded_length(k));

    // Systematic part.
    out.insert(out.end(), info.begin(), info.end());

    // Parity of encoder 1.
    int s1 = 0;
    for (std::size_t i = 0; i < k; ++i) {
        int p;
        rsc_step(s1, info[i], p);
        out.push_back(static_cast<std::uint8_t>(p));
    }

    // Parity of encoder 2 (interleaved input).
    int s2 = 0;
    for (std::size_t i = 0; i < k; ++i) {
        int p;
        rsc_step(s2, info[pi.map(i)], p);
        out.push_back(static_cast<std::uint8_t>(p));
    }

    // Termination: 3 (x, z) pairs for each encoder.
    for (int *state : {&s1, &s2}) {
        for (int step = 0; step < 3; ++step) {
            const int c = tail_bit(*state);
            int p;
            rsc_step(*state, c, p);
            out.push_back(static_cast<std::uint8_t>(c));
            out.push_back(static_cast<std::uint8_t>(p));
        }
    }
    LTE_ASSERT(out.size() == turbo_encoded_length(k),
               "encoder output length mismatch");
    return out;
}

std::vector<std::uint8_t>
turbo_decode(const std::vector<Llr> &llrs, std::size_t k,
             const TurboDecoderConfig &cfg)
{
    LTE_CHECK(llrs.size() == turbo_encoded_length(k),
              "LLR count does not match block size");
    LTE_CHECK(cfg.iterations >= 1, "need at least one iteration");

    const QppInterleaver pi(k);

    const auto sys_begin = llrs.begin();
    const std::vector<float> sys(sys_begin, sys_begin + k);
    const std::vector<float> par1(sys_begin + k, sys_begin + 2 * k);
    const std::vector<float> par2(sys_begin + 2 * k, sys_begin + 3 * k);

    // Tail: (x, z) x3 for encoder 1, then for encoder 2.
    std::array<float, 3> tail_sys1, tail_par1, tail_sys2, tail_par2;
    const std::size_t tail_base = 3 * k;
    for (int i = 0; i < 3; ++i) {
        tail_sys1[i] = llrs[tail_base + 2 * i];
        tail_par1[i] = llrs[tail_base + 2 * i + 1];
        tail_sys2[i] = llrs[tail_base + 6 + 2 * i];
        tail_par2[i] = llrs[tail_base + 6 + 2 * i + 1];
    }

    // Interleaved systematic stream for decoder 2.
    std::vector<float> sys_pi(k);
    for (std::size_t i = 0; i < k; ++i)
        sys_pi[i] = sys[pi.map(i)];

    std::vector<float> ext12(k, 0.0f); // extrinsic from dec1 to dec2
    std::vector<float> ext21(k, 0.0f); // extrinsic from dec2 to dec1
    std::vector<float> post2_deint(k, 0.0f);

    for (std::size_t it = 0; it < cfg.iterations; ++it) {
        // Decoder 1: a priori from decoder 2 (deinterleaved).
        std::vector<float> in1(k);
        for (std::size_t i = 0; i < k; ++i)
            in1[i] = sys[i] + ext21[i];
        const auto post1 = map_decode(in1, par1, tail_sys1, tail_par1);
        for (std::size_t i = 0; i < k; ++i)
            ext12[i] = cfg.extrinsic_scale * (post1[i] - in1[i]);

        // Decoder 2: a priori from decoder 1 (interleaved).
        std::vector<float> in2(k);
        for (std::size_t i = 0; i < k; ++i)
            in2[i] = sys_pi[i] + ext12[pi.map(i)];
        const auto post2 = map_decode(in2, par2, tail_sys2, tail_par2);
        for (std::size_t i = 0; i < k; ++i) {
            ext21[pi.map(i)] =
                cfg.extrinsic_scale * (post2[i] - in2[i]);
            post2_deint[pi.map(i)] = post2[i];
        }
    }

    // Decide from the last half-iteration's full posterior.
    std::vector<std::uint8_t> bits(k);
    for (std::size_t i = 0; i < k; ++i)
        bits[i] = post2_deint[i] >= 0.0f ? 0 : 1;
    return bits;
}

std::vector<std::uint8_t>
turbo_passthrough(const std::vector<Llr> &llrs)
{
    return hard_decision(llrs);
}

void
turbo_passthrough_into(LlrView llrs, BitSpan out)
{
    hard_decision_into(llrs, out);
}

} // namespace lte::phy

#include "phy/turbo.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/check.hpp"
#include "phy/crc.hpp"
#include "phy/modulation.hpp"
#include "simd/trellis.hpp"

namespace lte::phy {

namespace {

/** 8-state RSC trellis: g0 = 1 + D^2 + D^3 (feedback),
 *  g1 = 1 + D + D^3 (parity). State = (r1, r2, r3), r1 most recent. */
struct Trellis
{
    static constexpr int kStates = 8;

    /** Feedback-adjusted register input for info bit c in state s. */
    static int
    reg_input(int s, int c)
    {
        const int r2 = (s >> 1) & 1;
        const int r3 = (s >> 2) & 1;
        return c ^ r2 ^ r3;
    }

    static int
    parity(int s, int w)
    {
        const int r1 = s & 1;
        const int r3 = (s >> 2) & 1;
        return w ^ r1 ^ r3;
    }
};

int
rsc_step(int &state, int c, int &parity_out)
{
    const int w = Trellis::reg_input(state, c);
    parity_out = Trellis::parity(state, w);
    state = ((state << 1) | w) & 0x7;
    return w;
}

/** Tail input that forces the feedback-adjusted register input to 0. */
int
tail_bit(int state)
{
    const int r2 = (state >> 1) & 1;
    const int r3 = (state >> 2) & 1;
    return r2 ^ r3;
}

std::uint64_t
gcd_u64(std::uint64_t a, std::uint64_t b)
{
    while (b) {
        const std::uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/** Check that pi(i) = (f1*i + f2*i^2) mod k is a bijection. */
bool
qpp_is_bijection(std::size_t k, std::uint64_t f1, std::uint64_t f2,
                 std::vector<std::size_t> &perm)
{
    std::vector<bool> hit(k, false);
    perm.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
        const std::uint64_t idx =
            (f1 * i % k + f2 % k * (i * i % k)) % k;
        if (hit[idx])
            return false;
        hit[idx] = true;
        perm[i] = static_cast<std::size_t>(idx);
    }
    return true;
}

/**
 * Minimum circular distance between the images of adjacent inputs —
 * a key turbo-interleaver quality metric: low spread lets short error
 * bursts survive both constituent decoders.
 */
std::size_t
qpp_spread(std::size_t k, const std::vector<std::size_t> &perm)
{
    std::size_t spread = k;
    for (std::size_t i = 0; i + 1 < k; ++i) {
        const std::size_t a = perm[i], b = perm[i + 1];
        const std::size_t d = a > b ? a - b : b - a;
        spread = std::min(spread, std::min(d, k - d));
    }
    return spread;
}

// ---------------------------------------------------------------------------
// Fixed-point max-log-MAP over the 8-state trellis (DESIGN.md Sec. 3h)
//
// Every transition metric from state s is +/-g(s) with
//   g(s) = 0.5 * (L_sys + Q[s] * L_par),    Q[s] = parity sign of the
// input-0 branch, and the +/- chosen by the input bit.  Across the 8
// states that is only ever one of the four values
//   [A, -A, B, -B],  A = (L_sys + L_par)/2,  B = (L_sys - L_par)/2,
// so each step's metrics collapse to one precomputed 4-entry row plus
// fixed cross-lane permutations of one 8-lane state column.
//
// The recursions run in saturating 16-bit fixed point (simd::v8s): a
// per-pass adaptive scale Q maps the largest |L_sys|+|L_par| of the
// pass (tails included) to kGammaScaleMax, so branch metrics use 11
// bits and the bounded drift between renormalizations keeps working
// metrics inside int16.  Saturating add/sub replaces the float
// implementation's infinite headroom: one PADDSW/PSUBSW/PMAXSW per
// column in SIMD, an explicit `sat16` clamp per operation in the
// scalar twin.  Both twins read the same quantized rows and saturate
// identically — and max is an exact selection — so their outputs are
// bit-identical (tests/test_turbo.cpp parity suite).  Posterior LLRs
// are dequantized back to floats (x 1/Q) for the extrinsic exchange,
// which stays in float like the rest of the pipeline.
// ---------------------------------------------------------------------------

/** Fixed-point metric "minus infinity": the saturation floor. */
constexpr std::int16_t kNegInf16 = -32768;

/** Largest quantized branch-metric magnitude: 11 bits, so eight
 *  un-renormalized steps drift at most 8 * 2047 and the column spread
 *  on top still fits int16 without routine saturation. */
constexpr float kGammaScaleMax = 4094.0f;

/** Successor of s under input 0; input 1 flips the low bit. */
constexpr std::array<int, 8> kNext0 = {0, 2, 5, 7, 1, 3, 4, 6};
constexpr std::array<int, 8> kNext1 = {1, 3, 4, 6, 0, 2, 5, 7};

/** Branch metric of the forced termination step t (0..2) from state
 *  s: input is tail_bit(s), the register input is 0, so the parity
 *  is r1 ^ r3.  Shared by both decoder paths (the 3 tail steps stay
 *  scalar; their trellis is a different, single-branch shape). */
inline float
tail_gamma(int s, float ls, float lp)
{
    const float u_pm = tail_bit(s) ? -1.0f : 1.0f;
    const float p_pm = ((s & 1) ^ ((s >> 2) & 1)) ? -1.0f : 1.0f;
    return 0.5f * (u_pm * ls + p_pm * lp);
}

/** Per-pass quantization: LLR -> metric multiplier and its inverse
 *  (both zero when the pass input is all-zero — rows are zero and the
 *  posterior dequantizes to exactly 0, no division anywhere). */
struct GammaScale
{
    float q = 0.0f;
    float invq = 0.0f;
};

/**
 * Quantize the per-step branch-metric rows [A, -A, B, -B] with
 * A = (L_sys + L_par) / 2 and B = (L_sys - L_par) / 2: every
 * transition metric of step t is one of these four values, so both
 * pass twins read the rows instead of rebuilding sys/par combinations
 * on the recursion's critical path.  The scale adapts per pass (the
 * extrinsic-augmented input grows across iterations, and high-SNR
 * demapper LLRs are huge to begin with): the largest |sys|+|par| of
 * the pass, tails included, maps to kGammaScaleMax.  Shared by the
 * twins — identical rows are half of bit-identical outputs.
 */
GammaScale
quantize_gamma_rows(const float *sys, const float *par, std::size_t k,
                    const float tail_sys[3], const float tail_par[3],
                    std::int16_t *rows)
{
    float m = 0.0f;
    for (std::size_t t = 0; t < k; ++t) {
        const float v = std::fabs(sys[t]) + std::fabs(par[t]);
        m = v > m ? v : m;
    }
    for (int i = 0; i < 3; ++i) {
        const float v = std::fabs(tail_sys[i]) + std::fabs(tail_par[i]);
        m = v > m ? v : m;
    }
    if (!(m > 0.0f)) {
        std::fill(rows, rows + k * 4, std::int16_t{0});
        return {};
    }
    const float qh = 0.5f * kGammaScaleMax / m; // folds the 1/2 of A, B

    std::size_t t = 0;
#if defined(LTE_SIMD_BACKEND_AVX2) || defined(LTE_SIMD_BACKEND_SSE2)
    // Four steps per trip: convert, pack to [A0..3 | B0..3], negate
    // saturating, then two interleaves turn the pairs into four
    // consecutive rows.  CVTPS2DQ rounds to nearest even, same as the
    // lrintf in the tail/portable loop.
    const __m128 qhv = _mm_set1_ps(qh);
    const __m128i zero = _mm_setzero_si128();
    for (; t + 4 <= k; t += 4) {
        const __m128 s = _mm_loadu_ps(sys + t);
        const __m128 p = _mm_loadu_ps(par + t);
        const __m128i ia =
            _mm_cvtps_epi32(_mm_mul_ps(_mm_add_ps(s, p), qhv));
        const __m128i ib =
            _mm_cvtps_epi32(_mm_mul_ps(_mm_sub_ps(s, p), qhv));
        const __m128i w = _mm_packs_epi32(ia, ib);
        const __m128i wn = _mm_subs_epi16(zero, w);
        const __m128i za = _mm_unpacklo_epi16(w, wn); // [A, -A] pairs
        const __m128i zb = _mm_unpackhi_epi16(w, wn); // [B, -B] pairs
        __m128i *dst = reinterpret_cast<__m128i *>(rows + t * 4);
        _mm_storeu_si128(dst, _mm_unpacklo_epi32(za, zb));
        _mm_storeu_si128(dst + 1, _mm_unpackhi_epi32(za, zb));
    }
#endif
    for (; t < k; ++t) {
        const std::int16_t qa = simd::sat16(
            static_cast<int>(std::lrintf((sys[t] + par[t]) * qh)));
        const std::int16_t qb = simd::sat16(
            static_cast<int>(std::lrintf((sys[t] - par[t]) * qh)));
        std::int16_t *row = rows + t * 4;
        row[0] = qa;
        row[1] = simd::sat16(-static_cast<int>(qa));
        row[2] = qb;
        row[3] = simd::sat16(-static_cast<int>(qb));
    }
    return {2.0f * qh, m / kGammaScaleMax};
}

/** Prime beta with the quantized termination steps: the trellis ends
 *  in state 0 at k+3; walk the 3 forced steps back to the column at
 *  time k.  Off the hot path and shared by both twins, so it stays a
 *  plain scalar loop (max-normalized: the tail column starts from the
 *  -32768 "minus infinity" floor, which lane-0 anchoring can't lift). */
void
beta_init_q(const float tail_sys[3], const float tail_par[3], float q,
            std::int16_t *bn)
{
    using simd::sat16;
    std::int16_t col[8];
    col[0] = 0;
    for (int s = 1; s < 8; ++s)
        col[s] = kNegInf16;
    for (int step = 2; step >= 0; --step) {
        std::int16_t prev[8];
        std::int16_t norm = kNegInf16;
        for (int s = 0; s < 8; ++s) {
            const std::int16_t tg = sat16(static_cast<int>(std::lrintf(
                q * tail_gamma(s, tail_sys[step], tail_par[step]))));
            prev[s] =
                sat16(static_cast<int>(tg) + col[(2 * s) & 7]);
            norm = prev[s] > norm ? prev[s] : norm;
        }
        for (int s = 0; s < 8; ++s)
            col[s] = sat16(prev[s] - static_cast<int>(norm));
    }
    std::copy(col, col + 8, bn);
}

/**
 * Scalar max-log-MAP pass: formula-for-formula the lane-wise
 * expansion of the SIMD pass below — every add/sub clamps through
 * `sat16` exactly where the vector ops saturate, and max is an exact
 * selection, so their outputs are bit-identical.  alpha holds (k+1)
 * rows of 8; post gets one dequantized a-posteriori LLR per info bit.
 * Metric columns are renormalized every 8th step by subtracting state
 * 0: the per-step drift is bounded by kGammaScaleMax/2, so eight
 * steps keep the column inside int16 without routine saturation, and
 * lane 0 bounds it without putting a reduction on the serial chain.
 */
void
map_pass_scalar(std::size_t k, const std::int16_t *gamma,
                const std::int16_t bn_init[8], std::int16_t *alpha,
                float *post, float invq)
{
    using simd::sat16;

    // Forward recursion.
    alpha[0] = 0;
    for (int s = 1; s < 8; ++s)
        alpha[s] = kNegInf16;
    for (std::size_t t = 0; t < k; ++t) {
        const std::int16_t *a = alpha + t * 8;
        std::int16_t *an = alpha + (t + 1) * 8;
        const std::int16_t *row = gamma + t * 4;
        // p8[s]: signed metric of the transition from predecessor
        // s>>1 into s; the (s>>1)+4 predecessor uses -p8[s].
        const std::int16_t p8[8] = {row[0], row[1], row[2], row[3],
                                    row[3], row[2], row[1], row[0]};
        for (int s = 0; s < 8; ++s) {
            const int j = s >> 1;
            const std::int16_t lo = sat16(a[j] + p8[s]);
            const std::int16_t hi = sat16(a[j + 4] - p8[s]);
            an[s] = lo > hi ? lo : hi;
        }
        if ((t & 7) == 7) {
            const std::int16_t norm = an[0];
            for (int s = 0; s < 8; ++s)
                an[s] = sat16(an[s] - static_cast<int>(norm));
        }
    }

    // Backward recursion fused with the LLR output; bn is beta[t+1].
    // (Forward termination steps are not needed: the LLRs only read
    // alpha rows 0..k-1; the termination constraint enters via beta.)
    std::int16_t bn[8];
    std::copy(bn_init, bn_init + 8, bn);
    for (std::size_t t = k; t-- > 0;) {
        const std::int16_t *a = alpha + t * 8;
        const std::int16_t *row = gamma + t * 4;
        // g8[s]: metric of the input-0 branch out of state s.
        const std::int16_t g8[8] = {row[0], row[2], row[2], row[0],
                                    row[0], row[2], row[2], row[0]};
        std::int16_t m0[8], m1[8];
        for (int s = 0; s < 8; ++s) {
            m0[s] = sat16(g8[s] + bn[kNext0[s]]);
            m1[s] = sat16(bn[kNext1[s]] - g8[s]);
        }
        int best0 = kNegInf16, best1 = kNegInf16;
        for (int s = 0; s < 8; ++s) {
            const int c0 = sat16(a[s] + m0[s]);
            const int c1 = sat16(a[s] + m1[s]);
            best0 = c0 > best0 ? c0 : best0;
            best1 = c1 > best1 ? c1 : best1;
        }
        post[t] = static_cast<float>(best0 - best1) * invq;
        for (int s = 0; s < 8; ++s)
            bn[s] = m0[s] > m1[s] ? m0[s] : m1[s];
        if ((t & 7) == 0) {
            const std::int16_t norm = bn[0];
            for (int s = 0; s < 8; ++s)
                bn[s] = sat16(bn[s] - static_cast<int>(norm));
        }
    }
}

#if defined(LTE_SIMD_ENABLED)
/**
 * SIMD max-log-MAP pass: one v8s column per trellis time step — eight
 * saturating int16 state metrics in a single register, so the
 * recursion body is PADDSW/PSUBSW/PMAXSW plus fixed shuffles.
 *
 * The recursions are latency-bound — every step depends on the last —
 * so the pass is organised to keep that chain short and to overlap
 * what it can:
 *
 *  - branch metrics come from the quantized gamma rows: one 8-byte
 *    load plus shuffles, off the serial chain, leaving only
 *    permute+adds+max on it;
 *  - renormalization subtracts a broadcast of lane 0 (dup_lane0) and
 *    runs only every 8th step, so it barely touches the chain;
 *  - the forward (alpha) and backward (beta) recursions are
 *    independent until the LLR combine, so one fused loop advances
 *    both — two dependency chains in flight cover each other's
 *    latency;
 *  - once the backward chain crosses the midpoint it passes time
 *    steps whose alpha column is already on file, so the LLR combine
 *    happens in-loop, its `hmax` reductions filling the issue slots
 *    the latency chains leave idle; the first half's branch sums
 *    (m0/m1, already formed for the beta update) are staged to
 *    `stage` and combined in a short throughput-bound tail loop.
 */
void
map_pass_simd(std::size_t k, const std::int16_t *gamma,
              const std::int16_t bn_init[8], std::int16_t *alpha,
              std::int16_t *stage, float *post, float invq)
{
    using simd::v8s;

    alpha[0] = 0;
    for (int s = 1; s < 8; ++s)
        alpha[s] = kNegInf16;
    v8s a = v8s::load(alpha);
    v8s bn = v8s::load(bn_init);

    const std::size_t h = k / 2; // k is a multiple of 8
    for (std::size_t t = 0; t < h; ++t) {
        // Forward step t.
        const v8s pf = simd::load_fwd_metrics(gamma + t * 4);
        v8s an = v8smax(adds(dup_low_pairs(a), pf),
                        subs(dup_high_pairs(a), pf));
        if ((t & 7) == 7)
            an = subs(an, dup_lane0(an));
        an.store(alpha + (t + 1) * 8);
        a = an;

        // Backward step u (independent chain, same loop); stage the
        // branch sums for the tail combine.
        const std::size_t u = k - 1 - t;
        const v8s gb = simd::load_bwd_metrics(gamma + u * 4);
        const v8s m0 = adds(gb, perm_next0(bn));
        const v8s m1 = subs(perm_next1(bn), gb);
        m0.store(stage + (u - h) * 16);
        m1.store(stage + (u - h) * 16 + 8);
        bn = v8smax(m0, m1);
        if ((u & 7) == 0)
            bn = subs(bn, dup_lane0(bn));
    }
    for (std::size_t t = h; t < k; ++t) {
        const v8s pf = simd::load_fwd_metrics(gamma + t * 4);
        v8s an = v8smax(adds(dup_low_pairs(a), pf),
                        subs(dup_high_pairs(a), pf));
        if ((t & 7) == 7)
            an = subs(an, dup_lane0(an));
        an.store(alpha + (t + 1) * 8);
        a = an;

        // alpha[u] is on file for u < h: the LLR drops out in-loop.
        const std::size_t u = k - 1 - t;
        const v8s gb = simd::load_bwd_metrics(gamma + u * 4);
        const v8s m0 = adds(gb, perm_next0(bn));
        const v8s m1 = subs(perm_next1(bn), gb);
        const v8s au = v8s::load(alpha + u * 8);
        post[u] = static_cast<float>(
                      static_cast<int>(simd::hmax(adds(au, m0))) -
                      static_cast<int>(simd::hmax(adds(au, m1)))) *
                  invq;
        bn = v8smax(m0, m1);
        if ((u & 7) == 0)
            bn = subs(bn, dup_lane0(bn));
    }
    // Upper-half LLRs from the staged branch sums.
    for (std::size_t u = h; u < k; ++u) {
        const v8s au = v8s::load(alpha + u * 8);
        const v8s m0 = v8s::load(stage + (u - h) * 16);
        const v8s m1 = v8s::load(stage + (u - h) * 16 + 8);
        post[u] = static_cast<float>(
                      static_cast<int>(simd::hmax(adds(au, m0))) -
                      static_cast<int>(simd::hmax(adds(au, m1)))) *
                  invq;
    }
}
#endif // LTE_SIMD_ENABLED

void
map_pass(const float *sys, const float *par, std::size_t k,
         const float tail_sys[3], const float tail_par[3],
         std::int16_t *gamma, std::int16_t *alpha, std::int16_t *beta,
         float *post, bool force_scalar)
{
    const GammaScale sc =
        quantize_gamma_rows(sys, par, k, tail_sys, tail_par, gamma);
    std::int16_t bn[8];
    beta_init_q(tail_sys, tail_par, sc.q, bn);
#if defined(LTE_SIMD_ENABLED)
    if (!force_scalar) {
        map_pass_simd(k, gamma, bn, alpha, beta, post, sc.invq);
        return;
    }
#else
    (void)force_scalar;
    (void)beta;
#endif
    map_pass_scalar(k, gamma, bn, alpha, post, sc.invq);
}

} // namespace

TurboSegmentation
turbo_segment(std::size_t capacity)
{
    // Smallest block count whose equal-size constituent blocks fit the
    // trellis; K shrinks monotonically with n, so the first fit wins.
    for (std::size_t n = 1; n <= kMaxTurboCodeblocks; ++n) {
        const std::size_t per_block = capacity / n;
        if (per_block <= kTurboTailBits)
            break;
        std::size_t k = (per_block - kTurboTailBits) / 3;
        k -= k % 8;
        if (k == 0)
            break;
        if (k > kMaxTurboBlockBits)
            continue;
        if (n > 1 && k <= 24)
            break; // no room for CRC-24B plus data
        TurboSegmentation seg;
        seg.n_blocks = n;
        seg.block_info_bits = k;
        LTE_CHECK(seg.tb_bits() > 24,
                  "capacity too small for a transport block");
        return seg;
    }
    LTE_CHECK(false, "no turbo segmentation for this capacity");
    return {};
}

QppInterleaver::QppInterleaver(std::size_t k)
{
    LTE_CHECK(k >= 8 && k % 8 == 0,
              "QPP block size must be a positive multiple of 8");

    // Spec anchors (TS 36.212 Table 5.1.3-3).
    struct Anchor { std::size_t k; std::uint32_t f1, f2; };
    static constexpr Anchor anchors[] = {
        {40, 3, 10},
        {6144, 263, 480},
    };
    for (const auto &a : anchors) {
        if (a.k == k && qpp_is_bijection(k, a.f1, a.f2, perm_)) {
            f1_ = a.f1;
            f2_ = a.f2;
            return;
        }
    }

    // Deterministic search: smallest odd f1 coprime to k, then the
    // smallest non-trivial f2 making the polynomial a bijection with
    // useful adjacency spread (the spec's parameters all have good
    // spread; a naive smallest-f2 pick can map neighbours next to
    // each other, hurting the turbo code).
    const std::size_t min_spread =
        std::min<std::size_t>(k / 8, 32);
    for (std::uint64_t f1 = 3; f1 < k; f1 += 2) {
        if (gcd_u64(f1, k) != 1)
            continue;
        for (std::uint64_t f2 = 2; f2 < k; f2 += 2) {
            if (qpp_is_bijection(k, f1, f2, perm_) &&
                qpp_spread(k, perm_) >= min_spread) {
                f1_ = static_cast<std::uint32_t>(f1);
                f2_ = static_cast<std::uint32_t>(f2);
                return;
            }
        }
    }
    LTE_CHECK(false, "no QPP parameters found for this block size");
}

const QppInterleaver &
qpp_interleaver(std::size_t k)
{
    static std::mutex mutex;
    static std::unordered_map<std::size_t,
                              std::unique_ptr<QppInterleaver>> cache;
    std::scoped_lock lock(mutex);
    auto it = cache.find(k);
    if (it == cache.end())
        it = cache.emplace(k, std::make_unique<QppInterleaver>(k)).first;
    return *it->second;
}

std::vector<std::uint8_t>
turbo_encode(const std::vector<std::uint8_t> &info)
{
    const std::size_t k = info.size();
    LTE_CHECK(k >= 8 && k % 8 == 0,
              "turbo block size must be a positive multiple of 8");
    for (std::uint8_t b : info)
        LTE_CHECK(b <= 1, "bits must be 0 or 1");

    const QppInterleaver &pi = qpp_interleaver(k);
    std::vector<std::uint8_t> out;
    out.reserve(turbo_encoded_length(k));

    // Systematic part.
    out.insert(out.end(), info.begin(), info.end());

    // Parity of encoder 1.
    int s1 = 0;
    for (std::size_t i = 0; i < k; ++i) {
        int p;
        rsc_step(s1, info[i], p);
        out.push_back(static_cast<std::uint8_t>(p));
    }

    // Parity of encoder 2 (interleaved input).
    int s2 = 0;
    for (std::size_t i = 0; i < k; ++i) {
        int p;
        rsc_step(s2, info[pi.map(i)], p);
        out.push_back(static_cast<std::uint8_t>(p));
    }

    // Termination: 3 (x, z) pairs for each encoder.
    for (int *state : {&s1, &s2}) {
        for (int step = 0; step < 3; ++step) {
            const int c = tail_bit(*state);
            int p;
            rsc_step(*state, c, p);
            out.push_back(static_cast<std::uint8_t>(c));
            out.push_back(static_cast<std::uint8_t>(p));
        }
    }
    LTE_ASSERT(out.size() == turbo_encoded_length(k),
               "encoder output length mismatch");
    return out;
}

void
TurboWorkspace::reserve(std::size_t k)
{
    if (k <= block_capacity_)
        return;
    alpha.resize((k + 1) * 8);
    beta.resize(k * 8);
    gamma.resize(k * 4);
    sys.resize(k);
    par1.resize(k);
    par2.resize(k);
    sys_pi.resize(k);
    ext12.resize(k);
    ext21.resize(k);
    in.resize(k);
    post.resize(k);
    post_deint.resize(k);
    bits.resize(k);
    block_capacity_ = k;
}

TurboWorkspace &
turbo_scratch()
{
    thread_local TurboWorkspace ws;
    return ws;
}

void
warm_turbo_scratch()
{
    turbo_scratch().reserve(kMaxTurboBlockBits);
}

TurboDecodeResult
turbo_decode_block_into(LlrView coded, std::size_t k,
                        const QppInterleaver &pi,
                        const TurboDecoderConfig &cfg,
                        std::uint32_t crc_poly, TurboWorkspace &ws,
                        BitSpan out)
{
    LTE_CHECK(coded.size() == turbo_encoded_length(k),
              "LLR count does not match block size");
    LTE_CHECK(out.size() == k, "output span must hold k bits");
    LTE_CHECK(pi.size() == k, "interleaver size mismatch");
    ws.reserve(k);

    TurboDecodeResult result;
    if (cfg.iterations == 0) {
        // Degraded bypass: hard-decide the systematic positions only.
        for (std::size_t i = 0; i < k; ++i)
            out[i] = coded[i] >= 0.0f ? 0 : 1;
        if (crc_poly != 0)
            result.crc_ok = crc24_check(BitView(out.data(), k), crc_poly);
        return result;
    }

    // Split the coded stream; tail holds (x, z) x3 per encoder.
    for (std::size_t i = 0; i < k; ++i) {
        ws.sys[i] = coded[i];
        ws.par1[i] = coded[k + i];
        ws.par2[i] = coded[2 * k + i];
    }
    float tail_sys1[3], tail_par1[3], tail_sys2[3], tail_par2[3];
    const std::size_t tail_base = 3 * k;
    for (int i = 0; i < 3; ++i) {
        tail_sys1[i] = coded[tail_base + 2 * i];
        tail_par1[i] = coded[tail_base + 2 * i + 1];
        tail_sys2[i] = coded[tail_base + 6 + 2 * i];
        tail_par2[i] = coded[tail_base + 6 + 2 * i + 1];
    }
    for (std::size_t i = 0; i < k; ++i) {
        ws.sys_pi[i] = ws.sys[pi.map(i)];
        ws.ext21[i] = 0.0f;
    }

    for (std::size_t it = 0; it < cfg.iterations; ++it) {
        // Decoder 1: a priori from decoder 2 (deinterleaved).
        for (std::size_t i = 0; i < k; ++i)
            ws.in[i] = ws.sys[i] + ws.ext21[i];
        map_pass(ws.in.data(), ws.par1.data(), k, tail_sys1, tail_par1,
                 ws.gamma.data(), ws.alpha.data(), ws.beta.data(),
                 ws.post.data(), cfg.force_scalar);
        for (std::size_t i = 0; i < k; ++i)
            ws.ext12[i] =
                cfg.extrinsic_scale * (ws.post[i] - ws.in[i]);

        // Decoder 2: a priori from decoder 1 (interleaved).
        for (std::size_t i = 0; i < k; ++i)
            ws.in[i] = ws.sys_pi[i] + ws.ext12[pi.map(i)];
        map_pass(ws.in.data(), ws.par2.data(), k, tail_sys2, tail_par2,
                 ws.gamma.data(), ws.alpha.data(), ws.beta.data(),
                 ws.post.data(), cfg.force_scalar);
        for (std::size_t i = 0; i < k; ++i) {
            ws.ext21[pi.map(i)] =
                cfg.extrinsic_scale * (ws.post[i] - ws.in[i]);
            ws.post_deint[pi.map(i)] = ws.post[i];
        }
        result.iterations_run = static_cast<std::uint32_t>(it + 1);

        // CRC early termination: decide and check after every full
        // iteration; a pass means further iterations cannot improve
        // the (already correct) transport of this block.
        if (crc_poly != 0) {
            for (std::size_t i = 0; i < k; ++i)
                ws.bits[i] = ws.post_deint[i] >= 0.0f ? 0 : 1;
            if (crc24_check(BitView(ws.bits.data(), k), crc_poly)) {
                result.crc_ok = true;
                break;
            }
        }
    }

    // Decide from the last half-iteration's full posterior.
    for (std::size_t i = 0; i < k; ++i)
        out[i] = ws.post_deint[i] >= 0.0f ? 0 : 1;
    return result;
}

std::vector<std::uint8_t>
turbo_decode(const std::vector<Llr> &llrs, std::size_t k,
             const TurboDecoderConfig &cfg)
{
    LTE_CHECK(cfg.iterations >= 1, "need at least one iteration");
    TurboWorkspace ws;
    std::vector<std::uint8_t> bits(k);
    turbo_decode_block_into(LlrView(llrs), k, qpp_interleaver(k), cfg,
                            /*crc_poly=*/0, ws, BitSpan(bits));
    return bits;
}

std::vector<std::uint8_t>
turbo_passthrough(const std::vector<Llr> &llrs)
{
    return hard_decision(llrs);
}

void
turbo_passthrough_into(LlrView llrs, BitSpan out)
{
    hard_decision_into(llrs, out);
}

} // namespace lte::phy

/**
 * @file
 * Turbo coding stage.
 *
 * The paper's benchmark deliberately passes data straight through the
 * turbo-decoding step because base stations run it on dedicated
 * hardware (Sec. IV-C.2).  We provide that pass-through as the default
 * *and* a real LTE-style rate-1/3 turbo codec as an extension:
 * two 8-state RSC constituent encoders (g0 = 1 + D^2 + D^3,
 * g1 = 1 + D + D^3, TS 36.212 Sec. 5.1.3.2) linked by a quadratic
 * permutation polynomial (QPP) interleaver, decoded with iterative
 * max-log-MAP.
 *
 * The decoder is a hot-path kernel (DESIGN.md Sec. 3h): the 8-state
 * alpha/beta/LLR recursions run in saturating 16-bit fixed point
 * vectorized over the trellis states (`simd::v8s`, the whole state
 * column in one SSE register) with a bit-identical scalar twin, all
 * state lives in a per-thread
 * `TurboWorkspace` so steady-state decode allocates nothing, and
 * decoding stops early once the attached CRC checks.  Transport
 * blocks larger than the 6144-bit trellis limit are segmented into
 * equal-size code blocks (CRC-24B per block, CRC-24A on the transport
 * block) that the runtime decodes as parallel tasks.
 *
 * Deviation from the spec, documented in DESIGN.md: instead of
 * embedding the 188-row QPP parameter table of TS 36.212 Table 5.1.3-3,
 * parameters for arbitrary block sizes are found by a deterministic
 * search that verifies the polynomial is a bijection; the two anchor
 * rows we embed (K = 40 and K = 6144) match the spec.
 */
#ifndef LTE_PHY_TURBO_HPP
#define LTE_PHY_TURBO_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lte::phy {

/** Tail bits appended by trellis termination (both encoders). */
inline constexpr std::size_t kTurboTailBits = 12;

/** Largest constituent block the LTE trellis supports (TS 36.212). */
inline constexpr std::size_t kMaxTurboBlockBits = 6144;

/** Upper bound on code blocks per user: the largest allocation
 *  (200 PRB x 4 layers x 64QAM = 345600 coded bits) segments into 19
 *  blocks; 32 leaves headroom for fixed-size per-block tallies. */
inline constexpr std::size_t kMaxTurboCodeblocks = 32;

/** @return encoded length for @p k info bits: 3k + 12. */
constexpr std::size_t
turbo_encoded_length(std::size_t k)
{
    return 3 * k + kTurboTailBits;
}

/**
 * LTE-style code-block segmentation of one user's coded-bit capacity
 * (TS 36.212 Sec. 5.1.2 shape, equal-size blocks): the smallest block
 * count whose per-block info size fits the 6144-bit trellis.  With
 * more than one block each K-bit block carries K-24 transport-block
 * bits plus its own CRC-24B; a single block carries the transport
 * block directly.  The transport block itself ends in CRC-24A.
 */
struct TurboSegmentation
{
    std::size_t n_blocks = 1;        ///< C, code blocks
    std::size_t block_info_bits = 0; ///< K, constituent block size

    /** Coded bits of one block. */
    std::size_t
    block_coded_bits() const
    {
        return turbo_encoded_length(block_info_bits);
    }

    /** Transport-block bits carried per block (CRC-24B stripped). */
    std::size_t
    block_data_bits() const
    {
        return n_blocks > 1 ? block_info_bits - 24 : block_info_bits;
    }

    /** Coded bits of the whole segmented allocation (<= capacity). */
    std::size_t
    coded_bits() const
    {
        return n_blocks * block_coded_bits();
    }

    /** Transport block incl. its CRC-24A, excl. per-block CRC-24B. */
    std::size_t
    tb_bits() const
    {
        return n_blocks * block_data_bits();
    }
};

/** Segment @p capacity coded bits (checks a transport block fits). */
TurboSegmentation turbo_segment(std::size_t capacity);

/**
 * QPP interleaver pi(i) = (f1*i + f2*i^2) mod k.
 */
class QppInterleaver
{
  public:
    /**
     * Build an interleaver for block size @p k (a positive multiple of
     * 8, matching the granularity of the TS 36.212 size table), finding
     * valid (f1, f2) deterministically.
     */
    explicit QppInterleaver(std::size_t k);

    std::size_t size() const { return perm_.size(); }
    std::uint32_t f1() const { return f1_; }
    std::uint32_t f2() const { return f2_; }

    /** pi(i). */
    std::size_t map(std::size_t i) const { return perm_[i]; }

    /** Apply: out[i] = in[pi(i)]. */
    template <typename T>
    std::vector<T>
    apply(const std::vector<T> &in) const
    {
        std::vector<T> out(in.size());
        for (std::size_t i = 0; i < in.size(); ++i)
            out[i] = in[perm_[i]];
        return out;
    }

    /** Inverse: out[pi(i)] = in[i]. */
    template <typename T>
    std::vector<T>
    invert(const std::vector<T> &in) const
    {
        std::vector<T> out(in.size());
        for (std::size_t i = 0; i < in.size(); ++i)
            out[perm_[i]] = in[i];
        return out;
    }

  private:
    std::uint32_t f1_ = 0;
    std::uint32_t f2_ = 0;
    std::vector<std::size_t> perm_;
};

/**
 * Process-wide interleaver cache.  The QPP parameter search is a
 * one-time cost per block size; decode tasks must not pay (or
 * allocate) it.  The returned reference is stable for the process
 * lifetime; lookup of a cached size performs no allocation, so
 * per-subframe `UserProcessor::bind()` stays zero-alloc once every
 * block size in the workload has been seen.  Thread-safe.
 */
const QppInterleaver &qpp_interleaver(std::size_t k);

/**
 * Rate-1/3 turbo encoder.
 *
 * Output layout (our own, coherent with the decoder):
 *   [ x_0..x_{k-1} | z_0..z_{k-1} | z'_0..z'_{k-1} | 12 tail bits ]
 * where x is systematic, z parity of encoder 1, z' parity of encoder 2,
 * and the tail holds (x, z) x3 for encoder 1 then (x', z') x3 for
 * encoder 2.
 */
std::vector<std::uint8_t> turbo_encode(const std::vector<std::uint8_t> &info);

/** Decoder configuration. */
struct TurboDecoderConfig
{
    std::size_t iterations = 6;
    /** Extrinsic damping factor, the standard max-log correction. */
    float extrinsic_scale = 0.75f;
    /** Run the scalar twin even when the SIMD backend is available
     *  (parity tests and the scalar benchmark baseline). */
    bool force_scalar = false;
};

/**
 * Per-thread decoder state: trellis metrics, extrinsics and the
 * (de)interleaved streams of one constituent block, grow-only like the
 * kernel scratch so steady-state decode performs no allocations.
 * Workers warm it to `kMaxTurboBlockBits` at start-up
 * (`warm_turbo_scratch`).
 */
class TurboWorkspace
{
  public:
    /** Ensure capacity for a @p k-bit constituent block (grow-only). */
    void reserve(std::size_t k);

    std::size_t block_capacity() const { return block_capacity_; }

    // Decoder scratch, sized by reserve(); see turbo.cpp for roles.
    // The trellis recursions run in saturating 16-bit fixed point
    // (quantized per pass), so metric scratch is int16.
    std::vector<std::int16_t> alpha; ///< (k+1) x 8 forward metrics
    std::vector<std::int16_t> beta;  ///< backward branch-sum staging
    std::vector<std::int16_t> gamma; ///< k x 4 quantized metric rows
    std::vector<float> sys;        ///< systematic channel LLRs
    std::vector<float> par1;       ///< parity LLRs, encoder 1
    std::vector<float> par2;       ///< parity LLRs, encoder 2
    std::vector<float> sys_pi;     ///< interleaved systematic
    std::vector<float> ext12;      ///< extrinsic decoder 1 -> 2
    std::vector<float> ext21;      ///< extrinsic decoder 2 -> 1
    std::vector<float> in;         ///< a-priori-augmented input
    std::vector<float> post;       ///< a-posteriori of the last pass
    std::vector<float> post_deint; ///< deinterleaved posterior
    std::vector<std::uint8_t> bits; ///< per-iteration hard decision

  private:
    std::size_t block_capacity_ = 0;
};

/** The calling thread's decode workspace (lazily constructed). */
TurboWorkspace &turbo_scratch();

/** Pre-size the calling thread's workspace for the largest block, so
 *  no decode on this thread ever grows it (worker start-up). */
void warm_turbo_scratch();

/** Outcome of one code-block decode. */
struct TurboDecodeResult
{
    /** Full iterations executed (early termination stops short; 0 for
     *  the hard-decision bypass path). */
    std::uint32_t iterations_run = 0;
    /** Result of the last CRC check (false when @p crc_poly was 0). */
    bool crc_ok = false;
};

/**
 * Iterative max-log-MAP decode of one constituent block into @p out,
 * allocation-free: all state comes from @p ws.
 *
 * @param coded    3k+12 channel LLRs laid out as by turbo_encode()
 * @param k        information bits; @p out must hold exactly k
 * @param pi       interleaver for block size k (see qpp_interleaver)
 * @param cfg      iteration budget / damping / scalar-twin switch
 * @param crc_poly when non-zero, the hard decision is CRC-checked
 *                 after every iteration and decoding stops early on a
 *                 pass (CRC-24B for segmented blocks, CRC-24A when the
 *                 block is the whole transport block); 0 disables
 *                 early termination
 * @param ws       per-thread workspace (reserved to >= k)
 *
 * With cfg.iterations == 0 the systematic LLRs are hard-decided
 * directly — the degraded-mode bypass, cheap but uncoded.
 */
TurboDecodeResult turbo_decode_block_into(LlrView coded, std::size_t k,
                                          const QppInterleaver &pi,
                                          const TurboDecoderConfig &cfg,
                                          std::uint32_t crc_poly,
                                          TurboWorkspace &ws, BitSpan out);

/**
 * Iterative max-log-MAP decoding (allocating convenience wrapper over
 * turbo_decode_block_into; fixed iteration count, no early exit).
 *
 * @param llrs channel LLRs for the encoded bits, laid out as produced
 *             by turbo_encode() (positive LLR => bit 0)
 * @param k    number of information bits
 * @return hard-decided information bits
 */
std::vector<std::uint8_t> turbo_decode(const std::vector<Llr> &llrs,
                                       std::size_t k,
                                       const TurboDecoderConfig &cfg = {});

/**
 * The pass-through "decoder" used by the benchmark pipeline by default
 * (paper Sec. IV-C.2): hard-decide the systematic LLRs and return them.
 * @param llrs one LLR per (uncoded) bit
 */
std::vector<std::uint8_t> turbo_passthrough(const std::vector<Llr> &llrs);

/** Heap-free pass-through; @p out must match @p llrs in length. */
void turbo_passthrough_into(LlrView llrs, BitSpan out);

} // namespace lte::phy

#endif // LTE_PHY_TURBO_HPP

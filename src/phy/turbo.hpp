/**
 * @file
 * Turbo coding stage.
 *
 * The paper's benchmark deliberately passes data straight through the
 * turbo-decoding step because base stations run it on dedicated
 * hardware (Sec. IV-C.2).  We provide that pass-through as the default
 * *and* a real LTE-style rate-1/3 turbo codec as an extension:
 * two 8-state RSC constituent encoders (g0 = 1 + D^2 + D^3,
 * g1 = 1 + D + D^3, TS 36.212 Sec. 5.1.3.2) linked by a quadratic
 * permutation polynomial (QPP) interleaver, decoded with iterative
 * max-log-MAP.
 *
 * Deviation from the spec, documented in DESIGN.md: instead of
 * embedding the 188-row QPP parameter table of TS 36.212 Table 5.1.3-3,
 * parameters for arbitrary block sizes are found by a deterministic
 * search that verifies the polynomial is a bijection; the two anchor
 * rows we embed (K = 40 and K = 6144) match the spec.
 */
#ifndef LTE_PHY_TURBO_HPP
#define LTE_PHY_TURBO_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lte::phy {

/** Tail bits appended by trellis termination (both encoders). */
inline constexpr std::size_t kTurboTailBits = 12;

/** @return encoded length for @p k info bits: 3k + 12. */
constexpr std::size_t
turbo_encoded_length(std::size_t k)
{
    return 3 * k + kTurboTailBits;
}

/**
 * QPP interleaver pi(i) = (f1*i + f2*i^2) mod k.
 */
class QppInterleaver
{
  public:
    /**
     * Build an interleaver for block size @p k (a positive multiple of
     * 8, matching the granularity of the TS 36.212 size table), finding
     * valid (f1, f2) deterministically.
     */
    explicit QppInterleaver(std::size_t k);

    std::size_t size() const { return perm_.size(); }
    std::uint32_t f1() const { return f1_; }
    std::uint32_t f2() const { return f2_; }

    /** pi(i). */
    std::size_t map(std::size_t i) const { return perm_[i]; }

    /** Apply: out[i] = in[pi(i)]. */
    template <typename T>
    std::vector<T>
    apply(const std::vector<T> &in) const
    {
        std::vector<T> out(in.size());
        for (std::size_t i = 0; i < in.size(); ++i)
            out[i] = in[perm_[i]];
        return out;
    }

    /** Inverse: out[pi(i)] = in[i]. */
    template <typename T>
    std::vector<T>
    invert(const std::vector<T> &in) const
    {
        std::vector<T> out(in.size());
        for (std::size_t i = 0; i < in.size(); ++i)
            out[perm_[i]] = in[i];
        return out;
    }

  private:
    std::uint32_t f1_ = 0;
    std::uint32_t f2_ = 0;
    std::vector<std::size_t> perm_;
};

/**
 * Rate-1/3 turbo encoder.
 *
 * Output layout (our own, coherent with TurboDecoder):
 *   [ x_0..x_{k-1} | z_0..z_{k-1} | z'_0..z'_{k-1} | 12 tail bits ]
 * where x is systematic, z parity of encoder 1, z' parity of encoder 2,
 * and the tail holds (x, z) x3 for encoder 1 then (x', z') x3 for
 * encoder 2.
 */
std::vector<std::uint8_t> turbo_encode(const std::vector<std::uint8_t> &info);

/** Decoder configuration. */
struct TurboDecoderConfig
{
    std::size_t iterations = 6;
    /** Extrinsic damping factor, the standard max-log correction. */
    float extrinsic_scale = 0.75f;
};

/**
 * Iterative max-log-MAP decoding.
 *
 * @param llrs channel LLRs for the encoded bits, laid out as produced
 *             by turbo_encode() (positive LLR => bit 0)
 * @param k    number of information bits
 * @return hard-decided information bits
 */
std::vector<std::uint8_t> turbo_decode(const std::vector<Llr> &llrs,
                                       std::size_t k,
                                       const TurboDecoderConfig &cfg = {});

/**
 * The pass-through "decoder" used by the benchmark pipeline by default
 * (paper Sec. IV-C.2): hard-decide the systematic LLRs and return them.
 * @param llrs one LLR per (uncoded) bit
 */
std::vector<std::uint8_t> turbo_passthrough(const std::vector<Llr> &llrs);

/** Heap-free pass-through; @p out must match @p llrs in length. */
void turbo_passthrough_into(LlrView llrs, BitSpan out);

} // namespace lte::phy

#endif // LTE_PHY_TURBO_HPP

/**
 * @file
 * Per-(antenna, layer) channel estimation, the first parallel stage of
 * user processing (paper Sec. II-C / Fig. 5).
 *
 * The estimator implements the paper's four-kernel chain:
 *   1. matched filter — multiply the received reference symbol by the
 *      conjugate of the layer's known DMRS sequence;
 *   2. IFFT — to the time (delay) domain, where the layer's channel
 *      impulse response sits near delay 0 and other layers' responses
 *      sit at offsets n*N/4 thanks to their cyclic shifts;
 *   3. window — keep only the delay bins that can contain this layer's
 *      channel, suppressing noise and inter-layer leakage;
 *   4. FFT — back to the frequency domain, yielding the denoised
 *      per-subcarrier channel estimate.
 *
 * A noise-variance estimate is derived from the delay bins the window
 * discards (they contain only noise for a well-behaved channel).
 */
#ifndef LTE_PHY_CHANNEL_ESTIMATOR_HPP
#define LTE_PHY_CHANNEL_ESTIMATOR_HPP

#include <cstddef>

#include "common/types.hpp"

namespace lte::phy {

/** Result of estimating one (antenna, layer) channel over one slot. */
struct ChannelEstimate
{
    /** Channel frequency response per allocated subcarrier. */
    CVec freq_response;
    /** Estimated noise variance in the discarded delay bins. */
    float noise_var = 0.0f;
};

/** Tuning knobs for the estimator window. */
struct ChannelEstimatorConfig
{
    /**
     * Fraction of delay bins kept (split 3:1 between causal taps at
     * the start and pre-cursor taps at the end of the delay axis).
     * Must keep the window inside +-N/8 so 4 cyclic-shifted layers
     * stay separable.
     */
    double window_fraction = 0.125;
};

/**
 * Estimate the channel seen by one layer on one antenna.
 *
 * @param received_ref the received DMRS symbol on this antenna
 *                     (allocated subcarriers only)
 * @param layer_ref    the known layer-specific DMRS sequence (same
 *                     length; unit-magnitude samples)
 * @param cfg          window configuration
 */
ChannelEstimate estimate_channel(const CVec &received_ref,
                                 const CVec &layer_ref,
                                 const ChannelEstimatorConfig &cfg = {});

/**
 * Heap-free variant: writes the frequency response into
 * @p freq_response (same length as the references) and returns the
 * noise-variance estimate (0 when the allocation has no guard bins).
 *
 * @param scratch at least estimate_channel_scratch(n) samples; must
 *                not overlap the other buffers
 */
float estimate_channel_into(CfView received_ref, CfView layer_ref,
                            const ChannelEstimatorConfig &cfg,
                            CfSpan freq_response, CfSpan scratch);

/** Scratch samples estimate_channel_into() needs for an @p n-point
 *  reference: the delay-domain buffer plus FFT-plan scratch. */
std::size_t estimate_channel_scratch(std::size_t n);

/**
 * The estimator's matched filter: out[k] = rx[k] * conj(ref[k]).
 * DMRS samples have unit magnitude, so multiplying by the conjugate
 * divides out the known sequence.  Vectorized when built with
 * LTE_SIMD=ON; exposed for benchmarks and parity tests.
 */
void matched_filter_conj_into(CfView rx, CfView ref, CfSpan out);

/** Scalar reference twin of matched_filter_conj_into. */
void matched_filter_conj_scalar_into(CfView rx, CfView ref, CfSpan out);

/**
 * The number of leading/trailing delay bins kept by the window for a
 * transform of size @p n under @p window_fraction (exposed for tests).
 * first = causal taps kept at the start, second = taps kept at the end.
 */
std::pair<std::size_t, std::size_t>
window_extent(std::size_t n, double window_fraction);

} // namespace lte::phy

#endif // LTE_PHY_CHANNEL_ESTIMATOR_HPP

#include "phy/zadoff_chu.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace lte::phy {

namespace {

bool
is_prime(std::size_t n)
{
    if (n < 2)
        return false;
    for (std::size_t f = 2; f * f <= n; ++f) {
        if (n % f == 0)
            return false;
    }
    return true;
}

} // namespace

std::size_t
largest_prime_below(std::size_t n)
{
    LTE_CHECK(n >= 2, "no prime below 2");
    std::size_t p = n;
    while (!is_prime(p))
        --p;
    return p;
}

CVec
zadoff_chu(std::uint32_t root, std::size_t n_zc)
{
    LTE_CHECK(n_zc >= 1, "sequence length must be positive");
    LTE_CHECK(root >= 1 && root < n_zc, "root must be in [1, n_zc)");
    CVec seq(n_zc);
    for (std::size_t m = 0; m < n_zc; ++m) {
        // q*m*(m+1) mod 2*n_zc keeps the phase argument exact.
        const std::uint64_t num =
            static_cast<std::uint64_t>(root) * m % (2 * n_zc) * (m + 1) %
            (2 * n_zc);
        const double angle = -std::numbers::pi *
                             static_cast<double>(num) /
                             static_cast<double>(n_zc);
        seq[m] = cf32(static_cast<float>(std::cos(angle)),
                      static_cast<float>(std::sin(angle)));
    }
    return seq;
}

CVec
dmrs_base_sequence(std::size_t m_sc, std::uint32_t root)
{
    LTE_CHECK(m_sc >= kScPerPrb && m_sc % kScPerPrb == 0,
              "allocation must be a positive multiple of 12 subcarriers");
    const std::size_t n_zc = largest_prime_below(m_sc);
    const std::uint32_t q =
        1 + root % static_cast<std::uint32_t>(n_zc - 1);
    const CVec zc = zadoff_chu(q, n_zc);
    CVec seq(m_sc);
    for (std::size_t k = 0; k < m_sc; ++k)
        seq[k] = zc[k % n_zc];
    return seq;
}

CVec
dmrs_for_layer(const CVec &base, std::size_t layer)
{
    LTE_CHECK(layer < kMaxLayers, "layer out of range");
    CVec out(base.size());
    const double alpha = 2.0 * std::numbers::pi *
                         static_cast<double>(layer) /
                         static_cast<double>(kMaxLayers);
    for (std::size_t k = 0; k < base.size(); ++k) {
        const double angle = alpha * static_cast<double>(k);
        const cf32 ramp(static_cast<float>(std::cos(angle)),
                        static_cast<float>(std::sin(angle)));
        out[k] = base[k] * ramp;
    }
    return out;
}

CVec
user_dmrs(std::uint32_t user_id, std::size_t slot, std::size_t m_sc,
          std::size_t layer, std::uint32_t cell_id)
{
    const std::uint32_t root = dmrs_root(user_id, slot, cell_id);
    return dmrs_for_layer(dmrs_base_sequence(m_sc, root), layer);
}

void
user_dmrs_into(std::uint32_t user_id, std::size_t slot, std::size_t layer,
               CfSpan out, std::uint32_t cell_id)
{
    const std::size_t m_sc = out.size();
    LTE_CHECK(m_sc >= kScPerPrb && m_sc % kScPerPrb == 0,
              "allocation must be a positive multiple of 12 subcarriers");
    LTE_CHECK(layer < kMaxLayers, "layer out of range");

    const std::uint32_t root = dmrs_root(user_id, slot, cell_id);
    const std::size_t n_zc = largest_prime_below(m_sc);
    const std::uint32_t q =
        1 + root % static_cast<std::uint32_t>(n_zc - 1);

    // ZC sequence into the front of the output buffer.
    for (std::size_t m = 0; m < n_zc; ++m) {
        const std::uint64_t num =
            static_cast<std::uint64_t>(q) * m % (2 * n_zc) * (m + 1) %
            (2 * n_zc);
        const double angle = -std::numbers::pi *
                             static_cast<double>(num) /
                             static_cast<double>(n_zc);
        out[m] = cf32(static_cast<float>(std::cos(angle)),
                      static_cast<float>(std::sin(angle)));
    }

    // Cyclic extension in place (reads only already-written samples).
    for (std::size_t k = n_zc; k < m_sc; ++k)
        out[k] = out[k - n_zc];

    // Layer cyclic shift as a frequency-domain phase ramp.
    const double alpha = 2.0 * std::numbers::pi *
                         static_cast<double>(layer) /
                         static_cast<double>(kMaxLayers);
    for (std::size_t k = 0; k < m_sc; ++k) {
        const double angle = alpha * static_cast<double>(k);
        const cf32 ramp(static_cast<float>(std::cos(angle)),
                        static_cast<float>(std::sin(angle)));
        out[k] *= ramp;
    }
}

} // namespace lte::phy

/**
 * @file
 * MIMO combiner-weight computation and antenna combining
 * (paper Sec. II-C): the combiner weights merge the data received on
 * multiple antennas into per-layer streams while adjusting for channel
 * conditions.
 *
 * Weights are per-subcarrier MMSE:
 *   W(f) = (H(f)^H H(f) + sigma^2 I)^-1 H(f)^H        (layers x antennas)
 * which reduces to matched-filter/MRC scaling for a single layer.
 */
#ifndef LTE_PHY_COMBINER_HPP
#define LTE_PHY_COMBINER_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace lte::phy {

/**
 * Per-subcarrier combiner weights for one slot.
 *
 * Storage is plane-major: one contiguous subcarrier run per
 * (layer, antenna) pair, i.e. weight[(layer * antennas + antenna) *
 * n_sc + sc].  The combining and bias-correction kernels stream each
 * plane sequentially, which is what makes their SIMD loads contiguous;
 * the accessors hide the layout from everyone else.
 */
class CombinerWeights
{
  public:
    CombinerWeights() = default;

    CombinerWeights(std::size_t n_sc, std::size_t layers,
                    std::size_t antennas);

    /**
     * Re-shape for a new slot, reusing the existing storage; only
     * grows the backing vector past its previous high-water mark.
     */
    void resize(std::size_t n_sc, std::size_t layers,
                std::size_t antennas);

    std::size_t n_subcarriers() const { return n_sc_; }
    std::size_t layers() const { return layers_; }
    std::size_t antennas() const { return antennas_; }

    cf32 &at(std::size_t sc, std::size_t layer, std::size_t antenna);
    const cf32 &at(std::size_t sc, std::size_t layer,
                   std::size_t antenna) const;

    /** Unchecked access for hot loops (same layout as at()). */
    cf32 &
    operator()(std::size_t sc, std::size_t layer, std::size_t antenna)
    {
        return w_[(layer * antennas_ + antenna) * n_sc_ + sc];
    }

    const cf32 &
    operator()(std::size_t sc, std::size_t layer,
               std::size_t antenna) const
    {
        return w_[(layer * antennas_ + antenna) * n_sc_ + sc];
    }

    /** The contiguous n_subcarriers() weight run of one
     *  (layer, antenna) pair. */
    const cf32 *
    plane(std::size_t layer, std::size_t antenna) const
    {
        return w_.data() + (layer * antennas_ + antenna) * n_sc_;
    }

    cf32 *
    plane(std::size_t layer, std::size_t antenna)
    {
        return w_.data() + (layer * antennas_ + antenna) * n_sc_;
    }

  private:
    std::size_t n_sc_ = 0;
    std::size_t layers_ = 0;
    std::size_t antennas_ = 0;
    std::vector<cf32> w_;
};

/**
 * Read-only view of per-(antenna, layer) channel estimates stored as
 * one flat antenna-major buffer: data[(a * layers + l) * n_sc + sc].
 */
struct ChannelView
{
    const cf32 *data = nullptr;
    std::size_t antennas = 0;
    std::size_t layers = 0;
    std::size_t n_sc = 0;

    const cf32 &
    at(std::size_t antenna, std::size_t layer, std::size_t sc) const
    {
        return data[(antenna * layers + layer) * n_sc + sc];
    }
};

/**
 * Compute MMSE combiner weights from per-(antenna, layer) channel
 * estimates.
 *
 * @param channel  channel[antenna][layer] is the frequency response on
 *                 the allocated subcarriers; all entries same length
 * @param noise_var effective noise variance (diagonal loading)
 */
CombinerWeights
compute_combiner_weights(const std::vector<std::vector<CVec>> &channel,
                         float noise_var);

/**
 * Heap-free variant over a flat channel view; @p out is re-shaped to
 * match (allocation-free once at capacity).  With LTE_SIMD=ON the
 * Gram accumulation H^H H runs vectorized across subcarriers (the
 * per-subcarrier matrix inverse stays on fixed-capacity stack
 * matrices); single-layer allocations take a fully vectorized
 * matched-filter path.
 */
void compute_combiner_weights_into(const ChannelView &channel,
                                   float noise_var,
                                   CombinerWeights &out);

/** Scalar reference twin of compute_combiner_weights_into (the plain
 *  per-subcarrier FixedCMat solve); SIMD parity tests compare against
 *  this. */
void compute_combiner_weights_scalar_into(const ChannelView &channel,
                                          float noise_var,
                                          CombinerWeights &out);

/**
 * Degraded-mode combiner weights: per-layer matched filter (MRC),
 * W(sc, l, a) = H*(a, l, sc) / (||H_l(sc)||^2 + noise_var), with no
 * layers x layers inverse.  Much cheaper than MMSE but ignores
 * inter-layer interference; used by the streaming engine's "degrade"
 * load-shedding policy when a subframe is running late.
 */
void compute_mrc_weights_into(const ChannelView &channel, float noise_var,
                              CombinerWeights &out);

/**
 * Combine one received SC-FDMA symbol across antennas into one layer's
 * frequency-domain samples: z(f) = sum_a W(f, layer, a) * y_a(f).
 *
 * @param rx_symbol rx_symbol[antenna] holds the received samples of
 *                  this symbol on that antenna
 */
CVec combine_layer(const std::vector<CVec> &rx_symbol,
                   const CombinerWeights &weights, std::size_t layer);

/** Heap-free variant: @p rx_symbol is one view per antenna and the
 *  combined samples are written to @p out (n_subcarriers long).
 *  Vectorized across subcarriers when built with LTE_SIMD=ON. */
void combine_layer_into(std::span<const CfView> rx_symbol,
                        const CombinerWeights &weights, std::size_t layer,
                        CfSpan out);

/** Scalar reference twin of combine_layer_into. */
void combine_layer_scalar_into(std::span<const CfView> rx_symbol,
                               const CombinerWeights &weights,
                               std::size_t layer, CfSpan out);

/**
 * MMSE bias correction: divide each combined subcarrier by the
 * effective gain sum_a W(sc, layer, a) * H(a, layer, sc) so the
 * constellation points land back on grid.  Subcarriers whose bias
 * magnitude is negligible (|bias|^2 <= 1e-12) are left untouched.
 * Vectorized across subcarriers when built with LTE_SIMD=ON.
 */
void apply_mmse_bias_into(const ChannelView &channel,
                          const CombinerWeights &weights,
                          std::size_t layer, CfSpan combined);

/** Scalar reference twin of apply_mmse_bias_into. */
void apply_mmse_bias_scalar_into(const ChannelView &channel,
                                 const CombinerWeights &weights,
                                 std::size_t layer, CfSpan combined);

} // namespace lte::phy

#endif // LTE_PHY_COMBINER_HPP

/**
 * @file
 * Zadoff-Chu reference-sequence generation for the uplink
 * demodulation reference signal (DMRS).
 *
 * Per 3GPP TS 36.211 Sec. 5.5, base sequences for allocations of three
 * or more PRBs are cyclic extensions of a Zadoff-Chu sequence whose
 * length is the largest prime below the allocation size; different
 * layers are separated by cyclic time shifts, which appear as linear
 * phase ramps in the frequency domain.  We apply the same construction
 * for all allocation sizes >= 1 PRB (the spec's special 1-2 PRB QPSK
 * tables are replaced by the ZC construction; the paper's benchmark is
 * agnostic to the exact sequence values).
 */
#ifndef LTE_PHY_ZADOFF_CHU_HPP
#define LTE_PHY_ZADOFF_CHU_HPP

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace lte::phy {

/**
 * Raw Zadoff-Chu sequence x_q(m) = exp(-i*pi*q*m*(m+1)/n_zc).
 *
 * @param root root index q, coprime with n_zc
 * @param n_zc sequence length (prime in LTE usage)
 */
CVec zadoff_chu(std::uint32_t root, std::size_t n_zc);

/** @return the largest prime <= n (n >= 2). */
std::size_t largest_prime_below(std::size_t n);

/**
 * Frequency-domain DMRS base sequence of length @p m_sc (a multiple of
 * 12): cyclic extension of the largest-prime ZC sequence.
 *
 * @param m_sc allocation size in subcarriers
 * @param root ZC root (mapped into the valid range internally)
 */
CVec dmrs_base_sequence(std::size_t m_sc, std::uint32_t root);

/**
 * Layer-specific DMRS: the base sequence with cyclic shift
 * alpha = 2*pi*layer/kMaxLayers applied as a frequency-domain phase
 * ramp exp(i*alpha*k).  Distinct layers end up in disjoint delay bins,
 * which is what lets the channel-estimation window separate them.
 */
CVec dmrs_for_layer(const CVec &base, std::size_t layer);

/**
 * The complete layer DMRS a given user transmits in a given slot:
 * base sequence rooted by (user id, slot, cell id) with the layer
 * cyclic shift.  Transmitter and receiver must use this same
 * convention.  The cell term mirrors TS 36.211's cell-dependent group
 * hopping: distinct cells draw distinct ZC roots, so their reference
 * sequences are decorrelated; cell 1 contributes nothing, keeping the
 * single-cell sequences bit-identical to the pre-multi-cell ones.
 */
CVec user_dmrs(std::uint32_t user_id, std::size_t slot, std::size_t m_sc,
               std::size_t layer, std::uint32_t cell_id = 1);

/**
 * Heap-free variant of user_dmrs(): writes the @p out.size() sequence
 * samples into @p out (which defines m_sc).  The ZC sequence, cyclic
 * extension and layer phase ramp are all computed in place.
 */
void user_dmrs_into(std::uint32_t user_id, std::size_t slot,
                    std::size_t layer, CfSpan out,
                    std::uint32_t cell_id = 1);

/** The shared (user, slot, cell) -> ZC root convention. */
inline std::uint32_t
dmrs_root(std::uint32_t user_id, std::size_t slot, std::uint32_t cell_id)
{
    return static_cast<std::uint32_t>(user_id * 7 + slot * 3 + 1 +
                                      (cell_id - 1) * 131);
}

} // namespace lte::phy

#endif // LTE_PHY_ZADOFF_CHU_HPP

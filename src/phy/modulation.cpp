#include "phy/modulation.hpp"

#include <array>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "simd/complex.hpp"

namespace lte::phy {

namespace {

/**
 * Per-axis amplitude from the bits controlling that axis, per
 * TS 36.211: the first bit selects the sign, later bits select the
 * magnitude ring, Gray coded.
 */
float
axis_16qam(std::uint8_t sign_bit, std::uint8_t mag_bit)
{
    const float sign = sign_bit ? -1.0f : 1.0f;
    const float mag = mag_bit ? 3.0f : 1.0f;
    return sign * mag / std::sqrt(10.0f);
}

float
axis_64qam(std::uint8_t sign_bit, std::uint8_t b1, std::uint8_t b2)
{
    const float sign = sign_bit ? -1.0f : 1.0f;
    // Gray ladder: (b1, b2) = 00 -> 3, 01 -> 1, 10 -> 5, 11 -> 7.
    float mag;
    if (!b1)
        mag = b2 ? 1.0f : 3.0f;
    else
        mag = b2 ? 7.0f : 5.0f;
    return sign * mag / std::sqrt(42.0f);
}

cf32
map_symbol(const std::uint8_t *b, Modulation mod)
{
    switch (mod) {
      case Modulation::kQpsk: {
        const float a = 1.0f / std::sqrt(2.0f);
        return cf32(b[0] ? -a : a, b[1] ? -a : a);
      }
      case Modulation::k16Qam:
        return cf32(axis_16qam(b[0], b[2]), axis_16qam(b[1], b[3]));
      case Modulation::k64Qam:
        return cf32(axis_64qam(b[0], b[2], b[4]),
                    axis_64qam(b[1], b[3], b[5]));
    }
    return cf32(0.0f, 0.0f);
}

CVec
build_constellation(Modulation mod)
{
    const std::size_t bps = bits_per_symbol(mod);
    const std::size_t points = std::size_t{1} << bps;
    CVec table(points);
    for (std::size_t v = 0; v < points; ++v) {
        std::uint8_t bits[6] = {};
        for (std::size_t i = 0; i < bps; ++i)
            bits[i] = static_cast<std::uint8_t>((v >> (bps - 1 - i)) & 1);
        table[v] = map_symbol(bits, mod);
    }
    return table;
}

/**
 * Per-axis level table: the amplitude for every pattern of the bits
 * controlling one axis (I bits are the even global positions, Q bits
 * the odd ones; pattern bit 0 is the earliest global bit).
 */
struct AxisTable
{
    std::size_t n_bits = 1;      ///< bits per axis
    std::vector<float> levels;   ///< amplitude per pattern (size 2^n)
};

AxisTable
build_axis_table(Modulation mod)
{
    AxisTable table;
    table.n_bits = bits_per_symbol(mod) / 2;
    const std::size_t patterns = std::size_t{1} << table.n_bits;
    table.levels.resize(patterns);
    for (std::size_t p = 0; p < patterns; ++p) {
        const auto b0 = static_cast<std::uint8_t>(p & 1);
        const auto b1 = static_cast<std::uint8_t>((p >> 1) & 1);
        const auto b2 = static_cast<std::uint8_t>((p >> 2) & 1);
        switch (mod) {
          case Modulation::kQpsk:
            table.levels[p] = b0 ? -1.0f / std::sqrt(2.0f)
                                 : 1.0f / std::sqrt(2.0f);
            break;
          case Modulation::k16Qam:
            table.levels[p] = axis_16qam(b0, b1);
            break;
          case Modulation::k64Qam:
            table.levels[p] = axis_64qam(b0, b1, b2);
            break;
        }
    }
    return table;
}

const AxisTable &
axis_table(Modulation mod)
{
    static const AxisTable qpsk = build_axis_table(Modulation::kQpsk);
    static const AxisTable qam16 = build_axis_table(Modulation::k16Qam);
    static const AxisTable qam64 = build_axis_table(Modulation::k64Qam);
    switch (mod) {
      case Modulation::kQpsk: return qpsk;
      case Modulation::k16Qam: return qam16;
      case Modulation::k64Qam: return qam64;
    }
    return qpsk;
}

} // namespace

const CVec &
constellation(Modulation mod)
{
    static const CVec qpsk = build_constellation(Modulation::kQpsk);
    static const CVec qam16 = build_constellation(Modulation::k16Qam);
    static const CVec qam64 = build_constellation(Modulation::k64Qam);
    switch (mod) {
      case Modulation::kQpsk: return qpsk;
      case Modulation::k16Qam: return qam16;
      case Modulation::k64Qam: return qam64;
    }
    return qpsk;
}

CVec
modulate(const std::vector<std::uint8_t> &bits, Modulation mod)
{
    const std::size_t bps = bits_per_symbol(mod);
    LTE_CHECK(bits.size() % bps == 0,
              "bit count must be a multiple of bits per symbol");
    CVec out(bits.size() / bps);
    for (std::size_t s = 0; s < out.size(); ++s)
        out[s] = map_symbol(bits.data() + s * bps, mod);
    return out;
}

namespace {

/** Clamp the demapper noise variance to the documented floor.  The
 *  negated comparison also routes NaN to the floor. */
float
clamp_noise_var(float noise_var)
{
    return noise_var > kDemodNoiseFloor ? noise_var : kDemodNoiseFloor;
}

/**
 * Demap one symbol: bits_per_symbol LLRs written to @p out.  Global
 * bit k lives on axis k % 2 as axis bit k / 2; the cross-axis distance
 * cancels in best1 - best0, so each axis is demapped independently.
 * Shared by the scalar reference loop and the SIMD kernel's tail so
 * tail lanes are bit-identical to the reference.
 */
inline void
demap_symbol(const AxisTable &table, cf32 y, float inv_nv, Llr *out)
{
    const std::size_t patterns = table.levels.size();
    // Axis patterns are at most 8 (64-QAM: 3 bits per axis).
    float dist[8];
    for (int axis = 0; axis < 2; ++axis) {
        const float v = axis == 0 ? y.real() : y.imag();
        for (std::size_t p = 0; p < patterns; ++p) {
            const float d = v - table.levels[p];
            dist[p] = d * d;
        }
        for (std::size_t bit = 0; bit < table.n_bits; ++bit) {
            float best0 = std::numeric_limits<float>::max();
            float best1 = std::numeric_limits<float>::max();
            for (std::size_t p = 0; p < patterns; ++p) {
                if ((p >> bit) & 1)
                    best1 = std::min(best1, dist[p]);
                else
                    best0 = std::min(best0, dist[p]);
            }
            out[2 * bit + axis] = (best1 - best0) * inv_nv;
        }
    }
}

#if defined(LTE_SIMD_ENABLED)

/**
 * Vectorized max-log demapper: one symbol per SIMD lane, the same
 * distance/min arithmetic as demap_symbol in every lane.  Outputs are
 * produced bit-major (one vector per LLR position) and transposed to
 * the symbol-major LLR layout on store; QPSK's two positions are a
 * plain interleave.  The sub-kLanes tail falls back to demap_symbol.
 */
template <std::size_t kBps>
void
demap_simd(CfView symbols, const AxisTable &table, float inv_nv,
           LlrSpan llrs)
{
    constexpr std::size_t n_bits = kBps / 2;
    constexpr std::size_t patterns = std::size_t{1} << n_bits;

    simd::vf levels[patterns];
    for (std::size_t p = 0; p < patterns; ++p)
        levels[p] = simd::vf::set1(table.levels[p]);
    const simd::vf inv = simd::vf::set1(inv_nv);
    const simd::vf flt_max =
        simd::vf::set1(std::numeric_limits<float>::max());

    const std::size_t n = symbols.size();
    std::size_t s = 0;
    for (; s + simd::kLanes <= n; s += simd::kLanes) {
        const simd::cvf y = simd::cload(symbols.data() + s);
        simd::vf out[kBps];
        for (int axis = 0; axis < 2; ++axis) {
            const simd::vf v = axis == 0 ? y.re : y.im;
            simd::vf dist[patterns];
            for (std::size_t p = 0; p < patterns; ++p) {
                const simd::vf d = v - levels[p];
                dist[p] = d * d;
            }
            for (std::size_t bit = 0; bit < n_bits; ++bit) {
                simd::vf best0 = flt_max;
                simd::vf best1 = flt_max;
                for (std::size_t p = 0; p < patterns; ++p) {
                    if ((p >> bit) & 1)
                        best1 = simd::vmin(best1, dist[p]);
                    else
                        best0 = simd::vmin(best0, dist[p]);
                }
                out[2 * bit + axis] = (best1 - best0) * inv;
            }
        }
        float *dst = llrs.data() + s * kBps;
        if constexpr (kBps == 2) {
            simd::store_interleaved2(dst, out[0], out[1]);
        } else {
            float buf[kBps][simd::kLanes];
            for (std::size_t k = 0; k < kBps; ++k)
                out[k].store(buf[k]);
            for (std::size_t j = 0; j < simd::kLanes; ++j) {
                for (std::size_t k = 0; k < kBps; ++k)
                    dst[j * kBps + k] = buf[k][j];
            }
        }
    }
    for (; s < n; ++s)
        demap_symbol(table, symbols[s], inv_nv, llrs.data() + s * kBps);
}

#endif // LTE_SIMD_ENABLED

} // namespace

void
demodulate_soft_scalar_into(CfView symbols, Modulation mod,
                            float noise_var, LlrSpan llrs)
{
    const std::size_t bps = bits_per_symbol(mod);
    LTE_CHECK(llrs.size() == symbols.size() * bps,
              "LLR buffer length mismatch");
    const AxisTable &table = axis_table(mod);
    const float inv_nv = 1.0f / clamp_noise_var(noise_var);
    for (std::size_t s = 0; s < symbols.size(); ++s)
        demap_symbol(table, symbols[s], inv_nv, llrs.data() + s * bps);
}

void
demodulate_soft_into(CfView symbols, Modulation mod, float noise_var,
                     LlrSpan llrs)
{
#if defined(LTE_SIMD_ENABLED)
    const std::size_t bps = bits_per_symbol(mod);
    LTE_CHECK(llrs.size() == symbols.size() * bps,
              "LLR buffer length mismatch");
    const AxisTable &table = axis_table(mod);
    const float inv_nv = 1.0f / clamp_noise_var(noise_var);
    switch (mod) {
      case Modulation::kQpsk:
        demap_simd<2>(symbols, table, inv_nv, llrs);
        break;
      case Modulation::k16Qam:
        demap_simd<4>(symbols, table, inv_nv, llrs);
        break;
      case Modulation::k64Qam:
        demap_simd<6>(symbols, table, inv_nv, llrs);
        break;
    }
#else
    demodulate_soft_scalar_into(symbols, mod, noise_var, llrs);
#endif
}

std::vector<Llr>
demodulate_soft(const CVec &symbols, Modulation mod, float noise_var)
{
    std::vector<Llr> llrs(symbols.size() * bits_per_symbol(mod));
    demodulate_soft_into(symbols, mod, noise_var, llrs);
    return llrs;
}

float
nearest_point_distance2(cf32 y, Modulation mod)
{
    const AxisTable &table = axis_table(mod);
    float best_i = std::numeric_limits<float>::max();
    float best_q = std::numeric_limits<float>::max();
    for (float level : table.levels) {
        const float di = y.real() - level;
        const float dq = y.imag() - level;
        best_i = std::min(best_i, di * di);
        best_q = std::min(best_q, dq * dq);
    }
    return best_i + best_q;
}

void
hard_decision_into(LlrView llrs, BitSpan out)
{
    LTE_CHECK(out.size() == llrs.size(), "bit buffer length mismatch");
    for (std::size_t i = 0; i < llrs.size(); ++i)
        out[i] = llrs[i] >= 0.0f ? 0 : 1;
}

std::vector<std::uint8_t>
hard_decision(const std::vector<Llr> &llrs)
{
    std::vector<std::uint8_t> bits(llrs.size());
    hard_decision_into(llrs, bits);
    return bits;
}

} // namespace lte::phy

#include "phy/crc.hpp"

#include "common/check.hpp"

namespace lte::phy {

std::uint32_t
crc24(BitView bits, std::uint32_t poly)
{
    std::uint32_t reg = 0;
    for (std::uint8_t bit : bits) {
        LTE_CHECK(bit <= 1, "bits must be 0 or 1");
        const std::uint32_t msb = (reg >> 23) & 1u;
        reg = (reg << 1) & 0xFFFFFFu;
        if (msb ^ bit)
            reg ^= poly & 0xFFFFFFu;
    }
    return reg;
}

std::vector<std::uint8_t>
crc24_attach(std::vector<std::uint8_t> bits, std::uint32_t poly)
{
    const std::uint32_t crc = crc24(bits, poly);
    for (int i = 23; i >= 0; --i)
        bits.push_back(static_cast<std::uint8_t>((crc >> i) & 1u));
    return bits;
}

bool
crc24_check(BitView bits, std::uint32_t poly)
{
    if (bits.size() < 24)
        return false;
    return crc24(bits, poly) == 0;
}

} // namespace lte::phy

/**
 * @file
 * Per-user subframe processing — the paper's Fig. 3 chain with the
 * Fig. 5 task structure.
 *
 * A UserProcessor owns the receive-side state for one user's subframe
 * and exposes the exact task granularity of Sec. IV-C:
 *
 *   stage 1: n_antennas x n_layers channel-estimation tasks
 *   join:    combiner-weight computation (single task)
 *   stage 2: 6 x n_layers demodulation tasks (each handles the same
 *            data-symbol index in both slots: antenna combining + IFFT)
 *   tail:    per-codeblock tasks (deinterleave, soft demap,
 *            descramble, turbo pass-through) over disjoint LLR/bit
 *            slices, closed by a CRC/EVM reduce
 *   decode:  (real-turbo mode only) one max-log-MAP decode task per
 *            LTE code block (turbo_segment), each reading its own
 *            descrambled LLR slice and writing its own transport-block
 *            slice, between the tail tasks and the reduce
 *
 * Tasks within one stage touch disjoint state, so the stages may be
 * executed concurrently by different worker threads provided the
 * caller orders the stages (the work-stealing runtime chains them via
 * continuations; the serial engine simply calls process_all()).
 *
 * Memory model: a processor is a long-lived object that is re-bound
 * to a new (params, signal) pair every subframe via bind().  All
 * per-subframe buffers are spans carved from an internal bump arena
 * that grows only past its high-water mark, so steady-state subframe
 * processing performs zero heap allocations (DESIGN.md "Memory &
 * engine architecture").
 */
#ifndef LTE_PHY_USER_PROCESSOR_HPP
#define LTE_PHY_USER_PROCESSOR_HPP

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "common/workspace.hpp"
#include "phy/combiner.hpp"
#include "phy/params.hpp"
#include "phy/turbo.hpp"

namespace lte::phy {

/**
 * Received IQ samples for one user's allocation in one subframe:
 * antennas[a].slots[s][sym] holds the allocated subcarriers of SC-FDMA
 * symbol sym of slot s on antenna a (the front-end FFT and subcarrier
 * de-mapping of Fig. 2 are outside the benchmark, as in the paper).
 */
struct UserSignal
{
    struct Antenna
    {
        std::array<std::array<CVec, kSymbolsPerSlot>, kSlotsPerSubframe>
            slots;
    };
    std::vector<Antenna> antennas;

    /** Shape-check against user parameters; throws on mismatch. */
    void validate(const UserParams &params, std::size_t n_antennas) const;
};

/** Outcome of processing one user. */
struct UserResult
{
    std::uint32_t user_id = 0;
    /**
     * Decoded transport-block bits (CRC-24A included).  In
     * pass-through mode this is the whole hardened codeword
     * (capacity_bits); in real-turbo mode it is the transport block of
     * the LTE segmentation (turbo_segment(..).tb_bits(), per-block
     * CRC-24B stripped) — the *same* length whether the decode ran at
     * full budget, reduced iterations or the degraded bypass, so a
     * mid-stream degrade flip never changes the framing.
     */
    std::vector<std::uint8_t> bits;
    /** Transport-block CRC-24A check outcome. */
    bool crc_ok = false;
    /** True when crc_ok does not reflect a real decode: pass-through
     *  mode (no encoder upstream, the check runs on hardened random
     *  bits) or the degrade bypass (decode skipped).  Consumers doing
     *  link adaptation must substitute a modelled error rate. */
    bool crc_modelled = false;
    /** Total max-log-MAP iterations spent across the user's code
     *  blocks (0 in pass-through mode and under the bypass; CRC early
     *  termination makes this observably less than the budget). */
    std::uint32_t decode_iterations = 0;
    /** RMS error-vector magnitude over all data symbols (linear). */
    float evm_rms = 0.0f;
    /** Noise variance used for demapping. */
    float noise_var = 0.0f;
    /** FNV-1a digest of the decoded bits, for serial-vs-parallel
     *  validation (paper Sec. IV-D). */
    std::uint64_t checksum = 0;
};

/** FNV-1a over a bit vector (exposed for tests and validation). */
std::uint64_t bit_checksum(const std::vector<std::uint8_t> &bits);

class UserProcessor
{
  public:
    /**
     * Create an unbound processor holding only configuration; call
     * bind() before processing.  The same processor can be re-bound
     * every subframe, reusing its workspace.
     */
    explicit UserProcessor(const ReceiverConfig &config);

    /**
     * Legacy convenience: construct and bind in one step.
     *
     * @param params  the user's scheduling parameters
     * @param config  receiver configuration
     * @param signal  received samples; must outlive the processor
     */
    UserProcessor(const UserParams &params, const ReceiverConfig &config,
                  const UserSignal *signal);

    /**
     * (Re)bind to a user's subframe: validates shapes, sizes the
     * workspace (allocation-free once past the high-water mark), and
     * precomputes the DMRS references and deinterleave permutations.
     * @param signal must outlive the binding
     */
    void bind(const UserParams &params, const UserSignal *signal);

    /** Number of stage-1 tasks: antennas x layers. */
    std::size_t n_chanest_tasks() const;

    /** Number of stage-2 tasks: data symbols per slot (6) x layers. */
    std::size_t n_demod_tasks() const;

    /**
     * Stage-1 task: estimate the channel for one (antenna, layer) pair
     * in both slots (matched filter, IFFT, window, FFT).
     * Tasks with distinct indices may run concurrently.
     */
    void run_chanest_task(std::size_t task_index);

    /** Join stage: per-slot MMSE combiner weights; requires all
     *  stage-1 tasks complete. */
    void compute_weights();

    /**
     * Stage-2 task: antenna combining + IFFT for one (data-symbol,
     * layer) pair, processing both slots; requires compute_weights().
     */
    void run_demod_task(std::size_t task_index);

    /**
     * Number of parallel tail tasks: greedy ≤ kTailCodeblockBits
     * codeblocks of the canonical codeword (op_model's
     * tail_codeblock_count) in every mode — in real-turbo mode the
     * tail tasks produce the descrambled soft codeword and the decode
     * stage below consumes it.
     */
    std::size_t n_tail_tasks() const;

    /**
     * Tail task: deinterleave, soft-demap, descramble and harden one
     * codeblock into its disjoint LLR/bit slices, accumulating that
     * codeblock's EVM partial; requires all stage-2 tasks complete.
     * Tasks with distinct indices may run concurrently (scratch comes
     * from the per-thread kernel_scratch()).
     */
    void run_tail_task(std::size_t task_index);

    /**
     * Number of parallel decode tasks: the LTE code blocks of the
     * allocation in real-turbo mode, 0 in pass-through mode.  Stable
     * across degrade flips (a degraded decode task is the cheap
     * bypass, not a missing task), so join counters loaded at bind
     * time stay valid.
     */
    std::size_t n_decode_tasks() const;

    /**
     * Decode task: max-log-MAP decode of one code block from its
     * descrambled LLR slice into its disjoint transport-block slice
     * of the result (CRC-24B stripped for segmented blocks), with CRC
     * early termination and the degrade ladder's iteration budget;
     * requires all tail tasks complete.  Tasks with distinct indices
     * may run concurrently (decoder state comes from the per-thread
     * turbo_scratch()).
     */
    void run_decode_task(std::size_t block);

    /**
     * Reduce: fold the per-codeblock EVM partials in canonical order,
     * CRC-check and checksum the decoded bits; requires all tail
     * tasks complete.  The returned reference (into a reused member)
     * stays valid until the next bind().
     */
    const UserResult &finish_reduce();

    /**
     * Tail convenience: run every tail task in order, then reduce —
     * the same decomposition the parallel runtime executes, so serial
     * and parallel outputs are bit-identical.
     */
    const UserResult &finish();

    /** Serial convenience: run every stage in order. */
    const UserResult &process_all();

    /**
     * Degrade ladder (admission-controller load shedding): at
     * kReducedIterations the combiner weights fall back from MMSE to
     * per-layer MRC and the decoder runs at the reduced iteration
     * budget; kBypass additionally hard-decides the systematic bits
     * instead of decoding.  Takes effect at the next
     * compute_weights()/decode; cleared by every bind-time reset.
     * Neither level changes any task count or the result framing.
     */
    void set_degrade(DegradeLevel level) { degrade_ = level; }
    DegradeLevel degrade() const { return degrade_; }

    /** Legacy boolean view of the ladder: true = full bypass. */
    void
    set_degraded(bool degraded)
    {
        degrade_ =
            degraded ? DegradeLevel::kBypass : DegradeLevel::kNone;
    }
    bool degraded() const { return degrade_ != DegradeLevel::kNone; }

    const UserParams &params() const { return params_; }
    const ReceiverConfig &config() const { return config_; }

    /** Workspace high-water mark in bytes (observability/tests). */
    std::size_t workspace_bytes() const { return arena_.capacity(); }

  private:
    void demod_one(std::size_t slot, std::size_t data_symbol,
                   std::size_t layer);

    /** Channel frequency response of (slot, antenna, layer). */
    CfSpan channel_slice(std::size_t slot, std::size_t antenna,
                         std::size_t layer);

    /** Equalised time-domain samples of (slot, layer, data symbol). */
    CfSpan equalised_slice(std::size_t slot, std::size_t layer,
                           std::size_t data_symbol);

    UserParams params_;
    ReceiverConfig config_;
    const UserSignal *signal_ = nullptr;
    bool bound_ = false;
    DegradeLevel degrade_ = DegradeLevel::kNone;

    /** Bump arena backing every per-subframe span below. */
    Workspace arena_;

    /** dmrs_[slot][layer]: the layer's known reference sequence. */
    std::array<std::array<CfSpan, kMaxLayers>, kSlotsPerSubframe> dmrs_;
    /** channel_[slot]: flat [antenna][layer][sc] frequency response. */
    std::array<CfSpan, kSlotsPerSubframe> channel_;
    /** equalised_[slot]: flat [layer][data_symbol][sc] time samples. */
    std::array<CfSpan, kSlotsPerSubframe> equalised_;
    /** perm_[slot]: deinterleave permutation for the slot's width. */
    std::array<std::span<std::size_t>, kSlotsPerSubframe> perm_;
    /** Soft bits for the whole subframe (capacity_bits of them). */
    LlrSpan llrs_;

    /**
     * One tail codeblock: a run of consecutive (slot, layer,
     * data-symbol) blocks of the canonical codeword and the LLR/bit
     * slice they produce.  Built at bind() (capacity reused across
     * binds); slices are disjoint, so tail tasks never share state.
     */
    struct CodeblockSlice
    {
        std::uint32_t first_block = 0;
        std::uint32_t n_blocks = 0;
        std::size_t bit_offset = 0;
        std::size_t n_bits = 0;
    };
    std::vector<CodeblockSlice> codeblocks_;

    /** Real-turbo code-block segmentation of the bound allocation
     *  (meaningful only when config_.use_real_turbo). */
    TurboSegmentation seg_{};
    /** Interleaver for seg_.block_info_bits, resolved at bind() from
     *  the process-wide cache (stable reference, zero-alloc lookup). */
    const QppInterleaver *turbo_pi_ = nullptr;
    /** Iterations each decode task actually ran (early termination),
     *  folded into result_.decode_iterations by finish_reduce() in
     *  canonical order. */
    std::array<std::uint32_t, kMaxTurboCodeblocks> cb_iterations_{};

    /** Upper bound on codeblocks: one per (slot, layer, data symbol). */
    static constexpr std::size_t kMaxTailTasks =
        kSlotsPerSubframe * kMaxLayers * kDataSymbolsPerSlot;
    /** Per-codeblock EVM partials, folded by finish_reduce() in
     *  canonical order so the sum is schedule-independent. */
    std::array<double, kMaxTailTasks> evm_acc_{};
    std::array<std::size_t, kMaxTailTasks> evm_n_{};

    /** Noise-variance estimates from each chanest task. */
    std::array<float,
               kMaxRxAntennas * kMaxLayers * kSlotsPerSubframe>
        task_noise_{};
    float noise_var_ = 0.0f;
    std::array<CombinerWeights, kSlotsPerSubframe> weights_;

    /** Reused result storage; bits keeps its capacity across binds. */
    UserResult result_;
};

} // namespace lte::phy

#endif // LTE_PHY_USER_PROCESSOR_HPP

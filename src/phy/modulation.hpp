/**
 * @file
 * Constellation mapping and soft demapping for the LTE uplink
 * modulations (QPSK, 16-QAM, 64-QAM), following the Gray mappings of
 * 3GPP TS 36.211 Sec. 7.1.
 *
 * The soft demapper produces max-log LLRs with the convention
 * LLR > 0 => bit 0 more likely, matching the mapping where bit value 0
 * selects the positive half-axis.
 */
#ifndef LTE_PHY_MODULATION_HPP
#define LTE_PHY_MODULATION_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lte::phy {

/**
 * Map a bit string onto constellation symbols.
 *
 * @param bits input bits (0/1), size must be a multiple of
 *             bits_per_symbol(mod)
 * @param mod  modulation scheme
 * @return unit-average-energy constellation symbols
 */
CVec modulate(const std::vector<std::uint8_t> &bits, Modulation mod);

/**
 * Noise-variance floor applied by the soft demapper.
 *
 * A degenerate subframe (all-zero signal, a pathological channel
 * estimate, or an upstream NaN) can reach the demapper with a noise
 * variance that is zero, negative, or NaN.  Rather than aborting the
 * whole study, the demapper clamps to this floor: LLR magnitudes
 * saturate (1/kDemodNoiseFloor is finite in float) and decoding
 * degrades gracefully.  Values above the floor are used unchanged, so
 * every realistic subframe is unaffected.
 */
inline constexpr float kDemodNoiseFloor = 1e-20f;

/**
 * Max-log soft demapping.
 *
 * Computed separably per axis (square Gray constellations make the
 * cross-axis distance terms cancel in the max-log metric), which is
 * exactly equal to the exhaustive 2-D max-log LLR at a fraction of
 * the cost.
 *
 * @param symbols   received (equalised) symbols
 * @param mod       modulation scheme
 * @param noise_var effective noise variance after combining; values
 *                  not greater than kDemodNoiseFloor (including NaN)
 *                  are clamped to the floor
 * @return bits_per_symbol(mod) LLRs per input symbol
 */
std::vector<Llr> demodulate_soft(const CVec &symbols, Modulation mod,
                                 float noise_var);

/** Heap-free variant: writes the LLRs into @p out, which must hold
 *  exactly symbols.size() * bits_per_symbol(mod) entries.  Dispatches
 *  to the SIMD demapper when the library is built with LTE_SIMD=ON. */
void demodulate_soft_into(CfView symbols, Modulation mod, float noise_var,
                          LlrSpan out);

/** Scalar reference twin of demodulate_soft_into: always the plain
 *  per-symbol loop, regardless of the SIMD build mode.  The SIMD
 *  demapper's parity tests compare against this. */
void demodulate_soft_scalar_into(CfView symbols, Modulation mod,
                                 float noise_var, LlrSpan out);

/**
 * Squared Euclidean distance from @p y to the nearest constellation
 * point of @p mod (separable per axis; used for EVM).
 */
float nearest_point_distance2(cf32 y, Modulation mod);

/** Hard decisions from LLRs (LLR >= 0 -> bit 0). */
std::vector<std::uint8_t> hard_decision(const std::vector<Llr> &llrs);

/** Heap-free hard decisions; @p out must match @p llrs in length. */
void hard_decision_into(LlrView llrs, BitSpan out);

/** The full constellation of @p mod (2^bits points, Gray mapped). */
const CVec &constellation(Modulation mod);

} // namespace lte::phy

#endif // LTE_PHY_MODULATION_HPP

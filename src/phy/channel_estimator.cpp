#include "phy/channel_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "fft/fft.hpp"

namespace lte::phy {

std::pair<std::size_t, std::size_t>
window_extent(std::size_t n, double window_fraction)
{
    // Total kept bins; at least one, never more than n.
    const auto total = std::clamp<std::size_t>(
        static_cast<std::size_t>(window_fraction * static_cast<double>(n)),
        1, n);
    const std::size_t back = total / 4;
    const std::size_t front = total - back;
    return {front, back};
}

ChannelEstimate
estimate_channel(const CVec &received_ref, const CVec &layer_ref,
                 const ChannelEstimatorConfig &cfg)
{
    LTE_CHECK(!received_ref.empty(), "empty reference symbol");
    LTE_CHECK(received_ref.size() == layer_ref.size(),
              "reference length mismatch");
    LTE_CHECK(cfg.window_fraction > 0.0 && cfg.window_fraction <= 1.0,
              "window fraction out of range");

    const std::size_t n = received_ref.size();

    // 1. Matched filter: DMRS samples have unit magnitude, so
    //    multiplying by the conjugate divides out the known sequence.
    CVec raw(n);
    for (std::size_t k = 0; k < n; ++k)
        raw[k] = received_ref[k] * std::conj(layer_ref[k]);

    // 2. To the delay domain.
    auto plan = fft::FftCache::instance().get(n);
    CVec delay(n);
    plan->inverse(raw.data(), delay.data());

    // 3. Window: keep [0, front) and [n-back, n).
    const auto [front, back] = window_extent(n, cfg.window_fraction);
    CVec kept(n, cf32(0.0f, 0.0f));
    for (std::size_t i = 0; i < n; ++i) {
        if (i < front || i >= n - back)
            kept[i] = delay[i];
    }

    // Noise bins: the guard region between this layer's window and the
    // next cyclic-shift bin at n/4, which holds neither this layer's
    // taps nor any other layer's.
    double noise_energy = 0.0;
    std::size_t noise_bins = 0;
    const std::size_t guard = n / 32;
    const std::size_t lo = front + guard;
    const std::size_t hi = n / 4 > guard ? n / 4 - guard : 0;
    for (std::size_t i = lo; i < hi; ++i) {
        noise_energy += std::norm(delay[i]);
        ++noise_bins;
    }

    // 4. Back to the frequency domain.
    ChannelEstimate est;
    est.freq_response.resize(n);
    plan->forward(kept.data(), est.freq_response.data());

    // Noise estimate: the IFFT of unit-variance frequency-domain noise
    // has per-bin variance 1/n, so scale back up by n to express the
    // estimate per subcarrier.  noise_var stays 0 when the allocation
    // is too small to have guard bins; the caller falls back to its
    // configured default.
    if (noise_bins > 0) {
        est.noise_var = static_cast<float>(
            noise_energy / static_cast<double>(noise_bins) *
            static_cast<double>(n));
    }
    return est;
}

} // namespace lte::phy

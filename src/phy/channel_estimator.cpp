#include "phy/channel_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "fft/fft.hpp"
#include "simd/complex.hpp"

namespace lte::phy {

void
matched_filter_conj_scalar_into(CfView rx, CfView ref, CfSpan out)
{
    LTE_CHECK(rx.size() == ref.size() && out.size() == rx.size(),
              "matched filter length mismatch");
    for (std::size_t k = 0; k < rx.size(); ++k)
        out[k] = rx[k] * std::conj(ref[k]);
}

void
matched_filter_conj_into(CfView rx, CfView ref, CfSpan out)
{
#if defined(LTE_SIMD_ENABLED)
    LTE_CHECK(rx.size() == ref.size() && out.size() == rx.size(),
              "matched filter length mismatch");
    const std::size_t n = rx.size();
    std::size_t k = 0;
    for (; k + simd::kLanes <= n; k += simd::kLanes) {
        const simd::cvf a = simd::cload(rx.data() + k);
        const simd::cvf b = simd::cload(ref.data() + k);
        simd::cstore(out.data() + k, simd::cmul_conj(a, b));
    }
    for (; k < n; ++k)
        out[k] = rx[k] * std::conj(ref[k]);
#else
    matched_filter_conj_scalar_into(rx, ref, out);
#endif
}

std::pair<std::size_t, std::size_t>
window_extent(std::size_t n, double window_fraction)
{
    // Total kept bins; at least one, never more than n.
    const auto total = std::clamp<std::size_t>(
        static_cast<std::size_t>(window_fraction * static_cast<double>(n)),
        1, n);
    const std::size_t back = total / 4;
    const std::size_t front = total - back;
    return {front, back};
}

std::size_t
estimate_channel_scratch(std::size_t n)
{
    return n + fft::FftCache::instance().plan(n).scratch_size();
}

float
estimate_channel_into(CfView received_ref, CfView layer_ref,
                      const ChannelEstimatorConfig &cfg,
                      CfSpan freq_response, CfSpan scratch)
{
    LTE_CHECK(!received_ref.empty(), "empty reference symbol");
    LTE_CHECK(received_ref.size() == layer_ref.size(),
              "reference length mismatch");
    LTE_CHECK(freq_response.size() == received_ref.size(),
              "output length mismatch");
    LTE_CHECK(cfg.window_fraction > 0.0 && cfg.window_fraction <= 1.0,
              "window fraction out of range");

    const std::size_t n = received_ref.size();
    const fft::Fft &plan = fft::FftCache::instance().plan(n);
    LTE_ASSERT(scratch.size() >= n + plan.scratch_size(),
               "channel estimator scratch too small");
    const CfSpan delay = scratch.subspan(0, n);
    const CfSpan fft_scratch = scratch.subspan(n);

    // 1. Matched filter (SIMD-dispatched).
    matched_filter_conj_into(received_ref, layer_ref, freq_response);

    // 2. To the delay domain.
    plan.inverse(freq_response.data(), delay.data(), fft_scratch);

    // Noise bins: the guard region between this layer's window and the
    // next cyclic-shift bin at n/4, which holds neither this layer's
    // taps nor any other layer's.
    const auto [front, back] = window_extent(n, cfg.window_fraction);
    double noise_energy = 0.0;
    std::size_t noise_bins = 0;
    const std::size_t guard = n / 32;
    const std::size_t lo = front + guard;
    const std::size_t hi = n / 4 > guard ? n / 4 - guard : 0;
    for (std::size_t i = lo; i < hi; ++i) {
        noise_energy += std::norm(delay[i]);
        ++noise_bins;
    }

    // 3. Window in place: keep [0, front) and [n-back, n).  A block
    //    fill, which the compiler lowers to wide stores directly.
    std::fill(delay.begin() + static_cast<std::ptrdiff_t>(front),
              delay.begin() + static_cast<std::ptrdiff_t>(n - back),
              cf32(0.0f, 0.0f));

    // 4. Back to the frequency domain.
    plan.forward(delay.data(), freq_response.data(), fft_scratch);

    // Noise estimate: the IFFT of unit-variance frequency-domain noise
    // has per-bin variance 1/n, so scale back up by n to express the
    // estimate per subcarrier.  noise_var stays 0 when the allocation
    // is too small to have guard bins; the caller falls back to its
    // configured default.
    if (noise_bins > 0) {
        return static_cast<float>(noise_energy /
                                  static_cast<double>(noise_bins) *
                                  static_cast<double>(n));
    }
    return 0.0f;
}

ChannelEstimate
estimate_channel(const CVec &received_ref, const CVec &layer_ref,
                 const ChannelEstimatorConfig &cfg)
{
    const std::size_t n = received_ref.size();
    LTE_CHECK(n >= 1, "empty reference symbol");
    ChannelEstimate est;
    est.freq_response.resize(n);
    CVec scratch(estimate_channel_scratch(n));
    est.noise_var = estimate_channel_into(
        received_ref, layer_ref, cfg, est.freq_response,
        CfSpan(scratch.data(), scratch.size()));
    return est;
}

} // namespace lte::phy

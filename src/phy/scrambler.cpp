#include "phy/scrambler.hpp"

#include <array>
#include <bit>

#include "common/check.hpp"

namespace lte::phy {

namespace {

constexpr int kStateBits = 31;

/** GF(2) state-transition matrix of one LFSR: row i is the mask of
 *  current-state bits whose parity gives next-state bit i. */
struct StepMatrix
{
    std::array<std::uint32_t, kStateBits> rows;
};

/** One advance(): bit i <- bit i+1 (shift), bit 30 <- parity of the
 *  feedback taps. */
StepMatrix
one_step(std::uint32_t taps)
{
    StepMatrix m{};
    for (int i = 0; i + 1 < kStateBits; ++i)
        m.rows[i] = 1u << (i + 1);
    m.rows[kStateBits - 1] = taps;
    return m;
}

std::uint32_t
apply(const StepMatrix &m, std::uint32_t state)
{
    std::uint32_t out = 0;
    for (int i = 0; i < kStateBits; ++i)
        out |= static_cast<std::uint32_t>(
                   std::popcount(m.rows[i] & state) & 1)
               << i;
    return out;
}

/** m∘m: row i of the square is the XOR of m's rows selected by row i. */
StepMatrix
square(const StepMatrix &m)
{
    StepMatrix sq{};
    for (int i = 0; i < kStateBits; ++i) {
        std::uint32_t row = 0;
        std::uint32_t sel = m.rows[i];
        while (sel != 0) {
            row ^= m.rows[std::countr_zero(sel)];
            sel &= sel - 1;
        }
        sq.rows[i] = row;
    }
    return sq;
}

/** Jump matrices for 2^k steps, k = 0..kJumpLevels-1.  2^40 sequence
 *  bits is orders of magnitude past any codeword offset. */
constexpr int kJumpLevels = 40;

struct JumpTable
{
    std::array<StepMatrix, kJumpLevels> pow2;
};

JumpTable
make_jump_table(std::uint32_t taps)
{
    JumpTable t{};
    t.pow2[0] = one_step(taps);
    for (int k = 1; k < kJumpLevels; ++k)
        t.pow2[k] = square(t.pow2[k - 1]);
    return t;
}

// x1(n+31) = x1(n+3) + x1(n);  x2(n+31) = x2(n+3) + x2(n+2)
//            + x2(n+1) + x2(n)                          (mod 2)
const JumpTable &
x1_jumps()
{
    static const JumpTable t = make_jump_table((1u << 3) | 1u);
    return t;
}

const JumpTable &
x2_jumps()
{
    static const JumpTable t = make_jump_table(0xFu);
    return t;
}

} // namespace

void
GoldStream::skip(std::size_t n)
{
    // Below ~2 matrix hops the plain steps win.
    if (n < 64) {
        while (n-- > 0)
            advance();
        return;
    }
    LTE_CHECK((n >> kJumpLevels) == 0, "skip distance out of range");
    const JumpTable &j1 = x1_jumps();
    const JumpTable &j2 = x2_jumps();
    for (int k = 0; k < kJumpLevels && (n >> k) != 0; ++k) {
        if ((n >> k) & 1u) {
            x1_ = apply(j1.pow2[k], x1_);
            x2_ = apply(j2.pow2[k], x2_);
        }
    }
}

std::vector<std::uint8_t>
gold_sequence(std::uint32_t c_init, std::size_t length)
{
    GoldStream stream(c_init);
    std::vector<std::uint8_t> c(length);
    for (std::size_t n = 0; n < length; ++n)
        c[n] = stream.next();
    return c;
}

std::uint32_t
scrambling_init(std::uint32_t user_id, std::uint32_t cell_id)
{
    // RNTI * 2^14 + cell identity, the PUSCH-style composition.
    return ((user_id + 1) << 14) + (cell_id & 0x1FF);
}

std::vector<std::uint8_t>
scramble(const std::vector<std::uint8_t> &bits, std::uint32_t c_init)
{
    GoldStream stream(c_init);
    std::vector<std::uint8_t> out(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        LTE_CHECK(bits[i] <= 1, "bits must be 0 or 1");
        out[i] = bits[i] ^ stream.next();
    }
    return out;
}

void
descramble_soft_inplace(LlrSpan llrs, std::uint32_t c_init)
{
    descramble_soft_inplace(llrs, c_init, 0);
}

void
descramble_soft_inplace(LlrSpan llrs, std::uint32_t c_init,
                        std::size_t skip_bits)
{
    GoldStream stream(c_init);
    stream.skip(skip_bits);
    for (Llr &v : llrs) {
        if (stream.next())
            v = -v;
    }
}

std::vector<Llr>
descramble_soft(const std::vector<Llr> &llrs, std::uint32_t c_init)
{
    std::vector<Llr> out = llrs;
    descramble_soft_inplace(out, c_init);
    return out;
}

} // namespace lte::phy

#include "phy/scrambler.hpp"

#include "common/check.hpp"

namespace lte::phy {

std::vector<std::uint8_t>
gold_sequence(std::uint32_t c_init, std::size_t length)
{
    GoldStream stream(c_init);
    std::vector<std::uint8_t> c(length);
    for (std::size_t n = 0; n < length; ++n)
        c[n] = stream.next();
    return c;
}

std::uint32_t
scrambling_init(std::uint32_t user_id, std::uint32_t cell_id)
{
    // RNTI * 2^14 + cell identity, the PUSCH-style composition.
    return ((user_id + 1) << 14) + (cell_id & 0x1FF);
}

std::vector<std::uint8_t>
scramble(const std::vector<std::uint8_t> &bits, std::uint32_t c_init)
{
    GoldStream stream(c_init);
    std::vector<std::uint8_t> out(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        LTE_CHECK(bits[i] <= 1, "bits must be 0 or 1");
        out[i] = bits[i] ^ stream.next();
    }
    return out;
}

void
descramble_soft_inplace(LlrSpan llrs, std::uint32_t c_init)
{
    GoldStream stream(c_init);
    for (Llr &v : llrs) {
        if (stream.next())
            v = -v;
    }
}

std::vector<Llr>
descramble_soft(const std::vector<Llr> &llrs, std::uint32_t c_init)
{
    std::vector<Llr> out = llrs;
    descramble_soft_inplace(out, c_init);
    return out;
}

} // namespace lte::phy

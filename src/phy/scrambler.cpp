#include "phy/scrambler.hpp"

#include "common/check.hpp"

namespace lte::phy {

std::vector<std::uint8_t>
gold_sequence(std::uint32_t c_init, std::size_t length)
{
    constexpr std::size_t kNc = 1600;
    const std::size_t total = kNc + length + 31;

    // x1(0) = 1; x2 initialised from c_init.
    std::vector<std::uint8_t> x1(total, 0), x2(total, 0);
    x1[0] = 1;
    for (int i = 0; i < 31; ++i)
        x2[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((c_init >> i) & 1u);

    for (std::size_t n = 0; n + 31 < total; ++n) {
        x1[n + 31] = static_cast<std::uint8_t>((x1[n + 3] + x1[n]) & 1);
        x2[n + 31] = static_cast<std::uint8_t>(
            (x2[n + 3] + x2[n + 2] + x2[n + 1] + x2[n]) & 1);
    }

    std::vector<std::uint8_t> c(length);
    for (std::size_t n = 0; n < length; ++n)
        c[n] = static_cast<std::uint8_t>((x1[n + kNc] + x2[n + kNc]) & 1);
    return c;
}

std::uint32_t
scrambling_init(std::uint32_t user_id, std::uint32_t cell_id)
{
    // RNTI * 2^14 + cell identity, the PUSCH-style composition.
    return ((user_id + 1) << 14) + (cell_id & 0x1FF);
}

std::vector<std::uint8_t>
scramble(const std::vector<std::uint8_t> &bits, std::uint32_t c_init)
{
    const auto c = gold_sequence(c_init, bits.size());
    std::vector<std::uint8_t> out(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        LTE_CHECK(bits[i] <= 1, "bits must be 0 or 1");
        out[i] = bits[i] ^ c[i];
    }
    return out;
}

std::vector<Llr>
descramble_soft(const std::vector<Llr> &llrs, std::uint32_t c_init)
{
    const auto c = gold_sequence(c_init, llrs.size());
    std::vector<Llr> out(llrs.size());
    for (std::size_t i = 0; i < llrs.size(); ++i)
        out[i] = c[i] ? -llrs[i] : llrs[i];
    return out;
}

} // namespace lte::phy

#include "phy/rate_matching.hpp"

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace lte::phy {

namespace {

/** TS 36.212 Table 5.1.4-1 inter-column permutation (32 columns). */
constexpr int kColumnPermutation[32] = {
    0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30,
    1, 17, 9, 25, 5, 21, 13, 29, 3, 19, 11, 27, 7, 23, 15, 31};

constexpr std::size_t kColumns = 32;

/**
 * Index into the turbo_encode() output for position @p i of stream
 * @p stream (each stream is k + 4 long: k body bits plus four
 * termination bits).  See the header for the tail assignment.
 */
std::int32_t
stream_to_coded(std::size_t stream, std::size_t i, std::size_t k)
{
    const std::size_t tail_base = 3 * k;
    if (i < k) {
        return static_cast<std::int32_t>(stream * k + i);
    }
    const std::size_t t = i - k; // 0..3
    switch (stream) {
      case 0: // x1_0, x1_1, x1_2, x2_0
        return static_cast<std::int32_t>(
            t < 3 ? tail_base + 2 * t : tail_base + 6);
      case 1: // z1_0, z1_1, z1_2, z2_0
        return static_cast<std::int32_t>(
            t < 3 ? tail_base + 2 * t + 1 : tail_base + 7);
      default: // x2_1, z2_1, x2_2, z2_2
        return static_cast<std::int32_t>(tail_base + 8 + t);
    }
}

} // namespace

RateMatcher::RateMatcher(std::size_t k_info)
    : k_(k_info)
{
    LTE_CHECK(k_ >= 8 && k_ % 8 == 0,
              "rate matcher needs a valid turbo block size");

    const std::size_t d = k_ + 4; // per-stream length
    rows_ = ceil_div(d, kColumns);
    const std::size_t padded = rows_ * kColumns;
    const std::size_t pad = padded - d;

    // Sub-block interleave each stream: write row-wise (with leading
    // NULLs), read the permuted columns top to bottom.  Streams 0 and
    // 1 use the plain column read; stream 2 uses the spec's shifted
    // read pattern pi(j) = (P[j / R] + 32 * (j mod R) + 1) mod padded.
    auto interleave_stream = [&](std::size_t stream) {
        std::vector<std::int32_t> v(padded, -1);
        auto row_major = [&](std::size_t pos) -> std::int32_t {
            // Position in the padded row-major matrix.
            return pos < pad ? -1
                             : stream_to_coded(stream, pos - pad, k_);
        };
        if (stream < 2) {
            std::size_t out = 0;
            for (std::size_t c = 0; c < kColumns; ++c) {
                const auto col =
                    static_cast<std::size_t>(kColumnPermutation[c]);
                for (std::size_t r = 0; r < rows_; ++r)
                    v[out++] = row_major(r * kColumns + col);
            }
        } else {
            for (std::size_t j = 0; j < padded; ++j) {
                const auto col = static_cast<std::size_t>(
                    kColumnPermutation[j / rows_]);
                const std::size_t pos =
                    (col + kColumns * (j % rows_) + 1) % padded;
                v[j] = row_major(pos);
            }
        }
        return v;
    };

    const auto v0 = interleave_stream(0);
    const auto v1 = interleave_stream(1);
    const auto v2 = interleave_stream(2);

    // Circular buffer: v0 followed by v1/v2 interlaced.
    cb_.reserve(3 * padded);
    cb_.insert(cb_.end(), v0.begin(), v0.end());
    for (std::size_t i = 0; i < padded; ++i) {
        cb_.push_back(v1[i]);
        cb_.push_back(v2[i]);
    }
}

std::size_t
RateMatcher::rv_offset(unsigned rv) const
{
    LTE_CHECK(rv <= 3, "redundancy version must be 0..3");
    // k0 = R * (2 * ceil(Ncb / (8R)) * rv + 2), TS 36.212.
    const std::size_t ncb = cb_.size();
    return rows_ *
           (2 * ceil_div(ncb, 8 * rows_) * static_cast<std::size_t>(rv) +
            2) %
           ncb;
}

std::vector<std::uint8_t>
RateMatcher::select(BitView turbo_coded, std::size_t e_bits,
                    unsigned rv) const
{
    LTE_CHECK(turbo_coded.size() == coded_size(),
              "coded length must match the block size");
    LTE_CHECK(e_bits >= 1, "must transmit at least one bit");

    std::vector<std::uint8_t> out;
    out.reserve(e_bits);
    std::size_t pos = rv_offset(rv);
    while (out.size() < e_bits) {
        const std::int32_t src = cb_[pos];
        if (src >= 0)
            out.push_back(turbo_coded[static_cast<std::size_t>(src)]);
        pos = (pos + 1) % cb_.size();
    }
    return out;
}

std::vector<Llr>
RateMatcher::empty_soft_buffer() const
{
    return std::vector<Llr>(coded_size(), 0.0f);
}

void
RateMatcher::accumulate(LlrSpan soft_buffer, LlrView e_llrs,
                        unsigned rv) const
{
    LTE_CHECK(soft_buffer.size() == coded_size(),
              "soft buffer must be in decoder layout");
    std::size_t pos = rv_offset(rv);
    std::size_t consumed = 0;
    while (consumed < e_llrs.size()) {
        const std::int32_t src = cb_[pos];
        if (src >= 0)
            soft_buffer[static_cast<std::size_t>(src)] +=
                e_llrs[consumed++];
        pos = (pos + 1) % cb_.size();
    }
}

} // namespace lte::phy

/**
 * @file
 * SC-FDMA front-end — the statically defined receiver components of
 * the paper's Fig. 2 (cyclic-prefix handling and the carrier-wide
 * FFT), which the benchmark itself excludes.  Provided as a complete
 * substrate so the library can model the full air interface: the
 * transmitter maps a user's allocated subcarriers into the carrier
 * grid and produces cyclic-prefixed time-domain SC-FDMA symbols; the
 * receiver undoes both.
 *
 * Sizing follows 3GPP TS 36.211 for a normal cyclic prefix: with an
 * N-point carrier FFT, the first symbol of a slot carries a CP of
 * 160 * N / 2048 samples and the remaining six carry 144 * N / 2048.
 */
#ifndef LTE_PHY_SCFDMA_HPP
#define LTE_PHY_SCFDMA_HPP

#include <cstdint>

#include "common/types.hpp"

namespace lte::phy {

/** Carrier-level front-end configuration. */
struct ScFdmaConfig
{
    /** Carrier FFT size (2048 for 20 MHz, 512 for 5 MHz, ...). Must be
     *  a power of two >= 128. */
    std::size_t n_fft = 2048;
    /** Usable subcarriers (1200 for 20 MHz); must fit in n_fft. */
    std::size_t n_used = 1200;

    void validate() const;

    /** CP length in samples for a symbol position within a slot. */
    std::size_t cp_length(std::size_t symbol_in_slot) const;

    /** Total time-domain samples of one slot (7 symbols + CPs). */
    std::size_t samples_per_slot() const;
};

/**
 * Map an allocation's frequency samples into the carrier grid.
 *
 * Subcarrier k of the allocation lands on used-band position
 * start_sc + k; the used band occupies the carrier's centre, split
 * around DC in standard FFT order (positive frequencies first).
 *
 * @param alloc    the allocated subcarriers (size <= n_used)
 * @param start_sc first used-band index of the allocation
 */
CVec map_to_carrier(const CVec &alloc, std::size_t start_sc,
                    const ScFdmaConfig &cfg);

/** Inverse of map_to_carrier: extract an allocation from the grid. */
CVec extract_from_carrier(const CVec &carrier, std::size_t start_sc,
                          std::size_t alloc_size,
                          const ScFdmaConfig &cfg);

/**
 * Modulate one carrier-grid symbol to the time domain and prepend
 * its cyclic prefix.
 *
 * @param carrier        frequency-domain grid (n_fft samples)
 * @param symbol_in_slot position within the slot (selects CP length)
 */
CVec scfdma_modulate(const CVec &carrier, std::size_t symbol_in_slot,
                     const ScFdmaConfig &cfg);

/** Remove the CP and FFT back to the frequency-domain grid. */
CVec scfdma_demodulate(const CVec &time, std::size_t symbol_in_slot,
                       const ScFdmaConfig &cfg);

/** Heap-free map_to_carrier: @p carrier (n_fft samples) is zeroed and
 *  filled with the allocation. */
void map_to_carrier_into(CfView alloc, std::size_t start_sc,
                         const ScFdmaConfig &cfg, CfSpan carrier);

/** Heap-free extract_from_carrier: @p alloc sizes the extraction. */
void extract_from_carrier_into(CfView carrier, std::size_t start_sc,
                               const ScFdmaConfig &cfg, CfSpan alloc);

/** Heap-free scfdma_modulate: writes CP + body into @p out, which
 *  must hold cp_length(symbol_in_slot) + n_fft samples. */
void scfdma_modulate_into(CfView carrier, std::size_t symbol_in_slot,
                          const ScFdmaConfig &cfg, CfSpan out);

/** Heap-free scfdma_demodulate: @p carrier must hold n_fft samples. */
void scfdma_demodulate_into(CfView time, std::size_t symbol_in_slot,
                            const ScFdmaConfig &cfg, CfSpan carrier);

} // namespace lte::phy

#endif // LTE_PHY_SCFDMA_HPP

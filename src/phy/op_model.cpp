#include "phy/op_model.hpp"

#include "fft/fft.hpp"
#include "matrix/cmat.hpp"
#include "phy/turbo.hpp"

namespace lte::phy {

namespace {

constexpr std::uint64_t kCplxMulFlops = 6;
constexpr std::uint64_t kCplxMacFlops = 8;

/** Channel estimation for one (antenna, layer) pair in one slot. */
std::uint64_t
chanest_slot_ops(std::size_t m)
{
    const std::uint64_t fft_ops = fft::Fft::op_count_smooth(m);
    const std::uint64_t matched_filter = m * kCplxMulFlops;
    const std::uint64_t window = m;            // select/zero pass
    const std::uint64_t noise_estimate = m;    // magnitude accumulation
    return matched_filter + 2 * fft_ops + window + noise_estimate;
}

/** Combiner weights for one slot: per-subcarrier MMSE. */
std::uint64_t
weights_slot_ops(std::size_t m, std::size_t antennas, std::size_t layers)
{
    const std::uint64_t gram = antennas * layers * layers * kCplxMacFlops;
    const std::uint64_t load = layers * 2;
    const std::uint64_t inv = matrix::CMat::inverse_op_count(layers);
    const std::uint64_t mul = layers * layers * antennas * kCplxMacFlops;
    return m * (gram + load + inv + mul);
}

/** Degraded-mode combiner weights for one slot: per-layer MRC
 *  (matched filter normalised by the layer's channel energy). */
std::uint64_t
mrc_weights_slot_ops(std::size_t m, std::size_t antennas,
                     std::size_t layers)
{
    const std::uint64_t norm = antennas * kCplxMacFlops;
    const std::uint64_t scale = antennas * kCplxMulFlops;
    return m * layers * (norm + scale + 4);
}

/** One (data symbol, layer) demodulation task in one slot. */
std::uint64_t
demod_slot_ops(std::size_t m, std::size_t antennas)
{
    const std::uint64_t combine = m * antennas * kCplxMacFlops;
    const std::uint64_t bias = m * (antennas * kCplxMacFlops + 11);
    const std::uint64_t ifft = fft::Fft::op_count_smooth(m);
    const std::uint64_t scale = 2 * m;
    return combine + bias + ifft + scale;
}

/** Per-codeblock tail work for one slot and layer (6 data symbols):
 *  deinterleave, demap, descramble, harden. */
std::uint64_t
tail_slot_layer_ops(std::size_t m, Modulation mod)
{
    const std::uint64_t bps = bits_per_symbol(mod);
    // Separable per-axis max-log demapping: 2^(bps/2) levels per axis.
    const std::uint64_t levels = std::uint64_t{1} << (bps / 2);
    const std::uint64_t per_symbol =
        2 +                          // deinterleave move
        2 * levels * 3 +             // per-axis distance evaluations
        bps * levels +               // per-bit minima
        2 * levels * 3 +             // EVM nearest-level search
        bps * 2;                     // descramble + harden per bit
    return kDataSymbolsPerSlot * m * per_symbol;
}

/**
 * One max-log-MAP decode task over a k-bit code block.  A full
 * iteration runs two constituent passes — alpha recursion, fused
 * beta/LLR recursion, each touching all 8 trellis states per step —
 * plus the per-bit stream work (a-priori add, extrinsic update,
 * interleaver gather/scatter, decision + CRC check).  Zero iterations
 * is the degraded bypass: hard-decide and CRC the systematic bits.
 */
std::uint64_t
decode_block_ops(std::size_t k, std::uint32_t iterations)
{
    if (iterations == 0)
        return 2 * k;
    const std::uint64_t map_pass =
        static_cast<std::uint64_t>(k) * 8 * (6 + 6 + 4);
    const std::uint64_t streams = 9 * static_cast<std::uint64_t>(k);
    return iterations * (2 * map_pass + streams);
}

} // namespace

std::size_t
tail_codeblock_count(const UserParams &params)
{
    const std::size_t bps = bits_per_symbol(params.mod);
    const std::size_t blocks_per_slot =
        params.layers * kDataSymbolsPerSlot;
    std::size_t count = 0;
    std::size_t cb_bits = 0;
    for (std::size_t b = 0; b < kSlotsPerSubframe * blocks_per_slot;
         ++b) {
        const std::size_t block_bits =
            params.sc_in_slot(b / blocks_per_slot) * bps;
        if (count > 0 && cb_bits + block_bits <= kTailCodeblockBits) {
            cb_bits += block_bits;
        } else {
            ++count;
            cb_bits = block_bits;
        }
    }
    return count;
}

UserTaskCosts
user_task_costs(const UserParams &params, std::size_t n_antennas,
                bool degraded, const DecodeModel &decode)
{
    params.validate();
    UserTaskCosts costs;
    costs.n_chanest_tasks =
        static_cast<std::uint32_t>(n_antennas * params.layers);
    costs.n_demod_tasks =
        static_cast<std::uint32_t>(kDataSymbolsPerSlot * params.layers);
    costs.n_tail_tasks =
        static_cast<std::uint32_t>(tail_codeblock_count(params));

    std::uint64_t tail_cb_total = 0;
    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        const std::size_t m = params.sc_in_slot(slot);
        costs.chanest_task += chanest_slot_ops(m);
        costs.weights +=
            degraded ? mrc_weights_slot_ops(m, n_antennas, params.layers)
                     : weights_slot_ops(m, n_antennas, params.layers);
        costs.demod_task += demod_slot_ops(m, n_antennas);
        for (std::size_t l = 0; l < params.layers; ++l)
            tail_cb_total += tail_slot_layer_ops(m, params.mod);
    }
    // CRC + checksum over the produced bits close the user in the
    // reduce continuation; the split keeps the aggregate identity
    // tail == tail_task * n_tail_tasks + tail_reduce exact.
    costs.tail = tail_cb_total + 2 * capacity_bits(params);
    costs.tail_task = tail_cb_total / costs.n_tail_tasks;
    costs.tail_reduce =
        costs.tail - costs.tail_task * costs.n_tail_tasks;
    if (decode.real_turbo) {
        const TurboSegmentation seg =
            turbo_segment(capacity_bits(params));
        costs.n_decode_tasks =
            static_cast<std::uint32_t>(seg.n_blocks);
        costs.decode_task =
            decode_block_ops(seg.block_info_bits, decode.iterations);
    }
    return costs;
}

} // namespace lte::phy

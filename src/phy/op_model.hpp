/**
 * @file
 * Analytical operation counts for the per-user task graph.
 *
 * The discrete-event TILEPro64 simulator charges each task a cycle
 * cost derived from these flop counts (DESIGN.md Sec. 3).  The counts
 * are computed from the same algorithmic structure the real kernels
 * use, with one deliberate smoothing: FFT stages are charged at the
 * padded next-5-smooth size (fft::Fft::op_count_smooth), the strategy
 * production SC-FDMA receivers use for awkward allocation sizes.
 * This keeps cost linear in PRBs — matching the clean linear
 * behaviour the paper measures in Fig. 11 — instead of inheriting the
 * exact library's direct-DFT/Bluestein cliffs at prime sizes.
 */
#ifndef LTE_PHY_OP_MODEL_HPP
#define LTE_PHY_OP_MODEL_HPP

#include <cstdint>

#include "phy/params.hpp"

namespace lte::phy {

/**
 * Greedy codeblock target for the parallel tail: consecutive
 * (slot, layer, data-symbol) blocks of the canonical codeword are
 * packed into codeblocks of at most this many soft bits (the LTE
 * turbo-codeblock ceiling), one tail task per codeblock.  A single
 * symbol block wider than the target becomes its own codeblock, so
 * the minimum granularity is one data symbol.
 */
inline constexpr std::size_t kTailCodeblockBits = 6144;

/**
 * Number of tail codeblocks the greedy segmentation produces for this
 * user (UserProcessor::n_tail_tasks() in pass-through mode).
 */
std::size_t tail_codeblock_count(const UserParams &params);

/**
 * What the model charges for the decode stage (real turbo only).
 * Pass-through mode keeps the default: no decode tasks, decode cost
 * folded into the tail's harden term as before.
 */
struct DecodeModel
{
    /** Real turbo decoder on (adds per-codeblock decode tasks). */
    bool real_turbo = false;
    /** Max-log-MAP iteration budget per codeblock; 0 charges only the
     *  degraded hard-decision bypass. */
    std::uint32_t iterations = 0;
};

/** Flop counts for one user's subframe processing, per task kind. */
struct UserTaskCosts
{
    /** One (antenna, layer) channel-estimation task (both slots). */
    std::uint64_t chanest_task = 0;
    /** The combiner-weight join stage. */
    std::uint64_t weights = 0;
    /** One (data-symbol, layer) demodulation task (both slots). */
    std::uint64_t demod_task = 0;
    /**
     * The whole tail (deinterleave, demap, descramble, harden, CRC).
     * Kept as the aggregate for user-granularity consumers (the DAG
     * simulator charges the tail to one node); the runtime splits it
     * as tail == tail_task * n_tail_tasks + tail_reduce exactly.
     */
    std::uint64_t tail = 0;
    /** One per-codeblock tail task (deint/demap/descramble/harden). */
    std::uint64_t tail_task = 0;
    /** The CRC/EVM reduce continuation closing the user. */
    std::uint64_t tail_reduce = 0;
    /** One per-codeblock max-log-MAP decode task (real turbo; the
     *  iteration budget of the DecodeModel is priced in). */
    std::uint64_t decode_task = 0;

    std::uint32_t n_chanest_tasks = 0;
    std::uint32_t n_demod_tasks = 0;
    std::uint32_t n_tail_tasks = 0;
    /** Turbo code blocks (0 in pass-through mode). */
    std::uint32_t n_decode_tasks = 0;

    /** Total flops for the user's subframe. */
    std::uint64_t
    total() const
    {
        return chanest_task * n_chanest_tasks + weights +
               demod_task * n_demod_tasks + tail +
               decode_task * n_decode_tasks;
    }
};

/**
 * Compute the cost model for one user.  @p degraded selects the
 * load-shed receive chain (per-layer MRC weights instead of the MMSE
 * solve).  @p decode prices the real-turbo decode stage: with
 * real_turbo set, every LTE code block of the user's allocation
 * (turbo_segment) is charged one decode task whose cost grows
 * linearly with the iteration budget — at 0 iterations only the
 * bypass harden.  The default DecodeModel reproduces the historical
 * pass-through charge exactly.
 */
UserTaskCosts user_task_costs(const UserParams &params,
                              std::size_t n_antennas,
                              bool degraded = false,
                              const DecodeModel &decode = {});

/**
 * The DecodeModel a receiver configuration implies at a shed-ladder
 * level: pass-through receivers price no decode stage; real-turbo
 * receivers price the full budget at kNone, the reduced budget at
 * kReducedIterations and the bypass at kBypass.
 */
inline DecodeModel
decode_model(const ReceiverConfig &config,
             DegradeLevel level = DegradeLevel::kNone)
{
    DecodeModel decode;
    if (config.use_real_turbo) {
        decode.real_turbo = true;
        switch (level) {
          case DegradeLevel::kNone:
            decode.iterations = config.turbo_iterations;
            break;
          case DegradeLevel::kReducedIterations:
            decode.iterations = config.turbo_reduced_iterations;
            break;
          case DegradeLevel::kBypass:
            decode.iterations = 0;
            break;
        }
    }
    return decode;
}

} // namespace lte::phy

#endif // LTE_PHY_OP_MODEL_HPP

/**
 * @file
 * Per-user and per-subframe workload parameters.
 *
 * These four quantities — users, PRBs per user, layers per user, and
 * modulation per user — are exactly the input parameters the paper
 * names in Sec. IV as defining the workload of a subframe.
 */
#ifndef LTE_PHY_PARAMS_HPP
#define LTE_PHY_PARAMS_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lte::phy {

/**
 * Scheduling parameters of one user in one subframe.
 *
 * The paper counts PRBs per subframe (Fig. 1: a PRB is 12 subcarriers
 * for one slot, so a 20 MHz carrier offers 200 PRBs per subframe and a
 * user needs at least 2 — one per slot — to be scheduled).  An odd
 * allocation puts the extra PRB in slot 0.
 */
struct UserParams
{
    std::uint32_t id = 0;            ///< stable user identifier
    std::uint32_t prb = 2;           ///< PRBs in the subframe, 2..200
    std::uint32_t layers = 1;        ///< spatial layers, 1..4
    Modulation mod = Modulation::kQpsk;

    /** PRBs occupied in the given slot (0 or 1). */
    std::uint32_t prb_in_slot(std::size_t slot) const
    {
        return slot == 0 ? (prb + 1) / 2 : prb / 2;
    }

    /** Allocated subcarriers in the given slot. */
    std::size_t sc_in_slot(std::size_t slot) const
    {
        return static_cast<std::size_t>(prb_in_slot(slot)) * kScPerPrb;
    }

    /** Throws std::invalid_argument if any field is out of range. */
    void validate() const;

    bool operator==(const UserParams &) const = default;
};

/** The set of users scheduled in one subframe. */
struct SubframeParams
{
    std::uint64_t subframe_index = 0;
    /**
     * Physical cell identity serving this subframe (1..511; the Gold
     * scrambler reserves 9 bits).  Cell 1 is the single-cell default:
     * all sequence derivations (scrambling init, DMRS roots, input
     * pools) are the identity at cell 1, so single-cell runs are
     * bit-identical to the pre-multi-cell pipeline.
     */
    std::uint32_t cell_id = 1;
    std::vector<UserParams> users;

    /** Sum of PRBs over all users. */
    std::uint32_t total_prb() const;

    /** Throws if users exceed the schedulable limits of Sec. II-A. */
    void validate() const;
};

/**
 * Total data-bit capacity of a user's subframe allocation:
 * 6 data symbols x 12*prb subcarriers across the two slots, per layer,
 * times bits per symbol.
 */
std::size_t capacity_bits(const UserParams &params);

/**
 * Information block size for real-turbo mode: the largest multiple of
 * 8 (K >= 8) such that the rate-1/3 output (3K + 12) fits the capacity.
 * Throws if the capacity cannot host a minimal block.
 */
std::size_t turbo_info_bits(std::size_t capacity);

/**
 * How far a user's processing chain is degraded under deadline
 * pressure (the admission controllers' shed ladder, ordered by
 * increasing severity).  kReducedIterations swaps the MMSE solve for
 * MRC weights and caps the turbo decoder at the reduced iteration
 * budget; kBypass additionally skips decoding entirely (hard-decided
 * systematic bits) — the pre-ladder "degraded" behaviour, kept as the
 * last resort.  In pass-through mode (no real turbo) the two levels
 * coincide.
 */
enum class DegradeLevel : std::uint8_t
{
    kNone = 0,
    kReducedIterations = 1,
    kBypass = 2,
};

/** Receiver-side static configuration. */
struct ReceiverConfig
{
    /** Number of receive antennas (paper Sec. III: four). */
    std::size_t n_antennas = 4;

    /** Physical cell identity this receiver serves (1..511); selects
     *  the descrambling sequence and the expected DMRS roots. */
    std::uint32_t cell_id = 1;

    /**
     * Fraction of the time-domain channel-estimate samples kept by the
     * windowing stage (per layer delay bin).
     */
    double window_fraction = 0.125;

    /** MMSE diagonal loading when no noise estimate is available. */
    float default_noise_var = 0.05f;

    /** Run the real turbo decoder instead of the paper's pass-through. */
    bool use_real_turbo = false;

    /** Per-codeblock max-log-MAP iteration budget (real turbo only;
     *  CRC early termination usually stops well short of it). */
    std::uint32_t turbo_iterations = 6;

    /** Iteration budget under DegradeLevel::kReducedIterations. */
    std::uint32_t turbo_reduced_iterations = 2;

    /**
     * Fraction of users that keep a real (reduced-iteration) decode
     * when a subframe is shed to DegradeLevel::kBypass, chosen by a
     * deterministic per-(subframe, user) hash.  Real-turbo runs only.
     * The sampled users' CRC verdicts stay real (crc_modelled ==
     * false), feeding the MAC's online BLER calibration
     * (MacConfig::calibrate_bler) even while the admission controller
     * sheds.  0 disables sampling (every bypass verdict is modelled).
     */
    double decode_sample_rate = 0.0;

    void validate() const;
};

} // namespace lte::phy

#endif // LTE_PHY_PARAMS_HPP

/**
 * @file
 * Per-thread kernel scratch for the subframe hot path.
 *
 * Channel-estimation and demodulation tasks of one user run
 * concurrently on different worker threads, so scratch cannot live in
 * the (shared) per-user workspace.  Instead each thread owns one
 * fixed-size buffer large enough for the worst LTE allocation — a slot
 * of (kMaxPrbPerSubframe + 1) / 2 PRBs — including Bluestein FFT
 * scratch for awkward sizes.  At ~75 KB per thread this is cheap, and
 * sizing it to the static maximum (rather than growing on demand)
 * makes the steady state deterministically allocation-free: engines
 * call warm_kernel_scratch() from every worker before the first
 * subframe, and nothing on the task path ever touches the heap again.
 */
#ifndef LTE_PHY_KERNEL_SCRATCH_HPP
#define LTE_PHY_KERNEL_SCRATCH_HPP

#include <cstddef>
#include <vector>

#include "common/math_util.hpp"
#include "common/types.hpp"

namespace lte::phy {

/** Most subcarriers one slot of a single user can span (the odd-PRB
 *  rule puts the extra PRB in slot 0). */
inline constexpr std::size_t kMaxScPerSlot =
    ((kMaxPrbPerSubframe + 1) / 2) * kScPerPrb;

/**
 * Samples in one thread's scratch buffer: one slot-sized working
 * vector plus worst-case FFT plan scratch (a Bluestein transform of
 * kMaxScPerSlot points needs 2x its power-of-two convolution size).
 */
inline std::size_t
kernel_scratch_samples()
{
    return kMaxScPerSlot + 2 * next_pow2(2 * kMaxScPerSlot - 1);
}

/** This thread's kernel scratch (created on first use). */
inline CfSpan
kernel_scratch()
{
    thread_local std::vector<cf32> buf(kernel_scratch_samples());
    return {buf.data(), buf.size()};
}

/** Force creation of this thread's scratch; engines call this once
 *  per worker at startup so the task path never allocates. */
inline void
warm_kernel_scratch()
{
    (void)kernel_scratch();
}

} // namespace lte::phy

#endif // LTE_PHY_KERNEL_SCRATCH_HPP

/**
 * @file
 * Block (row-column) interleaver.
 *
 * The paper's receive chain deinterleaves the time-domain samples
 * between the IFFT and the soft demapper (Fig. 3).  We use the classic
 * rectangular interleaver: write row-wise into a matrix with a fixed
 * number of columns, read column-wise.
 */
#ifndef LTE_PHY_INTERLEAVER_HPP
#define LTE_PHY_INTERLEAVER_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace lte::phy {

/** Default interleaver width; 12 divides every LTE allocation size. */
inline constexpr std::size_t kInterleaverColumns = 12;

/**
 * Interleave a sequence: element i of the output is taken from
 * position permutation(i) of the input.  Length may be any value;
 * a possibly ragged final row is handled.
 */
CVec interleave(const CVec &in, std::size_t columns = kInterleaverColumns);

/** Exact inverse of interleave() for the same column count. */
CVec deinterleave(const CVec &in, std::size_t columns = kInterleaverColumns);

/** The permutation used by interleave(); out[i] = in[perm[i]]. */
std::vector<std::size_t> interleave_permutation(std::size_t n,
                                                std::size_t columns);

/** Heap-free variant: writes the n-element permutation into @p out
 *  (which must hold exactly n entries). */
void interleave_permutation_into(std::size_t n, std::size_t columns,
                                 std::span<std::size_t> out);

/** Heap-free deinterleave using a precomputed permutation:
 *  out[perm[i]] = in[i].  All three arguments must be the same
 *  length, and @p in and @p out must not alias. */
void deinterleave_into(CfView in, std::span<const std::size_t> perm,
                       CfSpan out);

} // namespace lte::phy

#endif // LTE_PHY_INTERLEAVER_HPP

/**
 * @file
 * Bit-level scrambling with the LTE length-31 Gold sequence
 * (3GPP TS 36.211 Sec. 7.2).  The uplink scrambles the codeword bits
 * before modulation so that inter-cell interference looks like noise;
 * the receiver descrambles in the soft domain by flipping LLR signs.
 */
#ifndef LTE_PHY_SCRAMBLER_HPP
#define LTE_PHY_SCRAMBLER_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lte::phy {

/**
 * Streaming generator of the TS 36.211 Sec. 7.2 pseudo-random sequence
 * c(n): two length-31 LFSRs advanced Nc = 1600 steps past
 * initialisation.  O(1) state, no heap — the register bit i holds
 * x(n + i), so stepping is a shift-right with a new feedback bit at
 * position 30.
 */
class GoldStream
{
  public:
    explicit GoldStream(std::uint32_t c_init)
        : x1_(1u), x2_(c_init & 0x7FFFFFFFu)
    {
        skip(kNc);
    }

    /** The next sequence bit c(n). */
    std::uint8_t
    next()
    {
        const auto bit =
            static_cast<std::uint8_t>((x1_ ^ x2_) & 1u);
        advance();
        return bit;
    }

    /**
     * Skip the next @p n sequence bits in O(log n): both LFSRs jump
     * via precomputed GF(2) state-transition matrices for power-of-two
     * step counts, so fast-forwarding to a codeword offset costs a few
     * hundred word operations regardless of the offset.  This is what
     * lets per-codeblock tail tasks descramble their own slice
     * independently — with T codeblocks a linear skip would make the
     * tail O(bits x T) in aggregate and dominate the whole receiver.
     */
    void skip(std::size_t n);

  private:
    static constexpr int kNc = 1600;

    void
    advance()
    {
        // x1(n+31) = x1(n+3) + x1(n); x2(n+31) = x2(n+3) + x2(n+2)
        //            + x2(n+1) + x2(n)   (mod 2)
        const std::uint32_t n1 = ((x1_ >> 3) ^ x1_) & 1u;
        const std::uint32_t n2 =
            ((x2_ >> 3) ^ (x2_ >> 2) ^ (x2_ >> 1) ^ x2_) & 1u;
        x1_ = (x1_ >> 1) | (n1 << 30);
        x2_ = (x2_ >> 1) | (n2 << 30);
    }

    std::uint32_t x1_;
    std::uint32_t x2_;
};

/**
 * Pseudo-random sequence c(n) per TS 36.211 Sec. 7.2: two length-31
 * LFSRs advanced Nc = 1600 steps past initialisation.
 *
 * @param c_init initial state of the second LFSR (31 bits)
 * @param length number of sequence bits to produce
 */
std::vector<std::uint8_t> gold_sequence(std::uint32_t c_init,
                                        std::size_t length);

/** Scrambling initialiser for a user (RNTI-style composition). */
std::uint32_t scrambling_init(std::uint32_t user_id,
                              std::uint32_t cell_id = 1);

/** XOR @p bits with the Gold sequence (an involution). */
std::vector<std::uint8_t> scramble(const std::vector<std::uint8_t> &bits,
                                   std::uint32_t c_init);

/**
 * Soft descrambling: negate the LLRs whose scrambling bit is 1 (a
 * scrambled 0 arrives as 1 and vice versa).
 */
std::vector<Llr> descramble_soft(const std::vector<Llr> &llrs,
                                 std::uint32_t c_init);

/** Heap-free in-place soft descrambling. */
void descramble_soft_inplace(LlrSpan llrs, std::uint32_t c_init);

/**
 * Heap-free in-place soft descrambling of a codeword slice starting
 * @p skip_bits into the sequence: @p llrs holds positions
 * [skip_bits, skip_bits + llrs.size()) of the full codeword.
 */
void descramble_soft_inplace(LlrSpan llrs, std::uint32_t c_init,
                             std::size_t skip_bits);

} // namespace lte::phy

#endif // LTE_PHY_SCRAMBLER_HPP

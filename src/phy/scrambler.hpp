/**
 * @file
 * Bit-level scrambling with the LTE length-31 Gold sequence
 * (3GPP TS 36.211 Sec. 7.2).  The uplink scrambles the codeword bits
 * before modulation so that inter-cell interference looks like noise;
 * the receiver descrambles in the soft domain by flipping LLR signs.
 */
#ifndef LTE_PHY_SCRAMBLER_HPP
#define LTE_PHY_SCRAMBLER_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lte::phy {

/**
 * Pseudo-random sequence c(n) per TS 36.211 Sec. 7.2: two length-31
 * LFSRs advanced Nc = 1600 steps past initialisation.
 *
 * @param c_init initial state of the second LFSR (31 bits)
 * @param length number of sequence bits to produce
 */
std::vector<std::uint8_t> gold_sequence(std::uint32_t c_init,
                                        std::size_t length);

/** Scrambling initialiser for a user (RNTI-style composition). */
std::uint32_t scrambling_init(std::uint32_t user_id,
                              std::uint32_t cell_id = 1);

/** XOR @p bits with the Gold sequence (an involution). */
std::vector<std::uint8_t> scramble(const std::vector<std::uint8_t> &bits,
                                   std::uint32_t c_init);

/**
 * Soft descrambling: negate the LLRs whose scrambling bit is 1 (a
 * scrambled 0 arrives as 1 and vice versa).
 */
std::vector<Llr> descramble_soft(const std::vector<Llr> &llrs,
                                 std::uint32_t c_init);

} // namespace lte::phy

#endif // LTE_PHY_SCRAMBLER_HPP

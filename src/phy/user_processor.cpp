#include "phy/user_processor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "fft/fft.hpp"
#include "phy/channel_estimator.hpp"
#include "phy/crc.hpp"
#include "phy/interleaver.hpp"
#include "phy/kernel_scratch.hpp"
#include "phy/modulation.hpp"
#include "phy/op_model.hpp"
#include "phy/scrambler.hpp"
#include "phy/turbo.hpp"
#include "phy/zadoff_chu.hpp"

namespace lte::phy {

namespace {

/** Map a data-symbol index (0..5) to its slot position (skips DMRS). */
std::size_t
data_symbol_position(std::size_t data_symbol)
{
    return data_symbol < kRefSymbolIndex ? data_symbol : data_symbol + 1;
}

} // namespace

void
UserSignal::validate(const UserParams &params, std::size_t n_antennas) const
{
    LTE_CHECK(antennas.size() == n_antennas, "antenna count mismatch");
    for (const auto &ant : antennas) {
        for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
            for (const auto &sym : ant.slots[slot]) {
                LTE_CHECK(sym.size() == params.sc_in_slot(slot),
                          "symbol length mismatch");
            }
        }
    }
}

std::uint64_t
bit_checksum(const std::vector<std::uint8_t> &bits)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : bits) {
        hash ^= b;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

UserProcessor::UserProcessor(const ReceiverConfig &config)
    : config_(config)
{
    config_.validate();
}

UserProcessor::UserProcessor(const UserParams &params,
                             const ReceiverConfig &config,
                             const UserSignal *signal)
    : UserProcessor(config)
{
    bind(params, signal);
}

void
UserProcessor::bind(const UserParams &params, const UserSignal *signal)
{
    params.validate();
    LTE_CHECK(signal != nullptr, "signal must not be null");
    signal->validate(params, config_.n_antennas);
    params_ = params;
    signal_ = signal;

    const std::size_t layers = params_.layers;
    const std::size_t antennas = config_.n_antennas;
    const std::size_t cap = capacity_bits(params_);

    // Size the arena for this binding.  reserve() grows only past the
    // high-water mark, so a steady workload stops allocating after the
    // largest user shape has been seen once.
    std::size_t bytes = 0;
    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        const std::size_t m = params_.sc_in_slot(slot);
        bytes += Workspace::required<cf32>(layers * m);              // dmrs
        bytes += Workspace::required<cf32>(antennas * layers * m);   // chan
        bytes +=
            Workspace::required<cf32>(kDataSymbolsPerSlot * layers * m);
        bytes += Workspace::required<std::size_t>(m);                // perm
    }
    bytes += Workspace::required<Llr>(cap);
    arena_.reserve(bytes);

    // Carve all views, then precompute the per-slot constants.
    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        const std::size_t m = params_.sc_in_slot(slot);
        for (std::size_t l = 0; l < layers; ++l) {
            dmrs_[slot][l] = arena_.alloc<cf32>(m);
            user_dmrs_into(params_.id, slot, l, dmrs_[slot][l],
                           config_.cell_id);
        }
        channel_[slot] = arena_.alloc<cf32>(antennas * layers * m);
        equalised_[slot] =
            arena_.alloc<cf32>(kDataSymbolsPerSlot * layers * m);
        perm_[slot] = arena_.alloc<std::size_t>(m);
        interleave_permutation_into(m, kInterleaverColumns, perm_[slot]);
    }
    llrs_ = arena_.alloc<Llr>(cap);

    // Segment the canonical codeword into tail codeblocks: greedy
    // packing of consecutive (slot, layer, data-symbol) blocks up to
    // kTailCodeblockBits each.  clear() keeps the vector's capacity,
    // so re-binding stops allocating once the largest user shape has
    // been seen (≤ kMaxTailTasks entries either way).
    codeblocks_.clear();
    const std::size_t bps = bits_per_symbol(params_.mod);
    const std::size_t blocks_per_slot = layers * kDataSymbolsPerSlot;
    std::size_t bit_off = 0;
    for (std::size_t b = 0; b < kSlotsPerSubframe * blocks_per_slot;
         ++b) {
        const std::size_t block_bits =
            params_.sc_in_slot(b / blocks_per_slot) * bps;
        if (!codeblocks_.empty() &&
            codeblocks_.back().n_bits + block_bits <=
                kTailCodeblockBits) {
            codeblocks_.back().n_blocks += 1;
            codeblocks_.back().n_bits += block_bits;
        } else {
            codeblocks_.push_back(
                {static_cast<std::uint32_t>(b), 1, bit_off, block_bits});
        }
        bit_off += block_bits;
    }
    LTE_ASSERT(bit_off == cap, "codeblock segmentation bit mismatch");
    LTE_ASSERT(codeblocks_.size() == tail_codeblock_count(params_),
               "segmentation disagrees with the op model");

    // Size the decoded-bit storage up front so tail/decode tasks write
    // disjoint slices without a resize (capacity reused across binds).
    // Real-turbo mode fixes the framing at the transport-block size of
    // the LTE segmentation here, at bind time, so a degrade flip
    // between bind and execution can never change the bit count.
    if (config_.use_real_turbo) {
        seg_ = turbo_segment(cap);
        LTE_ASSERT(seg_.n_blocks <= kMaxTurboCodeblocks,
                   "segmentation exceeds the codeblock ceiling");
        turbo_pi_ = &qpp_interleaver(seg_.block_info_bits);
        result_.bits.resize(seg_.tb_bits());
    } else {
        seg_ = TurboSegmentation{};
        turbo_pi_ = nullptr;
        result_.bits.resize(cap);
    }
    cb_iterations_.fill(0);

    task_noise_.fill(0.0f);
    noise_var_ = 0.0f;
    bound_ = true;
}

CfSpan
UserProcessor::channel_slice(std::size_t slot, std::size_t antenna,
                             std::size_t layer)
{
    const std::size_t m = params_.sc_in_slot(slot);
    return channel_[slot].subspan(
        (antenna * params_.layers + layer) * m, m);
}

CfSpan
UserProcessor::equalised_slice(std::size_t slot, std::size_t layer,
                               std::size_t data_symbol)
{
    const std::size_t m = params_.sc_in_slot(slot);
    return equalised_[slot].subspan(
        (layer * kDataSymbolsPerSlot + data_symbol) * m, m);
}

std::size_t
UserProcessor::n_chanest_tasks() const
{
    return config_.n_antennas * params_.layers;
}

std::size_t
UserProcessor::n_demod_tasks() const
{
    return kDataSymbolsPerSlot * params_.layers;
}

void
UserProcessor::run_chanest_task(std::size_t task_index)
{
    LTE_CHECK(bound_, "processor is not bound to a subframe");
    LTE_CHECK(task_index < n_chanest_tasks(), "task index out of range");
    const std::size_t antenna = task_index / params_.layers;
    const std::size_t layer = task_index % params_.layers;

    ChannelEstimatorConfig est_cfg;
    est_cfg.window_fraction = config_.window_fraction;

    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        const CVec &received =
            signal_->antennas[antenna].slots[slot][kRefSymbolIndex];
        task_noise_[task_index * kSlotsPerSubframe + slot] =
            estimate_channel_into(received, dmrs_[slot][layer], est_cfg,
                                  channel_slice(slot, antenna, layer),
                                  kernel_scratch());
    }
}

void
UserProcessor::compute_weights()
{
    LTE_CHECK(bound_, "processor is not bound to a subframe");
    // Pool the per-task noise estimates; fall back to the configured
    // default when the allocation was too small to provide guard bins.
    const std::size_t n_noise =
        n_chanest_tasks() * kSlotsPerSubframe;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < n_noise; ++i) {
        if (task_noise_[i] > 0.0f) {
            sum += task_noise_[i];
            ++n;
        }
    }
    noise_var_ = n > 0 ? static_cast<float>(sum / static_cast<double>(n))
                       : config_.default_noise_var;
    noise_var_ = std::max(noise_var_, 1e-6f);

    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        const ChannelView view{channel_[slot].data(), config_.n_antennas,
                               params_.layers, params_.sc_in_slot(slot)};
        if (degrade_ != DegradeLevel::kNone)
            compute_mrc_weights_into(view, noise_var_, weights_[slot]);
        else
            compute_combiner_weights_into(view, noise_var_,
                                          weights_[slot]);
    }
}

void
UserProcessor::run_demod_task(std::size_t task_index)
{
    LTE_CHECK(bound_, "processor is not bound to a subframe");
    LTE_CHECK(task_index < n_demod_tasks(), "task index out of range");
    const std::size_t data_symbol = task_index % kDataSymbolsPerSlot;
    const std::size_t layer = task_index / kDataSymbolsPerSlot;
    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot)
        demod_one(slot, data_symbol, layer);
}

void
UserProcessor::demod_one(std::size_t slot, std::size_t data_symbol,
                         std::size_t layer)
{
    const std::size_t m_sc = params_.sc_in_slot(slot);
    const std::size_t position = data_symbol_position(data_symbol);

    // Antenna combining straight from the received signal views (no
    // copies); the combined symbol lives in this thread's scratch.
    std::array<CfView, kMaxRxAntennas> rx;
    for (std::size_t a = 0; a < config_.n_antennas; ++a) {
        const CVec &sym = signal_->antennas[a].slots[slot][position];
        rx[a] = CfView(sym.data(), sym.size());
    }
    const CfSpan scratch = kernel_scratch();
    const CfSpan combined = scratch.subspan(0, m_sc);
    const CfSpan fft_scratch = scratch.subspan(m_sc);
    combine_layer_into(
        std::span<const CfView>(rx.data(), config_.n_antennas),
        weights_[slot], layer, combined);

    // MMSE bias correction: scale each subcarrier by the effective
    // gain sum_a W(l,a) H(a,l) so constellation points land on grid.
    const ChannelView chan{channel_[slot].data(), config_.n_antennas,
                           params_.layers, m_sc};
    apply_mmse_bias_into(chan, weights_[slot], layer, combined);

    // SC-FDMA despreading: back to the time domain where the
    // constellation symbols live.
    const CfSpan time = equalised_slice(slot, layer, data_symbol);
    fft::FftCache::instance().plan(m_sc).inverse(
        combined.data(), time.data(), fft_scratch);
    // The transmit DFT spread scales by 1/sqrt(m); undo the pair.
    const float scale = std::sqrt(static_cast<float>(m_sc));
    for (auto &v : time)
        v *= scale;
}

std::size_t
UserProcessor::n_tail_tasks() const
{
    return codeblocks_.size();
}

void
UserProcessor::run_tail_task(std::size_t task_index)
{
    LTE_CHECK(bound_, "processor is not bound to a subframe");
    LTE_CHECK(task_index < n_tail_tasks(), "task index out of range");

    const CodeblockSlice &cb = codeblocks_[task_index];
    const std::size_t first_block = cb.first_block;
    const std::size_t n_blocks = cb.n_blocks;
    const std::size_t bit_offset = cb.bit_offset;
    const std::size_t n_bits = cb.n_bits;

    // Canonical framing order (mirrored by the transmitter):
    // slot -> layer -> data symbol -> sample.
    const std::size_t bps = bits_per_symbol(params_.mod);
    const std::size_t blocks_per_slot =
        params_.layers * kDataSymbolsPerSlot;
    double evm_acc = 0.0;
    std::size_t evm_n = 0;
    std::size_t off = bit_offset;
    for (std::size_t b = first_block; b < first_block + n_blocks; ++b) {
        const std::size_t slot = b / blocks_per_slot;
        const std::size_t rem = b % blocks_per_slot;
        const std::size_t layer = rem / kDataSymbolsPerSlot;
        const std::size_t ds = rem % kDataSymbolsPerSlot;
        const std::size_t m = params_.sc_in_slot(slot);
        const CfSpan deint = kernel_scratch().first(m);
        deinterleave_into(equalised_slice(slot, layer, ds),
                          perm_[slot], deint);
        demodulate_soft_into(deint, params_.mod, noise_var_,
                             llrs_.subspan(off, m * bps));
        off += m * bps;
        for (const cf32 &y : deint) {
            evm_acc += nearest_point_distance2(y, params_.mod);
            ++evm_n;
        }
    }
    LTE_ASSERT(off == bit_offset + n_bits,
               "codeblock LLR count mismatch");
    evm_acc_[task_index] = evm_acc;
    evm_n_[task_index] = evm_n;

    // Soft descrambling of just this slice: each task fast-forwards
    // its own Gold stream to the slice offset (the inverse of the
    // transmitter's bit scrambling).
    descramble_soft_inplace(
        llrs_.subspan(bit_offset, n_bits),
        scrambling_init(params_.id, config_.cell_id), bit_offset);

    // Pass-through mode hardens the slice here; real-turbo mode leaves
    // the soft codeword for the per-codeblock decode stage.
    if (!config_.use_real_turbo) {
        turbo_passthrough_into(
            LlrView(llrs_).subspan(bit_offset, n_bits),
            BitSpan(result_.bits).subspan(bit_offset, n_bits));
    }
}

std::size_t
UserProcessor::n_decode_tasks() const
{
    return config_.use_real_turbo ? seg_.n_blocks : 0;
}

void
UserProcessor::run_decode_task(std::size_t block)
{
    LTE_CHECK(bound_, "processor is not bound to a subframe");
    LTE_CHECK(block < n_decode_tasks(), "decode block out of range");

    const std::size_t k = seg_.block_info_bits;
    const LlrView coded = LlrView(llrs_).subspan(
        block * seg_.block_coded_bits(), seg_.block_coded_bits());

    TurboDecoderConfig cfg;
    cfg.iterations = config_.turbo_iterations;
    if (degrade_ == DegradeLevel::kReducedIterations)
        cfg.iterations = config_.turbo_reduced_iterations;
    else if (degrade_ == DegradeLevel::kBypass)
        cfg.iterations = 0;

    // Segmented blocks each end in CRC-24B; a lone block *is* the
    // transport block, whose CRC-24A doubles as the stop condition.
    const std::uint32_t crc_poly =
        seg_.n_blocks > 1 ? kCrc24BPoly : kCrc24APoly;

    // Decode the full K bits (incl. any CRC-24B) into per-thread
    // scratch, then keep only the transport-block payload in this
    // block's disjoint slice of the result.
    TurboWorkspace &ws = turbo_scratch();
    ws.reserve(k);
    const TurboDecodeResult res = turbo_decode_block_into(
        coded, k, *turbo_pi_, cfg, crc_poly, ws,
        BitSpan(ws.bits.data(), k));
    const std::size_t data = seg_.block_data_bits();
    std::copy_n(ws.bits.data(), data,
                result_.bits.begin() +
                    static_cast<std::ptrdiff_t>(block * data));
    cb_iterations_[block] = res.iterations_run;
}

const UserResult &
UserProcessor::finish_reduce()
{
    LTE_CHECK(bound_, "processor is not bound to a subframe");
    // Fold the per-codeblock EVM partials in canonical order so the
    // sum does not depend on which worker ran which tail task.
    double evm_acc = 0.0;
    std::size_t evm_n = 0;
    for (std::size_t t = 0; t < n_tail_tasks(); ++t) {
        evm_acc += evm_acc_[t];
        evm_n += evm_n_[t];
    }

    result_.user_id = params_.id;
    result_.noise_var = noise_var_;
    result_.evm_rms =
        evm_n > 0 ? std::sqrt(static_cast<float>(
                        evm_acc / static_cast<double>(evm_n)))
                  : 0.0f;
    // In every mode result_.bits ends with the transport block's
    // CRC-24A, so the one check below flags the CRC consistently
    // across pass-through, full decode and the degraded ladder.
    result_.decode_iterations = 0;
    for (std::size_t b = 0; b < n_decode_tasks(); ++b)
        result_.decode_iterations += cb_iterations_[b];
    result_.crc_ok = crc24_check(result_.bits);
    // The check above is only a real decode verdict when the max-log-
    // MAP decoder actually ran: pass-through mode CRCs hardened bits
    // that were never encoded, and the degrade bypass hard-decides
    // instead of decoding.  Flag those so link adaptation substitutes
    // a modelled error rate instead of learning from noise.
    result_.crc_modelled = !config_.use_real_turbo ||
                           degrade_ == DegradeLevel::kBypass;
    result_.checksum = bit_checksum(result_.bits);
    return result_;
}

const UserResult &
UserProcessor::finish()
{
    LTE_CHECK(bound_, "processor is not bound to a subframe");
    for (std::size_t t = 0; t < n_tail_tasks(); ++t)
        run_tail_task(t);
    for (std::size_t b = 0; b < n_decode_tasks(); ++b)
        run_decode_task(b);
    return finish_reduce();
}

const UserResult &
UserProcessor::process_all()
{
    for (std::size_t t = 0; t < n_chanest_tasks(); ++t)
        run_chanest_task(t);
    compute_weights();
    for (std::size_t t = 0; t < n_demod_tasks(); ++t)
        run_demod_task(t);
    return finish();
}

} // namespace lte::phy

#include "phy/user_processor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "fft/fft.hpp"
#include "phy/channel_estimator.hpp"
#include "phy/crc.hpp"
#include "phy/interleaver.hpp"
#include "phy/modulation.hpp"
#include "phy/scrambler.hpp"
#include "phy/turbo.hpp"
#include "phy/zadoff_chu.hpp"

namespace lte::phy {

namespace {

/** Map a data-symbol index (0..5) to its slot position (skips DMRS). */
std::size_t
data_symbol_position(std::size_t data_symbol)
{
    return data_symbol < kRefSymbolIndex ? data_symbol : data_symbol + 1;
}

} // namespace

void
UserSignal::validate(const UserParams &params, std::size_t n_antennas) const
{
    LTE_CHECK(antennas.size() == n_antennas, "antenna count mismatch");
    for (const auto &ant : antennas) {
        for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
            for (const auto &sym : ant.slots[slot]) {
                LTE_CHECK(sym.size() == params.sc_in_slot(slot),
                          "symbol length mismatch");
            }
        }
    }
}

std::uint64_t
bit_checksum(const std::vector<std::uint8_t> &bits)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : bits) {
        hash ^= b;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

UserProcessor::UserProcessor(const UserParams &params,
                             const ReceiverConfig &config,
                             const UserSignal *signal)
    : params_(params), config_(config), signal_(signal)
{
    params_.validate();
    config_.validate();
    LTE_CHECK(signal_ != nullptr, "signal must not be null");
    signal_->validate(params_, config_.n_antennas);

    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        channel_[slot].assign(config_.n_antennas,
                              std::vector<CVec>(params_.layers));
        equalised_[slot].assign(kDataSymbolsPerSlot,
                                std::vector<CVec>(params_.layers));
    }
    task_noise_.assign(n_chanest_tasks() * kSlotsPerSubframe, 0.0f);
}

std::size_t
UserProcessor::n_chanest_tasks() const
{
    return config_.n_antennas * params_.layers;
}

std::size_t
UserProcessor::n_demod_tasks() const
{
    return kDataSymbolsPerSlot * params_.layers;
}

void
UserProcessor::run_chanest_task(std::size_t task_index)
{
    LTE_CHECK(task_index < n_chanest_tasks(), "task index out of range");
    const std::size_t antenna = task_index / params_.layers;
    const std::size_t layer = task_index % params_.layers;

    ChannelEstimatorConfig est_cfg;
    est_cfg.window_fraction = config_.window_fraction;

    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        const std::size_t m_sc = params_.sc_in_slot(slot);
        const CVec &received =
            signal_->antennas[antenna].slots[slot][kRefSymbolIndex];
        const CVec ref = user_dmrs(params_.id, slot, m_sc, layer);
        ChannelEstimate est = estimate_channel(received, ref, est_cfg);
        channel_[slot][antenna][layer] = std::move(est.freq_response);
        task_noise_[task_index * kSlotsPerSubframe + slot] = est.noise_var;
    }
}

void
UserProcessor::compute_weights()
{
    // Pool the per-task noise estimates; fall back to the configured
    // default when the allocation was too small to provide guard bins.
    double sum = 0.0;
    std::size_t n = 0;
    for (float v : task_noise_) {
        if (v > 0.0f) {
            sum += v;
            ++n;
        }
    }
    noise_var_ = n > 0 ? static_cast<float>(sum / static_cast<double>(n))
                       : config_.default_noise_var;
    noise_var_ = std::max(noise_var_, 1e-6f);

    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        weights_[slot] =
            compute_combiner_weights(channel_[slot], noise_var_);
    }
}

void
UserProcessor::run_demod_task(std::size_t task_index)
{
    LTE_CHECK(task_index < n_demod_tasks(), "task index out of range");
    const std::size_t data_symbol = task_index % kDataSymbolsPerSlot;
    const std::size_t layer = task_index / kDataSymbolsPerSlot;
    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot)
        demod_one(slot, data_symbol, layer);
}

void
UserProcessor::demod_one(std::size_t slot, std::size_t data_symbol,
                         std::size_t layer)
{
    const std::size_t m_sc = params_.sc_in_slot(slot);
    const std::size_t position = data_symbol_position(data_symbol);

    // Antenna combining.
    std::vector<CVec> rx(config_.n_antennas);
    for (std::size_t a = 0; a < config_.n_antennas; ++a)
        rx[a] = signal_->antennas[a].slots[slot][position];
    CVec combined = combine_layer(rx, weights_[slot], layer);

    // MMSE bias correction: scale each subcarrier by the effective
    // gain sum_a W(l,a) H(a,l) so constellation points land on grid.
    for (std::size_t sc = 0; sc < m_sc; ++sc) {
        cf32 bias(0.0f, 0.0f);
        for (std::size_t a = 0; a < config_.n_antennas; ++a) {
            bias += weights_[slot].at(sc, layer, a) *
                    channel_[slot][a][layer][sc];
        }
        if (std::norm(bias) > 1e-12f)
            combined[sc] /= bias;
    }

    // SC-FDMA despreading: back to the time domain where the
    // constellation symbols live.
    CVec time(m_sc);
    fft::FftCache::instance().get(m_sc)->inverse(combined.data(),
                                                 time.data());
    // The transmit DFT spread scales by 1/sqrt(m); undo the pair.
    const float scale = std::sqrt(static_cast<float>(m_sc));
    for (auto &v : time)
        v *= scale;

    equalised_[slot][data_symbol][layer] = std::move(time);
}

UserResult
UserProcessor::finish()
{
    // Canonical framing order (mirrored by the transmitter):
    // slot -> layer -> data symbol -> sample.
    std::vector<Llr> llrs;
    llrs.reserve(capacity_bits(params_));
    double evm_acc = 0.0;
    std::size_t evm_n = 0;

    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        for (std::size_t layer = 0; layer < params_.layers; ++layer) {
            for (std::size_t ds = 0; ds < kDataSymbolsPerSlot; ++ds) {
                const CVec deint =
                    deinterleave(equalised_[slot][ds][layer]);
                const auto sym_llrs =
                    demodulate_soft(deint, params_.mod, noise_var_);
                llrs.insert(llrs.end(), sym_llrs.begin(),
                            sym_llrs.end());
                for (const cf32 &y : deint) {
                    evm_acc += nearest_point_distance2(y, params_.mod);
                    ++evm_n;
                }
            }
        }
    }
    LTE_ASSERT(llrs.size() == capacity_bits(params_),
               "LLR count mismatch");

    // Soft descrambling with the user's Gold sequence (the inverse of
    // the transmitter's bit scrambling).
    llrs = descramble_soft(llrs, scrambling_init(params_.id));

    UserResult result;
    result.user_id = params_.id;
    result.noise_var = noise_var_;
    result.evm_rms = evm_n > 0
        ? std::sqrt(static_cast<float>(evm_acc /
                                       static_cast<double>(evm_n)))
        : 0.0f;

    if (config_.use_real_turbo) {
        const std::size_t k = turbo_info_bits(capacity_bits(params_));
        const std::vector<Llr> coded(
            llrs.begin(),
            llrs.begin() +
                static_cast<std::ptrdiff_t>(turbo_encoded_length(k)));
        result.bits = turbo_decode(coded, k);
    } else {
        result.bits = turbo_passthrough(llrs);
    }
    result.crc_ok = crc24_check(result.bits);
    result.checksum = bit_checksum(result.bits);
    return result;
}

UserResult
UserProcessor::process_all()
{
    for (std::size_t t = 0; t < n_chanest_tasks(); ++t)
        run_chanest_task(t);
    compute_weights();
    for (std::size_t t = 0; t < n_demod_tasks(); ++t)
        run_demod_task(t);
    return finish();
}

} // namespace lte::phy

#include "core/study_export.hpp"

#include <ostream>

namespace lte::core {

namespace {

/** Stable per-strategy pid so merged traces keep tracks apart. */
int
strategy_pid(mgmt::Strategy s)
{
    return 1 + static_cast<int>(s);
}

double
to_us(double seconds)
{
    return seconds * 1e6;
}

void
counter_event(std::ostream &os, int pid, double ts_us,
              const char *name, double value, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "  {\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"ts\":"
       << ts_us << ",\"name\":\"" << name << "\",\"args\":{\"value\":"
       << value << "}}";
}

} // namespace

void
write_study_csv(std::ostream &os, const StrategyOutcome &outcome,
                std::uint32_t n_workers)
{
    const bool domains = outcome.sim.n_domains > 0;
    os << "subframe,t0_ms,dur_ms,activity,est_activity,active_cores,"
          "powered_cores,watts";
    if (domains)
        os << ",active_domains,gated_domains,freq_scale,"
              "transition_energy_uj";
    os << '\n';
    const auto &sim = outcome.sim;
    for (std::size_t i = 0; i < sim.intervals.size(); ++i) {
        const auto &iv = sim.intervals[i];
        os << i << ',' << iv.t0 * 1e3 << ',' << iv.dur * 1e3 << ','
           << iv.activity(n_workers) << ',' << iv.est_activity << ',';
        if (i < sim.active_cores.size())
            os << sim.active_cores[i];
        os << ',';
        if (i < outcome.powered.size())
            os << outcome.powered[i];
        os << ',';
        if (i < outcome.series.size())
            os << outcome.series[i].watts;
        if (domains) {
            std::uint32_t active = 0, gated = 0;
            for (const auto &dom : iv.domains) {
                if (dom.state ==
                    static_cast<std::uint8_t>(mgmt::DomainState::kGated))
                    ++gated;
                else if (dom.state ==
                         static_cast<std::uint8_t>(
                             mgmt::DomainState::kActive))
                    ++active;
            }
            os << ',' << active << ',' << gated << ',' << iv.freq_scale
               << ',' << iv.transition_energy_j * 1e6;
        }
        os << '\n';
    }
}

void
write_study_chrome_trace(std::ostream &os,
                         const StrategyOutcome &outcome,
                         std::uint32_t n_workers)
{
    const int pid = strategy_pid(outcome.strategy);
    os << "{\"traceEvents\":[\n";
    os << "  {\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
       << outcome.policy.name << "\"}}";
    bool first = false;
    const auto &sim = outcome.sim;
    for (std::size_t i = 0; i < sim.intervals.size(); ++i) {
        const auto &iv = sim.intervals[i];
        const double ts = to_us(iv.t0);
        counter_event(os, pid, ts, "busy_cores",
                      iv.activity(n_workers) *
                          static_cast<double>(n_workers),
                      first);
        counter_event(os, pid, ts, "watermark",
                      static_cast<double>(iv.watermark), first);
        counter_event(os, pid, ts, "est_activity", iv.est_activity,
                      first);
        if (i < outcome.powered.size())
            counter_event(os, pid, ts, "powered_cores",
                          static_cast<double>(outcome.powered[i]),
                          first);
        if (i < outcome.series.size())
            counter_event(os, pid, ts, "watts",
                          outcome.series[i].watts, first);
        if (!iv.domains.empty()) {
            std::uint32_t gated = 0;
            for (const auto &dom : iv.domains)
                gated += dom.state ==
                         static_cast<std::uint8_t>(
                             mgmt::DomainState::kGated);
            counter_event(os, pid, ts, "gated_domains",
                          static_cast<double>(gated), first);
            counter_event(os, pid, ts, "freq_scale", iv.freq_scale,
                          first);
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

} // namespace lte::core

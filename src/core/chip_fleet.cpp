#include "core/chip_fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <string_view>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mac/mcs.hpp"
#include "mgmt/core_allocator.hpp"

namespace lte::core {

namespace {

constexpr std::size_t kLoadBuckets = 10;

/** splitmix64 finalizer: one deterministic draw per (seed, cell). */
std::uint64_t
mix(std::uint64_t seed, std::uint64_t cell)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (cell + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::vector<LoadBucket>
make_buckets()
{
    std::vector<LoadBucket> buckets(kLoadBuckets);
    for (std::size_t b = 0; b < kLoadBuckets; ++b) {
        buckets[b].load_lo =
            static_cast<double>(b) / static_cast<double>(kLoadBuckets);
        buckets[b].load_hi = static_cast<double>(b + 1) /
                             static_cast<double>(kLoadBuckets);
    }
    return buckets;
}

} // namespace

void
FleetConfig::validate() const
{
    LTE_CHECK(n_cells >= 1, "fleet needs at least one cell");
    LTE_CHECK(ues_per_cell >= 1, "cells need at least one UE");
    LTE_CHECK(subframes >= 2, "fleet horizon must be >= 2 subframes");
    LTE_CHECK(slo_miss_rate > 0.0 && slo_miss_rate <= 1.0,
              "SLO miss rate must be in (0, 1]");
    LTE_CHECK(cell_load_spread >= 0.0 && cell_load_spread < 1.0,
              "cell load spread must be in [0, 1)");
    LTE_CHECK(oversubscribe > 0.0 && oversubscribe <= 8.0,
              "oversubscription must be in (0, 8]");
    chip.sim.validate();
    chip.power.validate();
    diurnal.validate();
    for (const mgmt::PowerPolicy &p : candidates)
        p.validate();
}

// ------------------------------------------------- FleetCellModel

FleetCellModel::FleetCellModel(
    const mac::MacConfig &mac_cfg,
    const workload::DiurnalModelConfig &diurnal_cfg, double load_scale)
    : sched_(mac_cfg), diurnal_(diurnal_cfg), load_scale_(load_scale)
{
}

double
FleetCellModel::load_at(std::uint64_t subframe) const
{
    return std::clamp(diurnal_.load_at(subframe) * load_scale_, 0.0,
                      1.0);
}

phy::SubframeParams
FleetCellModel::next_subframe()
{
    // The MAC's arrival_rate encodes the long-run average offered
    // load, so the instantaneous multiplier is load(t) / average.
    sched_.set_arrival_scale(
        load_at(index_) /
        std::max(diurnal_.config().average_load, 1e-9));
    sched_.next_tti_into(scratch_);
    if (!scratch_.users.empty()) {
        // Close the loop immediately from the modelled channel:
        // crc_modelled feedback makes the MAC draw its logistic BLER,
        // which drives HARQ retransmissions and OLLA exactly as a
        // live engine would, minus the round-trip delay.
        outcome_.subframe_index = scratch_.subframe_index;
        outcome_.cell_id = scratch_.cell_id;
        outcome_.users.clear();
        for (const phy::UserParams &user : scratch_.users) {
            runtime::UserOutcome uo;
            uo.user_id = user.id;
            uo.crc_ok = false;
            uo.crc_modelled = true;
            uo.evm_rms = 0.0f;
            outcome_.users.push_back(uo);
        }
        sched_.on_subframe_complete(outcome_, phy::DegradeLevel::kNone);
    }
    ++index_;
    return scratch_;
}

void
FleetCellModel::reset()
{
    sched_.reset();
    diurnal_.reset();
    index_ = 0;
}

// ------------------------------------------------------ ChipFleet

ChipFleet::ChipFleet(const FleetConfig &config) : config_(config)
{
    config_.validate();
    candidates_ = config_.candidates;
    if (candidates_.empty()) {
        // Most aggressive first: the optimiser adopts the first
        // candidate whose worst cell meets the SLO.
        candidates_ = {mgmt::PowerPolicy::domain_dvfs(),
                       mgmt::PowerPolicy::power_gating(),
                       mgmt::PowerPolicy::nap_idle(),
                       mgmt::PowerPolicy::nap(),
                       mgmt::PowerPolicy::idle(),
                       mgmt::PowerPolicy::nonap()};
    }
}

double
ChipFleet::cell_load_scale(std::size_t cell) const
{
    const double u =
        static_cast<double>(mix(config_.seed, cell) >> 11) * 0x1.0p-53;
    return 1.0 + config_.cell_load_spread * (2.0 * u - 1.0);
}

std::vector<ChipFleet::ChipPlan>
ChipFleet::place_cells() const
{
    const std::uint32_t domains = std::max(
        1u, config_.chip.power.total_cores /
                config_.chip.power.domain_size);
    const std::size_t max_per = std::min<std::size_t>(
        domains, config_.chip.sim.n_workers);
    const std::size_t n_chips =
        (config_.n_cells + max_per - 1) / max_per;

    // Heaviest cells first...
    std::vector<std::size_t> order(config_.n_cells);
    for (std::size_t c = 0; c < order.size(); ++c)
        order[c] = c;
    const double peak_factor =
        config_.diurnal.average_load * (1.0 + config_.diurnal.swing);
    auto peak = [&](std::size_t c) {
        return std::min(1.0, peak_factor * cell_load_scale(c));
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const double pa = peak(a), pb = peak(b);
                  return pa != pb ? pa > pb : a < b;
              });

    // ...onto the least-loaded chip with a free slot.
    std::vector<ChipPlan> plans(n_chips);
    for (std::size_t c : order) {
        ChipPlan *best = nullptr;
        for (ChipPlan &plan : plans) {
            if (plan.cells.size() >= max_per)
                continue;
            if (best == nullptr || plan.peak_load < best->peak_load)
                best = &plan;
        }
        LTE_CHECK(best != nullptr, "placement ran out of chip slots");
        best->cells.push_back(c);
        best->peak_load += peak(c);
    }
    return plans;
}

StudyConfig
ChipFleet::cell_slice(std::size_t n_cells) const
{
    // Equal static slices, domain-aligned — the same apportionment
    // UplinkStudy::run_policy_multicell uses for one chip.
    const auto n = static_cast<std::uint32_t>(std::max<std::size_t>(
        1, n_cells));
    StudyConfig slice = config_.chip;
    slice.sim.n_workers =
        std::max(1u, config_.chip.sim.n_workers / n);
    slice.power.total_cores = std::max(
        config_.chip.power.domain_size,
        (config_.chip.power.total_cores / n /
         config_.chip.power.domain_size) *
            config_.chip.power.domain_size);
    slice.power.base_power_w =
        config_.chip.power.base_power_w / static_cast<double>(n);
    return slice;
}

mac::MacConfig
ChipFleet::cell_mac(std::size_t cell, std::uint32_t prb_budget) const
{
    mac::MacConfig cfg = config_.mac;
    cfg.cell_id = static_cast<std::uint32_t>(cell % 511) + 1;
    cfg.seed = cell_stream_seed(config_.seed, cfg.cell_id) ^
               mix(config_.seed, cell);
    cfg.n_ues = config_.ues_per_cell;
    cfg.prb_budget = std::clamp<std::uint32_t>(
        prb_budget, 2, static_cast<std::uint32_t>(kMaxPrbPerSubframe));
    cfg.max_prb_per_grant =
        std::clamp(cfg.max_prb_per_grant, 2u, cfg.prb_budget);
    if (cfg.arrival_rate <= 0.0) {
        // Auto rate: offer diurnal.average_load of the slice's PRB
        // budget in payload bits, at the MCS the mean channel holds.
        const std::uint8_t mcs = mac::highest_mcs_for(cfg.snr_mean_db);
        const double bits_per_prb =
            static_cast<double>(
                mac::tb_payload_bits(mcs, cfg.prb_budget, 1)) /
            static_cast<double>(cfg.prb_budget);
        const double offered_bits = config_.diurnal.average_load *
                                    static_cast<double>(cfg.prb_budget) *
                                    bits_per_prb;
        cfg.arrival_rate =
            offered_bits /
            (cfg.burst_mean * static_cast<double>(cfg.packet_bits));
    }
    cfg.validate();
    return cfg;
}

void
ChipFleet::run_chip(const ChipPlan &plan, const Calibration &calibration,
                    ChipOutcome &out,
                    std::vector<LoadBucket> &buckets) const
{
    const StudyConfig slice = cell_slice(plan.cells.size());
    // A cell's PRB share mirrors its worker share of the full chip,
    // scaled by the radio-side oversubscription factor.
    const auto prb_budget = static_cast<std::uint32_t>(std::max<double>(
        4.0, config_.oversubscribe *
                 static_cast<double>(kMaxPrbPerSubframe) *
                 static_cast<double>(slice.sim.n_workers) /
                 static_cast<double>(config_.chip.sim.n_workers)));

    out.cells = plan.cells;
    out.slo_met = false;
    for (const mgmt::PowerPolicy &candidate : candidates_) {
        ++out.policies_tried;
        double power_w = 0.0;
        double worst_miss = 0.0;
        double wall_s = 0.0;
        std::vector<std::uint32_t> peak_demand;
        std::vector<LoadBucket> trial_buckets = make_buckets();
        for (std::size_t cell : plan.cells) {
            UplinkStudy study(slice);
            study.adopt_calibration(calibration);
            FleetCellModel model(cell_mac(cell, prb_budget),
                                 config_.diurnal,
                                 cell_load_scale(cell));
            const StrategyOutcome run = study.run_policy_on(
                candidate, model, config_.subframes);
            power_w += run.avg_power_w;
            worst_miss = std::max(worst_miss, run.deadline_miss_rate);
            wall_s = run.sim.wall_s;
            std::uint32_t peak = 0;
            for (std::uint32_t demand : run.sim.active_cores)
                peak = std::max(peak, demand);
            peak_demand.push_back(peak);
            // Miss-vs-load: bucket every user by the cell's offered
            // load at its dispatch TTI.
            const double deadline = slice.deadline_periods;
            for (std::size_t i = 0; i < run.sim.user_latency.size();
                 ++i) {
                const double load =
                    model.load_at(run.sim.user_dispatch[i]);
                auto b = static_cast<std::size_t>(
                    load * static_cast<double>(kLoadBuckets));
                b = std::min(b, kLoadBuckets - 1);
                ++trial_buckets[b].users;
                trial_buckets[b].misses +=
                    run.sim.user_latency[i] > deadline;
            }
        }
        const bool meets_slo = worst_miss <= config_.slo_miss_rate;
        const bool last = &candidate == &candidates_.back();
        if (meets_slo || last) {
            out.policy = candidate;
            out.avg_power_w = power_w;
            out.worst_miss_rate = worst_miss;
            out.slo_met = meets_slo;
            out.energy_j = power_w * wall_s;
            out.joules_per_subframe =
                config_.subframes > 0
                    ? out.energy_j /
                          static_cast<double>(config_.subframes)
                    : 0.0;
            out.domain_partition = mgmt::partition_domains(
                peak_demand, config_.chip.power.domain_size,
                config_.chip.power.total_cores);
            buckets = std::move(trial_buckets);
            return;
        }
    }
}

FleetOutcome
ChipFleet::run()
{
    const std::vector<ChipPlan> plans = place_cells();

    // One calibration per distinct slice geometry (cells per chip),
    // shared by every chip with that shape: calibration depends only
    // on the machine slice, never on the policy or the traffic.
    std::map<std::size_t, Calibration> calibrations;
    for (const ChipPlan &plan : plans) {
        const std::size_t key = plan.cells.size();
        if (calibrations.count(key) != 0)
            continue;
        UplinkStudy probe(cell_slice(key));
        probe.prepare();
        calibrations.emplace(key, probe.calibration());
    }

    FleetOutcome outcome;
    outcome.chips.resize(plans.size());
    std::vector<std::vector<LoadBucket>> chip_buckets(plans.size());

    unsigned n_threads = config_.n_threads != 0
        ? config_.n_threads
        : std::max(1u, std::thread::hardware_concurrency());
    n_threads = std::min<unsigned>(
        n_threads, static_cast<unsigned>(plans.size()));

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t chip =
                next.fetch_add(1, std::memory_order_relaxed);
            if (chip >= plans.size())
                return;
            run_chip(plans[chip],
                     calibrations.at(plans[chip].cells.size()),
                     outcome.chips[chip], chip_buckets[chip]);
        }
    };
    if (n_threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(n_threads);
        for (unsigned t = 0; t < n_threads; ++t)
            threads.emplace_back(worker);
        for (std::thread &t : threads)
            t.join();
    }

    outcome.buckets = make_buckets();
    outcome.total_ues = static_cast<std::uint64_t>(config_.n_cells) *
                        config_.ues_per_cell;
    for (const mgmt::PowerPolicy &candidate : candidates_)
        outcome.policy_counts.emplace_back(candidate.name, 0);
    for (std::size_t chip = 0; chip < outcome.chips.size(); ++chip) {
        const ChipOutcome &c = outcome.chips[chip];
        outcome.total_power_w += c.avg_power_w;
        outcome.energy_j += c.energy_j;
        outcome.joules_per_subframe += c.joules_per_subframe;
        outcome.worst_miss_rate =
            std::max(outcome.worst_miss_rate, c.worst_miss_rate);
        outcome.chips_missing_slo += !c.slo_met;
        for (std::size_t b = 0; b < outcome.buckets.size(); ++b) {
            outcome.buckets[b].users += chip_buckets[chip][b].users;
            outcome.buckets[b].misses += chip_buckets[chip][b].misses;
        }
        for (auto &[name, count] : outcome.policy_counts) {
            if (std::string_view(name) ==
                std::string_view(c.policy.name))
                ++count;
        }
    }
    return outcome;
}

} // namespace lte::core

#include "core/uplink_study.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "mgmt/core_allocator.hpp"

namespace lte::core {

void
StudyConfig::scale_to(std::uint64_t n)
{
    LTE_CHECK(n >= 2, "need at least two subframes");
    const double scale = static_cast<double>(n) /
                         static_cast<double>(subframes);
    subframes = n;
    model.ramp_subframes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(model.ramp_subframes) * scale));
    model.prob_update_interval = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(model.prob_update_interval) * scale));
}

UplinkStudy::UplinkStudy(const StudyConfig &config)
    : config_(config)
{
    config_.sim.validate();
    config_.power.validate();
    config_.model.validate();
}

void
UplinkStudy::prepare()
{
    // 1. Machine saturation point: peak workload fills 62 workers at
    //    one subframe per DELTA (Sec. V-B operating point).
    config_.sim.cycles_per_op = sim::calibrate_cycles_per_op(
        config_.sim, config_.n_antennas, config_.model.seed);

    // 2. Steady-state sweeps fit the k_{L,M} slopes (Fig. 11).
    const mgmt::CalibrationTable table =
        sim::calibrate_table(config_.sim, config_.sweep,
                             config_.n_antennas);
    estimator_ = mgmt::WorkloadEstimator(table);
}

const mgmt::CalibrationTable &
UplinkStudy::table() const
{
    LTE_CHECK(estimator_.has_value(), "call prepare() first");
    return estimator_->table();
}

std::vector<std::uint32_t>
UplinkStudy::gating_plan(const sim::SimResult &result) const
{
    mgmt::GatingPlanner planner(config_.power.domain_size,
                                config_.power.total_cores);
    std::vector<std::uint32_t> powered;
    powered.reserve(result.intervals.size());
    for (std::uint32_t demand : result.active_cores) {
        for (std::uint32_t p : planner.push(demand))
            powered.push_back(p);
    }
    for (std::uint32_t p : planner.finish())
        powered.push_back(p);
    // Pad trailing drain intervals with the final decision.
    const std::uint32_t last =
        powered.empty() ? config_.power.total_cores : powered.back();
    while (powered.size() < result.intervals.size())
        powered.push_back(last);
    return powered;
}

StrategyOutcome
UplinkStudy::run_strategy(mgmt::Strategy strategy)
{
    workload::PaperModel model(config_.model);
    return run_strategy_on(strategy, model, config_.subframes);
}

StrategyOutcome
UplinkStudy::run_strategy_on(mgmt::Strategy strategy,
                             workload::ParameterModel &model,
                             std::uint64_t subframes)
{
    LTE_CHECK(estimator_.has_value(), "call prepare() first");

    sim::SimConfig sim_cfg = config_.sim;
    sim_cfg.strategy = strategy;

    sim::Machine machine(sim_cfg, config_.n_antennas);
    machine.set_estimator(estimator_);

    StrategyOutcome outcome;
    outcome.strategy = strategy;
    outcome.sim = machine.run(model, subframes);

    const power::PowerModel pm(config_.power);
    if (strategy == mgmt::Strategy::kPowerGating) {
        outcome.powered = gating_plan(outcome.sim);
        outcome.series =
            pm.power_series_gated(outcome.sim, outcome.powered);
    } else {
        outcome.series = pm.power_series(outcome.sim);
    }
    outcome.avg_power_w = power::PowerModel::average_power(outcome.series);
    outcome.avg_dynamic_w =
        outcome.avg_power_w - config_.power.base_power_w;
    return outcome;
}

} // namespace lte::core

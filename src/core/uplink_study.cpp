#include "core/uplink_study.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "mgmt/core_allocator.hpp"

namespace lte::core {

void
StudyConfig::scale_to(std::uint64_t n)
{
    LTE_CHECK(n >= 2, "need at least two subframes");
    const double scale = static_cast<double>(n) /
                         static_cast<double>(subframes);
    subframes = n;
    model.ramp_subframes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(model.ramp_subframes) * scale));
    model.prob_update_interval = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(model.prob_update_interval) * scale));
}

UplinkStudy::UplinkStudy(const StudyConfig &config)
    : config_(config),
      metrics_(std::make_unique<obs::MetricsRegistry>())
{
    config_.sim.validate();
    config_.power.validate();
    config_.model.validate();
}

void
UplinkStudy::prepare()
{
    // 1. Machine saturation point: peak workload fills 62 workers at
    //    one subframe per DELTA (Sec. V-B operating point).
    config_.sim.cycles_per_op = sim::calibrate_cycles_per_op(
        config_.sim, config_.n_antennas, config_.model.seed);

    // 2. Steady-state sweeps fit the k_{L,M} slopes (Fig. 11).
    const mgmt::CalibrationTable table =
        sim::calibrate_table(config_.sim, config_.sweep,
                             config_.n_antennas);
    estimator_ = mgmt::WorkloadEstimator(table);
}

const mgmt::CalibrationTable &
UplinkStudy::table() const
{
    LTE_CHECK(estimator_.has_value(), "call prepare() first");
    return estimator_->table();
}

Calibration
UplinkStudy::calibration() const
{
    LTE_CHECK(estimator_.has_value(), "call prepare() first");
    return Calibration{config_.sim.cycles_per_op, estimator_->table()};
}

void
UplinkStudy::adopt_calibration(const Calibration &calibration)
{
    LTE_CHECK(calibration.cycles_per_op > 0.0,
              "calibration has no cycles/op scale");
    LTE_CHECK(calibration.table.complete(),
              "calibration table is incomplete");
    config_.sim.cycles_per_op = calibration.cycles_per_op;
    estimator_ = mgmt::WorkloadEstimator(calibration.table);
}

std::vector<std::uint32_t>
UplinkStudy::gating_plan(const sim::SimResult &result,
                         mgmt::GatingStats *stats) const
{
    mgmt::GatingPlanner planner(config_.power.domain_size,
                                config_.power.total_cores);
    std::vector<std::uint32_t> powered;
    powered.reserve(result.intervals.size());
    for (std::uint32_t demand : result.active_cores) {
        for (std::uint32_t p : planner.push(demand))
            powered.push_back(p);
    }
    for (std::uint32_t p : planner.finish())
        powered.push_back(p);
    // Pad trailing drain intervals with the final decision.
    const std::uint32_t last =
        powered.empty() ? config_.power.total_cores : powered.back();
    while (powered.size() < result.intervals.size())
        powered.push_back(last);
    if (stats != nullptr)
        *stats = planner.stats();
    return powered;
}

void
UplinkStudy::record_run_metrics(const StrategyOutcome &outcome)
{
    const std::string prefix =
        std::string("study.") + outcome.policy.name;
    metrics_->counter(prefix + ".runs").add(1);
    metrics_->counter(prefix + ".subframes").add(outcome.sim.subframes);
    metrics_->counter(prefix + ".tasks").add(outcome.sim.tasks_executed);
    metrics_->counter(prefix + ".estimator.saturated")
        .add(outcome.estimator_stats.saturated_estimates);
    metrics_->counter(prefix + ".estimator.clamped_low")
        .add(outcome.estimator_stats.clamped_low);
    metrics_->counter(prefix + ".estimator.clamped_high")
        .add(outcome.estimator_stats.clamped_high);
    metrics_->counter(prefix + ".gating.switches")
        .add(outcome.gating_stats.switch_events);
    metrics_->gauge(prefix + ".avg_power_w").set(outcome.avg_power_w);
    metrics_->gauge(prefix + ".avg_dynamic_w")
        .set(outcome.avg_dynamic_w);
    metrics_->gauge(prefix + ".activity").set(outcome.sim.activity());
    metrics_->gauge(prefix + ".mean_latency")
        .set(outcome.sim.mean_latency());
    metrics_->gauge(prefix + ".max_latency")
        .set(outcome.sim.max_latency());
    metrics_->gauge(prefix + ".deadline_miss_rate")
        .set(outcome.deadline_miss_rate);
    metrics_->gauge(prefix + ".max_backlog")
        .set(static_cast<double>(outcome.sim.max_ready_backlog));
}

mgmt::PowerPolicy
UplinkStudy::policy_for(mgmt::Strategy strategy) const
{
    // DVFS stays orthogonal to the paper's five strategies: a config
    // that enables it applies it under whichever strategy is run.
    mgmt::PowerPolicy policy = mgmt::PowerPolicy::from_strategy(strategy);
    policy.dvfs = config_.sim.policy.dvfs;
    policy.dvfs_margin = config_.sim.policy.dvfs_margin;
    policy.dvfs_min_scale = config_.sim.policy.dvfs_min_scale;
    return policy;
}

StrategyOutcome
UplinkStudy::run_strategy(mgmt::Strategy strategy)
{
    return run_policy(policy_for(strategy));
}

StrategyOutcome
UplinkStudy::run_strategy_on(mgmt::Strategy strategy,
                             workload::ParameterModel &model,
                             std::uint64_t subframes)
{
    return run_policy_on(policy_for(strategy), model, subframes);
}

StrategyOutcome
UplinkStudy::run_policy(const mgmt::PowerPolicy &policy)
{
    workload::PaperModel model(config_.model);
    return run_policy_on(policy, model, config_.subframes);
}

StrategyOutcome
UplinkStudy::run_policy_on(const mgmt::PowerPolicy &policy,
                           workload::ParameterModel &model,
                           std::uint64_t subframes)
{
    LTE_CHECK(estimator_.has_value(), "call prepare() first");

    sim::SimConfig sim_cfg = config_.sim;
    sim_cfg.policy = policy;

    sim::Machine machine(sim_cfg, config_.n_antennas);
    machine.set_estimator(estimator_);

    StrategyOutcome outcome;
    outcome.strategy = policy.label;
    outcome.policy = policy;
    outcome.sim = machine.run(model, subframes);

    const power::PowerModel pm(config_.power);
    if (policy.analytical_gating) {
        outcome.powered = gating_plan(outcome.sim, &outcome.gating_stats);
        outcome.series =
            pm.power_series_gated(outcome.sim, outcome.powered);
    } else {
        outcome.series = pm.power_series(outcome.sim);
    }
    outcome.avg_power_w = power::PowerModel::average_power(outcome.series);
    outcome.avg_dynamic_w =
        outcome.avg_power_w - config_.power.base_power_w;
    if (machine.estimator().has_value())
        outcome.estimator_stats = machine.estimator()->stats();
    outcome.deadline_miss_rate =
        1.0 - outcome.sim.deadline_hit_rate(config_.deadline_periods);
    record_run_metrics(outcome);
    return outcome;
}

MultiCellStrategyOutcome
UplinkStudy::run_strategy_multicell(mgmt::Strategy strategy,
                                    std::size_t n_cells)
{
    return run_policy_multicell(policy_for(strategy), n_cells);
}

MultiCellStrategyOutcome
UplinkStudy::run_policy_multicell(const mgmt::PowerPolicy &policy,
                                  std::size_t n_cells)
{
    LTE_CHECK(n_cells >= 1, "need at least one cell");
    LTE_CHECK(n_cells <= config_.sim.n_workers,
              "need at least one worker per cell");
    LTE_CHECK(config_.power.total_cores / config_.power.domain_size >=
                  n_cells,
              "need at least one power domain per cell");

    MultiCellStrategyOutcome outcome;
    outcome.strategy = policy.label;
    outcome.policy = policy;
    outcome.cells.reserve(n_cells);

    // Equal static slices; the domain slice rounds down to whole
    // domains so every cell's gating plan stays domain-aligned.
    const auto n = static_cast<std::uint32_t>(n_cells);
    StudyConfig cell_cfg = config_;
    cell_cfg.sim.n_workers = std::max(1u, config_.sim.n_workers / n);
    cell_cfg.power.total_cores = std::max(
        config_.power.domain_size,
        (config_.power.total_cores / n / config_.power.domain_size) *
            config_.power.domain_size);
    cell_cfg.power.base_power_w =
        config_.power.base_power_w / static_cast<double>(n_cells);

    std::vector<std::uint32_t> peak_demand(n_cells, 0);
    for (std::size_t c = 0; c < n_cells; ++c) {
        const auto cell_id = static_cast<std::uint32_t>(c + 1);
        cell_cfg.model.seed =
            cell_stream_seed(config_.model.seed, cell_id);
        UplinkStudy cell_study(cell_cfg);
        cell_study.prepare();
        outcome.cells.push_back(cell_study.run_policy(policy));
        for (std::uint32_t demand :
             outcome.cells.back().sim.active_cores)
            peak_demand[c] = std::max(peak_demand[c], demand);
        outcome.total_power_w += outcome.cells.back().avg_power_w;
        outcome.worst_deadline_miss_rate =
            std::max(outcome.worst_deadline_miss_rate,
                     outcome.cells.back().deadline_miss_rate);
    }
    outcome.total_dynamic_w =
        outcome.total_power_w - config_.power.base_power_w;
    outcome.domain_partition = mgmt::partition_domains(
        peak_demand, config_.power.domain_size,
        config_.power.total_cores);

    const std::string prefix =
        std::string("study.multicell.") + policy.name;
    metrics_->counter(prefix + ".runs").add(1);
    metrics_->gauge(prefix + ".cells")
        .set(static_cast<double>(n_cells));
    metrics_->gauge(prefix + ".total_power_w")
        .set(outcome.total_power_w);
    metrics_->gauge(prefix + ".worst_deadline_miss_rate")
        .set(outcome.worst_deadline_miss_rate);
    return outcome;
}

StrategyOutcome
UplinkStudy::run_strategy_overloaded(mgmt::Strategy strategy,
                                     double overload_factor)
{
    LTE_CHECK(overload_factor >= 1.0,
              "overload factor must be at least 1");
    // Arrivals come overload_factor times faster than the calibrated
    // saturation rate; everything downstream (latency in periods,
    // deadline accounting) follows from the shortened DELTA.
    const double nominal_delta = config_.sim.delta_s;
    config_.sim.delta_s = nominal_delta / overload_factor;
    StrategyOutcome outcome;
    try {
        workload::PaperModel model(config_.model);
        outcome = run_strategy_on(strategy, model, config_.subframes);
    } catch (...) {
        config_.sim.delta_s = nominal_delta;
        throw;
    }
    config_.sim.delta_s = nominal_delta;
    return outcome;
}

} // namespace lte::core

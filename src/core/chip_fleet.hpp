/**
 * @file
 * City-scale energy study: N TILEPro64 chips serving M cells, each
 * cell a closed-loop MAC UE population whose traffic intensity follows
 * a shared diurnal curve (DESIGN.md 3k).
 *
 * The fleet generalises UplinkStudy's single-chip multicell slicing:
 *
 *   demand    — every cell gets a deterministic long-run load
 *               multiplier (seeded spread around 1.0); its analytical
 *               peak demand is the diurnal peak times that multiplier;
 *   placement — cells are placed greedily, heaviest first, onto the
 *               least-loaded chip with a free slot (one power domain
 *               per cell minimum), and each chip's domains are then
 *               apportioned with mgmt::partition_domains;
 *   policy    — per chip, candidate power policies are tried from the
 *               most aggressive down (DOMAIN-DVFS, PowerGating,
 *               NAP+IDLE, ..., NONAP) and the first meeting the
 *               deadline-miss SLO is adopted — minimum energy subject
 *               to responsiveness, chip by chip;
 *   accounting— joules per subframe per chip and fleet-wide, plus
 *               deadline-miss rate bucketed by instantaneous offered
 *               load (via SimResult::user_dispatch), the curve the
 *               paper's conclusion asks for.
 *
 * Chips run on a small thread pool; every cell's traffic, channel and
 * placement draw from deterministic per-cell streams, so a fleet run
 * is reproducible for a given FleetConfig.
 */
#ifndef LTE_CORE_CHIP_FLEET_HPP
#define LTE_CORE_CHIP_FLEET_HPP

#include <cstdint>
#include <vector>

#include "core/uplink_study.hpp"
#include "mac/scheduler.hpp"
#include "workload/diurnal_model.hpp"

namespace lte::core {

/** Configuration of a fleet run; defaults give a small smoke fleet. */
struct FleetConfig
{
    /** Per-chip template: machine geometry, power model, calibration
     *  sweep.  Each chip slices this across its cells. */
    StudyConfig chip;
    /** Cells across the city (>= 1; the headline study runs 100+). */
    std::size_t n_cells = 8;
    /** UE population per cell (headline: 10 000 -> 1M+ total). */
    std::uint32_t ues_per_cell = 1000;
    /** Simulated horizon per cell (subframes == TTIs). */
    std::uint64_t subframes = 2000;
    /** Deadline-miss SLO each chip's policy must meet. */
    double slo_miss_rate = 0.05;
    /** Master seed; per-cell streams derive deterministically. */
    std::uint64_t seed = 2012;
    /** Worker threads for the chip runs (0 = hardware concurrency). */
    unsigned n_threads = 0;
    /** The shared day shape (period, average load, swing). */
    workload::DiurnalModelConfig diurnal;
    /** Per-cell long-run load multipliers draw uniformly from
     *  [1 - spread, 1 + spread] (heterogeneous sectors). */
    double cell_load_spread = 0.4;
    /** Radio-to-compute oversubscription: each cell's MAC PRB budget
     *  is this multiple of the PRBs its compute slice is dimensioned
     *  for.  1.0 = peak-dimensioned (no chip can ever saturate);
     *  above 1.0 the diurnal peak can outrun a slice, deadline misses
     *  appear, and the per-chip policy optimiser has real work. */
    double oversubscribe = 1.0;
    /** Per-cell MAC template.  n_ues and cell_id are overridden per
     *  cell; arrival_rate <= 0 selects an automatic rate that offers
     *  diurnal.average_load of the cell's sliced PRB budget. */
    mac::MacConfig mac;
    /** Candidate policies, most aggressive first; empty selects the
     *  default ladder (DOMAIN-DVFS ... NONAP). */
    std::vector<mgmt::PowerPolicy> candidates;

    void validate() const;
};

/**
 * A cell's closed demand loop as a workload::ParameterModel: grants
 * come from a live MacScheduler whose arrival intensity is modulated
 * every TTI by the diurnal curve (times the cell's load multiplier),
 * and receiver feedback is synthesised immediately from the modelled
 * channel (crc_modelled), so HARQ/OLLA/queueing evolve without an
 * engine in the loop — the discrete-event machine only sees the
 * resulting grant shapes.
 */
class FleetCellModel final : public workload::ParameterModel
{
  public:
    FleetCellModel(const mac::MacConfig &mac_cfg,
                   const workload::DiurnalModelConfig &diurnal_cfg,
                   double load_scale);

    phy::SubframeParams next_subframe() override;
    void reset() override;

    /** Cell-relative offered load at a subframe index (clamped to
     *  [0, 1]); the fleet's miss-vs-load buckets key on this. */
    double load_at(std::uint64_t subframe) const;

    const mac::MacScheduler &scheduler() const { return sched_; }
    mac::MacScheduler &scheduler() { return sched_; }

  private:
    mac::MacScheduler sched_;
    workload::DiurnalModel diurnal_;
    double load_scale_ = 1.0;
    std::uint64_t index_ = 0;
    phy::SubframeParams scratch_;
    runtime::SubframeOutcome outcome_;
};

/** One (load bucket) row of the fleet's miss-vs-load curve. */
struct LoadBucket
{
    double load_lo = 0.0;
    double load_hi = 0.0;
    std::uint64_t users = 0;
    std::uint64_t misses = 0;

    double
    miss_rate() const
    {
        return users > 0
            ? static_cast<double>(misses) / static_cast<double>(users)
            : 0.0;
    }
};

/** Outcome of one chip of the fleet. */
struct ChipOutcome
{
    /** Fleet cell indices served by this chip. */
    std::vector<std::size_t> cells;
    /** The adopted policy (first candidate meeting the SLO). */
    mgmt::PowerPolicy policy;
    /** Candidates evaluated before adoption (>= 1). */
    std::uint32_t policies_tried = 0;
    double avg_power_w = 0.0; ///< summed per-cell averages
    double energy_j = 0.0;
    double joules_per_subframe = 0.0;
    double worst_miss_rate = 0.0;
    bool slo_met = false;
    /** Eq. 6 domain apportionment from the cells' peak demands. */
    std::vector<std::uint32_t> domain_partition;
};

/** Fleet-wide aggregates. */
struct FleetOutcome
{
    std::vector<ChipOutcome> chips;
    std::uint64_t total_ues = 0;
    double total_power_w = 0.0;
    double energy_j = 0.0;
    /** Fleet joules per subframe period (all chips, one TTI). */
    double joules_per_subframe = 0.0;
    double worst_miss_rate = 0.0;
    std::size_t chips_missing_slo = 0;
    /** Deadline-miss rate vs instantaneous offered load (10 bins). */
    std::vector<LoadBucket> buckets;
    /** Adoption count per candidate policy name (parallel to the
     *  candidate ladder used). */
    std::vector<std::pair<const char *, std::size_t>> policy_counts;
};

class ChipFleet
{
  public:
    explicit ChipFleet(const FleetConfig &config);

    /** Place, calibrate, optimise and run the whole fleet. */
    FleetOutcome run();

    /** The candidate ladder in use (config override or default). */
    const std::vector<mgmt::PowerPolicy> &candidates() const
    {
        return candidates_;
    }

    /** Deterministic long-run load multiplier of one cell. */
    double cell_load_scale(std::size_t cell) const;

    const FleetConfig &config() const { return config_; }

  private:
    struct ChipPlan
    {
        std::vector<std::size_t> cells;
        double peak_load = 0.0;
    };

    /** Greedy heaviest-first placement onto the least-loaded chip. */
    std::vector<ChipPlan> place_cells() const;

    /** The sliced per-cell study config for a chip serving @p n_cells
     *  cells. */
    StudyConfig cell_slice(std::size_t n_cells) const;

    /** MAC config of one cell under a given PRB slice. */
    mac::MacConfig cell_mac(std::size_t cell,
                            std::uint32_t prb_budget) const;

    void run_chip(const ChipPlan &plan, const Calibration &calibration,
                  ChipOutcome &out,
                  std::vector<LoadBucket> &buckets) const;

    FleetConfig config_;
    std::vector<mgmt::PowerPolicy> candidates_;
};

} // namespace lte::core

#endif // LTE_CORE_CHIP_FLEET_HPP

/**
 * @file
 * High-level facade for the paper's power-management study
 * (Secs. V-VI): calibrates the simulator and the workload estimator,
 * runs any strategy over the evaluation input model, and returns
 * power series and aggregates.  This is the API the figure/table
 * benches and the examples drive.
 */
#ifndef LTE_CORE_UPLINK_STUDY_HPP
#define LTE_CORE_UPLINK_STUDY_HPP

#include <memory>
#include <optional>
#include <vector>

#include "mgmt/core_allocator.hpp"
#include "mgmt/estimator.hpp"
#include "mgmt/power_policy.hpp"
#include "mgmt/strategy.hpp"
#include "obs/metrics.hpp"
#include "power/power_model.hpp"
#include "sim/calibrate.hpp"
#include "sim/machine.hpp"
#include "sim/sim_config.hpp"
#include "workload/paper_model.hpp"

namespace lte::core {

/** Full study configuration; defaults follow the paper. */
struct StudyConfig
{
    sim::SimConfig sim;
    power::PowerModelConfig power;
    workload::PaperModelConfig model;
    sim::CalibrationSweep sweep;
    std::size_t n_antennas = 4;
    /** Subframes per strategy run (paper: 68 000 = 340 s). */
    std::uint64_t subframes = 68000;
    /**
     * Responsiveness budget in subframe periods: a user whose
     * dispatch-to-completion latency exceeds this misses its deadline
     * (the paper keeps two to three subframes in flight, so three
     * periods is the default budget).
     */
    double deadline_periods = 3.0;

    /**
     * Scale the run to @p n subframes, shrinking the workload ramp
     * proportionally so the triangular load shape is preserved.
     */
    void scale_to(std::uint64_t n);
};

/**
 * The calibration a prepare() pass produces: the cycles/op scale and
 * the fitted k_{L,M} slope table.  A plain value — copy it between
 * studies with the same machine geometry via adopt_calibration() so
 * bench variants do not re-run the identical calibration sweep.
 */
struct Calibration
{
    double cycles_per_op = 0.0;
    mgmt::CalibrationTable table;
};

/** Everything produced by one strategy run. */
struct StrategyOutcome
{
    mgmt::Strategy strategy = mgmt::Strategy::kNoNap;
    /** The policy that produced this run (label == strategy for the
     *  five paper presets). */
    mgmt::PowerPolicy policy = mgmt::PowerPolicy::nonap();
    sim::SimResult sim;
    /** Thermal-corrected power series (one sample per subframe). */
    std::vector<power::PowerSample> series;
    /** Eq. 6-7 powered-core plan (PowerGating runs only). */
    std::vector<std::uint32_t> powered;
    double avg_power_w = 0.0;
    double avg_dynamic_w = 0.0; ///< avg_power - base power
    /** Fraction of users finishing past config.deadline_periods. */
    double deadline_miss_rate = 0.0;
    /** Eq. 3-5 decision tallies from the run's estimator (if any). */
    mgmt::EstimatorStats estimator_stats;
    /** Eq. 6-7 decision tallies (PowerGating runs only). */
    mgmt::GatingStats gating_stats;
};

/** Aggregates of a sharded multi-cell strategy run (DESIGN.md 3f). */
struct MultiCellStrategyOutcome
{
    mgmt::Strategy strategy = mgmt::Strategy::kNoNap;
    mgmt::PowerPolicy policy = mgmt::PowerPolicy::nonap();
    /** Per-cell outcomes; lane c serves physical cell id c+1. */
    std::vector<StrategyOutcome> cells;
    double total_power_w = 0.0;   ///< summed per-cell averages
    double total_dynamic_w = 0.0; ///< total minus the full base power
    /** Worst per-cell deadline miss rate (the board is only as
     *  compliant as its worst sector). */
    double worst_deadline_miss_rate = 0.0;
    /** Eq. 6 chip partition from the cells' peak core demands:
     *  powered cores per cell, multiples of domain_size. */
    std::vector<std::uint32_t> domain_partition;
};

class UplinkStudy
{
  public:
    explicit UplinkStudy(const StudyConfig &config);

    /**
     * Calibrate cycles_per_op (machine saturation at peak load) and
     * fit the k_{L,M} estimator table from steady-state sweeps
     * (Sec. VI-A).  Must run before run_strategy().
     */
    void prepare();

    bool prepared() const { return estimator_.has_value(); }
    const mgmt::CalibrationTable &table() const;
    const StudyConfig &config() const { return config_; }
    /** The calibrated cycles/op scale (after prepare()). */
    double cycles_per_op() const { return config_.sim.cycles_per_op; }

    /** The calibration prepare() produced (cycles/op + slope table). */
    Calibration calibration() const;

    /**
     * Adopt a calibration produced by another study with the same
     * machine geometry (n_workers, delta, clock) instead of running
     * prepare().  Power policy, DVFS and gating parameters do not
     * affect calibration — it always measures the NONAP machine — so
     * bench variants share one pass.
     */
    void adopt_calibration(const Calibration &calibration);

    /** Run one strategy over a fresh instance of the paper's input
     *  model. */
    StrategyOutcome run_strategy(mgmt::Strategy strategy);

    /** Run one composable power policy over a fresh instance of the
     *  paper's input model (the five paper strategies are the
     *  PowerPolicy presets; see mgmt/power_policy.hpp). */
    StrategyOutcome run_policy(const mgmt::PowerPolicy &policy);

    /** run_strategy_on for an arbitrary policy. */
    StrategyOutcome run_policy_on(const mgmt::PowerPolicy &policy,
                                  workload::ParameterModel &model,
                                  std::uint64_t subframes);

    /**
     * Run one strategy over an arbitrary input model (consumed from
     * its current state) for @p subframes dispatches — used for
     * scenarios beyond the paper's evaluation model, e.g. the diurnal
     * 25%-load study.
     */
    StrategyOutcome run_strategy_on(mgmt::Strategy strategy,
                                    workload::ParameterModel &model,
                                    std::uint64_t subframes);

    /**
     * Run one strategy with arrivals @p overload_factor times faster
     * than the calibrated DELTA (factor 1 = nominal load, 2 = twice
     * the machine's saturation rate).  Quantifies how each
     * power-management strategy behaves past saturation: compare
     * deadline_miss_rate and sim.max_ready_backlog across strategies.
     */
    StrategyOutcome run_strategy_overloaded(mgmt::Strategy strategy,
                                            double overload_factor);

    /**
     * Run one strategy on an @p n_cells -way sharded board: every
     * cell receives an equal slice of the workers, power domains and
     * base power, runs its own paper input model on a decorrelated
     * per-cell stream (seed = cell_stream_seed(model.seed, cell_id)),
     * and is calibrated at its sliced operating point, mirroring the
     * paper's per-sector dimensioning.  The chip's power domains are
     * then re-partitioned across the cells from their peak demands
     * (partition_domains) to show the Eq. 6 apportionment.
     */
    MultiCellStrategyOutcome
    run_strategy_multicell(mgmt::Strategy strategy, std::size_t n_cells);

    /** run_strategy_multicell for an arbitrary policy. */
    MultiCellStrategyOutcome
    run_policy_multicell(const mgmt::PowerPolicy &policy,
                         std::size_t n_cells);

    /**
     * Eq. 6-7: powered-core plan for a simulated run, padded with its
     * last value to cover trailing drain intervals.  When @p stats is
     * non-null the planner's decision tallies are copied out.
     */
    std::vector<std::uint32_t>
    gating_plan(const sim::SimResult &result,
                mgmt::GatingStats *stats = nullptr) const;

    /**
     * Study-level metrics: per-strategy counters and gauges
     * accumulated across every run_strategy*() call (subframes, tasks,
     * estimator clamps, gating switches, average power).
     */
    const obs::MetricsRegistry &metrics() const { return *metrics_; }

  private:
    /** The preset for @p strategy with the config's orthogonal DVFS
     *  knobs (sim.policy.dvfs*) carried over. */
    mgmt::PowerPolicy policy_for(mgmt::Strategy strategy) const;

    void record_run_metrics(const StrategyOutcome &outcome);

    StudyConfig config_;
    std::optional<mgmt::WorkloadEstimator> estimator_;
    /** Behind a pointer: the registry is not movable (internal mutex)
     *  but UplinkStudy must stay movable. */
    std::unique_ptr<obs::MetricsRegistry> metrics_;
};

} // namespace lte::core

#endif // LTE_CORE_UPLINK_STUDY_HPP

/**
 * @file
 * Exporters for simulated study runs: a per-subframe activity /
 * deadline CSV and a chrome://tracing counter-track JSON, both built
 * from a StrategyOutcome.  The live-engine exporters (span timelines
 * from the worker pool's tracer) live in obs/export.hpp; these cover
 * the discrete-event side of the study where there are no threads,
 * only per-interval aggregates.
 */
#ifndef LTE_CORE_STUDY_EXPORT_HPP
#define LTE_CORE_STUDY_EXPORT_HPP

#include <iosfwd>

#include "core/uplink_study.hpp"

namespace lte::core {

/**
 * Per-subframe series of one strategy run as CSV:
 *
 *   subframe,t0_ms,dur_ms,activity,est_activity,active_cores,
 *   powered_cores,watts
 *
 * Domain-machine runs append per-interval domain-state columns:
 * active_domains,gated_domains,freq_scale,transition_energy_uj.
 *
 * `active_cores` is the Eq. 5 watermark (blank when the strategy runs
 * without an estimator), `powered_cores` the Eq. 7 plan (blank unless
 * power gating), `watts` the thermal-corrected power sample.
 */
void write_study_csv(std::ostream &os, const StrategyOutcome &outcome,
                     std::uint32_t n_workers);

/**
 * The same series as chrome://tracing counter tracks ("ph":"C"):
 * busy-cores, watermark, estimated activity and Watts over time, one
 * process per strategy so several runs can be merged into one trace.
 */
void write_study_chrome_trace(std::ostream &os,
                              const StrategyOutcome &outcome,
                              std::uint32_t n_workers);

} // namespace lte::core

#endif // LTE_CORE_STUDY_EXPORT_HPP

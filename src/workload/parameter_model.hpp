/**
 * @file
 * Input-parameter-model interface (paper Sec. IV-B.2): a model is
 * asked once per subframe for the set of scheduled users and their
 * parameters.  This mirrors the paper's init_parameter_model() /
 * uplink_parameters() function pair in object form.
 */
#ifndef LTE_WORKLOAD_PARAMETER_MODEL_HPP
#define LTE_WORKLOAD_PARAMETER_MODEL_HPP

#include "phy/params.hpp"

namespace lte::workload {

/** Produces the workload of successive subframes. */
class ParameterModel
{
  public:
    virtual ~ParameterModel() = default;

    /** The parameters of the next subframe (advances internal state). */
    virtual phy::SubframeParams next_subframe() = 0;

    /** Restart the model from its initial state. */
    virtual void reset() = 0;
};

} // namespace lte::workload

#endif // LTE_WORKLOAD_PARAMETER_MODEL_HPP

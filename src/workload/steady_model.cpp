#include "workload/steady_model.hpp"

namespace lte::workload {

SteadyModel::SteadyModel(const phy::UserParams &user)
    : user_(user)
{
    user_.validate();
}

phy::SubframeParams
SteadyModel::next_subframe()
{
    phy::SubframeParams sf;
    sf.subframe_index = next_index_++;
    sf.users.push_back(user_);
    return sf;
}

void
SteadyModel::reset()
{
    next_index_ = 0;
}

} // namespace lte::workload

/**
 * @file
 * Diurnal load model — the "more realistic use case" of the paper's
 * conclusion: base stations average about 25% load with long
 * low-activity periods (nights).  Load follows a raised sinusoid over
 * a configurable period; the instantaneous load scales both the PRB
 * budget offered to the scheduler and the layer/modulation
 * probability.  This is an extension beyond the paper's evaluation,
 * used to quantify the larger savings the conclusion predicts.
 */
#ifndef LTE_WORKLOAD_DIURNAL_MODEL_HPP
#define LTE_WORKLOAD_DIURNAL_MODEL_HPP

#include "common/rng.hpp"
#include "workload/parameter_model.hpp"

namespace lte::workload {

struct DiurnalModelConfig
{
    /** Long-run average load in (0, 1]; the paper's "typical" is 0.25. */
    double average_load = 0.25;
    /** Peak-to-average swing; load(t) in [avg*(1-s), avg*(1+s)]. */
    double swing = 0.8;
    /** Subframes per full day cycle. */
    std::uint64_t period_subframes = 68000;
    std::uint32_t max_prb = 200;
    std::uint32_t max_users = 10;
    std::uint64_t seed = 424242;

    void validate() const;
};

class DiurnalModel : public ParameterModel
{
  public:
    explicit DiurnalModel(const DiurnalModelConfig &cfg = {});

    phy::SubframeParams next_subframe() override;
    void reset() override;

    /** Instantaneous target load for a subframe index. */
    double load_at(std::uint64_t subframe) const;

    const DiurnalModelConfig &config() const { return cfg_; }

  private:
    DiurnalModelConfig cfg_;
    Rng rng_;
    std::uint64_t next_index_ = 0;
};

} // namespace lte::workload

#endif // LTE_WORKLOAD_DIURNAL_MODEL_HPP

/**
 * @file
 * The paper's evaluation input parameter model (Sec. V-A, Figs. 6 and
 * 10): per subframe, a random number of users with random PRB
 * allocations; layer count and modulation probabilities follow a
 * triangular ramp from 0.6% to 100% and back, stepped every 200
 * subframes, reaching the peak after 34 000 subframes.
 */
#ifndef LTE_WORKLOAD_PAPER_MODEL_HPP
#define LTE_WORKLOAD_PAPER_MODEL_HPP

#include <cstdint>

#include "common/rng.hpp"
#include "workload/parameter_model.hpp"

namespace lte::workload {

/** Tunables of the paper model; defaults match the paper exactly. */
struct PaperModelConfig
{
    std::uint32_t max_prb = 200;   ///< MAX_PRB (Fig. 6)
    std::uint32_t max_users = 10;  ///< MAX_USERS (Fig. 6)
    /** Subframes from minimum to maximum workload (half the period). */
    std::uint64_t ramp_subframes = 34000;
    /** The probability is re-evaluated every this many subframes. */
    std::uint64_t prob_update_interval = 200;
    double prob_min = 0.006;       ///< 0.6 %
    double prob_max = 1.0;
    std::uint64_t seed = 2012;

    void validate() const;
};

class PaperModel : public ParameterModel
{
  public:
    explicit PaperModel(const PaperModelConfig &cfg = {});

    phy::SubframeParams next_subframe() override;
    void reset() override;

    /**
     * The staircase probability used for the layer/modulation draws of
     * subframe @p subframe (Fig. 10's current_probability()).
     */
    double current_probability(std::uint64_t subframe) const;

    /**
     * Relative probability density of a user PRB allocation of size
     * @p prb under the Fig. 6 draw (uniform draw divided by 8/4/2/1
     * with probabilities 0.4/0.2/0.3/0.1).  Used to weight estimator
     * calibration toward the traffic mix the model generates.
     */
    static double prb_density_weight(std::uint32_t prb,
                                     std::uint32_t max_prb = 200);

    const PaperModelConfig &config() const { return cfg_; }

  private:
    PaperModelConfig cfg_;
    Rng rng_;
    std::uint64_t next_index_ = 0;
};

} // namespace lte::workload

#endif // LTE_WORKLOAD_PAPER_MODEL_HPP

#include "workload/diurnal_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace lte::workload {

void
DiurnalModelConfig::validate() const
{
    LTE_CHECK(average_load > 0.0 && average_load <= 1.0,
              "average load must be in (0, 1]");
    LTE_CHECK(swing >= 0.0 && swing <= 1.0, "swing must be in [0, 1]");
    LTE_CHECK(period_subframes >= 2, "period must be >= 2 subframes");
    LTE_CHECK(max_prb >= 2 && max_prb <= kMaxPrbPerSubframe,
              "max_prb must be 2..200");
    LTE_CHECK(max_users >= 1 && max_users <= kMaxUsersPerSubframe,
              "max_users must be 1..10");
}

DiurnalModel::DiurnalModel(const DiurnalModelConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    cfg_.validate();
}

void
DiurnalModel::reset()
{
    rng_ = Rng(cfg_.seed);
    next_index_ = 0;
}

double
DiurnalModel::load_at(std::uint64_t subframe) const
{
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(subframe %
                                             cfg_.period_subframes) /
                         static_cast<double>(cfg_.period_subframes);
    // Trough at t = period/4 ("night"), peak at 3*period/4.
    const double load =
        cfg_.average_load * (1.0 - cfg_.swing * std::sin(phase));
    return std::clamp(load, 0.005, 1.0);
}

phy::SubframeParams
DiurnalModel::next_subframe()
{
    const std::uint64_t index = next_index_++;
    const double load = load_at(index);

    phy::SubframeParams sf;
    sf.subframe_index = index;

    // Offered PRB budget and richness both track the load.
    const auto budget = static_cast<std::uint32_t>(
        std::lround(load * static_cast<double>(cfg_.max_prb)));
    std::uint32_t prb_left = std::max<std::uint32_t>(budget, 2);

    while (sf.users.size() < cfg_.max_users && prb_left >= 2) {
        double draw =
            static_cast<double>(cfg_.max_prb) * rng_.next_double();
        const double distribution = rng_.next_double();
        if (distribution < 0.4)
            draw /= 8.0;
        else if (distribution < 0.6)
            draw /= 4.0;
        else if (distribution < 0.9)
            draw /= 2.0;

        auto user_prb = static_cast<std::uint32_t>(std::floor(draw));
        user_prb = std::clamp<std::uint32_t>(user_prb, 2, prb_left);
        prb_left -= user_prb;

        phy::UserParams user;
        user.id = static_cast<std::uint32_t>(sf.users.size());
        user.prb = user_prb;
        user.layers = 1;
        for (int extra = 0; extra < 3; ++extra) {
            if (load > rng_.next_double())
                ++user.layers;
        }
        user.mod = Modulation::kQpsk;
        if (load > rng_.next_double()) {
            user.mod = Modulation::k16Qam;
            if (load > rng_.next_double())
                user.mod = Modulation::k64Qam;
        }
        sf.users.push_back(user);
    }
    return sf;
}

} // namespace lte::workload

/**
 * @file
 * Steady-state single-user model (paper Sec. VI-A): the same user
 * parameter configuration every subframe, used to measure the
 * correlation between input parameters and activity (Fig. 11) because
 * a single subframe is too short to measure in isolation.
 */
#ifndef LTE_WORKLOAD_STEADY_MODEL_HPP
#define LTE_WORKLOAD_STEADY_MODEL_HPP

#include "workload/parameter_model.hpp"

namespace lte::workload {

class SteadyModel : public ParameterModel
{
  public:
    /** Every subframe carries exactly this one user. */
    explicit SteadyModel(const phy::UserParams &user);

    phy::SubframeParams next_subframe() override;
    void reset() override;

  private:
    phy::UserParams user_;
    std::uint64_t next_index_ = 0;
};

} // namespace lte::workload

#endif // LTE_WORKLOAD_STEADY_MODEL_HPP

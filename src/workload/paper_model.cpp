#include "workload/paper_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lte::workload {

void
PaperModelConfig::validate() const
{
    LTE_CHECK(max_prb >= 2 && max_prb <= kMaxPrbPerSubframe,
              "max_prb must be 2..200");
    LTE_CHECK(max_users >= 1 && max_users <= kMaxUsersPerSubframe,
              "max_users must be 1..10");
    LTE_CHECK(ramp_subframes >= 1, "ramp must span at least one subframe");
    LTE_CHECK(prob_update_interval >= 1, "update interval must be >= 1");
    LTE_CHECK(prob_min >= 0.0 && prob_min <= prob_max && prob_max <= 1.0,
              "probability bounds must satisfy 0 <= min <= max <= 1");
}

PaperModel::PaperModel(const PaperModelConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    cfg_.validate();
}

void
PaperModel::reset()
{
    rng_ = Rng(cfg_.seed);
    next_index_ = 0;
}

double
PaperModel::current_probability(std::uint64_t subframe) const
{
    // Staircase position: the probability changes every
    // prob_update_interval subframes and traverses min -> max over
    // ramp_subframes, then max -> min over the next ramp_subframes,
    // periodically.
    const std::uint64_t period = 2 * cfg_.ramp_subframes;
    const std::uint64_t phase = subframe % period;
    const std::uint64_t stepped =
        phase / cfg_.prob_update_interval * cfg_.prob_update_interval;
    double frac;
    if (stepped < cfg_.ramp_subframes) {
        frac = static_cast<double>(stepped) /
               static_cast<double>(cfg_.ramp_subframes);
    } else {
        frac = static_cast<double>(period - stepped) /
               static_cast<double>(cfg_.ramp_subframes);
    }
    return cfg_.prob_min + (cfg_.prob_max - cfg_.prob_min) * frac;
}

double
PaperModel::prb_density_weight(std::uint32_t prb, std::uint32_t max_prb)
{
    LTE_CHECK(max_prb >= 8, "max_prb too small for the divisor mix");
    // A draw divided by d is uniform on (0, max_prb / d], contributing
    // density d / max_prb there.  Mixture over the Fig. 6 divisors.
    struct Branch { double probability; double divisor; };
    static constexpr Branch branches[] = {
        {0.4, 8.0}, {0.2, 4.0}, {0.3, 2.0}, {0.1, 1.0}};
    double density = 0.0;
    for (const auto &b : branches) {
        if (static_cast<double>(prb) <=
            static_cast<double>(max_prb) / b.divisor) {
            density += b.probability * b.divisor /
                       static_cast<double>(max_prb);
        }
    }
    return density;
}

phy::SubframeParams
PaperModel::next_subframe()
{
    const std::uint64_t index = next_index_++;
    const double prob = current_probability(index);

    phy::SubframeParams sf;
    sf.subframe_index = index;

    // Fig. 6: users until MAX_USERS or the PRB budget is exhausted.
    std::uint32_t prb_left = cfg_.max_prb;
    while (sf.users.size() < cfg_.max_users && prb_left >= 2) {
        double draw = static_cast<double>(cfg_.max_prb) *
                      rng_.next_double();
        // "Create a larger spread in number of PRBs".
        const double distribution = rng_.next_double();
        if (distribution < 0.4)
            draw /= 8.0;
        else if (distribution < 0.6)
            draw /= 4.0;
        else if (distribution < 0.9)
            draw /= 2.0;

        auto user_prb =
            static_cast<std::uint32_t>(std::floor(draw));
        user_prb = std::clamp<std::uint32_t>(user_prb, 2, prb_left);
        prb_left -= user_prb;

        // Fig. 10: layers and modulation from the ramp probability.
        phy::UserParams user;
        user.id = static_cast<std::uint32_t>(sf.users.size());
        user.prb = user_prb;
        user.layers = 1;
        for (int extra = 0; extra < 3; ++extra) {
            if (prob > rng_.next_double())
                ++user.layers;
        }
        user.mod = Modulation::kQpsk;
        if (prob > rng_.next_double()) {
            user.mod = Modulation::k16Qam;
            if (prob > rng_.next_double())
                user.mod = Modulation::k64Qam;
        }
        sf.users.push_back(user);
    }
    return sf;
}

} // namespace lte::workload

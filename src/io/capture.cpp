#include "io/capture.hpp"

#include <cstring>
#include <stdexcept>

#include "common/check.hpp"
#include "common/types.hpp"

namespace lte::io {

namespace {

constexpr char kMagic[8] = {'L', 'T', 'E', 'I', 'Q', 'v', '1', '\0'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
put(std::ofstream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
bool
get(std::ifstream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return in.good();
}

[[noreturn]] void
fail(const std::string &path, const char *what)
{
    throw std::runtime_error("capture file '" + path + "': " + what);
}

} // namespace

CaptureWriter::CaptureWriter(const std::string &path,
                             std::size_t n_antennas)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path),
      n_antennas_(n_antennas)
{
    LTE_CHECK(n_antennas >= 1 && n_antennas <= kMaxRxAntennas,
              "capture antenna count out of range");
    if (!out_)
        fail(path_, "cannot open for writing");
    out_.write(kMagic, sizeof(kMagic));
    put(out_, kVersion);
    put(out_, static_cast<std::uint32_t>(n_antennas_));
}

void
CaptureWriter::write(const IqFrame &frame)
{
    LTE_CHECK(frame.signals.size() == frame.params.users.size(),
              "frame signal view out of sync with its params");
    put(out_, frame.params.subframe_index);
    put(out_, frame.params.cell_id);
    put(out_, static_cast<std::uint32_t>(frame.params.users.size()));
    for (const auto &user : frame.params.users) {
        put(out_, user.id);
        put(out_, user.prb);
        put(out_, user.layers);
        put(out_, static_cast<std::uint8_t>(user.mod));
    }
    for (const phy::UserSignal *signal : frame.signals) {
        LTE_CHECK(signal != nullptr && signal->antennas.size() >= n_antennas_,
                  "frame signal missing antennas for capture");
        for (std::size_t a = 0; a < n_antennas_; ++a) {
            for (const auto &slot : signal->antennas[a].slots) {
                for (const CVec &symbol : slot) {
                    put(out_,
                        static_cast<std::uint32_t>(symbol.size()));
                    out_.write(
                        reinterpret_cast<const char *>(symbol.data()),
                        static_cast<std::streamsize>(symbol.size() *
                                                     sizeof(cf32)));
                }
            }
        }
    }
    if (!out_)
        fail(path_, "write failed");
    ++frames_written_;
}

CaptureReader::CaptureReader(const std::string &path)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_)
        fail(path_, "cannot open for reading");
    char magic[sizeof(kMagic)] = {};
    in_.read(magic, sizeof(magic));
    if (!in_ || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fail(path_, "bad magic (not an LTEIQ capture)");
    std::uint32_t version = 0;
    std::uint32_t n_antennas = 0;
    if (!get(in_, version) || !get(in_, n_antennas))
        fail(path_, "truncated header");
    if (version != kVersion)
        fail(path_, "unsupported capture version");
    if (n_antennas < 1 || n_antennas > kMaxRxAntennas)
        fail(path_, "antenna count out of range");
    n_antennas_ = n_antennas;
    first_frame_ = in_.tellg();
}

bool
CaptureReader::read_into(IqFrame &frame)
{
    std::uint64_t subframe_index = 0;
    if (!get(in_, subframe_index))
        return false; // clean EOF boundary
    std::uint32_t cell_id = 0;
    std::uint32_t n_users = 0;
    if (!get(in_, cell_id) || !get(in_, n_users))
        fail(path_, "truncated frame header");
    if (n_users > kMaxUsersPerSubframe)
        fail(path_, "frame user count out of range");

    frame.params.subframe_index = subframe_index;
    frame.params.cell_id = cell_id;
    frame.params.users.resize(n_users);
    for (auto &user : frame.params.users) {
        std::uint8_t mod = 0;
        if (!get(in_, user.id) || !get(in_, user.prb) ||
            !get(in_, user.layers) || !get(in_, mod))
            fail(path_, "truncated user params");
        if (mod > static_cast<std::uint8_t>(Modulation::k64Qam))
            fail(path_, "modulation out of range");
        user.mod = static_cast<Modulation>(mod);
    }
    frame.params.validate();

    // Self-backed storage: the signal pointers reference this frame,
    // not an external pool.  resize() reuses capacity, so a steady
    // stream of same-shaped frames reads allocation-free.
    frame.storage.resize(n_users);
    frame.signals.resize(n_users);
    for (std::size_t u = 0; u < n_users; ++u) {
        phy::UserSignal &signal = frame.storage[u];
        signal.antennas.resize(n_antennas_);
        for (auto &antenna : signal.antennas) {
            for (auto &slot : antenna.slots) {
                for (CVec &symbol : slot) {
                    std::uint32_t n_sc = 0;
                    if (!get(in_, n_sc))
                        fail(path_, "truncated symbol header");
                    if (n_sc > kMaxPrbPerSubframe * kScPerPrb)
                        fail(path_, "symbol width out of range");
                    symbol.resize(n_sc);
                    in_.read(reinterpret_cast<char *>(symbol.data()),
                             static_cast<std::streamsize>(
                                 n_sc * sizeof(cf32)));
                    if (!in_)
                        fail(path_, "truncated samples");
                }
            }
        }
        signal.validate(frame.params.users[u], n_antennas_);
        frame.signals[u] = &signal;
    }
    return true;
}

bool
CaptureReader::skip_frame()
{
    std::uint64_t subframe_index = 0;
    if (!get(in_, subframe_index))
        return false;
    std::uint32_t cell_id = 0;
    std::uint32_t n_users = 0;
    if (!get(in_, cell_id) || !get(in_, n_users))
        fail(path_, "truncated frame header");
    if (n_users > kMaxUsersPerSubframe)
        fail(path_, "frame user count out of range");
    in_.seekg(static_cast<std::streamoff>(n_users) *
                  (3 * sizeof(std::uint32_t) + sizeof(std::uint8_t)),
              std::ios::cur);
    const std::size_t symbols =
        n_users * n_antennas_ * kSlotsPerSubframe * kSymbolsPerSlot;
    for (std::size_t i = 0; i < symbols; ++i) {
        std::uint32_t n_sc = 0;
        if (!get(in_, n_sc))
            fail(path_, "truncated symbol header");
        in_.seekg(static_cast<std::streamoff>(n_sc) * sizeof(cf32),
                  std::ios::cur);
    }
    if (!in_)
        fail(path_, "truncated samples");
    return true;
}

void
CaptureReader::rewind()
{
    in_.clear();
    in_.seekg(first_frame_);
}

ReplaySource::ReplaySource(const std::string &path, bool loop)
    : reader_(path), loop_(loop)
{
}

bool
ReplaySource::produce(IqFrame &frame)
{
    if (reader_.read_into(frame))
        return true;
    if (!loop_)
        return false;
    reader_.rewind();
    if (!reader_.read_into(frame))
        fail("(replay)", "capture holds no frames");
    return true;
}

void
ReplaySource::skip()
{
    if (reader_.skip_frame())
        return;
    if (loop_) {
        reader_.rewind();
        (void)reader_.skip_frame();
    }
}

} // namespace lte::io

#include "io/sample_plane.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "io/capture.hpp"

namespace lte::io {

namespace {

std::uint64_t
steady_now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

SampleTransport::SampleTransport(std::size_t n_frames)
    : ready_(ceil_pow2(n_frames < 2 ? 2 : n_frames)),
      free_(ceil_pow2(n_frames < 2 ? 2 : n_frames))
{
    LTE_CHECK(n_frames >= 2, "sample transport needs at least 2 frames");
    frames_.reserve(n_frames);
    for (std::size_t i = 0; i < n_frames; ++i) {
        frames_.push_back(std::make_unique<IqFrame>());
        // Pre-threading, so pushing from this (future consumer-role)
        // thread is fine; the ring holds every frame by construction.
        const bool ok = free_.try_push(frames_.back().get());
        LTE_ASSERT(ok, "free ring must hold the whole pool");
    }
}

IqFrame *
SampleTransport::try_acquire_free()
{
    IqFrame *frame = nullptr;
    return free_.try_pop(frame) ? frame : nullptr;
}

void
SampleTransport::publish_ready(IqFrame *frame)
{
    const bool ok = ready_.try_push(frame);
    // Cannot fail: at most n_frames are in circulation and the ring
    // capacity is at least n_frames.
    LTE_ASSERT(ok, "ready ring overflow");
}

IqFrame *
SampleTransport::try_pop_ready()
{
    IqFrame *frame = nullptr;
    return ready_.try_pop(frame) ? frame : nullptr;
}

void
SampleTransport::release(IqFrame *frame)
{
    const bool ok = free_.try_push(frame);
    LTE_ASSERT(ok, "free ring overflow");
}

SampleFeed::SampleFeed(SampleTransport &transport, SampleSource &source,
                       FeedConfig config)
    : transport_(transport), source_(source), config_(std::move(config))
{
    if (!config_.now_ns)
        config_.now_ns = steady_now_ns;
}

SampleFeed::~SampleFeed() { stop(); }

void
SampleFeed::start(std::uint64_t n_subframes)
{
    LTE_CHECK(!thread_.joinable(), "feed already started");
    stop_.store(false, std::memory_order_relaxed);
    finished_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this, n_subframes] { run(n_subframes); });
}

void
SampleFeed::stop()
{
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
}

void
SampleFeed::run(std::uint64_t n_subframes)
{
    Rng jitter_rng(config_.jitter_seed);
    const double delta_ns = config_.delta_ms * 1e6;
    const double jitter_amp_ns = config_.jitter_ms * 1e6;
    const std::uint64_t t0 = config_.now_ns();

    for (std::uint64_t k = 0; k < n_subframes; ++k) {
        if (stop_.load(std::memory_order_acquire))
            return;

        std::uint64_t scheduled = t0;
        if (delta_ns > 0.0) {
            double offset = delta_ns * static_cast<double>(k);
            if (jitter_amp_ns > 0.0)
                offset += jitter_rng.next_double() * jitter_amp_ns;
            scheduled = t0 + static_cast<std::uint64_t>(offset);
            // Sleep toward the tick, then yield-spin the last stretch
            // (OS sleep granularity is far coarser than a TTI slice).
            while (!stop_.load(std::memory_order_acquire)) {
                const std::uint64_t now = config_.now_ns();
                if (now >= scheduled)
                    break;
                const std::uint64_t wait = scheduled - now;
                if (wait > 200'000)
                    std::this_thread::sleep_for(
                        std::chrono::nanoseconds(wait - 100'000));
                else
                    std::this_thread::yield();
            }
            if (stop_.load(std::memory_order_acquire))
                return;
        }

        IqFrame *frame = transport_.try_acquire_free();
        if (frame == nullptr) {
            if (config_.lossless) {
                // Backpressure: the receiver is behind and nothing may
                // be dropped, so the whole feed stalls until it
                // recycles a frame.
                while (frame == nullptr &&
                       !stop_.load(std::memory_order_acquire)) {
                    std::this_thread::yield();
                    frame = transport_.try_acquire_free();
                }
                if (frame == nullptr)
                    return;
            } else {
                // The fronthaul does not wait: this tick's samples are
                // gone.  The source still advances so delivered frames
                // keep their place in the stream.
                stats_.lost.fetch_add(1, std::memory_order_relaxed);
                source_.skip();
                continue;
            }
        }

        if (!source_.produce(*frame)) {
            // Stream exhausted (finite replay): the frame in hand is
            // parked — release() belongs to the consumer thread and
            // nothing will be produced into it anyway.
            break;
        }

        frame->seq = k;
        frame->t_arrival_ns = config_.now_ns();
        if (delta_ns > 0.0 &&
            frame->t_arrival_ns >
                scheduled + static_cast<std::uint64_t>(delta_ns))
            stats_.late.fetch_add(1, std::memory_order_relaxed);

        if (config_.recorder != nullptr)
            config_.recorder->write(*frame);

        transport_.publish_ready(frame);
        stats_.produced.fetch_add(1, std::memory_order_relaxed);
    }

    finished_.store(true, std::memory_order_release);
}

MultiSampleFeed::MultiSampleFeed(std::vector<FeedLane> lanes,
                                 FeedConfig config)
    : lanes_(std::move(lanes)), config_(std::move(config)),
      stats_(std::make_unique<FeedStats[]>(lanes_.size()))
{
    LTE_CHECK(!lanes_.empty(), "multi-feed needs at least one lane");
    for (const FeedLane &lane : lanes_) {
        LTE_CHECK(lane.transport != nullptr && lane.source != nullptr,
                  "every lane needs a transport and a source");
    }
    if (!config_.now_ns)
        config_.now_ns = steady_now_ns;
}

MultiSampleFeed::~MultiSampleFeed() { stop(); }

const FeedStats &
MultiSampleFeed::stats(std::size_t lane) const
{
    LTE_CHECK(lane < lanes_.size(), "lane index out of range");
    return stats_[lane];
}

void
MultiSampleFeed::start(std::uint64_t n_subframes)
{
    LTE_CHECK(!thread_.joinable(), "feed already started");
    stop_.store(false, std::memory_order_relaxed);
    finished_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this, n_subframes] { run(n_subframes); });
}

void
MultiSampleFeed::stop()
{
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
}

void
MultiSampleFeed::run(std::uint64_t n_subframes)
{
    const std::size_t n_lanes = lanes_.size();
    std::vector<Rng> jitter_rngs;
    jitter_rngs.reserve(n_lanes);
    for (const FeedLane &lane : lanes_)
        jitter_rngs.emplace_back(lane.jitter_seed);
    std::vector<bool> exhausted(n_lanes, false);
    /** This tick's (delivery time, lane) visit plan. */
    std::vector<std::pair<std::uint64_t, std::size_t>> order(n_lanes);

    const double delta_ns = config_.delta_ms * 1e6;
    const double jitter_amp_ns = config_.jitter_ms * 1e6;
    const std::uint64_t t0 = config_.now_ns();

    for (std::uint64_t k = 0; k < n_subframes; ++k) {
        if (stop_.load(std::memory_order_acquire))
            return;

        // Draw every lane's delivery time for this tick, then visit
        // lanes in delivery order so one pacing loop serves them all.
        // Each lane consumes exactly one jitter draw per tick (the
        // same stream a dedicated SampleFeed would have drawn).
        for (std::size_t i = 0; i < n_lanes; ++i) {
            double offset = delta_ns * static_cast<double>(k);
            if (delta_ns > 0.0 && jitter_amp_ns > 0.0)
                offset +=
                    jitter_rngs[i].next_double() * jitter_amp_ns;
            order[i] = {t0 + static_cast<std::uint64_t>(offset), i};
        }
        if (delta_ns > 0.0)
            std::sort(order.begin(), order.end());

        bool any_alive = false;
        for (const auto &[scheduled, i] : order) {
            if (exhausted[i])
                continue;
            any_alive = true;
            if (delta_ns > 0.0) {
                // Sleep toward the lane's tick, then yield-spin the
                // last stretch — once, on the one producer thread,
                // instead of n_cells threads spinning concurrently.
                while (!stop_.load(std::memory_order_acquire)) {
                    const std::uint64_t now = config_.now_ns();
                    if (now >= scheduled)
                        break;
                    const std::uint64_t wait = scheduled - now;
                    if (wait > 200'000)
                        std::this_thread::sleep_for(
                            std::chrono::nanoseconds(wait - 100'000));
                    else
                        std::this_thread::yield();
                }
            }
            if (stop_.load(std::memory_order_acquire))
                return;

            FeedLane &lane = lanes_[i];
            IqFrame *frame = lane.transport->try_acquire_free();
            if (frame == nullptr) {
                if (config_.lossless) {
                    // Backpressure: the shared grid may not advance
                    // past a tick a lane still owes, so the whole
                    // producer stalls with it.
                    while (frame == nullptr &&
                           !stop_.load(std::memory_order_acquire)) {
                        std::this_thread::yield();
                        frame = lane.transport->try_acquire_free();
                    }
                    if (frame == nullptr)
                        return;
                } else {
                    stats_[i].lost.fetch_add(
                        1, std::memory_order_relaxed);
                    lane.source->skip();
                    continue;
                }
            }

            if (!lane.source->produce(*frame)) {
                // Stream exhausted (finite replay): park the frame and
                // retire the lane; the grid keeps serving the others.
                exhausted[i] = true;
                continue;
            }

            frame->seq = k;
            frame->t_arrival_ns = config_.now_ns();
            if (delta_ns > 0.0 &&
                frame->t_arrival_ns >
                    scheduled + static_cast<std::uint64_t>(delta_ns))
                stats_[i].late.fetch_add(1, std::memory_order_relaxed);

            if (lane.recorder != nullptr)
                lane.recorder->write(*frame);

            lane.transport->publish_ready(frame);
            stats_[i].produced.fetch_add(1, std::memory_order_relaxed);
        }
        if (!any_alive)
            break;
    }

    finished_.store(true, std::memory_order_release);
}

} // namespace lte::io

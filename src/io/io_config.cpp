#include "io/io_config.hpp"

#include "common/check.hpp"

namespace lte::io {

void
IoConfig::validate() const
{
    if (!enabled)
        return;
    LTE_CHECK(n_frames >= 2, "io.n_frames must be at least 2");
    LTE_CHECK(n_frames <= 4096, "io.n_frames unreasonably large");
    LTE_CHECK(jitter_ms >= 0.0, "io.jitter_ms must be non-negative");
    LTE_CHECK(source != SourceKind::kReplay || !replay_path.empty(),
              "io.replay_path required for the replay source");
}

} // namespace lte::io

/**
 * @file
 * The sample plane: pooled IQ subframe frames recycled between one
 * producer thread (the signal source) and one consumer thread (the
 * engine's admission loop) through a pair of lock-free SPSC rings.
 *
 * Ownership protocol (DESIGN.md §3i):
 *
 *   free ring ──try_acquire_free──▶ producer fills ──publish_ready──▶
 *   ready ring ──try_pop_ready──▶ consumer processes ──release──▶
 *   free ring ...
 *
 * A frame is owned by exactly one side at a time; the rings' release/
 * acquire pairs carry the contents across threads.  All frames are
 * allocated up front — the steady state moves only pointers.
 *
 * Late/lost semantics: when the producer finds the free ring empty at
 * a tick, the receiver has fallen a full pool behind.  In deadline
 * mode the frame is *lost* — the source's stream still advances (a
 * fronthaul does not pause because the modem is busy) and the loss is
 * counted for the shed policies.  In lossless mode (deadline 0) the
 * producer blocks instead, preserving the exact inline parameter
 * sequence and therefore bit-identical digests.  A frame produced
 * more than one TTI after its scheduled tick is counted *late* —
 * delivered anyway, but the admission deadline clock has already been
 * eating into its budget.
 */
#ifndef LTE_IO_SAMPLE_PLANE_HPP
#define LTE_IO_SAMPLE_PLANE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "io/spsc_ring.hpp"
#include "phy/params.hpp"
#include "phy/user_processor.hpp"

namespace lte::io {

class CaptureWriter;

/**
 * One pooled IQ subframe buffer.
 *
 * `signals` is the per-user pointer view the receiver consumes; for a
 * generator source the pointers reference the generator's long-lived
 * pools (zero-copy), for replay they reference this frame's own
 * `storage`.  Either way the pointers are valid from publish_ready()
 * until release().
 */
struct IqFrame
{
    /** Monotone production sequence number (per feed). */
    std::uint64_t seq = 0;
    /** Arrival timestamp on the engine's clock, stamped at publish. */
    std::uint64_t t_arrival_ns = 0;
    /** Scheduling parameters of the subframe carried by this frame. */
    phy::SubframeParams params;
    /** Per-user signal view, aligned with params.users. */
    std::vector<const phy::UserSignal *> signals;
    /** Frame-owned sample storage (replay sources only; generator
     *  sources leave it empty and point into their pools). */
    std::vector<phy::UserSignal> storage;
};

/**
 * A pluggable origin of IQ subframes, driven from the producer thread.
 */
class SampleSource
{
  public:
    virtual ~SampleSource() = default;

    /**
     * Fill @p frame (params + signals; storage if self-backed) with
     * the next subframe of the stream.  @return false when the stream
     * is exhausted (finite replay); the feed then stops.
     *
     * Steady-state contract: implementations must reuse the frame's
     * existing capacity — no heap allocation once shapes have been
     * seen once.
     */
    virtual bool produce(IqFrame &frame) = 0;

    /**
     * Advance past one subframe without materialising it — called
     * when a tick's frame is lost to pool exhaustion, so the stream
     * position stays aligned with wall-clock ticks.  Sources without
     * positional state may keep the no-op default.
     */
    virtual void skip() {}
};

/**
 * The frame pool and its two recycling rings.  Construction allocates
 * everything; afterwards the transport only moves pointers.
 *
 * Thread roles: try_acquire_free()/publish_ready() belong to the
 * producer thread, try_pop_ready()/release() to the consumer thread.
 * Each ring then has exactly one pusher and one popper, satisfying
 * SpscRing's contract.
 */
class SampleTransport
{
  public:
    explicit SampleTransport(std::size_t n_frames);

    SampleTransport(const SampleTransport &) = delete;
    SampleTransport &operator=(const SampleTransport &) = delete;

    /** Producer: take an empty frame, or nullptr (pool exhausted). */
    IqFrame *try_acquire_free();

    /** Producer: hand a filled frame to the consumer. */
    void publish_ready(IqFrame *frame);

    /** Consumer: take the oldest ready frame, or nullptr (none). */
    IqFrame *try_pop_ready();

    /** Consumer: recycle a consumed frame back to the producer. */
    void release(IqFrame *frame);

    std::size_t n_frames() const { return frames_.size(); }

    /** Racy depth estimates, for monitoring/backpressure heuristics. */
    std::size_t ready_depth() const { return ready_.size(); }
    std::size_t free_depth() const { return free_.size(); }

  private:
    std::vector<std::unique_ptr<IqFrame>> frames_;
    SpscRing<IqFrame *> ready_;
    SpscRing<IqFrame *> free_;
};

/** Producer-side counters, readable from any thread. */
struct FeedStats
{
    std::atomic<std::uint64_t> produced{0};
    /** Ticks whose frame was dropped at the source (pool exhausted). */
    std::atomic<std::uint64_t> lost{0};
    /** Frames delivered more than one TTI after their scheduled tick. */
    std::atomic<std::uint64_t> late{0};
};

/** Pacing and delivery policy of one feed (one cell). */
struct FeedConfig
{
    /** Scheduled inter-frame gap in ms (the TTI); 0 = free-running. */
    double delta_ms = 0.0;
    /** Uniform jitter amplitude added to each tick, U[0, jitter_ms). */
    double jitter_ms = 0.0;
    std::uint64_t jitter_seed = 1;
    /**
     * Lossless mode: block on pool exhaustion instead of dropping.
     * Pairs with the engines' deadline_ms == 0 backpressure mode so
     * the delivered stream is exactly the inline stream.
     */
    bool lossless = false;
    /**
     * Clock used to stamp IqFrame::t_arrival_ns and to pace ticks.
     * Engines pass their own clock so arrival timestamps line up with
     * admission deadlines; defaults to steady_clock.
     */
    std::function<std::uint64_t()> now_ns;
    /** Optional Recorder tap: every published frame is also written
     *  here, on the producer thread (off the receiver path). */
    CaptureWriter *recorder = nullptr;
};

/**
 * The producer thread: paces a SampleSource onto a SampleTransport.
 * start() launches, stop() joins (also called by the destructor).
 * The transport and source must outlive the feed.
 */
class SampleFeed
{
  public:
    SampleFeed(SampleTransport &transport, SampleSource &source,
               FeedConfig config);
    ~SampleFeed();

    SampleFeed(const SampleFeed &) = delete;
    SampleFeed &operator=(const SampleFeed &) = delete;

    /** Launch the producer for @p n_subframes ticks. */
    void start(std::uint64_t n_subframes);

    /** Signal the producer to exit and join it. Idempotent. */
    void stop();

    /** True once the producer has delivered (or lost) every tick. */
    bool finished() const
    {
        return finished_.load(std::memory_order_acquire);
    }

    const FeedStats &stats() const { return stats_; }

  private:
    void run(std::uint64_t n_subframes);

    SampleTransport &transport_;
    SampleSource &source_;
    FeedConfig config_;
    FeedStats stats_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> finished_{false};
};

/** One lane of a MultiSampleFeed: a cell's transport + source pair,
 *  plus the per-lane delivery knobs that FeedConfig cannot share. */
struct FeedLane
{
    SampleTransport *transport = nullptr;
    SampleSource *source = nullptr;
    /** Optional per-lane recorder tap (runs on the producer thread). */
    CaptureWriter *recorder = nullptr;
    /** Per-lane jitter stream so staggered cells stay decorrelated. */
    std::uint64_t jitter_seed = 1;
};

/**
 * One producer thread pacing N cell lanes on a shared TTI grid.
 *
 * Running one free-running SampleFeed thread per cell oversubscribes
 * a core as soon as n_cells producers yield-spin toward the same tick
 * — the 2/4-cell offloaded rows of bench/streaming_overload measured
 * producer scheduling noise, not receiver capacity.  This feed walks
 * the grid once: each tick it draws every lane's jittered delivery
 * time, visits the lanes in that order (sleeping toward each), and
 * produces into the lane's own transport, so the SPSC single-producer
 * contract per ring is kept by construction and the host spends one
 * pacing loop regardless of cell count.
 *
 * delta_ms / jitter_ms / lossless / now_ns come from the shared
 * FeedConfig (FeedConfig::jitter_seed and ::recorder are ignored —
 * they are per-lane here).  In lossless mode a stalled lane blocks
 * the whole producer, which is exactly the backpressure semantics of
 * the shared grid: no lane's stream may advance past a tick another
 * lane still owes.
 */
class MultiSampleFeed
{
  public:
    MultiSampleFeed(std::vector<FeedLane> lanes, FeedConfig config);
    ~MultiSampleFeed();

    MultiSampleFeed(const MultiSampleFeed &) = delete;
    MultiSampleFeed &operator=(const MultiSampleFeed &) = delete;

    /** Launch the producer for @p n_subframes ticks per lane. */
    void start(std::uint64_t n_subframes);

    /** Signal the producer to exit and join it. Idempotent. */
    void stop();

    /** True once every lane has delivered (or lost) every tick. */
    bool finished() const
    {
        return finished_.load(std::memory_order_acquire);
    }

    std::size_t n_lanes() const { return lanes_.size(); }

    /** Per-lane producer counters (same contract as SampleFeed). */
    const FeedStats &stats(std::size_t lane) const;

  private:
    void run(std::uint64_t n_subframes);

    std::vector<FeedLane> lanes_;
    FeedConfig config_;
    /** Indexed per lane (FeedStats holds atomics, hence the array). */
    std::unique_ptr<FeedStats[]> stats_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> finished_{false};
};

} // namespace lte::io

#endif // LTE_IO_SAMPLE_PLANE_HPP

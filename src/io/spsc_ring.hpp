/**
 * @file
 * Lock-free single-producer/single-consumer ring for the sample plane.
 *
 * The fronthaul boundary moves exactly one kind of object between
 * exactly two threads: the producer (signal source) publishes filled
 * IQ frames toward the receiver, and the receiver recycles consumed
 * frames back — two rings, each strictly SPSC.  That restriction buys
 * the cheapest possible synchronisation: one release store per
 * operation on the owning index, one acquire load on the peer's, no
 * CAS, no locks, no allocation.  (Contrast WsDeque, which serves many
 * thieves and therefore takes a mutex; the sample plane must not pay
 * that on a 1 ms cadence.)
 *
 * Layout follows the classic bounded MPMC-descendant design: head
 * (consumer cursor) and tail (producer cursor) live on their own
 * cache lines so the producer's stores never invalidate the line the
 * consumer spins on; capacity is a power of two so positions mask
 * instead of dividing.  Indices are monotonically increasing 64-bit
 * counters (no wrap ambiguity at any realistic rate: 2^64 frames at
 * 1 ms each is half a billion years).
 */
#ifndef LTE_IO_SPSC_RING_HPP
#define LTE_IO_SPSC_RING_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "common/check.hpp"

namespace lte::io {

/** Destructive-interference granularity.  A fixed 64 rather than
 *  std::hardware_destructive_interference_size: the value is part of
 *  the layout, and gcc warns that the std constant varies with
 *  tuning flags (-Winterference-size).  64 is correct for every
 *  x86-64 and the common aarch64 parts this benchmark targets. */
inline constexpr std::size_t kCacheLine = 64;

/**
 * Bounded lock-free SPSC ring.  try_push may only ever be called from
 * one thread at a time (the producer) and try_pop from one other (the
 * consumer); the roles may migrate between threads only across a
 * synchronisation point (e.g. thread join).
 */
template <typename T>
class SpscRing
{
  public:
    /**
     * @param capacity slot count; MUST be a power of two (positions
     *        are masked, a non-power-of-two would alias slots).
     */
    explicit SpscRing(std::size_t capacity)
        : buffer_(capacity), mask_(capacity - 1)
    {
        LTE_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                  "SpscRing capacity must be a power of two >= 2");
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Producer side: publish @p value; false when the ring is full.
     *  The release store pairs with the consumer's acquire load, so a
     *  popped value sees every producer write made before the push. */
    bool
    try_push(const T &value)
    {
        const std::uint64_t tail =
            tail_.load(std::memory_order_relaxed);
        // The cached head avoids an acquire load per push while the
        // ring has obvious room; refresh it only on apparent fullness.
        if (tail - head_cache_ >= buffer_.size()) {
            head_cache_ = head_.load(std::memory_order_acquire);
            if (tail - head_cache_ >= buffer_.size())
                return false;
        }
        buffer_[static_cast<std::size_t>(tail) & mask_] = value;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: take the oldest value; false when empty. */
    bool
    try_pop(T &out)
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        if (tail_cache_ - head == 0) {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (tail_cache_ - head == 0)
                return false;
        }
        out = buffer_[static_cast<std::size_t>(head) & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Racy occupancy estimate (either side; monitoring only). */
    std::size_t
    size() const
    {
        const std::uint64_t tail = tail_.load(std::memory_order_acquire);
        const std::uint64_t head = head_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(tail - head);
    }

    bool empty() const { return size() == 0; }

    std::size_t capacity() const { return buffer_.size(); }

  private:
    std::vector<T> buffer_;
    std::size_t mask_;

    /** Consumer cursor; producer reads it with acquire on fullness. */
    alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
    /** Producer's cached copy of head_ (producer-thread private). */
    alignas(kCacheLine) std::uint64_t head_cache_ = 0;
    /** Producer cursor; consumer reads it with acquire on emptiness. */
    alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
    /** Consumer's cached copy of tail_ (consumer-thread private). */
    alignas(kCacheLine) std::uint64_t tail_cache_ = 0;
};

/** Smallest power of two >= @p n (n itself if already one). */
constexpr std::size_t
ceil_pow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace lte::io

#endif // LTE_IO_SPSC_RING_HPP

/**
 * @file
 * Sample-plane configuration: how an engine's input arrives.
 *
 * Disabled (the default) keeps the historical in-process behaviour —
 * the admission loop synthesizes its own input inline.  Enabled, a
 * dedicated producer thread per cell fills pooled IQ frames from a
 * SampleSource and the admission loop merely consumes ready frames,
 * which is the paper's actual deployment shape (samples arrive from a
 * fronthaul every TTI whether the receiver is ready or not).
 */
#ifndef LTE_IO_IO_CONFIG_HPP
#define LTE_IO_IO_CONFIG_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace lte::io {

/** Where the producer thread gets its IQ frames from. */
enum class SourceKind : std::uint8_t
{
    /** The engine's own InputGenerator, run on the producer thread. */
    kGenerator = 0,
    /** Replay of a recorded capture file. */
    kReplay = 1,
};

struct IoConfig
{
    /** Off by default: engines synthesize input inline as before. */
    bool enabled = false;

    SourceKind source = SourceKind::kGenerator;

    /**
     * IQ frames in the recycling pool (rounded up to a power of two
     * for the rings).  Bounds how far the producer can run ahead of
     * the receiver; when exhausted, frames are lost (deadline mode)
     * or the producer blocks (lossless mode, deadline_ms == 0).
     */
    std::size_t n_frames = 16;

    /**
     * Uniform arrival jitter amplitude in milliseconds: each frame's
     * scheduled production tick is offset by U[0, jitter_ms).  Zero
     * (the default) keeps arrivals exactly on the TTI grid, which is
     * required for bit-identical digest parity with the inline path.
     */
    double jitter_ms = 0.0;

    /** Seed of the jitter stream (independent of the signal seed). */
    std::uint64_t jitter_seed = 1;

    /** Capture file to replay (source == kReplay). */
    std::string replay_path;

    /** When non-empty, the producer taps every published frame into
     *  this capture file (the Recorder sink). */
    std::string record_path;

    /** Throws std::invalid_argument on nonsense. */
    void validate() const;
};

} // namespace lte::io

#endif // LTE_IO_IO_CONFIG_HPP

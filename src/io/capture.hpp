/**
 * @file
 * IQ capture files: record the sample plane's frame stream to disk and
 * replay it later as a SampleSource — the workflow for capturing an
 * overload trace once and reproducing it deterministically.
 *
 * Format (host-endian, version 1):
 *
 *   header:  char magic[8] = "LTEIQv1\0", u32 version, u32 n_antennas
 *   frame:   u64 subframe_index, u32 cell_id, u32 n_users
 *            per user:    u32 id, u32 prb, u32 layers, u8 mod
 *            per user, per antenna, per slot (2), per symbol (7):
 *                         u32 n_sc, then n_sc raw cf32 samples
 *
 * The per-symbol subcarrier counts are redundant with the user params
 * but make every record self-describing, which lets skip() seek past a
 * frame without reconstructing it.
 */
#ifndef LTE_IO_CAPTURE_HPP
#define LTE_IO_CAPTURE_HPP

#include <cstdint>
#include <fstream>
#include <string>

#include "io/sample_plane.hpp"

namespace lte::io {

/** Streams IqFrames into a capture file (the Recorder sink). */
class CaptureWriter
{
  public:
    /** Creates/truncates @p path and writes the header. */
    CaptureWriter(const std::string &path, std::size_t n_antennas);

    /** Append one frame. Throws std::runtime_error on I/O failure. */
    void write(const IqFrame &frame);

    std::uint64_t frames_written() const { return frames_written_; }

  private:
    std::ofstream out_;
    std::string path_;
    std::size_t n_antennas_;
    std::uint64_t frames_written_ = 0;
};

/** Reads a capture file frame by frame. */
class CaptureReader
{
  public:
    explicit CaptureReader(const std::string &path);

    std::size_t n_antennas() const { return n_antennas_; }

    /**
     * Read the next frame into @p frame (params, storage, signals
     * re-pointed at storage), reusing its capacity.  @return false at
     * end of file.
     */
    bool read_into(IqFrame &frame);

    /** Seek past the next frame without materialising it. */
    bool skip_frame();

    /** Rewind to the first frame. */
    void rewind();

  private:
    std::ifstream in_;
    std::string path_;
    std::size_t n_antennas_ = 0;
    std::streampos first_frame_;
};

/** SampleSource that replays a capture file. */
class ReplaySource : public SampleSource
{
  public:
    /**
     * @param loop  when true, rewind at end of file so the replay can
     *        drive runs longer than the capture (bench overload mode);
     *        when false, produce() returns false at end of capture.
     */
    explicit ReplaySource(const std::string &path, bool loop = false);

    bool produce(IqFrame &frame) override;
    void skip() override;

    std::size_t n_antennas() const { return reader_.n_antennas(); }

  private:
    CaptureReader reader_;
    bool loop_;
};

} // namespace lte::io

#endif // LTE_IO_CAPTURE_HPP

/**
 * @file
 * Fast synthetic receiver input, matching the paper's approach of
 * driving the benchmark with random IQ data (Sec. IV-B.1): every
 * sample is unit-variance complex Gaussian noise.  The receive chain
 * performs identical work on it (CRC simply fails), which is what the
 * scheduling and power studies need.
 */
#ifndef LTE_CHANNEL_SIGNAL_SOURCE_HPP
#define LTE_CHANNEL_SIGNAL_SOURCE_HPP

#include "common/rng.hpp"
#include "phy/params.hpp"
#include "phy/user_processor.hpp"

namespace lte::channel {

/** Random IQ input for one user's allocation. */
phy::UserSignal random_user_signal(const phy::UserParams &params,
                                   std::size_t n_antennas, Rng &rng);

/**
 * Same, regenerating @p out in place: resize() reuses the buffers'
 * capacity, so refilling a signal of an already-seen shape performs
 * zero heap allocations — the contract the sample plane's fresh
 * per-TTI generation mode relies on.
 */
void random_user_signal_into(const phy::UserParams &params,
                             std::size_t n_antennas, Rng &rng,
                             phy::UserSignal &out);

/**
 * Full-fidelity input: transmit a random payload through a freshly
 * drawn MIMO channel at the given SNR.  Returns the signal and the
 * payload bits a correct receiver reproduces.
 */
struct RealisticSignal
{
    phy::UserSignal signal;
    std::vector<std::uint8_t> expected_bits;
};

RealisticSignal realistic_user_signal(const phy::UserParams &params,
                                      std::size_t n_antennas,
                                      double snr_db, Rng &rng,
                                      bool real_turbo = false,
                                      std::uint32_t cell_id = 1);

} // namespace lte::channel

#endif // LTE_CHANNEL_SIGNAL_SOURCE_HPP

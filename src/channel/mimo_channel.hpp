/**
 * @file
 * MIMO radio-channel simulation between the UE transmit grid and the
 * base-station receive antennas.
 *
 * [SUBSTITUTION — DESIGN.md Sec. 1] The paper drives its receiver with
 * synthetic IQ buffers; we model a tapped-delay-line Rayleigh channel
 * per (antenna, layer) pair plus AWGN so the receive chain (channel
 * estimation, MMSE combining, demapping) does real work and can be
 * verified end-to-end.  Tap delays are kept within the channel
 * estimator's window so a correctly implemented receiver decodes
 * cleanly at reasonable SNR.
 */
#ifndef LTE_CHANNEL_MIMO_CHANNEL_HPP
#define LTE_CHANNEL_MIMO_CHANNEL_HPP

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "phy/params.hpp"
#include "phy/user_processor.hpp"
#include "tx/transmitter.hpp"

namespace lte::channel {

/** Channel model configuration. */
struct ChannelConfig
{
    std::size_t n_antennas = 4;
    /** Per-layer SNR in dB (noise variance = 10^(-snr/10)). */
    double snr_db = 30.0;
    /** Multipath taps per (antenna, layer) link. */
    std::size_t n_taps = 3;
    /**
     * Maximum tap delay as a fraction of the allocation size; must be
     * comfortably inside the channel estimator's window (default
     * window keeps ~9% causal delay bins).
     */
    double delay_spread_fraction = 0.02;

    void validate() const;
};

/**
 * A frozen channel realisation for one user: tapped delay lines for
 * every (antenna, layer) link, constant across the subframe (block
 * fading).  Tap gains are complex Gaussian with total unit average
 * power per link.
 */
class MimoChannel
{
  public:
    /**
     * Draw a realisation.
     *
     * @param cfg    model parameters
     * @param layers number of transmit layers
     * @param rng    randomness source (deterministic per seed)
     */
    MimoChannel(const ChannelConfig &cfg, std::size_t layers, Rng &rng);

    /**
     * Exact frequency response of link (antenna, layer) over an
     * allocation of @p m_sc subcarriers — ground truth for tests.
     */
    CVec frequency_response(std::size_t antenna, std::size_t layer,
                            std::size_t m_sc) const;

    /**
     * Propagate a transmit grid: superpose all layers through their
     * links onto each antenna and add AWGN.
     *
     * @param grid   the UE transmit grid
     * @param params user parameters (for per-slot allocation sizes)
     * @param rng    noise source
     */
    phy::UserSignal apply(const tx::LayerGrid &grid,
                          const phy::UserParams &params, Rng &rng) const;

    const ChannelConfig &config() const { return cfg_; }

  private:
    struct Tap
    {
        double delay_fraction; ///< delay as a fraction of m_sc
        cf32 gain;
    };

    ChannelConfig cfg_;
    std::size_t layers_;
    /** taps_[antenna][layer] */
    std::vector<std::vector<std::vector<Tap>>> taps_;
};

} // namespace lte::channel

#endif // LTE_CHANNEL_MIMO_CHANNEL_HPP

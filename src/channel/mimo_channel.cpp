#include "channel/mimo_channel.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace lte::channel {

void
ChannelConfig::validate() const
{
    LTE_CHECK(n_antennas >= 1 && n_antennas <= kMaxRxAntennas,
              "antennas must be 1..4");
    LTE_CHECK(n_taps >= 1, "need at least one tap");
    LTE_CHECK(delay_spread_fraction >= 0.0 &&
              delay_spread_fraction < 0.05,
              "delay spread must stay inside the estimator window");
    LTE_CHECK(snr_db > -20.0 && snr_db < 100.0, "unreasonable SNR");
}

MimoChannel::MimoChannel(const ChannelConfig &cfg, std::size_t layers,
                         Rng &rng)
    : cfg_(cfg), layers_(layers)
{
    cfg_.validate();
    LTE_CHECK(layers >= 1 && layers <= kMaxLayers, "layers must be 1..4");

    const double per_tap_power = 1.0 / static_cast<double>(cfg_.n_taps);
    taps_.resize(cfg_.n_antennas);
    for (auto &per_antenna : taps_) {
        per_antenna.resize(layers_);
        for (auto &link : per_antenna) {
            link.resize(cfg_.n_taps);
            for (std::size_t t = 0; t < cfg_.n_taps; ++t) {
                // First tap at delay 0, the rest uniform in the spread.
                const double frac =
                    t == 0 ? 0.0
                           : rng.next_double() * cfg_.delay_spread_fraction;
                const double scale = std::sqrt(per_tap_power / 2.0);
                link[t].delay_fraction = frac;
                link[t].gain = cf32(
                    static_cast<float>(rng.next_gaussian() * scale),
                    static_cast<float>(rng.next_gaussian() * scale));
            }
        }
    }
}

CVec
MimoChannel::frequency_response(std::size_t antenna, std::size_t layer,
                                std::size_t m_sc) const
{
    LTE_CHECK(antenna < cfg_.n_antennas, "antenna out of range");
    LTE_CHECK(layer < layers_, "layer out of range");
    CVec h(m_sc, cf32(0.0f, 0.0f));
    for (const Tap &tap : taps_[antenna][layer]) {
        // Integer sample delay for this allocation size.
        const double delay = std::floor(
            tap.delay_fraction * static_cast<double>(m_sc));
        for (std::size_t k = 0; k < m_sc; ++k) {
            const double angle = -2.0 * std::numbers::pi * delay *
                                 static_cast<double>(k) /
                                 static_cast<double>(m_sc);
            h[k] += tap.gain *
                    cf32(static_cast<float>(std::cos(angle)),
                         static_cast<float>(std::sin(angle)));
        }
    }
    return h;
}

phy::UserSignal
MimoChannel::apply(const tx::LayerGrid &grid,
                   const phy::UserParams &params, Rng &rng) const
{
    LTE_CHECK(grid.layers.size() == layers_,
              "grid layer count mismatch");
    LTE_CHECK(params.layers == layers_, "params layer count mismatch");

    const float noise_std = static_cast<float>(
        std::sqrt(from_db(-cfg_.snr_db) / 2.0));

    phy::UserSignal out;
    out.antennas.resize(cfg_.n_antennas);

    for (std::size_t a = 0; a < cfg_.n_antennas; ++a) {
        for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
            const std::size_t m_sc = params.sc_in_slot(slot);
            for (std::size_t sym = 0; sym < kSymbolsPerSlot; ++sym) {
                CVec rx(m_sc, cf32(0.0f, 0.0f));
                for (std::size_t l = 0; l < layers_; ++l) {
                    const CVec h = frequency_response(a, l, m_sc);
                    const CVec &x = grid.layers[l].slots[slot][sym];
                    LTE_CHECK(x.size() == m_sc,
                              "grid symbol length mismatch");
                    for (std::size_t k = 0; k < m_sc; ++k)
                        rx[k] += h[k] * x[k];
                }
                for (auto &v : rx) {
                    v += cf32(static_cast<float>(rng.next_gaussian()) *
                                  noise_std,
                              static_cast<float>(rng.next_gaussian()) *
                                  noise_std);
                }
                out.antennas[a].slots[slot][sym] = std::move(rx);
            }
        }
    }
    return out;
}

} // namespace lte::channel

#include "channel/signal_source.hpp"

#include "channel/mimo_channel.hpp"
#include "tx/transmitter.hpp"

namespace lte::channel {

phy::UserSignal
random_user_signal(const phy::UserParams &params, std::size_t n_antennas,
                   Rng &rng)
{
    phy::UserSignal out;
    random_user_signal_into(params, n_antennas, rng, out);
    return out;
}

void
random_user_signal_into(const phy::UserParams &params,
                        std::size_t n_antennas, Rng &rng,
                        phy::UserSignal &out)
{
    params.validate();
    out.antennas.resize(n_antennas);
    const float scale = 1.0f / std::sqrt(2.0f);
    for (auto &ant : out.antennas) {
        for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
            const std::size_t m_sc = params.sc_in_slot(slot);
            for (auto &sym : ant.slots[slot]) {
                sym.resize(m_sc);
                for (auto &v : sym) {
                    v = cf32(static_cast<float>(rng.next_gaussian()) *
                                 scale,
                             static_cast<float>(rng.next_gaussian()) *
                                 scale);
                }
            }
        }
    }
}

RealisticSignal
realistic_user_signal(const phy::UserParams &params,
                      std::size_t n_antennas, double snr_db, Rng &rng,
                      bool real_turbo, std::uint32_t cell_id)
{
    ChannelConfig cfg;
    cfg.n_antennas = n_antennas;
    cfg.snr_db = snr_db;

    tx::TxResult txr = tx::transmit_user(params, rng, real_turbo, cell_id);
    MimoChannel chan(cfg, params.layers, rng);

    RealisticSignal out;
    out.signal = chan.apply(txr.grid, params, rng);
    out.expected_bits = std::move(txr.payload_bits);
    return out;
}

} // namespace lte::channel

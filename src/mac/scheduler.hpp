/**
 * @file
 * The closed-loop MAC scheduler above the PHY benchmark.
 *
 * Replaces the random per-subframe parameter draw with grants
 * *produced* from a live UE population:
 *
 *   traffic   — per-UE bounded packet queues fed by an aggregate
 *               Poisson process of geometric bursts (O(arrivals) per
 *               TTI, so mostly-idle populations of 10k+ UEs cost
 *               nothing), each packet carrying a delivery deadline;
 *   CQI/MCS   — a filtered SNR estimate per UE built from receiver
 *               feedback (EVM + real CRC verdicts when the turbo
 *               decoder ran; a modelled report when the feedback is
 *               flagged crc_modelled), plus an OLLA offset stepped by
 *               ACK/NACK toward the target BLER, with a dwell-based
 *               hysteresis before MCS changes;
 *   HARQ      — 8 stop-and-wait processes per UE; NACKed blocks are
 *               re-granted with their original shape (chase
 *               combining) ahead of new data, and blocks that exhaust
 *               the retransmission budget retire as residual errors;
 *   policies  — round-robin, proportional-fair and deadline-EDF
 *               selection of new transmissions behind one switch.
 *
 * The scheduler is wired to an engine in two places: a GrantModel
 * adapter (mac/grant_model.hpp) feeds next_tti_into() to the engine's
 * ParameterModel seam, and the engine's EngineConfig::feedback sink
 * delivers completed-subframe outcomes and shed decisions back here.
 * In offloaded-io runs those two calls race on different threads
 * (producer vs dispatch), so every public entry point takes the one
 * internal mutex.
 *
 * Conservation invariant (tests/test_mac.cpp): after finalize(),
 *     offered == delivered + residual     (blocks and payload bits)
 * — every granted transport block is resolved exactly once, including
 * blocks whose subframe was shed, lost at the io producer (resolved
 * by the outstanding-grant ring's timeout sweep) or still in flight
 * at the end of the run.
 *
 * Steady-state allocation: next_tti_into() and the feedback path
 * touch only preallocated state (tests/test_alloc_free.cpp measures
 * a live closed loop).
 */
#ifndef LTE_MAC_SCHEDULER_HPP
#define LTE_MAC_SCHEDULER_HPP

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "mac/mcs.hpp"
#include "mac/ue.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phy/params.hpp"
#include "runtime/feedback.hpp"

namespace lte::mac {

/** Which policy picks new transmissions each TTI. */
enum class SchedulerPolicy : std::uint8_t
{
    kRoundRobin,       ///< rotate over the active list
    kProportionalFair, ///< max instantaneous/average rate ratio
    kDeadlineEdf,      ///< earliest head-of-queue deadline first
};

const char *scheduler_policy_name(SchedulerPolicy policy);

/** Parse "rr" / "pf" / "edf" (also accepts the long names). */
SchedulerPolicy parse_scheduler_policy(const char *name);

/** Configuration of one cell's MAC. */
struct MacConfig
{
    std::uint32_t cell_id = 1;
    /** Master seed; UE streams derive from it deterministically. */
    std::uint64_t seed = 1;
    std::uint32_t n_ues = 1000;
    SchedulerPolicy policy = SchedulerPolicy::kRoundRobin;

    // --- traffic ---
    /** Mean burst arrivals per TTI (cell aggregate, Poisson). */
    double arrival_rate = 4.0;
    /** Mean packets per burst (geometric, >= 1). */
    double burst_mean = 3.0;
    /** Bits per packet. */
    std::uint32_t packet_bits = 4096;
    /** Packet delivery deadline in TTIs after arrival. */
    std::uint64_t deadline_ttis = 40;

    // --- grants ---
    std::uint32_t max_users_per_tti =
        static_cast<std::uint32_t>(kMaxUsersPerSubframe);
    std::uint32_t prb_budget =
        static_cast<std::uint32_t>(kMaxPrbPerSubframe);
    /** Cap on one grant's PRBs (keeps the carrier shareable). */
    std::uint32_t max_prb_per_grant = 100;
    std::uint32_t max_harq_retx = 3;
    /** Outstanding grants older than this resolve as NACK (covers
     *  sample-plane ticks lost before the engine ever saw them). */
    std::uint64_t grant_timeout_ttis = 256;

    // --- link adaptation ---
    /** false: pin every grant to fixed_mcs (the baseline the bench
     *  compares adaptation against). */
    bool adapt = true;
    std::uint8_t fixed_mcs = 4;
    double target_bler = 0.1;
    /** OLLA up-step per ACK (dB); the down-step is derived from the
     *  target BLER so the loop converges on it. */
    float olla_step_db = 0.05f;
    /** TTIs the preferred MCS must persist before a switch. */
    std::uint32_t mcs_dwell_ttis = 8;
    /** EWMA weight of a fresh SNR observation. */
    float snr_alpha = 0.1f;

    // --- modelled channel ---
    float snr_mean_db = 12.0f;
    /** Per-UE spread of long-term means (dB std). */
    float snr_spread_db = 4.0f;
    /** AR(1) coefficient per TTI and stationary deviation (dB). */
    float snr_ar_rho = 0.995f;
    float snr_ar_sigma_db = 2.0f;
    /** Global mean drift per TTI (negative = degrading channel). */
    float snr_drift_db_per_tti = 0.0f;
    /** Logistic BLER waterfall slope (dB) for the modelled draw. */
    float bler_slope_db = 1.0f;
    /** Noise (dB std) on modelled CQI reports. */
    float cqi_noise_db = 0.5f;
    /** PF averaging window (TTIs). */
    double pf_window_ttis = 100.0;

    // --- online BLER calibration (DESIGN.md 3k) ---
    /**
     * Learn the gap between the modelled logistic BLER and real decode
     * verdicts: every real-CRC feedback sample updates an EWMA of
     * (observed error - modelled prediction), and modelled draws are
     * then corrected by that gap.  Pairs with
     * ReceiverConfig::decode_sample_rate, which keeps a small real-
     * decode sample alive on the bypass path to feed this loop.
     */
    bool calibrate_bler = false;
    /** EWMA weight of one real-feedback calibration sample. */
    double bler_gap_alpha = 0.05;

    void validate() const;
};

/** Aggregate counters of one MAC instance (monotone over a run). */
struct MacStats
{
    std::uint64_t ttis = 0;
    std::uint64_t grants = 0;
    std::uint64_t retx_grants = 0;

    /** Transport blocks / payload bits first put on the air. */
    std::uint64_t offered_tbs = 0;
    std::uint64_t offered_bits = 0;
    /** Blocks / bits ACKed. */
    std::uint64_t delivered_tbs = 0;
    std::uint64_t delivered_bits = 0;
    /** Blocks / bits abandoned (retx budget, finalize retirement). */
    std::uint64_t residual_tbs = 0;
    std::uint64_t residual_bits = 0;

    std::uint64_t acks = 0;
    std::uint64_t nacks = 0;
    /** Feedback split by provenance (UserOutcome.crc_modelled). */
    std::uint64_t real_feedback = 0;
    std::uint64_t modelled_feedback = 0;
    /** Completed subframes with no matching outstanding grants
     *  (pinned mode, or another model driving the engine). */
    std::uint64_t unmatched_feedback = 0;

    std::uint64_t shed_ttis = 0;
    /** Outstanding grants resolved by the timeout sweep. */
    std::uint64_t timeout_grants = 0;

    std::uint64_t packets_arrived = 0;
    std::uint64_t arrived_bits = 0;
    /** Packets dropped past their deadline while still queued. */
    std::uint64_t deadline_drops = 0;
    /** Packets dropped because the UE's queue ring was full. */
    std::uint64_t overflow_drops = 0;
    std::uint64_t dropped_bits = 0;

    /** The HARQ conservation invariant (exact after finalize()). */
    bool
    conserved() const
    {
        return offered_tbs == delivered_tbs + residual_tbs &&
               offered_bits == delivered_bits + residual_bits;
    }
};

/**
 * One cell's MAC scheduler.  Thread-safe: the grant producer and the
 * feedback sink may run on different threads.
 */
class MacScheduler final : public runtime::SubframeFeedbackSink
{
  public:
    explicit MacScheduler(const MacConfig &config);

    /**
     * Produce the next TTI's grants into @p out (reusing its users
     * capacity — allocation-free in steady state).
     */
    void next_tti_into(phy::SubframeParams &out);

    /** Convenience: by-value variant of next_tti_into(). */
    phy::SubframeParams next_subframe();

    // SubframeFeedbackSink (called from the engine dispatch thread).
    void on_subframe_complete(const runtime::SubframeOutcome &outcome,
                              phy::DegradeLevel level) override;
    void on_subframe_shed(std::uint32_t cell_id,
                          std::uint64_t subframe_index) override;

    /**
     * End of run: resolve every outstanding grant and retire every
     * in-flight HARQ block as residual, making the conservation
     * invariant exact.  Idempotent.
     */
    void finalize();

    /** Restart from the initial state (same seed => same run). */
    void reset();

    /** Snapshot of the counters (thread-safe). */
    MacStats stats() const;

    /** Bits currently queued across all UEs (thread-safe). */
    std::uint64_t queued_bits() const;

    /** UEs currently on the active list (thread-safe). */
    std::size_t active_ues() const;

    /**
     * Scale the traffic intensity without reconfiguring: arrivals draw
     * at arrival_rate * scale from the next TTI on.  Drives diurnal
     * load shapes over a fixed UE population (core::ChipFleet).
     */
    void set_arrival_scale(double scale);
    double arrival_scale() const;

    /** Current observed-minus-modelled BLER gap (EWMA; 0 until the
     *  first real-feedback sample arrives or when calibrate_bler is
     *  off). */
    double bler_gap() const;

    /**
     * Register mac.* counters with @p registry (and optionally emit a
     * kMacGrant instant span per TTI on @p tracer slot @p slot).
     * Call before the run; the hot path then updates cached pointers.
     */
    void bind_obs(obs::MetricsRegistry *registry,
                  obs::Tracer *tracer = nullptr, std::size_t slot = 0);

    const MacConfig &config() const { return config_; }

  private:
    /** A grant awaiting receiver feedback. */
    struct GrantRef
    {
        std::uint32_t ue = 0;
        std::uint8_t harq = 0;
    };
    /** Grants of one submitted TTI, keyed by subframe index. */
    struct OutstandingTti
    {
        std::uint64_t subframe_index = 0;
        bool active = false;
        std::uint8_t n = 0;
        std::array<GrantRef, kMaxUsersPerSubframe> refs{};
    };

    // All private methods assume mutex_ is held.
    void init_population();
    void draw_arrivals();
    /** Drop queued packets whose deadline passed; update queue_bits. */
    void sweep_deadlines(UeState &ue);
    /** Evolve the modelled channel lazily and return SNR now (dB). */
    float snr_true_db(UeState &ue);
    /** Decay the PF average lazily to the current TTI. */
    void decay_avg_rate(UeState &ue);
    /** Re-evaluate MCS preference under hysteresis. */
    void update_mcs(UeState &ue);
    /** Resolve one transport block (ACK/NACK -> retx or residual). */
    void resolve_tb(std::uint32_t ue_index, std::size_t h, bool ack);
    /** Retire an active block as residual error. */
    void retire_residual(UeState &ue, HarqProcess &proc);
    /** Resolve a whole outstanding TTI as NACKs (shed/timeout). */
    void resolve_outstanding_nack(OutstandingTti &tti);
    /** Append one grant to @p out and the outstanding record. */
    void push_grant(phy::SubframeParams &out, OutstandingTti &rec,
                    std::uint32_t ue_index, std::size_t h,
                    bool is_retx);
    void add_to_active(std::uint32_t ue_index);
    /** Retx-queue helpers (preallocated power-of-two ring). */
    bool retx_empty() const { return retx_head_ == retx_tail_; }
    void retx_push(GrantRef ref);
    GrantRef retx_pop();

    MacConfig config_;
    mutable std::mutex mutex_;

    std::uint64_t tti_ = 0;
    Rng traffic_rng_{1};
    /** Multiplier on config_.arrival_rate (set_arrival_scale). */
    double arrival_scale_ = 1.0;
    /** EWMA of (observed - modelled) BLER from real-CRC feedback. */
    double bler_gap_ = 0.0;
    std::vector<UeState> ues_;
    /** Indices of UEs with backlog or in-flight blocks. */
    std::vector<std::uint32_t> active_;
    std::size_t rr_cursor_ = 0;

    /** Pending retransmission grants, FIFO (capacity: every process
     *  of every UE, so a push can never overflow). */
    std::vector<GrantRef> retx_ring_;
    std::size_t retx_mask_ = 0;
    std::size_t retx_head_ = 0;
    std::size_t retx_tail_ = 0;

    static constexpr std::size_t kOutstandingSlots = 512;
    std::array<OutstandingTti, kOutstandingSlots> outstanding_{};

    /** Per-TTI selection scratch (preallocated). */
    struct Candidate
    {
        std::uint32_t ue = 0;
        double key = 0.0;
    };
    std::vector<Candidate> selected_;

    MacStats stats_;
    bool finalized_ = false;

    // Cached obs handles (null when not bound).
    obs::Counter *grants_counter_ = nullptr;
    obs::Counter *retx_counter_ = nullptr;
    obs::Counter *acks_counter_ = nullptr;
    obs::Counter *nacks_counter_ = nullptr;
    obs::Counter *residual_counter_ = nullptr;
    obs::Counter *deadline_drop_counter_ = nullptr;
    obs::Gauge *queue_bits_gauge_ = nullptr;
    obs::Gauge *active_ues_gauge_ = nullptr;
    obs::Tracer *tracer_ = nullptr;
    std::size_t tracer_slot_ = 0;
};

} // namespace lte::mac

#endif // LTE_MAC_SCHEDULER_HPP

/**
 * @file
 * Per-UE MAC state: the traffic queue, the link-adaptation estimate
 * and the modelled channel.
 *
 * The population is sized for "10k–1M UEs, most idle": everything is
 * fixed-capacity (a bounded packet ring, the 8 HARQ processes, plain
 * scalars), so a UE costs well under a kilobyte and only UEs with
 * backlog or in-flight blocks ever appear on the scheduler's active
 * list.  The channel a UE sees is modelled MAC-side as a slowly
 * drifting AR(1) SNR process — the PHY benchmark's pooled inputs
 * carry no per-UE channel, so the closed loop's ground truth lives
 * here and the receiver's measurements (real CRC verdicts, EVM) or
 * the modelled error draw (bypass path, see UserResult.crc_modelled)
 * feed the estimate that chases it.
 */
#ifndef LTE_MAC_UE_HPP
#define LTE_MAC_UE_HPP

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "mac/harq.hpp"

namespace lte::mac {

/** One queued packet (bits still waiting for a grant). */
struct Packet
{
    std::uint64_t arrival_tti = 0;
    std::uint64_t deadline_tti = 0;
    /** Bits not yet drained into a transport block. */
    std::uint32_t bits = 0;
};

/** Bounded FIFO of queued packets; overflow drops the arrival. */
class PacketRing
{
  public:
    static constexpr std::size_t kCapacity = 32;

    bool
    push(const Packet &p)
    {
        if (count_ == kCapacity)
            return false;
        ring_[(head_ + count_) % kCapacity] = p;
        ++count_;
        return true;
    }

    Packet &front() { return ring_[head_]; }
    const Packet &front() const { return ring_[head_]; }

    void
    pop()
    {
        head_ = (head_ + 1) % kCapacity;
        --count_;
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

  private:
    std::array<Packet, kCapacity> ring_{};
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/** All MAC state of one UE. */
struct UeState
{
    std::uint32_t id = 0;
    /** Spatial layers this UE transmits (capability, fixed). */
    std::uint8_t layers = 1;

    // --- traffic ---
    PacketRing queue;
    /** Sum of queued packet bits (kept in sync with the ring). */
    std::uint64_t queue_bits = 0;

    // --- link adaptation ---
    /** Filtered SNR estimate (dB) from receiver feedback. */
    float snr_est_db = 0.0f;
    /** Outer-loop offset: nudged up per ACK, down per NACK. */
    float olla_db = 0.0f;
    /** Current MCS (hysteresis: changes only after a dwell). */
    std::uint8_t mcs = 0;
    /** TTIs the preferred MCS has disagreed with the current one. */
    std::uint16_t dwell = 0;

    // --- modelled channel (ground truth for the bypass-path draw) ---
    /** This UE's long-term mean SNR (dB). */
    float snr_mean_db = 0.0f;
    /** AR(1) deviation around the (drifting) mean. */
    float snr_dev_db = 0.0f;
    /** TTI the deviation was last evolved to (lazy evolution). */
    std::uint64_t snr_tti = 0;

    // --- proportional fairness ---
    /** Exponentially averaged served rate (bits/TTI). */
    double avg_rate = 1.0;
    /** TTI avg_rate was last decayed to (lazy decay). */
    std::uint64_t rate_tti = 0;

    // --- HARQ ---
    std::array<HarqProcess, kHarqProcesses> harq{};
    /** Active processes (avoids scanning 8 slots when zero). */
    std::uint8_t harq_active = 0;
    /** TTI of this UE's last grant (one TB per UE per TTI). */
    std::uint64_t last_grant_tti = 0;
    bool ever_granted = false;

    /** Membership flag for the scheduler's active list. */
    bool on_active_list = false;

    /** Per-UE stream: channel evolution + modelled ACK draws. */
    Rng rng{1};

    /** A UE leaves the active list only when fully drained. */
    bool
    idle() const
    {
        return queue.empty() && harq_active == 0;
    }

    /** Index of a free HARQ process, or kHarqProcesses when none. */
    std::size_t
    free_harq() const
    {
        for (std::size_t h = 0; h < kHarqProcesses; ++h) {
            if (!harq[h].active)
                return h;
        }
        return kHarqProcesses;
    }
};

} // namespace lte::mac

#endif // LTE_MAC_UE_HPP

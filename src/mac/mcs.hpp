/**
 * @file
 * The MCS (modulation and coding scheme) ladder used by link
 * adaptation.
 *
 * Each entry pairs one of the PHY's three modulations with an
 * effective code rate and the SNR at which a transport block at that
 * MCS reaches roughly the target BLER (~10%) — the shape of the LTE
 * CQI table (TS 36.213 Table 7.2.3-1) collapsed onto the modulations
 * the benchmark's receiver supports.  The scheduler climbs this
 * ladder with measured/estimated SNR plus an OLLA offset and steps
 * down on NACKs; the modelled-error path (decode bypass) turns the
 * SNR margin against req_snr_db into a block error probability
 * through a logistic waterfall.
 */
#ifndef LTE_MAC_MCS_HPP
#define LTE_MAC_MCS_HPP

#include <cmath>
#include <cstdint>

#include "common/types.hpp"
#include "phy/params.hpp"

namespace lte::mac {

/** One rung of the MCS ladder. */
struct McsEntry
{
    Modulation mod = Modulation::kQpsk;
    /** Effective code rate in 1/1024 units (spec idiom). */
    std::uint32_t code_rate_x1024 = 512;
    /** SNR (dB) at which this MCS runs near the target BLER. */
    float req_snr_db = 0.0f;
};

/** The ladder, lowest (most robust) first. */
inline constexpr McsEntry kMcsTable[] = {
    {Modulation::kQpsk, 128, -5.0f},  // 0
    {Modulation::kQpsk, 256, -2.5f},  // 1
    {Modulation::kQpsk, 512, 0.0f},   // 2
    {Modulation::kQpsk, 683, 2.5f},   // 3
    {Modulation::k16Qam, 512, 5.5f},  // 4
    {Modulation::k16Qam, 683, 8.0f},  // 5
    {Modulation::k64Qam, 512, 10.5f}, // 6
    {Modulation::k64Qam, 768, 14.0f}, // 7
    {Modulation::k64Qam, 922, 17.5f}, // 8
};

inline constexpr std::uint8_t kNumMcs =
    static_cast<std::uint8_t>(sizeof(kMcsTable) / sizeof(kMcsTable[0]));

/** Highest MCS whose SNR requirement is met; 0 when none is. */
inline std::uint8_t
highest_mcs_for(float snr_db)
{
    std::uint8_t best = 0;
    for (std::uint8_t m = 0; m < kNumMcs; ++m) {
        if (kMcsTable[m].req_snr_db <= snr_db)
            best = m;
    }
    return best;
}

/**
 * Transport-block payload bits of a grant: the PHY's raw capacity for
 * (prb, layers, modulation) scaled by the MCS code rate.  Always at
 * least 1 so every grant moves queue bits.
 */
inline std::uint64_t
tb_payload_bits(std::uint8_t mcs, std::uint32_t prb,
                std::uint32_t layers)
{
    phy::UserParams p;
    p.prb = prb;
    p.layers = layers;
    p.mod = kMcsTable[mcs].mod;
    const std::uint64_t cap = phy::capacity_bits(p);
    const std::uint64_t bits =
        cap * kMcsTable[mcs].code_rate_x1024 / 1024;
    return bits > 0 ? bits : 1;
}

/**
 * Modelled block error probability at @p margin_db = SNR − req_snr of
 * the MCS used: a logistic waterfall calibrated so margin 0 sits at
 * ~10% BLER (the ladder's operating point) and −2.2 dB at 50%.
 */
inline float
modelled_bler(float margin_db, float slope_db)
{
    const float s = slope_db > 0.0f ? slope_db : 1.0f;
    // ln(9) offset: bler(0) == 0.1 regardless of the slope.
    const float x = margin_db / s + 2.1972246f;
    return 1.0f / (1.0f + std::exp(x));
}

} // namespace lte::mac

#endif // LTE_MAC_MCS_HPP

/**
 * @file
 * Per-UE HARQ state: the LTE uplink's 8 stop-and-wait processes.
 *
 * A transport block is bound to one process when first granted and
 * keeps it until resolved: an ACK releases the process, a NACK queues
 * a retransmission grant (same PRBs/layers/MCS — chase combining),
 * and exhausting the retransmission budget retires the block as a
 * residual error.  Every offered block therefore ends in exactly one
 * of {delivered, residual}, which is the conservation invariant
 * tests/test_mac.cpp asserts.
 */
#ifndef LTE_MAC_HARQ_HPP
#define LTE_MAC_HARQ_HPP

#include <cstdint>

namespace lte::mac {

/** LTE FDD uplink HARQ processes per UE (TS 36.321). */
inline constexpr std::size_t kHarqProcesses = 8;

/** One stop-and-wait process. */
struct HarqProcess
{
    /** A transport block is bound and unresolved. */
    bool active = false;
    /** Retransmissions already spent on the block. */
    std::uint8_t retx_count = 0;
    /** Grant shape, frozen at first transmission (chase combining). */
    std::uint8_t mcs = 0;
    std::uint8_t layers = 1;
    std::uint16_t prb = 2;
    /** Payload bits the block carries (queue bits drained at issue). */
    std::uint32_t tb_bits = 0;
    /** TTI of the most recent (re)transmission. */
    std::uint64_t issued_tti = 0;
};

} // namespace lte::mac

#endif // LTE_MAC_HARQ_HPP

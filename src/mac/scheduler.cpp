#include "mac/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <string_view>

namespace lte::mac {

namespace {

/**
 * Allocation sizes are granted from a small discrete ladder rather
 * than any of 2..200 PRBs — the spirit of LTE's resource-block-group
 * granularity, and it also bounds the cardinality of the runtime's
 * per-PRB-size input pools so closed-loop runs stay allocation-free
 * once every rung has been seen (tests/test_alloc_free.cpp).
 */
constexpr std::uint32_t kPrbLadder[] = {2, 4, 8, 16, 32, 64, 100, 200};

/** Smallest rung covering @p desired, never exceeding @p cap. */
std::uint32_t
quantize_prb(std::uint32_t desired, std::uint32_t cap)
{
    std::uint32_t chosen = kPrbLadder[0];
    for (std::uint32_t rung : kPrbLadder) {
        if (rung > cap)
            break;
        chosen = rung;
        if (rung >= desired)
            break;
    }
    return chosen;
}

} // namespace

const char *
scheduler_policy_name(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::kRoundRobin:
        return "rr";
      case SchedulerPolicy::kProportionalFair:
        return "pf";
      case SchedulerPolicy::kDeadlineEdf:
        return "edf";
    }
    return "?";
}

SchedulerPolicy
parse_scheduler_policy(const char *name)
{
    const std::string_view s = name != nullptr ? name : "";
    if (s == "rr" || s == "round-robin" || s == "roundrobin")
        return SchedulerPolicy::kRoundRobin;
    if (s == "pf" || s == "proportional-fair")
        return SchedulerPolicy::kProportionalFair;
    if (s == "edf" || s == "deadline" || s == "deadline-edf")
        return SchedulerPolicy::kDeadlineEdf;
    throw std::invalid_argument("unknown scheduler policy: " +
                                std::string(s));
}

void
MacConfig::validate() const
{
    if (cell_id < 1 || cell_id > 511)
        throw std::invalid_argument("MacConfig: cell_id out of range");
    if (n_ues == 0)
        throw std::invalid_argument("MacConfig: n_ues == 0");
    if (arrival_rate < 0.0)
        throw std::invalid_argument("MacConfig: negative arrival_rate");
    if (burst_mean < 1.0)
        throw std::invalid_argument("MacConfig: burst_mean < 1");
    if (packet_bits == 0)
        throw std::invalid_argument("MacConfig: packet_bits == 0");
    if (deadline_ttis == 0)
        throw std::invalid_argument("MacConfig: deadline_ttis == 0");
    if (max_users_per_tti == 0 ||
        max_users_per_tti > kMaxUsersPerSubframe)
        throw std::invalid_argument(
            "MacConfig: max_users_per_tti out of range");
    if (prb_budget < 2 || prb_budget > kMaxPrbPerSubframe)
        throw std::invalid_argument("MacConfig: prb_budget out of range");
    if (max_prb_per_grant < 2 || max_prb_per_grant > prb_budget)
        throw std::invalid_argument(
            "MacConfig: max_prb_per_grant out of range");
    if (fixed_mcs >= kNumMcs)
        throw std::invalid_argument("MacConfig: fixed_mcs out of range");
    if (target_bler <= 0.0 || target_bler >= 1.0)
        throw std::invalid_argument("MacConfig: target_bler not in (0,1)");
    if (snr_alpha <= 0.0f || snr_alpha > 1.0f)
        throw std::invalid_argument("MacConfig: snr_alpha not in (0,1]");
    if (pf_window_ttis < 1.0)
        throw std::invalid_argument("MacConfig: pf_window_ttis < 1");
    if (snr_ar_rho < 0.0f || snr_ar_rho >= 1.0f)
        throw std::invalid_argument("MacConfig: snr_ar_rho not in [0,1)");
    if (bler_gap_alpha <= 0.0 || bler_gap_alpha > 1.0)
        throw std::invalid_argument(
            "MacConfig: bler_gap_alpha not in (0,1]");
}

MacScheduler::MacScheduler(const MacConfig &config) : config_(config)
{
    config_.validate();
    ues_.resize(config_.n_ues);
    active_.reserve(config_.n_ues);
    selected_.reserve(config_.n_ues);
    // Capacity for every HARQ process of every UE: a push can never
    // find the ring full.
    std::size_t cap = 1;
    while (cap < static_cast<std::size_t>(config_.n_ues) * kHarqProcesses + 1)
        cap <<= 1;
    retx_ring_.resize(cap);
    retx_mask_ = cap - 1;
    init_population();
}

void
MacScheduler::init_population()
{
    // One master stream per (seed, cell); UE streams derive from it in
    // index order so "same seed => same run" holds exactly.
    Rng master(cell_stream_seed(config_.seed, config_.cell_id));
    traffic_rng_ = master.split();
    for (std::uint32_t i = 0; i < config_.n_ues; ++i) {
        UeState &ue = ues_[i];
        ue = UeState{};
        ue.id = i + 1;
        ue.rng = master.split();
        ue.layers = static_cast<std::uint8_t>(ue.rng.next_in(1, 4));
        ue.snr_mean_db =
            config_.snr_mean_db +
            config_.snr_spread_db *
                static_cast<float>(ue.rng.next_gaussian());
        ue.snr_dev_db = config_.snr_ar_sigma_db *
                        static_cast<float>(ue.rng.next_gaussian());
        ue.snr_est_db = ue.snr_mean_db;
        ue.mcs = config_.adapt ? highest_mcs_for(ue.snr_est_db)
                               : config_.fixed_mcs;
    }
}

void
MacScheduler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    tti_ = 0;
    rr_cursor_ = 0;
    active_.clear();
    selected_.clear();
    retx_head_ = retx_tail_ = 0;
    outstanding_ = {};
    stats_ = MacStats{};
    finalized_ = false;
    bler_gap_ = 0.0;
    init_population();
}

void
MacScheduler::retx_push(GrantRef ref)
{
    retx_ring_[retx_tail_ & retx_mask_] = ref;
    ++retx_tail_;
}

MacScheduler::GrantRef
MacScheduler::retx_pop()
{
    GrantRef ref = retx_ring_[retx_head_ & retx_mask_];
    ++retx_head_;
    return ref;
}

void
MacScheduler::add_to_active(std::uint32_t ue_index)
{
    UeState &ue = ues_[ue_index];
    if (!ue.on_active_list) {
        ue.on_active_list = true;
        active_.push_back(ue_index);
    }
}

void
MacScheduler::draw_arrivals()
{
    // Aggregate Poisson burst process (Knuth): O(arrivals) per TTI, so
    // a mostly-idle million-UE population costs nothing here.
    const double limit =
        std::exp(-config_.arrival_rate * arrival_scale_);
    std::uint32_t bursts = 0;
    double p = 1.0;
    for (;;) {
        p *= traffic_rng_.next_double();
        if (p <= limit || bursts >= 4096)
            break;
        ++bursts;
    }
    for (std::uint32_t b = 0; b < bursts; ++b) {
        const std::uint32_t ue_index = static_cast<std::uint32_t>(
            traffic_rng_.next_below(config_.n_ues));
        UeState &ue = ues_[ue_index];
        // Geometric burst length with the configured mean (>= 1).
        std::uint32_t packets = 1;
        if (config_.burst_mean > 1.0) {
            const double u = traffic_rng_.next_double();
            const double q = 1.0 - 1.0 / config_.burst_mean;
            if (u > 0.0)
                packets = 1 + static_cast<std::uint32_t>(std::min(
                                  std::log(u) / std::log(q), 63.0));
        }
        for (std::uint32_t k = 0; k < packets; ++k) {
            Packet pkt;
            pkt.arrival_tti = tti_;
            pkt.deadline_tti = tti_ + config_.deadline_ttis;
            pkt.bits = config_.packet_bits;
            ++stats_.packets_arrived;
            stats_.arrived_bits += pkt.bits;
            if (!ue.queue.push(pkt)) {
                ++stats_.overflow_drops;
                stats_.dropped_bits += pkt.bits;
                continue;
            }
            ue.queue_bits += pkt.bits;
        }
        if (!ue.idle())
            add_to_active(ue_index);
    }
}

void
MacScheduler::sweep_deadlines(UeState &ue)
{
    while (!ue.queue.empty() && ue.queue.front().deadline_tti <= tti_) {
        ++stats_.deadline_drops;
        stats_.dropped_bits += ue.queue.front().bits;
        ue.queue_bits -= ue.queue.front().bits;
        ue.queue.pop();
    }
}

float
MacScheduler::snr_true_db(UeState &ue)
{
    const std::uint64_t k = tti_ - ue.snr_tti;
    if (k > 0) {
        const float rho_k =
            std::pow(config_.snr_ar_rho, static_cast<float>(k));
        ue.snr_dev_db =
            rho_k * ue.snr_dev_db +
            config_.snr_ar_sigma_db *
                std::sqrt(std::max(0.0f, 1.0f - rho_k * rho_k)) *
                static_cast<float>(ue.rng.next_gaussian());
        ue.snr_tti = tti_;
    }
    return ue.snr_mean_db +
           config_.snr_drift_db_per_tti * static_cast<float>(tti_) +
           ue.snr_dev_db;
}

void
MacScheduler::decay_avg_rate(UeState &ue)
{
    const std::uint64_t k = tti_ - ue.rate_tti;
    if (k > 0) {
        const double keep = 1.0 - 1.0 / config_.pf_window_ttis;
        ue.avg_rate = std::max(
            ue.avg_rate * std::pow(keep, static_cast<double>(k)), 1e-6);
        ue.rate_tti = tti_;
    }
}

void
MacScheduler::update_mcs(UeState &ue)
{
    if (!config_.adapt) {
        ue.mcs = config_.fixed_mcs;
        return;
    }
    const std::uint8_t preferred =
        highest_mcs_for(ue.snr_est_db + ue.olla_db);
    if (preferred == ue.mcs) {
        ue.dwell = 0;
        return;
    }
    // Hysteresis: the preference must persist for the dwell before the
    // ladder moves, so single noisy reports cannot thrash the MCS.
    if (++ue.dwell >= config_.mcs_dwell_ttis) {
        ue.mcs = preferred;
        ue.dwell = 0;
    }
}

void
MacScheduler::retire_residual(UeState &ue, HarqProcess &proc)
{
    ++stats_.residual_tbs;
    stats_.residual_bits += proc.tb_bits;
    proc.active = false;
    --ue.harq_active;
}

void
MacScheduler::resolve_tb(std::uint32_t ue_index, std::size_t h, bool ack)
{
    UeState &ue = ues_[ue_index];
    HarqProcess &proc = ue.harq[h];
    if (!proc.active)
        return;
    if (ack) {
        ++stats_.delivered_tbs;
        stats_.delivered_bits += proc.tb_bits;
        proc.active = false;
        --ue.harq_active;
        return;
    }
    if (proc.retx_count < config_.max_harq_retx) {
        ++proc.retx_count;
        retx_push(GrantRef{ue_index, static_cast<std::uint8_t>(h)});
        return;
    }
    retire_residual(ue, proc);
}

void
MacScheduler::resolve_outstanding_nack(OutstandingTti &rec)
{
    for (std::uint8_t i = 0; i < rec.n; ++i)
        resolve_tb(rec.refs[i].ue, rec.refs[i].harq, false);
    rec.active = false;
    rec.n = 0;
}

void
MacScheduler::push_grant(phy::SubframeParams &out, OutstandingTti &rec,
                         std::uint32_t ue_index, std::size_t h,
                         bool is_retx)
{
    UeState &ue = ues_[ue_index];
    HarqProcess &proc = ue.harq[h];
    phy::UserParams user;
    user.id = ue.id;
    user.prb = proc.prb;
    user.layers = proc.layers;
    user.mod = kMcsTable[proc.mcs].mod;
    out.users.push_back(user);
    rec.refs[rec.n] = GrantRef{ue_index, static_cast<std::uint8_t>(h)};
    ++rec.n;
    proc.issued_tti = tti_;
    ue.last_grant_tti = tti_;
    ue.ever_granted = true;
    ++stats_.grants;
    if (is_retx)
        ++stats_.retx_grants;
}

void
MacScheduler::next_tti_into(phy::SubframeParams &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    out.subframe_index = tti_;
    out.cell_id = config_.cell_id;
    out.users.clear();
    const std::uint64_t retx_before = stats_.retx_grants;
    const std::uint64_t drops_before = stats_.deadline_drops;

    // Timeout sweep: grants whose subframe never completed (shed
    // without an index at the sample plane, end-of-window losses)
    // resolve as NACKs once they age past the grant timeout; the slot
    // about to be reused must be clear either way.
    if (tti_ >= config_.grant_timeout_ttis) {
        OutstandingTti &old =
            outstanding_[(tti_ - config_.grant_timeout_ttis) %
                         kOutstandingSlots];
        if (old.active &&
            tti_ - old.subframe_index >= config_.grant_timeout_ttis) {
            stats_.timeout_grants += old.n;
            resolve_outstanding_nack(old);
        }
    }
    OutstandingTti &rec = outstanding_[tti_ % kOutstandingSlots];
    if (rec.active) {
        stats_.timeout_grants += rec.n;
        resolve_outstanding_nack(rec);
    }

    draw_arrivals();

    std::uint32_t remaining_prb = config_.prb_budget;

    // 1. HARQ retransmissions first, in NACK order.  Unserveable
    //    entries (budget, one-TB-per-UE-per-TTI) rotate to the back.
    const std::size_t pending = retx_tail_ - retx_head_;
    for (std::size_t i = 0;
         i < pending && out.users.size() < config_.max_users_per_tti;
         ++i) {
        const GrantRef ref = retx_pop();
        UeState &ue = ues_[ref.ue];
        HarqProcess &proc = ue.harq[ref.harq];
        if (!proc.active)
            continue;
        if ((ue.ever_granted && ue.last_grant_tti == tti_) ||
            proc.prb > remaining_prb) {
            retx_push(ref);
            continue;
        }
        push_grant(out, rec, ref.ue, ref.harq, true);
        remaining_prb -= proc.prb;
    }

    // 2. One pass over the active list: compact drained UEs, drop
    //    expired packets, and collect eligible new-data candidates
    //    with the policy's selection key (smaller = sooner).
    selected_.clear();
    std::size_t write = 0;
    const std::size_t n_before = active_.size();
    for (std::size_t i = 0; i < n_before; ++i) {
        const std::uint32_t ue_index = active_[i];
        UeState &ue = ues_[ue_index];
        sweep_deadlines(ue);
        if (ue.idle()) {
            ue.on_active_list = false;
            if (rr_cursor_ > write)
                --rr_cursor_;
            continue;
        }
        active_[write] = ue_index;
        const bool eligible =
            !ue.queue.empty() &&
            !(ue.ever_granted && ue.last_grant_tti == tti_) &&
            ue.free_harq() < kHarqProcesses;
        if (eligible) {
            double key = 0.0;
            switch (config_.policy) {
              case SchedulerPolicy::kRoundRobin:
                key = static_cast<double>(
                    (write + n_before - rr_cursor_) % n_before);
                break;
              case SchedulerPolicy::kProportionalFair: {
                decay_avg_rate(ue);
                const double inst = static_cast<double>(
                    tb_payload_bits(ue.mcs, 12, ue.layers));
                key = -(inst / ue.avg_rate);
                break;
              }
              case SchedulerPolicy::kDeadlineEdf:
                key = static_cast<double>(ue.queue.front().deadline_tti);
                break;
            }
            selected_.push_back(Candidate{ue_index, key});
        }
        ++write;
    }
    active_.resize(write);
    if (rr_cursor_ >= active_.size())
        rr_cursor_ = 0;

    // 3. Policy selection: the k smallest keys (deterministic
    //    tie-break on UE index), then grants while PRBs remain.
    const std::size_t room =
        config_.max_users_per_tti > out.users.size()
            ? config_.max_users_per_tti - out.users.size()
            : 0;
    const auto by_key = [](const Candidate &a, const Candidate &b) {
        return a.key != b.key ? a.key < b.key : a.ue < b.ue;
    };
    if (selected_.size() > room) {
        std::nth_element(selected_.begin(), selected_.begin() + room,
                         selected_.end(), by_key);
        selected_.resize(room);
    }
    std::sort(selected_.begin(), selected_.end(), by_key);

    double last_rr_key = -1.0;
    for (const Candidate &cand : selected_) {
        if (remaining_prb < 2)
            break;
        UeState &ue = ues_[cand.ue];
        const std::size_t h = ue.free_harq();
        const std::uint8_t mcs =
            config_.adapt ? ue.mcs : config_.fixed_mcs;
        // Size the allocation to the backlog at this MCS.
        const std::uint64_t per_pair =
            tb_payload_bits(mcs, 2, ue.layers);
        const std::uint32_t desired =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                (ue.queue_bits * 2 + per_pair - 1) / per_pair,
                kMaxPrbPerSubframe));
        const std::uint32_t prb = quantize_prb(
            desired,
            std::min(config_.max_prb_per_grant, remaining_prb));

        HarqProcess &proc = ue.harq[h];
        proc.active = true;
        proc.retx_count = 0;
        proc.mcs = mcs;
        proc.layers = ue.layers;
        proc.prb = static_cast<std::uint16_t>(prb);
        const std::uint64_t tb = std::min<std::uint64_t>(
            tb_payload_bits(mcs, prb, ue.layers), ue.queue_bits);
        proc.tb_bits = static_cast<std::uint32_t>(tb);
        ++ue.harq_active;

        // Drain the queue FIFO; the head packet may go partially.
        std::uint64_t rem = tb;
        while (rem > 0 && !ue.queue.empty()) {
            Packet &pkt = ue.queue.front();
            if (pkt.bits <= rem) {
                rem -= pkt.bits;
                ue.queue_bits -= pkt.bits;
                ue.queue.pop();
            } else {
                pkt.bits -= static_cast<std::uint32_t>(rem);
                ue.queue_bits -= rem;
                rem = 0;
            }
        }

        push_grant(out, rec, cand.ue, h, false);
        remaining_prb -= prb;
        ++stats_.offered_tbs;
        stats_.offered_bits += proc.tb_bits;
        if (config_.policy == SchedulerPolicy::kProportionalFair) {
            ue.avg_rate += static_cast<double>(proc.tb_bits) /
                           config_.pf_window_ttis;
        }
        if (config_.policy == SchedulerPolicy::kRoundRobin)
            last_rr_key = std::max(last_rr_key, cand.key);
    }
    if (config_.policy == SchedulerPolicy::kRoundRobin &&
        last_rr_key >= 0.0 && !active_.empty()) {
        rr_cursor_ = (rr_cursor_ +
                      static_cast<std::size_t>(last_rr_key) + 1) %
                     active_.size();
    }

    // Retransmissions are already counted in offered_*; only register
    // the TTI when something was granted.
    rec.subframe_index = tti_;
    rec.active = rec.n > 0;

    ++stats_.ttis;
    if (grants_counter_ != nullptr) {
        grants_counter_->add(out.users.size());
        retx_counter_->add(stats_.retx_grants - retx_before);
        deadline_drop_counter_->add(stats_.deadline_drops - drops_before);
        if (queue_bits_gauge_ != nullptr) {
            std::uint64_t queued = 0;
            for (std::uint32_t idx : active_)
                queued += ues_[idx].queue_bits;
            queue_bits_gauge_->set(static_cast<double>(queued));
        }
        if (active_ues_gauge_ != nullptr)
            active_ues_gauge_->set(static_cast<double>(active_.size()));
    }
    if (tracer_ != nullptr) {
        tracer_->record_instant(
            tracer_slot_, obs::SpanKind::kMacGrant, tracer_->now_ns(),
            obs::make_cell_arg(config_.cell_id == 1 ? 0 : config_.cell_id,
                               tti_));
    }
    ++tti_;
}

phy::SubframeParams
MacScheduler::next_subframe()
{
    phy::SubframeParams out;
    next_tti_into(out);
    return out;
}

void
MacScheduler::on_subframe_complete(const runtime::SubframeOutcome &outcome,
                                   phy::DegradeLevel /*level*/)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finalized_)
        return;
    if (outcome.cell_id != config_.cell_id) {
        ++stats_.unmatched_feedback;
        return;
    }
    OutstandingTti &rec =
        outstanding_[outcome.subframe_index % kOutstandingSlots];
    if (!rec.active || rec.subframe_index != outcome.subframe_index) {
        // Zero-grant TTIs were never registered; anything else is
        // feedback for grants this scheduler did not issue (pinned
        // mode, or a stale record past the timeout sweep).
        if (!outcome.users.empty())
            ++stats_.unmatched_feedback;
        return;
    }
    const float down_step =
        config_.olla_step_db *
        static_cast<float>((1.0 - config_.target_bler) /
                           config_.target_bler);
    const std::uint64_t acks_before = stats_.acks;
    const std::uint64_t nacks_before = stats_.nacks;
    for (std::uint8_t i = 0; i < rec.n; ++i) {
        const GrantRef ref = rec.refs[i];
        UeState &ue = ues_[ref.ue];
        const HarqProcess &proc = ue.harq[ref.harq];
        const runtime::UserOutcome *user = nullptr;
        for (const runtime::UserOutcome &u : outcome.users) {
            if (u.user_id == ue.id) {
                user = &u;
                break;
            }
        }
        bool ack = false;
        bool have_channel_info = false;
        float snr_obs = 0.0f;
        if (user != nullptr) {
            if (!user->crc_modelled) {
                // Real turbo verdict: trust the CRC, read SNR off the
                // measured constellation EVM.
                ++stats_.real_feedback;
                ack = user->crc_ok;
                if (config_.calibrate_bler) {
                    // One observed-vs-modelled sample: what would the
                    // logistic model have predicted for this block?
                    const float margin =
                        snr_true_db(ue) - kMcsTable[proc.mcs].req_snr_db;
                    const double predicted = static_cast<double>(
                        modelled_bler(margin, config_.bler_slope_db));
                    bler_gap_ += config_.bler_gap_alpha *
                                 ((ack ? 0.0 : 1.0) - predicted -
                                  bler_gap_);
                }
                if (user->evm_rms > 0.0f) {
                    snr_obs = -20.0f * std::log10(user->evm_rms);
                    have_channel_info = true;
                }
            } else {
                // crc_ok carries no decode information on this path
                // (pass-through hardens bits that were never encoded;
                // the bypass ladder skipped the decoder) — draw the
                // verdict from the modelled channel instead.
                ++stats_.modelled_feedback;
                const float truth = snr_true_db(ue);
                const float margin =
                    truth - kMcsTable[proc.mcs].req_snr_db;
                double p = static_cast<double>(
                    modelled_bler(margin, config_.bler_slope_db));
                if (config_.calibrate_bler)
                    p = std::clamp(p + bler_gap_, 0.0, 1.0);
                ack = !ue.rng.next_bool(p);
                snr_obs = truth +
                          config_.cqi_noise_db *
                              static_cast<float>(ue.rng.next_gaussian());
                have_channel_info = true;
            }
        }
        if (have_channel_info) {
            ue.snr_est_db +=
                config_.snr_alpha * (snr_obs - ue.snr_est_db);
        }
        if (config_.adapt) {
            ue.olla_db = std::clamp(
                ue.olla_db + (ack ? config_.olla_step_db : -down_step),
                -10.0f, 10.0f);
        }
        if (ack)
            ++stats_.acks;
        else
            ++stats_.nacks;
        resolve_tb(ref.ue, ref.harq, ack);
        update_mcs(ue);
    }
    rec.active = false;
    rec.n = 0;
    if (acks_counter_ != nullptr) {
        acks_counter_->add(stats_.acks - acks_before);
        nacks_counter_->add(stats_.nacks - nacks_before);
    }
}

void
MacScheduler::on_subframe_shed(std::uint32_t cell_id,
                               std::uint64_t subframe_index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finalized_ || cell_id != config_.cell_id)
        return;
    ++stats_.shed_ttis;
    OutstandingTti &rec = outstanding_[subframe_index % kOutstandingSlots];
    if (!rec.active || rec.subframe_index != subframe_index)
        return;
    // The receiver never saw the subframe: every grant NACKs, with no
    // channel information to update CQI or OLLA from.
    stats_.nacks += rec.n;
    resolve_outstanding_nack(rec);
}

void
MacScheduler::finalize()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finalized_)
        return;
    finalized_ = true;
    // In-flight grants and queued retransmissions will never get a
    // verdict or another airing: retire them as residual so the
    // conservation invariant closes exactly.
    for (OutstandingTti &rec : outstanding_) {
        if (!rec.active)
            continue;
        for (std::uint8_t i = 0; i < rec.n; ++i) {
            UeState &ue = ues_[rec.refs[i].ue];
            HarqProcess &proc = ue.harq[rec.refs[i].harq];
            if (proc.active)
                retire_residual(ue, proc);
        }
        rec.active = false;
        rec.n = 0;
    }
    while (!retx_empty()) {
        const GrantRef ref = retx_pop();
        UeState &ue = ues_[ref.ue];
        HarqProcess &proc = ue.harq[ref.harq];
        if (proc.active)
            retire_residual(ue, proc);
    }
    if (residual_counter_ != nullptr)
        residual_counter_->add(stats_.residual_tbs);
}

MacStats
MacScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::uint64_t
MacScheduler::queued_bits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (std::uint32_t idx : active_)
        total += ues_[idx].queue_bits;
    return total;
}

std::size_t
MacScheduler::active_ues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return active_.size();
}

void
MacScheduler::set_arrival_scale(double scale)
{
    if (scale < 0.0)
        throw std::invalid_argument("negative arrival scale");
    std::lock_guard<std::mutex> lock(mutex_);
    arrival_scale_ = scale;
}

double
MacScheduler::arrival_scale() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return arrival_scale_;
}

double
MacScheduler::bler_gap() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bler_gap_;
}

void
MacScheduler::bind_obs(obs::MetricsRegistry *registry, obs::Tracer *tracer,
                       std::size_t slot)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (registry != nullptr) {
        grants_counter_ = &registry->counter("mac.grants");
        retx_counter_ = &registry->counter("mac.retx_grants");
        acks_counter_ = &registry->counter("mac.acks");
        nacks_counter_ = &registry->counter("mac.nacks");
        residual_counter_ = &registry->counter("mac.residual_tbs");
        deadline_drop_counter_ = &registry->counter("mac.deadline_drops");
        queue_bits_gauge_ = &registry->gauge("mac.queued_bits");
        active_ues_gauge_ = &registry->gauge("mac.active_ues");
    }
    tracer_ = tracer;
    tracer_slot_ = slot;
}

} // namespace lte::mac

/**
 * @file
 * Adapters that plug the MAC into the engines' two seams.
 *
 * GrantSource side: GrantModel is a workload::ParameterModel whose
 * next_subframe() draws grants from a MacScheduler, so every engine
 * (serial, work-stealing, streaming, multi-cell, offloaded-io) can be
 * driven by the closed loop through the seam the random models already
 * use — no engine changes.  In *pinned* mode the adapter instead
 * delegates verbatim to an inner model (the random draw), which makes
 * the PHY input sequence bit-identical to the open-loop engines by
 * construction while the MAC machinery idles beside it; feedback then
 * lands unmatched and is merely counted (MacStats.unmatched_feedback),
 * proving the closed loop is a pure overlay on the benchmark.
 *
 * Feedback side: FeedbackRouter fans one engine-wide
 * SubframeFeedbackSink out to per-cell MacSchedulers by cell id, for
 * multi-cell runs where each cell owns its own MAC.
 */
#ifndef LTE_MAC_GRANT_MODEL_HPP
#define LTE_MAC_GRANT_MODEL_HPP

#include <array>
#include <atomic>
#include <cstdint>

#include "mac/scheduler.hpp"
#include "workload/parameter_model.hpp"

namespace lte::mac {

/** ParameterModel view of a MacScheduler (see file comment). */
class GrantModel final : public workload::ParameterModel
{
  public:
    /**
     * Closed-loop mode: grants come from @p scheduler (borrowed, must
     * outlive the model).
     */
    explicit GrantModel(MacScheduler &scheduler)
        : scheduler_(&scheduler)
    {
    }

    /**
     * Pinned mode: delegate every draw to @p inner (borrowed) and
     * leave @p scheduler untouched on the grant path.
     */
    GrantModel(MacScheduler &scheduler, workload::ParameterModel &inner)
        : scheduler_(&scheduler), inner_(&inner)
    {
    }

    phy::SubframeParams
    next_subframe() override
    {
        if (inner_ != nullptr)
            return inner_->next_subframe();
        scheduler_->next_tti_into(scratch_);
        return scratch_;
    }

    void
    reset() override
    {
        if (inner_ != nullptr)
            inner_->reset();
        scheduler_->reset();
    }

    bool pinned() const { return inner_ != nullptr; }
    MacScheduler &scheduler() { return *scheduler_; }

  private:
    MacScheduler *scheduler_ = nullptr;
    workload::ParameterModel *inner_ = nullptr;
    phy::SubframeParams scratch_;
};

/**
 * Routes engine feedback to per-cell sinks by cell id (1..511).
 * Registration happens at setup; delivery is a table lookup, safe from
 * the dispatch thread.  Unrouted cells are counted, not dropped
 * silently.
 */
class FeedbackRouter final : public runtime::SubframeFeedbackSink
{
  public:
    void
    attach(std::uint32_t cell_id, runtime::SubframeFeedbackSink &sink)
    {
        if (cell_id < sinks_.size())
            sinks_[cell_id] = &sink;
    }

    void
    on_subframe_complete(const runtime::SubframeOutcome &outcome,
                         phy::DegradeLevel level) override
    {
        runtime::SubframeFeedbackSink *sink =
            outcome.cell_id < sinks_.size() ? sinks_[outcome.cell_id]
                                            : nullptr;
        if (sink != nullptr)
            sink->on_subframe_complete(outcome, level);
        else
            unrouted_.fetch_add(1, std::memory_order_relaxed);
    }

    void
    on_subframe_shed(std::uint32_t cell_id,
                     std::uint64_t subframe_index) override
    {
        runtime::SubframeFeedbackSink *sink =
            cell_id < sinks_.size() ? sinks_[cell_id] : nullptr;
        if (sink != nullptr)
            sink->on_subframe_shed(cell_id, subframe_index);
        else
            unrouted_.fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t
    unrouted() const
    {
        return unrouted_.load(std::memory_order_relaxed);
    }

  private:
    std::array<runtime::SubframeFeedbackSink *, 512> sinks_{};
    std::atomic<std::uint64_t> unrouted_{0};
};

} // namespace lte::mac

#endif // LTE_MAC_GRANT_MODEL_HPP

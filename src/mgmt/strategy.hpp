/**
 * @file
 * The power-management strategies compared in the paper's evaluation
 * (Sec. VI-B/C, Table I and Table II).
 */
#ifndef LTE_MGMT_STRATEGY_HPP
#define LTE_MGMT_STRATEGY_HPP

namespace lte::mgmt {

/** Core-deactivation policy. */
enum class Strategy
{
    /** All worker cores stay active and spin when idle. */
    kNoNap,
    /** Reactive: a core naps when it finds no work, waking
     *  periodically to poll (paper IDLE). */
    kIdle,
    /** Proactive: cores beyond the estimated requirement nap
     *  (paper NAP, Eq. 5). */
    kNap,
    /** Both: estimated deactivation plus reactive napping of the
     *  remaining active-but-idle cores (paper NAP+IDLE). */
    kNapIdle,
    /** NAP+IDLE plus analytical power gating of 8-core domains
     *  (paper Sec. VI-C, Eqs. 6-9). */
    kPowerGating,
};

/** Display name matching the paper's figures. */
constexpr const char *
strategy_name(Strategy s)
{
    switch (s) {
      case Strategy::kNoNap: return "NONAP";
      case Strategy::kIdle: return "IDLE";
      case Strategy::kNap: return "NAP";
      case Strategy::kNapIdle: return "NAP+IDLE";
      case Strategy::kPowerGating: return "PowerGating";
    }
    return "?";
}

/** All strategies in the paper's presentation order. */
inline constexpr Strategy kAllStrategies[] = {
    Strategy::kNoNap, Strategy::kIdle, Strategy::kNap,
    Strategy::kNapIdle, Strategy::kPowerGating,
};

} // namespace lte::mgmt

#endif // LTE_MGMT_STRATEGY_HPP

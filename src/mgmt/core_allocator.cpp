#include "mgmt/core_allocator.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace lte::mgmt {

std::uint32_t
discretise_to_domains(std::uint32_t active_cores,
                      std::uint32_t domain_size,
                      std::uint32_t total_cores)
{
    LTE_CHECK(domain_size >= 1, "domain size must be >= 1");
    LTE_CHECK(total_cores >= domain_size, "chip smaller than a domain");
    const auto domains = static_cast<std::uint32_t>(
        ceil_div(active_cores, domain_size));
    return std::min(domains * domain_size, total_cores);
}

std::vector<std::uint32_t>
partition_domains(const std::vector<std::uint32_t> &demands,
                  std::uint32_t domain_size, std::uint32_t total_cores)
{
    LTE_CHECK(!demands.empty(), "need at least one cell demand");
    LTE_CHECK(domain_size >= 1, "domain size must be >= 1");
    const std::uint32_t total_domains = total_cores / domain_size;
    const auto n_cells = static_cast<std::uint32_t>(demands.size());
    LTE_CHECK(total_domains >= n_cells,
              "chip must hold at least one domain per cell");

    std::vector<std::uint32_t> want(demands.size());
    std::uint64_t want_sum = 0;
    for (std::size_t c = 0; c < demands.size(); ++c) {
        want[c] = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   ceil_div(demands[c], domain_size)));
        want_sum += want[c];
    }

    std::vector<std::uint32_t> granted(demands.size());
    if (want_sum <= total_domains) {
        granted = want;
    } else {
        // Largest-remainder apportionment of the chip's domains in
        // proportion to the requests, with a one-domain floor.
        const std::uint32_t spare = total_domains - n_cells;
        std::uint64_t floor_sum = 0;
        std::vector<std::pair<std::uint64_t, std::size_t>> remainders;
        remainders.reserve(demands.size());
        for (std::size_t c = 0; c < demands.size(); ++c) {
            // Apportion the spare domains over the above-floor demand.
            const std::uint64_t over = want[c] - 1;
            const std::uint64_t over_sum = want_sum - n_cells;
            const std::uint64_t num = over * spare;
            const auto share =
                static_cast<std::uint32_t>(num / over_sum);
            granted[c] = 1 + share;
            floor_sum += granted[c];
            remainders.emplace_back(num % over_sum, c);
        }
        // Hand the leftover domains to the largest remainders (ties
        // to the lower cell index, keeping the result deterministic).
        std::sort(remainders.begin(), remainders.end(),
                  [](const auto &a, const auto &b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                  });
        std::uint64_t leftover = total_domains - floor_sum;
        for (std::size_t i = 0; leftover > 0; ++i, --leftover)
            ++granted[remainders[i % remainders.size()].second];
    }

    for (auto &g : granted)
        g *= domain_size;
    return granted;
}

GatingPlanner::GatingPlanner(std::uint32_t domain_size,
                             std::uint32_t total_cores,
                             std::uint32_t lookahead,
                             std::uint32_t history)
    : domain_size_(domain_size), total_cores_(total_cores),
      lookahead_(lookahead), history_(history)
{
    LTE_CHECK(domain_size >= 1 && total_cores >= domain_size,
              "invalid domain geometry");
}

void
GatingPlanner::note_decision(std::uint32_t powered)
{
    ++stats_.decisions;
    stats_.peak_powered = std::max(stats_.peak_powered, powered);
    if (stats_.decisions > 1 && powered != last_powered_) {
        ++stats_.switch_events;
        const std::uint32_t delta = powered > last_powered_
                                        ? powered - last_powered_
                                        : last_powered_ - powered;
        stats_.domains_switched += delta / domain_size_;
    }
    last_powered_ = powered;
}

std::vector<std::uint32_t>
GatingPlanner::drain_ready()
{
    std::vector<std::uint32_t> decisions;
    while (emitted_ + lookahead_ < fed_) {
        // Window for subframe `emitted_`: indices
        // [emitted_ - history_, emitted_ + lookahead_], clamped at 0.
        const std::uint64_t lo =
            emitted_ >= history_ ? emitted_ - history_ : 0;
        // window_ front currently corresponds to index `lo` after the
        // pruning done below on earlier iterations.
        std::uint32_t powered = 0;
        const std::uint64_t hi = emitted_ + lookahead_;
        for (std::uint64_t i = lo; i <= hi; ++i) {
            const std::uint64_t offset = i - front_index_;
            powered = std::max(powered,
                               window_[static_cast<std::size_t>(offset)]);
        }
        decisions.push_back(powered);
        note_decision(powered);
        ++emitted_;
        // Prune entries older than any future window needs.
        const std::uint64_t needed_from =
            emitted_ >= history_ ? emitted_ - history_ : 0;
        while (front_index_ < needed_from) {
            window_.pop_front();
            ++front_index_;
        }
    }
    return decisions;
}

std::vector<std::uint32_t>
GatingPlanner::push(std::uint32_t active_cores)
{
    window_.push_back(
        discretise_to_domains(active_cores, domain_size_, total_cores_));
    ++fed_;
    return drain_ready();
}

std::vector<std::uint32_t>
GatingPlanner::finish()
{
    std::vector<std::uint32_t> decisions;
    while (emitted_ < fed_) {
        const std::uint64_t lo =
            emitted_ >= history_ ? emitted_ - history_ : 0;
        const std::uint64_t hi =
            std::min(emitted_ + lookahead_, fed_ - 1);
        std::uint32_t powered = 0;
        for (std::uint64_t i = lo; i <= hi; ++i) {
            const std::uint64_t offset = i - front_index_;
            powered = std::max(powered,
                               window_[static_cast<std::size_t>(offset)]);
        }
        decisions.push_back(powered);
        note_decision(powered);
        ++emitted_;
        const std::uint64_t needed_from =
            emitted_ >= history_ ? emitted_ - history_ : 0;
        while (front_index_ < needed_from && !window_.empty()) {
            window_.pop_front();
            ++front_index_;
        }
    }
    return decisions;
}

} // namespace lte::mgmt

#include "mgmt/power_policy.hpp"

#include "common/check.hpp"

namespace lte::mgmt {

void
PowerPolicy::validate() const
{
    LTE_CHECK(dvfs_margin >= 0.0 && dvfs_margin <= 1.0,
              "DVFS margin must be a fraction");
    LTE_CHECK(dvfs_min_scale > 0.0 && dvfs_min_scale <= 1.0,
              "DVFS floor must be in (0, 1]");
    LTE_CHECK(domain_size >= 1 && domain_size <= 64,
              "domain size must be 1..64");
    if (domain_machine) {
        LTE_CHECK(proactive,
                  "domain machine needs the proactive watermark");
        LTE_CHECK(!dvfs,
                  "domain machine replaces continuous DVFS with rungs");
        LTE_CHECK(!rungs.empty(),
                  "domain machine needs at least one f-V rung");
    }
    double prev = 0.0;
    for (double r : rungs) {
        LTE_CHECK(r > prev && r <= 1.0,
                  "rungs must ascend within (0, 1]");
        prev = r;
    }
    if (!rungs.empty())
        LTE_CHECK(rungs.back() == 1.0,
                  "top rung must be the nominal clock");
    LTE_CHECK(costs.gate_wake_s >= 0.0 && costs.rung_switch_s >= 0.0 &&
                  costs.gate_energy_j >= 0.0 &&
                  costs.rung_energy_j >= 0.0,
              "transition costs must be non-negative");
}

PowerPolicy
PowerPolicy::nonap()
{
    PowerPolicy p;
    p.label = Strategy::kNoNap;
    p.name = "NONAP";
    return p;
}

PowerPolicy
PowerPolicy::idle()
{
    PowerPolicy p;
    p.label = Strategy::kIdle;
    p.reactive_idle = true;
    p.name = "IDLE";
    return p;
}

PowerPolicy
PowerPolicy::nap()
{
    PowerPolicy p;
    p.label = Strategy::kNap;
    p.proactive = true;
    p.name = "NAP";
    return p;
}

PowerPolicy
PowerPolicy::nap_idle()
{
    PowerPolicy p;
    p.label = Strategy::kNapIdle;
    p.proactive = true;
    p.reactive_idle = true;
    p.name = "NAP+IDLE";
    return p;
}

PowerPolicy
PowerPolicy::power_gating()
{
    PowerPolicy p;
    p.label = Strategy::kPowerGating;
    p.proactive = true;
    p.reactive_idle = true;
    p.analytical_gating = true;
    p.name = "PowerGating";
    return p;
}

PowerPolicy
PowerPolicy::from_strategy(Strategy s)
{
    switch (s) {
      case Strategy::kNoNap: return nonap();
      case Strategy::kIdle: return idle();
      case Strategy::kNap: return nap();
      case Strategy::kNapIdle: return nap_idle();
      case Strategy::kPowerGating: return power_gating();
    }
    return nonap();
}

PowerPolicy
PowerPolicy::domain_dvfs()
{
    PowerPolicy p;
    p.label = Strategy::kPowerGating; // closest paper analogue
    p.proactive = true;
    p.reactive_idle = true;
    p.domain_machine = true;
    p.rungs = {0.25, 0.5, 0.75, 1.0};
    p.name = "DOMAIN-DVFS";
    return p;
}

std::vector<PowerPolicy>
PowerPolicy::all_presets()
{
    return {nonap(),    idle(),         nap(),
            nap_idle(), power_gating(), domain_dvfs()};
}

} // namespace lte::mgmt

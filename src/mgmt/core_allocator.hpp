/**
 * @file
 * Streaming planners that turn per-subframe activity estimates into
 * core counts: the clock-gating plan (Eq. 5 output, used by NAP) and
 * the power-gating plan (Eqs. 6-7: 8-core domain discretisation plus
 * a five-subframe provisioning window).
 */
#ifndef LTE_MGMT_CORE_ALLOCATOR_HPP
#define LTE_MGMT_CORE_ALLOCATOR_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "mgmt/estimator.hpp"

namespace lte::mgmt {

/**
 * Eq. 6: discretise an active-core count up to whole power domains.
 */
std::uint32_t discretise_to_domains(std::uint32_t active_cores,
                                    std::uint32_t domain_size,
                                    std::uint32_t total_cores);

/**
 * Partition the chip's power domains across cells from their core
 * demands (multi-cell Eq. 6).  Each cell asks for
 * ceil(demand / domain_size) domains (at least one: a served cell can
 * never be fully powered off, its control channels still arrive every
 * TTI).  When the requests fit the chip they are granted verbatim;
 * when they overshoot, the domains are apportioned proportionally to
 * the requests by largest remainder, still respecting the one-domain
 * floor per cell.
 *
 * @param demands      per-cell active-core demand (Eq. 5 output)
 * @param domain_size  cores per power domain (paper: 8)
 * @param total_cores  chip size; must hold >= demands.size() domains
 * @return per-cell powered core counts (multiples of domain_size),
 *         index-aligned with @p demands
 */
std::vector<std::uint32_t>
partition_domains(const std::vector<std::uint32_t> &demands,
                  std::uint32_t domain_size, std::uint32_t total_cores);

/**
 * Observability tallies of gating decisions: every change in the
 * powered-core count is a domain switch event, each of which costs
 * the paper's 15 mW on/off overhead (Eq. 9).
 */
struct GatingStats
{
    std::uint64_t decisions = 0;
    std::uint64_t switch_events = 0;   ///< powered count changed
    std::uint64_t domains_switched = 0;///< |delta| / domain_size summed
    std::uint32_t peak_powered = 0;
};

/**
 * The power-gating provisioning window (Eq. 7): the number of
 * powered-on cores during subframe i is the maximum of the
 * domain-discretised demand over subframes i-2 .. i+2 — input
 * parameters are known two subframes ahead, and up to three subframes
 * are concurrently in flight.
 */
class GatingPlanner
{
  public:
    /**
     * @param domain_size  cores per power domain (paper: 8)
     * @param total_cores  chip size (paper: 64)
     * @param lookahead    future subframes known (paper: 2)
     * @param history      past subframes still in flight (paper: 2)
     */
    GatingPlanner(std::uint32_t domain_size, std::uint32_t total_cores,
                  std::uint32_t lookahead = 2, std::uint32_t history = 2);

    /**
     * Feed the active-core demand of the next subframe; returns the
     * powered-core count for the subframe whose decision is now
     * complete, or no value while the pipeline is still filling.
     *
     * The caller feeds demands in subframe order; decisions emerge
     * `lookahead` subframes behind the input.
     */
    std::vector<std::uint32_t> push(std::uint32_t active_cores);

    /** Flush decisions for the trailing subframes at end of run. */
    std::vector<std::uint32_t> finish();

    /** Decision tallies since construction. */
    const GatingStats &stats() const { return stats_; }

  private:
    std::uint32_t domain_size_;
    std::uint32_t total_cores_;
    std::uint32_t lookahead_;
    std::uint32_t history_;
    std::deque<std::uint32_t> window_; ///< discretised demands
    std::uint64_t front_index_ = 0;    ///< subframe index of window_[0]
    std::uint64_t fed_ = 0;
    std::uint64_t emitted_ = 0;
    GatingStats stats_;
    std::uint32_t last_powered_ = 0;

    /** Record one emitted decision in the tallies. */
    void note_decision(std::uint32_t powered);
    std::vector<std::uint32_t> drain_ready();
};

} // namespace lte::mgmt

#endif // LTE_MGMT_CORE_ALLOCATOR_HPP

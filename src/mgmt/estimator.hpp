/**
 * @file
 * Subframe workload estimation (paper Sec. VI-A).
 *
 * Activity is linear in a user's PRB count with a slope k_{L,M} that
 * depends on layers L and modulation M (Fig. 11, Eq. 3); a subframe's
 * activity is the sum over its users (Eq. 4).  The CalibrationTable
 * holds the twelve slopes, fitted from steady-state activity
 * measurements exactly as the paper does.
 */
#ifndef LTE_MGMT_ESTIMATOR_HPP
#define LTE_MGMT_ESTIMATOR_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "phy/params.hpp"

namespace lte::mgmt {

/** One steady-state calibration observation. */
struct CalibrationSample
{
    std::uint32_t prb = 0;
    double activity = 0.0; ///< measured activity in [0, 1]
    /** Relative weight of this observation in the fit — set to the
     *  traffic mix's density at this allocation size so the fitted
     *  slope is unbiased for the users the estimator will see. */
    double weight = 1.0;
};

/**
 * The k_{L,M} slope table: activity per PRB for each (layers,
 * modulation) configuration.
 */
class CalibrationTable
{
  public:
    CalibrationTable() = default;

    /** Set a slope directly. */
    void set(std::uint32_t layers, Modulation mod, double k_per_prb);

    /** @return the slope for a configuration (0 if never set). */
    double get(std::uint32_t layers, Modulation mod) const;

    /**
     * Weighted through-origin fit of activity = k * PRBs for one
     * configuration's sample set: k = sum(w*y) / sum(w*x).
     */
    void fit(std::uint32_t layers, Modulation mod,
             const std::vector<CalibrationSample> &samples);

    /** True once every (layers, modulation) slot holds a slope > 0. */
    bool complete() const;

  private:
    static std::size_t index(std::uint32_t layers, Modulation mod);

    std::array<double, kMaxLayers * 3> k_{};
};

/**
 * Observability tallies of estimator decisions: how often Eq. 4
 * saturated and how often Eq. 5 was clamped at either bound.  Updated
 * by the (single) thread driving the estimator; exported into the
 * study's metrics registry.
 */
struct EstimatorStats
{
    std::uint64_t subframe_estimates = 0;
    std::uint64_t saturated_estimates = 0; ///< Eq. 4 clamped at 1.0
    std::uint64_t core_decisions = 0;
    std::uint64_t clamped_low = 0;  ///< Eq. 5 raised to the floor
    std::uint64_t clamped_high = 0; ///< Eq. 5 capped at max_cores
    /** Estimates raised above the single-subframe Eq. 4 value because
     *  the streaming engine reported a non-empty backlog. */
    std::uint64_t backlog_boosts = 0;
    /** Estimates made under a degraded cost model (any shed-ladder
     *  level) after an admission controller flipped a queued subframe. */
    std::uint64_t degraded_estimates = 0;
};

/**
 * How the estimator prices the turbo decode stage.  Mirrors the
 * receiver configuration (use_real_turbo and the iteration budgets) so
 * the analytical shed-ladder cost ratios are computed against the same
 * chain the calibration slopes were fitted on.  The default prices the
 * pass-through pipeline (no decode tasks).
 */
struct DecodePricing
{
    bool real_turbo = false;
    /** Full-chain iteration budget (ReceiverConfig::turbo_iterations). */
    std::uint32_t iterations = 6;
    /** Budget under DegradeLevel::kReducedIterations. */
    std::uint32_t reduced_iterations = 2;
};

/** The pricing a receiver configuration implies. */
inline DecodePricing
decode_pricing_for(const phy::ReceiverConfig &config)
{
    return DecodePricing{config.use_real_turbo, config.turbo_iterations,
                         config.turbo_reduced_iterations};
}

/** Implements Eqs. 3-5 of the paper. */
class WorkloadEstimator
{
  public:
    explicit WorkloadEstimator(CalibrationTable table);

    /** Eq. 3: estimated activity contribution of one user. */
    double estimate_user(const phy::UserParams &user) const;

    /**
     * Eq. 3 under the degraded receive chain: the calibrated slope is
     * scaled by the op model's degraded-to-full cost ratio for this
     * user's configuration (per-layer MRC weights instead of the MMSE
     * solve).  The slopes themselves are fitted on the full chain —
     * degradation is an admission-time decision, far too rare to
     * calibrate separately — so the analytical ratio is how a planned
     * degrade reaches Eq. 4 before the cheap subframe executes.
     */
    double estimate_user(const phy::UserParams &user,
                         bool degraded) const;

    /**
     * Eq. 3 at a shed-ladder level: the calibrated slope is scaled by
     * the op model's level-to-full cost ratio under the configured
     * decode pricing (kReducedIterations prices MRC weights plus the
     * reduced decode budget, kBypass the hard-decision bypass).
     */
    double estimate_user(const phy::UserParams &user,
                         phy::DegradeLevel level) const;

    /** Eq. 4: estimated activity of a subframe, clamped to [0, 1]. */
    double estimate_subframe(const phy::SubframeParams &subframe) const;

    /**
     * Eq. 4 extended for a streaming pipeline: @p backlog subframes
     * are already resident (queued or executing) when this one
     * arrives, each demanding roughly a subframe's worth of activity,
     * so the demand estimate is the single-subframe value scaled by
     * (1 + backlog), clamped to [0, 1].  With backlog == 0 this is
     * exactly estimate_subframe().
     */
    double estimate_subframe(const phy::SubframeParams &subframe,
                             std::size_t backlog) const;

    /**
     * Backlog-aware Eq. 4 for a subframe the admission controller
     * plans to run on the degraded chain: per-user estimates use the
     * degraded cost ratio (see estimate_user(user, degraded)).  With
     * degraded == false this is exactly the two-argument overload.
     */
    double estimate_subframe(const phy::SubframeParams &subframe,
                             std::size_t backlog, bool degraded) const;

    /**
     * Backlog-aware Eq. 4 at a shed-ladder level (see
     * estimate_user(user, level)).  kNone is exactly the two-argument
     * overload; the bool overload maps true to kBypass.
     */
    double estimate_subframe(const phy::SubframeParams &subframe,
                             std::size_t backlog,
                             phy::DegradeLevel level) const;

    /** Price the decode stage into the shed-ladder cost ratios (set
     *  from the engine's receiver configuration). */
    void
    set_decode_pricing(const DecodePricing &pricing)
    {
        decode_pricing_ = pricing;
    }
    const DecodePricing &decode_pricing() const { return decode_pricing_; }

    /**
     * Eq. 5: active cores = estimated activity x max_cores + margin
     * (margin defaults to the paper's two-core over-provisioning),
     * clamped to [max(1, margin), max_cores].  The floor never drops
     * below one: a zero-margin estimator must not deactivate every
     * core, since a napping TILEPro64 core cannot be reactivated
     * remotely (Sec. V-B) and a fully parked pool deadlocks.
     */
    std::uint32_t active_cores(double estimated_activity,
                               std::uint32_t max_cores,
                               std::uint32_t margin = 2) const;

    const CalibrationTable &table() const { return table_; }

    /** Decision tallies since construction or the last reset. */
    const EstimatorStats &stats() const { return stats_; }
    void reset_stats() { stats_ = EstimatorStats{}; }

  private:
    /** Level-to-full analytical cost ratio of one user. */
    double shed_cost_ratio(const phy::UserParams &user,
                           phy::DegradeLevel level) const;

    CalibrationTable table_;
    DecodePricing decode_pricing_;
    mutable EstimatorStats stats_;
};

} // namespace lte::mgmt

#endif // LTE_MGMT_ESTIMATOR_HPP

#include "mgmt/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "phy/op_model.hpp"

namespace lte::mgmt {

namespace {

/** The paper's four-antenna receiver — the same configuration the
 *  calibration slopes are measured on, so cost ratios computed with it
 *  stay consistent with Eq. 3's units. */
constexpr std::size_t kCalibrationAntennas = 4;

} // namespace

std::size_t
CalibrationTable::index(std::uint32_t layers, Modulation mod)
{
    LTE_CHECK(layers >= 1 && layers <= kMaxLayers, "layers must be 1..4");
    return (layers - 1) * 3 + static_cast<std::size_t>(mod);
}

void
CalibrationTable::set(std::uint32_t layers, Modulation mod,
                      double k_per_prb)
{
    LTE_CHECK(k_per_prb >= 0.0, "slope must be non-negative");
    k_[index(layers, mod)] = k_per_prb;
}

double
CalibrationTable::get(std::uint32_t layers, Modulation mod) const
{
    return k_[index(layers, mod)];
}

void
CalibrationTable::fit(std::uint32_t layers, Modulation mod,
                      const std::vector<CalibrationSample> &samples)
{
    LTE_CHECK(!samples.empty(), "need at least one calibration sample");
    // Weighted through-origin fit with k = sum(w*y) / sum(w*x) rather
    // than the classic least squares sum(xy)/sum(x^2): the latter
    // weights points by x^2 and overfits the largest allocations
    // (whose cost per PRB is highest because of the FFT log factor),
    // biasing estimates for the typical mix of small users.  With
    // weights equal to the traffic mix's density, k is the
    // mixture-average cost per PRB, which is what Eq. 4's per-user
    // sums need to be unbiased.
    double swy = 0.0, swx = 0.0;
    for (const auto &s : samples) {
        LTE_CHECK(s.weight >= 0.0, "weights must be non-negative");
        swx += s.weight * static_cast<double>(s.prb);
        swy += s.weight * s.activity;
    }
    LTE_CHECK(swx > 0.0,
              "samples must include a weighted non-zero PRB count");
    k_[index(layers, mod)] = std::max(0.0, swy / swx);
}

bool
CalibrationTable::complete() const
{
    return std::all_of(k_.begin(), k_.end(),
                       [](double k) { return k > 0.0; });
}

WorkloadEstimator::WorkloadEstimator(CalibrationTable table)
    : table_(table)
{
}

double
WorkloadEstimator::estimate_user(const phy::UserParams &user) const
{
    return static_cast<double>(user.prb) *
           table_.get(user.layers, user.mod);
}

double
WorkloadEstimator::estimate_subframe(
    const phy::SubframeParams &subframe) const
{
    double activity = 0.0;
    for (const auto &user : subframe.users)
        activity += estimate_user(user);
    ++stats_.subframe_estimates;
    if (activity > 1.0)
        ++stats_.saturated_estimates;
    return std::clamp(activity, 0.0, 1.0);
}

double
WorkloadEstimator::shed_cost_ratio(const phy::UserParams &user,
                                   phy::DegradeLevel level) const
{
    if (level == phy::DegradeLevel::kNone)
        return 1.0;
    // The baseline is the chain the slopes are calibrated on: with
    // real-turbo pricing that includes the full-budget decode stage,
    // so shrinking the iteration budget shows up as a ratio < 1 even
    // before the MRC weight saving.
    phy::DecodeModel full;
    if (decode_pricing_.real_turbo) {
        full.real_turbo = true;
        full.iterations = decode_pricing_.iterations;
    }
    const auto base =
        phy::user_task_costs(user, kCalibrationAntennas, false, full)
            .total();
    if (base == 0)
        return 1.0;
    phy::DecodeModel shed = full;
    if (shed.real_turbo) {
        shed.iterations = level == phy::DegradeLevel::kBypass
                              ? 0
                              : decode_pricing_.reduced_iterations;
    }
    const auto degraded =
        phy::user_task_costs(user, kCalibrationAntennas, true, shed)
            .total();
    return static_cast<double>(degraded) / static_cast<double>(base);
}

double
WorkloadEstimator::estimate_user(const phy::UserParams &user,
                                 phy::DegradeLevel level) const
{
    return estimate_user(user) * shed_cost_ratio(user, level);
}

double
WorkloadEstimator::estimate_user(const phy::UserParams &user,
                                 bool degraded) const
{
    return estimate_user(user, degraded ? phy::DegradeLevel::kBypass
                                        : phy::DegradeLevel::kNone);
}

double
WorkloadEstimator::estimate_subframe(const phy::SubframeParams &subframe,
                                     std::size_t backlog) const
{
    const double base = estimate_subframe(subframe);
    if (backlog == 0)
        return base;
    const double boosted = std::clamp(
        base * (1.0 + static_cast<double>(backlog)), 0.0, 1.0);
    if (boosted > base)
        ++stats_.backlog_boosts;
    return boosted;
}

double
WorkloadEstimator::estimate_subframe(const phy::SubframeParams &subframe,
                                     std::size_t backlog,
                                     phy::DegradeLevel level) const
{
    if (level == phy::DegradeLevel::kNone)
        return estimate_subframe(subframe, backlog);
    double activity = 0.0;
    for (const auto &user : subframe.users)
        activity += estimate_user(user, level);
    ++stats_.subframe_estimates;
    ++stats_.degraded_estimates;
    if (activity > 1.0)
        ++stats_.saturated_estimates;
    const double base = std::clamp(activity, 0.0, 1.0);
    if (backlog == 0)
        return base;
    const double boosted = std::clamp(
        base * (1.0 + static_cast<double>(backlog)), 0.0, 1.0);
    if (boosted > base)
        ++stats_.backlog_boosts;
    return boosted;
}

double
WorkloadEstimator::estimate_subframe(const phy::SubframeParams &subframe,
                                     std::size_t backlog,
                                     bool degraded) const
{
    return estimate_subframe(subframe, backlog,
                             degraded ? phy::DegradeLevel::kBypass
                                      : phy::DegradeLevel::kNone);
}

std::uint32_t
WorkloadEstimator::active_cores(double estimated_activity,
                                std::uint32_t max_cores,
                                std::uint32_t margin) const
{
    LTE_CHECK(max_cores >= 1, "need at least one core");
    const double raw =
        estimated_activity * static_cast<double>(max_cores) +
        static_cast<double>(margin);
    const auto cores = static_cast<std::uint32_t>(std::ceil(raw));
    // Floor at one core even with margin == 0: returning 0 would park
    // every worker, and parked cores cannot be woken remotely.
    const std::uint32_t floor =
        std::max<std::uint32_t>(1, std::min(margin, max_cores));
    ++stats_.core_decisions;
    if (cores < floor)
        ++stats_.clamped_low;
    if (cores > max_cores)
        ++stats_.clamped_high;
    return std::clamp<std::uint32_t>(cores, floor, max_cores);
}

} // namespace lte::mgmt

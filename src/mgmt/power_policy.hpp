/**
 * @file
 * Composable power-management policy and the per-domain power-state
 * machine (DESIGN.md Sec. 3k).
 *
 * The paper evaluates five fixed strategies (Table I/II).  This layer
 * decomposes them into orthogonal mechanisms that compose freely:
 *
 *   - reactive_idle  — idle workers nap and poll (paper IDLE)
 *   - proactive      — Eq. 5 watermark deactivates surplus workers
 *                      (paper NAP)
 *   - analytical_gating — the Sec. VI-C post-hoc Eq. 6-9 overlay on
 *                      the occupancy trace (paper PowerGating)
 *   - dvfs           — continuous per-subframe frequency scaling (the
 *                      PR 7 future-work extension)
 *   - domain_machine — the PR 10 per-8-core-domain power-state
 *                      machine: each domain is {active @ f-V rung,
 *                      nap, gated} with explicit transition latencies
 *                      and energy charges, gating applied *inline* by
 *                      the simulator instead of analytically after
 *                      the fact.
 *
 * The five paper strategies are reproduced bit-for-bit as preset
 * policies (see from_strategy); the parity tests pin their digests.
 */
#ifndef LTE_MGMT_POWER_POLICY_HPP
#define LTE_MGMT_POWER_POLICY_HPP

#include <cstdint>
#include <vector>

#include "mgmt/strategy.hpp"

namespace lte::mgmt {

/** State of one power domain under the domain state machine. */
enum class DomainState : std::uint8_t
{
    kActive = 0, ///< powered, clocked at the domain's f-V rung
    kNap = 1,    ///< clock-gated (workers nap; cheap instant wake)
    kGated = 2,  ///< power-gated (no static power; slow costly wake)
};

/** Display name for traces and exports. */
constexpr const char *
domain_state_name(DomainState s)
{
    switch (s) {
      case DomainState::kActive: return "active";
      case DomainState::kNap: return "nap";
      case DomainState::kGated: return "gated";
    }
    return "?";
}

/**
 * Latency and energy charged by the simulator for domain-state and
 * rung transitions (domain_machine mode only).  Defaults follow the
 * magnitudes of the paper's Sec. VI-C overhead discussion: waking a
 * power-gated domain costs tens of microseconds and a switching-energy
 * charge comparable to the 15 mW-for-one-subframe Eq. 9 term.
 */
struct TransitionCosts
{
    /** Latency before a power-gated domain's workers can take work. */
    double gate_wake_s = 50e-6;
    /** Energy charged per domain gate/ungate event (Eq. 9's 15 mW
     *  x 5 ms per 8-core domain ~= 75 uJ). */
    double gate_energy_j = 75e-6;
    /** Chip-wide stall while the PLL/regulator settles on a new
     *  f-V rung; new task starts are delayed by this much. */
    double rung_switch_s = 10e-6;
    /** Energy charged per rung switch per active domain. */
    double rung_energy_j = 20e-6;
};

/**
 * A power-management policy: which mechanisms are enabled and how the
 * domain state machine is parameterised.  Plain value type; copy
 * freely.
 */
struct PowerPolicy
{
    /** Closest paper-strategy label (naming, metrics, trace pids). */
    Strategy label = Strategy::kNoNap;

    // --- paper mechanisms (bit-for-bit legacy semantics) ---
    /** Eq. 5 watermark: deactivate workers beyond the estimate. */
    bool proactive = false;
    /** Idle workers nap and poll instead of spinning. */
    bool reactive_idle = false;
    /** Apply the analytical Eq. 6-9 gating overlay to the series. */
    bool analytical_gating = false;

    // --- continuous DVFS (PR 7 extension) ---
    bool dvfs = false;
    /** Estimation headroom added before choosing the frequency. */
    double dvfs_margin = 0.10;
    /** Lowest allowed frequency as a fraction of the nominal clock. */
    double dvfs_min_scale = 0.25;

    // --- per-domain power-state machine (PR 10) ---
    /** Track 8-core domains as {active@rung, nap, gated} with inline
     *  transition stalls and energy charges.  Requires proactive. */
    bool domain_machine = false;
    /** Cores per power domain (the TILEPro64 grid has 8). */
    std::uint32_t domain_size = 8;
    /** Discrete f-V rungs (ascending fractions of the nominal clock,
     *  last entry 1.0).  Empty = single full-speed rung. */
    std::vector<double> rungs;
    /** Dispatch intervals a domain must be surplus before it is
     *  power-gated (hysteresis against gating thrash; it naps while
     *  waiting). */
    std::uint32_t gate_hysteresis = 2;
    TransitionCosts costs;

    /** Short display name, e.g. "NAP+IDLE" or "DOMAIN-DVFS". */
    const char *name = "NONAP";

    void validate() const;

    /** True when any estimator-driven mechanism is enabled. */
    bool
    wants_estimator() const
    {
        return proactive || dvfs || domain_machine;
    }

    // --- the five paper strategies, bit-for-bit ---
    static PowerPolicy nonap();
    static PowerPolicy idle();
    static PowerPolicy nap();
    static PowerPolicy nap_idle();
    static PowerPolicy power_gating();
    static PowerPolicy from_strategy(Strategy s);

    /** The PR 10 composite: NAP+IDLE semantics plus the per-domain
     *  state machine with a four-rung DVFS ladder and inline gating. */
    static PowerPolicy domain_dvfs();

    /** All policies in presentation order: the five paper strategies
     *  plus the domain-DVFS composite. */
    static std::vector<PowerPolicy> all_presets();
};

} // namespace lte::mgmt

#endif // LTE_MGMT_POWER_POLICY_HPP

#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace lte::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    LTE_CHECK(!headers_.empty(), "table needs at least one column");
}

void
TextTable::add_row(std::vector<std::string> cells)
{
    LTE_CHECK(cells.size() == headers_.size(),
              "row width must match header count");
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << std::left << std::setw(
                static_cast<int>(widths[c])) << cells[c] << " ";
        }
        os << "|\n";
    };

    auto print_rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << "+" << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };

    print_rule();
    print_row(headers_);
    print_rule();
    for (const auto &row : rows_)
        print_row(row);
    print_rule();
}

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
fmt_percent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision);
    if (fraction > 0.0)
        os << "+";
    os << fraction * 100.0 << "%";
    return os.str();
}

} // namespace lte::report

#include "report/series.hpp"

#include <fstream>
#include <ostream>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace lte::report {

SeriesSet::SeriesSet(std::string x_name, std::vector<double> x)
    : x_name_(std::move(x_name)), x_(std::move(x))
{
}

void
SeriesSet::add(std::string name, std::vector<double> values)
{
    LTE_CHECK(values.size() == x_.size(),
              "series length must match the x-axis");
    series_.push_back(Series{std::move(name), std::move(values)});
}

void
SeriesSet::write_csv(std::ostream &os, std::size_t stride) const
{
    LTE_CHECK(stride >= 1, "stride must be >= 1");
    os << x_name_;
    for (const auto &s : series_)
        os << "," << s.name;
    os << "\n";
    for (std::size_t i = 0; i < x_.size(); i += stride) {
        os << x_[i];
        for (const auto &s : series_)
            os << "," << s.values[i];
        os << "\n";
    }
}

void
SeriesSet::print_summary(std::ostream &os) const
{
    for (const auto &s : series_) {
        RunningStats stats;
        for (double v : s.values)
            stats.add(v);
        os << "  " << s.name << ": min=" << stats.min()
           << " mean=" << stats.mean() << " max=" << stats.max()
           << " (n=" << stats.count() << ")\n";
    }
}

bool
write_csv_file(const SeriesSet &set, const std::string &path,
               std::size_t stride)
{
    std::ofstream file(path);
    if (!file)
        return false;
    set.write_csv(file, stride);
    return static_cast<bool>(file);
}

} // namespace lte::report

/**
 * @file
 * Minimal aligned-text table printer shared by the benchmark
 * harnesses that regenerate the paper's tables.
 */
#ifndef LTE_REPORT_TABLE_HPP
#define LTE_REPORT_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace lte::report {

class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly one cell per column. */
    void add_row(std::vector<std::string> cells);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helper: fixed-precision double. */
std::string fmt(double value, int precision = 2);

/** Format helper: signed percentage ("-26%"). */
std::string fmt_percent(double fraction, int precision = 0);

} // namespace lte::report

#endif // LTE_REPORT_TABLE_HPP

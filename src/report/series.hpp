/**
 * @file
 * Time/series emission helpers for the figure-regeneration harnesses:
 * CSV output (one file or stream per figure) and compact terminal
 * summaries so a bench run is readable without plotting.
 */
#ifndef LTE_REPORT_SERIES_HPP
#define LTE_REPORT_SERIES_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace lte::report {

/** A named series sharing the x-axis of its SeriesSet. */
struct Series
{
    std::string name;
    std::vector<double> values;
};

/** A set of series over a common x-axis, e.g. one paper figure. */
class SeriesSet
{
  public:
    /** @param x_name x-axis label, @param x common x values. */
    SeriesSet(std::string x_name, std::vector<double> x);

    /** Add a series; must match the x-axis length. */
    void add(std::string name, std::vector<double> values);

    /**
     * Write CSV: header "x_name,series1,series2,..." then rows.
     * @param stride emit every stride-th point (the paper plots every
     *        25th subframe for readability; stride mirrors that)
     */
    void write_csv(std::ostream &os, std::size_t stride = 1) const;

    /** Print per-series min/mean/max summary lines. */
    void print_summary(std::ostream &os) const;

    std::size_t points() const { return x_.size(); }

  private:
    std::string x_name_;
    std::vector<double> x_;
    std::vector<Series> series_;
};

/**
 * Open @p path for writing (creating parent dirs is the caller's
 * job), returning whether it succeeded; harnesses use this to drop
 * CSVs next to the binary without failing the run on read-only file
 * systems.
 */
bool write_csv_file(const SeriesSet &set, const std::string &path,
                    std::size_t stride = 1);

} // namespace lte::report

#endif // LTE_REPORT_SERIES_HPP

#include "common/rng.hpp"

#include <cmath>

namespace lte {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::next_double()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float
Rng::next_float()
{
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    if (bound <= 1)
        return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v;
    do {
        v = next_u64();
    } while (v >= limit);
    return v % bound;
}

std::int64_t
Rng::next_in(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
}

bool
Rng::next_bool(double p)
{
    return next_double() < p;
}

double
Rng::next_gaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1;
    do {
        u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    cached_gaussian_ = mag * std::sin(two_pi * u2);
    has_cached_gaussian_ = true;
    return mag * std::cos(two_pi * u2);
}

Rng
Rng::split()
{
    return Rng(next_u64());
}

} // namespace lte

/**
 * @file
 * Small numeric helpers shared across modules.
 */
#ifndef LTE_COMMON_MATH_UTIL_HPP
#define LTE_COMMON_MATH_UTIL_HPP

#include <cmath>
#include <cstddef>

namespace lte {

/** Convert a linear power ratio to decibels. */
inline double
to_db(double linear)
{
    return 10.0 * std::log10(linear);
}

/** Convert decibels to a linear power ratio. */
inline double
from_db(double db)
{
    return std::pow(10.0, db / 10.0);
}

/** @return the smallest power of two >= n (n >= 1). */
inline std::size_t
next_pow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** @return true if n is composed only of factors 2, 3, and 5. */
inline bool
is_5_smooth(std::size_t n)
{
    if (n == 0)
        return false;
    for (std::size_t f : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
        while (n % f == 0)
            n /= f;
    }
    return n == 1;
}

/** Integer ceiling division for non-negative operands. */
inline std::size_t
ceil_div(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

} // namespace lte

#endif // LTE_COMMON_MATH_UTIL_HPP

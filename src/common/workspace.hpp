/**
 * @file
 * Bump-arena workspace for steady-state allocation-free processing.
 *
 * The subframe pipeline runs once per millisecond; heap allocations on
 * that path cost latency and serialise workers on the allocator lock.
 * A Workspace owns one contiguous block and hands out typed spans with
 * a bump pointer: reserve() (growing, allowed during warm-up or when a
 * subframe exceeds every previous high-water mark), then reset() +
 * alloc<T>() per subframe, which never touch the heap.
 *
 * Spans returned by alloc() are invalidated by reserve() and reset();
 * the intended discipline (used by phy::UserWorkspace) is to size once
 * per bind, then carve all views before any kernel runs.
 */
#ifndef LTE_COMMON_WORKSPACE_HPP
#define LTE_COMMON_WORKSPACE_HPP

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace lte {

/**
 * Split-complex (structure-of-arrays) view over scratch memory: one
 * contiguous float plane per component.  The SIMD kernels want real
 * and imaginary parts in separate registers; carving scratch in this
 * layout makes their loads and stores plain contiguous float traffic
 * instead of de/interleave shuffles.
 */
struct SplitSpan
{
    std::span<float> re;
    std::span<float> im;

    std::size_t size() const { return re.size(); }
};

/**
 * Reuse a complex scratch span as a SplitSpan of equal length: the
 * first s.size() floats back the real plane, the rest the imaginary
 * plane.  The two views alias the same storage as @p s, so the caller
 * must not use the complex view while the split view is live.
 */
inline SplitSpan
as_split(std::span<std::complex<float>> s)
{
    float *f = reinterpret_cast<float *>(s.data());
    return {{f, s.size()}, {f + s.size(), s.size()}};
}

class Workspace
{
  public:
    Workspace() = default;

    explicit Workspace(std::size_t bytes) { reserve(bytes); }

    /**
     * Ensure the arena can hold @p bytes in total.  Grows (a heap
     * allocation) only beyond the high-water mark; shrinking never
     * happens, so a steady workload reserves at most once.
     * Invalidates previously carved spans.
     */
    void
    reserve(std::size_t bytes)
    {
        if (bytes > buffer_.size())
            buffer_.resize(bytes);
        used_ = 0;
    }

    /** Rewind the bump pointer; previously carved spans are invalid. */
    void
    reset()
    {
        used_ = 0;
    }

    /**
     * Carve @p n elements of T from the arena, aligned to alignof(T).
     * Throws (never grows) if the arena is too small — callers size
     * the arena up front via reserve()/required<T>().
     */
    template <typename T>
    std::span<T>
    alloc(std::size_t n)
    {
        const std::size_t offset = aligned(used_, alignof(T));
        const std::size_t bytes = n * sizeof(T);
        LTE_ASSERT(offset + bytes <= buffer_.size(),
                   "workspace arena exhausted; reserve() more up front");
        used_ = offset + bytes;
        return {reinterpret_cast<T *>(buffer_.data() + offset), n};
    }

    /** Bytes an alloc<T>(n) consumes, including worst-case alignment
     *  padding; use to accumulate a reserve() size. */
    template <typename T>
    static constexpr std::size_t
    required(std::size_t n)
    {
        return n * sizeof(T) + alignof(T) - 1;
    }

    std::size_t bytes_used() const { return used_; }
    std::size_t capacity() const { return buffer_.size(); }

  private:
    static constexpr std::size_t
    aligned(std::size_t offset, std::size_t align)
    {
        return (offset + align - 1) & ~(align - 1);
    }

    std::vector<std::byte> buffer_;
    std::size_t used_ = 0;
};

} // namespace lte

#endif // LTE_COMMON_WORKSPACE_HPP

/**
 * @file
 * Error-checking helpers. LTE_CHECK is used for caller errors (throws
 * std::invalid_argument, cf. gem5's fatal()); LTE_ASSERT for internal
 * invariants (throws std::logic_error, cf. panic()).
 */
#ifndef LTE_COMMON_CHECK_HPP
#define LTE_COMMON_CHECK_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace lte {

namespace detail {

[[noreturn]] inline void
throw_check_failure(const char *expr, const char *file, int line,
                    const std::string &msg)
{
    std::ostringstream os;
    os << "check failed: " << expr << " at " << file << ":" << line;
    if (!msg.empty())
        os << " (" << msg << ")";
    throw std::invalid_argument(os.str());
}

[[noreturn]] inline void
throw_assert_failure(const char *expr, const char *file, int line,
                     const std::string &msg)
{
    std::ostringstream os;
    os << "internal assertion failed: " << expr << " at "
       << file << ":" << line;
    if (!msg.empty())
        os << " (" << msg << ")";
    throw std::logic_error(os.str());
}

} // namespace detail

/** Validate a caller-supplied condition; throws std::invalid_argument. */
#define LTE_CHECK(cond, msg) \
    do { \
        if (!(cond)) { \
            ::lte::detail::throw_check_failure(#cond, __FILE__, __LINE__, \
                                               (msg)); \
        } \
    } while (0)

/** Validate an internal invariant; throws std::logic_error. */
#define LTE_ASSERT(cond, msg) \
    do { \
        if (!(cond)) { \
            ::lte::detail::throw_assert_failure(#cond, __FILE__, __LINE__, \
                                                (msg)); \
        } \
    } while (0)

} // namespace lte

#endif // LTE_COMMON_CHECK_HPP

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the benchmark (input parameter model,
 * channel realisations, work-stealing victim selection) draws from an
 * explicitly seeded Rng so full runs are bit-reproducible across
 * machines — a requirement for the serial-vs-parallel validation of
 * Sec. IV-D of the paper.
 */
#ifndef LTE_COMMON_RNG_HPP
#define LTE_COMMON_RNG_HPP

#include <cstdint>

namespace lte {

/**
 * xoshiro256** generator (Blackman & Vigna) seeded via splitmix64.
 *
 * Chosen over std::mt19937 because its output sequence is fully
 * specified here (libstdc++ distributions are not portable), it is
 * cheap, and it passes BigCrush.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t next_u64();

    /** @return a uniform double in [0, 1). Matches the paper's random(). */
    double next_double();

    /** @return a uniform float in [0, 1). */
    float next_float();

    /** @return a uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t next_below(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t next_in(std::int64_t lo, std::int64_t hi);

    /** @return true with probability p (clamped to [0, 1]). */
    bool next_bool(double p);

    /**
     * @return a standard normal sample (Box-Muller; one value per call,
     * the pair partner is cached).
     */
    double next_gaussian();

    /** Derive an independent child generator (for per-thread streams). */
    Rng split();

  private:
    std::uint64_t s_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

/**
 * Canonical per-cell seed derivation: every component that owns a cell
 * RNG stream (input pools, per-cell parameter models) derives its
 * effective seed from the master seed through this one function, so
 * "same master seed + same cell id" yields the same stream no matter
 * how many cells run beside it or which engine drives them.
 *
 * Cell 1 (the single-cell default) maps to the master seed itself,
 * keeping 1-cell runs bit-identical to the pre-multi-cell engines;
 * other cells get a splitmix64-style finalised mix.
 */
inline std::uint64_t
cell_stream_seed(std::uint64_t master, std::uint32_t cell_id)
{
    if (cell_id <= 1)
        return master;
    std::uint64_t z =
        master ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(cell_id));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace lte

#endif // LTE_COMMON_RNG_HPP

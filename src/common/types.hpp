/**
 * @file
 * Fundamental sample and index types shared across the LTE library.
 */
#ifndef LTE_COMMON_TYPES_HPP
#define LTE_COMMON_TYPES_HPP

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lte {

/** Complex baseband sample, single precision (matches the benchmark's C float pairs). */
using cf32 = std::complex<float>;

/** Complex double-precision value used inside numerically sensitive kernels. */
using cf64 = std::complex<double>;

/** A contiguous buffer of complex samples. */
using CVec = std::vector<cf32>;

/** Soft bit (log-likelihood ratio). Positive means the bit is more likely 0. */
using Llr = float;

/** Mutable view of complex samples (kernel output / scratch). */
using CfSpan = std::span<cf32>;

/** Read-only view of complex samples (kernel input). */
using CfView = std::span<const cf32>;

/** Mutable view of soft bits. */
using LlrSpan = std::span<Llr>;

/** Read-only view of soft bits. */
using LlrView = std::span<const Llr>;

/** Mutable view of hard bits (one bit per byte, values 0/1). */
using BitSpan = std::span<std::uint8_t>;

/** Read-only view of hard bits. */
using BitView = std::span<const std::uint8_t>;

/** Number of subcarriers in one physical resource block (3GPP TS 36.211). */
inline constexpr std::size_t kScPerPrb = 12;

/** SC-FDMA symbols per slot with normal cyclic prefix. */
inline constexpr std::size_t kSymbolsPerSlot = 7;

/** Data (non-reference) SC-FDMA symbols per slot: 3 + 3 around the DMRS. */
inline constexpr std::size_t kDataSymbolsPerSlot = 6;

/** Index of the demodulation reference symbol within a slot. */
inline constexpr std::size_t kRefSymbolIndex = 3;

/** Slots per subframe. */
inline constexpr std::size_t kSlotsPerSubframe = 2;

/** Subframes per 10 ms radio frame. */
inline constexpr std::size_t kSubframesPerFrame = 10;

/** Maximum users schedulable in one subframe (paper Sec. II-A). */
inline constexpr std::size_t kMaxUsersPerSubframe = 10;

/** Maximum PRBs allocatable in one subframe (paper Fig. 6, MAX_PRB). */
inline constexpr std::size_t kMaxPrbPerSubframe = 200;

/** Maximum spatial layers in the LTE-Advanced uplink (paper Sec. II-B). */
inline constexpr std::size_t kMaxLayers = 4;

/** Maximum receive antennas modelled (paper Sec. III). */
inline constexpr std::size_t kMaxRxAntennas = 4;

/** Modulation schemes supported by the uplink (paper Sec. II-B). */
enum class Modulation : std::uint8_t {
    kQpsk = 0,   ///< 2 bits per symbol
    k16Qam = 1,  ///< 4 bits per symbol
    k64Qam = 2,  ///< 6 bits per symbol
};

/** @return the number of bits carried by one modulated symbol. */
constexpr std::size_t
bits_per_symbol(Modulation mod)
{
    switch (mod) {
      case Modulation::kQpsk: return 2;
      case Modulation::k16Qam: return 4;
      case Modulation::k64Qam: return 6;
    }
    return 2;
}

/** @return a short human-readable name ("QPSK", "16QAM", "64QAM"). */
constexpr const char *
modulation_name(Modulation mod)
{
    switch (mod) {
      case Modulation::kQpsk: return "QPSK";
      case Modulation::k16Qam: return "16QAM";
      case Modulation::k64Qam: return "64QAM";
    }
    return "?";
}

/** All modulations, in increasing order of bits per symbol. */
inline constexpr Modulation kAllModulations[] = {
    Modulation::kQpsk, Modulation::k16Qam, Modulation::k64Qam,
};

} // namespace lte

#endif // LTE_COMMON_TYPES_HPP

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lte {

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::clear()
{
    *this = RunningStats{};
}

double
RunningStats::variance() const
{
    if (n_ == 0)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

RmsWindow::RmsWindow(double window_seconds)
    : window_seconds_(window_seconds)
{
    LTE_CHECK(window_seconds > 0.0, "window must be positive");
}

void
RmsWindow::add(double value, double duration)
{
    LTE_CHECK(duration >= 0.0, "duration must be non-negative");
    while (duration > 0.0) {
        const double room = window_seconds_ - filled_;
        const double take = std::min(room, duration);
        sumsq_ += value * value * take;
        filled_ += take;
        duration -= take;
        // Tolerate float accumulation when samples tile the window.
        if (filled_ >= window_seconds_ * (1.0 - 1e-9))
            emit_window();
    }
}

void
RmsWindow::flush()
{
    // Ignore float residue left behind by exactly tiling samples.
    if (filled_ > window_seconds_ * 1e-6)
        emit_window();
}

void
RmsWindow::emit_window()
{
    windows_.push_back(std::sqrt(sumsq_ / filled_));
    sumsq_ = 0.0;
    filled_ = 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    LTE_CHECK(hi > lo, "histogram range must be non-empty");
    LTE_CHECK(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    // A NaN or infinite sample must not reach the integer cast below:
    // converting a non-finite double (or one beyond the target range)
    // to an integer is undefined behaviour, so clamp while still in
    // floating point and reject non-finite values outright.
    if (!std::isfinite(x)) {
        ++non_finite_;
        return;
    }
    const double frac = (x - lo_) / (hi_ - lo_);
    const double scaled = std::clamp(
        frac * static_cast<double>(counts_.size()), 0.0,
        static_cast<double>(counts_.size()) - 1.0);
    const auto bin = static_cast<std::size_t>(scaled);
    ++counts_[bin];
    ++total_;
}

double
Histogram::bin_center(std::size_t bin) const
{
    LTE_CHECK(bin < counts_.size(), "bin out of range");
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

} // namespace lte

/**
 * @file
 * Streaming statistics helpers used by the power model, the workload
 * estimator evaluation, and the benchmark harnesses.
 */
#ifndef LTE_COMMON_STATS_HPP
#define LTE_COMMON_STATS_HPP

#include <cstddef>
#include <limits>
#include <vector>

namespace lte {

/**
 * Welford-style running mean/variance with min/max tracking.
 */
class RunningStats
{
  public:
    /** Fold one sample into the statistics. */
    void add(double x);

    /** Reset to the empty state. */
    void clear();

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Root-mean-square accumulation over fixed-duration windows, modelling
 * the paper's NI USB-6210 post-processing: the DAQ samples current
 * every 8 us and the authors report the RMS over every 100 ms.
 *
 * add() folds a (value, duration) pair into the current window; each
 * time accumulated duration crosses the window length, the RMS of the
 * finished window is appended to windows().
 */
class RmsWindow
{
  public:
    /** @param window_seconds duration of one RMS window. */
    explicit RmsWindow(double window_seconds);

    /** Accumulate a constant value held for @p duration seconds. */
    void add(double value, double duration);

    /** Finish a partially filled window, if any, and flush it. */
    void flush();

    /** Completed per-window RMS values, in time order. */
    const std::vector<double> &windows() const { return windows_; }

    double window_seconds() const { return window_seconds_; }

  private:
    void emit_window();

    double window_seconds_;
    double sumsq_ = 0.0;   ///< integral of value^2 over the open window
    double filled_ = 0.0;  ///< seconds accumulated in the open window
    std::vector<double> windows_;
};

/**
 * Simple fixed-capacity histogram over [lo, hi) with uniform bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Count a sample; out-of-range samples clamp to the edge bins.
     *  Non-finite samples (NaN, +/-inf) are tallied separately and do
     *  not land in any bin. */
    void add(double x);

    std::size_t bin_count() const { return counts_.size(); }
    std::size_t count(std::size_t bin) const { return counts_.at(bin); }
    /** Samples counted into bins (excludes non-finite samples). */
    std::size_t total() const { return total_; }
    /** NaN/inf samples rejected by add(). */
    std::size_t non_finite() const { return non_finite_; }
    /** Center value of a bin. */
    double bin_center(std::size_t bin) const;

  private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
    std::size_t non_finite_ = 0;
};

} // namespace lte

#endif // LTE_COMMON_STATS_HPP

#include "obs/metrics.hpp"

#include <algorithm>

namespace lte::obs {

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : counters_) {
        if (entry.first == name)
            return entry.second;
    }
    counters_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
    return counters_.back().second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : gauges_) {
        if (entry.first == name)
            return entry.second;
    }
    gauges_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple());
    return gauges_.back().second;
}

std::vector<MetricsRegistry::Sample>
MetricsRegistry::snapshot() const
{
    std::vector<Sample> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(counters_.size() + gauges_.size());
        for (const auto &entry : counters_) {
            out.push_back({entry.first,
                           static_cast<double>(entry.second.value()),
                           true});
        }
        for (const auto &entry : gauges_)
            out.push_back({entry.first, entry.second.value(), false});
    }
    std::sort(out.begin(), out.end(),
              [](const Sample &a, const Sample &b) {
                  return a.name < b.name;
              });
    return out;
}

} // namespace lte::obs

/**
 * @file
 * Trace/metrics exporters.
 *
 * chrome://tracing JSON: the Trace Event Format's "X" (complete) and
 * "i" (instant) phases, with one chrome "thread" per tracer slot, so
 * a dumped timeline opens directly in chrome://tracing or Perfetto
 * (ui.perfetto.dev) and shows per-worker chanest/weights/demod/tail
 * spans, steals, and nap/idle sleep.
 *
 * CSV: the per-subframe activity/deadline series and the metrics
 * registry, one row per sample, for plotting alongside the paper's
 * figures.
 */
#ifndef LTE_OBS_EXPORT_HPP
#define LTE_OBS_EXPORT_HPP

#include <iosfwd>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lte::obs {

/**
 * Write all recorded spans as a chrome://tracing JSON object
 * ({"traceEvents":[...]}).  Slots are exported as threads of one
 * process named @p process_name; the last slot is labelled as the
 * dispatch thread, the others as workers.
 */
void write_chrome_trace(std::ostream &os, const Tracer &tracer,
                        std::string_view process_name = "lte-uplink");

/**
 * Write the per-subframe activity/deadline series as CSV with header
 *   subframe,t_dispatch_ms,t_complete_ms,latency_ms,n_users,ops,
 *   est_activity,active_workers,deadline_met
 * A sample meets the deadline when latency_ms <= @p deadline_ms.
 */
void write_subframe_csv(std::ostream &os, const SubframeSeries &series,
                        double deadline_ms);

/** Write the registry snapshot as "name,type,value" CSV rows. */
void write_metrics_csv(std::ostream &os, const MetricsRegistry &metrics);

} // namespace lte::obs

#endif // LTE_OBS_EXPORT_HPP

/**
 * @file
 * A small counters/gauges metrics registry for the runtime and the
 * power-management study.
 *
 * Registration (name lookup) happens at setup time and may allocate;
 * the returned Counter/Gauge references are stable for the registry's
 * lifetime, so hot paths cache a pointer and update it with a single
 * relaxed atomic — no locks, no lookups, no allocation.
 */
#ifndef LTE_OBS_METRICS_HPP
#define LTE_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lte::obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Name -> metric registry.  Metrics live in deques so references stay
 * valid as more are registered; the mutex guards only registration
 * and snapshotting, never metric updates.
 */
class MetricsRegistry
{
  public:
    /** Find or create the counter named @p name (stable reference). */
    Counter &counter(std::string_view name);

    /** Find or create the gauge named @p name (stable reference). */
    Gauge &gauge(std::string_view name);

    /** One exported metric value. */
    struct Sample
    {
        std::string name;
        double value = 0.0;
        bool is_counter = false;
    };

    /** All metrics, sorted by name. */
    std::vector<Sample> snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::deque<std::pair<std::string, Counter>> counters_;
    std::deque<std::pair<std::string, Gauge>> gauges_;
};

} // namespace lte::obs

#endif // LTE_OBS_METRICS_HPP

#include "obs/trace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace lte::obs {

const char *
span_kind_name(SpanKind kind)
{
    switch (kind) {
      case SpanKind::kChanEst: return "chanest";
      case SpanKind::kWeights: return "weights";
      case SpanKind::kDemod: return "demod";
      case SpanKind::kTail: return "tail";
      case SpanKind::kUser: return "user";
      case SpanKind::kSteal: return "steal";
      case SpanKind::kNap: return "nap";
      case SpanKind::kIdle: return "idle";
      case SpanKind::kSubframe: return "subframe";
      case SpanKind::kDispatch: return "dispatch";
      case SpanKind::kShed: return "shed";
      case SpanKind::kTailCb: return "tail_cb";
      case SpanKind::kTailReduce: return "tail_reduce";
      case SpanKind::kDecodeCb: return "decode_cb";
      case SpanKind::kIoFrame: return "io_frame";
      case SpanKind::kIoLost: return "io_lost";
      case SpanKind::kMacGrant: return "mac_grant";
    }
    return "?";
}

void
ObsConfig::validate() const
{
    LTE_CHECK(events_per_thread >= 1, "need at least one event slot");
    LTE_CHECK(series_capacity >= 1, "need at least one series slot");
    LTE_CHECK(deadline_ms > 0.0, "deadline must be positive");
}

ThreadTrace::ThreadTrace(std::size_t capacity) : ring_(capacity)
{
    LTE_CHECK(capacity >= 1, "ring needs at least one slot");
}

void
ThreadTrace::record(const TraceEvent &event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_[static_cast<std::size_t>(recorded_ % ring_.size())] = event;
    ++recorded_;
}

std::size_t
ThreadTrace::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(recorded_, ring_.size()));
}

std::uint64_t
ThreadTrace::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

std::uint64_t
ThreadTrace::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void
ThreadTrace::snapshot(std::vector<TraceEvent> &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto retained = static_cast<std::size_t>(
        std::min<std::uint64_t>(recorded_, ring_.size()));
    out.clear();
    out.reserve(retained);
    const std::uint64_t first = recorded_ - retained;
    for (std::size_t i = 0; i < retained; ++i) {
        out.push_back(
            ring_[static_cast<std::size_t>((first + i) % ring_.size())]);
    }
}

Tracer::Tracer(std::size_t n_slots, const ObsConfig &config)
    : epoch_(std::chrono::steady_clock::now())
{
    config.validate();
    LTE_CHECK(n_slots >= 1, "tracer needs at least one slot");
    slots_.reserve(n_slots);
    for (std::size_t i = 0; i < n_slots; ++i) {
        slots_.push_back(
            std::make_unique<ThreadTrace>(config.events_per_thread));
    }
}

std::uint64_t
Tracer::total_recorded() const
{
    std::uint64_t total = 0;
    for (const auto &slot : slots_)
        total += slot->recorded();
    return total;
}

std::uint64_t
Tracer::total_dropped() const
{
    std::uint64_t total = 0;
    for (const auto &slot : slots_)
        total += slot->dropped();
    return total;
}

SubframeSeries::SubframeSeries(std::size_t capacity)
{
    LTE_CHECK(capacity >= 1, "series needs at least one slot");
    samples_.resize(capacity);
}

void
SubframeSeries::push(const SubframeSample &sample)
{
    if (size_ == samples_.size()) {
        ++dropped_;
        return;
    }
    samples_[size_++] = sample;
}

void
SubframeSeries::clear()
{
    size_ = 0;
    dropped_ = 0;
}

} // namespace lte::obs

/**
 * @file
 * Zero-steady-state-allocation event tracing for the subframe runtime.
 *
 * The paper's power-management argument is built on *measuring*
 * per-subframe activity (Sec. V): both the reactive IDLE gating and
 * the proactive estimator are driven by observed busy time.  This
 * tracer makes that activity visible at task granularity without
 * perturbing the 1 ms hot path:
 *
 *  - one fixed-capacity ring buffer of spans per thread slot, written
 *    only by that slot's thread, so recording is a timestamp pair and
 *    a ring store (no queues, no formatting, no heap);
 *  - every buffer is preallocated at tracer construction, consistent
 *    with the zero-allocation guarantee of tests/test_alloc_free.cpp —
 *    tracing *enabled* still performs zero steady-state allocations;
 *  - when tracing is disabled the runtime carries a null tracer
 *    pointer, so the disabled path costs a single branch.
 *
 * Each ring is guarded by a per-slot mutex so an exporter can read a
 * consistent snapshot while NAP/IDLE workers are still recording
 * their sleep spans; the lock is uncontended on the hot path (the
 * owner thread is the only writer) and never allocates.
 */
#ifndef LTE_OBS_TRACE_HPP
#define LTE_OBS_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace lte::obs {

/** What a recorded span covers (paper Fig. 5 task granularity plus
 *  the runtime's scheduling states). */
enum class SpanKind : std::uint8_t
{
    kChanEst,  ///< one channel-estimation task (antenna x layer)
    kWeights,  ///< combiner-weight join (a continuation task)
    kDemod,    ///< one demodulation task (data symbol x layer)
    kTail,     ///< legacy whole-user tail (descramble..CRC, serial)
    kUser,     ///< a whole user's chain (serial engine)
    kSteal,    ///< instant: a task was stolen (arg = victim worker)
    kNap,      ///< proactively deactivated worker sleeping (Sec. V-B)
    kIdle,     ///< reactive IDLE sleep while workless
    kSubframe, ///< dispatch-to-completion of one subframe
    kDispatch, ///< instant: a subframe entered the pool
    kShed,     ///< instant: admission controller dropped a subframe
    kTailCb,   ///< one per-codeblock tail task (arg = codeblock)
    kTailReduce, ///< CRC/EVM reduce closing a user (arg = user id)
    kDecodeCb, ///< one per-codeblock turbo decode (arg = code block)
    kIoFrame,  ///< IQ frame's ready-ring residence (produce..consume)
    kIoLost,   ///< instant: sample-plane frame lost (pool exhausted)
    kMacGrant, ///< instant: MAC issued a TTI's grants (arg = subframe)
};

/** Number of distinct span kinds (for fixed-size per-kind tallies). */
inline constexpr std::size_t kSpanKindCount = 17;

/** Short stable name used in exports ("chanest", "demod", ...). */
const char *span_kind_name(SpanKind kind);

/**
 * Cell tagging for span arguments: the serving cell rides in the top
 * 16 bits of the 64-bit payload, leaving 48 bits for the original
 * value (user id, task index, subframe index).  Single-cell engines
 * record untagged args (cell field 0), so existing traces and their
 * consumers are unchanged; the multi-cell engine tags its dispatch /
 * shed / subframe events so one shared trace can be split by cell.
 */
inline constexpr std::uint64_t
make_cell_arg(std::uint32_t cell_id, std::uint64_t value)
{
    return (static_cast<std::uint64_t>(cell_id) << 48) |
           (value & 0xFFFFFFFFFFFFULL);
}

/** The cell tag of a span argument (0 = untagged single-cell). */
inline constexpr std::uint32_t
arg_cell(std::uint64_t arg)
{
    return static_cast<std::uint32_t>(arg >> 48);
}

/** The value part of a (possibly cell-tagged) span argument. */
inline constexpr std::uint64_t
arg_value(std::uint64_t arg)
{
    return arg & 0xFFFFFFFFFFFFULL;
}

/** One recorded span; times are nanoseconds since the tracer epoch. */
struct TraceEvent
{
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    /** Kind-specific payload: user id, task index, subframe index,
     *  or victim worker for steals. */
    std::uint64_t arg = 0;
    SpanKind kind = SpanKind::kChanEst;
};

/**
 * Single-writer ring of the most recent @p capacity events.  When the
 * ring wraps, the oldest events are overwritten and counted as
 * dropped rather than blocking or allocating.
 */
class ThreadTrace
{
  public:
    explicit ThreadTrace(std::size_t capacity);

    /** Record one span (writer side; allocation-free). */
    void record(const TraceEvent &event);

    /** Events currently retained (<= capacity). */
    std::size_t size() const;
    /** Events recorded over the ring's lifetime. */
    std::uint64_t recorded() const;
    /** Events lost to ring wrap-around. */
    std::uint64_t dropped() const;
    std::size_t capacity() const { return ring_.size(); }

    /**
     * Copy the retained events, oldest first, into @p out (cleared
     * first).  Takes the slot lock, so it is safe while the owner
     * thread is still recording.
     */
    void snapshot(std::vector<TraceEvent> &out) const;

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_;
    std::uint64_t recorded_ = 0;
};

/** Tracer sizing/behaviour; part of the engine configuration. */
struct ObsConfig
{
    /** Master tracing switch: owns the span tracer and the
     *  per-subframe series.  Implies metrics. */
    bool enabled = false;
    /**
     * Metrics without tracing: when true the engine owns a
     * MetricsRegistry (subframe/user/deadline-miss counters and the
     * streaming admission counters) even with tracing off, so
     * accounting never depends on span rings being allocated.
     * Tracing (`enabled`) always implies metrics.
     */
    bool metrics_enabled = false;
    /** Ring capacity per thread slot (events). */
    std::size_t events_per_thread = 1 << 15;
    /** Per-subframe series capacity (samples; see SubframeSeries). */
    std::size_t series_capacity = 1 << 16;
    /**
     * Subframe completion deadline in milliseconds.  The paper keeps
     * two to three subframes in flight against the 1 ms arrival
     * period, so three periods is the responsiveness budget.
     */
    double deadline_ms = 3.0;

    void validate() const;
};

/**
 * A set of per-thread trace rings sharing one time epoch.  Slot i is
 * written only by thread i (workers 0..n-1; the dispatch/maintenance
 * thread uses the last slot).
 */
class Tracer
{
  public:
    Tracer(std::size_t n_slots, const ObsConfig &config);

    std::size_t n_slots() const { return slots_.size(); }

    /** Nanoseconds from the tracer epoch to @p tp. */
    std::uint64_t
    to_ns(std::chrono::steady_clock::time_point tp) const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                tp - epoch_)
                .count());
    }

    /** Nanoseconds from the tracer epoch to now. */
    std::uint64_t now_ns() const
    {
        return to_ns(std::chrono::steady_clock::now());
    }

    /** Record a span on @p slot (allocation-free). */
    void
    record(std::size_t slot, SpanKind kind, std::uint64_t begin_ns,
           std::uint64_t end_ns, std::uint64_t arg = 0)
    {
        slots_[slot]->record(TraceEvent{begin_ns, end_ns, arg, kind});
    }

    /** Record an instant event (begin == end) on @p slot. */
    void
    record_instant(std::size_t slot, SpanKind kind, std::uint64_t t_ns,
                   std::uint64_t arg = 0)
    {
        record(slot, kind, t_ns, t_ns, arg);
    }

    const ThreadTrace &slot(std::size_t i) const { return *slots_[i]; }

    /** Total events recorded / dropped across all slots. */
    std::uint64_t total_recorded() const;
    std::uint64_t total_dropped() const;

  private:
    std::chrono::steady_clock::time_point epoch_;
    /** unique_ptr per slot: stable addresses, no false sharing of the
     *  per-slot mutexes. */
    std::vector<std::unique_ptr<ThreadTrace>> slots_;
};

/** One per-subframe observation row (the activity/deadline series). */
struct SubframeSample
{
    std::uint64_t subframe_index = 0;
    /** Serving cell (1 for single-cell engines). */
    std::uint32_t cell_id = 1;
    std::uint64_t t_dispatch_ns = 0; ///< since tracer epoch
    std::uint64_t t_complete_ns = 0;
    std::uint32_t n_users = 0;
    std::uint32_t active_workers = 0;
    /** Estimator output for this subframe; negative if no estimator. */
    double est_activity = -1.0;
    /** Analytical flops of the subframe (op-model activity measure). */
    std::uint64_t ops = 0;

    double latency_ms() const
    {
        return static_cast<double>(t_complete_ns - t_dispatch_ns) / 1e6;
    }
};

/**
 * Fixed-capacity per-subframe series.  Preallocated at construction;
 * samples past capacity are counted as dropped, never reallocated.
 */
class SubframeSeries
{
  public:
    explicit SubframeSeries(std::size_t capacity);

    void push(const SubframeSample &sample);
    void clear();

    std::size_t size() const { return size_; }
    std::uint64_t dropped() const { return dropped_; }
    const SubframeSample &at(std::size_t i) const { return samples_[i]; }

  private:
    std::vector<SubframeSample> samples_;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace lte::obs

#endif // LTE_OBS_TRACE_HPP

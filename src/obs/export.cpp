#include "obs/export.hpp"

#include <ostream>
#include <vector>

namespace lte::obs {

namespace {

/** Category string per kind, so chrome://tracing can filter. */
const char *
span_category(SpanKind kind)
{
    switch (kind) {
      case SpanKind::kChanEst:
      case SpanKind::kWeights:
      case SpanKind::kDemod:
      case SpanKind::kTail:
      case SpanKind::kTailCb:
      case SpanKind::kTailReduce:
      case SpanKind::kDecodeCb:
      case SpanKind::kUser:
        return "phy";
      case SpanKind::kSteal:
      case SpanKind::kSubframe:
      case SpanKind::kDispatch:
      case SpanKind::kShed:
        return "sched";
      case SpanKind::kNap:
      case SpanKind::kIdle:
        return "power";
      case SpanKind::kIoFrame:
      case SpanKind::kIoLost:
        return "io";
      case SpanKind::kMacGrant:
        return "mac";
    }
    return "?";
}

void
write_json_string(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

/** Trace Event Format timestamps are microseconds (doubles). */
double
to_us(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1e3;
}

void
write_event(std::ostream &os, const TraceEvent &event, std::size_t tid,
            bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    const bool instant = event.end_ns == event.begin_ns;
    os << "{\"name\":\"" << span_kind_name(event.kind) << "\",\"cat\":\""
       << span_category(event.kind) << "\",\"ph\":\""
       << (instant ? 'i' : 'X') << "\",\"ts\":" << to_us(event.begin_ns);
    if (!instant)
        os << ",\"dur\":" << to_us(event.end_ns - event.begin_ns);
    else
        os << ",\"s\":\"t\""; // thread-scoped instant
    os << ",\"pid\":0,\"tid\":" << tid << ",\"args\":{\"arg\":"
       << event.arg << "}}";
}

void
write_thread_name(std::ostream &os, std::size_t tid,
                  std::string_view name, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << tid << ",\"args\":{\"name\":";
    write_json_string(os, name);
    os << "}}";
}

} // namespace

void
write_chrome_trace(std::ostream &os, const Tracer &tracer,
                   std::string_view process_name)
{
    os << "{\"traceEvents\":[\n";
    bool first = true;

    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":";
    write_json_string(os, process_name);
    os << "}}";
    first = false;

    const std::size_t dispatch_slot = tracer.n_slots() - 1;
    std::vector<TraceEvent> events;
    for (std::size_t tid = 0; tid < tracer.n_slots(); ++tid) {
        const std::string label =
            tid == dispatch_slot && tracer.n_slots() > 1
                ? std::string("dispatch")
                : "worker-" + std::to_string(tid);
        write_thread_name(os, tid, label, first);
        tracer.slot(tid).snapshot(events);
        for (const TraceEvent &event : events)
            write_event(os, event, tid, first);
    }

    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"dropped_events\":"
       << tracer.total_dropped() << "}}\n";
}

void
write_subframe_csv(std::ostream &os, const SubframeSeries &series,
                   double deadline_ms)
{
    os << "subframe,cell,t_dispatch_ms,t_complete_ms,latency_ms,n_users,"
          "ops,est_activity,active_workers,deadline_met\n";
    for (std::size_t i = 0; i < series.size(); ++i) {
        const SubframeSample &s = series.at(i);
        const double latency = s.latency_ms();
        os << s.subframe_index << ',' << s.cell_id << ','
           << static_cast<double>(s.t_dispatch_ns) / 1e6 << ','
           << static_cast<double>(s.t_complete_ns) / 1e6 << ','
           << latency << ',' << s.n_users << ',' << s.ops << ','
           << s.est_activity << ',' << s.active_workers << ','
           << (latency <= deadline_ms ? 1 : 0) << '\n';
    }
}

void
write_metrics_csv(std::ostream &os, const MetricsRegistry &metrics)
{
    os << "name,type,value\n";
    for (const auto &sample : metrics.snapshot()) {
        os << sample.name << ','
           << (sample.is_counter ? "counter" : "gauge") << ','
           << sample.value << '\n';
    }
}

} // namespace lte::obs

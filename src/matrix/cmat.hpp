/**
 * @file
 * Small dense complex matrices for MIMO combiner-weight computation.
 *
 * The receiver needs per-subcarrier linear algebra on matrices no
 * larger than antennas x layers (4 x 4 in LTE-Advanced uplink), so this
 * is a simple row-major value type with O(n^3) kernels rather than a
 * BLAS wrapper.
 */
#ifndef LTE_MATRIX_CMAT_HPP
#define LTE_MATRIX_CMAT_HPP

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace lte::matrix {

/** A dense row-major complex matrix. */
class CMat
{
  public:
    /** An empty 0x0 matrix. */
    CMat() = default;

    /** A rows x cols matrix of zeros. */
    CMat(std::size_t rows, std::size_t cols);

    /** A rows x cols matrix from row-major initial values. */
    CMat(std::size_t rows, std::size_t cols, std::vector<cf32> values);

    /** The n x n identity. */
    static CMat identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    cf32 &at(std::size_t r, std::size_t c);
    const cf32 &at(std::size_t r, std::size_t c) const;

    /** Direct access to row-major storage. */
    const std::vector<cf32> &data() const { return data_; }

    /** Conjugate transpose. */
    CMat hermitian() const;

    /** Matrix product this * rhs. */
    CMat mul(const CMat &rhs) const;

    /** Matrix-vector product (vec.size() == cols()). */
    std::vector<cf32> mul_vec(const std::vector<cf32> &vec) const;

    /** this + rhs (same shape). */
    CMat add(const CMat &rhs) const;

    /** this + s*I (square only); used for MMSE diagonal loading. */
    CMat add_scaled_identity(float s) const;

    /**
     * Inverse via Gauss-Jordan elimination with partial pivoting
     * (square only).  @throws std::invalid_argument if singular to
     * working precision.
     */
    CMat inverse() const;

    /** Solve this * x = b for x (square only). */
    std::vector<cf32> solve(const std::vector<cf32> &b) const;

    /** Frobenius norm. */
    float frobenius_norm() const;

    /** Max absolute entry-wise difference against another matrix. */
    float max_abs_diff(const CMat &rhs) const;

    /**
     * Analytical flop count for inverting an n x n complex matrix with
     * this implementation; feeds the simulator cost model.
     */
    static std::uint64_t inverse_op_count(std::size_t n);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<cf32> data_;
};

} // namespace lte::matrix

#endif // LTE_MATRIX_CMAT_HPP

#include "matrix/cmat.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace lte::matrix {

CMat::CMat(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cf32(0.0f, 0.0f))
{
}

CMat::CMat(std::size_t rows, std::size_t cols, std::vector<cf32> values)
    : rows_(rows), cols_(cols), data_(std::move(values))
{
    LTE_CHECK(data_.size() == rows * cols, "value count must match shape");
}

CMat
CMat::identity(std::size_t n)
{
    CMat m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = cf32(1.0f, 0.0f);
    return m;
}

cf32 &
CMat::at(std::size_t r, std::size_t c)
{
    LTE_CHECK(r < rows_ && c < cols_, "index out of range");
    return data_[r * cols_ + c];
}

const cf32 &
CMat::at(std::size_t r, std::size_t c) const
{
    LTE_CHECK(r < rows_ && c < cols_, "index out of range");
    return data_[r * cols_ + c];
}

CMat
CMat::hermitian() const
{
    CMat out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(c, r) = std::conj(data_[r * cols_ + c]);
    }
    return out;
}

CMat
CMat::mul(const CMat &rhs) const
{
    LTE_CHECK(cols_ == rhs.rows_, "inner dimensions must match");
    CMat out(rows_, rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const cf32 a = data_[r * cols_ + k];
            for (std::size_t c = 0; c < rhs.cols_; ++c)
                out.at(r, c) += a * rhs.data_[k * rhs.cols_ + c];
        }
    }
    return out;
}

std::vector<cf32>
CMat::mul_vec(const std::vector<cf32> &vec) const
{
    LTE_CHECK(vec.size() == cols_, "vector length must match cols");
    std::vector<cf32> out(rows_, cf32(0.0f, 0.0f));
    for (std::size_t r = 0; r < rows_; ++r) {
        cf32 acc(0.0f, 0.0f);
        for (std::size_t c = 0; c < cols_; ++c)
            acc += data_[r * cols_ + c] * vec[c];
        out[r] = acc;
    }
    return out;
}

CMat
CMat::add(const CMat &rhs) const
{
    LTE_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "shapes must match");
    CMat out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += rhs.data_[i];
    return out;
}

CMat
CMat::add_scaled_identity(float s) const
{
    LTE_CHECK(rows_ == cols_, "square matrix required");
    CMat out = *this;
    for (std::size_t i = 0; i < rows_; ++i)
        out.at(i, i) += cf32(s, 0.0f);
    return out;
}

CMat
CMat::inverse() const
{
    LTE_CHECK(rows_ == cols_, "square matrix required");
    const std::size_t n = rows_;
    // Augmented [A | I] Gauss-Jordan with partial pivoting.
    CMat a = *this;
    CMat inv = identity(n);

    for (std::size_t col = 0; col < n; ++col) {
        // Pivot: the row with the largest magnitude in this column.
        std::size_t pivot = col;
        float best = std::abs(a.at(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const float mag = std::abs(a.at(r, col));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        LTE_CHECK(best > 1e-20f, "matrix is singular");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(a.at(col, c), a.at(pivot, c));
                std::swap(inv.at(col, c), inv.at(pivot, c));
            }
        }

        const cf32 scale = cf32(1.0f, 0.0f) / a.at(col, col);
        for (std::size_t c = 0; c < n; ++c) {
            a.at(col, c) *= scale;
            inv.at(col, c) *= scale;
        }

        for (std::size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            const cf32 factor = a.at(r, col);
            if (factor == cf32(0.0f, 0.0f))
                continue;
            for (std::size_t c = 0; c < n; ++c) {
                a.at(r, c) -= factor * a.at(col, c);
                inv.at(r, c) -= factor * inv.at(col, c);
            }
        }
    }
    return inv;
}

std::vector<cf32>
CMat::solve(const std::vector<cf32> &b) const
{
    return inverse().mul_vec(b);
}

float
CMat::frobenius_norm() const
{
    float acc = 0.0f;
    for (const cf32 &v : data_)
        acc += std::norm(v);
    return std::sqrt(acc);
}

float
CMat::max_abs_diff(const CMat &rhs) const
{
    LTE_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "shapes must match");
    float worst = 0.0f;
    for (std::size_t i = 0; i < data_.size(); ++i)
        worst = std::max(worst, std::abs(data_[i] - rhs.data_[i]));
    return worst;
}

std::uint64_t
CMat::inverse_op_count(std::size_t n)
{
    // Gauss-Jordan on [A | I]: ~2n^3 complex MACs, 8 flops each.
    const std::uint64_t n3 = static_cast<std::uint64_t>(n) * n * n;
    return 2 * n3 * 8;
}

} // namespace lte::matrix

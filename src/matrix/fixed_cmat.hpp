/**
 * @file
 * Fixed-capacity dense complex matrix for the per-subcarrier MMSE
 * combiner algebra.  LTE-Advanced uplink matrices never exceed
 * antennas x layers = 4 x 4, so the storage lives entirely on the
 * stack: the hot combiner-weight loop runs one of these per
 * subcarrier with zero heap traffic, unlike the general CMat whose
 * every product/inverse allocates a fresh std::vector.
 *
 * The kernels (including inverse()'s Gauss-Jordan pivoting order)
 * mirror matrix::CMat exactly so both produce identical floats.
 */
#ifndef LTE_MATRIX_FIXED_CMAT_HPP
#define LTE_MATRIX_FIXED_CMAT_HPP

#include <array>
#include <cmath>
#include <cstddef>

#include "common/check.hpp"
#include "common/types.hpp"

namespace lte::matrix {

class FixedCMat
{
  public:
    /** Maximum rows/cols (LTE-A uplink: 4 antennas x 4 layers). */
    static constexpr std::size_t kMaxDim = 4;

    FixedCMat() = default;

    /** A rows x cols matrix of zeros. */
    FixedCMat(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols)
    {
        LTE_CHECK(rows <= kMaxDim && cols <= kMaxDim,
                  "FixedCMat dimension exceeds kMaxDim");
        a_.fill(cf32(0.0f, 0.0f));
    }

    /** The n x n identity. */
    static FixedCMat
    identity(std::size_t n)
    {
        FixedCMat m(n, n);
        for (std::size_t i = 0; i < n; ++i)
            m.at(i, i) = cf32(1.0f, 0.0f);
        return m;
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    cf32 &at(std::size_t r, std::size_t c) { return a_[r * cols_ + c]; }
    const cf32 &
    at(std::size_t r, std::size_t c) const
    {
        return a_[r * cols_ + c];
    }

    /** Conjugate transpose. */
    FixedCMat
    hermitian() const
    {
        FixedCMat out(cols_, rows_);
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c)
                out.at(c, r) = std::conj(at(r, c));
        }
        return out;
    }

    /** Matrix product this * rhs. */
    FixedCMat
    mul(const FixedCMat &rhs) const
    {
        LTE_CHECK(cols_ == rhs.rows_, "shape mismatch in mul");
        FixedCMat out(rows_, rhs.cols_);
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < rhs.cols_; ++c) {
                cf32 acc(0.0f, 0.0f);
                for (std::size_t k = 0; k < cols_; ++k)
                    acc += at(r, k) * rhs.at(k, c);
                out.at(r, c) = acc;
            }
        }
        return out;
    }

    /** this + s*I (square only); MMSE diagonal loading. */
    FixedCMat
    add_scaled_identity(float s) const
    {
        LTE_CHECK(rows_ == cols_, "square matrix required");
        FixedCMat out = *this;
        for (std::size_t i = 0; i < rows_; ++i)
            out.at(i, i) += cf32(s, 0.0f);
        return out;
    }

    /**
     * Inverse via Gauss-Jordan elimination with partial pivoting —
     * the same algorithm (and float-op order) as CMat::inverse().
     * @throws std::invalid_argument if singular to working precision.
     */
    FixedCMat
    inverse() const
    {
        LTE_CHECK(rows_ == cols_, "square matrix required");
        const std::size_t n = rows_;
        FixedCMat a = *this;
        FixedCMat inv = identity(n);

        for (std::size_t col = 0; col < n; ++col) {
            std::size_t pivot = col;
            float best = std::abs(a.at(col, col));
            for (std::size_t r = col + 1; r < n; ++r) {
                const float mag = std::abs(a.at(r, col));
                if (mag > best) {
                    best = mag;
                    pivot = r;
                }
            }
            LTE_CHECK(best > 1e-20f, "matrix is singular");
            if (pivot != col) {
                for (std::size_t c = 0; c < n; ++c) {
                    std::swap(a.at(col, c), a.at(pivot, c));
                    std::swap(inv.at(col, c), inv.at(pivot, c));
                }
            }

            const cf32 scale = cf32(1.0f, 0.0f) / a.at(col, col);
            for (std::size_t c = 0; c < n; ++c) {
                a.at(col, c) *= scale;
                inv.at(col, c) *= scale;
            }

            for (std::size_t r = 0; r < n; ++r) {
                if (r == col)
                    continue;
                const cf32 factor = a.at(r, col);
                if (factor == cf32(0.0f, 0.0f))
                    continue;
                for (std::size_t c = 0; c < n; ++c) {
                    a.at(r, c) -= factor * a.at(col, c);
                    inv.at(r, c) -= factor * inv.at(col, c);
                }
            }
        }
        return inv;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::array<cf32, kMaxDim * kMaxDim> a_{};
};

} // namespace lte::matrix

#endif // LTE_MATRIX_FIXED_CMAT_HPP

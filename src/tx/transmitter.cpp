#include "tx/transmitter.hpp"

#include <cmath>

#include "common/check.hpp"
#include "fft/fft.hpp"
#include "phy/crc.hpp"
#include "phy/scrambler.hpp"
#include "phy/interleaver.hpp"
#include "phy/modulation.hpp"
#include "phy/turbo.hpp"
#include "phy/zadoff_chu.hpp"

namespace lte::tx {

namespace {

std::size_t
data_symbol_position(std::size_t data_symbol)
{
    return data_symbol < kRefSymbolIndex ? data_symbol : data_symbol + 1;
}

/**
 * Expand payload bits into the on-air bit stream of capacity length:
 * pass-through keeps the framed payload; real-turbo mode segments the
 * transport block into LTE code blocks (CRC-24B per block past one),
 * turbo-encodes each, concatenates and zero-pads.  Either way the
 * stream is scrambled with the user's Gold sequence (TS 36.211
 * Sec. 7.2) before modulation.
 */
std::vector<std::uint8_t>
on_air_bits(const phy::UserParams &params,
            const std::vector<std::uint8_t> &framed, bool real_turbo,
            std::uint32_t cell_id)
{
    const std::size_t capacity = phy::capacity_bits(params);
    std::vector<std::uint8_t> air;
    if (!real_turbo) {
        LTE_CHECK(framed.size() == capacity,
                  "framed payload must fill the capacity");
        air = framed;
    } else {
        const phy::TurboSegmentation seg = phy::turbo_segment(capacity);
        LTE_CHECK(framed.size() == seg.tb_bits(),
                  "transport block must match the segmentation");
        const std::size_t data = seg.block_data_bits();
        air.reserve(capacity);
        for (std::size_t b = 0; b < seg.n_blocks; ++b) {
            std::vector<std::uint8_t> info(
                framed.begin() + static_cast<std::ptrdiff_t>(b * data),
                framed.begin() +
                    static_cast<std::ptrdiff_t>((b + 1) * data));
            if (seg.n_blocks > 1)
                info = phy::crc24_attach(std::move(info),
                                         phy::kCrc24BPoly);
            const std::vector<std::uint8_t> coded =
                phy::turbo_encode(info);
            air.insert(air.end(), coded.begin(), coded.end());
        }
        LTE_CHECK(air.size() <= capacity,
                  "turbo output exceeds allocation capacity");
        air.resize(capacity, 0);
    }
    return phy::scramble(air, phy::scrambling_init(params.id, cell_id));
}

} // namespace

TxResult
transmit_user_payload(const phy::UserParams &params,
                      std::vector<std::uint8_t> payload, bool real_turbo,
                      std::uint32_t cell_id)
{
    params.validate();
    const std::size_t bps = bits_per_symbol(params.mod);

    const std::vector<std::uint8_t> framed =
        phy::crc24_attach(std::move(payload));
    const std::vector<std::uint8_t> air =
        on_air_bits(params, framed, real_turbo, cell_id);

    TxResult result;
    result.payload_bits = framed;
    result.grid.layers.resize(params.layers);

    // Canonical framing order, mirroring UserProcessor::finish():
    // slot -> layer -> data symbol -> sample.
    std::size_t bit_pos = 0;
    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        const std::size_t m_sc = params.sc_in_slot(slot);
        const float dft_scale =
            1.0f / std::sqrt(static_cast<float>(m_sc));
        auto plan = fft::FftCache::instance().get(m_sc);

        for (std::size_t layer = 0; layer < params.layers; ++layer) {
            auto &slots = result.grid.layers[layer].slots[slot];

            // DMRS at the reference position.
            slots[kRefSymbolIndex] =
                phy::user_dmrs(params.id, slot, m_sc, layer, cell_id);

            for (std::size_t ds = 0; ds < kDataSymbolsPerSlot; ++ds) {
                const std::vector<std::uint8_t> chunk(
                    air.begin() + static_cast<std::ptrdiff_t>(bit_pos),
                    air.begin() +
                        static_cast<std::ptrdiff_t>(bit_pos +
                                                    m_sc * bps));
                bit_pos += m_sc * bps;

                const CVec symbols = phy::modulate(chunk, params.mod);
                const CVec interleaved = phy::interleave(symbols);

                CVec freq(m_sc);
                plan->forward(interleaved.data(), freq.data());
                for (auto &v : freq)
                    v *= dft_scale;
                slots[data_symbol_position(ds)] = std::move(freq);
            }
        }
    }
    LTE_ASSERT(bit_pos == air.size(), "framing did not consume all bits");
    return result;
}

TxResult
transmit_user(const phy::UserParams &params, Rng &rng, bool real_turbo,
              std::uint32_t cell_id)
{
    const std::size_t capacity = phy::capacity_bits(params);
    const std::size_t payload_len =
        real_turbo ? phy::turbo_segment(capacity).tb_bits() - 24
                   : capacity - 24;
    std::vector<std::uint8_t> payload(payload_len);
    for (auto &b : payload)
        b = static_cast<std::uint8_t>(rng.next_u64() & 1);
    return transmit_user_payload(params, std::move(payload), real_turbo,
                                 cell_id);
}

} // namespace lte::tx

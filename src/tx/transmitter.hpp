/**
 * @file
 * UE-side uplink transmit chain.
 *
 * The paper's benchmark feeds the receiver random IQ buffers; we
 * additionally provide a real transmitter so the whole receive chain
 * can be verified end-to-end (payload in == payload out, CRC green).
 * Per data symbol and layer the chain is the exact mirror of the
 * receiver: bits -> constellation mapping -> symbol interleaving ->
 * DFT spreading (SC-FDMA) -> allocated subcarriers.  The DMRS symbol
 * carries the layer's cyclic-shifted Zadoff-Chu sequence.
 */
#ifndef LTE_TX_TRANSMITTER_HPP
#define LTE_TX_TRANSMITTER_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "phy/params.hpp"

namespace lte::tx {

/**
 * Frequency-domain transmit grid, one entry per layer:
 * layers[l].slots[s][sym] holds the allocated subcarriers of symbol
 * sym in slot s before the channel.
 */
struct LayerGrid
{
    struct Layer
    {
        std::array<std::array<CVec, kSymbolsPerSlot>, kSlotsPerSubframe>
            slots;
    };
    std::vector<Layer> layers;
};

/** A transmitted user: the payload and the on-air grid. */
struct TxResult
{
    /**
     * The exact bit vector a correct receiver reproduces: for
     * pass-through mode the full capacity payload with CRC-24A in the
     * last 24 bits; for real-turbo mode the transport block (payload +
     * CRC-24A) of the LTE code-block segmentation — the per-block
     * CRC-24B is internal framing the receiver strips.
     */
    std::vector<std::uint8_t> payload_bits;
    LayerGrid grid;
};

/**
 * Build the transmit grid for one user with a random payload.
 *
 * @param params      the user's scheduling parameters
 * @param rng         payload bit source
 * @param real_turbo  encode with the real turbo code (must match the
 *                    receiver's ReceiverConfig::use_real_turbo)
 * @param cell_id     serving cell (1..511); selects the scrambling
 *                    sequence and DMRS roots and must match the
 *                    receiver's ReceiverConfig::cell_id
 */
TxResult transmit_user(const phy::UserParams &params, Rng &rng,
                       bool real_turbo = false,
                       std::uint32_t cell_id = 1);

/**
 * Build the transmit grid for a caller-supplied payload (pass-through
 * framing: payload length must be capacity_bits(params) - 24; the CRC
 * is attached internally).
 */
TxResult transmit_user_payload(const phy::UserParams &params,
                               std::vector<std::uint8_t> payload,
                               bool real_turbo = false,
                               std::uint32_t cell_id = 1);

} // namespace lte::tx

#endif // LTE_TX_TRANSMITTER_HPP

/**
 * @file
 * Portable fixed-width SIMD layer for the subframe hot kernels.
 *
 * The abstraction is a small value type `vf` holding kLanes floats plus
 * a split-complex pair `cvf` (separate real/imaginary vectors), with
 * free functions for the handful of operations the DSP kernels need:
 * load/store (including complex deinterleave/interleave and strided
 * twiddle gathers), arithmetic, min/max, compare-and-select.
 *
 * Backend selection is compile time:
 *   - LTE_SIMD=OFF (no LTE_SIMD_ENABLED define): kernels keep their
 *     original scalar loops; this header still compiles (scalar
 *     backend) so tests and benches build in every configuration.
 *   - LTE_SIMD=ON: picks AVX2 (8 lanes), SSE2 (4 lanes) or NEON
 *     (4 lanes) from the compiler's target macros, falling back to a
 *     4-lane scalar struct the auto-vectorizer handles well.
 *
 * Tail policy: kernels process floor(n / kLanes) * kLanes elements in
 * vector blocks and finish with their scalar reference twin, so tail
 * lanes are bit-identical to the scalar implementation by construction.
 */
#ifndef LTE_SIMD_SIMD_HPP
#define LTE_SIMD_SIMD_HPP

#include <cstddef>

#include "common/types.hpp"

#if defined(LTE_SIMD_ENABLED)
#  if defined(__AVX2__)
#    define LTE_SIMD_BACKEND_AVX2 1
#  elif defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
#    define LTE_SIMD_BACKEND_SSE2 1
#  elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#    define LTE_SIMD_BACKEND_NEON 1
#  else
#    define LTE_SIMD_BACKEND_SCALAR 1
#  endif
#else
#  define LTE_SIMD_BACKEND_SCALAR 1
#endif

#if defined(LTE_SIMD_BACKEND_AVX2) || defined(LTE_SIMD_BACKEND_SSE2)
#  include <immintrin.h>
#elif defined(LTE_SIMD_BACKEND_NEON)
#  include <arm_neon.h>
#endif

namespace lte::simd {

#if defined(LTE_SIMD_BACKEND_AVX2)
inline constexpr std::size_t kLanes = 8;
#else
inline constexpr std::size_t kLanes = 4;
#endif

/** Human-readable backend name (study/bench metadata). */
constexpr const char *
backend_name()
{
#if defined(LTE_SIMD_BACKEND_AVX2)
    return "avx2";
#elif defined(LTE_SIMD_BACKEND_SSE2)
    return "sse2";
#elif defined(LTE_SIMD_BACKEND_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/** True when the library was built with LTE_SIMD=ON. */
constexpr bool
enabled()
{
#if defined(LTE_SIMD_ENABLED)
    return true;
#else
    return false;
#endif
}

// ---------------------------------------------------------------------------
// vf: kLanes packed floats
// ---------------------------------------------------------------------------

#if defined(LTE_SIMD_BACKEND_AVX2)

struct vf
{
    __m256 raw;

    static vf zero() { return {_mm256_setzero_ps()}; }
    static vf set1(float x) { return {_mm256_set1_ps(x)}; }
    static vf load(const float *p) { return {_mm256_loadu_ps(p)}; }
    void store(float *p) const { _mm256_storeu_ps(p, raw); }
};

inline vf operator+(vf a, vf b) { return {_mm256_add_ps(a.raw, b.raw)}; }
inline vf operator-(vf a, vf b) { return {_mm256_sub_ps(a.raw, b.raw)}; }
inline vf operator*(vf a, vf b) { return {_mm256_mul_ps(a.raw, b.raw)}; }
inline vf operator/(vf a, vf b) { return {_mm256_div_ps(a.raw, b.raw)}; }
inline vf vmin(vf a, vf b) { return {_mm256_min_ps(a.raw, b.raw)}; }
inline vf vmax(vf a, vf b) { return {_mm256_max_ps(a.raw, b.raw)}; }
inline vf vneg(vf a) { return {_mm256_sub_ps(_mm256_setzero_ps(), a.raw)}; }

/** Lane mask: a > b ? all-ones : zero. */
inline vf vgt(vf a, vf b) { return {_mm256_cmp_ps(a.raw, b.raw, _CMP_GT_OQ)}; }
/** Per-lane select: mask ? a : b (mask lanes all-ones/zero). */
inline vf
vselect(vf mask, vf a, vf b)
{
    return {_mm256_blendv_ps(b.raw, a.raw, mask.raw)};
}

#elif defined(LTE_SIMD_BACKEND_SSE2)

struct vf
{
    __m128 raw;

    static vf zero() { return {_mm_setzero_ps()}; }
    static vf set1(float x) { return {_mm_set1_ps(x)}; }
    static vf load(const float *p) { return {_mm_loadu_ps(p)}; }
    void store(float *p) const { _mm_storeu_ps(p, raw); }
};

inline vf operator+(vf a, vf b) { return {_mm_add_ps(a.raw, b.raw)}; }
inline vf operator-(vf a, vf b) { return {_mm_sub_ps(a.raw, b.raw)}; }
inline vf operator*(vf a, vf b) { return {_mm_mul_ps(a.raw, b.raw)}; }
inline vf operator/(vf a, vf b) { return {_mm_div_ps(a.raw, b.raw)}; }
inline vf vmin(vf a, vf b) { return {_mm_min_ps(a.raw, b.raw)}; }
inline vf vmax(vf a, vf b) { return {_mm_max_ps(a.raw, b.raw)}; }
inline vf vneg(vf a) { return {_mm_sub_ps(_mm_setzero_ps(), a.raw)}; }

inline vf vgt(vf a, vf b) { return {_mm_cmpgt_ps(a.raw, b.raw)}; }
inline vf
vselect(vf mask, vf a, vf b)
{
    // SSE2-safe blend: (mask & a) | (~mask & b).
    return {_mm_or_ps(_mm_and_ps(mask.raw, a.raw),
                      _mm_andnot_ps(mask.raw, b.raw))};
}

#elif defined(LTE_SIMD_BACKEND_NEON)

struct vf
{
    float32x4_t raw;

    static vf zero() { return {vdupq_n_f32(0.0f)}; }
    static vf set1(float x) { return {vdupq_n_f32(x)}; }
    static vf load(const float *p) { return {vld1q_f32(p)}; }
    void store(float *p) const { vst1q_f32(p, raw); }
};

inline vf operator+(vf a, vf b) { return {vaddq_f32(a.raw, b.raw)}; }
inline vf operator-(vf a, vf b) { return {vsubq_f32(a.raw, b.raw)}; }
inline vf operator*(vf a, vf b) { return {vmulq_f32(a.raw, b.raw)}; }
inline vf
operator/(vf a, vf b)
{
#  if defined(__aarch64__)
    return {vdivq_f32(a.raw, b.raw)};
#  else
    // Two Newton-Raphson refinements of the reciprocal estimate.
    float32x4_t r = vrecpeq_f32(b.raw);
    r = vmulq_f32(r, vrecpsq_f32(b.raw, r));
    r = vmulq_f32(r, vrecpsq_f32(b.raw, r));
    return {vmulq_f32(a.raw, r)};
#  endif
}
inline vf vmin(vf a, vf b) { return {vminq_f32(a.raw, b.raw)}; }
inline vf vmax(vf a, vf b) { return {vmaxq_f32(a.raw, b.raw)}; }
inline vf vneg(vf a) { return {vnegq_f32(a.raw)}; }

inline vf
vgt(vf a, vf b)
{
    return {vreinterpretq_f32_u32(vcgtq_f32(a.raw, b.raw))};
}
inline vf
vselect(vf mask, vf a, vf b)
{
    return {vbslq_f32(vreinterpretq_u32_f32(mask.raw), a.raw, b.raw)};
}

#else // LTE_SIMD_BACKEND_SCALAR

struct vf
{
    float raw[kLanes];

    static vf
    zero()
    {
        vf r{};
        return r;
    }
    static vf
    set1(float x)
    {
        vf r;
        for (std::size_t i = 0; i < kLanes; ++i)
            r.raw[i] = x;
        return r;
    }
    static vf
    load(const float *p)
    {
        vf r;
        for (std::size_t i = 0; i < kLanes; ++i)
            r.raw[i] = p[i];
        return r;
    }
    void
    store(float *p) const
    {
        for (std::size_t i = 0; i < kLanes; ++i)
            p[i] = raw[i];
    }
};

#  define LTE_SIMD_SCALAR_OP(name, expr)                                     \
      inline vf name(vf a, vf b)                                             \
      {                                                                      \
          vf r;                                                              \
          for (std::size_t i = 0; i < kLanes; ++i)                           \
              r.raw[i] = (expr);                                             \
          return r;                                                          \
      }
LTE_SIMD_SCALAR_OP(operator+, a.raw[i] + b.raw[i])
LTE_SIMD_SCALAR_OP(operator-, a.raw[i] - b.raw[i])
LTE_SIMD_SCALAR_OP(operator*, a.raw[i] * b.raw[i])
LTE_SIMD_SCALAR_OP(operator/, a.raw[i] / b.raw[i])
LTE_SIMD_SCALAR_OP(vmin, a.raw[i] < b.raw[i] ? a.raw[i] : b.raw[i])
LTE_SIMD_SCALAR_OP(vmax, a.raw[i] > b.raw[i] ? a.raw[i] : b.raw[i])
#  undef LTE_SIMD_SCALAR_OP

inline vf
vneg(vf a)
{
    vf r;
    for (std::size_t i = 0; i < kLanes; ++i)
        r.raw[i] = -a.raw[i];
    return r;
}

inline vf
vgt(vf a, vf b)
{
    vf r;
    for (std::size_t i = 0; i < kLanes; ++i) {
        // All-ones float pattern is NaN; keep an explicit bit mask.
        union {
            float f;
            unsigned u;
        } m;
        m.u = a.raw[i] > b.raw[i] ? 0xFFFFFFFFu : 0u;
        r.raw[i] = m.f;
    }
    return r;
}
inline vf
vselect(vf mask, vf a, vf b)
{
    vf r;
    for (std::size_t i = 0; i < kLanes; ++i) {
        union {
            float f;
            unsigned u;
        } m;
        m.f = mask.raw[i];
        r.raw[i] = m.u ? a.raw[i] : b.raw[i];
    }
    return r;
}

#endif // backend

} // namespace lte::simd

#endif // LTE_SIMD_SIMD_HPP

/**
 * @file
 * 8-lane metric vectors for the LTE turbo trellis, built on the same
 * backend selection as `simd::vf`.
 *
 * The max-log-MAP recursions update one metric per trellis state; the
 * LTE constituent code has exactly 8 states.  The decoder's hot type
 * is `v8s` — eight saturating 16-bit metrics in a single SSE register
 * (fixed-point decode, DESIGN.md Sec. 3h): saturating add/subtract
 * and 8-lane max are one instruction each, which is precisely the
 * arithmetic a portable scalar implementation has to emulate with
 * explicit clamping.  A float `v8f` variant (one AVX2 register or two
 * 4-lane `vf` halves) is kept for kernels that want unquantized
 * metrics.
 * Besides the lane-wise arithmetic, the recursions need three fixed
 * cross-lane permutations (DESIGN.md Sec. 3h):
 *
 *  - dup_low_pairs / dup_high_pairs: alpha_next[s'] draws from the two
 *    predecessors s'>>1 and (s'>>1)+4, i.e. lanes [0,0,1,1,2,2,3,3]
 *    and [4,4,5,5,6,6,7,7];
 *  - perm_next0 / perm_next1: beta[s] draws from the successor under
 *    input 0 (lanes [0,2,5,7,1,3,4,6]) and input 1 (the same table
 *    with the low bit flipped, [1,3,4,6,0,2,5,7]).
 *
 * `dup_lane0` (broadcast state 0) feeds the periodic metric
 * renormalization: subtracting lane 0 keeps the column bounded without
 * putting a horizontal reduction on the recursion's serial dependency
 * chain — `hmax` is only needed for the LLR outputs.
 * `load_fwd_metrics` / `load_bwd_metrics` expand one precomputed
 * branch-metric row [A, -A, B, -B] into the signed per-lane metric
 * vectors of the forward and backward updates, so the recursion loops
 * perform no arithmetic to build metrics — just a load and a shuffle
 * off the critical path.
 * Every operation is an exact lane selection or the same IEEE add/mul
 * the scalar twin performs, so scalar and SIMD decodes are
 * bit-identical (tests/test_turbo.cpp parity suite).
 */
#ifndef LTE_SIMD_TRELLIS_HPP
#define LTE_SIMD_TRELLIS_HPP

#include <cstddef>
#include <cstdint>

#include "simd/simd.hpp"

namespace lte::simd {

#if defined(LTE_SIMD_BACKEND_AVX2)

/** One float per trellis state; a single 8-lane register on AVX2. */
struct v8f
{
    __m256 raw;

    static v8f set1(float x) { return {_mm256_set1_ps(x)}; }
    static v8f load(const float *p) { return {_mm256_loadu_ps(p)}; }
    void store(float *p) const { _mm256_storeu_ps(p, raw); }
};

inline v8f operator+(v8f a, v8f b) { return {_mm256_add_ps(a.raw, b.raw)}; }
inline v8f operator-(v8f a, v8f b) { return {_mm256_sub_ps(a.raw, b.raw)}; }
inline v8f operator*(v8f a, v8f b) { return {_mm256_mul_ps(a.raw, b.raw)}; }
inline v8f v8max(v8f a, v8f b) { return {_mm256_max_ps(a.raw, b.raw)}; }

inline v8f
dup_low_pairs(v8f x)
{
    const __m256i idx = _mm256_setr_epi32(0, 0, 1, 1, 2, 2, 3, 3);
    return {_mm256_permutevar8x32_ps(x.raw, idx)};
}

inline v8f
dup_high_pairs(v8f x)
{
    const __m256i idx = _mm256_setr_epi32(4, 4, 5, 5, 6, 6, 7, 7);
    return {_mm256_permutevar8x32_ps(x.raw, idx)};
}

inline v8f
perm_next0(v8f x)
{
    const __m256i idx = _mm256_setr_epi32(0, 2, 5, 7, 1, 3, 4, 6);
    return {_mm256_permutevar8x32_ps(x.raw, idx)};
}

inline v8f
perm_next1(v8f x)
{
    const __m256i idx = _mm256_setr_epi32(1, 3, 4, 6, 0, 2, 5, 7);
    return {_mm256_permutevar8x32_ps(x.raw, idx)};
}

inline float
hmax(v8f x)
{
    __m128 m = _mm_max_ps(_mm256_castps256_ps128(x.raw),
                          _mm256_extractf128_ps(x.raw, 1));
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, _MM_SHUFFLE(1, 0, 3, 2)));
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtss_f32(m);
}

inline v8f
dup_lane0(v8f x)
{
    return {_mm256_permutevar8x32_ps(x.raw, _mm256_setzero_si256())};
}

inline v8f
load_fwd_metrics(const float *row)
{
    const __m128 r = _mm_loadu_ps(row);
    const __m128 rev = _mm_shuffle_ps(r, r, _MM_SHUFFLE(0, 1, 2, 3));
    return {_mm256_insertf128_ps(_mm256_castps128_ps256(r), rev, 1)};
}

inline v8f
load_bwd_metrics(const float *row)
{
    const __m128 r = _mm_loadu_ps(row);
    const __m128 g = _mm_shuffle_ps(r, r, _MM_SHUFFLE(0, 2, 2, 0));
    return {_mm256_insertf128_ps(_mm256_castps128_ps256(g), g, 1)};
}

#elif defined(LTE_SIMD_BACKEND_SSE2)

/** One float per trellis state; two 4-lane `vf` halves on SSE2. */
struct v8f
{
    vf lo; ///< states 0..3
    vf hi; ///< states 4..7

    static v8f set1(float x) { return {vf::set1(x), vf::set1(x)}; }
    static v8f load(const float *p) { return {vf::load(p), vf::load(p + 4)}; }
    void
    store(float *p) const
    {
        lo.store(p);
        hi.store(p + 4);
    }
};

inline v8f operator+(v8f a, v8f b) { return {a.lo + b.lo, a.hi + b.hi}; }
inline v8f operator-(v8f a, v8f b) { return {a.lo - b.lo, a.hi - b.hi}; }
inline v8f operator*(v8f a, v8f b) { return {a.lo * b.lo, a.hi * b.hi}; }
inline v8f
v8max(v8f a, v8f b)
{
    return {vmax(a.lo, b.lo), vmax(a.hi, b.hi)};
}

inline v8f
dup_low_pairs(v8f x)
{
    return {{_mm_unpacklo_ps(x.lo.raw, x.lo.raw)},
            {_mm_unpackhi_ps(x.lo.raw, x.lo.raw)}};
}

inline v8f
dup_high_pairs(v8f x)
{
    return {{_mm_unpacklo_ps(x.hi.raw, x.hi.raw)},
            {_mm_unpackhi_ps(x.hi.raw, x.hi.raw)}};
}

inline v8f
perm_next0(v8f x)
{
    // [x0,x2,x5,x7 | x1,x3,x4,x6]
    return {{_mm_shuffle_ps(x.lo.raw, x.hi.raw, _MM_SHUFFLE(3, 1, 2, 0))},
            {_mm_shuffle_ps(x.lo.raw, x.hi.raw, _MM_SHUFFLE(2, 0, 3, 1))}};
}

inline v8f
perm_next1(v8f x)
{
    // perm_next0 with the successor's low bit flipped: halves swap.
    return {{_mm_shuffle_ps(x.lo.raw, x.hi.raw, _MM_SHUFFLE(2, 0, 3, 1))},
            {_mm_shuffle_ps(x.lo.raw, x.hi.raw, _MM_SHUFFLE(3, 1, 2, 0))}};
}

inline float
hmax(v8f x)
{
    __m128 m = _mm_max_ps(x.lo.raw, x.hi.raw);
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, _MM_SHUFFLE(1, 0, 3, 2)));
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtss_f32(m);
}

inline v8f
dup_lane0(v8f x)
{
    const __m128 l0 =
        _mm_shuffle_ps(x.lo.raw, x.lo.raw, _MM_SHUFFLE(0, 0, 0, 0));
    return {{l0}, {l0}};
}

inline v8f
load_fwd_metrics(const float *row)
{
    const __m128 r = _mm_loadu_ps(row);
    return {{r}, {_mm_shuffle_ps(r, r, _MM_SHUFFLE(0, 1, 2, 3))}};
}

inline v8f
load_bwd_metrics(const float *row)
{
    const __m128 r = _mm_loadu_ps(row);
    const __m128 g = _mm_shuffle_ps(r, r, _MM_SHUFFLE(0, 2, 2, 0));
    return {{g}, {g}};
}

#else // NEON and scalar: 8 plain floats, permutes by lane table

/** One float per trellis state; plain lanes on NEON/scalar builds
 *  (NEON lacks generic cross-register shuffles; the decoder's scalar
 *  twin is the performance path there). */
struct v8f
{
    float raw[8];

    static v8f
    set1(float x)
    {
        v8f r;
        for (std::size_t i = 0; i < 8; ++i)
            r.raw[i] = x;
        return r;
    }
    static v8f
    load(const float *p)
    {
        v8f r;
        for (std::size_t i = 0; i < 8; ++i)
            r.raw[i] = p[i];
        return r;
    }
    void
    store(float *p) const
    {
        for (std::size_t i = 0; i < 8; ++i)
            p[i] = raw[i];
    }
};

#  define LTE_SIMD_V8F_OP(name, expr)                                        \
      inline v8f name(v8f a, v8f b)                                          \
      {                                                                      \
          v8f r;                                                             \
          for (std::size_t i = 0; i < 8; ++i)                                \
              r.raw[i] = (expr);                                             \
          return r;                                                          \
      }
LTE_SIMD_V8F_OP(operator+, a.raw[i] + b.raw[i])
LTE_SIMD_V8F_OP(operator-, a.raw[i] - b.raw[i])
LTE_SIMD_V8F_OP(operator*, a.raw[i] * b.raw[i])
LTE_SIMD_V8F_OP(v8max, a.raw[i] > b.raw[i] ? a.raw[i] : b.raw[i])
#  undef LTE_SIMD_V8F_OP

inline v8f
permute8(v8f x, const int (&idx)[8])
{
    v8f r;
    for (std::size_t i = 0; i < 8; ++i)
        r.raw[i] = x.raw[idx[i]];
    return r;
}

inline v8f
dup_low_pairs(v8f x)
{
    static constexpr int idx[8] = {0, 0, 1, 1, 2, 2, 3, 3};
    return permute8(x, idx);
}

inline v8f
dup_high_pairs(v8f x)
{
    static constexpr int idx[8] = {4, 4, 5, 5, 6, 6, 7, 7};
    return permute8(x, idx);
}

inline v8f
perm_next0(v8f x)
{
    static constexpr int idx[8] = {0, 2, 5, 7, 1, 3, 4, 6};
    return permute8(x, idx);
}

inline v8f
perm_next1(v8f x)
{
    static constexpr int idx[8] = {1, 3, 4, 6, 0, 2, 5, 7};
    return permute8(x, idx);
}

inline float
hmax(v8f x)
{
    float m = x.raw[0];
    for (std::size_t i = 1; i < 8; ++i)
        m = x.raw[i] > m ? x.raw[i] : m;
    return m;
}

inline v8f
dup_lane0(v8f x)
{
    return v8f::set1(x.raw[0]);
}

inline v8f
load_fwd_metrics(const float *row)
{
    v8f r;
    for (std::size_t i = 0; i < 4; ++i) {
        r.raw[i] = row[i];
        r.raw[4 + i] = row[3 - i];
    }
    return r;
}

inline v8f
load_bwd_metrics(const float *row)
{
    v8f r;
    static constexpr int idx[8] = {0, 2, 2, 0, 0, 2, 2, 0};
    for (std::size_t i = 0; i < 8; ++i)
        r.raw[i] = row[idx[i]];
    return r;
}

#endif

// ---------------------------------------------------------------------------
// v8s: eight saturating int16 metrics — the fixed-point decode column.
//
// Branch metrics are quantized to a per-pass adaptive Q (turbo.cpp) so
// one state metric fits 16 bits between renormalizations; adds/subs
// saturate instead of wrapping, which is a single instruction per
// column in SIMD (PADDSW/PSUBSW/PMAXSW) while the scalar twin emulates
// it with an explicit clamp (`sat16`) per operation — the asymmetry
// that makes the vectorized decoder profitable.
// ---------------------------------------------------------------------------

/** Saturating 16-bit clamp: the scalar semantics of adds/subs.  Shared
 *  with the decoder's scalar twin so both paths saturate identically. */
inline std::int16_t
sat16(int x)
{
    return static_cast<std::int16_t>(x > 32767 ? 32767
                                                : (x < -32768 ? -32768 : x));
}

#if defined(LTE_SIMD_BACKEND_AVX2) || defined(LTE_SIMD_BACKEND_SSE2)

/** One int16 per trellis state; AVX2 and SSE2 builds share this
 *  definition — the whole column is 128 bits either way. */
struct v8s
{
    __m128i raw;

    static v8s
    load(const std::int16_t *p)
    {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p))};
    }
    void
    store(std::int16_t *p) const
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), raw);
    }
};

inline v8s adds(v8s a, v8s b) { return {_mm_adds_epi16(a.raw, b.raw)}; }
inline v8s subs(v8s a, v8s b) { return {_mm_subs_epi16(a.raw, b.raw)}; }
inline v8s v8smax(v8s a, v8s b) { return {_mm_max_epi16(a.raw, b.raw)}; }

inline v8s
dup_low_pairs(v8s x)
{
    return {_mm_unpacklo_epi16(x.raw, x.raw)};
}

inline v8s
dup_high_pairs(v8s x)
{
    return {_mm_unpackhi_epi16(x.raw, x.raw)};
}

inline v8s
perm_next0(v8s x)
{
    // Lanes [0,2,5,7,1,3,4,6] via two in-half word shuffles and one
    // dword shuffle (no PSHUFB dependency: pure SSE2).
    __m128i r = _mm_shufflelo_epi16(x.raw, _MM_SHUFFLE(3, 1, 2, 0));
    r = _mm_shufflehi_epi16(r, _MM_SHUFFLE(2, 0, 3, 1));
    return {_mm_shuffle_epi32(r, _MM_SHUFFLE(3, 1, 2, 0))};
}

inline v8s
perm_next1(v8s x)
{
    // Lanes [1,3,4,6,0,2,5,7].
    __m128i r = _mm_shufflelo_epi16(x.raw, _MM_SHUFFLE(2, 0, 3, 1));
    r = _mm_shufflehi_epi16(r, _MM_SHUFFLE(3, 1, 2, 0));
    return {_mm_shuffle_epi32(r, _MM_SHUFFLE(3, 1, 2, 0))};
}

inline std::int16_t
hmax(v8s x)
{
    __m128i m = _mm_max_epi16(x.raw, _mm_srli_si128(x.raw, 8));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 4));
    m = _mm_max_epi16(m, _mm_srli_si128(m, 2));
    return static_cast<std::int16_t>(_mm_cvtsi128_si32(m));
}

inline v8s
dup_lane0(v8s x)
{
    return {_mm_shuffle_epi32(_mm_shufflelo_epi16(x.raw, 0), 0)};
}

inline v8s
load_fwd_metrics(const std::int16_t *row)
{
    const __m128i r =
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(row));
    const __m128i rev = _mm_shufflelo_epi16(r, _MM_SHUFFLE(0, 1, 2, 3));
    return {_mm_unpacklo_epi64(r, rev)};
}

inline v8s
load_bwd_metrics(const std::int16_t *row)
{
    const __m128i r =
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(row));
    const __m128i g = _mm_shufflelo_epi16(r, _MM_SHUFFLE(0, 2, 2, 0));
    return {_mm_unpacklo_epi64(g, g)};
}

#else // NEON and scalar builds: plain lanes with emulated saturation

/** One int16 per trellis state on NEON/scalar builds; arithmetic
 *  saturates through `sat16` so results match the x86 backends. */
struct v8s
{
    std::int16_t raw[8];

    static v8s
    load(const std::int16_t *p)
    {
        v8s r;
        for (std::size_t i = 0; i < 8; ++i)
            r.raw[i] = p[i];
        return r;
    }
    void
    store(std::int16_t *p) const
    {
        for (std::size_t i = 0; i < 8; ++i)
            p[i] = raw[i];
    }
};

#  define LTE_SIMD_V8S_OP(name, expr)                                        \
      inline v8s name(v8s a, v8s b)                                          \
      {                                                                      \
          v8s r;                                                             \
          for (std::size_t i = 0; i < 8; ++i)                                \
              r.raw[i] = (expr);                                             \
          return r;                                                          \
      }
LTE_SIMD_V8S_OP(adds, sat16(int(a.raw[i]) + int(b.raw[i])))
LTE_SIMD_V8S_OP(subs, sat16(int(a.raw[i]) - int(b.raw[i])))
LTE_SIMD_V8S_OP(v8smax, a.raw[i] > b.raw[i] ? a.raw[i] : b.raw[i])
#  undef LTE_SIMD_V8S_OP

inline v8s
permute8(v8s x, const int (&idx)[8])
{
    v8s r;
    for (std::size_t i = 0; i < 8; ++i)
        r.raw[i] = x.raw[idx[i]];
    return r;
}

inline v8s
dup_low_pairs(v8s x)
{
    static constexpr int idx[8] = {0, 0, 1, 1, 2, 2, 3, 3};
    return permute8(x, idx);
}

inline v8s
dup_high_pairs(v8s x)
{
    static constexpr int idx[8] = {4, 4, 5, 5, 6, 6, 7, 7};
    return permute8(x, idx);
}

inline v8s
perm_next0(v8s x)
{
    static constexpr int idx[8] = {0, 2, 5, 7, 1, 3, 4, 6};
    return permute8(x, idx);
}

inline v8s
perm_next1(v8s x)
{
    static constexpr int idx[8] = {1, 3, 4, 6, 0, 2, 5, 7};
    return permute8(x, idx);
}

inline std::int16_t
hmax(v8s x)
{
    std::int16_t m = x.raw[0];
    for (std::size_t i = 1; i < 8; ++i)
        m = x.raw[i] > m ? x.raw[i] : m;
    return m;
}

inline v8s
dup_lane0(v8s x)
{
    v8s r;
    for (std::size_t i = 0; i < 8; ++i)
        r.raw[i] = x.raw[0];
    return r;
}

inline v8s
load_fwd_metrics(const std::int16_t *row)
{
    v8s r;
    for (std::size_t i = 0; i < 4; ++i) {
        r.raw[i] = row[i];
        r.raw[4 + i] = row[3 - i];
    }
    return r;
}

inline v8s
load_bwd_metrics(const std::int16_t *row)
{
    v8s r;
    static constexpr int idx[8] = {0, 2, 2, 0, 0, 2, 2, 0};
    for (std::size_t i = 0; i < 8; ++i)
        r.raw[i] = row[idx[i]];
    return r;
}

#endif

} // namespace lte::simd

#endif // LTE_SIMD_TRELLIS_HPP

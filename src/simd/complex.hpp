/**
 * @file
 * Split-complex (structure-of-arrays) vector type on top of simd::vf.
 *
 * The receive-chain buffers store interleaved std::complex<float>; the
 * SIMD kernels want separate real/imaginary registers so a complex
 * multiply is plain mul/add lanes.  `cload`/`cstore` convert between
 * the two layouts with shuffles (one vld2/vst2 on NEON), and
 * `cload_strided` gathers kLanes complex values at a constant stride
 * (FFT twiddle access patterns).
 */
#ifndef LTE_SIMD_COMPLEX_HPP
#define LTE_SIMD_COMPLEX_HPP

#include "simd/simd.hpp"

namespace lte::simd {

/** kLanes complex values, split into real and imaginary vectors. */
struct cvf
{
    vf re, im;

    static cvf zero() { return {vf::zero(), vf::zero()}; }
    static cvf set1(cf32 x) { return {vf::set1(x.real()), vf::set1(x.imag())}; }
};

inline cvf operator+(cvf a, cvf b) { return {a.re + b.re, a.im + b.im}; }
inline cvf operator-(cvf a, cvf b) { return {a.re - b.re, a.im - b.im}; }

/** Complex product a*b (naive formula; same arithmetic as the scalar
 *  kernels' std::complex multiply on finite inputs). */
inline cvf
cmul(cvf a, cvf b)
{
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

/** a * conj(b). */
inline cvf
cmul_conj(cvf a, cvf b)
{
    return {a.re * b.re + a.im * b.im, a.im * b.re - a.re * b.im};
}

inline cvf cconj(cvf a) { return {a.re, vneg(a.im)}; }

/** |a|^2 per lane. */
inline vf cnorm(cvf a) { return a.re * a.re + a.im * a.im; }

/** Scale by a real vector. */
inline cvf cscale(cvf a, vf s) { return {a.re * s, a.im * s}; }

// ---------------------------------------------------------------------------
// Interleaved <-> split-complex conversions
// ---------------------------------------------------------------------------

#if defined(LTE_SIMD_BACKEND_AVX2)

inline cvf
cload(const cf32 *p)
{
    const float *f = reinterpret_cast<const float *>(p);
    const __m256 a = _mm256_loadu_ps(f);     // r0 i0 r1 i1 | r2 i2 r3 i3
    const __m256 b = _mm256_loadu_ps(f + 8); // r4 i4 r5 i5 | r6 i6 r7 i7
    const __m256 t0 = _mm256_permute2f128_ps(a, b, 0x20);
    const __m256 t1 = _mm256_permute2f128_ps(a, b, 0x31);
    return {{_mm256_shuffle_ps(t0, t1, _MM_SHUFFLE(2, 0, 2, 0))},
            {_mm256_shuffle_ps(t0, t1, _MM_SHUFFLE(3, 1, 3, 1))}};
}

inline void
store_interleaved2(float *f, vf a, vf b)
{
    const __m256 lo = _mm256_unpacklo_ps(a.raw, b.raw);
    const __m256 hi = _mm256_unpackhi_ps(a.raw, b.raw);
    _mm256_storeu_ps(f, _mm256_permute2f128_ps(lo, hi, 0x20));
    _mm256_storeu_ps(f + 8, _mm256_permute2f128_ps(lo, hi, 0x31));
}

inline cvf
cload_strided(const cf32 *p, std::size_t stride)
{
    const float *f = reinterpret_cast<const float *>(p);
    const int s2 = static_cast<int>(2 * stride);
    const __m256i idx = _mm256_mullo_epi32(
        _mm256_set_epi32(7, 6, 5, 4, 3, 2, 1, 0), _mm256_set1_epi32(s2));
    return {{_mm256_i32gather_ps(f, idx, 4)},
            {_mm256_i32gather_ps(f + 1, idx, 4)}};
}

#elif defined(LTE_SIMD_BACKEND_SSE2)

inline cvf
cload(const cf32 *p)
{
    const float *f = reinterpret_cast<const float *>(p);
    const __m128 a = _mm_loadu_ps(f);     // r0 i0 r1 i1
    const __m128 b = _mm_loadu_ps(f + 4); // r2 i2 r3 i3
    return {{_mm_shuffle_ps(a, b, _MM_SHUFFLE(2, 0, 2, 0))},
            {_mm_shuffle_ps(a, b, _MM_SHUFFLE(3, 1, 3, 1))}};
}

inline void
store_interleaved2(float *f, vf a, vf b)
{
    _mm_storeu_ps(f, _mm_unpacklo_ps(a.raw, b.raw));
    _mm_storeu_ps(f + 4, _mm_unpackhi_ps(a.raw, b.raw));
}

inline cvf
cload_strided(const cf32 *p, std::size_t stride)
{
    const cf32 a = p[0];
    const cf32 b = p[stride];
    const cf32 c = p[2 * stride];
    const cf32 d = p[3 * stride];
    return {{_mm_setr_ps(a.real(), b.real(), c.real(), d.real())},
            {_mm_setr_ps(a.imag(), b.imag(), c.imag(), d.imag())}};
}

#elif defined(LTE_SIMD_BACKEND_NEON)

inline cvf
cload(const cf32 *p)
{
    const float32x4x2_t v =
        vld2q_f32(reinterpret_cast<const float *>(p));
    return {{v.val[0]}, {v.val[1]}};
}

inline void
store_interleaved2(float *f, vf a, vf b)
{
    float32x4x2_t out;
    out.val[0] = a.raw;
    out.val[1] = b.raw;
    vst2q_f32(f, out);
}

inline cvf
cload_strided(const cf32 *p, std::size_t stride)
{
    float re[4], im[4];
    for (std::size_t i = 0; i < 4; ++i) {
        re[i] = p[i * stride].real();
        im[i] = p[i * stride].imag();
    }
    return {vf::load(re), vf::load(im)};
}

#else // scalar

inline cvf
cload(const cf32 *p)
{
    cvf v;
    for (std::size_t i = 0; i < kLanes; ++i) {
        v.re.raw[i] = p[i].real();
        v.im.raw[i] = p[i].imag();
    }
    return v;
}

inline void
store_interleaved2(float *f, vf a, vf b)
{
    for (std::size_t i = 0; i < kLanes; ++i) {
        f[2 * i] = a.raw[i];
        f[2 * i + 1] = b.raw[i];
    }
}

inline cvf
cload_strided(const cf32 *p, std::size_t stride)
{
    cvf v;
    for (std::size_t i = 0; i < kLanes; ++i) {
        v.re.raw[i] = p[i * stride].real();
        v.im.raw[i] = p[i * stride].imag();
    }
    return v;
}

#endif // backend

/** Interleave kLanes complex values back into std::complex storage. */
inline void
cstore(cf32 *p, cvf v)
{
    store_interleaved2(reinterpret_cast<float *>(p), v.re, v.im);
}

} // namespace lte::simd

#endif // LTE_SIMD_COMPLEX_HPP

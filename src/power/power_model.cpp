#include "power/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace lte::power {

void
PowerModelConfig::validate() const
{
    LTE_CHECK(base_power_w >= 0.0, "base power must be non-negative");
    LTE_CHECK(busy_core_w > 0.0, "busy power must be positive");
    LTE_CHECK(spin_core_w >= 0.0 && nap_core_w >= 0.0,
              "core powers must be non-negative");
    LTE_CHECK(idle_poll_duty >= 0.0 && idle_poll_duty <= 1.0,
              "poll duty must be a fraction");
    LTE_CHECK(deact_poll_duty >= 0.0 && deact_poll_duty <= 1.0,
              "poll duty must be a fraction");
    LTE_CHECK(thermal_tau_s > 0.0, "thermal tau must be positive");
    LTE_CHECK(leakage_coeff >= 0.0, "leakage coefficient >= 0");
    LTE_CHECK(dvfs_voltage_floor > 0.0 && dvfs_voltage_floor <= 1.0,
              "voltage floor must be in (0, 1]");
    LTE_CHECK(domain_size >= 1 && total_cores >= domain_size,
              "invalid gating geometry");
}

PowerModel::PowerModel(const PowerModelConfig &config)
    : config_(config)
{
    config_.validate();
}

double
PowerModel::interval_power_domains(
    const sim::SimInterval &interval) const
{
    // Per-domain pricing (domain state machine, DESIGN.md Sec. 3k):
    // each domain's active occupancy is priced at its own f-V rung,
    // power-gated cores shed their static power (the inline analogue
    // of Eq. 9), and the simulator's transition energy charges are
    // spread over the interval.
    const double inv = 1.0 / interval.dur;
    double watts = config_.base_power_w +
                   interval.transition_energy_j * inv;
    for (const auto &dom : interval.domains) {
        const double scale = dom.freq_scale;
        const double voltage =
            config_.dvfs_voltage_floor +
            (1.0 - config_.dvfs_voltage_floor) * scale;
        const double dvfs_factor = scale * voltage * voltage;
        const double nap_idle_w =
            config_.nap_core_w +
            config_.idle_poll_duty * config_.busy_core_w * dvfs_factor;
        const double nap_deact_w =
            config_.nap_core_w +
            config_.deact_poll_duty * config_.busy_core_w *
                dvfs_factor;
        watts += dom.busy_cs * inv * config_.busy_core_w * dvfs_factor +
                 dom.spin_cs * inv * config_.spin_core_w * dvfs_factor +
                 dom.nap_idle_cs * inv * nap_idle_w +
                 dom.nap_deact_cs * inv * nap_deact_w -
                 dom.gated_cs * inv * config_.core_static_w;
    }
    return watts;
}

double
PowerModel::interval_power(const sim::SimInterval &interval) const
{
    if (interval.dur <= 0.0)
        return config_.base_power_w;
    if (!interval.domains.empty())
        return interval_power_domains(interval);
    const double inv = 1.0 / interval.dur;
    const double busy_cores = interval.busy_cs * inv;
    const double spin_cores = interval.spin_cs * inv;
    const double nap_idle_cores = interval.nap_idle_cs * inv;
    const double nap_deact_cores = interval.nap_deact_cs * inv;

    // DVFS: active-core dynamic power scales as f * V(f)^2.
    const double scale = interval.freq_scale;
    const double voltage =
        config_.dvfs_voltage_floor +
        (1.0 - config_.dvfs_voltage_floor) * scale;
    const double dvfs_factor = scale * voltage * voltage;

    const double nap_idle_w =
        config_.nap_core_w +
        config_.idle_poll_duty * config_.busy_core_w * dvfs_factor;
    const double nap_deact_w =
        config_.nap_core_w +
        config_.deact_poll_duty * config_.busy_core_w * dvfs_factor;

    return config_.base_power_w +
           busy_cores * config_.busy_core_w * dvfs_factor +
           spin_cores * config_.spin_core_w * dvfs_factor +
           nap_idle_cores * nap_idle_w +
           nap_deact_cores * nap_deact_w;
}

std::vector<PowerSample>
PowerModel::with_thermal(std::vector<PowerSample> series) const
{
    if (series.empty())
        return series;
    // First-order low-pass of total power drives extra leakage; the
    // chip starts at the reference (cool) operating point.
    double lowpass = config_.reference_power_w;
    for (auto &sample : series) {
        const double extra =
            config_.leakage_coeff *
            (lowpass - config_.reference_power_w);
        sample.watts += extra;
        const double alpha =
            std::min(1.0, sample.dur / config_.thermal_tau_s);
        lowpass += alpha * (sample.watts - lowpass);
    }
    return series;
}

std::vector<PowerSample>
PowerModel::power_series(const sim::SimResult &result) const
{
    std::vector<PowerSample> series;
    series.reserve(result.intervals.size());
    for (const auto &interval : result.intervals) {
        series.push_back(PowerSample{interval.t0, interval.dur,
                                     interval_power(interval)});
    }
    return with_thermal(std::move(series));
}

std::vector<PowerSample>
PowerModel::power_series_gated(
    const sim::SimResult &result,
    const std::vector<std::uint32_t> &powered) const
{
    LTE_CHECK(powered.size() >= result.intervals.size(),
              "need one powered-core decision per interval");
    std::vector<PowerSample> series;
    series.reserve(result.intervals.size());
    std::uint32_t previous = config_.total_cores;
    for (std::size_t i = 0; i < result.intervals.size(); ++i) {
        const auto &interval = result.intervals[i];
        const std::uint32_t on = powered[i];
        // Eq. 8: switching overhead for the duration of the subframe.
        const double overhead =
            std::abs(static_cast<double>(on) -
                     static_cast<double>(previous)) *
            config_.gate_switch_w;
        // Eq. 9: static savings of the gated cores.
        const double saving =
            static_cast<double>(config_.total_cores - on) *
                config_.core_static_w -
            overhead;
        previous = on;
        series.push_back(PowerSample{interval.t0, interval.dur,
                                     interval_power(interval) - saving});
    }
    return with_thermal(std::move(series));
}

double
PowerModel::average_power(const std::vector<PowerSample> &series)
{
    double energy = 0.0, duration = 0.0;
    for (const auto &sample : series) {
        energy += sample.watts * sample.dur;
        duration += sample.dur;
    }
    return duration > 0.0 ? energy / duration : 0.0;
}

std::vector<double>
PowerModel::rms_windows(const std::vector<PowerSample> &series,
                        double window_s)
{
    RmsWindow window(window_s);
    for (const auto &sample : series)
        window.add(sample.watts, sample.dur);
    window.flush();
    return window.windows();
}

} // namespace lte::power

/**
 * @file
 * TILEPro64 power model.
 *
 * [SUBSTITUTION — DESIGN.md Sec. 1] The paper measures chip current
 * with a NI USB-6210 DAQ across the buck-converter sense resistors;
 * we model power analytically from the simulator's core-state
 * occupancy trace:
 *
 *   P = base                                   (14 W, Sec. V-B)
 *     + busy  cores x busy power
 *     + spin  cores x spin power               (spinning ~ computing)
 *     + napping cores x (residual + poll duty) (clock-gated)
 *     + thermal leakage feedback               (first-order lag; the
 *       paper observes NONAP's higher average power heating the chip
 *       and raising power further, Fig. 14)
 *
 * Power gating (Sec. VI-C) is applied exactly as the paper does — an
 * analytical overlay (Eqs. 8-9) on the measured/simulated trace:
 * 55 mW static per gated core, 15 mW switching overhead per
 * transition for one subframe, domains of eight cores.
 *
 * Default constants are calibrated so the headline numbers land near
 * the paper's Table I/II (NONAP 25 W / 11 W dynamic at the 50%
 * average-load input model).
 */
#ifndef LTE_POWER_POWER_MODEL_HPP
#define LTE_POWER_POWER_MODEL_HPP

#include <cstdint>
#include <vector>

#include "sim/trace.hpp"

namespace lte::power {

struct PowerModelConfig
{
    /** Chip power with all cores napping (measured 14 W, Sec. V-B). */
    double base_power_w = 14.0;
    /** Dynamic power of a core executing kernels. */
    double busy_core_w = 0.168;
    /** Dynamic power of a core spinning on empty queues (a tight
     *  poll loop keeps the issue slots as busy as real work). */
    double spin_core_w = 0.168;
    /** Residual dynamic power of a napping core (tile switch/L2
     *  remain clocked). */
    double nap_core_w = 0.004;
    /** Work-poll duty of a reactive napping core (fraction of busy
     *  power; sets the IDLE-vs-NAP gap of Table I). */
    double idle_poll_duty = 0.22;
    /** Status-poll duty of an estimate-deactivated core (much longer
     *  period, Sec. VI-B). */
    double deact_poll_duty = 0.004;

    // --- thermal feedback ---
    /** First-order thermal time constant. */
    double thermal_tau_s = 40.0;
    /** Extra leakage per Watt of low-passed power above reference. */
    double leakage_coeff = 0.18;
    /** Power at which the leakage correction is zero. */
    double reference_power_w = 20.0;

    // --- DVFS extension ---
    /** Supply voltage at zero frequency as a fraction of nominal;
     *  V(s) = floor + (1 - floor) * s, so active-core power scales as
     *  s * V(s)^2. */
    double dvfs_voltage_floor = 0.55;

    // --- power gating (Sec. VI-C) ---
    double core_static_w = 0.055; ///< 55 mW per powered core
    double gate_switch_w = 0.015; ///< 15 mW per on/off for a subframe
    std::uint32_t domain_size = 8;
    std::uint32_t total_cores = 64;

    void validate() const;
};

/** One element of a power time series. */
struct PowerSample
{
    double t0 = 0.0;
    double dur = 0.0;
    double watts = 0.0;
};

class PowerModel
{
  public:
    explicit PowerModel(const PowerModelConfig &config = {});

    /** Electrical power of one interval, before thermal feedback.
     *  Intervals carrying per-domain tracks (domain state machine)
     *  are priced per rung per domain, with inline gating savings
     *  and the simulator's transition energy charges. */
    double interval_power(const sim::SimInterval &interval) const;

    /** Full power series with thermal feedback. */
    std::vector<PowerSample>
    power_series(const sim::SimResult &result) const;

    /**
     * Power series with Eqs. 8-9 applied: per interval i, subtract
     * (total - powered_i) x core_static - |powered_i - powered_{i-1}|
     * x gate_switch.  @p powered must hold one entry per interval
     * (the GatingPlanner output).
     */
    std::vector<PowerSample>
    power_series_gated(const sim::SimResult &result,
                       const std::vector<std::uint32_t> &powered) const;

    const PowerModelConfig &config() const { return config_; }

    /** Time-weighted average of a power series. */
    static double average_power(const std::vector<PowerSample> &series);

    /**
     * RMS over fixed windows, modelling the DAQ post-processing
     * (paper: 100 ms).
     */
    static std::vector<double>
    rms_windows(const std::vector<PowerSample> &series,
                double window_s = 0.1);

  private:
    double
    interval_power_domains(const sim::SimInterval &interval) const;

    std::vector<PowerSample>
    with_thermal(std::vector<PowerSample> series) const;

    PowerModelConfig config_;
};

} // namespace lte::power

#endif // LTE_POWER_POWER_MODEL_HPP

#include "sim/calibrate.hpp"

#include <cmath>

#include "common/check.hpp"
#include "phy/op_model.hpp"
#include "sim/machine.hpp"
#include "workload/paper_model.hpp"
#include "workload/steady_model.hpp"

namespace lte::sim {

double
calibrate_cycles_per_op(const SimConfig &config, std::size_t n_antennas,
                        std::uint64_t seed, std::size_t samples)
{
    LTE_CHECK(samples >= 1, "need at least one sample");

    workload::PaperModelConfig model_cfg;
    model_cfg.prob_min = 1.0;
    model_cfg.prob_max = 1.0; // pin at maximum workload
    model_cfg.seed = seed;
    workload::PaperModel model(model_cfg);

    double total_ops = 0.0;
    for (std::size_t i = 0; i < samples; ++i) {
        const auto sf = model.next_subframe();
        for (const auto &user : sf.users) {
            total_ops += static_cast<double>(
                phy::user_task_costs(user, n_antennas).total());
        }
    }
    const double mean_ops = total_ops / static_cast<double>(samples);
    const double capacity_cycles =
        static_cast<double>(config.n_workers) * config.delta_s *
        config.clock_hz;
    return capacity_cycles / mean_ops;
}

double
steady_state_activity(const SimConfig &config,
                      const phy::UserParams &user,
                      std::size_t n_antennas, double duration_s)
{
    LTE_CHECK(duration_s > 0.0, "duration must be positive");
    SimConfig run_cfg = config;
    run_cfg.policy = mgmt::PowerPolicy::nonap();

    workload::SteadyModel model(user);
    Machine machine(run_cfg, n_antennas);
    const auto n = static_cast<std::uint64_t>(
        std::ceil(duration_s / run_cfg.delta_s));
    const SimResult result = machine.run(model, n);

    // Discard the pipeline fill/drain transients: measure the middle
    // of the steady run (the paper's 10-second windows make warm-up
    // negligible on the real machine).
    const std::size_t total = result.intervals.size();
    const std::size_t skip = total / 4;
    double busy = 0.0, dur = 0.0;
    for (std::size_t i = skip; i + skip < total; ++i) {
        busy += result.intervals[i].busy_cs;
        dur += result.intervals[i].dur;
    }
    if (dur <= 0.0)
        return result.activity();
    return busy / (static_cast<double>(run_cfg.n_workers) * dur);
}

mgmt::CalibrationTable
calibrate_table(const SimConfig &config, const CalibrationSweep &sweep,
                std::size_t n_antennas)
{
    LTE_CHECK(sweep.prb_min >= 2 && sweep.prb_max <= 200 &&
              sweep.prb_min <= sweep.prb_max && sweep.prb_step >= 1,
              "invalid sweep range");

    mgmt::CalibrationTable table;
    for (std::uint32_t layers = 1; layers <= kMaxLayers; ++layers) {
        for (Modulation mod : kAllModulations) {
            std::vector<mgmt::CalibrationSample> samples;
            for (std::uint32_t prb = sweep.prb_min;
                 prb <= sweep.prb_max; prb += sweep.prb_step) {
                phy::UserParams user;
                user.prb = prb;
                user.layers = layers;
                user.mod = mod;
                const double activity = steady_state_activity(
                    config, user, n_antennas, sweep.duration_s);
                samples.push_back(
                    {prb, activity,
                     workload::PaperModel::prb_density_weight(prb)});
            }
            table.fit(layers, mod, samples);
        }
    }
    return table;
}

} // namespace lte::sim

/**
 * @file
 * Simulator output: per-subframe-interval core-state occupancy that
 * the power model converts to Watts, plus run-level aggregates.
 */
#ifndef LTE_SIM_TRACE_HPP
#define LTE_SIM_TRACE_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

namespace lte::sim {

/**
 * Per-power-domain occupancy within one dispatch interval
 * (domain-machine runs only; DESIGN.md Sec. 3k).  The five core-second
 * tracks sum to domain_size * dur.
 */
struct DomainInterval
{
    double busy_cs = 0.0;
    double spin_cs = 0.0;
    double nap_idle_cs = 0.0;
    double nap_deact_cs = 0.0;
    double gated_cs = 0.0;
    /** The domain's f-V rung this interval (fraction of nominal). */
    double freq_scale = 1.0;
    /** mgmt::DomainState at dispatch (0 active, 1 nap, 2 gated). */
    std::uint8_t state = 0;
};

/**
 * Core-state occupancy over one dispatch interval (core-seconds per
 * state; busy+spin+nap_idle+nap_deact+gated sum to n_workers * dur).
 */
struct SimInterval
{
    double t0 = 0.0;          ///< interval start time [s]
    double dur = 0.0;         ///< interval duration [s]
    double busy_cs = 0.0;     ///< executing tasks
    double spin_cs = 0.0;     ///< active, spinning for work
    double nap_idle_cs = 0.0; ///< reactive nap (polls for work)
    double nap_deact_cs = 0.0;///< deactivated by estimate (status poll)
    double gated_cs = 0.0;    ///< power-gated by the domain machine
    std::uint32_t watermark = 0;   ///< active cores this interval
    double est_activity = 0.0;     ///< estimator output (if any)
    double freq_scale = 1.0;       ///< DVFS frequency (fraction of nominal)

    // --- per-domain state machine (empty unless enabled) ---
    /** Per-domain occupancy and rung; one entry per power domain. */
    std::vector<DomainInterval> domains;
    /** Energy charged for state/rung transitions this interval [J]. */
    double transition_energy_j = 0.0;
    std::uint32_t gate_transitions = 0; ///< domain gate/ungate events
    std::uint32_t rung_transitions = 0; ///< f-V rung switches

    /** Measured activity of this interval (busy share of workers). */
    double
    activity(std::uint32_t n_workers) const
    {
        return dur > 0.0
            ? busy_cs / (static_cast<double>(n_workers) * dur)
            : 0.0;
    }
};

/** Result of one simulated run. */
struct SimResult
{
    std::vector<SimInterval> intervals; ///< one per dispatched subframe

    std::uint64_t subframes = 0;
    std::uint64_t tasks_executed = 0;
    double wall_s = 0.0;        ///< simulated duration
    double total_busy_cs = 0.0; ///< integral of busy core-seconds
    std::uint32_t n_workers = 0;
    /** Power domains tracked by the domain state machine (0 = the
     *  legacy chip-wide accounting). */
    std::uint32_t n_domains = 0;
    /** Total transition energy charged by the domain machine [J]. */
    double transition_energy_j = 0.0;
    std::uint64_t gate_transitions = 0;
    std::uint64_t rung_transitions = 0;

    /** Per-subframe Eq. 5 outputs (empty without an estimator). */
    std::vector<std::uint32_t> active_cores;
    /** Peak number of queued-but-unstarted tasks (backlog gauge). */
    std::size_t max_ready_backlog = 0;

    /**
     * Per-user completion latency in subframe periods (dispatch to
     * tail completion).  The paper's responsiveness constraint keeps
     * two to three subframes in flight, so a healthy run stays below
     * ~3; sustained growth means the machine cannot keep up.
     */
    std::vector<double> user_latency;
    /** Dispatch (subframe) index of each user_latency entry, so
     *  deadline misses can be bucketed by offered load. */
    std::vector<std::uint32_t> user_dispatch;

    double
    max_latency() const
    {
        double worst = 0.0;
        for (double v : user_latency)
            worst = std::max(worst, v);
        return worst;
    }

    double
    mean_latency() const
    {
        if (user_latency.empty())
            return 0.0;
        double sum = 0.0;
        for (double v : user_latency)
            sum += v;
        return sum / static_cast<double>(user_latency.size());
    }

    /** Fraction of users completing within @p deadline_periods. */
    double
    deadline_hit_rate(double deadline_periods) const
    {
        if (user_latency.empty())
            return 1.0;
        std::size_t hit = 0;
        for (double v : user_latency)
            hit += v <= deadline_periods;
        return static_cast<double>(hit) /
               static_cast<double>(user_latency.size());
    }

    /** Whole-run activity (paper Eq. 2). */
    double
    activity() const
    {
        return wall_s > 0.0 && n_workers > 0
            ? total_busy_cs /
                  (static_cast<double>(n_workers) * wall_s)
            : 0.0;
    }

    /**
     * Average measured activity over fixed windows of @p seconds
     * (the paper uses one second = 200 subframes for Fig. 12).
     */
    std::vector<double>
    activity_per_window(double seconds) const
    {
        std::vector<double> out;
        double window_busy = 0.0, window_dur = 0.0;
        for (const auto &iv : intervals) {
            window_busy += iv.busy_cs;
            window_dur += iv.dur;
            if (window_dur >= seconds - 1e-9) {
                out.push_back(window_busy /
                              (static_cast<double>(n_workers) *
                               window_dur));
                window_busy = 0.0;
                window_dur = 0.0;
            }
        }
        return out;
    }
};

} // namespace lte::sim

#endif // LTE_SIM_TRACE_HPP

/**
 * @file
 * Simulator calibration and the paper's Sec. VI-A measurement
 * protocol: cycles-per-op scaling (so the peak paper-model workload
 * saturates 62 workers at one subframe per 5 ms, the operating point
 * the paper reports), steady-state single-user activity measurement
 * (Fig. 11), and the full calibration sweep that fits the k_{L,M}
 * table used by the workload estimator.
 */
#ifndef LTE_SIM_CALIBRATE_HPP
#define LTE_SIM_CALIBRATE_HPP

#include <cstdint>

#include "mgmt/estimator.hpp"
#include "sim/sim_config.hpp"

namespace lte::sim {

/**
 * Choose cycles_per_op such that the mean total work of a
 * maximum-load subframe (paper model with the ramp probability pinned
 * at 1.0: every user four layers, 64-QAM) equals the machine capacity
 * n_workers x delta x clock.
 */
double calibrate_cycles_per_op(const SimConfig &config,
                               std::size_t n_antennas = 4,
                               std::uint64_t seed = 2012,
                               std::size_t samples = 200);

/**
 * Steady-state activity for one user configuration: the same user
 * every subframe for @p duration_s seconds (paper: ten seconds),
 * activity measured over the whole run (Eq. 2).
 */
double steady_state_activity(const SimConfig &config,
                             const phy::UserParams &user,
                             std::size_t n_antennas = 4,
                             double duration_s = 1.0);

/** Sweep parameters for the Fig. 11 calibration. */
struct CalibrationSweep
{
    std::uint32_t prb_min = 2;
    std::uint32_t prb_max = 200;
    std::uint32_t prb_step = 8;
    /** Steady-state duration per point (paper: 10 s). */
    double duration_s = 0.5;
};

/**
 * Run the calibration sweep over all twelve (layers, modulation)
 * configurations and fit the slope table (Eq. 3).
 */
mgmt::CalibrationTable calibrate_table(const SimConfig &config,
                                       const CalibrationSweep &sweep = {},
                                       std::size_t n_antennas = 4);

} // namespace lte::sim

#endif // LTE_SIM_CALIBRATE_HPP

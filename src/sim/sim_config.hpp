/**
 * @file
 * Configuration of the discrete-event TILEPro64 model.
 *
 * [SUBSTITUTION — DESIGN.md Sec. 1] The paper runs on real hardware;
 * we simulate the 64-core chip at the task level: each subframe turns
 * into the paper's task DAG (Sec. IV-C) whose per-task cycle costs
 * come from the analytical kernel op model, and a greedy scheduler
 * with nap/poll semantics plays the role of the work-stealing
 * Pthreads runtime.  Defaults reproduce the paper's operating point:
 * 62 workers, one subframe every 5 ms (the sustained rate the paper
 * reports for the TILEPro64), 700 MHz clock.
 */
#ifndef LTE_SIM_SIM_CONFIG_HPP
#define LTE_SIM_SIM_CONFIG_HPP

#include <cstdint>

#include "common/check.hpp"
#include "mgmt/power_policy.hpp"

namespace lte::sim {

struct SimConfig
{
    /** Worker cores (the chip has 64; one runs drivers, one the
     *  maintenance thread — Sec. V-B). */
    std::uint32_t n_workers = 62;

    /** Core clock in Hz (TILEPro64). */
    double clock_hz = 700e6;

    /** Subframe dispatch period in seconds (the TILEPro64 sustains
     *  one subframe per 5 ms at maximum workload). */
    double delta_s = 0.005;

    /** Simulated cycles charged per model flop; set by calibration
     *  so the maximum workload saturates the chip (DESIGN.md). */
    double cycles_per_op = 1.0;

    /** Power-management policy under study: which mechanisms are
     *  enabled (reactive napping, Eq. 5 watermark, DVFS, the
     *  per-domain state machine) and their parameters.  The five
     *  paper strategies are the PowerPolicy::from_strategy presets. */
    mgmt::PowerPolicy policy = mgmt::PowerPolicy::nonap();

    /** Wake-poll period of a reactive (IDLE) napping worker looking
     *  for work; bounds the pickup latency. */
    double idle_wake_period_s = 200e-6;

    /** Over-provisioning margin of Eq. 5. */
    std::uint32_t core_margin = 2;

    /** Model the runtime's continuation-graph tail: the per-user tail
     *  expands into op_model's n_tail_tasks per-codeblock tasks plus a
     *  reduce task, as the work-stealing runtime executes it.  false
     *  reproduces the pre-refactor monolithic tail (one serial task
     *  per user) for before/after scheduling studies. */
    bool split_tail = true;

    /** Price a real max-log-MAP turbo decode stage into the task DAG:
     *  every LTE code block of a user's allocation adds one decode
     *  task of this iteration budget between the tail codeblocks and
     *  the closing reduce (in monolithic-tail mode the decode cost is
     *  folded into the serial tail task).  0 reproduces the
     *  pass-through pipeline: no decode stage at all. */
    std::uint32_t turbo_iterations = 0;

    void
    validate() const
    {
        LTE_CHECK(n_workers >= 1 && n_workers <= 64,
                  "workers must be 1..64");
        LTE_CHECK(clock_hz > 0.0, "clock must be positive");
        LTE_CHECK(delta_s > 0.0, "delta must be positive");
        LTE_CHECK(cycles_per_op > 0.0, "cycles/op must be positive");
        LTE_CHECK(idle_wake_period_s > 0.0,
                  "wake period must be positive");
        policy.validate();
    }
};

} // namespace lte::sim

#endif // LTE_SIM_SIM_CONFIG_HPP

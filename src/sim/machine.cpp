#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "phy/op_model.hpp"

namespace lte::sim {

Machine::Machine(const SimConfig &config, std::size_t n_antennas)
    : config_(config), n_antennas_(n_antennas)
{
    config_.validate();
    LTE_CHECK(n_antennas >= 1 && n_antennas <= kMaxRxAntennas,
              "antennas must be 1..4");
}

void
Machine::set_estimator(std::optional<mgmt::WorkloadEstimator> estimator)
{
    estimator_ = std::move(estimator);
}

void
Machine::push_event(double t, Event::Kind kind, std::uint32_t worker)
{
    events_.push(Event{t, next_seq_++, kind, worker});
}

SimInterval &
Machine::interval_at(double t)
{
    return interval_at_index(
        static_cast<std::size_t>(t / config_.delta_s));
}

SimInterval &
Machine::interval_at_index(std::size_t idx)
{
    while (result_.intervals.size() <= idx) {
        SimInterval iv;
        iv.t0 = static_cast<double>(result_.intervals.size()) *
                config_.delta_s;
        iv.dur = config_.delta_s;
        iv.watermark = watermark_;
        if (n_domains_ > 0) {
            iv.domains.resize(n_domains_);
            for (std::uint32_t d = 0; d < n_domains_; ++d) {
                iv.domains[d].freq_scale = domains_[d].freq;
                iv.domains[d].state =
                    static_cast<std::uint8_t>(domains_[d].state);
            }
        }
        result_.intervals.push_back(iv);
    }
    return result_.intervals[idx];
}

void
Machine::accumulate(std::uint32_t w, double t)
{
    Worker &worker = workers_[w];
    double cur = worker.last_t;
    const std::uint32_t d = n_domains_ > 0 ? domain_of(w) : 0;
    // Integer interval stepping: each iteration either reaches t or
    // advances to the next interval boundary, so termination does not
    // depend on floating-point epsilons.
    auto idx = static_cast<std::size_t>(cur / config_.delta_s);
    while (cur < t) {
        SimInterval &iv = interval_at_index(idx);
        const double end =
            static_cast<double>(idx + 1) * config_.delta_s;
        const double seg_end = std::min(t, end);
        const double take = seg_end - cur;
        if (take > 0.0) {
            DomainInterval *dom =
                n_domains_ > 0 ? &iv.domains[d] : nullptr;
            if (worker.gated) {
                iv.gated_cs += take;
                if (dom != nullptr)
                    dom->gated_cs += take;
            } else {
                switch (worker.state) {
                  case WState::kBusy:
                    iv.busy_cs += take;
                    result_.total_busy_cs += take;
                    if (dom != nullptr)
                        dom->busy_cs += take;
                    break;
                  case WState::kSpin:
                    iv.spin_cs += take;
                    if (dom != nullptr)
                        dom->spin_cs += take;
                    break;
                  case WState::kNapIdle:
                    iv.nap_idle_cs += take;
                    if (dom != nullptr)
                        dom->nap_idle_cs += take;
                    break;
                  case WState::kNapDeact:
                    iv.nap_deact_cs += take;
                    if (dom != nullptr)
                        dom->nap_deact_cs += take;
                    break;
                }
            }
        }
        cur = seg_end;
        ++idx;
    }
    worker.last_t = t;
}

void
Machine::set_state(std::uint32_t w, double t, WState next)
{
    accumulate(w, t);
    workers_[w].state = next;
    if (next == WState::kSpin)
        spin_stack_.push_back(w);
}

std::optional<std::uint32_t>
Machine::pop_spinner()
{
    while (!spin_stack_.empty()) {
        const std::uint32_t w = spin_stack_.back();
        spin_stack_.pop_back();
        if (workers_[w].state == WState::kSpin)
            return w;
        // Stale entry (worker changed state since being pushed).
    }
    return std::nullopt;
}

double
Machine::next_wake_time(std::uint32_t w, double t) const
{
    // Staggered periodic wake phases so nappers do not thunder.
    const double period = config_.idle_wake_period_s;
    const double phase = period * static_cast<double>(w) /
                         static_cast<double>(config_.n_workers);
    const double k = std::floor((t - phase) / period) + 1.0;
    return phase + k * period;
}

std::uint32_t
Machine::alloc_dag()
{
    if (!free_dags_.empty()) {
        const std::uint32_t idx = free_dags_.back();
        free_dags_.pop_back();
        return idx;
    }
    dags_.emplace_back();
    return static_cast<std::uint32_t>(dags_.size() - 1);
}

void
Machine::start_task(std::uint32_t w, double t, const SimTask &task)
{
    set_state(w, t, WState::kBusy);
    running_[w] = task;
    // A task started under the current DVFS point runs to completion
    // at that frequency; under the domain machine the worker runs at
    // its own domain's rung and a pending rung switch stalls the
    // start until the regulator has settled.
    const double freq = n_domains_ > 0 ? domains_[domain_of(w)].freq
                                       : freq_scale_;
    const double begin = std::max(t, stall_until_);
    const double duration = task.cycles / (config_.clock_hz * freq);
    push_event(begin + duration, Event::Kind::kTaskDone, w);
}

void
Machine::assign_ready(double t)
{
    while (!ready_.empty()) {
        auto spinner = pop_spinner();
        if (!spinner.has_value())
            break;
        const SimTask task = ready_.front();
        ready_.pop_front();
        start_task(*spinner, t, task);
    }
    result_.max_ready_backlog =
        std::max(result_.max_ready_backlog, ready_.size());
    if (ready_.empty())
        return;

    // No spinning worker left: wake napping active workers at their
    // next poll boundary, one per pending task.
    std::size_t needed = ready_.size();
    for (std::uint32_t w = 0; w < config_.n_workers && needed > 0; ++w) {
        Worker &worker = workers_[w];
        if (worker.state != WState::kNapIdle || worker.wake_scheduled ||
            w >= watermark_ || worker.gated) {
            continue;
        }
        worker.wake_scheduled = true;
        push_event(next_wake_time(w, t), Event::Kind::kWake, w);
        --needed;
    }
}

void
Machine::apply_watermark(double t)
{
    const bool idle_naps = config_.policy.reactive_idle;

    for (std::uint32_t w = 0; w < config_.n_workers; ++w) {
        Worker &worker = workers_[w];
        if (worker.state == WState::kBusy)
            continue; // re-evaluated on completion
        if (worker.gated)
            continue; // waiting for its domain's kDomainReady
        if (w >= watermark_) {
            if (worker.state != WState::kNapDeact)
                set_state(w, t, WState::kNapDeact);
        } else {
            if (worker.state == WState::kNapDeact) {
                set_state(w, t,
                          idle_naps ? WState::kNapIdle : WState::kSpin);
            }
        }
    }
}

void
Machine::update_domains(double t, double est, SimInterval &iv)
{
    const mgmt::PowerPolicy &pol = config_.policy;
    const std::uint32_t needed_cores = std::max<std::uint32_t>(
        1, std::min(watermark_, config_.n_workers));
    const std::uint32_t needed_domains = std::min<std::uint32_t>(
        n_domains_,
        (needed_cores + pol.domain_size - 1) / pol.domain_size);

    // Pick the slowest f-V rung that still fits the estimated work
    // (plus headroom) into the dispatch period; the requirement is
    // normalised to the active set exactly as continuous DVFS does.
    double rung = 1.0;
    if (!pol.rungs.empty()) {
        const double active = static_cast<double>(
            needed_domains * pol.domain_size);
        const double required =
            est * static_cast<double>(config_.n_workers) / active +
            pol.dvfs_margin;
        rung = pol.rungs.back();
        for (double r : pol.rungs) {
            if (r >= required) {
                rung = r;
                break;
            }
        }
    }

    std::uint32_t active_domains = 0;
    for (std::uint32_t d = 0; d < n_domains_; ++d) {
        DomainRt &dom = domains_[d];
        if (d < needed_domains) {
            dom.surplus_streak = 0;
            if (dom.state == mgmt::DomainState::kGated) {
                // Begin waking: workers stay gated (taking no work)
                // until the wake latency elapses.
                dom.state = mgmt::DomainState::kActive;
                iv.transition_energy_j += pol.costs.gate_energy_j;
                ++iv.gate_transitions;
                push_event(t + pol.costs.gate_wake_s,
                           Event::Kind::kDomainReady, d);
            } else if (dom.state == mgmt::DomainState::kNap) {
                dom.state = mgmt::DomainState::kActive;
            }
            ++active_domains;
        } else {
            switch (dom.state) {
              case mgmt::DomainState::kActive:
                dom.state = mgmt::DomainState::kNap;
                dom.surplus_streak = 1;
                break;
              case mgmt::DomainState::kNap: {
                ++dom.surplus_streak;
                const std::uint32_t lo = d * pol.domain_size;
                const std::uint32_t hi =
                    std::min((d + 1) * pol.domain_size,
                             config_.n_workers);
                bool draining = false;
                for (std::uint32_t w = lo; w < hi; ++w)
                    draining |= workers_[w].state == WState::kBusy;
                if (dom.surplus_streak >= pol.gate_hysteresis &&
                    !draining) {
                    dom.state = mgmt::DomainState::kGated;
                    iv.transition_energy_j += pol.costs.gate_energy_j;
                    ++iv.gate_transitions;
                    for (std::uint32_t w = lo; w < hi; ++w) {
                        accumulate(w, t);
                        workers_[w].gated = true;
                    }
                }
                break;
              }
              case mgmt::DomainState::kGated:
                break;
            }
        }
    }

    // Apply the rung chip-wide to the active domains; a switch stalls
    // new task starts while the PLL/regulator settles and charges
    // energy per active domain.
    if (!pol.rungs.empty() && rung != freq_scale_) {
        ++iv.rung_transitions;
        iv.transition_energy_j +=
            pol.costs.rung_energy_j *
            static_cast<double>(active_domains);
        stall_until_ = std::max(stall_until_,
                                t + pol.costs.rung_switch_s);
        freq_scale_ = rung;
    }
    for (std::uint32_t d = 0; d < n_domains_; ++d) {
        if (domains_[d].state == mgmt::DomainState::kActive)
            domains_[d].freq = freq_scale_;
    }

    result_.transition_energy_j += iv.transition_energy_j;
}

void
Machine::handle_domain_ready(double t, std::uint32_t d)
{
    const mgmt::PowerPolicy &pol = config_.policy;
    DomainRt &dom = domains_[d];
    if (dom.state != mgmt::DomainState::kActive)
        return; // re-gated while waking (stale event)
    const bool idle_naps = pol.reactive_idle;
    const std::uint32_t lo = d * pol.domain_size;
    const std::uint32_t hi =
        std::min((d + 1) * pol.domain_size, config_.n_workers);
    for (std::uint32_t w = lo; w < hi; ++w) {
        Worker &worker = workers_[w];
        if (!worker.gated)
            continue;
        accumulate(w, t);
        worker.gated = false;
        if (w < watermark_) {
            set_state(w, t,
                      idle_naps ? WState::kNapIdle : WState::kSpin);
        } else {
            set_state(w, t, WState::kNapDeact);
        }
    }
    assign_ready(t);
}

void
Machine::handle_dispatch(double t, workload::ParameterModel &model)
{
    const phy::SubframeParams params = model.next_subframe();
    params.validate();

    // Proactive watermark from the known input parameters (Eq. 5).
    double est = 0.0;
    if (estimator_.has_value()) {
        est = estimator_->estimate_subframe(params);
        if (config_.policy.proactive) {
            watermark_ = std::max<std::uint32_t>(
                1, estimator_->active_cores(est, config_.n_workers,
                                            config_.core_margin));
        }
        result_.active_cores.push_back(estimator_->active_cores(
            est, config_.n_workers, config_.core_margin));
    }
    // DVFS: pick the slowest frequency that still fits the estimated
    // work (plus headroom) into the dispatch period.  The estimate is
    // expressed as a fraction of the *full* chip, so when core gating
    // has already shrunk the active set the required frequency is
    // est * n_workers / watermark — otherwise the two mechanisms
    // would double-throttle and the backlog would run away.
    if (config_.policy.dvfs && estimator_.has_value()) {
        const double active = static_cast<double>(
            std::max<std::uint32_t>(watermark_, 1));
        const double required =
            est * static_cast<double>(config_.n_workers) / active;
        freq_scale_ = std::clamp(required + config_.policy.dvfs_margin,
                                 config_.policy.dvfs_min_scale, 1.0);
    }

    // Metadata is indexed by dispatch count, not by floor(t / delta):
    // accumulated floating-point dispatch times can land an ulp below
    // the interval boundary.
    SimInterval &iv =
        interval_at_index(static_cast<std::size_t>(dispatched_));

    if (n_domains_ > 0 && estimator_.has_value())
        update_domains(t, est, iv);
    apply_watermark(t);

    iv.watermark = watermark_;
    iv.est_activity = est;
    iv.freq_scale = freq_scale_;
    if (n_domains_ > 0) {
        iv.domains.resize(n_domains_);
        for (std::uint32_t d = 0; d < n_domains_; ++d) {
            iv.domains[d].freq_scale = domains_[d].freq;
            iv.domains[d].state =
                static_cast<std::uint8_t>(domains_[d].state);
        }
        result_.gate_transitions += iv.gate_transitions;
        result_.rung_transitions += iv.rung_transitions;
    }

    // Expand users into task DAGs.
    const phy::DecodeModel decode{config_.turbo_iterations > 0,
                                  config_.turbo_iterations};
    for (const auto &user : params.users) {
        const auto costs =
            phy::user_task_costs(user, n_antennas_, false, decode);
        const std::uint32_t dag_idx = alloc_dag();
        Dag &dag = dags_[dag_idx];
        dag.chanest_cycles = static_cast<double>(costs.chanest_task) *
                             config_.cycles_per_op;
        dag.weights_cycles = static_cast<double>(costs.weights) *
                             config_.cycles_per_op;
        dag.demod_cycles = static_cast<double>(costs.demod_task) *
                           config_.cycles_per_op;
        // Monolithic mode has no decode fan-out: the serial tail task
        // absorbs the whole decode charge so total work matches.
        dag.tail_cycles =
            static_cast<double>(
                costs.tail +
                costs.decode_task *
                    static_cast<std::uint64_t>(costs.n_decode_tasks)) *
            config_.cycles_per_op;
        dag.tail_task_cycles = static_cast<double>(costs.tail_task) *
                               config_.cycles_per_op;
        dag.decode_task_cycles = static_cast<double>(costs.decode_task) *
                                 config_.cycles_per_op;
        dag.reduce_cycles = static_cast<double>(costs.tail_reduce) *
                            config_.cycles_per_op;
        dag.chanest_left = costs.n_chanest_tasks;
        dag.demod_total = costs.n_demod_tasks;
        dag.demod_left = costs.n_demod_tasks;
        dag.tail_total = costs.n_tail_tasks;
        dag.tail_left = costs.n_tail_tasks;
        dag.decode_total = costs.n_decode_tasks;
        dag.decode_left = costs.n_decode_tasks;
        dag.dispatch_time = t;
        dag.dispatch_index = static_cast<std::uint32_t>(dispatched_);
        dag.in_use = true;
        ++active_dags_;

        for (std::uint32_t i = 0; i < costs.n_chanest_tasks; ++i)
            ready_.push_back(SimTask{dag.chanest_cycles, dag_idx, 0});
    }

    ++dispatched_;
    if (dispatched_ < target_subframes_) {
        // Exact multiple of the period (no accumulated drift).
        push_event(static_cast<double>(dispatched_) * config_.delta_s,
                   Event::Kind::kDispatch, 0);
    }
    assign_ready(t);
}

void
Machine::complete_stage(double t, const SimTask &task)
{
    Dag &dag = dags_[task.dag];
    switch (task.stage) {
      case 0:
        LTE_ASSERT(dag.chanest_left > 0, "chanest underflow");
        if (--dag.chanest_left == 0)
            ready_.push_back(SimTask{dag.weights_cycles, task.dag, 1});
        break;
      case 1:
        for (std::uint32_t i = 0; i < dag.demod_total; ++i)
            ready_.push_back(SimTask{dag.demod_cycles, task.dag, 2});
        break;
      case 2:
        LTE_ASSERT(dag.demod_left > 0, "demod underflow");
        if (--dag.demod_left == 0) {
            if (config_.split_tail) {
                // Continuation-graph tail: one task per codeblock,
                // folded by a reduce — the runtime's real fan-out.
                for (std::uint32_t i = 0; i < dag.tail_total; ++i)
                    ready_.push_back(
                        SimTask{dag.tail_task_cycles, task.dag, 3});
            } else {
                ready_.push_back(SimTask{dag.tail_cycles, task.dag, 3});
            }
        }
        break;
      case 3:
        if (config_.split_tail) {
            LTE_ASSERT(dag.tail_left > 0, "tail underflow");
            if (--dag.tail_left == 0) {
                if (dag.decode_total > 0) {
                    for (std::uint32_t i = 0; i < dag.decode_total; ++i)
                        ready_.push_back(SimTask{
                            dag.decode_task_cycles, task.dag, 5});
                } else {
                    ready_.push_back(
                        SimTask{dag.reduce_cycles, task.dag, 4});
                }
            }
            break;
        }
        [[fallthrough]];
      case 4:
        dag.in_use = false;
        result_.user_latency.push_back(
            (t - dag.dispatch_time) / config_.delta_s);
        result_.user_dispatch.push_back(dag.dispatch_index);
        free_dags_.push_back(task.dag);
        LTE_ASSERT(active_dags_ > 0, "dag underflow");
        --active_dags_;
        break;
      case 5:
        LTE_ASSERT(dag.decode_left > 0, "decode underflow");
        if (--dag.decode_left == 0)
            ready_.push_back(SimTask{dag.reduce_cycles, task.dag, 4});
        break;
      default:
        LTE_ASSERT(false, "unknown task stage");
    }
}

void
Machine::handle_task_done(double t, std::uint32_t w)
{
    ++result_.tasks_executed;
    complete_stage(t, running_[w]);

    const bool idle_naps = config_.policy.reactive_idle;

    if (w >= watermark_) {
        set_state(w, t, WState::kNapDeact);
    } else if (!ready_.empty()) {
        const SimTask task = ready_.front();
        ready_.pop_front();
        start_task(w, t, task);
    } else {
        set_state(w, t,
                  idle_naps ? WState::kNapIdle : WState::kSpin);
    }
    assign_ready(t);
}

void
Machine::handle_wake(double t, std::uint32_t w)
{
    Worker &worker = workers_[w];
    worker.wake_scheduled = false;
    if (worker.state != WState::kNapIdle || w >= watermark_ ||
        worker.gated)
        return; // stale wake
    if (!ready_.empty()) {
        const SimTask task = ready_.front();
        ready_.pop_front();
        start_task(w, t, task);
        // More work may still be pending for other nappers.
        assign_ready(t);
    }
}

SimResult
Machine::run(workload::ParameterModel &model, std::uint64_t n_subframes)
{
    LTE_CHECK(n_subframes >= 1, "need at least one subframe");

    // Reset run state.
    events_ = {};
    next_seq_ = 0;
    workers_.assign(config_.n_workers, Worker{});
    running_.assign(config_.n_workers, SimTask{});
    spin_stack_.clear();
    ready_.clear();
    dags_.clear();
    free_dags_.clear();
    active_dags_ = 0;
    dispatched_ = 0;
    target_subframes_ = n_subframes;
    result_ = SimResult{};
    result_.n_workers = config_.n_workers;

    watermark_ = config_.n_workers;
    freq_scale_ = 1.0;
    stall_until_ = 0.0;
    n_domains_ = 0;
    domains_.clear();
    if (config_.policy.domain_machine) {
        n_domains_ = (config_.n_workers + config_.policy.domain_size -
                      1) /
                     config_.policy.domain_size;
        domains_.assign(n_domains_, DomainRt{});
        result_.n_domains = n_domains_;
    }
    const bool idle_naps = config_.policy.reactive_idle;
    for (std::uint32_t w = 0; w < config_.n_workers; ++w) {
        workers_[w].state =
            idle_naps ? WState::kNapIdle : WState::kSpin;
        if (!idle_naps)
            spin_stack_.push_back(w);
    }

    push_event(0.0, Event::Kind::kDispatch, 0);

    double t_end = 0.0;
    while (!events_.empty()) {
        const Event ev = events_.top();
        events_.pop();
        t_end = std::max(t_end, ev.t);
        switch (ev.kind) {
          case Event::Kind::kDispatch:
            handle_dispatch(ev.t, model);
            break;
          case Event::Kind::kTaskDone:
            handle_task_done(ev.t, ev.worker);
            break;
          case Event::Kind::kWake:
            handle_wake(ev.t, ev.worker);
            break;
          case Event::Kind::kDomainReady:
            handle_domain_ready(ev.t, ev.worker);
            break;
        }
        if (dispatched_ == target_subframes_ && active_dags_ == 0 &&
            ready_.empty()) {
            break;
        }
    }

    // Close the books at the nominal end of the run.
    const double horizon = std::max(
        t_end, static_cast<double>(n_subframes) * config_.delta_s);
    for (std::uint32_t w = 0; w < config_.n_workers; ++w)
        accumulate(w, horizon);
    // The drain may end inside the final interval: trim its duration
    // so per-interval occupancy always sums to n_workers x dur.
    if (!result_.intervals.empty()) {
        SimInterval &last = result_.intervals.back();
        last.dur = std::max(horizon - last.t0, 1e-12);
    }

    result_.subframes = dispatched_;
    result_.wall_s = horizon;
    return result_;
}

} // namespace lte::sim

/**
 * @file
 * Discrete-event model of the LTE benchmark running on a TILEPro64.
 *
 * Subframes arrive every DELTA; each user expands into the paper's
 * task DAG (chanest tasks -> weights join -> demod tasks -> tail,
 * Sec. IV-C) with cycle costs from the analytical kernel op model.
 * Ready tasks are assigned greedily: spinning workers pick up work
 * instantly; napping workers only at their next wake poll; workers
 * deactivated by the estimate (Eq. 5 watermark) take no work at all.
 * The run produces a per-interval core-state occupancy trace that the
 * power model turns into Watts.
 *
 * Power management follows the machine's mgmt::PowerPolicy: the
 * paper's reactive/proactive napping, the continuous-DVFS extension,
 * and (PR 10) the per-domain power-state machine — each 8-core domain
 * is {active @ f-V rung, nap, gated}; waking a gated domain stalls
 * its workers for gate_wake_s, rung switches stall new task starts,
 * and every transition charges energy into the interval trace.
 */
#ifndef LTE_SIM_MACHINE_HPP
#define LTE_SIM_MACHINE_HPP

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "mgmt/estimator.hpp"
#include "mgmt/power_policy.hpp"
#include "sim/sim_config.hpp"
#include "sim/trace.hpp"
#include "workload/parameter_model.hpp"

namespace lte::sim {

class Machine
{
  public:
    /**
     * @param config    machine parameters (validated)
     * @param n_antennas receive antennas assumed by the cost model
     */
    explicit Machine(const SimConfig &config,
                     std::size_t n_antennas = 4);

    /** Provide the estimator for NAP-family strategies. */
    void set_estimator(std::optional<mgmt::WorkloadEstimator> estimator);

    /** The machine's estimator copy (its stats reflect this run). */
    const std::optional<mgmt::WorkloadEstimator> &
    estimator() const
    {
        return estimator_;
    }

    /**
     * Simulate @p n_subframes drawn from @p model (consumed from its
     * current state) and return the occupancy trace.
     */
    SimResult run(workload::ParameterModel &model,
                  std::uint64_t n_subframes);

    const SimConfig &config() const { return config_; }

  private:
    enum class WState : std::uint8_t { kSpin, kBusy, kNapIdle, kNapDeact };

    struct Dag
    {
        double dispatch_time = 0.0;
        std::uint32_t dispatch_index = 0;
        double chanest_cycles = 0.0;
        double weights_cycles = 0.0;
        double demod_cycles = 0.0;
        double tail_cycles = 0.0; ///< whole tail (monolithic mode)
        double tail_task_cycles = 0.0; ///< one codeblock (split mode)
        double decode_task_cycles = 0.0; ///< one turbo code block
        double reduce_cycles = 0.0;
        std::uint32_t chanest_left = 0;
        std::uint32_t demod_total = 0;
        std::uint32_t demod_left = 0;
        std::uint32_t tail_total = 0;
        std::uint32_t tail_left = 0;
        std::uint32_t decode_total = 0;
        std::uint32_t decode_left = 0;
        bool in_use = false;
    };

    struct SimTask
    {
        double cycles = 0.0;
        std::uint32_t dag = 0;
        /** 0 chanest, 1 weights, 2 demod, 3 tail (monolithic or one
         *  codeblock), 4 reduce (split-tail mode only), 5 turbo decode
         *  (split-tail mode with turbo_iterations > 0; runs between
         *  the tail codeblocks and the reduce). */
        std::uint8_t stage = 0;
    };

    struct Event
    {
        double t = 0.0;
        std::uint64_t seq = 0;
        enum class Kind : std::uint8_t
        {
            kDispatch,
            kTaskDone,
            kWake,
            kDomainReady, ///< gated domain finished waking (worker =
                          ///< domain index)
        } kind = Kind::kDispatch;
        std::uint32_t worker = 0;

        bool
        operator>(const Event &rhs) const
        {
            if (t != rhs.t)
                return t > rhs.t;
            return seq > rhs.seq;
        }
    };

    struct Worker
    {
        WState state = WState::kSpin;
        double last_t = 0.0;
        bool wake_scheduled = false;
        /** Worker sits in a power-gated domain (domain machine);
         *  overrides state for occupancy accounting and cannot be
         *  reactivated until the domain's kDomainReady fires. */
        bool gated = false;
    };

    /** Runtime state of one power domain (domain machine only). */
    struct DomainRt
    {
        mgmt::DomainState state = mgmt::DomainState::kActive;
        /** Consecutive dispatches the domain has been surplus. */
        std::uint32_t surplus_streak = 0;
        double freq = 1.0; ///< current f-V rung
    };

    // --- event handling ---
    void handle_dispatch(double t, workload::ParameterModel &model);
    void handle_task_done(double t, std::uint32_t w);
    void handle_wake(double t, std::uint32_t w);
    void handle_domain_ready(double t, std::uint32_t d);

    // --- helpers ---
    void push_event(double t, Event::Kind kind, std::uint32_t worker);
    void accumulate(std::uint32_t w, double t);
    SimInterval &interval_at(double t);
    SimInterval &interval_at_index(std::size_t idx);
    void set_state(std::uint32_t w, double t, WState next);
    void start_task(std::uint32_t w, double t, const SimTask &task);
    void assign_ready(double t);
    std::optional<std::uint32_t> pop_spinner();
    double next_wake_time(std::uint32_t w, double t) const;
    void apply_watermark(double t);
    void update_domains(double t, double est, SimInterval &iv);
    std::uint32_t alloc_dag();
    void complete_stage(double t, const SimTask &task);

    std::uint32_t
    domain_of(std::uint32_t w) const
    {
        return w / config_.policy.domain_size;
    }

    SimConfig config_;
    std::size_t n_antennas_;
    std::optional<mgmt::WorkloadEstimator> estimator_;

    // run state
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    std::uint64_t next_seq_ = 0;
    std::vector<Worker> workers_;
    std::vector<SimTask> running_; ///< task being executed per worker
    std::vector<std::uint32_t> spin_stack_;
    std::deque<SimTask> ready_;
    std::vector<Dag> dags_;
    std::vector<std::uint32_t> free_dags_;
    std::uint32_t active_dags_ = 0;
    std::uint32_t watermark_ = 0;
    double freq_scale_ = 1.0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t target_subframes_ = 0;
    // domain machine state (empty vectors unless enabled)
    std::vector<DomainRt> domains_;
    std::uint32_t n_domains_ = 0;
    double stall_until_ = 0.0; ///< rung-switch settle deadline
    SimResult result_;
};

} // namespace lte::sim

#endif // LTE_SIM_MACHINE_HPP

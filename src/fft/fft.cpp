#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"
#include "common/math_util.hpp"

namespace lte::fft {

namespace {

/** Largest prime factor handled by the direct-DFT base case; sizes with
 *  a bigger prime factor go through Bluestein. */
constexpr std::size_t kMaxDirectPrime = 61;

/** @return the smallest prime factor of n (n >= 2). */
std::size_t
smallest_factor(std::size_t n)
{
    if (n % 2 == 0)
        return 2;
    for (std::size_t f = 3; f * f <= n; f += 2) {
        if (n % f == 0)
            return f;
    }
    return n;
}

/** @return the largest prime factor of n (n >= 1). */
std::size_t
largest_prime_factor(std::size_t n)
{
    std::size_t largest = 1;
    while (n > 1) {
        const std::size_t f = smallest_factor(n);
        largest = f;
        while (n % f == 0)
            n /= f;
    }
    return largest;
}

/** Approximate flop costs of complex primitives. */
constexpr std::uint64_t kCplxMulFlops = 6;
constexpr std::uint64_t kCplxAddFlops = 2;

std::uint64_t
mixed_radix_ops(std::size_t n)
{
    if (n <= 1)
        return 0;
    const std::size_t p = smallest_factor(n);
    if (p == n) {
        // Direct DFT base case: n^2 complex MACs.
        return n * n * (kCplxMulFlops + kCplxAddFlops);
    }
    const std::size_t m = n / p;
    // p sub-transforms + per-output-column twiddles and a pxp DFT.
    const std::uint64_t combine =
        m * (p * kCplxMulFlops + p * p * (kCplxMulFlops + kCplxAddFlops));
    return p * mixed_radix_ops(m) + combine;
}

} // namespace

/**
 * Private implementation: either a mixed-radix recursive Cooley-Tukey
 * transform (all prime factors <= kMaxDirectPrime) or a Bluestein
 * chirp-z transform built on a power-of-two plan.
 */
struct Fft::Impl
{
    explicit Impl(std::size_t n);

    void transform(const cf32 *in, cf32 *out, bool inverse) const;

    // --- mixed radix ---
    void
    recurse(const cf32 *in, std::size_t in_stride, cf32 *out,
            std::size_t n, std::size_t root_stride, bool inverse) const;

    cf32 root(std::size_t index, bool inverse) const;

    // --- Bluestein ---
    void bluestein(const cf32 *in, cf32 *out, bool inverse) const;

    std::size_t n;
    bool use_bluestein;

    /** exp(-2*pi*i*k/n) for k in [0, n) (forward direction). */
    std::vector<cf32> roots;

    // Bluestein state (empty unless use_bluestein).
    std::size_t conv_n = 0;              ///< power-of-two convolution size
    std::unique_ptr<Fft> conv_fft;       ///< plan of size conv_n
    std::vector<cf32> chirp;             ///< b_k = exp(-i*pi*k^2/n), k in [0, n)
    std::vector<cf32> chirp_fft;         ///< FFT of the zero-padded conjugate chirp
};

Fft::Impl::Impl(std::size_t size)
    : n(size)
{
    LTE_CHECK(n >= 1, "FFT size must be >= 1");
    use_bluestein = largest_prime_factor(n) > kMaxDirectPrime;

    roots.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double angle =
            -2.0 * std::numbers::pi * static_cast<double>(k) /
            static_cast<double>(n);
        roots[k] = cf32(static_cast<float>(std::cos(angle)),
                        static_cast<float>(std::sin(angle)));
    }

    if (use_bluestein) {
        conv_n = next_pow2(2 * n - 1);
        conv_fft = std::make_unique<Fft>(conv_n);

        chirp.resize(n);
        for (std::size_t k = 0; k < n; ++k) {
            // k^2 mod 2n keeps the angle argument small and exact.
            const std::size_t k2 = (k * k) % (2 * n);
            const double angle =
                -std::numbers::pi * static_cast<double>(k2) /
                static_cast<double>(n);
            chirp[k] = cf32(static_cast<float>(std::cos(angle)),
                            static_cast<float>(std::sin(angle)));
        }

        // FFT of the conjugate chirp, wrapped for circular convolution.
        std::vector<cf32> b(conv_n, cf32(0.0f, 0.0f));
        b[0] = std::conj(chirp[0]);
        for (std::size_t k = 1; k < n; ++k) {
            b[k] = std::conj(chirp[k]);
            b[conv_n - k] = std::conj(chirp[k]);
        }
        chirp_fft.resize(conv_n);
        conv_fft->forward(b.data(), chirp_fft.data());
    }
}

cf32
Fft::Impl::root(std::size_t index, bool inverse) const
{
    const cf32 w = roots[index % n];
    return inverse ? std::conj(w) : w;
}

void
Fft::Impl::recurse(const cf32 *in, std::size_t in_stride, cf32 *out,
                   std::size_t len, std::size_t root_stride,
                   bool inverse) const
{
    if (len == 1) {
        out[0] = in[0];
        return;
    }

    const std::size_t p = smallest_factor(len);
    const std::size_t m = len / p;

    if (p == len) {
        // Prime base case: direct DFT using the master root table.
        // W_len^(jk) == roots[(j*k mod len) * root_stride].
        for (std::size_t k = 0; k < len; ++k) {
            cf32 acc(0.0f, 0.0f);
            for (std::size_t j = 0; j < len; ++j) {
                const std::size_t idx = ((j * k) % len) * root_stride;
                acc += in[j * in_stride] * root(idx, inverse);
            }
            out[k] = acc;
        }
        return;
    }

    // Transform the p decimated subsequences.
    for (std::size_t q = 0; q < p; ++q) {
        recurse(in + q * in_stride, in_stride * p, out + q * m, m,
                root_stride * p, inverse);
    }

    // Combine: X[k + r*m] = sum_q W_len^(q*k) * W_p^(q*r) * Y_q[k].
    cf32 t[kMaxDirectPrime];
    for (std::size_t k = 0; k < m; ++k) {
        for (std::size_t q = 0; q < p; ++q)
            t[q] = out[q * m + k] * root(q * k * root_stride, inverse);
        for (std::size_t r = 0; r < p; ++r) {
            cf32 acc(0.0f, 0.0f);
            for (std::size_t q = 0; q < p; ++q) {
                const std::size_t idx =
                    ((q * r) % p) * m * root_stride;
                acc += t[q] * root(idx, inverse);
            }
            out[k + r * m] = acc;
        }
    }
}

void
Fft::Impl::bluestein(const cf32 *in, cf32 *out, bool inverse) const
{
    // Chirp-z identity: with chirp_k = exp(-i*pi*k^2/n),
    //   X_k = chirp_k * (a (*) b)_k,  a_j = x_j * chirp_j,
    //   b_m = conj(chirp_m)  (wrapped for circular convolution).
    // The inverse transform conjugates both chirp and kernel.
    std::vector<cf32> a(conv_n, cf32(0.0f, 0.0f));
    for (std::size_t k = 0; k < n; ++k) {
        const cf32 c = inverse ? std::conj(chirp[k]) : chirp[k];
        a[k] = in[k] * c;
    }

    std::vector<cf32> fa(conv_n);
    conv_fft->forward(a.data(), fa.data());
    if (inverse) {
        // The convolution kernel is conj(chirp); for the inverse
        // transform the kernel is chirp itself, whose FFT is the
        // conjugate-mirrored chirp_fft. Recompute cheaply via symmetry:
        // FFT(conj(b))[k] = conj(FFT(b)[(conv_n - k) % conv_n]).
        for (std::size_t k = 0; k < conv_n; ++k) {
            const std::size_t mirror = (conv_n - k) % conv_n;
            fa[k] *= std::conj(chirp_fft[mirror]);
        }
    } else {
        for (std::size_t k = 0; k < conv_n; ++k)
            fa[k] *= chirp_fft[k];
    }

    std::vector<cf32> conv(conv_n);
    conv_fft->inverse(fa.data(), conv.data());

    for (std::size_t k = 0; k < n; ++k) {
        const cf32 c = inverse ? std::conj(chirp[k]) : chirp[k];
        out[k] = conv[k] * c;
    }
}

void
Fft::Impl::transform(const cf32 *in, cf32 *out, bool inverse) const
{
    if (use_bluestein) {
        bluestein(in, out, inverse);
    } else if (in == out) {
        std::vector<cf32> tmp(in, in + n);
        recurse(tmp.data(), 1, out, n, 1, inverse);
    } else {
        recurse(in, 1, out, n, 1, inverse);
    }

    if (inverse) {
        const float scale = 1.0f / static_cast<float>(n);
        for (std::size_t k = 0; k < n; ++k)
            out[k] *= scale;
    }
}

Fft::Fft(std::size_t n)
    : impl_(std::make_unique<Impl>(n))
{
}

Fft::~Fft() = default;

std::size_t
Fft::size() const
{
    return impl_->n;
}

void
Fft::forward(const cf32 *in, cf32 *out) const
{
    impl_->transform(in, out, false);
}

void
Fft::inverse(const cf32 *in, cf32 *out) const
{
    impl_->transform(in, out, true);
}

std::uint64_t
Fft::op_count(std::size_t n)
{
    if (n <= 1)
        return 0;
    if (largest_prime_factor(n) <= kMaxDirectPrime)
        return mixed_radix_ops(n);
    // Bluestein: two forward + one inverse transform of conv_n, plus
    // the pointwise chirp multiplies.
    const std::size_t conv_n = next_pow2(2 * n - 1);
    return 3 * mixed_radix_ops(conv_n) +
           (2 * n + conv_n) * kCplxMulFlops;
}

std::size_t
Fft::next_5_smooth(std::size_t n)
{
    if (n <= 1)
        return 1;
    std::size_t candidate = n;
    while (!is_5_smooth(candidate))
        ++candidate;
    return candidate;
}

std::uint64_t
Fft::op_count_smooth(std::size_t n)
{
    return mixed_radix_ops(next_5_smooth(n));
}

FftCache &
FftCache::instance()
{
    static FftCache cache;
    return cache;
}

std::shared_ptr<const Fft>
FftCache::get(std::size_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = plans_.find(n);
    if (it != plans_.end())
        return it->second;
    auto plan = std::make_shared<const Fft>(n);
    plans_.emplace(n, plan);
    return plan;
}

std::size_t
FftCache::plan_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plans_.size();
}

CVec
fft_forward(const CVec &in)
{
    CVec out(in.size());
    FftCache::instance().get(in.size())->forward(in.data(), out.data());
    return out;
}

CVec
fft_inverse(const CVec &in)
{
    CVec out(in.size());
    FftCache::instance().get(in.size())->inverse(in.data(), out.data());
    return out;
}

} // namespace lte::fft

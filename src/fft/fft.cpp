#include "fft/fft.hpp"

#include <cmath>
#include <mutex>
#include <numbers>

#include "common/check.hpp"
#include "common/math_util.hpp"
#include "simd/complex.hpp"

namespace lte::fft {

namespace {

/** Largest prime factor handled by the direct-DFT base case; sizes with
 *  a bigger prime factor go through Bluestein. */
constexpr std::size_t kMaxDirectPrime = 61;

/** @return the smallest prime factor of n (n >= 2). */
std::size_t
smallest_factor(std::size_t n)
{
    if (n % 2 == 0)
        return 2;
    for (std::size_t f = 3; f * f <= n; f += 2) {
        if (n % f == 0)
            return f;
    }
    return n;
}

/** @return the largest prime factor of n (n >= 1). */
std::size_t
largest_prime_factor(std::size_t n)
{
    std::size_t largest = 1;
    while (n > 1) {
        const std::size_t f = smallest_factor(n);
        largest = f;
        while (n % f == 0)
            n /= f;
    }
    return largest;
}

/** Approximate flop costs of complex primitives. */
constexpr std::uint64_t kCplxMulFlops = 6;
constexpr std::uint64_t kCplxAddFlops = 2;

std::uint64_t
mixed_radix_ops(std::size_t n)
{
    if (n <= 1)
        return 0;
    const std::size_t p = smallest_factor(n);
    if (p == n) {
        // Direct DFT base case: n^2 complex MACs.
        return n * n * (kCplxMulFlops + kCplxAddFlops);
    }
    const std::size_t m = n / p;
    // p sub-transforms + per-output-column twiddles and a pxp DFT.
    const std::uint64_t combine =
        m * (p * kCplxMulFlops + p * p * (kCplxMulFlops + kCplxAddFlops));
    return p * mixed_radix_ops(m) + combine;
}

} // namespace

/**
 * Private implementation: either a mixed-radix recursive Cooley-Tukey
 * transform (all prime factors <= kMaxDirectPrime) or a Bluestein
 * chirp-z transform built on a power-of-two plan.
 */
struct Fft::Impl
{
    explicit Impl(std::size_t n);

    void transform(const cf32 *in, cf32 *out, bool inverse,
                   CfSpan scratch) const;

    std::size_t scratch_size() const { return use_bluestein ? 2 * conv_n : n; }

    // --- mixed radix ---
    template <bool Inverse>
    void
    recurse(const cf32 *in, std::size_t in_stride, cf32 *out,
            std::size_t n, std::size_t root_stride) const;

    /** roots[index], conjugated for the inverse direction.  The caller
     *  guarantees index < n (strides are chosen so no reduction is
     *  needed — avoiding a modulo on every twiddle access). */
    template <bool Inverse>
    cf32
    root(std::size_t index) const
    {
        const cf32 w = roots[index];
        if constexpr (Inverse)
            return std::conj(w);
        return w;
    }

#if defined(LTE_SIMD_ENABLED)
    /** Vectorized radix-2 combine (same arithmetic as the scalar fast
     *  path, kLanes butterflies at a time plus a scalar tail). */
    template <bool Inverse>
    void combine2(cf32 *out, std::size_t m, std::size_t root_stride) const;

    /** Vectorized radix-4 combine.  Uses the exact +-i rotation for
     *  W_4 instead of a twiddle lookup, so a radix-4 level costs three
     *  complex multiplies per output column instead of the four the
     *  generic combine would spend on two radix-2 levels. */
    template <bool Inverse>
    void combine4(cf32 *out, std::size_t m, std::size_t root_stride) const;

    /** Vectorized small-odd-radix combine (the generic formula with
     *  the W_p constants broadcast); used for p = 3 and 5, which the
     *  odd-factor-first ordering places at wide columns. */
    template <std::size_t P, bool Inverse>
    void combinep(cf32 *out, std::size_t m, std::size_t root_stride) const;
#endif

    // --- Bluestein ---
    void bluestein(const cf32 *in, cf32 *out, bool inverse,
                   CfSpan scratch) const;

    std::size_t n;
    bool use_bluestein;

    /** exp(-2*pi*i*k/n) for k in [0, n) (forward direction). */
    std::vector<cf32> roots;

    // Bluestein state (empty unless use_bluestein).
    std::size_t conv_n = 0;              ///< power-of-two convolution size
    std::unique_ptr<Fft> conv_fft;       ///< plan of size conv_n
    std::vector<cf32> chirp;             ///< b_k = exp(-i*pi*k^2/n), k in [0, n)
    std::vector<cf32> chirp_fft;         ///< FFT of the zero-padded conjugate chirp
};

Fft::Impl::Impl(std::size_t size)
    : n(size)
{
    LTE_CHECK(n >= 1, "FFT size must be >= 1");
    use_bluestein = largest_prime_factor(n) > kMaxDirectPrime;

    roots.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double angle =
            -2.0 * std::numbers::pi * static_cast<double>(k) /
            static_cast<double>(n);
        roots[k] = cf32(static_cast<float>(std::cos(angle)),
                        static_cast<float>(std::sin(angle)));
    }

    if (use_bluestein) {
        conv_n = next_pow2(2 * n - 1);
        conv_fft = std::make_unique<Fft>(conv_n);

        chirp.resize(n);
        for (std::size_t k = 0; k < n; ++k) {
            // k^2 mod 2n keeps the angle argument small and exact.
            const std::size_t k2 = (k * k) % (2 * n);
            const double angle =
                -std::numbers::pi * static_cast<double>(k2) /
                static_cast<double>(n);
            chirp[k] = cf32(static_cast<float>(std::cos(angle)),
                            static_cast<float>(std::sin(angle)));
        }

        // FFT of the conjugate chirp, wrapped for circular convolution.
        std::vector<cf32> b(conv_n, cf32(0.0f, 0.0f));
        b[0] = std::conj(chirp[0]);
        for (std::size_t k = 1; k < n; ++k) {
            b[k] = std::conj(chirp[k]);
            b[conv_n - k] = std::conj(chirp[k]);
        }
        chirp_fft.resize(conv_n);
        conv_fft->forward(b.data(), chirp_fft.data());
    }
}

template <bool Inverse>
void
Fft::Impl::recurse(const cf32 *in, std::size_t in_stride, cf32 *out,
                   std::size_t len, std::size_t root_stride) const
{
    if (len == 1) {
        out[0] = in[0];
        return;
    }

#if defined(LTE_SIMD_ENABLED)
    // Factor order is chosen for the vector combines: odd factors are
    // pulled to the top of the recursion, where their combine spans
    // the widest columns (m = len/p stays large), and the remaining
    // power-of-two subtrees run the radix-4/radix-2 vector butterflies
    // down to trivial leaves.  The scalar build keeps the original
    // smallest-factor-first order.
    std::size_t p;
    if ((len & (len - 1)) == 0) {
        // Pure power of two: radix-4 while possible.
        p = (len > 4 && len % 4 == 0) ? 4 : smallest_factor(len);
    } else {
        std::size_t odd = len;
        while (odd % 2 == 0)
            odd /= 2;
        const std::size_t po = smallest_factor(odd);
        // Only 3 and 5 have vector combines; a larger prime factor is
        // cheapest as a direct-DFT leaf, which the original
        // smallest-factor-first order produces.
        p = po <= 5 ? po : smallest_factor(len);
    }
#else
    const std::size_t p = smallest_factor(len);
#endif
    const std::size_t m = len / p;

    if (p == len) {
        // Prime base case: direct DFT using the master root table.
        // W_len^(jk) == roots[(j*k mod len) * root_stride].
        for (std::size_t k = 0; k < len; ++k) {
            cf32 acc(0.0f, 0.0f);
            for (std::size_t j = 0; j < len; ++j) {
                const std::size_t idx = ((j * k) % len) * root_stride;
                acc += in[j * in_stride] * root<Inverse>(idx);
            }
            out[k] = acc;
        }
        return;
    }

    // Transform the p decimated subsequences.
    for (std::size_t q = 0; q < p; ++q) {
        recurse<Inverse>(in + q * in_stride, in_stride * p, out + q * m,
                         m, root_stride * p);
    }

#if defined(LTE_SIMD_ENABLED)
    if (p == 4) {
        combine4<Inverse>(out, m, root_stride);
        return;
    }
    if (p == 2) {
        combine2<Inverse>(out, m, root_stride);
        return;
    }
    if (p == 3) {
        combinep<3, Inverse>(out, m, root_stride);
        return;
    }
    if (p == 5) {
        combinep<5, Inverse>(out, m, root_stride);
        return;
    }
#else
    if (p == 2) {
        // Radix-2 fast path: the combine below collapses to one
        // butterfly per output pair.  Same arithmetic as the generic
        // code (including the multiply by the half-turn root, which is
        // not exactly -1 in float), just without per-element index
        // reductions.
        const cf32 w_half = root<Inverse>(m * root_stride);
        std::size_t tw = 0; // k * root_stride
        for (std::size_t k = 0; k < m; ++k, tw += root_stride) {
            const cf32 t0 = out[k];
            const cf32 t1 = out[m + k] * root<Inverse>(tw);
            out[k] = t0 + t1;
            out[m + k] = t0 + t1 * w_half;
        }
        return;
    }
#endif

    // Combine: X[k + r*m] = sum_q W_len^(q*k) * W_p^(q*r) * Y_q[k].
    // All root indices stay below n by construction: q*k*root_stride
    // <= (p-1)*(m-1)*root_stride < len*root_stride = n, and the W_p
    // exponent is reduced mod p incrementally.
    cf32 t[kMaxDirectPrime];
    std::size_t base = 0; // k * root_stride
    for (std::size_t k = 0; k < m; ++k, base += root_stride) {
        t[0] = out[k];
        for (std::size_t q = 1; q < p; ++q)
            t[q] = out[q * m + k] * root<Inverse>(q * base);
        cf32 acc0 = t[0];
        for (std::size_t q = 1; q < p; ++q)
            acc0 += t[q];
        out[k] = acc0;
        for (std::size_t r = 1; r < p; ++r) {
            cf32 acc = t[0];
            std::size_t exp = 0; // (q * r) mod p
            for (std::size_t q = 1; q < p; ++q) {
                exp += r;
                if (exp >= p)
                    exp -= p;
                acc += t[q] * root<Inverse>(exp * m * root_stride);
            }
            out[k + r * m] = acc;
        }
    }
}

#if defined(LTE_SIMD_ENABLED)

template <bool Inverse>
void
Fft::Impl::combine2(cf32 *out, std::size_t m, std::size_t root_stride) const
{
    const cf32 w_half = root<Inverse>(m * root_stride);
    const simd::cvf wh = simd::cvf::set1(w_half);
    const cf32 *rt = roots.data();
    std::size_t k = 0;
    for (; k + simd::kLanes <= m; k += simd::kLanes) {
        // Twiddles sit at stride root_stride in the master table; at
        // the outermost level the stride is 1 and a contiguous load
        // beats the gather.
        simd::cvf w = root_stride == 1
                          ? simd::cload(rt + k)
                          : simd::cload_strided(rt + k * root_stride,
                                                root_stride);
        if constexpr (Inverse)
            w = simd::cconj(w);
        const simd::cvf t0 = simd::cload(out + k);
        const simd::cvf t1 = simd::cmul(simd::cload(out + m + k), w);
        simd::cstore(out + k, t0 + t1);
        simd::cstore(out + m + k, t0 + simd::cmul(t1, wh));
    }
    std::size_t tw = k * root_stride;
    for (; k < m; ++k, tw += root_stride) {
        const cf32 t0 = out[k];
        const cf32 t1 = out[m + k] * root<Inverse>(tw);
        out[k] = t0 + t1;
        out[m + k] = t0 + t1 * w_half;
    }
}

template <bool Inverse>
void
Fft::Impl::combine4(cf32 *out, std::size_t m, std::size_t root_stride) const
{
    // X[k + r*m] combines the four sub-transforms with twiddles
    // W_len^(q*k) and the exact fourth roots of unity.  The largest
    // twiddle index is 3*(m-1)*root_stride < len*root_stride = n, so
    // no index reduction is needed.  The forward W_4 = -i rotation is
    // (re, im) -> (im, -re); the inverse flips the sign.
    const cf32 *rt = roots.data();
    std::size_t k = 0;
    for (; k + simd::kLanes <= m; k += simd::kLanes) {
        simd::cvf w1 = root_stride == 1
                           ? simd::cload(rt + k)
                           : simd::cload_strided(rt + k * root_stride,
                                                 root_stride);
        simd::cvf w2 = simd::cload_strided(rt + 2 * k * root_stride,
                                           2 * root_stride);
        simd::cvf w3 = simd::cload_strided(rt + 3 * k * root_stride,
                                           3 * root_stride);
        if constexpr (Inverse) {
            w1 = simd::cconj(w1);
            w2 = simd::cconj(w2);
            w3 = simd::cconj(w3);
        }
        const simd::cvf x0 = simd::cload(out + k);
        const simd::cvf x1 = simd::cmul(simd::cload(out + m + k), w1);
        const simd::cvf x2 = simd::cmul(simd::cload(out + 2 * m + k), w2);
        const simd::cvf x3 = simd::cmul(simd::cload(out + 3 * m + k), w3);
        const simd::cvf a = x0 + x2;
        const simd::cvf b = x0 - x2;
        const simd::cvf c = x1 + x3;
        const simd::cvf d = x1 - x3;
        const simd::cvf wd = Inverse
                                 ? simd::cvf{simd::vneg(d.im), d.re}
                                 : simd::cvf{d.im, simd::vneg(d.re)};
        simd::cstore(out + k, a + c);
        simd::cstore(out + m + k, b + wd);
        simd::cstore(out + 2 * m + k, a - c);
        simd::cstore(out + 3 * m + k, b - wd);
    }
    for (; k < m; ++k) {
        const std::size_t base = k * root_stride;
        const cf32 x0 = out[k];
        const cf32 x1 = out[m + k] * root<Inverse>(base);
        const cf32 x2 = out[2 * m + k] * root<Inverse>(2 * base);
        const cf32 x3 = out[3 * m + k] * root<Inverse>(3 * base);
        const cf32 a = x0 + x2;
        const cf32 b = x0 - x2;
        const cf32 c = x1 + x3;
        const cf32 d = x1 - x3;
        const cf32 wd = Inverse ? cf32(-d.imag(), d.real())
                                : cf32(d.imag(), -d.real());
        out[k] = a + c;
        out[m + k] = b + wd;
        out[2 * m + k] = a - c;
        out[3 * m + k] = b - wd;
    }
}

template <std::size_t P, bool Inverse>
void
Fft::Impl::combinep(cf32 *out, std::size_t m, std::size_t root_stride) const
{
    // The generic combine with p known at compile time: the inner W_p
    // constants W_p^(q*r) = roots[((q*r mod P) * m * root_stride)] are
    // broadcast once, and each block evaluates
    //   X[k + r*m] = sum_q W_len^(q*k) * W_p^(q*r) * Y_q[k]
    // in the same accumulation order as the scalar loop.  Twiddle
    // indices stay below n as in the generic combine.
    simd::cvf wp[P];
    for (std::size_t e = 0; e < P; ++e)
        wp[e] = simd::cvf::set1(root<Inverse>(e * m * root_stride));

    const cf32 *rt = roots.data();
    std::size_t k = 0;
    for (; k + simd::kLanes <= m; k += simd::kLanes) {
        simd::cvf t[P];
        t[0] = simd::cload(out + k);
        for (std::size_t q = 1; q < P; ++q) {
            simd::cvf w =
                q * root_stride == 1
                    ? simd::cload(rt + k)
                    : simd::cload_strided(rt + q * k * root_stride,
                                          q * root_stride);
            if constexpr (Inverse)
                w = simd::cconj(w);
            t[q] = simd::cmul(simd::cload(out + q * m + k), w);
        }
        simd::cvf acc0 = t[0];
        for (std::size_t q = 1; q < P; ++q)
            acc0 = acc0 + t[q];
        simd::cstore(out + k, acc0);
        for (std::size_t r = 1; r < P; ++r) {
            simd::cvf acc = t[0];
            std::size_t exp = 0; // (q * r) mod P
            for (std::size_t q = 1; q < P; ++q) {
                exp += r;
                if (exp >= P)
                    exp -= P;
                acc = acc + simd::cmul(t[q], wp[exp]);
            }
            simd::cstore(out + r * m + k, acc);
        }
    }
    std::size_t base = k * root_stride;
    for (; k < m; ++k, base += root_stride) {
        cf32 t[P];
        t[0] = out[k];
        for (std::size_t q = 1; q < P; ++q)
            t[q] = out[q * m + k] * root<Inverse>(q * base);
        cf32 acc0 = t[0];
        for (std::size_t q = 1; q < P; ++q)
            acc0 += t[q];
        out[k] = acc0;
        for (std::size_t r = 1; r < P; ++r) {
            cf32 acc = t[0];
            std::size_t exp = 0; // (q * r) mod P
            for (std::size_t q = 1; q < P; ++q) {
                exp += r;
                if (exp >= P)
                    exp -= P;
                acc += t[q] * root<Inverse>(exp * m * root_stride);
            }
            out[k + r * m] = acc;
        }
    }
}

#endif // LTE_SIMD_ENABLED

void
Fft::Impl::bluestein(const cf32 *in, cf32 *out, bool inverse,
                     CfSpan scratch) const
{
    // Chirp-z identity: with chirp_k = exp(-i*pi*k^2/n),
    //   X_k = chirp_k * (a (*) b)_k,  a_j = x_j * chirp_j,
    //   b_m = conj(chirp_m)  (wrapped for circular convolution).
    // The inverse transform conjugates both chirp and kernel.
    //
    // Scratch layout: [0, conv_n) holds the padded chirped input "a"
    // (later reused for the convolution result — conv_fft is a
    // power-of-two plan, so its out-of-place transform never reads
    // back its input), [conv_n, 2*conv_n) holds its spectrum "fa".
    LTE_ASSERT(scratch.size() >= 2 * conv_n,
               "Bluestein scratch too small");
    const CfSpan a = scratch.subspan(0, conv_n);
    const CfSpan fa = scratch.subspan(conv_n, conv_n);

    std::size_t k = 0;
#if defined(LTE_SIMD_ENABLED)
    for (; k + simd::kLanes <= n; k += simd::kLanes) {
        const simd::cvf x = simd::cload(in + k);
        const simd::cvf c = simd::cload(chirp.data() + k);
        simd::cstore(a.data() + k,
                     inverse ? simd::cmul_conj(x, c) : simd::cmul(x, c));
    }
#endif
    for (; k < n; ++k) {
        const cf32 c = inverse ? std::conj(chirp[k]) : chirp[k];
        a[k] = in[k] * c;
    }
    for (k = n; k < conv_n; ++k)
        a[k] = cf32(0.0f, 0.0f);

    // conv_fft is mixed-radix and runs out-of-place here, so it needs
    // no scratch of its own — pass an empty span to keep this call
    // off the per-thread fallback buffer.
    conv_fft->forward(a.data(), fa.data(), CfSpan{});
    if (inverse) {
        // The convolution kernel is conj(chirp); for the inverse
        // transform the kernel is chirp itself, whose FFT is the
        // conjugate-mirrored chirp_fft. Recompute cheaply via symmetry:
        // FFT(conj(b))[k] = conj(FFT(b)[(conv_n - k) % conv_n]).
        for (k = 0; k < conv_n; ++k) {
            const std::size_t mirror = (conv_n - k) % conv_n;
            fa[k] *= std::conj(chirp_fft[mirror]);
        }
    } else {
        k = 0;
#if defined(LTE_SIMD_ENABLED)
        for (; k + simd::kLanes <= conv_n; k += simd::kLanes) {
            const simd::cvf f = simd::cload(fa.data() + k);
            const simd::cvf c = simd::cload(chirp_fft.data() + k);
            simd::cstore(fa.data() + k, simd::cmul(f, c));
        }
#endif
        for (; k < conv_n; ++k)
            fa[k] *= chirp_fft[k];
    }

    conv_fft->inverse(fa.data(), a.data(), CfSpan{});

    k = 0;
#if defined(LTE_SIMD_ENABLED)
    for (; k + simd::kLanes <= n; k += simd::kLanes) {
        const simd::cvf x = simd::cload(a.data() + k);
        const simd::cvf c = simd::cload(chirp.data() + k);
        simd::cstore(out + k,
                     inverse ? simd::cmul_conj(x, c) : simd::cmul(x, c));
    }
#endif
    for (; k < n; ++k) {
        const cf32 c = inverse ? std::conj(chirp[k]) : chirp[k];
        out[k] = a[k] * c;
    }
}

void
Fft::Impl::transform(const cf32 *in, cf32 *out, bool inverse,
                     CfSpan scratch) const
{
    if (use_bluestein) {
        bluestein(in, out, inverse, scratch);
    } else if (in == out) {
        LTE_ASSERT(scratch.size() >= n, "in-place FFT scratch too small");
        cf32 *tmp = scratch.data();
        for (std::size_t k = 0; k < n; ++k)
            tmp[k] = in[k];
        if (inverse)
            recurse<true>(tmp, 1, out, n, 1);
        else
            recurse<false>(tmp, 1, out, n, 1);
    } else {
        if (inverse)
            recurse<true>(in, 1, out, n, 1);
        else
            recurse<false>(in, 1, out, n, 1);
    }

    if (inverse) {
        const float scale = 1.0f / static_cast<float>(n);
        std::size_t k = 0;
#if defined(LTE_SIMD_ENABLED)
        const simd::vf s = simd::vf::set1(scale);
        float *f = reinterpret_cast<float *>(out);
        // Interleaved scaling by a real factor needs no deinterleave:
        // scale 2*kLanes consecutive floats per iteration.
        for (; k + simd::kLanes <= n; k += simd::kLanes) {
            const simd::vf a = simd::vf::load(f + 2 * k);
            const simd::vf b = simd::vf::load(f + 2 * k + simd::kLanes);
            (a * s).store(f + 2 * k);
            (b * s).store(f + 2 * k + simd::kLanes);
        }
#endif
        for (; k < n; ++k)
            out[k] *= scale;
    }
}

namespace {

/** Grow-only per-thread scratch backing the span-less transform
 *  overloads; steady-state allocation-free once a thread has seen its
 *  largest transform. */
CfSpan
thread_scratch(std::size_t min_samples)
{
    thread_local std::vector<cf32> scratch;
    if (scratch.size() < min_samples)
        scratch.resize(min_samples);
    return {scratch.data(), scratch.size()};
}

} // namespace

Fft::Fft(std::size_t n)
    : impl_(std::make_unique<Impl>(n))
{
}

Fft::~Fft() = default;

std::size_t
Fft::size() const
{
    return impl_->n;
}

std::size_t
Fft::scratch_size() const
{
    return impl_->scratch_size();
}

namespace {

/** Scratch actually consumed by one transform call (the aliasing copy
 *  is only needed when in == out). */
std::size_t
scratch_needed(const Fft &fft, const cf32 *in, const cf32 *out)
{
    const std::size_t full = fft.scratch_size();
    if (full == fft.size() && in != out)
        return 0; // mixed-radix, out-of-place: no scratch at all
    return full;
}

} // namespace

void
Fft::forward(const cf32 *in, cf32 *out) const
{
    impl_->transform(in, out, false,
                     thread_scratch(scratch_needed(*this, in, out)));
}

void
Fft::inverse(const cf32 *in, cf32 *out) const
{
    impl_->transform(in, out, true,
                     thread_scratch(scratch_needed(*this, in, out)));
}

void
Fft::forward(const cf32 *in, cf32 *out, CfSpan scratch) const
{
    impl_->transform(in, out, false, scratch);
}

void
Fft::inverse(const cf32 *in, cf32 *out, CfSpan scratch) const
{
    impl_->transform(in, out, true, scratch);
}

std::uint64_t
Fft::op_count(std::size_t n)
{
    if (n <= 1)
        return 0;
    if (largest_prime_factor(n) <= kMaxDirectPrime)
        return mixed_radix_ops(n);
    // Bluestein: two forward + one inverse transform of conv_n, plus
    // the pointwise chirp multiplies.
    const std::size_t conv_n = next_pow2(2 * n - 1);
    return 3 * mixed_radix_ops(conv_n) +
           (2 * n + conv_n) * kCplxMulFlops;
}

std::size_t
Fft::next_5_smooth(std::size_t n)
{
    if (n <= 1)
        return 1;
    std::size_t candidate = n;
    while (!is_5_smooth(candidate))
        ++candidate;
    return candidate;
}

std::uint64_t
Fft::op_count_smooth(std::size_t n)
{
    return mixed_radix_ops(next_5_smooth(n));
}

FftCache &
FftCache::instance()
{
    static FftCache cache;
    return cache;
}

const Fft &
FftCache::plan(std::size_t n)
{
    // Per-thread direct-mapped table: fixed storage (no heap even on a
    // brand-new worker thread), collision policy is simple overwrite.
    // A subframe touches only a handful of distinct sizes, so hits are
    // the overwhelmingly common case.
    struct Slot
    {
        std::size_t n;
        const Fft *plan;
    };
    constexpr std::size_t kSlots = 128; // power of two for cheap masking
    thread_local Slot slots[kSlots] = {};

    Slot &slot = slots[(n * 0x9E3779B97F4A7C15ull >> 32) & (kSlots - 1)];
    if (slot.plan != nullptr && slot.n == n)
        return *slot.plan;

    const Fft *plan = lookup_shared(n);
    slot = {n, plan};
    return *plan;
}

const Fft *
FftCache::lookup_shared(std::size_t n)
{
    {
        // Raw plan pointers are stable: the cache never evicts, so the
        // shared_ptr in the map keeps every plan alive for the process
        // lifetime and per-thread tables may cache the raw pointer.
        std::shared_lock lock(mutex_);
        auto it = plans_.find(n);
        if (it != plans_.end())
            return it->second.get();
    }
    std::unique_lock lock(mutex_);
    auto it = plans_.find(n);
    if (it == plans_.end())
        it = plans_.emplace(n, std::make_shared<const Fft>(n)).first;
    return it->second.get();
}

std::shared_ptr<const Fft>
FftCache::get(std::size_t n)
{
    {
        std::shared_lock lock(mutex_);
        auto it = plans_.find(n);
        if (it != plans_.end())
            return it->second;
    }
    std::unique_lock lock(mutex_);
    auto it = plans_.find(n);
    if (it == plans_.end())
        it = plans_.emplace(n, std::make_shared<const Fft>(n)).first;
    return it->second;
}

std::size_t
FftCache::plan_count() const
{
    std::shared_lock lock(mutex_);
    return plans_.size();
}

CVec
fft_forward(const CVec &in)
{
    CVec out(in.size());
    FftCache::instance().get(in.size())->forward(in.data(), out.data());
    return out;
}

CVec
fft_inverse(const CVec &in)
{
    CVec out(in.size());
    FftCache::instance().get(in.size())->inverse(in.data(), out.data());
    return out;
}

} // namespace lte::fft

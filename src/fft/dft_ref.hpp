/**
 * @file
 * Naive O(n^2) double-precision DFT used as a golden reference when
 * testing the production FFT plans.
 */
#ifndef LTE_FFT_DFT_REF_HPP
#define LTE_FFT_DFT_REF_HPP

#include "common/types.hpp"

namespace lte::fft {

/** Unnormalised forward DFT computed in double precision. */
CVec dft_reference(const CVec &in);

/** Inverse DFT (with 1/N scale) computed in double precision. */
CVec idft_reference(const CVec &in);

} // namespace lte::fft

#endif // LTE_FFT_DFT_REF_HPP

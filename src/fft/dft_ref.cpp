#include "fft/dft_ref.hpp"

#include <cmath>
#include <numbers>

namespace lte::fft {

namespace {

CVec
dft_impl(const CVec &in, double sign, bool normalise)
{
    const std::size_t n = in.size();
    CVec out(n);
    const double scale = normalise ? 1.0 / static_cast<double>(n) : 1.0;
    for (std::size_t k = 0; k < n; ++k) {
        cf64 acc(0.0, 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            const double angle = sign * 2.0 * std::numbers::pi *
                                 static_cast<double>(j * k % n) /
                                 static_cast<double>(n);
            const cf64 w(std::cos(angle), std::sin(angle));
            acc += cf64(in[j].real(), in[j].imag()) * w;
        }
        out[k] = cf32(static_cast<float>(acc.real() * scale),
                      static_cast<float>(acc.imag() * scale));
    }
    return out;
}

} // namespace

CVec
dft_reference(const CVec &in)
{
    return dft_impl(in, -1.0, false);
}

CVec
idft_reference(const CVec &in)
{
    return dft_impl(in, 1.0, true);
}

} // namespace lte::fft

/**
 * @file
 * Complex FFT library used by every frequency/time transform in the
 * receiver (Fig. 2/3 of the paper): mixed-radix Cooley-Tukey for sizes
 * whose prime factors are small, with a Bluestein (chirp-z) fallback
 * for arbitrary sizes.  LTE DFT-s-OFDM allocations are 12 x PRBs
 * subcarriers, so non-5-smooth sizes occur routinely.
 */
#ifndef LTE_FFT_FFT_HPP
#define LTE_FFT_FFT_HPP

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace lte::fft {

/**
 * A planned complex FFT of a fixed size.
 *
 * The plan precomputes twiddle tables (and, for Bluestein sizes, the
 * chirp sequence and its transform).  forward() computes the
 * unnormalised DFT; inverse() applies the 1/N scale so that
 * inverse(forward(x)) == x.
 *
 * Plans are immutable after construction, and both transform methods
 * are const and safe to call concurrently from multiple threads.
 *
 * Transforms come in two flavours: the span overloads take a caller
 * provided scratch buffer of at least scratch_size() samples and never
 * touch the heap, which the subframe hot path relies on; the two-arg
 * overloads fall back to a per-thread scratch vector that grows to the
 * largest size seen (allocation-free once warm, but not guaranteed so
 * on a cold thread).
 */
class Fft
{
  public:
    /** Plan a transform of @p n points (n >= 1). */
    explicit Fft(std::size_t n);
    ~Fft();

    Fft(const Fft &) = delete;
    Fft &operator=(const Fft &) = delete;

    /** Transform size. */
    std::size_t size() const;

    /**
     * Scratch samples the span overloads need: n for mixed-radix sizes
     * (used only when in == out), 2x the convolution length for
     * Bluestein sizes.  Constant per plan, so workspaces can size
     * scratch once up front.
     */
    std::size_t scratch_size() const;

    /** Unnormalised forward DFT. @p in and @p out must hold size() samples
     *  and may alias. */
    void forward(const cf32 *in, cf32 *out) const;

    /** Inverse DFT including the 1/N normalisation. May alias. */
    void inverse(const cf32 *in, cf32 *out) const;

    /** Heap-free forward DFT; @p scratch needs >= scratch_size()
     *  samples and must not overlap in/out. */
    void forward(const cf32 *in, cf32 *out, CfSpan scratch) const;

    /** Heap-free inverse DFT (with 1/N scale); same scratch contract. */
    void inverse(const cf32 *in, cf32 *out, CfSpan scratch) const;

    /**
     * Analytical floating-point operation count of one transform of
     * size @p n under this library's algorithm choices (including the
     * direct-DFT/Bluestein cliffs at sizes with large prime factors).
     */
    static std::uint64_t op_count(std::size_t n);

    /**
     * Smooth-envelope operation count: the cost of transforming the
     * next 5-smooth size >= @p n, i.e. of an implementation that pads
     * awkward sizes the way production SC-FDMA receivers do.  The
     * simulator's cycle-cost model uses this (DESIGN.md Sec. 3) so
     * that workload scales linearly in PRBs, matching the clean
     * linear behaviour the paper measures in Fig. 11.
     */
    static std::uint64_t op_count_smooth(std::size_t n);

    /** The smallest integer >= n whose prime factors are all in
     *  {2, 3, 5}. */
    static std::size_t next_5_smooth(std::size_t n);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Process-wide cache of FFT plans keyed by size.
 *
 * Subframe processing repeatedly needs the same handful of sizes; the
 * cache makes plan lookup cheap and thread-safe (worker threads share
 * plans, which are themselves const-thread-safe).
 *
 * Lookup is layered: plan() first probes a per-thread direct-mapped
 * table (no locking, no atomics, no heap), and only on a miss falls
 * back to the shared map.  The shared map is guarded by a
 * std::shared_mutex so that concurrent misses from different threads
 * still proceed in parallel when the plan exists.
 *
 * Regression note: this cache used to hold a plain std::mutex around
 * every lookup, which serialised all workers on the hot path — each
 * IFFT/FFT in channel estimation and SC-FDMA despreading took the
 * global lock, and profiles showed the lock dominating at high worker
 * counts.  Do not reintroduce a exclusive-locked lookup here; the
 * per-thread table plus reader-shared fallback exists precisely to
 * keep plan lookup off the contention path.
 */
class FftCache
{
  public:
    /** The singleton cache instance. */
    static FftCache &instance();

    /**
     * @return a reference to the plan for size @p n, creating it if
     * needed.  Plans live for the lifetime of the process (the cache
     * never evicts), so the reference is permanently valid.  Hot-path
     * lookups hit a per-thread table and are lock- and heap-free.
     */
    const Fft &plan(std::size_t n);

    /** @return a shared plan for size @p n, creating it if needed. */
    std::shared_ptr<const Fft> get(std::size_t n);

    /** Number of distinct plans currently cached. */
    std::size_t plan_count() const;

  private:
    FftCache() = default;

    /** Shared-map lookup backing the per-thread table. */
    const Fft *lookup_shared(std::size_t n);

    mutable std::shared_mutex mutex_;
    std::unordered_map<std::size_t, std::shared_ptr<const Fft>> plans_;
};

/** Convenience out-of-place forward FFT via the shared cache. */
CVec fft_forward(const CVec &in);

/** Convenience out-of-place inverse FFT via the shared cache. */
CVec fft_inverse(const CVec &in);

} // namespace lte::fft

#endif // LTE_FFT_FFT_HPP

/**
 * @file
 * FFT library tests: agreement with the O(n^2) double-precision
 * reference DFT across power-of-two, 5-smooth, prime, and
 * Bluestein-path sizes; round-trip identity; linearity; Parseval;
 * impulse and sinusoid spectra; plan-cache behaviour; thread safety.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/rng.hpp"
#include "fft/dft_ref.hpp"
#include "fft/fft.hpp"

namespace lte::fft {
namespace {

CVec
random_signal(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    CVec v(n);
    for (auto &s : v) {
        s = cf32(static_cast<float>(rng.next_gaussian()),
                 static_cast<float>(rng.next_gaussian()));
    }
    return v;
}

double
max_err(const CVec &a, const CVec &b)
{
    EXPECT_EQ(a.size(), b.size());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max<double>(worst, std::abs(a[i] - b[i]));
    return worst;
}

/** Error tolerance scales with transform size (float accumulation). */
double
tolerance(std::size_t n)
{
    return 2e-4 * std::sqrt(static_cast<double>(n)) + 1e-4;
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FftSizeTest, ForwardMatchesReference)
{
    const std::size_t n = GetParam();
    const CVec x = random_signal(n, 100 + n);
    const CVec ref = dft_reference(x);
    CVec out(n);
    Fft plan(n);
    plan.forward(x.data(), out.data());
    EXPECT_LT(max_err(out, ref), tolerance(n)) << "n=" << n;
}

TEST_P(FftSizeTest, InverseMatchesReference)
{
    const std::size_t n = GetParam();
    const CVec x = random_signal(n, 200 + n);
    const CVec ref = idft_reference(x);
    CVec out(n);
    Fft plan(n);
    plan.inverse(x.data(), out.data());
    EXPECT_LT(max_err(out, ref), tolerance(n)) << "n=" << n;
}

TEST_P(FftSizeTest, RoundTripIsIdentity)
{
    const std::size_t n = GetParam();
    const CVec x = random_signal(n, 300 + n);
    CVec freq(n), back(n);
    Fft plan(n);
    plan.forward(x.data(), freq.data());
    plan.inverse(freq.data(), back.data());
    EXPECT_LT(max_err(back, x), tolerance(n)) << "n=" << n;
}

TEST_P(FftSizeTest, ParsevalHolds)
{
    const std::size_t n = GetParam();
    const CVec x = random_signal(n, 400 + n);
    CVec freq(n);
    Fft plan(n);
    plan.forward(x.data(), freq.data());
    double time_energy = 0.0, freq_energy = 0.0;
    for (const auto &s : x)
        time_energy += std::norm(s);
    for (const auto &s : freq)
        freq_energy += std::norm(s);
    freq_energy /= static_cast<double>(n);
    EXPECT_NEAR(freq_energy, time_energy,
                1e-3 * time_energy + 1e-6) << "n=" << n;
}

// Sizes covering: trivial, powers of two, 5-smooth LTE sizes (12*PRBs),
// small primes (direct DFT base case), sizes with prime factors 7..61,
// and sizes whose largest prime factor forces the Bluestein path.
INSTANTIATE_TEST_SUITE_P(
    Sizes, FftSizeTest,
    ::testing::Values<std::size_t>(
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 16, 24, 25, 31, 36, 47,
        60, 61, 64, 84, 100, 108, 128, 144, 180, 240, 256, 300, 360,
        443,            // prime > 61: Bluestein
        12 * 67,        // 804: largest prime factor 67 -> Bluestein
        12 * 97,        // 1164: Bluestein
        12 * 100,       // 1200: 20 MHz full allocation
        2048),
    [](const auto &info) { return "n" + std::to_string(info.param); });

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    const std::size_t n = 48;
    CVec x(n, cf32(0.0f, 0.0f));
    x[0] = cf32(1.0f, 0.0f);
    const CVec freq = fft_forward(x);
    for (const auto &s : freq) {
        EXPECT_NEAR(s.real(), 1.0f, 1e-5f);
        EXPECT_NEAR(s.imag(), 0.0f, 1e-5f);
    }
}

TEST(Fft, SingleToneLandsInOneBin)
{
    const std::size_t n = 60;
    const std::size_t tone = 7;
    CVec x(n);
    for (std::size_t t = 0; t < n; ++t) {
        const double angle = 2.0 * M_PI * static_cast<double>(tone * t) /
                             static_cast<double>(n);
        x[t] = cf32(static_cast<float>(std::cos(angle)),
                    static_cast<float>(std::sin(angle)));
    }
    const CVec freq = fft_forward(x);
    for (std::size_t k = 0; k < n; ++k) {
        const float expected = (k == tone) ? static_cast<float>(n) : 0.0f;
        EXPECT_NEAR(std::abs(freq[k]), expected, 2e-3f) << "k=" << k;
    }
}

TEST(Fft, LinearityHolds)
{
    const std::size_t n = 120;
    const CVec a = random_signal(n, 1), b = random_signal(n, 2);
    const cf32 alpha(2.0f, -1.0f), beta(0.5f, 3.0f);
    CVec combo(n);
    for (std::size_t i = 0; i < n; ++i)
        combo[i] = alpha * a[i] + beta * b[i];
    const CVec fa = fft_forward(a), fb = fft_forward(b);
    const CVec fc = fft_forward(combo);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(std::abs(fc[i] - (alpha * fa[i] + beta * fb[i])),
                    0.0, 5e-3);
    }
}

TEST(Fft, InPlaceTransformWorks)
{
    const std::size_t n = 96;
    CVec x = random_signal(n, 55);
    const CVec ref = dft_reference(x);
    Fft plan(n);
    plan.forward(x.data(), x.data());
    EXPECT_LT(max_err(x, ref), tolerance(n));
}

TEST(Fft, SizeOneIsIdentity)
{
    Fft plan(1);
    const cf32 in(3.5f, -2.0f);
    cf32 out;
    plan.forward(&in, &out);
    EXPECT_EQ(out, in);
    plan.inverse(&in, &out);
    EXPECT_EQ(out, in);
}

TEST(Fft, RejectsZeroSize)
{
    EXPECT_THROW(Fft plan(0), std::invalid_argument);
}

TEST(Fft, OpCountMonotoneInSize)
{
    // Not strictly monotone point-to-point (algorithm switches), but
    // doubling the size must increase cost.
    for (std::size_t n : {12u, 48u, 120u, 300u, 600u})
        EXPECT_GT(Fft::op_count(2 * n), Fft::op_count(n));
    EXPECT_EQ(Fft::op_count(1), 0u);
}

TEST(Fft, OpCountRoughlyNLogN)
{
    // For powers of two the cost should be within a small factor of
    // the textbook 5 n log2 n flops.
    for (std::size_t n : {64u, 256u, 1024u}) {
        const double textbook =
            5.0 * static_cast<double>(n) * std::log2(static_cast<double>(n));
        const double ours = static_cast<double>(Fft::op_count(n));
        EXPECT_GT(ours, textbook);
        EXPECT_LT(ours, 8.0 * textbook);
    }
}

TEST(FftCache, ReturnsSamePlanForSameSize)
{
    auto &cache = FftCache::instance();
    auto a = cache.get(132);
    auto b = cache.get(132);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->size(), 132u);
}

TEST(FftCache, ConcurrentAccessIsSafe)
{
    auto &cache = FftCache::instance();
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&cache, &failures, t] {
            for (int i = 0; i < 50; ++i) {
                const std::size_t n = 12 * (1 + (i + t) % 20);
                auto plan = cache.get(n);
                CVec x(n, cf32(1.0f, 0.0f)), out(n);
                plan->forward(x.data(), out.data());
                // DC bin must hold the sum n.
                if (std::abs(out[0].real() - static_cast<float>(n)) > 1e-2f)
                    ++failures;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
}

} // namespace
} // namespace lte::fft

/**
 * @file
 * Tests for the scrambler (Gold sequence) and the SC-FDMA front-end:
 * sequence properties, involution, soft descrambling, CP/FFT
 * round-trips, carrier mapping, and the key radio property that a
 * time-domain delay inside the CP becomes a pure per-subcarrier phase
 * rotation.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "phy/scfdma.hpp"
#include "phy/scrambler.hpp"
#include "phy/user_processor.hpp"
#include "phy/zadoff_chu.hpp"
#include "tx/transmitter.hpp"

namespace lte::phy {
namespace {

std::vector<std::uint8_t>
random_bits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> bits(n);
    for (auto &b : bits)
        b = static_cast<std::uint8_t>(rng.next_u64() & 1);
    return bits;
}

// ----------------------------------------------------------- Gold

TEST(Gold, BalancedAndAperiodicLooking)
{
    const auto c = gold_sequence(12345, 20000);
    RunningStats ones;
    for (std::uint8_t b : c)
        ones.add(b);
    EXPECT_NEAR(ones.mean(), 0.5, 0.02);
    // Runs test (coarse): adjacent equal pairs about half.
    std::size_t same = 0;
    for (std::size_t i = 1; i < c.size(); ++i)
        same += c[i] == c[i - 1];
    EXPECT_NEAR(static_cast<double>(same) /
                    static_cast<double>(c.size() - 1),
                0.5, 0.02);
}

TEST(Gold, DifferentInitsDiffer)
{
    const auto a = gold_sequence(1, 1000);
    const auto b = gold_sequence(2, 1000);
    std::size_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff += a[i] != b[i];
    EXPECT_GT(diff, 300u);
}

TEST(Gold, DeterministicPrefix)
{
    const auto a = gold_sequence(777, 100);
    const auto b = gold_sequence(777, 1000);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Scrambler, ScrambleIsAnInvolution)
{
    const auto bits = random_bits(500, 3);
    const auto once = scramble(bits, scrambling_init(7));
    EXPECT_NE(once, bits);
    EXPECT_EQ(scramble(once, scrambling_init(7)), bits);
}

TEST(Scrambler, SoftDescramblingMatchesHardDescrambling)
{
    const auto bits = random_bits(256, 9);
    const std::uint32_t init = scrambling_init(3);
    const auto scrambled = scramble(bits, init);
    // Perfect-channel LLRs of the scrambled bits.
    std::vector<Llr> llrs(scrambled.size());
    for (std::size_t i = 0; i < scrambled.size(); ++i)
        llrs[i] = scrambled[i] ? -4.0f : 4.0f;
    const auto soft = descramble_soft(llrs, init);
    for (std::size_t i = 0; i < bits.size(); ++i)
        EXPECT_EQ(soft[i] >= 0.0f ? 0 : 1, bits[i]);
}

TEST(Scrambler, DifferentUsersGetDifferentSequences)
{
    EXPECT_NE(scrambling_init(1), scrambling_init(2));
    const auto bits = random_bits(200, 4);
    EXPECT_NE(scramble(bits, scrambling_init(1)),
              scramble(bits, scrambling_init(2)));
}

TEST(Scrambler, DifferentCellsGetDecorrelatedSequences)
{
    // The default cell is cell 1, so single-cell call sites keep
    // their pre-multi-cell sequences bit-for-bit.
    EXPECT_EQ(scrambling_init(5), scrambling_init(5, 1));
    EXPECT_NE(scrambling_init(5, 1), scrambling_init(5, 2));

    // Same user, two cells: the scrambling sequences differ in
    // roughly half their positions (Gold decorrelation).
    const auto zeros = std::vector<std::uint8_t>(2000, 0);
    const auto c1 = scramble(zeros, scrambling_init(5, 1));
    const auto c2 = scramble(zeros, scrambling_init(5, 2));
    std::size_t diff = 0;
    for (std::size_t i = 0; i < zeros.size(); ++i)
        diff += c1[i] != c2[i];
    EXPECT_GT(diff, 800u);
    EXPECT_LT(diff, 1200u);
}

TEST(ZadoffChu, DifferentCellsGetDecorrelatedDmrs)
{
    const std::size_t m_sc = 120;
    // Cell 1 is the identity: same sequence as the pre-multi-cell
    // default-argument call.
    const auto base = user_dmrs(3, 0, m_sc, 0);
    const auto cell1 = user_dmrs(3, 0, m_sc, 0, 1);
    ASSERT_EQ(base.size(), cell1.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].real(), cell1[i].real());
        EXPECT_EQ(base[i].imag(), cell1[i].imag());
    }

    // Cell 2 uses a different ZC root: low normalized
    // cross-correlation against cell 1 (inter-cell pilot
    // contamination stays bounded).
    const auto cell2 = user_dmrs(3, 0, m_sc, 0, 2);
    cf32 acc{0.0f, 0.0f};
    for (std::size_t i = 0; i < m_sc; ++i)
        acc += cell1[i] * std::conj(cell2[i]);
    const double xcorr =
        std::abs(acc) / static_cast<double>(m_sc);
    EXPECT_LT(xcorr, 0.5);
    // Sanity: self-correlation is 1 (constant-modulus sequence).
    cf32 self{0.0f, 0.0f};
    for (std::size_t i = 0; i < m_sc; ++i)
        self += cell1[i] * std::conj(cell1[i]);
    EXPECT_NEAR(std::abs(self) / static_cast<double>(m_sc), 1.0,
                1e-5);
}

// --------------------------------------------------------- SC-FDMA

ScFdmaConfig
small_cfg()
{
    ScFdmaConfig cfg;
    cfg.n_fft = 512;
    cfg.n_used = 300;
    return cfg;
}

CVec
random_symbols(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    CVec v(n);
    for (auto &s : v) {
        s = cf32(static_cast<float>(rng.next_gaussian()),
                 static_cast<float>(rng.next_gaussian()));
    }
    return v;
}

TEST(ScFdma, CpLengthsFollowTheSpecScaling)
{
    ScFdmaConfig cfg; // 2048-point carrier
    EXPECT_EQ(cfg.cp_length(0), 160u);
    EXPECT_EQ(cfg.cp_length(1), 144u);
    EXPECT_EQ(cfg.cp_length(6), 144u);
    const ScFdmaConfig half = small_cfg(); // 512-point carrier
    EXPECT_EQ(half.cp_length(0), 40u);
    EXPECT_EQ(half.cp_length(3), 36u);
    // One slot = 0.5 ms at 2048 x 15 kHz = 15360 samples.
    EXPECT_EQ(ScFdmaConfig{}.samples_per_slot(), 15360u);
}

TEST(ScFdma, CarrierMappingRoundTrips)
{
    const auto cfg = small_cfg();
    const CVec alloc = random_symbols(144, 5);
    const CVec carrier = map_to_carrier(alloc, 60, cfg);
    const CVec back = extract_from_carrier(carrier, 60, 144, cfg);
    for (std::size_t i = 0; i < alloc.size(); ++i)
        EXPECT_EQ(back[i], alloc[i]);
    // Everything else stays zero, including DC.
    double other = 0.0;
    for (const auto &v : carrier)
        other += std::norm(v);
    double used = 0.0;
    for (const auto &v : alloc)
        used += std::norm(v);
    EXPECT_NEAR(other, used, 1e-6 * used);
    EXPECT_EQ(carrier[0], cf32(0.0f, 0.0f));
}

TEST(ScFdma, MappingRejectsOutOfBand)
{
    const auto cfg = small_cfg();
    EXPECT_THROW(map_to_carrier(CVec(200), 150, cfg),
                 std::invalid_argument);
}

TEST(ScFdma, ModulateDemodulateRoundTrips)
{
    const auto cfg = small_cfg();
    for (std::size_t sym : {0u, 1u, 6u}) {
        const CVec carrier =
            map_to_carrier(random_symbols(288, 10 + sym), 6, cfg);
        const CVec time = scfdma_modulate(carrier, sym, cfg);
        EXPECT_EQ(time.size(), cfg.n_fft + cfg.cp_length(sym));
        const CVec back = scfdma_demodulate(time, sym, cfg);
        double err = 0.0, power = 0.0;
        for (std::size_t k = 0; k < cfg.n_fft; ++k) {
            err += std::norm(back[k] - carrier[k]);
            power += std::norm(carrier[k]);
        }
        EXPECT_LT(err, 1e-8 * power) << "sym=" << sym;
    }
}

TEST(ScFdma, CyclicPrefixIsACopyOfTheTail)
{
    const auto cfg = small_cfg();
    const CVec carrier = map_to_carrier(random_symbols(144, 21), 0, cfg);
    const CVec time = scfdma_modulate(carrier, 2, cfg);
    const std::size_t cp = cfg.cp_length(2);
    for (std::size_t i = 0; i < cp; ++i)
        EXPECT_EQ(time[i], time[cfg.n_fft + i]);
}

TEST(ScFdma, DelayWithinCpBecomesPhaseRamp)
{
    // The whole point of the cyclic prefix: a channel delay shorter
    // than the CP turns into exp(-j*2*pi*k*d/N) per carrier bin.
    const auto cfg = small_cfg();
    const std::size_t delay = 11; // < CP (36)
    const CVec alloc = random_symbols(96, 33);
    const CVec carrier = map_to_carrier(alloc, 30, cfg);
    const CVec time = scfdma_modulate(carrier, 1, cfg);

    // Delayed reception: drop the last `delay` samples and prepend
    // zeros (the lost energy belongs to the next symbol's window).
    CVec delayed(time.size(), cf32(0.0f, 0.0f));
    for (std::size_t i = delay; i < time.size(); ++i)
        delayed[i] = time[i - delay];

    const CVec rx = scfdma_demodulate(delayed, 1, cfg);
    const CVec got = extract_from_carrier(rx, 30, 96, cfg);

    // Compare against the analytical phase ramp on each bin.
    for (std::size_t k = 0; k < alloc.size(); ++k) {
        // Bin index of used-band position 30 + k.
        const std::size_t half = cfg.n_used / 2;
        const std::size_t u = 30 + k;
        const std::size_t bin = u >= half ? u - half + 1
                                          : cfg.n_fft - half + u;
        const double angle = -2.0 * std::numbers::pi *
                             static_cast<double>(bin * delay %
                                                 cfg.n_fft) /
                             static_cast<double>(cfg.n_fft);
        const cf32 expected =
            alloc[k] * cf32(static_cast<float>(std::cos(angle)),
                            static_cast<float>(std::sin(angle)));
        EXPECT_LT(std::abs(got[k] - expected), 2e-3f) << "k=" << k;
    }
}

TEST(ScFdma, FullAirLinkRoundTripsThroughTimeDomain)
{
    // Integration: transmit chain -> carrier mapping -> SC-FDMA
    // modulation -> time-domain two-tap channel inside the CP ->
    // front-end demodulation -> the regular receiver, CRC green.
    phy::UserParams user;
    user.id = 6;
    user.prb = 8;
    user.layers = 1;
    user.mod = Modulation::kQpsk;

    ScFdmaConfig cfg;
    cfg.n_fft = 512;
    cfg.n_used = 300;
    const std::size_t start_sc = 48;

    Rng rng(505);
    const auto txr = lte::tx::transmit_user(user, rng);

    phy::UserSignal rx;
    rx.antennas.resize(1);
    const cf32 g0(0.8f, 0.3f), g1(0.2f, -0.25f);
    const std::size_t d1 = 9; // within the 36-sample CP
    const float noise_std = 0.002f;

    for (std::size_t slot = 0; slot < kSlotsPerSubframe; ++slot) {
        const std::size_t m_sc = user.sc_in_slot(slot);
        for (std::size_t sym = 0; sym < kSymbolsPerSlot; ++sym) {
            const CVec carrier = map_to_carrier(
                txr.grid.layers[0].slots[slot][sym], start_sc, cfg);
            const CVec time = scfdma_modulate(carrier, sym, cfg);
            CVec faded(time.size(), cf32(0.0f, 0.0f));
            for (std::size_t i = 0; i < time.size(); ++i) {
                faded[i] += g0 * time[i];
                if (i >= d1)
                    faded[i] += g1 * time[i - d1];
            }
            for (auto &v : faded) {
                v += cf32(static_cast<float>(rng.next_gaussian()) *
                              noise_std,
                          static_cast<float>(rng.next_gaussian()) *
                              noise_std);
            }
            const CVec back = scfdma_demodulate(faded, sym, cfg);
            rx.antennas[0].slots[slot][sym] =
                extract_from_carrier(back, start_sc, m_sc, cfg);
        }
    }

    phy::ReceiverConfig rcfg;
    rcfg.n_antennas = 1;
    phy::UserProcessor proc(user, rcfg, &rx);
    const auto result = proc.process_all();
    EXPECT_TRUE(result.crc_ok) << "evm=" << result.evm_rms;
    EXPECT_EQ(result.bits, txr.payload_bits);
}

TEST(ScFdma, RejectsBadConfig)
{
    ScFdmaConfig cfg;
    cfg.n_fft = 100; // not a power of two
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = ScFdmaConfig{};
    cfg.n_used = 4096;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

} // namespace
} // namespace lte::phy
